#!/usr/bin/env bash
# Tier-1 verification gate: build → fast tests → slow tests → TSan → UBSan
# → ASan+LSan → lint.
#
# - The primary build runs with OSQ_WERROR=ON: the warning floor in
#   CMakeLists.txt (-Wall -Wextra -Wshadow -Wextra-semi -Wnon-virtual-dtor
#   -Wconversion) is a build error here, not advice.
# - The ctest run is split by the `slow` label: fast suite first (quick
#   signal), then the slow randomized/differential/stress suites.
# - TSan (OSQ_SANITIZE=thread) re-runs the concurrency tests so data races
#   in the parallel pipelines and serving layer fail the gate.
# - UBSan (OSQ_SANITIZE=undefined) runs the fast suite against
#   overflow/alignment/bounds UB.
# - ASan+LSan (OSQ_SANITIZE=address, detect_leaks=1) runs the fast suite
#   against heap misuse and leaks (ThreadPool shutdown, QueryService
#   snapshot lifetimes).
# - lint (scripts/lint.sh) runs osq_lint + clang-tidy-with-baseline +
#   clang-format --check; see DESIGN.md §10.
# - OSQ_BENCH_CHECK=1 adds an opt-in bench regression stage: one
#   bench_micro_match run checked against BENCH_match.json (including the
#   >=5x candidate-index floor and a live sig_node_rejections counter),
#   one bench_load run checked against BENCH_load.json (including the
#   >=10x binary-vs-text cold-start floor), and one bench_shard run
#   checked against BENCH_shard.json (including the structural sharding
#   floor: 4-shard scatter overhead <= 25% vs the 1-shard coordinator at
#   threads=1), all via scripts/bench_check.py.
#
# Usage: [OSQ_BENCH_CHECK=1] scripts/tier1.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (OSQ_WERROR=ON) + ctest (fast suite) =="
cmake -B build -S . -DOSQ_WERROR=ON "$@"
cmake --build build -j
ctest --test-dir build --output-on-failure -j -LE slow

echo "== tier-1: ctest (slow suite: differential + stress) =="
ctest --test-dir build --output-on-failure -j -L slow

echo "== tier-1: concurrency tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DOSQ_SANITIZE=thread -DOSQ_WERROR=ON \
  -DOSQ_BUILD_BENCHMARKS=OFF -DOSQ_BUILD_EXAMPLES=OFF "$@"
cmake --build build-tsan -j --target thread_pool_test \
  parallel_determinism_test filter_maintenance_test \
  query_service_stress_test deadline_stress_test shard_stress_test \
  ingest_pipeline_test ingest_differential_test
ctest --test-dir build-tsan --output-on-failure \
  -R 'ThreadPoolTest|ResolveNumThreadsTest|ParallelDeterminismTest|FilterMaintenanceTest|QueryServiceStressTest|DeadlineStressTest|ShardStressTest|IngestPipelineTest|IngestDifferentialTest'

echo "== tier-1: fast suite under UndefinedBehaviorSanitizer =="
cmake -B build-ubsan -S . -DOSQ_SANITIZE=undefined -DOSQ_WERROR=ON \
  -DOSQ_BUILD_BENCHMARKS=OFF -DOSQ_BUILD_EXAMPLES=OFF "$@"
cmake --build build-ubsan -j
ctest --test-dir build-ubsan --output-on-failure -j -LE slow

echo "== tier-1: fast suite under AddressSanitizer + LeakSanitizer =="
cmake -B build-asan -S . -DOSQ_SANITIZE=address -DOSQ_WERROR=ON \
  -DOSQ_BUILD_BENCHMARKS=OFF -DOSQ_BUILD_EXAMPLES=OFF "$@"
cmake --build build-asan -j
ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1:check_initialization_order=1" \
  ctest --test-dir build-asan --output-on-failure -j -LE slow

echo "== tier-1: lint (osq_lint + clang-tidy + format) =="
scripts/lint.sh build

# Opt-in bench regression gate (off by default: benchmark timings on shared
# runners are too noisy to block every run).  Runs the matcher microbench
# once at --threads 1 and checks the rows against the committed baseline,
# including the >=5x candidate-index speedup floor.
if [[ "${OSQ_BENCH_CHECK:-0}" == "1" ]]; then
  echo "== tier-1 (opt-in): bench regression check vs BENCH_match.json =="
  cmake --build build -j --target bench_micro_match bench_load
  build/bench/bench_micro_match --threads 1 --json build/bench_fresh.json
  python3 scripts/bench_check.py build/bench_fresh.json \
    --baseline BENCH_match.json \
    --min-ratio BM_FilterVerifyEndToEndNoIndex,BM_FilterVerifyEndToEnd,5 \
    --min-extra BM_GviewFilterHighDegree,sig_node_rejections,1

  echo "== tier-1 (opt-in): cold-start check vs BENCH_load.json =="
  build/bench/bench_load --json build/bench_load_fresh.json
  python3 scripts/bench_check.py build/bench_load_fresh.json \
    --baseline BENCH_load.json \
    --min-ratio BM_LoadSnapshotV1Text,BM_LoadSnapshotV2Binary,10

  echo "== tier-1 (opt-in): sharding-overhead check vs BENCH_shard.json =="
  cmake --build build -j --target bench_shard
  build/bench/bench_shard --threads 1 --json build/bench_shard_fresh.json
  # ms(N=1)/ms(N=4) >= 0.8  <=>  4-shard scatter overhead <= 25% vs N=1.
  python3 scripts/bench_check.py build/bench_shard_fresh.json \
    --baseline BENCH_shard.json \
    --min-ratio BM_ShardServeShards1,BM_ShardServeShards4,0.8

  echo "== tier-1 (opt-in): live-ingest check vs BENCH_ingest.json =="
  cmake --build build -j --target bench_ingest
  build/bench/bench_ingest --json build/bench_ingest_fresh.json
  # recompute/online >= 50  <=>  one online batch <= 2% of a full engine
  # rebuild — the paper's incremental-maintenance claim, measured under
  # concurrent read traffic.
  python3 scripts/bench_check.py build/bench_ingest_fresh.json \
    --baseline BENCH_ingest.json \
    --min-ratio BM_IngestRecompute,BM_IngestOnline,50
fi

echo "tier-1 OK"
