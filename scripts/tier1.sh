#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency tests
# again under ThreadSanitizer (OSQ_SANITIZE=thread) so data races in the
# parallel pipelines and the serving layer fail the build gate, not a
# user's query, and finally the fast suite under UndefinedBehaviorSanitizer
# (OSQ_SANITIZE=undefined) to catch overflow/alignment/bounds UB.
#
# The ctest run is split by the `slow` label: the fast suite first (quick
# signal), then the slow randomized/differential/stress suites.
#
# Usage: scripts/tier1.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + ctest (fast suite) =="
cmake -B build -S . "$@"
cmake --build build -j
ctest --test-dir build --output-on-failure -j -LE slow

echo "== tier-1: ctest (slow suite: differential + stress) =="
ctest --test-dir build --output-on-failure -j -L slow

echo "== tier-1: concurrency tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DOSQ_SANITIZE=thread \
  -DOSQ_BUILD_BENCHMARKS=OFF -DOSQ_BUILD_EXAMPLES=OFF "$@"
cmake --build build-tsan -j --target thread_pool_test \
  parallel_determinism_test query_service_stress_test deadline_stress_test
ctest --test-dir build-tsan --output-on-failure \
  -R 'ThreadPoolTest|ResolveNumThreadsTest|ParallelDeterminismTest|QueryServiceStressTest|DeadlineStressTest'

echo "== tier-1: fast suite under UndefinedBehaviorSanitizer =="
cmake -B build-ubsan -S . -DOSQ_SANITIZE=undefined \
  -DOSQ_BUILD_BENCHMARKS=OFF -DOSQ_BUILD_EXAMPLES=OFF "$@"
cmake --build build-ubsan -j
ctest --test-dir build-ubsan --output-on-failure -j -LE slow

echo "tier-1 OK"
