#!/usr/bin/env bash
# Line-coverage report for the query core and the serving layer.
#
# Builds an instrumented tree (OSQ_COVERAGE=ON) in build-cov/, runs the
# full ctest suite, and reports line coverage for src/core/ and src/serve/.
# Uses gcovr when available (text + build-cov/coverage.xml for CI);
# otherwise falls back to a per-file gcov summary — no extra dependency
# required.
#
# Usage: scripts/coverage.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== coverage: instrumented build + ctest =="
cmake -B build-cov -S . -DOSQ_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug \
  -DOSQ_BUILD_BENCHMARKS=OFF -DOSQ_BUILD_EXAMPLES=OFF "$@"
cmake --build build-cov -j
ctest --test-dir build-cov --output-on-failure -j

echo "== coverage: src/core + src/serve =="
if command -v gcovr >/dev/null 2>&1; then
  gcovr --root . --filter 'src/core/.*' --filter 'src/serve/.*' \
    --print-summary --xml build-cov/coverage.xml build-cov
else
  echo "(gcovr not found; falling back to plain gcov per-file summary)"
  tmp=$(mktemp -d)
  repo=$PWD
  (
    cd "$tmp"
    # CMake names counter files <src>.cc.gcno; gcov resolves them when
    # given the .gcno path directly (--object-directory does not).
    find "$repo/build-cov/src" \
      \( -path '*/core/*.gcno' -o -path '*/serve/*.gcno' \) \
      -exec gcov {} + 2>/dev/null || true
  ) | grep -A1 -E "^File '.*src/(core|serve)/" | grep -v '^--$'
  rm -rf "$tmp"
fi

echo "coverage OK"
