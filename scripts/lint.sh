#!/usr/bin/env bash
# Static-analysis gate: osq_lint (custom invariants, including the
# flow-aware lock-discipline rules of DESIGN.md §15) + clang
# -Wthread-safety cross-check (when clang is installed) + clang-tidy
# (generic C++ traps, diffed against a tracked baseline) + clang-format
# --check.
#
#   scripts/lint.sh [build-dir]         default build dir: ./build
#   scripts/lint.sh --json [build-dir]  emit osq_lint's machine-readable
#                                       findings JSON on stdout and exit
#                                       with its status (CI consumers;
#                                       the other stages are not run)
#
# Exit 0 only when every stage passes.  Stages whose tool is not installed
# (clang++ / clang-tidy / clang-format) are reported SKIPPED and do not
# fail the gate; osq_lint is built from this repo and always runs.
#
# clang-tidy baseline policy: scripts/lint_baseline.txt holds the
# "file [check]" pairs that predate the gate.  The run fails on any finding
# not in the baseline; shrink the baseline as findings are fixed (never grow
# it — new code must be clean).  See DESIGN.md §10.
set -euo pipefail
cd "$(dirname "$0")/.."

JSON_MODE=0
if [[ "${1:-}" == "--json" ]]; then
  JSON_MODE=1
  shift
fi

BUILD_DIR="${1:-build}"
fail=0

if [[ $JSON_MODE -eq 1 ]]; then
  if [[ ! -x "$BUILD_DIR/tools/osq_lint" ]]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    cmake --build "$BUILD_DIR" -j --target osq_lint > /dev/null
  fi
  exec "$BUILD_DIR/tools/osq_lint" --json --root .
fi

# --- stage 1: osq_lint over src/ + fixture self-test ----------------------
echo "== lint: osq_lint (custom invariant checker) =="
if [[ ! -x "$BUILD_DIR/tools/osq_lint" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  cmake --build "$BUILD_DIR" -j --target osq_lint > /dev/null
fi
# Per-rule finding counts go to stderr in text mode; show them in the
# tier-1 log so a regression names the rule family at a glance.
if "$BUILD_DIR/tools/osq_lint" --root . 2>&1; then
  echo "osq_lint: OK"
else
  echo "osq_lint: VIOLATIONS (see above, with per-rule counts)"
  fail=1
fi

# Self-test: the checker must still reject its bad fixtures — a checker
# that passes everything would otherwise make this gate silently green.
bad_missed=0
for f in tests/lint_fixtures/bad_*; do
  if "$BUILD_DIR/tools/osq_lint" "$f" > /dev/null 2>&1; then
    echo "osq_lint self-test: $f should have failed and did not"
    bad_missed=1
  fi
done
for f in tests/lint_fixtures/clean_*; do
  if ! "$BUILD_DIR/tools/osq_lint" "$f" > /dev/null 2>&1; then
    echo "osq_lint self-test: $f should have passed and did not"
    bad_missed=1
  fi
done
if [[ $bad_missed -eq 0 ]]; then
  echo "osq_lint self-test: OK (bad fixtures rejected, clean accepted)"
else
  fail=1
fi

# --- stage 2: clang -Wthread-safety cross-check ---------------------------
# The OSQ_* macros (src/common/annotations.h) expand to Clang's native
# thread-safety attributes, so a clang syntax-only pass over the
# concurrency TUs re-verifies the same lock contracts osq_lint enforces.
# -Wno-thread-safety-attributes: std::mutex is not a Clang "capability"
# type, so attribute-placement pedantry is expected; the analysis
# warnings themselves (-Werror=thread-safety-*) still fail the stage.
echo "== lint: clang++ -Wthread-safety =="
if ! command -v clang++ > /dev/null 2>&1; then
  echo "clang++ -Wthread-safety: SKIPPED (clang not installed)"
else
  tsa_files=(
    src/common/thread_pool.cc
    src/serve/result_cache.cc
    src/serve/query_service.cc
    src/shard/sharded_query_service.cc
    src/ingest/ingest_pipeline.cc
    src/ingest/update_sink.cc
  )
  if clang++ -std=c++20 -fsyntax-only -Isrc \
      -Wthread-safety -Werror=thread-safety-analysis \
      -Wno-thread-safety-attributes "${tsa_files[@]}"; then
    echo "clang++ -Wthread-safety: OK (${#tsa_files[@]} TU(s))"
  else
    echo "clang++ -Wthread-safety: VIOLATIONS (see above)"
    fail=1
  fi
fi

# --- stage 3: clang-tidy against the tracked baseline ---------------------
echo "== lint: clang-tidy =="
if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "clang-tidy: SKIPPED (not installed)"
elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  echo "clang-tidy: SKIPPED (no $BUILD_DIR/compile_commands.json; configure" \
       "with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
else
  mapfile -t tidy_files < <(git ls-files 'src/*.cc' 'tools/*.cc')
  tidy_out="$(mktemp)"
  clang-tidy -p "$BUILD_DIR" --quiet "${tidy_files[@]}" \
    > "$tidy_out" 2> /dev/null || true
  # Normalize findings to "relative-file [check]" so line drift doesn't
  # churn the baseline, then fail on anything the baseline doesn't cover.
  findings="$(mktemp)"
  sed -n 's|^.*/\(\(src\|tools\)/[^:]*\):[0-9]*:[0-9]*: warning: .*\(\[[a-z0-9.,-]*\]\)$|\1 \3|p' \
    "$tidy_out" | sort -u > "$findings"
  new="$(comm -23 "$findings" <(sort -u scripts/lint_baseline.txt) || true)"
  if [[ -n "$new" ]]; then
    echo "clang-tidy: NEW findings not in scripts/lint_baseline.txt:"
    echo "$new"
    grep -F -f <(echo "$new" | cut -d' ' -f1) "$tidy_out" | head -50 || true
    fail=1
  else
    echo "clang-tidy: OK ($(wc -l < "$findings") finding(s), all baselined)"
  fi
  rm -f "$tidy_out" "$findings"
fi

# --- stage 4: formatting --------------------------------------------------
echo "== lint: clang-format --check =="
if ! scripts/format.sh --check; then
  fail=1
fi

if [[ $fail -ne 0 ]]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
