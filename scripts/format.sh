#!/usr/bin/env bash
# clang-format wrapper over the tracked C++ sources (.clang-format profile).
#
#   scripts/format.sh           rewrite files in place
#   scripts/format.sh --check   fail (exit 1) if any file needs reformatting
#
# When clang-format is not installed the script reports SKIPPED and exits 0:
# the formatting gate is advisory where the tool is missing and binding
# where it exists (CI images that ship clang-format enforce it).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="apply"
if [[ "${1:-}" == "--check" ]]; then
  mode="check"
fi

if ! command -v clang-format > /dev/null 2>&1; then
  echo "format: SKIPPED (clang-format not installed)"
  exit 0
fi

# All tracked C++ sources; fixtures included so rule examples stay readable.
mapfile -t files < <(git ls-files '*.cc' '*.h')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format: no files"
  exit 0
fi

if [[ "$mode" == "check" ]]; then
  clang-format --style=file --dry-run --Werror "${files[@]}"
  echo "format: OK (${#files[@]} files)"
else
  clang-format --style=file -i "${files[@]}"
  echo "format: applied to ${#files[@]} files"
fi
