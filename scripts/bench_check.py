#!/usr/bin/env python3
"""Check a fresh bench JSON report against the committed baseline.

Rows are keyed by (name, threads).  Two kinds of checks:

  1. Regression: every fresh row that also exists in the baseline must
     satisfy  fresh_ms <= baseline_ms * (1 + tolerance).  Benchmarks on a
     loaded single-core runner are noisy, so the default tolerance is a
     generous 0.5 (i.e. flag only >1.5x slowdowns); tighten with
     --tolerance for quieter machines.
  2. Ratio floors: --min-ratio NUM,DEN,RATIO[,THREADS] (repeatable)
     requires  ms(NUM) / ms(DEN) >= RATIO  at the given thread count
     (default 1).  This is how the candidate-index speedup claim stays
     machine-checked:
         --min-ratio BM_FilterVerifyEndToEndNoIndex,BM_FilterVerifyEndToEnd,5
  3. Extra floors: --min-extra NAME,KEY,FLOOR[,THREADS] (repeatable)
     requires the fresh row NAME to carry a numeric extra KEY >= FLOOR.
     This keeps effectiveness counters alive, not just timings — e.g. the
     node-level signature rejections of the high-degree filter shape:
         --min-extra BM_GviewFilterHighDegree,sig_node_rejections,1

Baseline rows with no counterpart in the fresh report are listed but not
failed (the baseline aggregates several bench binaries; a single run covers
a subset).  It is an error if the fresh report matches nothing.

Exit codes: 0 = all checks passed, 1 = regression or ratio failure,
2 = bad usage / unreadable input.

Standalone:
    build/bench/bench_micro_match --json /tmp/fresh.json --threads 1
    scripts/bench_check.py /tmp/fresh.json
Tier-1: exported as an opt-in stage via OSQ_BENCH_CHECK=1 scripts/tier1.sh.
"""

import argparse
import json
import sys


def load_rows(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_check: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(rows, list):
        print(f"bench_check: {path}: expected a JSON array of rows",
              file=sys.stderr)
        sys.exit(2)
    out = {}
    for row in rows:
        if not isinstance(row, dict) or "name" not in row:
            print(f"bench_check: {path}: malformed row {row!r}",
                  file=sys.stderr)
            sys.exit(2)
        key = (row["name"], int(row.get("threads", 1)))
        out[key] = row
    return out


def parse_min_ratio(spec):
    parts = spec.split(",")
    if len(parts) not in (3, 4):
        print(f"bench_check: bad --min-ratio {spec!r} "
              "(want NUM,DEN,RATIO[,THREADS])", file=sys.stderr)
        sys.exit(2)
    threads = int(parts[3]) if len(parts) == 4 else 1
    try:
        ratio = float(parts[2])
    except ValueError:
        print(f"bench_check: bad ratio in --min-ratio {spec!r}",
              file=sys.stderr)
        sys.exit(2)
    return parts[0], parts[1], ratio, threads


def parse_min_extra(spec):
    parts = spec.split(",")
    if len(parts) not in (3, 4):
        print(f"bench_check: bad --min-extra {spec!r} "
              "(want NAME,KEY,FLOOR[,THREADS])", file=sys.stderr)
        sys.exit(2)
    threads = int(parts[3]) if len(parts) == 4 else 1
    try:
        floor = float(parts[2])
    except ValueError:
        print(f"bench_check: bad floor in --min-extra {spec!r}",
              file=sys.stderr)
        sys.exit(2)
    return parts[0], parts[1], floor, threads


def main():
    ap = argparse.ArgumentParser(
        description="Compare a fresh bench JSON against the baseline.")
    ap.add_argument("fresh", help="fresh bench JSON (from --json)")
    ap.add_argument("--baseline", default="BENCH_match.json",
                    help="committed baseline JSON (default: %(default)s)")
    ap.add_argument("--tolerance", type=float, default=0.5,
                    help="allowed relative slowdown vs baseline "
                         "(default: %(default)s)")
    ap.add_argument("--min-ratio", action="append", default=[],
                    metavar="NUM,DEN,RATIO[,THREADS]",
                    help="require ms(NUM)/ms(DEN) >= RATIO in the fresh "
                         "report (repeatable)")
    ap.add_argument("--min-extra", action="append", default=[],
                    metavar="NAME,KEY,FLOOR[,THREADS]",
                    help="require the fresh row NAME to carry extra "
                         "KEY >= FLOOR (repeatable)")
    args = ap.parse_args()

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)

    failures = []
    compared = 0
    for key, row in sorted(fresh.items()):
        name, threads = key
        fresh_ms = float(row["ms_per_query"])
        if key not in baseline:
            print(f"  new     {name} (threads={threads}): "
                  f"{fresh_ms:.6f} ms (no baseline row)")
            continue
        compared += 1
        base_ms = float(baseline[key]["ms_per_query"])
        limit = base_ms * (1.0 + args.tolerance)
        verdict = "ok" if fresh_ms <= limit else "REGRESSED"
        print(f"  {verdict:<7} {name} (threads={threads}): "
              f"{fresh_ms:.6f} ms vs baseline {base_ms:.6f} ms "
              f"(limit {limit:.6f})")
        if fresh_ms > limit:
            failures.append(
                f"{name} (threads={threads}) regressed: {fresh_ms:.6f} ms "
                f"> {limit:.6f} ms (baseline {base_ms:.6f} * "
                f"{1.0 + args.tolerance:g})")
    for key in sorted(baseline.keys() - fresh.keys()):
        print(f"  skipped {key[0]} (threads={key[1]}): not in fresh report")
    if compared == 0 and not args.min_ratio and not args.min_extra:
        print("bench_check: fresh report shares no rows with the baseline",
              file=sys.stderr)
        sys.exit(2)

    for spec in args.min_ratio:
        num, den, ratio, threads = parse_min_ratio(spec)
        num_key, den_key = (num, threads), (den, threads)
        if num_key not in fresh or den_key not in fresh:
            missing = num if num_key not in fresh else den
            failures.append(
                f"min-ratio {spec}: row {missing} (threads={threads}) "
                "missing from fresh report")
            continue
        den_ms = float(fresh[den_key]["ms_per_query"])
        if den_ms <= 0.0:
            failures.append(f"min-ratio {spec}: denominator {den} is zero")
            continue
        got = float(fresh[num_key]["ms_per_query"]) / den_ms
        verdict = "ok" if got >= ratio else "FAILED"
        print(f"  {verdict:<7} ratio {num}/{den} (threads={threads}): "
              f"{got:.2f}x (floor {ratio:g}x)")
        if got < ratio:
            failures.append(
                f"ratio {num}/{den} (threads={threads}) = {got:.2f}x "
                f"below floor {ratio:g}x")

    for spec in args.min_extra:
        name, extra_key, floor, threads = parse_min_extra(spec)
        row_key = (name, threads)
        if row_key not in fresh:
            failures.append(f"min-extra {spec}: row {name} "
                            f"(threads={threads}) missing from fresh report")
            continue
        value = fresh[row_key].get(extra_key)
        if not isinstance(value, (int, float)):
            failures.append(f"min-extra {spec}: row {name} "
                            f"(threads={threads}) has no numeric {extra_key}")
            continue
        verdict = "ok" if value >= floor else "FAILED"
        print(f"  {verdict:<7} extra {name}.{extra_key} (threads={threads}): "
              f"{value:g} (floor {floor:g})")
        if value < floor:
            failures.append(
                f"extra {name}.{extra_key} (threads={threads}) = {value:g} "
                f"below floor {floor:g}")

    if failures:
        print("bench_check: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    print("bench_check: OK")


if __name__ == "__main__":
    main()
