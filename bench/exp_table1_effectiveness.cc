// E1 / Table I (paper §VII, Exp-1): number of matches found by SubIso
// (identical labels) vs KMatch (ontology-based) per query template, varying
// the similarity threshold theta from 1.0 to 0.8, on the CrossDomain-like
// and Flickr-like workloads.
//
// Paper claim: SubIso finds few or no matches for the (generalized)
// templates, while ontology-based querying identifies the semantically
// close matches; counts grow as theta decreases.

#include <cstdio>
#include <utility>
#include <vector>

#include "baseline/subiso.h"
#include "bench_util.h"
#include "core/query_engine.h"
#include "gen/workload.h"

namespace {

using namespace osq;

void RunWorkload(gen::Workload w) {
  std::printf("\n-- %s-like (|V|=%zu |E|=%zu, ontology %zu concepts) --\n",
              w.name.c_str(), w.data.graph.num_nodes(),
              w.data.graph.num_edges(), w.data.ontology.num_labels());
  Graph g_copy = w.data.graph;
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(std::move(w.data.graph), std::move(w.data.ontology),
                     idx);

  const std::vector<double> thetas = {1.0, 0.9, 0.8};
  std::printf("%-6s %8s", "tmpl", "SubIso");
  for (double t : thetas) std::printf("  KMatch(%.1f)", t);
  std::printf("\n");

  // Popular photo/tag patterns can have millions of matches; cap the
  // enumeration per (query, theta) and flag truncated counts with '+'.
  constexpr size_t kMaxSteps = 500000;
  for (const auto& tmpl : w.templates) {
    size_t iso_total = 0;
    bool iso_truncated = false;
    std::vector<size_t> kmatch_total(thetas.size(), 0);
    std::vector<bool> kmatch_truncated(thetas.size(), false);
    for (const Graph& q : tmpl.queries) {
      SubIsoStats iso_stats;
      iso_total += SubIso(q, g_copy, MatchSemantics::kInduced, 0, kMaxSteps,
                          &iso_stats)
                       .size();
      iso_truncated = iso_truncated || iso_stats.truncated;
      for (size_t ti = 0; ti < thetas.size(); ++ti) {
        QueryOptions options;
        options.theta = thetas[ti];
        options.k = 0;  // count ALL matches, as Table I does
        options.max_search_steps = kMaxSteps;
        QueryResult r = engine.Query(q, options);
        kmatch_total[ti] += r.matches.size();
        kmatch_truncated[ti] =
            kmatch_truncated[ti] || r.verify_stats.truncated;
      }
    }
    std::printf("%-6s %7zu%c", tmpl.name.c_str(), iso_total,
                iso_truncated ? '+' : ' ');
    for (size_t ti = 0; ti < thetas.size(); ++ti) {
      std::printf("  %10zu%c", kmatch_total[ti],
                  kmatch_truncated[ti] ? '+' : ' ');
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::PrintTitle(
      "E1 / Table I: #matches, SubIso vs KMatch, theta in {1.0, 0.9, 0.8}");
  bench::PrintNote(
      "10 queries per template; totals over the query set (paper Exp-1)");
  gen::ScenarioParams cd;
  cd.scale = bench::Scaled(3000);
  cd.seed = 101;
  RunWorkload(gen::MakeCrossDomainWorkload(cd, 10));

  gen::ScenarioParams fl;
  fl.scale = bench::Scaled(2000);
  fl.seed = 202;
  RunWorkload(gen::MakeFlickrWorkload(fl, 10));
  return 0;
}
