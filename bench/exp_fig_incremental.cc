// E8 / Exp-3 (maintenance): incremental index maintenance (incIdx) vs
// batch re-computation (OntoIdx from scratch), varying |dG| as a fraction
// of |E|.  Paper claims: incIdx outperforms batch recomputation, taking as
// little as ~2% of its time for small update batches, with cost driven by
// AFF rather than |G|.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/index_maintenance.h"
#include "core/ontology_index.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

std::vector<GraphUpdate> MakeUpdateBatch(const Graph& g, size_t count,
                                         Rng* rng) {
  std::vector<GraphUpdate> updates;
  std::vector<EdgeTriple> edges = g.EdgeList();
  while (updates.size() < count) {
    if (rng->Bernoulli(0.5) && !edges.empty()) {
      const EdgeTriple& e = edges[rng->Index(edges.size())];
      updates.push_back(GraphUpdate::Delete(e.from, e.to, e.label));
    } else {
      NodeId u = static_cast<NodeId>(rng->Index(g.num_nodes()));
      NodeId v = static_cast<NodeId>(rng->Index(g.num_nodes()));
      if (u == v) continue;
      updates.push_back(GraphUpdate::Insert(u, v, 0));
    }
  }
  return updates;
}

}  // namespace

int main() {
  bench::PrintTitle("E8 / Exp-3: incremental maintenance vs batch rebuild");
  bench::PrintNote("CrossDomain-like, |V|=20000, N=2; mixed 50/50 "
                   "insert/delete batches");

  gen::ScenarioParams p;
  p.scale = bench::Scaled(20000);
  p.seed = 37;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  IndexOptions idx;
  idx.num_concept_graphs = 2;

  std::printf("%-12s %10s %12s %12s %10s %12s\n", "|dG|/|E|", "|dG|",
              "inc_ms", "batch_ms", "inc/batch", "AFF");
  for (double frac : {0.001, 0.005, 0.01, 0.05, 0.10}) {
    // Fresh graph + index per batch size so runs are independent.
    Graph g = ds.graph;
    OntologyIndex index = OntologyIndex::Build(g, ds.ontology, idx);
    size_t count = static_cast<size_t>(frac * static_cast<double>(
                                                  g.num_edges()));
    if (count == 0) count = 1;
    Rng rng(1000 + static_cast<uint64_t>(frac * 10000));
    std::vector<GraphUpdate> updates = MakeUpdateBatch(g, count, &rng);

    WallTimer inc_timer;
    MaintenanceStats stats = ApplyUpdates(&g, &index, updates);
    double inc_ms = inc_timer.ElapsedMillis();

    double batch_ms = bench::MedianMs(1, [&] {
      OntologyIndex::Build(g, ds.ontology, idx);
    });

    std::printf("%-12.3f %10zu %12.2f %12.2f %9.1f%% %12zu\n", frac, count,
                inc_ms, batch_ms,
                batch_ms > 0 ? 100.0 * inc_ms / batch_ms : 0.0,
                stats.aff_blocks);
  }
  bench::PrintNote("paper: incIdx takes as little as ~2% of batch time for "
                   "small |dG|");
  return 0;
}
