// E6 / filtering effectiveness: size of the extracted subgraph G_v
// relative to G, and the filter/verify phase breakdown, across workloads
// and thetas.  This is the mechanism behind the paper's headline "KMatch
// takes <= 22% of SubIso's time": verification runs on a G_v that is
// orders of magnitude smaller than G (cf. Prop. 4.2 and Fig. 9).

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

void RunWorkload(const char* name, gen::Dataset ds, uint64_t seed) {
  Graph g_copy = ds.graph;
  OntologyGraph o_copy = ds.ontology;
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);

  Rng rng(seed);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  while (queries.size() < 8) {
    Graph q = gen::ExtractQuery(g_copy, o_copy, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }

  std::printf("\n-- %s (|V|=%zu |E|=%zu) --\n", name, g_copy.num_nodes(),
              g_copy.num_edges());
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "theta", "avg|Gv|",
              "|Gv|/|G|", "filter_ms", "verify_ms", "matches");
  for (double theta : {0.95, 0.9, 0.85, 0.8}) {
    QueryOptions options;
    options.theta = theta;
    options.k = 10;
    double gv_nodes = 0;
    double filter_ms = 0;
    double verify_ms = 0;
    size_t matches = 0;
    for (const Graph& q : queries) {
      QueryResult r = engine.Query(q, options);
      gv_nodes += static_cast<double>(r.filter_stats.gv_nodes);
      filter_ms += r.filter_ms;
      verify_ms += r.verify_ms;
      matches += r.matches.size();
    }
    gv_nodes /= static_cast<double>(queries.size());
    std::printf("%-8.2f %12.1f %11.4f%% %12.3f %12.3f %12zu\n", theta,
                gv_nodes,
                100.0 * gv_nodes / static_cast<double>(g_copy.num_nodes()),
                filter_ms, verify_ms, matches);
  }
}

}  // namespace

int main() {
  bench::PrintTitle("E6: filtering effectiveness — |G_v| vs |G|, phase split");
  gen::ScenarioParams cd;
  cd.scale = bench::Scaled(20000);
  cd.seed = 23;
  RunWorkload("CrossDomain-like", gen::MakeCrossDomainLike(cd), 41);
  gen::ScenarioParams fl;
  fl.scale = bench::Scaled(20000);
  fl.seed = 29;
  RunWorkload("Flickr-like", gen::MakeFlickrLike(fl), 43);
  return 0;
}
