// Live-ingest maintenance benchmark: the paper's incremental-maintenance
// claim (updates cost <= 2% of recomputing the index) measured ONLINE —
// while reader threads serve queries against the same engine.
//
// Two phases:
//   online    — a producer thread streams a churn workload (gen/churn.h)
//               through an IngestPipeline into a live QueryService;
//               --threads reader threads run closed-loop over the
//               workload queries the whole time.  The reported cost is
//               the mean apply time per batch (one snapshot cut).
//   recompute — a full engine + index rebuild over the final graph: the
//               price the online path would pay per batch if maintenance
//               were rebuild-from-scratch.
//
// Dataset: CrossDomain-like at |V|=20000 — the same setting as the
// offline maintenance experiment (bench/exp_fig_incremental.cc), where
// per-update AFF stays a few blocks and the paper's ratio holds.  On
// label-skewed graphs (Flickr-like) drift churn splits/merges the huge
// hot-label partition blocks and per-update cost grows with |V| — a
// known limit documented in DESIGN.md §14, deliberately not this
// benchmark's subject.
//
//   bench_ingest [--threads 2] [--steps 600] [--batch 16]
//                [--linger-ms 1.0] [--max-pending 256] [--deadline-ms 100]
//                [--json BENCH_ingest.json]
//
// The online cost is ServeStats::write_apply_us per batch — maintenance
// work inside the exclusive lock.  Lock WAIT is excluded on purpose: it
// measures reader contention (reported separately as write_wait /
// applied-lag / burst p99), not the price of incremental maintenance.
// --deadline-ms bounds each read's evaluation so a pathological query on
// the churned graph cannot hold the shared lock for seconds (the default
// serving posture; 0 disables).
//
// The JSON rows feed scripts/bench_check.py in tier-1 (OSQ_BENCH_CHECK=1):
//   --min-ratio BM_IngestRecompute,BM_IngestOnline,50
// i.e. one online batch <= 2% of one recompute, under concurrent reads.
// The online row also carries the staleness/fairness gauges: applied lag,
// coalescing ratio, backlog at drain, and the p99 of reads that overlapped
// a write burst.  OSQ_BENCH_SCALE scales the dataset.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/index_maintenance.h"
#include "core/query_engine.h"
#include "gen/churn.h"
#include "gen/workload.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/update_sink.h"
#include "serve/query_service.h"

namespace osq {
namespace {

using bench::ArgDouble;
using bench::ArgSize;
using bench::ArgValue;
using bench::JsonReport;
using bench::MedianMs;
using bench::PrintNote;
using bench::PrintTitle;
using bench::Scaled;

}  // namespace

int Main(int argc, char** argv) {
  size_t threads = ArgSize(argc, argv, "--threads", 2);
  if (threads == 0) threads = 1;
  size_t steps = ArgSize(argc, argv, "--steps", 600);
  size_t batch = ArgSize(argc, argv, "--batch", 16);
  double linger_ms = ArgDouble(argc, argv, "--linger-ms", 1.0);
  size_t max_pending = ArgSize(argc, argv, "--max-pending", 256);
  double deadline_ms = ArgDouble(argc, argv, "--deadline-ms", 100.0);
  std::string json_path =
      ArgValue(argc, argv, "--json", "BENCH_ingest.json");

  PrintTitle("ingest: live churn vs recompute (CrossDomain-like)");
  gen::ScenarioParams params;
  params.scale = Scaled(20000);
  params.seed = 11;
  gen::Workload workload = gen::MakeCrossDomainWorkload(params, 6);
  std::vector<Graph> queries;
  for (const gen::QueryTemplate& t : workload.templates) {
    for (const Graph& q : t.queries) queries.push_back(q);
  }
  // The engine takes the dataset by move; keep copies for the churn
  // stream's seed state and the offline rebuild.
  Graph seed_graph = workload.data.graph;
  OntologyGraph ontology = workload.data.ontology;
  std::printf("dataset: %zu nodes, %zu edges; %zu distinct queries; "
              "%zu reader threads; %zu churn steps\n",
              seed_graph.num_nodes(), seed_graph.num_edges(),
              queries.size(), threads, steps);

  WallTimer build_timer;
  ServeOptions serve;
  serve.default_deadline_ms = deadline_ms;
  QueryService service(
      QueryEngine(std::move(workload.data.graph),
                  std::move(workload.data.ontology), IndexOptions{}),
      serve);
  std::printf("index built in %.1f ms\n", build_timer.ElapsedMillis());

  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;

  // ---- online: churn through the pipeline under reader load ------------
  QueryServiceSink sink(&service);
  IngestOptions io;
  io.max_batch = batch;
  io.max_linger_ms = linger_ms;
  io.max_pending = max_pending;
  IngestPipeline pipeline(&sink, io);

  gen::ChurnParams cp;
  cp.seed = params.seed * 131 + 7;
  gen::ChurnStream churn(seed_graph, cp);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  const size_t chunk = 25;
  WallTimer online_timer;
  RunConcurrently(threads + 1, [&](size_t tid) {
    if (tid == 0) {
      for (size_t offset = 0; offset < steps; offset += chunk) {
        size_t n = steps - offset < chunk ? steps - offset : chunk;
        for (const GraphUpdate& update : churn.Next(n)) {
          // Backpressure: back off instead of spinning — on a saturated
          // core a yield loop would starve the worker we are waiting on.
          while (!pipeline.Submit(update)) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
      }
      pipeline.Flush();
      done.store(true, std::memory_order_release);
      return;
    }
    size_t it = 0;
    while (!done.load(std::memory_order_acquire)) {
      const Graph& q = queries[(it + tid * 7) % queries.size()];
      (void)service.Query(q, options);
      ++it;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  double online_wall_ms = online_timer.ElapsedMillis();
  pipeline.Stop();

  IngestStats ingest = pipeline.Stats();
  ServeStats stats = service.Stats();
  AugmentServeStats(pipeline, &stats);
  // Maintenance work inside the exclusive lock, per snapshot cut; the
  // sink's wall time (ingest.apply_ms) additionally contains writer lock
  // wait and is reported as an extra, not used for the claim.
  double ms_per_batch =
      stats.update_batches > 0
          ? stats.write_apply_us / 1000.0 /
                static_cast<double>(stats.update_batches)
          : 0.0;
  std::printf("online: %llu updates in %llu batches over %.1f ms wall "
              "(%.4f ms/batch in-lock apply) under %llu concurrent "
              "reads\n",
              static_cast<unsigned long long>(ingest.applied +
                                              ingest.skipped),
              static_cast<unsigned long long>(ingest.batches),
              online_wall_ms, ms_per_batch,
              static_cast<unsigned long long>(
                  reads.load(std::memory_order_relaxed)));
  std::fputs(ingest.ToString().c_str(), stdout);

  // ---- recompute: what one batch would cost as rebuild-from-scratch ----
  Graph final_graph = seed_graph;
  for (const GraphUpdate& u : churn.history()) {
    if (u.kind == GraphUpdate::Kind::kInsertEdge) {
      (void)final_graph.AddEdge(u.edge.from, u.edge.to, u.edge.label);
    } else {
      (void)final_graph.RemoveEdge(u.edge.from, u.edge.to, u.edge.label);
    }
  }
  double recompute_ms = MedianMs(3, [&] {
    QueryEngine rebuilt(final_graph, ontology, IndexOptions{});
    (void)rebuilt;
  });
  std::printf("recompute: full engine rebuild on the final graph "
              "(%zu edges) takes %.1f ms\n",
              final_graph.num_edges(), recompute_ms);

  double ratio = ms_per_batch > 0.0 ? recompute_ms / ms_per_batch : 0.0;
  double online_pct = ratio > 0.0 ? 100.0 / ratio : 0.0;

  JsonReport report;
  report.Add("BM_IngestOnline", ms_per_batch, 1,
             {{"batches", static_cast<double>(ingest.batches)},
              {"sink_ms_per_batch",
               ingest.batches > 0
                   ? ingest.apply_ms / static_cast<double>(ingest.batches)
                   : 0.0},
              {"write_wait_ms", stats.write_wait_us / 1000.0},
              {"updates_applied", static_cast<double>(ingest.applied)},
              {"coalescing_ratio", ingest.coalescing_ratio()},
              {"applied_lag_ms", ingest.applied_lag_ms},
              {"max_applied_lag_ms", ingest.max_applied_lag_ms},
              {"backlog_end", static_cast<double>(ingest.backlog)},
              {"reads", static_cast<double>(
                            reads.load(std::memory_order_relaxed))},
              {"reader_p99_hit_us", stats.hit_latency.p99_us},
              {"reader_p99_miss_us", stats.miss_latency.p99_us},
              {"burst_reads",
               static_cast<double>(stats.burst_read_latency.count)},
              {"burst_p99_us", stats.burst_read_latency.p99_us},
              {"cache_invalidation_rate", stats.cache_invalidation_rate()},
              {"shed", static_cast<double>(stats.shed)}});
  report.Add("BM_IngestRecompute", recompute_ms, 1,
             {{"final_edges", static_cast<double>(final_graph.num_edges())}});

  PrintTitle("ingest: cumulative service stats");
  std::fputs(stats.ToString().c_str(), stdout);
  std::printf("online maintenance = %.3f%% of recompute "
              "(%.0fx ratio)\n", online_pct, ratio);
  PrintNote(ratio >= 50.0
                ? "acceptance: online batch <= 2% of recompute — OK"
                : "acceptance: online batch above 2% of recompute — "
                  "REGRESSION");

  if (!json_path.empty()) report.WriteTo(json_path);
  return ratio >= 50.0 ? 0 : 1;
}

}  // namespace osq

int main(int argc, char** argv) { return osq::Main(argc, argv); }
