// E7 / Exp-3 (index cost): OntoIdx construction time and index size |I|
// vs data graph size, number of concept graphs N = card(I), and beta.
// Paper claims: construction is efficient (O(N |E| log |V|)) and the index
// is small relative to G.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/ontology_index.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

}  // namespace

int main() {
  bench::PrintTitle("E7 / Exp-3: index construction time and size");

  std::printf("\n(a) vs |G|  (N=2, beta=0.81)\n");
  std::printf("%-10s %10s %12s %12s %12s\n", "|V|", "|E|", "build_ms",
              "|I|", "|I|/(|V|+|E|)");
  for (size_t scale : {5000, 10000, 20000, 40000}) {
    gen::ScenarioParams p;
    p.scale = bench::Scaled(scale);
    p.seed = 31;
    gen::Dataset ds = gen::MakeCrossDomainLike(p);
    IndexOptions idx;
    idx.num_concept_graphs = 2;
    double ms = bench::MedianMs(3, [&] {
      OntologyIndex::Build(ds.graph, ds.ontology, idx);
    });
    OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, idx);
    size_t size = index.TotalSize();
    std::printf("%-10zu %10zu %12.2f %12zu %12.4f\n", ds.graph.num_nodes(),
                ds.graph.num_edges(), ms, size,
                static_cast<double>(size) /
                    static_cast<double>(ds.graph.num_nodes() +
                                        ds.graph.num_edges()));
  }

  std::printf("\n(b) vs N = card(I)  (|V|=20000, beta=0.81)\n");
  std::printf("%-10s %12s %12s\n", "N", "build_ms", "|I|");
  {
    gen::ScenarioParams p;
    p.scale = bench::Scaled(20000);
    p.seed = 31;
    gen::Dataset ds = gen::MakeCrossDomainLike(p);
    for (size_t n : {1, 2, 3, 4}) {
      IndexOptions idx;
      idx.num_concept_graphs = n;
      double ms = bench::MedianMs(3, [&] {
        OntologyIndex::Build(ds.graph, ds.ontology, idx);
      });
      OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, idx);
      std::printf("%-10zu %12.2f %12zu\n", n, ms, index.TotalSize());
    }
  }

  std::printf("\n(c) vs beta  (|V|=20000, N=2)\n");
  std::printf("%-10s %12s %12s %14s\n", "beta", "build_ms", "|I|",
              "avg#blocks");
  {
    gen::ScenarioParams p;
    p.scale = bench::Scaled(20000);
    p.seed = 31;
    gen::Dataset ds = gen::MakeCrossDomainLike(p);
    for (double beta : {0.95, 0.9, 0.81, 0.729}) {
      IndexOptions idx;
      idx.num_concept_graphs = 2;
      idx.beta = beta;
      double ms = bench::MedianMs(3, [&] {
        OntologyIndex::Build(ds.graph, ds.ontology, idx);
      });
      IndexBuildStats stats;
      OntologyIndex index =
          OntologyIndex::Build(ds.graph, ds.ontology, idx, &stats);
      std::printf("%-10.3f %12.2f %12zu %14.0f\n", beta, ms,
                  index.TotalSize(),
                  static_cast<double>(stats.total_blocks) /
                      static_cast<double>(idx.num_concept_graphs));
    }
  }
  return 0;
}
