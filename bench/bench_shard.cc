// Scatter-gather serving benchmark for ShardedQueryService (shard/).
//
// Dataset: Community-like (gen/scenarios.h) — id-contiguous communities
// with ring-local cross edges, partitioned by the RANGE policy so shard
// boundaries align with community boundaries and halo replication stays
// thin.  That locality is what makes per-shard work partition; the
// HashContrast row below shows the same fan-out under hash partitioning,
// where every shard's halo floods the graph and filtering work is
// duplicated per shard.
//
// Phases:
//   scatter — per-shard fan-out on every request (cache off) for
//             --shards counts {1, 2, 4}; the N=1 row is the coordinator
//             baseline, so ms(N)/ms(1) is the pure sharding overhead.
//             On the single-core CI runner the scatter is sequential, so
//             the acceptance claim is structural: overhead <= 25%
//             (checked as --min-ratio BM_ShardServeShards1,
//             BM_ShardServeShards4,0.8 by scripts/bench_check.py).
//   hot     — cache on, closed loop (vector-stamped hits).
//   mixed   — readers + a writer toggling one edge (routed batches,
//             vector-stamp invalidation).
//
// Before timing, every shard configuration is differentially checked
// against a single QueryEngine oracle — a mismatch fails the run outright.
//
//   bench_shard [--threads 1] [--iterations 500] [--json BENCH_shard.json]
//
// OSQ_BENCH_SCALE scales the dataset.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/index_maintenance.h"
#include "core/query_engine.h"
#include "gen/workload.h"
#include "shard/sharded_query_service.h"

namespace osq {
namespace {

using bench::ArgSize;
using bench::ArgValue;
using bench::JsonReport;
using bench::PrintNote;
using bench::PrintTitle;
using bench::Scaled;

constexpr uint32_t kHaloRadius = 3;

struct PhaseResult {
  double mean_us = 0.0;
  uint64_t requests = 0;
};

PhaseResult RunReaders(ShardedQueryService* service,
                       const std::vector<Graph>& queries,
                       const QueryOptions& options, size_t threads,
                       size_t iterations) {
  std::vector<double> total_us(threads, 0.0);
  std::vector<uint64_t> count(threads, 0);
  RunConcurrently(threads, [&](size_t tid) {
    for (size_t it = 0; it < iterations; ++it) {
      const Graph& q = queries[(it + tid * 7) % queries.size()];
      ShardedServedResult served = service->Query(q, options);
      total_us[tid] += served.serve_us;
      ++count[tid];
    }
  });
  PhaseResult r;
  for (size_t t = 0; t < threads; ++t) {
    r.mean_us += total_us[t];
    r.requests += count[t];
  }
  if (r.requests > 0) r.mean_us /= static_cast<double>(r.requests);
  return r;
}

}  // namespace

int Main(int argc, char** argv) {
  size_t threads = ArgSize(argc, argv, "--threads", 1);
  size_t iterations = ArgSize(argc, argv, "--iterations", 500);
  std::string json_path = ArgValue(argc, argv, "--json", "BENCH_shard.json");

  PrintTitle("shard: ShardedQueryService scatter-gather (Community-like)");
  gen::ScenarioParams params;
  params.scale = Scaled(800);
  params.seed = 7;
  gen::Workload workload = gen::MakeCommunityWorkload(params, 6);
  std::vector<Graph> queries;
  for (const gen::QueryTemplate& t : workload.templates) {
    for (const Graph& q : t.queries) {
      // The sharded tier rejects queries whose pivot eccentricity exceeds
      // the halo radius; bench only what every shard count can serve.
      if (ChoosePivot(q).eccentricity <= kHaloRadius) {
        queries.push_back(q);
      }
    }
  }
  if (queries.empty()) {
    std::fprintf(stderr, "no servable queries generated\n");
    return 1;
  }
  std::printf("dataset: %zu nodes, %zu edges; %zu distinct queries; "
              "%zu reader threads\n",
              workload.data.graph.num_nodes(),
              workload.data.graph.num_edges(), queries.size(), threads);

  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;

  // Oracle answers for the differential pre-check.
  QueryEngine oracle(workload.data.graph, workload.data.ontology,
                     IndexOptions{});
  std::vector<std::vector<Match>> expected;
  expected.reserve(queries.size());
  for (const Graph& q : queries) {
    expected.push_back(oracle.Query(q, options).matches);
  }

  JsonReport report;
  double shards1_us = 0.0;

  // ---- scatter: cache off, every request is a full fan-out -------------
  // Range policy (community-aligned) carries the structural claim; the
  // trailing hash run shows the halo-flooding contrast at N=4.
  struct ScatterConfig {
    size_t n;
    ShardPolicy policy;
    const char* row;
  };
  const ScatterConfig configs[] = {
      {1, ShardPolicy::kRange, "BM_ShardServeShards1"},
      {2, ShardPolicy::kRange, "BM_ShardServeShards2"},
      {4, ShardPolicy::kRange, "BM_ShardServeShards4"},
      {4, ShardPolicy::kHash, "BM_ShardServeHashContrast4"},
  };
  for (const ScatterConfig& cfg : configs) {
    ShardOptions so;
    so.num_shards = cfg.n;
    so.policy = cfg.policy;
    so.halo_radius = kHaloRadius;
    ServeOptions serve;
    serve.cache_capacity = 0;
    WallTimer build_timer;
    ShardedQueryService service(workload.data.graph, workload.data.ontology,
                                IndexOptions{}, so, serve);
    double build_ms = build_timer.ElapsedMillis();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      ShardedServedResult served = service.Query(queries[qi], options);
      if (!served.result.status.ok() ||
          served.result.matches != expected[qi]) {
        std::fprintf(stderr,
                     "DIFFERENTIAL MISMATCH: shards=%zu policy=%s "
                     "query %zu\n",
                     cfg.n, cfg.policy == ShardPolicy::kRange ? "range"
                                                              : "hash",
                     qi);
        return 1;
      }
    }
    PhaseResult scatter =
        RunReaders(&service, queries, options, threads, iterations);
    if (cfg.n == 1) shards1_us = scatter.mean_us;
    double overhead = shards1_us > 0.0
                          ? scatter.mean_us / shards1_us - 1.0
                          : 0.0;
    std::printf("scatter shards=%zu (%s): built %.1f ms; %5zu requests, "
                "mean %9.1f us/query (overhead vs N=1: %+.1f%%)\n",
                cfg.n, cfg.policy == ShardPolicy::kRange ? "range" : "hash",
                build_ms, static_cast<size_t>(scatter.requests),
                scatter.mean_us, 100.0 * overhead);
    report.Add(cfg.row, scatter.mean_us / 1000.0, threads,
               {{"num_shards", static_cast<double>(cfg.n)}});
  }

  // ---- hot + mixed on a 2-shard service with the cache on --------------
  ShardOptions so;
  so.num_shards = 2;
  so.policy = ShardPolicy::kRange;
  so.halo_radius = kHaloRadius;
  ShardedQueryService service(workload.data.graph, workload.data.ontology,
                              IndexOptions{}, so, ServeOptions{});
  PhaseResult warm = RunReaders(&service, queries, options, 1,
                                queries.size());
  PhaseResult hot =
      RunReaders(&service, queries, options, threads, iterations);
  double speedup = hot.mean_us > 0.0 ? warm.mean_us / hot.mean_us : 0.0;
  std::printf("hot shards=2: %5zu requests, mean %9.1f us/query "
              "(miss/hit speedup %.1fx)\n",
              static_cast<size_t>(hot.requests), hot.mean_us, speedup);
  report.Add("BM_ShardServeHot", hot.mean_us / 1000.0, threads,
             {{"num_shards", 2.0}, {"speedup_miss_over_hit", speedup}});

  std::vector<EdgeTriple> edges = workload.data.graph.EdgeList();
  std::atomic<bool> stop{false};
  uint64_t toggles = 0;
  PhaseResult mixed;
  {
    EdgeTriple e = edges.front();
    std::thread writer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        GraphUpdate update =
            toggles % 2 == 0 ? GraphUpdate::Delete(e.from, e.to, e.label)
                             : GraphUpdate::Insert(e.from, e.to, e.label);
        (void)service.ApplyUpdate(update);
        ++toggles;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (toggles % 2 == 1) {  // leave the graph as we found it
        (void)service.ApplyUpdate(GraphUpdate::Insert(e.from, e.to,
                                                      e.label));
        ++toggles;
      }
    });
    mixed = RunReaders(&service, queries, options, threads, iterations);
    stop.store(true, std::memory_order_release);
    writer.join();
  }
  ServeStats stats = service.Stats();
  double hit_rate = stats.queries > 0
                        ? static_cast<double>(stats.cache_hits) /
                              static_cast<double>(stats.queries)
                        : 0.0;
  std::printf("mixed shards=2: %5zu requests, mean %9.1f us/query "
              "(%llu routed update batches)\n",
              static_cast<size_t>(mixed.requests), mixed.mean_us,
              static_cast<unsigned long long>(toggles));
  report.Add("BM_ShardServeMixed", mixed.mean_us / 1000.0, threads,
             {{"num_shards", 2.0},
              {"update_batches", static_cast<double>(toggles)},
              {"overall_hit_rate", hit_rate}});

  PrintTitle("shard: cumulative 2-shard service stats");
  std::fputs(stats.ToString().c_str(), stdout);
  PrintNote("differential pre-check vs single-engine oracle: OK for "
            "shards {1, 2, 4} range + {4} hash");

  if (!json_path.empty()) report.WriteTo(json_path);
  return 0;
}

}  // namespace osq

int main(int argc, char** argv) { return osq::Main(argc, argv); }
