// E3 / Exp-2(b): query evaluation time vs query size |V_p|, fixed data
// graph.  Paper claim: all algorithms grow with query size, KMatch stays
// far below the baselines because verification runs on the small G_v.

#include <cstdio>
#include <utility>
#include <vector>

#include "baseline/rewriting.h"
#include "baseline/simmatrix.h"
#include "baseline/subiso.h"
#include "bench_util.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

constexpr int kReps = 3;
constexpr size_t kQueriesPerSize = 6;
constexpr size_t kMaxRewritings = 20000;

}  // namespace

int main() {
  bench::PrintTitle("E3 / Exp-2(b): query time (ms) vs |Q|");
  bench::PrintNote("CrossDomain-like, |V|=15000; theta=0.9, K=10; median of "
                   "3, summed over 6 queries");

  gen::ScenarioParams p;
  p.scale = bench::Scaled(15000);
  p.seed = 13;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  Graph g_copy = ds.graph;
  OntologyGraph o_copy = ds.ontology;
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);
  SimilarityFunction sim(0.9);

  std::printf("%-8s %10s %10s %10s %12s\n", "|Vp|", "KMatch", "SubIso",
              "VF2", "SubIso_r");
  for (size_t qsize : {3, 4, 5, 6}) {
    Rng rng(777 + qsize);
    gen::QueryGenParams qp;
    qp.num_nodes = qsize;
    qp.generalize_prob = 0.5;
    qp.generalize_hops = 1;
    std::vector<Graph> queries;
    size_t attempts = 0;
    while (queries.size() < kQueriesPerSize && attempts < 200) {
      ++attempts;
      Graph q = gen::ExtractQuery(g_copy, o_copy, qp, &rng);
      if (!q.empty()) queries.push_back(std::move(q));
    }

    QueryOptions options;
    options.theta = 0.9;
    options.k = 10;

    double kmatch_ms = bench::MedianMs(kReps, [&] {
      for (const Graph& q : queries) (void)engine.Query(q, options);  // timed
    });
    double subiso_ms = bench::MedianMs(kReps, [&] {
      for (const Graph& q : queries) {
        SubIso(q, g_copy, options.semantics, options.k);
      }
    });
    std::vector<SimMatrix> matrices;
    for (const Graph& q : queries) {
      matrices.push_back(BuildSimMatrix(q, g_copy, o_copy, sim,
                                        options.theta));
    }
    double vf2_ms = bench::MedianMs(kReps, [&] {
      for (size_t i = 0; i < queries.size(); ++i) {
        SimMatrixMatch(queries[i], g_copy, matrices[i], options);
      }
    });
    double rewrite_ms = bench::MedianMs(1, [&] {
      for (const Graph& q : queries) {
        SubIsoRewrite(q, g_copy, o_copy, sim, options, kMaxRewritings);
      }
    });
    std::printf("%-8zu %10.2f %10.2f %10.2f %12.2f\n", qsize, kmatch_ms,
                subiso_ms, vf2_ms, rewrite_ms);
  }
  return 0;
}
