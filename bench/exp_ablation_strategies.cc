// E10 / ablation of Gview/KMatch design choices:
//   (a) lazy vs exact candidate initialization in Gview — the paper's lazy
//       strategy avoids the O(|Q| |G|) candidate scan (§IV-B);
//   (b) edge-label-aware vs label-unaware concept graphs (index variant);
//   (c) induced (paper definition) vs homomorphic match semantics.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/filtering.h"
#include "core/kmatch.h"
#include "core/ontology_index.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

constexpr int kReps = 3;

double RunQueries(const OntologyIndex& index,
                  const std::vector<Graph>& queries,
                  const QueryOptions& options, double* avg_gv,
                  size_t* matches) {
  double gv = 0;
  size_t found = 0;
  double ms = bench::MedianMs(kReps, [&] {
    gv = 0;
    found = 0;
    for (const Graph& q : queries) {
      FilterResult filter = GviewFilter(index, q, options);
      gv += static_cast<double>(filter.stats.gv_nodes);
      found += KMatch(q, filter, options).size();
    }
  });
  *avg_gv = gv / static_cast<double>(queries.size());
  *matches = found;
  return ms;
}

}  // namespace

int main() {
  bench::PrintTitle("E10 / ablation: lazy candidates, edge-label-aware "
                    "index, match semantics");
  bench::PrintNote("CrossDomain-like, |V|=15000, |Q|=4, theta=0.85, K=10; "
                   "8 queries, median of 3");

  gen::ScenarioParams p;
  p.scale = bench::Scaled(15000);
  p.seed = 59;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);

  Rng rng(61);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  while (queries.size() < 8) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }

  IndexOptions base_idx;
  base_idx.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, base_idx);
  IndexOptions aware_idx = base_idx;
  aware_idx.edge_label_aware = true;
  WallTimer aware_build;
  OntologyIndex aware = OntologyIndex::Build(ds.graph, ds.ontology, aware_idx);
  double aware_build_ms = aware_build.ElapsedMillis();

  std::printf("%-34s %10s %10s %10s\n", "variant", "time_ms", "avg|Gv|",
              "matches");
  double gv;
  size_t matches;

  QueryOptions options;
  options.theta = 0.85;
  options.k = 10;

  double ms = RunQueries(index, queries, options, &gv, &matches);
  std::printf("%-34s %10.2f %10.1f %10zu\n", "baseline (paper defaults)", ms,
              gv, matches);

  QueryOptions exact = options;
  exact.lazy_candidates = false;
  ms = RunQueries(index, queries, exact, &gv, &matches);
  std::printf("%-34s %10.2f %10.1f %10zu\n", "exact candidate init", ms, gv,
              matches);

  ms = RunQueries(aware, queries, options, &gv, &matches);
  std::printf("%-34s %10.2f %10.1f %10zu\n", "edge-label-aware index", ms,
              gv, matches);

  QueryOptions homo = options;
  homo.semantics = MatchSemantics::kHomomorphicEdges;
  ms = RunQueries(index, queries, homo, &gv, &matches);
  std::printf("%-34s %10.2f %10.1f %10zu\n", "homomorphic edge semantics",
              ms, gv, matches);

  std::printf("\nindex sizes: unaware |I|=%zu, aware |I|=%zu "
              "(aware build: %.1f ms)\n",
              index.TotalSize(), aware.TotalSize(), aware_build_ms);

  // Similarity-model sweep (the paper's "class of similarity functions"):
  // same data, same theta, different sim(d) shapes.
  std::printf("\nsimilarity models at theta=0.5:\n");
  std::printf("%-34s %10s %10s %10s\n", "model", "time_ms", "avg|Gv|",
              "matches");
  for (int model = 0; model < 3; ++model) {
    IndexOptions midx = base_idx;
    midx.similarity_model = static_cast<SimilarityModel>(model);
    midx.similarity_cutoff = 3;
    midx.beta = 0.5;
    OntologyIndex mindex = OntologyIndex::Build(ds.graph, ds.ontology, midx);
    QueryOptions mopts = options;
    mopts.theta = 0.5;
    double mgv;
    size_t mmatches;
    double mms = RunQueries(mindex, queries, mopts, &mgv, &mmatches);
    const char* names[] = {"exponential (paper)", "linear (cutoff 3)",
                           "reciprocal"};
    std::printf("%-34s %10.2f %10.1f %10zu\n", names[model], mms, mgv,
                mmatches);
  }
  return 0;
}
