// M1: microbenchmarks of the ontology substrate — bounded BFS distance,
// similarity balls, concept label selection.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "gen/synthetic.h"
#include "graph/label_dictionary.h"
#include "ontology/ontology_partition.h"
#include "ontology/similarity.h"

namespace {

using namespace osq;

OntologyGraph MakeOntology(size_t labels) {
  LabelDictionary dict;
  gen::SyntheticOntologyParams p;
  p.num_labels = labels;
  return gen::MakeTaxonomyOntology(p, &dict);
}

void BM_OntologyDistance(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  OntologyGraph o = MakeOntology(n);
  Rng rng(1);
  for (auto _ : state) {
    LabelId a = static_cast<LabelId>(rng.Index(n));
    LabelId b = static_cast<LabelId>(rng.Index(n));
    benchmark::DoNotOptimize(o.Distance(a, b, 4));
  }
}
BENCHMARK(BM_OntologyDistance)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BallAround(benchmark::State& state) {
  size_t n = 10000;
  uint32_t radius = static_cast<uint32_t>(state.range(0));
  OntologyGraph o = MakeOntology(n);
  Rng rng(2);
  for (auto _ : state) {
    LabelId a = static_cast<LabelId>(rng.Index(n));
    benchmark::DoNotOptimize(o.BallAround(a, radius));
  }
}
BENCHMARK(BM_BallAround)->Arg(1)->Arg(2)->Arg(3)->Arg(5);

void BM_SimilarityLookup(benchmark::State& state) {
  OntologyGraph o = MakeOntology(10000);
  SimilarityFunction sim(0.9);
  Rng rng(3);
  for (auto _ : state) {
    LabelId a = static_cast<LabelId>(rng.Index(10000));
    LabelId b = static_cast<LabelId>(rng.Index(10000));
    benchmark::DoNotOptimize(sim.Similarity(o, a, b, 0.81));
  }
}
BENCHMARK(BM_SimilarityLookup);

void BM_SelectConceptLabels(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  OntologyGraph o = MakeOntology(n);
  SimilarityFunction sim(0.9);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectConceptLabels(o, sim, 0.81, 8, &rng));
  }
}
BENCHMARK(BM_SelectConceptLabels)->Arg(1000)->Arg(10000);

void BM_RadiusComputation(benchmark::State& state) {
  SimilarityFunction sim(0.9);
  double theta = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.Radius(theta));
    theta = theta >= 0.99 ? 0.5 : theta + 0.01;
  }
}
BENCHMARK(BM_RadiusComputation);

}  // namespace
