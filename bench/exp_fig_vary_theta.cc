// E4 / Exp-2(c): query evaluation time vs similarity threshold theta.
// Lower theta widens every candidate set; the paper's point is that the
// index keeps KMatch nearly flat while the rewriting baseline blows up
// combinatorially (its rewritten-query count is the product of per-node
// candidate label counts).

#include <cstdio>
#include <utility>
#include <vector>

#include "baseline/rewriting.h"
#include "baseline/simmatrix.h"
#include "bench_util.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

constexpr int kReps = 3;
constexpr size_t kQueries = 6;
constexpr size_t kMaxRewritings = 20000;

}  // namespace

int main() {
  bench::PrintTitle("E4 / Exp-2(c): query time (ms) vs theta");
  bench::PrintNote("CrossDomain-like, |V|=15000, |Q|=4, K=10; median of 3, "
                   "summed over 6 queries");

  gen::ScenarioParams p;
  p.scale = bench::Scaled(15000);
  p.seed = 17;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  Graph g_copy = ds.graph;
  OntologyGraph o_copy = ds.ontology;
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);
  SimilarityFunction sim(0.9);

  Rng rng(555);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  while (queries.size() < kQueries) {
    Graph q = gen::ExtractQuery(g_copy, o_copy, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }

  std::printf("%-8s %10s %10s %12s %14s %12s\n", "theta", "KMatch", "VF2",
              "SubIso_r", "#rewritings", "#matches");
  for (double theta : {1.0, 0.95, 0.9, 0.85, 0.8}) {
    QueryOptions options;
    options.theta = theta;
    options.k = 10;

    size_t total_matches = 0;
    double kmatch_ms = bench::MedianMs(kReps, [&] {
      total_matches = 0;
      for (const Graph& q : queries) {
        total_matches += engine.Query(q, options).matches.size();
      }
    });
    std::vector<SimMatrix> matrices;
    for (const Graph& q : queries) {
      matrices.push_back(BuildSimMatrix(q, g_copy, o_copy, sim, theta));
    }
    double vf2_ms = bench::MedianMs(kReps, [&] {
      for (size_t i = 0; i < queries.size(); ++i) {
        SimMatrixMatch(queries[i], g_copy, matrices[i], options);
      }
    });
    size_t rewritings = 0;
    double rewrite_ms = bench::MedianMs(1, [&] {
      rewritings = 0;
      for (const Graph& q : queries) {
        RewriteStats stats;
        SubIsoRewrite(q, g_copy, o_copy, sim, options, kMaxRewritings,
                      &stats);
        rewritings += stats.rewritings;
      }
    });
    std::printf("%-8.2f %10.2f %10.2f %12.2f %14zu %12zu\n", theta,
                kmatch_ms, vf2_ms, rewrite_ms, rewritings, total_matches);
  }
  return 0;
}
