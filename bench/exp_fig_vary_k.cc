// E5 / Exp-2(d): query evaluation time vs K (number of requested matches).
// Both top-K matchers terminate early; the paper's point is that KMatch's
// time grows slowly with K because verification works over G_v with
// similarity-sorted candidate lists.

#include <cstdio>
#include <utility>
#include <vector>

#include "baseline/simmatrix.h"
#include "bench_util.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

constexpr int kReps = 3;
constexpr size_t kQueries = 6;

}  // namespace

int main() {
  bench::PrintTitle("E5 / Exp-2(d): query time (ms) vs K");
  bench::PrintNote("CrossDomain-like, |V|=15000, |Q|=4, theta=0.85; median "
                   "of 3, summed over 6 queries");

  gen::ScenarioParams p;
  p.scale = bench::Scaled(15000);
  p.seed = 19;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  Graph g_copy = ds.graph;
  OntologyGraph o_copy = ds.ontology;
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);
  SimilarityFunction sim(0.9);

  Rng rng(333);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  while (queries.size() < kQueries) {
    Graph q = gen::ExtractQuery(g_copy, o_copy, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }
  std::vector<SimMatrix> matrices;
  for (const Graph& q : queries) {
    matrices.push_back(BuildSimMatrix(q, g_copy, o_copy, sim, 0.85));
  }

  std::printf("%-8s %10s %10s %14s\n", "K", "KMatch", "VF2", "#returned");
  for (size_t k : {1, 5, 10, 20, 50}) {
    QueryOptions options;
    options.theta = 0.85;
    options.k = k;
    size_t returned = 0;
    double kmatch_ms = bench::MedianMs(kReps, [&] {
      returned = 0;
      for (const Graph& q : queries) {
        returned += engine.Query(q, options).matches.size();
      }
    });
    double vf2_ms = bench::MedianMs(kReps, [&] {
      for (size_t i = 0; i < queries.size(); ++i) {
        SimMatrixMatch(queries[i], g_copy, matrices[i], options);
      }
    });
    std::printf("%-8zu %10.2f %10.2f %14zu\n", k, kmatch_ms, vf2_ms,
                returned);
  }
  return 0;
}
