// Cold-start benchmark: how long until a process can serve queries?
//
// Three ways to stand up an engine over the same generated graph
// (CrossDomain-like, >= 1M elements = nodes + edges at the default scale):
//
//   BM_BuildFromScratch    graph + ontology already in memory; build the
//                          ontology index (the no-persistence baseline).
//   BM_LoadSnapshotV1Text  parse the text graph + ontology + index files
//                          (core/index_io.h interchange format); the
//                          candidate index is rebuilt and the partitions
//                          re-validated, as the v1 loader always does.
//   BM_LoadSnapshotV2Binary  map the binary v2 snapshot (core/snapshot.h):
//                          hash + structural validation, zero-copy CSR
//                          adoption, no text parsing, no rebuild.
//
// The v2-vs-v1 ratio is the sub-second-cold-start claim and is enforced by
// scripts/bench_check.py (tier-1 opt-in stage, >= 10x floor):
//
//   bench_load [--scale N] [--reps R] [--json BENCH_load.json]
//
// Rows reuse the shared JSON schema; "ms_per_query" here is ms per cold
// start.  OSQ_BENCH_SCALE grows the default workload like the other
// harnesses.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/status.h"
#include "common/timer.h"
#include "core/index_io.h"
#include "core/ontology_index.h"
#include "core/query_engine.h"
#include "core/snapshot.h"
#include "gen/scenarios.h"
#include "graph/graph_io.h"
#include "ontology/ontology_graph.h"

namespace {

using namespace osq;

int Fail(const char* what, const Status& s) {
  std::fprintf(stderr, "bench_load: %s: %s\n", what, s.message().c_str());
  return 1;
}

// The v1 text loader overwrites an existing index, so a rep needs a
// throwaway one to assign into; build it over a one-node graph so its cost
// does not distort the measurement.
OntologyIndex TinyIndex(const Graph& tiny_g, const OntologyGraph& tiny_o) {
  IndexOptions tiny;
  tiny.num_concept_graphs = 1;
  return OntologyIndex::Build(tiny_g, tiny_o, tiny);
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = bench::ArgSize(argc, argv, "--scale", bench::Scaled(250000));
  int reps = static_cast<int>(bench::ArgSize(argc, argv, "--reps", 3));
  std::string json_path = bench::ArgValue(argc, argv, "--json", "");

  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "osq_bench_load";
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string graph_path = (dir / "graph.txt").string();
  const std::string ontology_path = (dir / "ontology.txt").string();
  const std::string index_path = (dir / "index.txt").string();
  const std::string snapshot_path = (dir / "engine.snp").string();

  bench::PrintTitle("cold start: build vs text v1 vs binary v2");

  // Generate, export to text, then RELOAD the text before building: label
  // ids must come from file interning order so the index content hash the
  // v1 cold path checks matches, exactly as the osq_cli index/query
  // workflow produces them.
  {
    gen::ScenarioParams p;
    p.scale = scale;
    p.seed = 21;
    gen::Dataset ds = gen::MakeCrossDomainLike(p);
    if (Status s = SaveGraphToFile(ds.graph, ds.dict, graph_path); !s.ok()) {
      return Fail("save graph", s);
    }
    if (Status s = SaveOntology(ds.ontology, ds.dict, ontology_path);
        !s.ok()) {
      return Fail("save ontology", s);
    }
  }
  gen::Dataset ds;
  if (Status s = LoadGraphFromFile(graph_path, &ds.dict, &ds.graph);
      !s.ok()) {
    return Fail("reload graph", s);
  }
  if (Status s = LoadOntologyFromFile(ontology_path, &ds.dict, &ds.ontology);
      !s.ok()) {
    return Fail("reload ontology", s);
  }
  const double elements =
      static_cast<double>(ds.graph.num_nodes() + ds.graph.num_edges());
  std::printf("   graph: %zu nodes, %zu edges (scale %zu)\n",
              ds.graph.num_nodes(), ds.graph.num_edges(), scale);

  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(ds.graph, ds.ontology, idx);
  if (Status s = SaveIndexToFile(engine.index(), ds.dict, index_path);
      !s.ok()) {
    return Fail("save index", s);
  }
  if (Status s = SaveEngineSnapshot(engine, ds.dict, snapshot_path);
      !s.ok()) {
    return Fail("save snapshot", s);
  }

  // Shared tiny fixture for the v1 assignment target (see TinyIndex).
  Graph tiny_g;
  OntologyGraph tiny_o;
  {
    LabelId l = ds.dict.Lookup("person");
    tiny_o.AddLabel(l);
    tiny_g.AddNode(l);
    tiny_g.Freeze();
  }

  Status rep_status = Status::Ok();
  double build_ms = bench::MedianMs(reps, [&] {
    OntologyIndex rebuilt = OntologyIndex::Build(ds.graph, ds.ontology, idx);
    if (rebuilt.num_concept_graphs() != idx.num_concept_graphs) {
      rep_status = Status::Corruption("build produced a malformed index");
    }
  });
  if (!rep_status.ok()) return Fail("build from scratch", rep_status);

  // Cold start ends when the process can serve; teardown of the previous
  // rep's engine happens outside the timed region for both formats.
  struct V1Engine {
    std::unique_ptr<gen::Dataset> ds;
    std::unique_ptr<OntologyIndex> index;
  };
  std::vector<V1Engine> v1_keep;
  double v1_ms = bench::MedianMs(reps, [&] {
    V1Engine cold;
    cold.ds = std::make_unique<gen::Dataset>();
    if (Status s =
            LoadGraphFromFile(graph_path, &cold.ds->dict, &cold.ds->graph);
        !s.ok()) {
      rep_status = s;
      return;
    }
    if (Status s = LoadOntologyFromFile(ontology_path, &cold.ds->dict,
                                        &cold.ds->ontology);
        !s.ok()) {
      rep_status = s;
      return;
    }
    cold.index = std::make_unique<OntologyIndex>(TinyIndex(tiny_g, tiny_o));
    if (Status s = LoadIndexFromFile(index_path, cold.ds->graph,
                                     cold.ds->ontology, &cold.ds->dict,
                                     cold.index.get());
        !s.ok()) {
      rep_status = s;
      return;
    }
    v1_keep.push_back(std::move(cold));
  });
  v1_keep.clear();
  if (!rep_status.ok()) return Fail("v1 text cold start", rep_status);

  SnapshotLoadStats load_stats;
  std::vector<std::unique_ptr<QueryEngine>> v2_keep;
  double v2_ms = bench::MedianMs(reps, [&] {
    LabelDictionary cold_dict;
    std::unique_ptr<QueryEngine> cold;
    if (Status s =
            LoadEngineSnapshot(snapshot_path, &cold_dict, &cold, &load_stats);
        !s.ok()) {
      rep_status = s;
      return;
    }
    v2_keep.push_back(std::move(cold));
  });
  v2_keep.clear();
  if (!rep_status.ok()) return Fail("v2 binary cold start", rep_status);

  const double v1_bytes = static_cast<double>(
      fs::file_size(graph_path, ec) + fs::file_size(ontology_path, ec) +
      fs::file_size(index_path, ec));
  const double v2_bytes = static_cast<double>(load_stats.file_bytes);
  std::printf("   BM_BuildFromScratch      %10.1f ms\n", build_ms);
  std::printf("   BM_LoadSnapshotV1Text    %10.1f ms  (%.1f MB text)\n",
              v1_ms, v1_bytes / 1e6);
  std::printf("   BM_LoadSnapshotV2Binary  %10.1f ms  (%.1f MB, %s)\n", v2_ms,
              v2_bytes / 1e6, load_stats.mapped ? "mmap" : "read");
  std::printf("   v2 stages: hash %.1f ms, graph %.1f ms, concept graphs "
              "%.1f ms, candidate index %.1f ms\n",
              load_stats.hash_ms, load_stats.graph_ms,
              load_stats.concept_graphs_ms, load_stats.candidate_index_ms);
  std::printf("   v2 speedup: %.1fx vs v1 text, %.1fx vs rebuild\n",
              v1_ms / v2_ms, build_ms / v2_ms);

  if (!json_path.empty()) {
    bench::JsonReport report;
    report.Add("BM_BuildFromScratch", build_ms, 1, {{"elements", elements}});
    report.Add("BM_LoadSnapshotV1Text", v1_ms, 1,
               {{"elements", elements}, {"file_bytes", v1_bytes}});
    report.Add("BM_LoadSnapshotV2Binary", v2_ms, 1,
               {{"elements", elements}, {"file_bytes", v2_bytes}});
    if (!report.WriteTo(json_path)) return 2;
  }

  fs::remove_all(dir, ec);
  return 0;
}
