// Closed-loop serving benchmark for QueryService (serve/query_service.h).
//
// Drives the CrossDomain-like workload through three phases and reports
// per-request latency for each:
//   cold   — one thread, every distinct query once (all cache misses);
//   hot    — --threads closed-loop reader threads replaying the same
//            query set (all cache hits after the first lap);
//   mixed  — the same readers with a writer thread toggling an edge
//            update every --update-interval-ms, exercising snapshot
//            isolation and cache invalidation under load.
//
//   bench_serve [--threads 4] [--iterations 300] [--json BENCH_serve.json]
//               [--deadline-ms 0] [--max-inflight 0]
//
// --deadline-ms > 0 applies a per-query service deadline (interrupted
// queries return valid partial top-K, flagged deadline_exceeded and kept
// out of the cache); --max-inflight > 0 bounds admitted concurrency, with
// excess requests shed as UNAVAILABLE.  Both report in the mixed row.
//
// The JSON rows track the serving trajectory across commits; the `hot`
// row carries speedup_cold_over_hit = cold / hot mean latency (the
// ISSUE-3 acceptance bar is >= 10).  OSQ_BENCH_SCALE scales the dataset.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/index_maintenance.h"
#include "core/query_engine.h"
#include "gen/workload.h"
#include "serve/query_service.h"

namespace osq {
namespace {

using bench::ArgDouble;
using bench::ArgSize;
using bench::ArgValue;
using bench::JsonReport;
using bench::PrintNote;
using bench::PrintTitle;
using bench::Scaled;

struct PhaseResult {
  double mean_us = 0.0;
  uint64_t requests = 0;
};

// Sums ServedResult::serve_us over everything the phase issued, so each
// phase's number is independent of the service's cumulative histograms.
PhaseResult RunReaders(QueryService* service,
                       const std::vector<Graph>& queries,
                       const QueryOptions& options, size_t threads,
                       size_t iterations,
                       const std::atomic<bool>* stop = nullptr) {
  std::vector<double> total_us(threads, 0.0);
  std::vector<uint64_t> count(threads, 0);
  RunConcurrently(threads, [&](size_t tid) {
    for (size_t it = 0; it < iterations; ++it) {
      if (stop != nullptr && stop->load(std::memory_order_acquire)) break;
      // Stagger starting offsets so threads do not lock-step on one key.
      const Graph& q = queries[(it + tid * 7) % queries.size()];
      ServedResult served = service->Query(q, options);
      total_us[tid] += served.serve_us;
      ++count[tid];
    }
  });
  PhaseResult r;
  for (size_t t = 0; t < threads; ++t) {
    r.mean_us += total_us[t];
    r.requests += count[t];
  }
  if (r.requests > 0) r.mean_us /= static_cast<double>(r.requests);
  return r;
}

}  // namespace

int Main(int argc, char** argv) {
  size_t threads = ArgSize(argc, argv, "--threads", 4);
  size_t iterations = ArgSize(argc, argv, "--iterations", 300);
  size_t update_interval_ms =
      ArgSize(argc, argv, "--update-interval-ms", 2);
  double deadline_ms = ArgDouble(argc, argv, "--deadline-ms", 0.0);
  size_t max_inflight = ArgSize(argc, argv, "--max-inflight", 0);
  std::string json_path = ArgValue(argc, argv, "--json", "BENCH_serve.json");

  PrintTitle("serve: QueryService closed-loop (CrossDomain-like)");
  gen::ScenarioParams params;
  params.scale = Scaled(1500);
  params.seed = 7;
  gen::Workload workload = gen::MakeCrossDomainWorkload(params, 6);
  std::vector<Graph> queries;
  for (const gen::QueryTemplate& t : workload.templates) {
    for (const Graph& q : t.queries) queries.push_back(q);
  }
  std::printf("dataset: %zu nodes, %zu edges; %zu distinct queries; "
              "%zu reader threads\n",
              workload.data.graph.num_nodes(),
              workload.data.graph.num_edges(), queries.size(), threads);

  WallTimer build_timer;
  ServeOptions serve;
  serve.default_deadline_ms = deadline_ms;
  serve.max_inflight = max_inflight;
  QueryService service(
      QueryEngine(std::move(workload.data.graph),
                  std::move(workload.data.ontology), IndexOptions{}),
      serve);
  std::printf("index built in %.1f ms\n", build_timer.ElapsedMillis());

  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;

  JsonReport report;

  // ---- cold: every distinct query once, single thread ------------------
  PhaseResult cold = RunReaders(&service, queries, options, 1,
                                queries.size());
  std::printf("cold:  %6zu requests, mean %9.1f us/query\n",
              static_cast<size_t>(cold.requests), cold.mean_us);
  report.Add("cold", cold.mean_us / 1000.0, 1);

  // ---- hot: closed loop over the now-cached set ------------------------
  PhaseResult hot =
      RunReaders(&service, queries, options, threads, iterations);
  double speedup = hot.mean_us > 0.0 ? cold.mean_us / hot.mean_us : 0.0;
  std::printf("hot:   %6zu requests, mean %9.1f us/query "
              "(cold/hot speedup %.1fx)\n",
              static_cast<size_t>(hot.requests), hot.mean_us, speedup);
  report.Add("hot", hot.mean_us / 1000.0, threads,
             {{"speedup_cold_over_hit", speedup}});

  // ---- mixed: readers + one writer toggling an edge --------------------
  std::vector<EdgeTriple> edges =
      service.engine_unsynchronized().graph().EdgeList();
  std::atomic<bool> stop{false};
  PhaseResult mixed;
  uint64_t toggles = 0;
  {
    EdgeTriple e = edges.front();
    std::thread writer([&] {
      // Toggle until the readers finish; delete/insert restores state.
      while (!stop.load(std::memory_order_acquire)) {
        GraphUpdate update =
            toggles % 2 == 0
                ? GraphUpdate::Delete(e.from, e.to, e.label)
                : GraphUpdate::Insert(e.from, e.to, e.label);
        service.ApplyUpdate(update);
        ++toggles;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(update_interval_ms));
      }
      if (toggles % 2 == 1) {  // leave the graph as we found it
        service.ApplyUpdate(GraphUpdate::Insert(e.from, e.to, e.label));
        ++toggles;
      }
    });
    mixed = RunReaders(&service, queries, options, threads, iterations);
    stop.store(true, std::memory_order_release);
    writer.join();
  }
  ServeStats stats = service.Stats();
  double hit_rate =
      stats.queries > 0
          ? static_cast<double>(stats.cache_hits) /
                static_cast<double>(stats.queries)
          : 0.0;
  std::printf("mixed: %6zu requests, mean %9.1f us/query "
              "(%llu update batches)\n",
              static_cast<size_t>(mixed.requests), mixed.mean_us,
              static_cast<unsigned long long>(toggles));
  report.Add("mixed", mixed.mean_us / 1000.0, threads,
             {{"update_batches", static_cast<double>(toggles)},
              {"overall_hit_rate", hit_rate},
              {"degraded", static_cast<double>(stats.deadline_exceeded +
                                               stats.cancelled)},
              {"shed", static_cast<double>(stats.shed)}});

  PrintTitle("serve: cumulative service stats");
  std::fputs(stats.ToString().c_str(), stdout);
  PrintNote(speedup >= 10.0
                ? "acceptance: cache-hit latency >= 10x below cold — OK"
                : "acceptance: cache-hit speedup below 10x — REGRESSION");

  if (!json_path.empty()) report.WriteTo(json_path);
  return speedup >= 10.0 ? 0 : 1;
}

}  // namespace osq

int main(int argc, char** argv) { return osq::Main(argc, argv); }
