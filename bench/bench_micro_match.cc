// M3: microbenchmarks of the matcher kernels — Gview filtering, KMatch
// verification, SubIso, and similarity-matrix construction.
//
// Unlike the other bench_micro_* binaries this one has its own main so it
// can accept driver flags after the google-benchmark ones:
//   bench_micro_match [--benchmark_filter=...] [--threads N] [--json path]
// --threads sets QueryOptions::num_threads for the filter/verify kernels;
// --json writes {name, ms_per_query, threads} rows (e.g. BENCH_match.json).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "baseline/simmatrix.h"
#include "baseline/subiso.h"
#include "bench_util.h"
#include "common/rng.h"
#include "core/filtering.h"
#include "core/kmatch.h"
#include "core/ontology_index.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

size_t g_threads = 1;  // set from --threads in main

struct World {
  gen::Dataset ds;
  std::unique_ptr<OntologyIndex> index;
  std::vector<Graph> queries;
};

// Star queries around data hubs with a repeated out-edge label.  The
// repeated label makes the signature requirement demand out-degree >= 2 on
// one edge label, which only the node-level count check can enforce —
// extracted path/tree queries never fire it (every query edge is a real
// data edge, so block aggregates alone satisfy them).  This is the shape
// that keeps sig_node_rejections measured rather than dead.
std::vector<Graph> MakeStarQueries(const Graph& g, size_t want) {
  std::vector<Graph> out;
  for (NodeId v = 0; v < g.num_nodes() && out.size() < want; ++v) {
    Graph::AdjSpan span = g.OutEdges(v);
    if (span.size() < 2) continue;
    // Find a run of >= 2 equal edge labels (spans are label-sorted per
    // target, so scan all pairs).
    const AdjEntry* a = nullptr;
    const AdjEntry* b = nullptr;
    for (size_t i = 0; i < span.size() && b == nullptr; ++i) {
      for (size_t j = i + 1; j < span.size(); ++j) {
        if (span[i].label == span[j].label && span[i].node != span[j].node) {
          a = &span[i];
          b = &span[j];
          break;
        }
      }
    }
    if (b == nullptr) continue;
    Graph q;
    q.AddNode(g.NodeLabel(v));
    q.AddNode(g.NodeLabel(a->node));
    q.AddNode(g.NodeLabel(b->node));
    q.AddEdge(0, 1, a->label);
    q.AddEdge(0, 2, b->label);
    out.push_back(std::move(q));
  }
  return out;
}

World* MakeWorld() {
  auto* w = new World();
  gen::ScenarioParams p;
  p.scale = 8000;
  p.seed = 13;
  w->ds = gen::MakeCrossDomainLike(p);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  w->index = std::make_unique<OntologyIndex>(
      OntologyIndex::Build(w->ds.graph, w->ds.ontology, idx));
  Rng rng(17);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  while (w->queries.size() < 8) {
    Graph q = gen::ExtractQuery(w->ds.graph, w->ds.ontology, qp, &rng);
    if (!q.empty()) w->queries.push_back(std::move(q));
  }
  return w;
}

World& TheWorld() {
  static World* const world = MakeWorld();
  return *world;
}

// Second world for the high-degree shape: the catalog scenario keeps
// refinement blocks coarse, so star queries pass block aggregates and the
// pruning falls to the node-level signature check.
World* MakeStarWorld() {
  auto* w = new World();
  gen::ScenarioParams p;
  p.scale = 8000;
  p.seed = 13;
  w->ds = gen::MakeCatalogLike(p);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  w->index = std::make_unique<OntologyIndex>(
      OntologyIndex::Build(w->ds.graph, w->ds.ontology, idx));
  w->queries = MakeStarQueries(w->ds.graph, 8);
  return w;
}

World& StarWorld() {
  static World* const world = MakeStarWorld();
  return *world;
}

// Filter-stats sums over one pass of the query set, attached as extras to
// the BM_GviewFilter JSON row so the trajectory tracks pruning power, not
// just wall time.
std::vector<std::pair<std::string, double>> FilterStatExtras(const World& w) {
  QueryOptions options;
  options.theta = 0.85;
  options.num_threads = g_threads;
  FilterStats sum;
  for (const Graph& q : w.queries) {
    FilterResult r = GviewFilter(*w.index, q, options);
    sum.initial_blocks += r.stats.initial_blocks;
    sum.pruned_blocks += r.stats.pruned_blocks;
    sum.pruned_nodes += r.stats.pruned_nodes;
    sum.sig_block_rejections += r.stats.sig_block_rejections;
    sum.sig_node_rejections += r.stats.sig_node_rejections;
    sum.gv_nodes += r.stats.gv_nodes;
  }
  return {{"initial_blocks", static_cast<double>(sum.initial_blocks)},
          {"pruned_blocks", static_cast<double>(sum.pruned_blocks)},
          {"pruned_nodes", static_cast<double>(sum.pruned_nodes)},
          {"sig_block_rejections",
           static_cast<double>(sum.sig_block_rejections)},
          {"sig_node_rejections",
           static_cast<double>(sum.sig_node_rejections)},
          {"gv_nodes", static_cast<double>(sum.gv_nodes)}};
}

void BM_GviewFilter(benchmark::State& state) {
  World& w = TheWorld();
  QueryOptions options;
  options.theta = 0.85;
  options.num_threads = g_threads;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GviewFilter(*w.index, w.queries[i % w.queries.size()], options));
    ++i;
  }
}
BENCHMARK(BM_GviewFilter)->Unit(benchmark::kMicrosecond);

// Ablation: identical work with the signature index disabled — the ratio
// NoIndex / indexed is the candidate-index speedup scripts/bench_check.py
// enforces.
void BM_GviewFilterNoIndex(benchmark::State& state) {
  World& w = TheWorld();
  QueryOptions options;
  options.theta = 0.85;
  options.use_candidate_index = false;
  options.num_threads = g_threads;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GviewFilter(*w.index, w.queries[i % w.queries.size()], options));
    ++i;
  }
}
BENCHMARK(BM_GviewFilterNoIndex)->Unit(benchmark::kMicrosecond);

// Star queries with a repeated out-edge label: the degree-demand shape
// whose pruning runs through NodePasses (node-level signature rejection).
void BM_GviewFilterHighDegree(benchmark::State& state) {
  World& w = StarWorld();
  if (w.queries.empty()) {
    state.SkipWithError("no star queries in generated graph");
    return;
  }
  QueryOptions options;
  options.theta = 0.85;
  options.num_threads = g_threads;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GviewFilter(*w.index, w.queries[i % w.queries.size()], options));
    ++i;
  }
}
BENCHMARK(BM_GviewFilterHighDegree)->Unit(benchmark::kMicrosecond);

void BM_KMatchVerify(benchmark::State& state) {
  World& w = TheWorld();
  QueryOptions options;
  options.theta = 0.85;
  options.k = 10;
  options.num_threads = g_threads;
  std::vector<FilterResult> filters;
  for (const Graph& q : w.queries) {
    filters.push_back(GviewFilter(*w.index, q, options));
  }
  size_t i = 0;
  for (auto _ : state) {
    size_t j = i % w.queries.size();
    benchmark::DoNotOptimize(KMatch(w.queries[j], filters[j], options));
    ++i;
  }
}
BENCHMARK(BM_KMatchVerify)->Unit(benchmark::kMicrosecond);

// End-to-end filter + verify with the configured thread count; the row the
// bench trajectory tracks for parallel scaling.
void BM_FilterVerifyEndToEnd(benchmark::State& state) {
  World& w = TheWorld();
  QueryOptions options;
  options.theta = 0.85;
  options.k = 10;
  options.num_threads = g_threads;
  size_t i = 0;
  for (auto _ : state) {
    size_t j = i % w.queries.size();
    FilterResult filter = GviewFilter(*w.index, w.queries[j], options);
    benchmark::DoNotOptimize(KMatch(w.queries[j], filter, options));
    ++i;
  }
}
BENCHMARK(BM_FilterVerifyEndToEnd)->Unit(benchmark::kMicrosecond);

// End-to-end ablation twin of BM_FilterVerifyEndToEnd without the
// candidate index.
void BM_FilterVerifyEndToEndNoIndex(benchmark::State& state) {
  World& w = TheWorld();
  QueryOptions options;
  options.theta = 0.85;
  options.k = 10;
  options.use_candidate_index = false;
  options.num_threads = g_threads;
  size_t i = 0;
  for (auto _ : state) {
    size_t j = i % w.queries.size();
    FilterResult filter = GviewFilter(*w.index, w.queries[j], options);
    benchmark::DoNotOptimize(KMatch(w.queries[j], filter, options));
    ++i;
  }
}
BENCHMARK(BM_FilterVerifyEndToEndNoIndex)->Unit(benchmark::kMicrosecond);

void BM_SubIsoWholeGraph(benchmark::State& state) {
  World& w = TheWorld();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SubIso(w.queries[i % w.queries.size()], w.ds.graph,
               MatchSemantics::kInduced, /*limit=*/10));
    ++i;
  }
}
BENCHMARK(BM_SubIsoWholeGraph)->Unit(benchmark::kMicrosecond);

void BM_BuildSimMatrix(benchmark::State& state) {
  World& w = TheWorld();
  SimilarityFunction sim(0.9);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildSimMatrix(w.queries[i % w.queries.size()], w.ds.graph,
                       w.ds.ontology, sim, 0.85));
    ++i;
  }
}
BENCHMARK(BM_BuildSimMatrix)->Unit(benchmark::kMicrosecond);

// Console reporter that also captures every run into a JsonReport (all our
// benchmarks use kMicrosecond, so adjusted real time / 1000 is ms/query).
class JsonCapture : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapture(bench::JsonReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      std::vector<std::pair<std::string, double>> extras;
      if (run.benchmark_name() == "BM_GviewFilter") {
        extras = FilterStatExtras(TheWorld());
      } else if (run.benchmark_name() == "BM_GviewFilterHighDegree") {
        extras = FilterStatExtras(StarWorld());
      }
      report_->Add(run.benchmark_name(), run.GetAdjustedRealTime() / 1000.0,
                   g_threads, extras);
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::JsonReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  g_threads = bench::ArgSize(argc, argv, "--threads", 1);
  std::string json_path = bench::ArgValue(argc, argv, "--json", "");

  bench::JsonReport report;
  JsonCapture reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !report.WriteTo(json_path)) return 2;
  return 0;
}
