// M3: microbenchmarks of the matcher kernels — Gview filtering, KMatch
// verification, SubIso, and similarity-matrix construction.

#include <memory>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "baseline/simmatrix.h"
#include "baseline/subiso.h"
#include "common/rng.h"
#include "core/filtering.h"
#include "core/kmatch.h"
#include "core/ontology_index.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

struct World {
  gen::Dataset ds;
  std::unique_ptr<OntologyIndex> index;
  std::vector<Graph> queries;
};

World* MakeWorld() {
  auto* w = new World();
  gen::ScenarioParams p;
  p.scale = 8000;
  p.seed = 13;
  w->ds = gen::MakeCrossDomainLike(p);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  w->index = std::make_unique<OntologyIndex>(
      OntologyIndex::Build(w->ds.graph, w->ds.ontology, idx));
  Rng rng(17);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  while (w->queries.size() < 8) {
    Graph q = gen::ExtractQuery(w->ds.graph, w->ds.ontology, qp, &rng);
    if (!q.empty()) w->queries.push_back(std::move(q));
  }
  return w;
}

World& TheWorld() {
  static World* const world = MakeWorld();
  return *world;
}

void BM_GviewFilter(benchmark::State& state) {
  World& w = TheWorld();
  QueryOptions options;
  options.theta = 0.85;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GviewFilter(*w.index, w.queries[i % w.queries.size()], options));
    ++i;
  }
}
BENCHMARK(BM_GviewFilter)->Unit(benchmark::kMicrosecond);

void BM_KMatchVerify(benchmark::State& state) {
  World& w = TheWorld();
  QueryOptions options;
  options.theta = 0.85;
  options.k = 10;
  std::vector<FilterResult> filters;
  for (const Graph& q : w.queries) {
    filters.push_back(GviewFilter(*w.index, q, options));
  }
  size_t i = 0;
  for (auto _ : state) {
    size_t j = i % w.queries.size();
    benchmark::DoNotOptimize(KMatch(w.queries[j], filters[j], options));
    ++i;
  }
}
BENCHMARK(BM_KMatchVerify)->Unit(benchmark::kMicrosecond);

void BM_SubIsoWholeGraph(benchmark::State& state) {
  World& w = TheWorld();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SubIso(w.queries[i % w.queries.size()], w.ds.graph,
               MatchSemantics::kInduced, /*limit=*/10));
    ++i;
  }
}
BENCHMARK(BM_SubIsoWholeGraph)->Unit(benchmark::kMicrosecond);

void BM_BuildSimMatrix(benchmark::State& state) {
  World& w = TheWorld();
  SimilarityFunction sim(0.9);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildSimMatrix(w.queries[i % w.queries.size()], w.ds.graph,
                       w.ds.ontology, sim, 0.85));
    ++i;
  }
}
BENCHMARK(BM_BuildSimMatrix)->Unit(benchmark::kMicrosecond);

}  // namespace
