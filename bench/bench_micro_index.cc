// M2: microbenchmarks of the index layer — concept graph construction,
// incremental repair per update, and index validation.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/index_maintenance.h"
#include "core/ontology_index.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

gen::Dataset MakeData(size_t scale) {
  gen::ScenarioParams p;
  p.scale = scale;
  p.seed = 7;
  return gen::MakeCrossDomainLike(p);
}

void BM_IndexBuild(benchmark::State& state) {
  gen::Dataset ds = MakeData(static_cast<size_t>(state.range(0)));
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OntologyIndex::Build(ds.graph, ds.ontology, idx));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ds.graph.num_edges()));
}
BENCHMARK(BM_IndexBuild)->Arg(2000)->Arg(8000)->Arg(32000)
    ->Unit(benchmark::kMillisecond);

void BM_IncrementalUpdate(benchmark::State& state) {
  gen::Dataset ds = MakeData(8000);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  Graph g = ds.graph;
  OntologyIndex index = OntologyIndex::Build(g, ds.ontology, idx);
  Rng rng(11);
  for (auto _ : state) {
    // Insert + delete a random edge: net size constant across iterations.
    NodeId u = static_cast<NodeId>(rng.Index(g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.Index(g.num_nodes()));
    if (u == v) continue;
    if (ApplyUpdate(&g, &index, GraphUpdate::Insert(u, v, 0))) {
      ApplyUpdate(&g, &index, GraphUpdate::Delete(u, v, 0));
    }
  }
}
BENCHMARK(BM_IncrementalUpdate)->Unit(benchmark::kMicrosecond);

void BM_IndexValidate(benchmark::State& state) {
  gen::Dataset ds = MakeData(8000);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, idx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Validate());
  }
  state.SetLabel("full invariant check");
}
BENCHMARK(BM_IndexValidate)->Unit(benchmark::kMillisecond);

}  // namespace
