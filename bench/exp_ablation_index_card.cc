// E9 / ablation: effect of the index cardinality N = card(I) on filtering
// precision and query time.  More concept graphs mean more intersections
// in Gview (smaller candidate sets, smaller G_v) at the cost of a larger
// index and more filtering work — the trade-off §IV motivates.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/filtering.h"
#include "core/ontology_index.h"
#include "core/kmatch.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

}  // namespace

int main() {
  bench::PrintTitle("E9 / ablation: index cardinality N = card(I)");
  bench::PrintNote("CrossDomain-like, |V|=15000, |Q|=4, theta=0.85, K=10; "
                   "averages over 8 queries");

  gen::ScenarioParams p;
  p.scale = bench::Scaled(15000);
  p.seed = 47;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);

  Rng rng(53);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  while (queries.size() < 8) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }

  std::printf("%-6s %12s %12s %12s %12s %12s\n", "N", "|I|", "avg|Gv|",
              "filter_ms", "verify_ms", "total_ms");
  for (size_t n : {1, 2, 3, 4}) {
    IndexOptions idx;
    idx.num_concept_graphs = n;
    OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, idx);

    QueryOptions options;
    options.theta = 0.85;
    options.k = 10;
    double gv_total = 0;
    double filter_ms = 0;
    double verify_ms = 0;
    for (const Graph& q : queries) {
      WallTimer t1;
      FilterResult filter = GviewFilter(index, q, options);
      filter_ms += t1.ElapsedMillis();
      gv_total += static_cast<double>(filter.stats.gv_nodes);
      WallTimer t2;
      (void)KMatch(q, filter, options);  // timing the verify phase
      verify_ms += t2.ElapsedMillis();
    }
    std::printf("%-6zu %12zu %12.1f %12.3f %12.3f %12.3f\n", n,
                index.TotalSize(),
                gv_total / static_cast<double>(queries.size()), filter_ms,
                verify_ms, filter_ms + verify_ms);
  }
  return 0;
}
