// Shared helpers for the experiment harnesses (bench/exp_*.cc).
//
// Every harness prints the rows/series of one paper table or figure; the
// helpers here keep timing and formatting uniform.  Scales default to
// laptop-friendly sizes; set OSQ_BENCH_SCALE=<multiplier> to grow or shrink
// every workload (e.g. OSQ_BENCH_SCALE=4 for a larger run).

#ifndef OSQ_BENCH_BENCH_UTIL_H_
#define OSQ_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/timer.h"

namespace osq {
namespace bench {

// Multiplies a default size by the OSQ_BENCH_SCALE environment variable
// (a positive double, default 1.0).
inline size_t Scaled(size_t base) {
  static const double factor = [] {
    const char* env = std::getenv("OSQ_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double f = std::atof(env);
    return f > 0.0 ? f : 1.0;
  }();
  size_t scaled = static_cast<size_t>(static_cast<double>(base) * factor);
  return scaled > 0 ? scaled : 1;
}

// Runs `fn` `reps` times and returns the median wall time in ms.
template <typename Fn>
double MedianMs(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("   %s\n", note.c_str());
}

}  // namespace bench
}  // namespace osq

#endif  // OSQ_BENCH_BENCH_UTIL_H_
