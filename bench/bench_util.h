// Shared helpers for the experiment harnesses (bench/exp_*.cc).
//
// Every harness prints the rows/series of one paper table or figure; the
// helpers here keep timing and formatting uniform.  Scales default to
// laptop-friendly sizes; set OSQ_BENCH_SCALE=<multiplier> to grow or shrink
// every workload (e.g. OSQ_BENCH_SCALE=4 for a larger run).

#ifndef OSQ_BENCH_BENCH_UTIL_H_
#define OSQ_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.h"

namespace osq {
namespace bench {

// Multiplies a default size by the OSQ_BENCH_SCALE environment variable
// (a positive double, default 1.0).
inline size_t Scaled(size_t base) {
  static const double factor = [] {
    const char* env = std::getenv("OSQ_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double f = std::atof(env);
    return f > 0.0 ? f : 1.0;
  }();
  size_t scaled = static_cast<size_t>(static_cast<double>(base) * factor);
  return scaled > 0 ? scaled : 1;
}

// Runs `fn` `reps` times and returns the median wall time in ms.
template <typename Fn>
double MedianMs(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void PrintNote(const std::string& note) {
  std::printf("   %s\n", note.c_str());
}

// ---- machine-readable results ------------------------------------------
//
// Drivers accept `--json <path>` and write their rows as a JSON array of
//   {"name": ..., "ms_per_query": ..., "threads": ..., <extras>}
// so benchmark trajectories can be tracked across commits (e.g.
// BENCH_match.json at the repo root).

// Returns the value following `--flag` in argv, or `def` when absent.
inline std::string ArgValue(int argc, char** argv, const std::string& flag,
                            const std::string& def) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return def;
}

inline size_t ArgSize(int argc, char** argv, const std::string& flag,
                      size_t def) {
  std::string v = ArgValue(argc, argv, flag, "");
  return v.empty() ? def : static_cast<size_t>(std::strtoull(v.c_str(),
                                                             nullptr, 10));
}

inline double ArgDouble(int argc, char** argv, const std::string& flag,
                        double def) {
  std::string v = ArgValue(argc, argv, flag, "");
  return v.empty() ? def : std::strtod(v.c_str(), nullptr);
}

class JsonReport {
 public:
  // `extras` are additional numeric fields, e.g. {{"speedup", 2.1}}.
  void Add(const std::string& name, double ms_per_query, size_t threads,
           const std::vector<std::pair<std::string, double>>& extras = {}) {
    rows_.push_back({name, ms_per_query, threads, extras});
  }

  bool empty() const { return rows_.empty(); }

  // Writes the rows; returns false (with a note on stderr) on IO failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "  {\"name\": \"%s\", \"ms_per_query\": %.6f, "
                   "\"threads\": %zu",
                   Escaped(r.name).c_str(), r.ms_per_query, r.threads);
      for (const auto& [key, value] : r.extras) {
        std::fprintf(f, ", \"%s\": %.6f", Escaped(key).c_str(), value);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu result row(s) to %s\n", rows_.size(), path.c_str());
    return true;
  }

 private:
  struct Row {
    std::string name;
    double ms_per_query;
    size_t threads;
    std::vector<std::pair<std::string, double>> extras;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::vector<Row> rows_;
};

}  // namespace bench
}  // namespace osq

#endif  // OSQ_BENCH_BENCH_UTIL_H_
