// E2 / Exp-2(a): query evaluation time vs data graph size, comparing
// KMatch (index + filter + verify), SubIso (identical labels), SubIso_r
// (query rewriting) and VF2 (similarity matrix over the whole graph;
// matrix build time reported separately, not charged, as in the paper).
//
// Paper claims: KMatch scales well with |G| and takes a fraction of
// SubIso's time (<= 22% on the largest real graph); SubIso_r is the
// slowest by a wide margin.
//
// Flags: --threads N sets num_threads for index build and KMatch;
//        --json <path> writes the KMatch per-query times (e.g.
//        BENCH_match.json) as {name, ms_per_query, threads} rows.

#include <cstdio>
#include <utility>
#include <vector>

#include "baseline/rewriting.h"
#include "baseline/simmatrix.h"
#include "baseline/subiso.h"
#include "bench_util.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"

namespace {

using namespace osq;

constexpr int kReps = 3;
constexpr size_t kQueriesPerSize = 6;
constexpr size_t kMaxRewritings = 20000;

}  // namespace

int main(int argc, char** argv) {
  const size_t threads = bench::ArgSize(argc, argv, "--threads", 1);
  const std::string json_path = bench::ArgValue(argc, argv, "--json", "");
  bench::JsonReport report;

  bench::PrintTitle("E2 / Exp-2(a): query time (ms) vs |G|");
  bench::PrintNote("CrossDomain-like; |Q|=4, theta=0.9, K=10; median of 3, "
                   "summed over 6 queries; threads=" +
                   std::to_string(threads));
  std::printf("%-10s %10s %10s %10s %12s %12s %10s\n", "|V|", "KMatch",
              "SubIso", "VF2", "VF2-matrix", "SubIso_r", "ratio");

  for (size_t scale : {5000, 10000, 20000, 40000}) {
    gen::ScenarioParams p;
    p.scale = bench::Scaled(scale);
    p.seed = 11;
    gen::Dataset ds = gen::MakeCrossDomainLike(p);
    Graph g_copy = ds.graph;
    OntologyGraph o_copy = ds.ontology;

    // Queries: extracted with their original labels so the identical-label
    // SubIso baseline has real work to do; the ontology-aware methods
    // evaluate the same queries with theta slack (a strict superset of the
    // work), which makes the comparison conservative for KMatch.
    Rng rng(99);
    gen::QueryGenParams qp;
    qp.num_nodes = 4;
    qp.generalize_prob = 0.0;
    std::vector<Graph> queries;
    while (queries.size() < kQueriesPerSize) {
      Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
      if (!q.empty()) queries.push_back(std::move(q));
    }

    IndexOptions idx;
    idx.num_concept_graphs = 2;
    idx.num_threads = threads;
    QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);

    QueryOptions options;
    options.theta = 0.9;
    options.k = 10;
    options.num_threads = threads;
    SimilarityFunction sim(0.9);

    double kmatch_ms = bench::MedianMs(kReps, [&] {
      for (const Graph& q : queries) (void)engine.Query(q, options);  // timed
    });
    double subiso_ms = bench::MedianMs(kReps, [&] {
      for (const Graph& q : queries) {
        SubIso(q, g_copy, options.semantics, options.k);
      }
    });
    // VF2: matrix precomputed per query (cost reported separately).
    std::vector<SimMatrix> matrices;
    double matrix_ms = bench::MedianMs(1, [&] {
      matrices.clear();
      for (const Graph& q : queries) {
        matrices.push_back(
            BuildSimMatrix(q, g_copy, o_copy, sim, options.theta));
      }
    });
    double vf2_ms = bench::MedianMs(kReps, [&] {
      for (size_t i = 0; i < queries.size(); ++i) {
        SimMatrixMatch(queries[i], g_copy, matrices[i], options);
      }
    });
    double rewrite_ms = bench::MedianMs(1, [&] {
      for (const Graph& q : queries) {
        SubIsoRewrite(q, g_copy, o_copy, sim, options, kMaxRewritings);
      }
    });

    std::printf("%-10zu %10.2f %10.2f %10.2f %12.2f %12.2f %9.0f%%\n",
                g_copy.num_nodes(), kmatch_ms, subiso_ms, vf2_ms, matrix_ms,
                rewrite_ms,
                subiso_ms > 0 ? 100.0 * kmatch_ms / subiso_ms : 0.0);
    report.Add("kmatch/V=" + std::to_string(g_copy.num_nodes()),
               kmatch_ms / static_cast<double>(queries.size()), threads,
               {{"subiso_ms_per_query",
                 subiso_ms / static_cast<double>(queries.size())}});
  }
  bench::PrintNote("ratio = KMatch / SubIso (paper reports <= 22% on its "
                   "largest graph)");
  if (!json_path.empty() && !report.WriteTo(json_path)) return 2;
  return 0;
}
