#include "serve/query_service.h"

#include <mutex>
#include <utility>

#include "common/deadline.h"
#include "common/status.h"
#include "common/timer.h"

namespace osq {

QueryService::QueryService(QueryEngine engine, const ServeOptions& options)
    : options_(options),
      engine_(std::move(engine)),
      cache_(options.cache_capacity) {}

ServedResult QueryService::Query(const Graph& query,
                                 const QueryOptions& options) {
  ServedResult served;
  WallTimer total;

  // Admission control: count this request against the in-flight bound and
  // shed before taking the lock or touching the engine, so overload cannot
  // pile up lock waiters.  The gauge may transiently overshoot the bound
  // between the fetch_add and the rollback, but admitted requests never do.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_inflight > 0 &&
      inflight_.load(std::memory_order_relaxed) > options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    served.shed = true;
    served.result.status = Status::Unavailable(
        "query shed: service at max_inflight capacity");
    served.version = version_.load(std::memory_order_acquire);
    served.serve_us = total.ElapsedMicros();
    shed_.fetch_add(1, std::memory_order_relaxed);
    return served;
  }

  // Service-level deadline: a request without its own deadline inherits
  // the configured default.  The cache signature ignores deadlines (a
  // complete result is deadline-invariant), so this never splits keys.
  QueryOptions effective = options;
  if (effective.deadline_ms <= 0.0 && options_.default_deadline_ms > 0.0) {
    effective.deadline_ms = options_.default_deadline_ms;
  }

  // The signature is a pure function of the inputs — build it before taking
  // the lock to keep the critical section short.
  std::string key = QuerySignature(query, effective);

  WallTimer wait;
  // Burst classification: sample the writer gauge on arrival and again
  // after acquiring the shared lock, so a read that either waited behind a
  // writer or ran concurrently with one lands in the burst latency split.
  bool write_burst =
      writers_pending_.load(std::memory_order_relaxed) > 0;
  {
    // Write-intent gate (see query_service.h): acquiring and immediately
    // releasing the gate stalls this reader behind any writer that holds
    // it, which is what bounds the writer's wait.
    std::scoped_lock<std::mutex> gate(writer_gate_);
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  served.wait_us = wait.ElapsedMicros();
  read_wait_tenth_us_.fetch_add(ToTenthUs(served.wait_us),
                                std::memory_order_relaxed);
  write_burst = write_burst ||
                writers_pending_.load(std::memory_order_relaxed) > 0;
  // Stable while the shared lock is held: writers bump it only under the
  // exclusive lock.
  served.version = version_.load(std::memory_order_relaxed);

  VersionVector stamp = VersionVector::Scalar(served.version);
  if (cache_.Lookup(key, stamp, &served.result)) {
    served.cache_hit = true;
  } else {
    served.result = engine_.Query(query, effective);
    // Only complete results are cacheable: a degraded result reflects
    // where the clock (or a cancel) happened to interrupt the search, and
    // serving it later as a hit would silently drop matches forever.
    if ((served.result.status.ok() || options_.cache_errors) &&
        served.result.complete()) {
      cache_.Insert(key, stamp, served.result);
    }
  }
  lock.unlock();
  inflight_.fetch_sub(1, std::memory_order_relaxed);

  served.serve_us = total.ElapsedMicros();
  queries_.fetch_add(1, std::memory_order_relaxed);
  switch (served.result.completeness) {
    case StopReason::kNone:
      complete_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kShardUnavailable:
      // Single-engine services never produce this; counted for switch
      // exhaustiveness and so a sharded coordinator can reuse ServeStats.
      shard_unavailable_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (served.cache_hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_latency_.Record(served.serve_us);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (served.result.complete()) {
      miss_latency_.Record(served.serve_us);
    } else {
      degraded_latency_.Record(served.serve_us);
    }
  }
  if (write_burst) burst_read_latency_.Record(served.serve_us);
  return served;
}

void QueryService::AdvanceVersionLocked() {
  uint64_t v = version_.load(std::memory_order_relaxed) + 1;
  version_.store(v, std::memory_order_release);
  invalidations_.fetch_add(cache_.Invalidate(VersionVector::Scalar(v)),
                           std::memory_order_relaxed);
}

void QueryService::FinishWriteLocked(size_t applied, size_t skipped) {
  update_batches_.fetch_add(1, std::memory_order_relaxed);
  (void)skipped;
  if (applied == 0) return;  // no-op batch: snapshot unchanged
  updates_applied_.fetch_add(applied, std::memory_order_relaxed);
  AdvanceVersionLocked();
}

void QueryService::FinishNodeAddLocked() {
  update_batches_.fetch_add(1, std::memory_order_relaxed);
  nodes_added_.fetch_add(1, std::memory_order_relaxed);
  // A new node is observable (a single-node query can match it), and the
  // cache's version stamp is a single scalar covering the whole snapshot,
  // so the add must advance the version — which necessarily invalidates
  // every cached entry (result_cache.h requires exact stamp equality).
  // That full sweep is the correct price: any cached single-node query
  // could now have an additional match.
  AdvanceVersionLocked();
}

bool QueryService::ApplyUpdate(const GraphUpdate& update,
                               MaintenanceStats* stats) {
  WallTimer wait;
  writers_pending_.fetch_add(1, std::memory_order_relaxed);
  GaugeDecrementGuard pending(writers_pending_);
  std::scoped_lock<std::mutex> gate(writer_gate_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(ToTenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  WallTimer apply;
  bool applied = engine_.ApplyUpdate(update, stats);
  FinishWriteLocked(applied ? 1 : 0, applied ? 0 : 1);
  write_apply_tenth_us_.fetch_add(ToTenthUs(apply.ElapsedMicros()),
                                  std::memory_order_relaxed);
  return applied;
}

MaintenanceStats QueryService::ApplyUpdates(
    const std::vector<GraphUpdate>& updates) {
  WallTimer wait;
  writers_pending_.fetch_add(1, std::memory_order_relaxed);
  GaugeDecrementGuard pending(writers_pending_);
  std::scoped_lock<std::mutex> gate(writer_gate_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(ToTenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  WallTimer apply;
  MaintenanceStats stats = engine_.ApplyUpdates(updates);
  FinishWriteLocked(stats.applied, stats.skipped);
  write_apply_tenth_us_.fetch_add(ToTenthUs(apply.ElapsedMicros()),
                                  std::memory_order_relaxed);
  return stats;
}

NodeId QueryService::AddNode(LabelId label) {
  WallTimer wait;
  writers_pending_.fetch_add(1, std::memory_order_relaxed);
  GaugeDecrementGuard pending(writers_pending_);
  std::scoped_lock<std::mutex> gate(writer_gate_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(ToTenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  WallTimer apply;
  NodeId id = engine_.AddNode(label);
  FinishNodeAddLocked();
  write_apply_tenth_us_.fetch_add(ToTenthUs(apply.ElapsedMicros()),
                                  std::memory_order_relaxed);
  return id;
}

ServeStats QueryService::Stats() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.cache_hits = hits_.load(std::memory_order_relaxed);
  s.cache_misses = misses_.load(std::memory_order_relaxed);
  s.complete = complete_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.shard_unavailable = shard_unavailable_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_.evictions();
  // Invalidations = writer's eager sweeps plus entries dropped lazily at
  // lookup time when their version stamp no longer matched.
  s.cache_invalidations = invalidations_.load(std::memory_order_relaxed) +
                          cache_.stale_drops();
  s.update_batches = update_batches_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.nodes_added = nodes_added_.load(std::memory_order_relaxed);
  s.version = version_.load(std::memory_order_acquire);
  s.read_wait_us =
      static_cast<double>(
          read_wait_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.write_wait_us =
      static_cast<double>(
          write_wait_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.write_apply_us =
      static_cast<double>(
          write_apply_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.hit_latency = hit_latency_.Summarize();
  s.miss_latency = miss_latency_.Summarize();
  s.degraded_latency = degraded_latency_.Summarize();
  s.burst_read_latency = burst_read_latency_.Summarize();
  return s;
}

}  // namespace osq
