#include "serve/query_service.h"

#include <mutex>
#include <utility>

#include "common/timer.h"

namespace osq {

namespace {

uint64_t TenthUs(double us) {
  return us > 0.0 ? static_cast<uint64_t>(us * 10.0) : 0;
}

}  // namespace

QueryService::QueryService(QueryEngine engine, const ServeOptions& options)
    : options_(options),
      engine_(std::move(engine)),
      cache_(options.cache_capacity) {}

ServedResult QueryService::Query(const Graph& query,
                                 const QueryOptions& options) {
  ServedResult served;
  WallTimer total;
  // The signature is pure function of the inputs — build it before taking
  // the lock to keep the critical section short.
  std::string key = QuerySignature(query, options);

  WallTimer wait;
  std::shared_lock<std::shared_mutex> lock(mu_);
  served.wait_us = wait.ElapsedMicros();
  read_wait_tenth_us_.fetch_add(TenthUs(served.wait_us),
                                std::memory_order_relaxed);
  // Stable while the shared lock is held: writers bump it only under the
  // exclusive lock.
  served.version = version_.load(std::memory_order_relaxed);

  if (cache_.Lookup(key, served.version, &served.result)) {
    served.cache_hit = true;
  } else {
    served.result = engine_.Query(query, options);
    if (served.result.status.ok() || options_.cache_errors) {
      cache_.Insert(key, served.version, served.result);
    }
  }
  lock.unlock();

  served.serve_us = total.ElapsedMicros();
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (served.cache_hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_latency_.Record(served.serve_us);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    miss_latency_.Record(served.serve_us);
  }
  return served;
}

void QueryService::FinishWriteLocked(size_t applied, size_t skipped) {
  update_batches_.fetch_add(1, std::memory_order_relaxed);
  (void)skipped;
  if (applied == 0) return;  // no-op batch: snapshot unchanged
  updates_applied_.fetch_add(applied, std::memory_order_relaxed);
  uint64_t v = version_.load(std::memory_order_relaxed) + 1;
  version_.store(v, std::memory_order_release);
  invalidations_.fetch_add(cache_.Invalidate(v), std::memory_order_relaxed);
}

bool QueryService::ApplyUpdate(const GraphUpdate& update,
                               MaintenanceStats* stats) {
  WallTimer wait;
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(TenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  bool applied = engine_.ApplyUpdate(update, stats);
  FinishWriteLocked(applied ? 1 : 0, applied ? 0 : 1);
  return applied;
}

MaintenanceStats QueryService::ApplyUpdates(
    const std::vector<GraphUpdate>& updates) {
  WallTimer wait;
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(TenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  MaintenanceStats stats = engine_.ApplyUpdates(updates);
  FinishWriteLocked(stats.applied, stats.skipped);
  return stats;
}

NodeId QueryService::AddNode(LabelId label) {
  WallTimer wait;
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(TenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  NodeId id = engine_.AddNode(label);
  // A new node is observable (a single-node query can match it), so it
  // advances the snapshot like any other applied update.
  FinishWriteLocked(1, 0);
  return id;
}

ServeStats QueryService::Stats() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.cache_hits = hits_.load(std::memory_order_relaxed);
  s.cache_misses = misses_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_.evictions();
  s.cache_invalidations = invalidations_.load(std::memory_order_relaxed);
  s.update_batches = update_batches_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.version = version_.load(std::memory_order_acquire);
  s.read_wait_us =
      static_cast<double>(
          read_wait_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.write_wait_us =
      static_cast<double>(
          write_wait_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.hit_latency = hit_latency_.Summarize();
  s.miss_latency = miss_latency_.Summarize();
  return s;
}

}  // namespace osq
