#include "serve/query_service.h"

#include <mutex>
#include <utility>

#include "common/deadline.h"
#include "common/status.h"
#include "common/timer.h"

namespace osq {

namespace {

uint64_t TenthUs(double us) {
  return us > 0.0 ? static_cast<uint64_t>(us * 10.0) : 0;
}

}  // namespace

QueryService::QueryService(QueryEngine engine, const ServeOptions& options)
    : options_(options),
      engine_(std::move(engine)),
      cache_(options.cache_capacity) {}

ServedResult QueryService::Query(const Graph& query,
                                 const QueryOptions& options) {
  ServedResult served;
  WallTimer total;

  // Admission control: count this request against the in-flight bound and
  // shed before taking the lock or touching the engine, so overload cannot
  // pile up lock waiters.  The gauge may transiently overshoot the bound
  // between the fetch_add and the rollback, but admitted requests never do.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_inflight > 0 &&
      inflight_.load(std::memory_order_relaxed) > options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    served.shed = true;
    served.result.status = Status::Unavailable(
        "query shed: service at max_inflight capacity");
    served.version = version_.load(std::memory_order_acquire);
    served.serve_us = total.ElapsedMicros();
    shed_.fetch_add(1, std::memory_order_relaxed);
    return served;
  }

  // Service-level deadline: a request without its own deadline inherits
  // the configured default.  The cache signature ignores deadlines (a
  // complete result is deadline-invariant), so this never splits keys.
  QueryOptions effective = options;
  if (effective.deadline_ms <= 0.0 && options_.default_deadline_ms > 0.0) {
    effective.deadline_ms = options_.default_deadline_ms;
  }

  // The signature is a pure function of the inputs — build it before taking
  // the lock to keep the critical section short.
  std::string key = QuerySignature(query, effective);

  WallTimer wait;
  std::shared_lock<std::shared_mutex> lock(mu_);
  served.wait_us = wait.ElapsedMicros();
  read_wait_tenth_us_.fetch_add(TenthUs(served.wait_us),
                                std::memory_order_relaxed);
  // Stable while the shared lock is held: writers bump it only under the
  // exclusive lock.
  served.version = version_.load(std::memory_order_relaxed);

  VersionVector stamp = VersionVector::Scalar(served.version);
  if (cache_.Lookup(key, stamp, &served.result)) {
    served.cache_hit = true;
  } else {
    served.result = engine_.Query(query, effective);
    // Only complete results are cacheable: a degraded result reflects
    // where the clock (or a cancel) happened to interrupt the search, and
    // serving it later as a hit would silently drop matches forever.
    if ((served.result.status.ok() || options_.cache_errors) &&
        served.result.complete()) {
      cache_.Insert(key, stamp, served.result);
    }
  }
  lock.unlock();
  inflight_.fetch_sub(1, std::memory_order_relaxed);

  served.serve_us = total.ElapsedMicros();
  queries_.fetch_add(1, std::memory_order_relaxed);
  switch (served.result.completeness) {
    case StopReason::kNone:
      complete_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kShardUnavailable:
      // Single-engine services never produce this; counted for switch
      // exhaustiveness and so a sharded coordinator can reuse ServeStats.
      shard_unavailable_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (served.cache_hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_latency_.Record(served.serve_us);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (served.result.complete()) {
      miss_latency_.Record(served.serve_us);
    } else {
      degraded_latency_.Record(served.serve_us);
    }
  }
  return served;
}

void QueryService::FinishWriteLocked(size_t applied, size_t skipped) {
  update_batches_.fetch_add(1, std::memory_order_relaxed);
  (void)skipped;
  if (applied == 0) return;  // no-op batch: snapshot unchanged
  updates_applied_.fetch_add(applied, std::memory_order_relaxed);
  uint64_t v = version_.load(std::memory_order_relaxed) + 1;
  version_.store(v, std::memory_order_release);
  invalidations_.fetch_add(cache_.Invalidate(VersionVector::Scalar(v)),
                           std::memory_order_relaxed);
}

bool QueryService::ApplyUpdate(const GraphUpdate& update,
                               MaintenanceStats* stats) {
  WallTimer wait;
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(TenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  bool applied = engine_.ApplyUpdate(update, stats);
  FinishWriteLocked(applied ? 1 : 0, applied ? 0 : 1);
  return applied;
}

MaintenanceStats QueryService::ApplyUpdates(
    const std::vector<GraphUpdate>& updates) {
  WallTimer wait;
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(TenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  MaintenanceStats stats = engine_.ApplyUpdates(updates);
  FinishWriteLocked(stats.applied, stats.skipped);
  return stats;
}

NodeId QueryService::AddNode(LabelId label) {
  WallTimer wait;
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(TenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  NodeId id = engine_.AddNode(label);
  // A new node is observable (a single-node query can match it), so it
  // advances the snapshot like any other applied update.
  FinishWriteLocked(1, 0);
  return id;
}

ServeStats QueryService::Stats() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.cache_hits = hits_.load(std::memory_order_relaxed);
  s.cache_misses = misses_.load(std::memory_order_relaxed);
  s.complete = complete_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.shard_unavailable = shard_unavailable_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_.evictions();
  // Invalidations = writer's eager sweeps plus entries dropped lazily at
  // lookup time when their version stamp no longer matched.
  s.cache_invalidations = invalidations_.load(std::memory_order_relaxed) +
                          cache_.stale_drops();
  s.update_batches = update_batches_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.version = version_.load(std::memory_order_acquire);
  s.read_wait_us =
      static_cast<double>(
          read_wait_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.write_wait_us =
      static_cast<double>(
          write_wait_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.hit_latency = hit_latency_.Summarize();
  s.miss_latency = miss_latency_.Summarize();
  s.degraded_latency = degraded_latency_.Summarize();
  return s;
}

}  // namespace osq
