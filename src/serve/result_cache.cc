#include "serve/result_cache.h"

#include <cinttypes>
#include <cstdio>

namespace osq {

std::string QuerySignature(const Graph& query, const QueryOptions& options) {
  std::string sig;
  sig.reserve(32 + 8 * query.num_nodes() + 16 * query.num_edges());
  char buf[96];
  std::snprintf(buf, sizeof(buf), "n%zu|", query.num_nodes());
  sig.append(buf);
  for (NodeId u = 0; u < query.num_nodes(); ++u) {
    std::snprintf(buf, sizeof(buf), "%u,", query.NodeLabel(u));
    sig.append(buf);
  }
  sig.append("|");
  // Edges() iterates in (from, to, label) order, so structurally equal
  // graphs serialize identically no matter the insertion order.
  for (const EdgeTriple& e : query.Edges()) {
    std::snprintf(buf, sizeof(buf), "%u>%u:%u;", e.from, e.to, e.label);
    sig.append(buf);
  }
  // %.17g round-trips doubles exactly.
  std::snprintf(buf, sizeof(buf), "|t%.17g|k%zu|s%d|l%d|c%d|m%zu",
                options.theta, options.k,
                static_cast<int>(options.semantics),
                options.lazy_candidates ? 1 : 0,
                options.use_candidate_index ? 1 : 0,
                options.max_search_steps);
  sig.append(buf);
  return sig;
}

bool ResultCache::Lookup(const std::string& key, const VersionVector& version,
                         QueryResult* out) {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return false;
  if (it->second->version != version) {
    lru_.erase(it->second);
    by_key_.erase(it);
    ++stale_drops_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // mark most recently used
  *out = it->second->result;
  return true;
}

void ResultCache::Insert(const std::string& key, const VersionVector& version,
                         const QueryResult& result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    it->second->version = version;
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, version, result});
  by_key_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

size_t ResultCache::Invalidate(const VersionVector& current) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->version != current) {
      by_key_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

uint64_t ResultCache::stale_drops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_drops_;
}

}  // namespace osq
