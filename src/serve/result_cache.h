// Versioned LRU cache of full QueryResults, keyed by a canonical query
// signature (serve/result_cache.h:QuerySignature).
//
// Invalidation correctness is version-based: every entry is stamped with
// the snapshot version vector it was computed at, and Lookup() only
// returns an entry whose stamp equals the caller's current vector — so
// even if the eager Invalidate() pass after an update were skipped or
// raced, a stale result could never be served (the stamp check is the
// proof obligation; eager invalidation is just cleanup that frees
// capacity sooner).  See DESIGN.md §8.
//
// The stamp is a VersionVector, one monotone component per independently
// versioned snapshot source.  A single-engine QueryService uses a
// one-component vector (VersionVector::Scalar); the sharded serving tier
// stamps one component per shard, so an entry computed before ANY single
// shard advanced is recognized as stale — a scalar max or sum could alias
// distinct cuts (DESIGN.md §13).
//
// The cache is internally synchronized with a single mutex; entries are
// full QueryResult copies, so a returned result is immune to later
// evictions.

#ifndef OSQ_SERVE_RESULT_CACHE_H_
#define OSQ_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "core/options.h"
#include "core/query_engine.h"
#include "graph/graph.h"

namespace osq {

// Canonical cache key: a deterministic serialization of the query graph
// (node labels in id order + the sorted edge-triple list) concatenated
// with every QueryOptions field that can influence the QueryResult —
// theta, k, semantics, lazy_candidates, use_candidate_index,
// max_search_steps.  num_threads is
// deliberately excluded: results are thread-count invariant by contract
// (DESIGN.md §7), so a result computed at any thread count answers all of
// them.  Structurally identical queries hash equal regardless of how the
// caller built them; isomorphic-but-reordered queries are treated as
// distinct (full canonicalization would cost a graph-isomorphism test per
// request).
std::string QuerySignature(const Graph& query, const QueryOptions& options);

// Snapshot stamp: one monotone version counter per independently advancing
// snapshot source.  Equality is component-wise; because every component is
// monotone, stamp != current implies the entry can never become valid
// again.  Comparing vectors of different lengths is a caller bug (the
// shard count of a service is fixed at construction) and simply compares
// unequal.
struct VersionVector {
  std::vector<uint64_t> v;

  // One-component vector for single-engine services.
  static VersionVector Scalar(uint64_t version) {
    return VersionVector{{version}};
  }

  friend bool operator==(const VersionVector& a, const VersionVector& b) {
    return a.v == b.v;
  }
  friend bool operator!=(const VersionVector& a, const VersionVector& b) {
    return !(a == b);
  }
};

class ResultCache {
 public:
  // capacity == 0 disables the cache (Lookup always misses, Insert drops).
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Copies the entry for `key` into *out and returns true when present
  // and stamped with exactly `version`.  An entry found with any other
  // stamp is dropped on the spot (it can never become valid again —
  // every component is monotone).
  bool Lookup(const std::string& key, const VersionVector& version,
              QueryResult* out);

  // Inserts (or refreshes) `key` -> (`version`, `result`), evicting the
  // least-recently-used entry when over capacity.
  void Insert(const std::string& key, const VersionVector& version,
              const QueryResult& result);

  // Drops every entry whose stamp differs from the writer's `current`
  // vector in any component; returns the number dropped.  Called by the
  // writer after a mutation, under the exclusive snapshot lock.
  size_t Invalidate(const VersionVector& current);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const;
  // Stale entries dropped lazily at Lookup time (version-stamp mismatch);
  // the serving layer folds these into its invalidation counter so eager
  // sweeps and lazy drops are reported uniformly.
  uint64_t stale_drops() const;

 private:
  struct Entry {
    std::string key;
    VersionVector version;
    QueryResult result;
  };

  mutable std::mutex mu_;
  // Front = most recently used.
  std::list<Entry> lru_ OSQ_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_
      OSQ_GUARDED_BY(mu_);
  size_t capacity_;  // immutable after construction
  uint64_t evictions_ OSQ_GUARDED_BY(mu_) = 0;
  uint64_t stale_drops_ OSQ_GUARDED_BY(mu_) = 0;
};

}  // namespace osq

#endif  // OSQ_SERVE_RESULT_CACHE_H_
