// Observability for the serving layer (serve/query_service.h).
//
// QueryService records every request into lock-free log-bucketed latency
// histograms (one for cache hits, one for cold queries) plus a set of
// monotonic counters; Snapshot() folds them into a plain ServeStats value
// with interpolated percentiles.  All recording uses relaxed atomics —
// counters are independent monotone facts, not synchronization — so the
// hot path never takes a lock for stats and stays ThreadSanitizer-clean.

#ifndef OSQ_SERVE_SERVE_STATS_H_
#define OSQ_SERVE_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace osq {

// Converts a microsecond duration to 0.1 us ticks, rounding to nearest.
// Counters accumulate ticks rather than floating-point sums so relaxed
// fetch_add stays exact; rounding (not truncation) keeps the expected
// value of the sum equal to the sum of the expected values — with
// truncation, sub-0.1 us lock waits accumulate to zero and wait totals
// systematically undercount under high QPS.
inline uint64_t ToTenthUs(double us) {
  return us > 0.0 ? static_cast<uint64_t>(us * 10.0 + 0.5) : 0;
}

// Percentile summary of one latency population, microseconds.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

// A point-in-time snapshot of a QueryService's counters.
//
// Accounting invariant (pinned by serve_stats_test):
//
//   queries == cache_hits + cache_misses
//   queries == complete + deadline_exceeded + cancelled + shard_unavailable
//   total_requests() == queries + shed
//
// `queries` counts requests that were ADMITTED — they reached the cache or
// the engine and recorded a latency sample (hit_latency.count +
// miss_latency.count + degraded_latency.count == queries).  Shed requests
// were rejected at admission before touching the lock, cache, or engine:
// they are counted only in `shed`, record no latency, and are visible in
// the end-to-end request total exclusively via total_requests().
struct ServeStats {
  // Requests served, split by how they were answered.
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Completion-status split of the served queries (cache hits are always
  // complete — partial results are never cached).
  uint64_t complete = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  // Queries degraded because one or more shards failed (sharded serving
  // tier only; always 0 for a single-engine QueryService).
  uint64_t shard_unavailable = 0;
  // Requests rejected at admission (ServeOptions::max_inflight exceeded);
  // NOT included in `queries` — they never reached the engine or cache.
  uint64_t shed = 0;
  // Cache churn: capacity evictions vs entries dropped because an update
  // advanced the snapshot version past them.  Invalidations count both the
  // writer's eager sweep and stale entries dropped lazily at lookup time.
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  // Mutations: one batch per ApplyUpdate/ApplyUpdates/AddNode call that
  // changed the graph.  `updates_applied` counts individual EDGE updates
  // only; node additions are tracked separately in `nodes_added` (both
  // advance the snapshot version — a single-node query can match a fresh
  // node — but conflating them would misstate the edge-churn rate).
  uint64_t update_batches = 0;
  uint64_t updates_applied = 0;
  uint64_t nodes_added = 0;
  // Snapshot version at snapshot time (monotone, bumped per batch).
  uint64_t version = 0;
  // Total time requests spent waiting to acquire the reader (resp. writer)
  // side of the snapshot lock, microseconds.
  double read_wait_us = 0.0;
  double write_wait_us = 0.0;
  // Total time writers spent doing maintenance work INSIDE the exclusive
  // lock (graph mutation + incremental index repair + cache sweep),
  // microseconds.  write_apply_us / update_batches is the online
  // maintenance cost per snapshot cut — the measured form of the paper's
  // incremental-vs-recompute claim; write_wait_us is serving contention,
  // deliberately excluded.
  double write_apply_us = 0.0;
  // Live-ingest observability, filled by the free AugmentServeStats bridge
  // (src/ingest/update_sink.h); zero for a service without a pipeline.
  // backlog = updates accepted but not yet applied (gauge); applied_lag =
  // age of the oldest update in the most recently applied batch at the
  // moment it became visible (gauge); coalescing ratio = updates absorbed
  // per snapshot cut (submitted that retired / batches).
  uint64_t ingest_backlog = 0;
  double ingest_applied_lag_ms = 0.0;
  double ingest_coalescing_ratio = 0.0;

  // End-to-end service latency (lock wait + cache probe + engine), split
  // by completion status: cache hits, complete cold evaluations, and
  // degraded (deadline_exceeded / cancelled) evaluations.
  LatencySummary hit_latency;
  LatencySummary miss_latency;
  LatencySummary degraded_latency;
  // Subset of admitted reads that overlapped a write burst — a writer was
  // pending or in progress when the read arrived or when it acquired the
  // shared lock.  Every such read is ALSO in exactly one of the three
  // populations above; this split shows how p99 degrades under writes.
  LatencySummary burst_read_latency;

  // All requests that entered the service, admitted or not.
  uint64_t total_requests() const { return queries + shed; }

  // Cache invalidations per mutating batch (staleness pressure on the
  // result cache); 0 when no batch has been applied.
  double cache_invalidation_rate() const {
    return update_batches > 0 ? static_cast<double>(cache_invalidations) /
                                    static_cast<double>(update_batches)
                              : 0.0;
  }

  // Multi-line human-readable rendering for CLI / bench output.
  std::string ToString() const;
};

// Concurrent latency histogram: geometric buckets with ratio 2^(1/4)
// starting at 1 us, so 96 buckets span 1 us .. ~16.8 s with <= 19 %
// relative quantile error.  Record() is wait-free (relaxed fetch_add plus
// a CAS max); Summarize() interpolates percentiles within a bucket.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 96;

  void Record(double us);
  LatencySummary Summarize() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_tenth_us_{0};  // sum in 0.1 us ticks
  std::atomic<uint64_t> max_tenth_us_{0};
};

// RAII decrement of a relaxed gauge; the increment is the caller's.  Used
// by the serving layers to keep "writers pending or writing" gauges exact
// across every early return.
class GaugeDecrementGuard {
 public:
  explicit GaugeDecrementGuard(std::atomic<uint64_t>& gauge)
      : gauge_(gauge) {}
  ~GaugeDecrementGuard() { gauge_.fetch_sub(1, std::memory_order_relaxed); }
  GaugeDecrementGuard(const GaugeDecrementGuard&) = delete;
  GaugeDecrementGuard& operator=(const GaugeDecrementGuard&) = delete;

 private:
  std::atomic<uint64_t>& gauge_;
};

}  // namespace osq

#endif  // OSQ_SERVE_SERVE_STATS_H_
