// Observability for the serving layer (serve/query_service.h).
//
// QueryService records every request into lock-free log-bucketed latency
// histograms (one for cache hits, one for cold queries) plus a set of
// monotonic counters; Snapshot() folds them into a plain ServeStats value
// with interpolated percentiles.  All recording uses relaxed atomics —
// counters are independent monotone facts, not synchronization — so the
// hot path never takes a lock for stats and stays ThreadSanitizer-clean.

#ifndef OSQ_SERVE_SERVE_STATS_H_
#define OSQ_SERVE_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace osq {

// Percentile summary of one latency population, microseconds.
struct LatencySummary {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

// A point-in-time snapshot of a QueryService's counters.
struct ServeStats {
  // Requests served, split by how they were answered.
  uint64_t queries = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  // Completion-status split of the served queries (cache hits are always
  // complete — partial results are never cached).
  uint64_t complete = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  // Queries degraded because one or more shards failed (sharded serving
  // tier only; always 0 for a single-engine QueryService).
  uint64_t shard_unavailable = 0;
  // Requests rejected at admission (ServeOptions::max_inflight exceeded);
  // NOT included in `queries` — they never reached the engine or cache.
  uint64_t shed = 0;
  // Cache churn: capacity evictions vs entries dropped because an update
  // advanced the snapshot version past them.  Invalidations count both the
  // writer's eager sweep and stale entries dropped lazily at lookup time.
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  // Mutations: one batch per ApplyUpdate/ApplyUpdates/AddNode call that
  // changed the graph; applied counts individual edge updates.
  uint64_t update_batches = 0;
  uint64_t updates_applied = 0;
  // Snapshot version at snapshot time (monotone, bumped per batch).
  uint64_t version = 0;
  // Total time requests spent waiting to acquire the reader (resp. writer)
  // side of the snapshot lock, microseconds.
  double read_wait_us = 0.0;
  double write_wait_us = 0.0;
  // End-to-end service latency (lock wait + cache probe + engine), split
  // by completion status: cache hits, complete cold evaluations, and
  // degraded (deadline_exceeded / cancelled) evaluations.
  LatencySummary hit_latency;
  LatencySummary miss_latency;
  LatencySummary degraded_latency;

  // Multi-line human-readable rendering for CLI / bench output.
  std::string ToString() const;
};

// Concurrent latency histogram: geometric buckets with ratio 2^(1/4)
// starting at 1 us, so 96 buckets span 1 us .. ~16.8 s with <= 19 %
// relative quantile error.  Record() is wait-free (relaxed fetch_add plus
// a CAS max); Summarize() interpolates percentiles within a bucket.
class LatencyHistogram {
 public:
  static constexpr size_t kBuckets = 96;

  void Record(double us);
  LatencySummary Summarize() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_tenth_us_{0};  // sum in 0.1 us ticks
  std::atomic<uint64_t> max_tenth_us_{0};
};

}  // namespace osq

#endif  // OSQ_SERVE_SERVE_STATS_H_
