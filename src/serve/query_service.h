// QueryService — concurrent serving layer over QueryEngine.
//
// QueryEngine::Query is const but unsynchronized: calling it while
// ApplyUpdate mutates the graph/index is a data race.  QueryService wraps
// one engine behind a reader/writer snapshot protocol so N client threads
// query concurrently while update batches apply atomically:
//
//   * Readers hold a std::shared_mutex in shared mode for the whole
//     evaluation — every query observes exactly one snapshot version,
//     never a half-applied batch (no torn reads).
//   * Writers hold it exclusively; each mutating call that changes the
//     graph advances the snapshot version by one ("one batch = one
//     version"), making pre/post states of a batch distinguishable.
//   * Writer fairness: glibc's shared_mutex prefers readers, so a stream
//     of closed-loop readers can keep the shared side continuously held
//     and starve a writer indefinitely.  A write-intent gate (a plain
//     mutex) bounds the writer's wait: writers take the gate first and
//     hold it across the exclusive acquisition, while every reader
//     briefly passes through the gate before taking the shared lock.
//     Once a writer owns the gate no NEW reader can reach the shared
//     lock, so the writer waits only for the readers already past the
//     gate to drain — bounded by in-flight query latency, independent of
//     read arrival rate.
//   * Results are memoized in a versioned LRU cache (serve/result_cache.h)
//     keyed by the canonical query signature.  An entry is served only if
//     its version stamp equals the version the reader observes under the
//     shared lock, so a stale result can never be returned; updates also
//     eagerly invalidate superseded entries.  A cache hit returns a
//     bit-identical copy of the cold QueryResult (including the cold run's
//     phase timings and stats).
//
// Observability: every request records lock wait and end-to-end latency
// into ServeStats (hit/miss/degraded split, p50/p90/p99); Stats()
// snapshots them at any time without stopping traffic.  See DESIGN.md §8.
//
// Overload protection (DESIGN.md §9): ServeOptions::max_inflight bounds
// concurrently admitted queries; excess requests are shed immediately with
// StatusCode::kUnavailable, never touching the lock, engine or cache.
// ServeOptions::default_deadline_ms applies a deadline to requests that do
// not carry their own; degraded results (deadline_exceeded / cancelled)
// are returned to the caller but never inserted into the cache, so a
// cache hit is always a complete result.

#ifndef OSQ_SERVE_QUERY_SERVICE_H_
#define OSQ_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/annotations.h"
#include "core/index_maintenance.h"
#include "core/options.h"
#include "core/query_engine.h"
#include "graph/graph.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"

namespace osq {

// A QueryResult plus per-request serving metadata.
struct ServedResult {
  QueryResult result;
  // True when the result came out of the cache without touching the engine.
  bool cache_hit = false;
  // True when the request was rejected at admission (max_inflight exceeded);
  // result.status is kUnavailable and no evaluation happened.
  bool shed = false;
  // Snapshot version the result reflects (monotone; one mutating batch
  // advances it by one).
  uint64_t version = 0;
  // Time spent waiting to acquire the shared snapshot lock, microseconds.
  double wait_us = 0.0;
  // End-to-end service time (wait + cache probe + engine), microseconds.
  double serve_us = 0.0;
};

class QueryService {
 public:
  // Takes ownership of a fully built engine.
  explicit QueryService(QueryEngine engine,
                        const ServeOptions& options = ServeOptions{});

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Evaluates `query` against the current snapshot.  Safe to call from
  // any number of threads concurrently with each other and with the
  // mutating calls below.  [[nodiscard]]: the result carries the status
  // (including Unavailable shed signals) — dropping it hides overload.
  [[nodiscard]] ServedResult Query(const Graph& query,
                                   const QueryOptions& options);

  // Mutations.  Each call that changes the graph applies atomically with
  // respect to Query (readers see all of it or none of it) and advances
  // the snapshot version by one.
  bool ApplyUpdate(const GraphUpdate& update,
                   MaintenanceStats* stats = nullptr);
  // [[nodiscard]]: the stats carry the applied/skipped split — dropping
  // them hides a batch that silently no-opped.
  [[nodiscard]] MaintenanceStats ApplyUpdates(
      const std::vector<GraphUpdate>& updates);
  NodeId AddNode(LabelId label);

  // Current snapshot version; starts at 0 for a freshly wrapped engine.
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  // Point-in-time counters; callable concurrently with traffic.
  ServeStats Stats() const;

  size_t cache_size() const { return cache_.size(); }

  // Queries currently admitted and executing (cache probe + engine).
  // Instantaneous gauge; useful for tests and load monitoring.
  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  // Direct engine access for setup / inspection.  NOT synchronized —
  // callers must guarantee no concurrent Query/Apply* is in flight.
  const QueryEngine& engine_unsynchronized() const {
    // NOLINTNEXTLINE(osq-guarded-access): documented escape hatch — callers forbid concurrent traffic
    return engine_;
  }

 private:
  // Bookkeeping shared by the mutating entry points; called with `mu_`
  // held exclusively.  `applied` counts edge updates that actually changed
  // the graph; node additions go through FinishNodeAddLocked so the
  // edge-churn and node-growth metrics stay separable.
  void FinishWriteLocked(size_t applied, size_t skipped) OSQ_REQUIRES(mu_);
  void FinishNodeAddLocked() OSQ_REQUIRES(mu_);
  // Advances the snapshot version and sweeps the result cache; shared
  // tail of the two Finish* paths.
  void AdvanceVersionLocked() OSQ_REQUIRES(mu_);

  ServeOptions options_;
  // Write-intent gate: see the fairness note in the class comment.
  // Ordering is always gate THEN mu_; readers never hold both.
  std::mutex writer_gate_ OSQ_ACQUIRED_BEFORE(mu_);
  mutable std::shared_mutex mu_;  // guards engine_ (readers shared)
  QueryEngine engine_ OSQ_GUARDED_BY(mu_);
  std::atomic<uint64_t> version_{0};
  // Internally synchronized (own mutex) — deliberately not GUARDED_BY.
  ResultCache cache_;

  // Admission gauge: queries past the shed check and not yet finished.
  std::atomic<size_t> inflight_{0};
  // Writers pending or writing: incremented before a writer queues on the
  // gate, decremented after its locks release.  Readers sample it to
  // classify themselves into the write-burst latency split.
  std::atomic<uint64_t> writers_pending_{0};

  // Counters (relaxed; see serve_stats.h for the rationale).
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> complete_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> shard_unavailable_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> update_batches_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> nodes_added_{0};
  std::atomic<uint64_t> read_wait_tenth_us_{0};
  std::atomic<uint64_t> write_wait_tenth_us_{0};
  std::atomic<uint64_t> write_apply_tenth_us_{0};
  LatencyHistogram hit_latency_;
  LatencyHistogram miss_latency_;
  LatencyHistogram degraded_latency_;
  LatencyHistogram burst_read_latency_;
};

}  // namespace osq

#endif  // OSQ_SERVE_QUERY_SERVICE_H_
