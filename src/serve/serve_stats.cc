#include "serve/serve_stats.h"

#include <cmath>
#include <cstdio>

namespace osq {

namespace {

// Bucket boundaries grow by r = 2^(1/4) per bucket from 1 us; bucket i
// covers [r^i, r^(i+1)) us.  Index = floor(4 * log2(us)), clamped.
size_t BucketOf(double us) {
  if (us <= 1.0) return 0;
  double idx = 4.0 * std::log2(us);
  if (idx >= static_cast<double>(LatencyHistogram::kBuckets - 1)) {
    return LatencyHistogram::kBuckets - 1;
  }
  return static_cast<size_t>(idx);
}

double BucketLowUs(size_t i) {
  return std::exp2(static_cast<double>(i) / 4.0);
}

}  // namespace

void LatencyHistogram::Record(double us) {
  if (us < 0.0) us = 0.0;
  buckets_[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t tenths = ToTenthUs(us);
  total_tenth_us_.fetch_add(tenths, std::memory_order_relaxed);
  uint64_t seen = max_tenth_us_.load(std::memory_order_relaxed);
  while (tenths > seen &&
         !max_tenth_us_.compare_exchange_weak(seen, tenths,
                                              std::memory_order_relaxed)) {
  }
}

LatencySummary LatencyHistogram::Summarize() const {
  LatencySummary s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.mean_us = static_cast<double>(
                  total_tenth_us_.load(std::memory_order_relaxed)) /
              10.0 / static_cast<double>(s.count);
  s.max_us = static_cast<double>(
                 max_tenth_us_.load(std::memory_order_relaxed)) /
             10.0;

  // Walk the histogram once, resolving each requested quantile when the
  // cumulative count crosses it; linear interpolation inside the bucket.
  struct Target {
    double q;
    double* out;
  };
  Target targets[] = {{0.50, &s.p50_us}, {0.90, &s.p90_us},
                      {0.99, &s.p99_us}};
  size_t t = 0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets && t < 3; ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    while (t < 3) {
      double rank = targets[t].q * static_cast<double>(s.count);
      if (rank > static_cast<double>(cumulative + in_bucket)) break;
      double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      double lo = BucketLowUs(i);
      double hi = i + 1 < kBuckets ? BucketLowUs(i + 1) : s.max_us;
      double v = lo + frac * (hi - lo);
      *targets[t].out = v < s.max_us ? v : s.max_us;
      ++t;
    }
    cumulative += in_bucket;
  }
  // Quantiles past the last populated bucket (rounding): pin to max.
  for (; t < 3; ++t) *targets[t].out = s.max_us;
  return s;
}

namespace {

void AppendLatency(std::string* out, const char* name,
                   const LatencySummary& l) {
  char line[160];
  std::snprintf(line, sizeof(line),
                "  %-5s n=%llu mean=%.1fus p50=%.1fus p90=%.1fus "
                "p99=%.1fus max=%.1fus\n",
                name, static_cast<unsigned long long>(l.count), l.mean_us,
                l.p50_us, l.p90_us, l.p99_us, l.max_us);
  out->append(line);
}

}  // namespace

std::string ServeStats::ToString() const {
  std::string out;
  char line[200];
  std::snprintf(line, sizeof(line),
                "serve: %llu queries (%llu hits / %llu misses), version %llu\n",
                static_cast<unsigned long long>(queries),
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses),
                static_cast<unsigned long long>(version));
  out.append(line);
  std::snprintf(line, sizeof(line),
                "completion: %llu complete, %llu deadline_exceeded, "
                "%llu cancelled, %llu shard_unavailable, %llu shed "
                "(%llu total requests)\n",
                static_cast<unsigned long long>(complete),
                static_cast<unsigned long long>(deadline_exceeded),
                static_cast<unsigned long long>(cancelled),
                static_cast<unsigned long long>(shard_unavailable),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(total_requests()));
  out.append(line);
  std::snprintf(line, sizeof(line),
                "cache: %llu evictions, %llu invalidations "
                "(%.2f per batch)\n",
                static_cast<unsigned long long>(cache_evictions),
                static_cast<unsigned long long>(cache_invalidations),
                cache_invalidation_rate());
  out.append(line);
  std::snprintf(line, sizeof(line),
                "updates: %llu batches, %llu applied, %llu nodes added\n",
                static_cast<unsigned long long>(update_batches),
                static_cast<unsigned long long>(updates_applied),
                static_cast<unsigned long long>(nodes_added));
  out.append(line);
  if (ingest_backlog > 0 || ingest_applied_lag_ms > 0.0 ||
      ingest_coalescing_ratio > 0.0) {
    std::snprintf(line, sizeof(line),
                  "ingest: backlog %llu, applied lag %.2fms, "
                  "coalescing %.2f updates/batch\n",
                  static_cast<unsigned long long>(ingest_backlog),
                  ingest_applied_lag_ms, ingest_coalescing_ratio);
    out.append(line);
  }
  std::snprintf(line, sizeof(line),
                "waits: read %.1fus total, write %.1fus total "
                "(apply %.1fus in-lock)\n",
                read_wait_us, write_wait_us, write_apply_us);
  out.append(line);
  AppendLatency(&out, "hit", hit_latency);
  AppendLatency(&out, "miss", miss_latency);
  AppendLatency(&out, "degr", degraded_latency);
  AppendLatency(&out, "burst", burst_read_latency);
  return out;
}

}  // namespace osq
