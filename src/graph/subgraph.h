// Induced-subgraph extraction.
//
// The filtering phase (paper §IV-B) produces the compact subgraph G_v of
// the data graph induced by the surviving candidate nodes; verification
// then runs entirely on G_v.  InducedSubgraph materializes that subgraph
// with a node-id remapping in both directions.

#ifndef OSQ_GRAPH_SUBGRAPH_H_
#define OSQ_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace osq {

// A subgraph together with the correspondence to the original graph.
struct Subgraph {
  Graph graph;
  // to_original[v] is the original id of subgraph node v.
  std::vector<NodeId> to_original;
  // from_original[u] is the subgraph id of original node u, or kInvalidNode
  // if u is not in the subgraph.  Sized to the original node count.
  std::vector<NodeId> from_original;
};

// Extracts the subgraph of `g` induced by `nodes` (need not be sorted;
// duplicates are ignored).  Keeps every edge of `g` whose endpoints are
// both selected, with its edge label.
Subgraph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes);

}  // namespace osq

#endif  // OSQ_GRAPH_SUBGRAPH_H_
