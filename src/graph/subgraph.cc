#include "graph/subgraph.h"

#include <algorithm>

#include "common/check.h"

namespace osq {

Subgraph InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes) {
  Subgraph sub;
  sub.from_original.assign(g.num_nodes(), kInvalidNode);

  std::vector<NodeId> sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  sub.to_original.reserve(sorted.size());
  for (NodeId u : sorted) {
    OSQ_CHECK(g.IsValidNode(u));
    NodeId v = sub.graph.AddNode(g.NodeLabel(u));
    sub.to_original.push_back(u);
    sub.from_original[u] = v;
  }
  for (NodeId u : sorted) {
    NodeId v = sub.from_original[u];
    for (const AdjEntry& e : g.OutEdges(u)) {
      NodeId w = sub.from_original[e.node];
      if (w != kInvalidNode) {
        sub.graph.AddEdge(v, w, e.label);
      }
    }
  }
  // Verification scans the subgraph read-only; hand it back compacted.
  sub.graph.Freeze();
  return sub;
}

}  // namespace osq
