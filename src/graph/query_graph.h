// Query-graph conveniences.
//
// A query graph is structurally the same as a data graph (see graph.h), so
// queries reuse the Graph class.  This header adds:
//   * StringGraphBuilder — builds graphs from human-readable node names and
//     label strings, interning labels into a shared LabelDictionary.  Used
//     by examples, tests and the paper's running example.
//   * ValidateQuery — sanity checks a graph before it is used as a query.

#ifndef OSQ_GRAPH_QUERY_GRAPH_H_
#define OSQ_GRAPH_QUERY_GRAPH_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/label_dictionary.h"

namespace osq {

// Builds a Graph incrementally from string node names and string labels.
// Node names are unique within a builder; labels are interned in the
// dictionary passed at construction (not owned).
class StringGraphBuilder {
 public:
  explicit StringGraphBuilder(LabelDictionary* dict);

  StringGraphBuilder(const StringGraphBuilder&) = delete;
  StringGraphBuilder& operator=(const StringGraphBuilder&) = delete;

  // Adds a node named `name` with label `label`.  If `name` already
  // exists its id is returned and the label is left unchanged.
  NodeId AddNode(std::string_view name, std::string_view label);

  // Adds a node whose label equals its name (common for ontology-style
  // graphs where the entity *is* the label).
  NodeId AddNode(std::string_view name) { return AddNode(name, name); }

  // Adds edge from -> to with the given edge label, creating missing
  // endpoint nodes (labeled by their names).  Returns false on duplicate.
  bool AddEdge(std::string_view from, std::string_view to,
               std::string_view edge_label = "-");

  // Id of a previously added node, or kInvalidNode.
  NodeId NodeIdOf(std::string_view name) const;

  const Graph& graph() const { return graph_; }
  Graph&& TakeGraph() { return std::move(graph_); }
  LabelDictionary* dict() { return dict_; }

 private:
  LabelDictionary* dict_;
  Graph graph_;
  std::unordered_map<std::string, NodeId> node_ids_;
};

// Checks that `query` is usable as a query graph: non-empty and weakly
// connected (the paper's queries are connected patterns; a disconnected
// query would make the match score decomposable and the search wasteful).
[[nodiscard]] Status ValidateQuery(const Graph& query);

}  // namespace osq

#endif  // OSQ_GRAPH_QUERY_GRAPH_H_
