#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

namespace osq {

namespace {

bool HasWhitespace(const std::string& s) {
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return true;
  }
  return s.empty();
}

}  // namespace

Status SaveGraph(const Graph& g, const LabelDictionary& dict,
                 std::ostream* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("null output stream");
  }
  *out << "# osq graph: " << g.num_nodes() << " nodes, " << g.num_edges()
       << " edges\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::string& label = dict.Name(g.NodeLabel(v));
    if (HasWhitespace(label)) {
      return Status::InvalidArgument("node label unserializable: '" + label +
                                     "'");
    }
    *out << "v " << v << ' ' << label << '\n';
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.OutEdges(v)) {
      const std::string& label = dict.Name(e.label);
      if (HasWhitespace(label)) {
        return Status::InvalidArgument("edge label unserializable: '" + label +
                                       "'");
      }
      *out << "e " << v << ' ' << e.node << ' ' << label << '\n';
    }
  }
  if (!out->good()) {
    return Status::IoError("write failed");
  }
  return Status::Ok();
}

Status SaveGraphToFile(const Graph& g, const LabelDictionary& dict,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return SaveGraph(g, dict, &out);
}

Status LoadGraph(std::istream* in, LabelDictionary* dict, Graph* g) {
  if (in == nullptr || dict == nullptr || g == nullptr) {
    return Status::InvalidArgument("null argument to LoadGraph");
  }
  Graph result;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "v") {
      uint64_t id = 0;
      std::string label;
      if (!(ls >> id >> label)) {
        return Status::Corruption("bad node record at line " +
                                  std::to_string(line_no));
      }
      if (id != result.num_nodes()) {
        return Status::Corruption("non-dense node id at line " +
                                  std::to_string(line_no));
      }
      result.AddNode(dict->Intern(label));
    } else if (tag == "e") {
      uint64_t src = 0;
      uint64_t dst = 0;
      std::string label;
      if (!(ls >> src >> dst >> label)) {
        return Status::Corruption("bad edge record at line " +
                                  std::to_string(line_no));
      }
      if (src >= result.num_nodes() || dst >= result.num_nodes()) {
        return Status::Corruption("edge references unknown node at line " +
                                  std::to_string(line_no));
      }
      result.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst),
                     dict->Intern(label));
    } else {
      return Status::Corruption("unknown record '" + tag + "' at line " +
                                std::to_string(line_no));
    }
  }
  *g = std::move(result);
  return Status::Ok();
}

Status LoadGraphFromFile(const std::string& path, LabelDictionary* dict,
                         Graph* g) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return LoadGraph(&in, dict, g);
}

}  // namespace osq
