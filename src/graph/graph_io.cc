#include "graph/graph_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace osq {

namespace {

bool HasWhitespace(const std::string& s) {
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return true;
  }
  return s.empty();
}

}  // namespace

Status SaveGraph(const Graph& g, const LabelDictionary& dict,
                 std::ostream* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("null output stream");
  }
  *out << "# osq graph: " << g.num_nodes() << " nodes, " << g.num_edges()
       << " edges\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::string& label = dict.Name(g.NodeLabel(v));
    if (HasWhitespace(label)) {
      return Status::InvalidArgument("node label unserializable: '" + label +
                                     "'");
    }
    *out << "v " << v << ' ' << label << '\n';
  }
  std::vector<AdjEntry> edges;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // Emit per-target edges ordered by label *name*, not label id: the id
    // order depends on dictionary interning history, so re-exporting after
    // an import (which re-interns) would reorder parallel edges and break
    // the byte-identical export -> import -> export round trip.
    Graph::AdjSpan span = g.OutEdges(v);
    edges.assign(span.begin(), span.end());
    std::sort(edges.begin(), edges.end(),
              [&](const AdjEntry& a, const AdjEntry& b) {
                if (a.node != b.node) return a.node < b.node;
                return dict.Name(a.label) < dict.Name(b.label);
              });
    for (const AdjEntry& e : edges) {
      const std::string& label = dict.Name(e.label);
      if (HasWhitespace(label)) {
        return Status::InvalidArgument("edge label unserializable: '" + label +
                                       "'");
      }
      *out << "e " << v << ' ' << e.node << ' ' << label << '\n';
    }
  }
  if (!out->good()) {
    return Status::IoError("write failed");
  }
  return Status::Ok();
}

Status SaveGraphToFile(const Graph& g, const LabelDictionary& dict,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return SaveGraph(g, dict, &out);
}

Status LoadGraph(std::istream* in, LabelDictionary* dict, Graph* g) {
  if (in == nullptr || dict == nullptr || g == nullptr) {
    return Status::InvalidArgument("null argument to LoadGraph");
  }
  // Bulk-build: collect everything, sort once in Build().  Per-edge sorted
  // insertion would be O(E * deg) on million-edge files.
  GraphBuilder builder;
  std::string line;
  size_t line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "v") {
      uint64_t id = 0;
      std::string label;
      if (!(ls >> id >> label)) {
        return Status::Corruption("bad node record at line " +
                                  std::to_string(line_no));
      }
      if (id != builder.num_nodes()) {
        return Status::Corruption("non-dense node id at line " +
                                  std::to_string(line_no));
      }
      builder.AddNode(dict->Intern(label));
    } else if (tag == "e") {
      uint64_t src = 0;
      uint64_t dst = 0;
      std::string label;
      if (!(ls >> src >> dst >> label)) {
        return Status::Corruption("bad edge record at line " +
                                  std::to_string(line_no));
      }
      if (src >= builder.num_nodes() || dst >= builder.num_nodes()) {
        return Status::Corruption("edge references unknown node at line " +
                                  std::to_string(line_no));
      }
      builder.AddEdge(static_cast<NodeId>(src), static_cast<NodeId>(dst),
                      dict->Intern(label));
    } else {
      return Status::Corruption("unknown record '" + tag + "' at line " +
                                std::to_string(line_no));
    }
  }
  *g = std::move(builder).Build();
  return Status::Ok();
}

Status LoadGraphFromFile(const std::string& path, LabelDictionary* dict,
                         Graph* g) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return LoadGraph(&in, dict, g);
}

}  // namespace osq
