#include "graph/label_dictionary.h"

#include "common/check.h"

namespace osq {

LabelId LabelDictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

LabelId LabelDictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return kInvalidLabel;
  }
  return it->second;
}

const std::string& LabelDictionary::Name(LabelId id) const {
  OSQ_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace osq
