#include "graph/query_graph.h"

#include "common/check.h"
#include "graph/graph_algorithms.h"

namespace osq {

StringGraphBuilder::StringGraphBuilder(LabelDictionary* dict) : dict_(dict) {
  OSQ_CHECK(dict != nullptr);
}

NodeId StringGraphBuilder::AddNode(std::string_view name,
                                   std::string_view label) {
  auto it = node_ids_.find(std::string(name));
  if (it != node_ids_.end()) {
    return it->second;
  }
  NodeId id = graph_.AddNode(dict_->Intern(label));
  node_ids_.emplace(std::string(name), id);
  return id;
}

bool StringGraphBuilder::AddEdge(std::string_view from, std::string_view to,
                                 std::string_view edge_label) {
  NodeId u = AddNode(from);
  NodeId v = AddNode(to);
  return graph_.AddEdge(u, v, dict_->Intern(edge_label));
}

NodeId StringGraphBuilder::NodeIdOf(std::string_view name) const {
  auto it = node_ids_.find(std::string(name));
  if (it == node_ids_.end()) {
    return kInvalidNode;
  }
  return it->second;
}

Status ValidateQuery(const Graph& query) {
  if (query.empty()) {
    return Status::InvalidArgument("query graph has no nodes");
  }
  if (!IsWeaklyConnected(query)) {
    return Status::InvalidArgument("query graph must be weakly connected");
  }
  return Status::Ok();
}

}  // namespace osq
