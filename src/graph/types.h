// Fundamental identifier types shared by the graph, ontology and index
// layers.  Node ids are dense indexes into a graph's node array; label ids
// are dense indexes into a LabelDictionary shared by a data graph, its
// queries and its ontology graph.

#ifndef OSQ_GRAPH_TYPES_H_
#define OSQ_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace osq {

// Identifies a node of a data graph, query graph or concept graph.
using NodeId = uint32_t;

// Identifies a node label or edge label in a LabelDictionary.  Ontology
// graph nodes *are* labels, so LabelId also identifies ontology nodes.
using LabelId = uint32_t;

// Identifies a block (grouped node) of a concept graph.
using BlockId = uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr LabelId kInvalidLabel = std::numeric_limits<LabelId>::max();
inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

// Edge label used when a graph's edges carry no meaningful type.
inline constexpr LabelId kDefaultEdgeLabel = 0;

}  // namespace osq

#endif  // OSQ_GRAPH_TYPES_H_
