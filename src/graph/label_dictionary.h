// Bidirectional mapping between label strings and dense LabelIds.
//
// A single dictionary instance is shared by a data graph, the ontology
// graph that describes its label universe, and the queries posed against
// it, so that the same string always maps to the same id across all three.

#ifndef OSQ_GRAPH_LABEL_DICTIONARY_H_
#define OSQ_GRAPH_LABEL_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace osq {

class LabelDictionary {
 public:
  LabelDictionary() = default;

  LabelDictionary(const LabelDictionary&) = default;
  LabelDictionary& operator=(const LabelDictionary&) = default;
  LabelDictionary(LabelDictionary&&) = default;
  LabelDictionary& operator=(LabelDictionary&&) = default;

  // Returns the id of `name`, interning it if it is new.
  LabelId Intern(std::string_view name);

  // Returns the id of `name`, or kInvalidLabel if it was never interned.
  LabelId Lookup(std::string_view name) const;

  // True if `name` has been interned.
  bool Contains(std::string_view name) const {
    return Lookup(name) != kInvalidLabel;
  }

  // Returns the string for `id`.  `id` must be a valid interned id.
  const std::string& Name(LabelId id) const;

  size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
};

}  // namespace osq

#endif  // OSQ_GRAPH_LABEL_DICTIONARY_H_
