#include "graph/graph.h"

#include <algorithm>

#include "common/check.h"

namespace osq {

namespace {

// Inserts `entry` into the sorted vector `adj`; returns false if present.
bool SortedInsert(std::vector<AdjEntry>* adj, AdjEntry entry) {
  auto it = std::lower_bound(adj->begin(), adj->end(), entry);
  if (it != adj->end() && *it == entry) {
    return false;
  }
  adj->insert(it, entry);
  return true;
}

// Removes `entry` from the sorted vector `adj`; returns false if absent.
bool SortedErase(std::vector<AdjEntry>* adj, AdjEntry entry) {
  auto it = std::lower_bound(adj->begin(), adj->end(), entry);
  if (it == adj->end() || *it != entry) {
    return false;
  }
  adj->erase(it);
  return true;
}

bool SortedContains(const std::vector<AdjEntry>& adj, AdjEntry entry) {
  return std::binary_search(adj.begin(), adj.end(), entry);
}

}  // namespace

NodeId Graph::AddNode(LabelId label) {
  NodeId id = static_cast<NodeId>(labels_.size());
  labels_.push_back(label);
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

NodeId Graph::AddNodes(size_t count, LabelId label) {
  NodeId first = static_cast<NodeId>(labels_.size());
  labels_.resize(labels_.size() + count, label);
  out_.resize(labels_.size());
  in_.resize(labels_.size());
  return first;
}

LabelId Graph::NodeLabel(NodeId v) const {
  OSQ_DCHECK(IsValidNode(v));
  return labels_[v];
}

void Graph::SetNodeLabel(NodeId v, LabelId label) {
  OSQ_DCHECK(IsValidNode(v));
  labels_[v] = label;
}

bool Graph::AddEdge(NodeId from, NodeId to, LabelId label) {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  if (!SortedInsert(&out_[from], {to, label})) {
    return false;
  }
  bool inserted = SortedInsert(&in_[to], {from, label});
  OSQ_DCHECK(inserted);
  (void)inserted;
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(NodeId from, NodeId to, LabelId label) {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  if (!SortedErase(&out_[from], {to, label})) {
    return false;
  }
  bool erased = SortedErase(&in_[to], {from, label});
  OSQ_DCHECK(erased);
  (void)erased;
  --num_edges_;
  return true;
}

bool Graph::HasEdge(NodeId from, NodeId to, LabelId label) const {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  return SortedContains(out_[from], {to, label});
}

bool Graph::HasEdgeAnyLabel(NodeId from, NodeId to) const {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  const auto& adj = out_[from];
  auto it = std::lower_bound(adj.begin(), adj.end(), AdjEntry{to, 0});
  return it != adj.end() && it->node == to;
}

const std::vector<AdjEntry>& Graph::OutEdges(NodeId v) const {
  OSQ_DCHECK(IsValidNode(v));
  return out_[v];
}

const std::vector<AdjEntry>& Graph::InEdges(NodeId v) const {
  OSQ_DCHECK(IsValidNode(v));
  return in_[v];
}

std::vector<EdgeTriple> Graph::EdgeList() const {
  std::vector<EdgeTriple> edges;
  edges.reserve(num_edges_);
  for (NodeId v = 0; v < labels_.size(); ++v) {
    for (const AdjEntry& e : out_[v]) {
      edges.push_back({v, e.node, e.label});
    }
  }
  return edges;
}

std::vector<LabelId> Graph::EdgeLabelsBetween(NodeId from, NodeId to) const {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  std::vector<LabelId> labels;
  const auto& adj = out_[from];
  auto it = std::lower_bound(adj.begin(), adj.end(), AdjEntry{to, 0});
  for (; it != adj.end() && it->node == to; ++it) {
    labels.push_back(it->label);
  }
  return labels;
}

bool Graph::CheckConsistency() const {
  size_t out_count = 0;
  size_t in_count = 0;
  for (NodeId v = 0; v < labels_.size(); ++v) {
    if (!std::is_sorted(out_[v].begin(), out_[v].end())) return false;
    if (!std::is_sorted(in_[v].begin(), in_[v].end())) return false;
    out_count += out_[v].size();
    in_count += in_[v].size();
    for (const AdjEntry& e : out_[v]) {
      if (!IsValidNode(e.node)) return false;
      if (!SortedContains(in_[e.node], {v, e.label})) return false;
    }
    for (const AdjEntry& e : in_[v]) {
      if (!IsValidNode(e.node)) return false;
      if (!SortedContains(out_[e.node], {v, e.label})) return false;
    }
  }
  return out_count == num_edges_ && in_count == num_edges_;
}

}  // namespace osq
