#include "graph/graph.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace osq {

namespace {

// Inserts `entry` into the sorted vector `adj`; returns false if present.
bool SortedInsert(std::vector<AdjEntry>* adj, AdjEntry entry) {
  auto it = std::lower_bound(adj->begin(), adj->end(), entry);
  if (it != adj->end() && *it == entry) {
    return false;
  }
  adj->insert(it, entry);
  return true;
}

// Removes `entry` from the sorted vector `adj`; returns false if absent.
bool SortedErase(std::vector<AdjEntry>* adj, AdjEntry entry) {
  auto it = std::lower_bound(adj->begin(), adj->end(), entry);
  if (it == adj->end() || *it != entry) {
    return false;
  }
  adj->erase(it);
  return true;
}

bool SpanContains(Graph::AdjSpan adj, AdjEntry entry) {
  return std::binary_search(adj.begin(), adj.end(), entry);
}

}  // namespace

NodeId Graph::AddNode(LabelId label) {
  EnsureLabelsOwned();
  NodeId id = static_cast<NodeId>(num_nodes_);
  labels_.push_back(label);
  out_slot_.push_back(-1);
  in_slot_.push_back(-1);
  ++num_nodes_;
  return id;
}

NodeId Graph::AddNodes(size_t count, LabelId label) {
  EnsureLabelsOwned();
  NodeId first = static_cast<NodeId>(num_nodes_);
  num_nodes_ += count;
  labels_.resize(num_nodes_, label);
  out_slot_.resize(num_nodes_, -1);
  in_slot_.resize(num_nodes_, -1);
  return first;
}

LabelId Graph::NodeLabel(NodeId v) const {
  OSQ_DCHECK(IsValidNode(v));
  return b_labels_ != nullptr ? b_labels_[v] : labels_[v];
}

void Graph::SetNodeLabel(NodeId v, LabelId label) {
  OSQ_DCHECK(IsValidNode(v));
  EnsureLabelsOwned();
  labels_[v] = label;
}

void Graph::EnsureLabelsOwned() {
  if (b_labels_ == nullptr) return;
  labels_.assign(b_labels_, b_labels_ + num_nodes_);
  b_labels_ = nullptr;
}

std::vector<AdjEntry>* Graph::ThawOut(NodeId v) {
  int32_t s = out_slot_[v];
  if (s >= 0) return &dyn_out_[static_cast<size_t>(s)];
  AdjSpan frozen = CsrSpan(v, OutOffsets(), OutEntries());
  out_slot_[v] = static_cast<int32_t>(dyn_out_.size());
  dyn_out_.emplace_back(frozen.begin(), frozen.end());
  ++num_thawed_;
  return &dyn_out_.back();
}

std::vector<AdjEntry>* Graph::ThawIn(NodeId v) {
  int32_t s = in_slot_[v];
  if (s >= 0) return &dyn_in_[static_cast<size_t>(s)];
  AdjSpan frozen = CsrSpan(v, InOffsets(), InEntries());
  in_slot_[v] = static_cast<int32_t>(dyn_in_.size());
  dyn_in_.emplace_back(frozen.begin(), frozen.end());
  ++num_thawed_;
  return &dyn_in_.back();
}

bool Graph::AddEdge(NodeId from, NodeId to, LabelId label) {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  if (!SortedInsert(ThawOut(from), {to, label})) {
    return false;
  }
  bool inserted = SortedInsert(ThawIn(to), {from, label});
  OSQ_DCHECK(inserted);
  (void)inserted;
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(NodeId from, NodeId to, LabelId label) {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  // Probe before thawing: a miss must not leave `from` needlessly thawed.
  if (!SpanContains(OutEdges(from), {to, label})) {
    return false;
  }
  bool erased_out = SortedErase(ThawOut(from), {to, label});
  OSQ_DCHECK(erased_out);
  (void)erased_out;
  bool erased_in = SortedErase(ThawIn(to), {from, label});
  OSQ_DCHECK(erased_in);
  (void)erased_in;
  --num_edges_;
  return true;
}

bool Graph::HasEdge(NodeId from, NodeId to, LabelId label) const {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  return SpanContains(OutEdges(from), {to, label});
}

bool Graph::HasEdgeAnyLabel(NodeId from, NodeId to) const {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  AdjSpan adj = OutEdges(from);
  const AdjEntry* it =
      std::lower_bound(adj.begin(), adj.end(), AdjEntry{to, 0});
  return it != adj.end() && it->node == to;
}

std::vector<EdgeTriple> Graph::EdgeList() const {
  std::vector<EdgeTriple> edges;
  edges.reserve(num_edges_);
  for (const EdgeTriple& e : Edges()) {
    edges.push_back(e);
  }
  return edges;
}

std::vector<LabelId> Graph::EdgeLabelsBetween(NodeId from, NodeId to) const {
  OSQ_DCHECK(IsValidNode(from));
  OSQ_DCHECK(IsValidNode(to));
  std::vector<LabelId> labels;
  for (const AdjEntry& e : EdgeLabelRange(from, to)) {
    labels.push_back(e.label);
  }
  return labels;
}

void Graph::Freeze() {
  if (fully_frozen() && b_out_entries_ == nullptr) return;

  std::vector<EdgeIndex> out_offsets(num_nodes_ + 1, 0);
  std::vector<EdgeIndex> in_offsets(num_nodes_ + 1, 0);
  std::vector<AdjEntry> out_entries;
  std::vector<AdjEntry> in_entries;
  out_entries.reserve(num_edges_);
  in_entries.reserve(num_edges_);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    AdjSpan out = OutEdges(v);
    out_entries.insert(out_entries.end(), out.begin(), out.end());
    out_offsets[v + 1] = out_entries.size();
    AdjSpan in = InEdges(v);
    in_entries.insert(in_entries.end(), in.begin(), in.end());
    in_offsets[v + 1] = in_entries.size();
  }
  OSQ_DCHECK(out_entries.size() == num_edges_);
  OSQ_DCHECK(in_entries.size() == num_edges_);

  EnsureLabelsOwned();
  out_offsets_ = std::move(out_offsets);
  in_offsets_ = std::move(in_offsets);
  out_entries_ = std::move(out_entries);
  in_entries_ = std::move(in_entries);
  b_out_offsets_ = nullptr;
  b_in_offsets_ = nullptr;
  b_out_entries_ = nullptr;
  b_in_entries_ = nullptr;
  anchor_.reset();
  csr_nodes_ = num_nodes_;
  std::fill(out_slot_.begin(), out_slot_.end(), -1);
  std::fill(in_slot_.begin(), in_slot_.end(), -1);
  dyn_out_.clear();
  dyn_in_.clear();
  num_thawed_ = 0;
}

Graph Graph::FromFrozenCsr(size_t num_nodes, size_t num_edges,
                           const LabelId* labels,
                           const EdgeIndex* out_offsets,
                           const AdjEntry* out_entries,
                           const EdgeIndex* in_offsets,
                           const AdjEntry* in_entries,
                           std::shared_ptr<const void> anchor) {
  Graph g;
  g.num_nodes_ = num_nodes;
  g.num_edges_ = num_edges;
  g.csr_nodes_ = num_nodes;
  g.b_labels_ = labels;
  g.b_out_offsets_ = out_offsets;
  g.b_out_entries_ = out_entries;
  g.b_in_offsets_ = in_offsets;
  g.b_in_entries_ = in_entries;
  g.anchor_ = std::move(anchor);
  g.out_slot_.assign(num_nodes, -1);
  g.in_slot_.assign(num_nodes, -1);
  return g;
}

bool Graph::CheckConsistency() const {
  size_t out_count = 0;
  size_t in_count = 0;
  if (csr_nodes_ > num_nodes_) return false;
  const EdgeIndex* oo = OutOffsets();
  const EdgeIndex* io = InOffsets();
  if (csr_nodes_ > 0 && (oo[0] != 0 || io[0] != 0)) return false;
  for (NodeId v = 0; v < csr_nodes_; ++v) {
    if (oo[v] > oo[v + 1] || io[v] > io[v + 1]) return false;
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    AdjSpan out = OutEdges(v);
    AdjSpan in = InEdges(v);
    if (!std::is_sorted(out.begin(), out.end())) return false;
    if (!std::is_sorted(in.begin(), in.end())) return false;
    if (std::adjacent_find(out.begin(), out.end()) != out.end()) return false;
    if (std::adjacent_find(in.begin(), in.end()) != in.end()) return false;
    out_count += out.size();
    in_count += in.size();
    for (const AdjEntry& e : out) {
      if (!IsValidNode(e.node)) return false;
      if (!SpanContains(InEdges(e.node), {v, e.label})) return false;
    }
    for (const AdjEntry& e : in) {
      if (!IsValidNode(e.node)) return false;
      if (!SpanContains(OutEdges(e.node), {v, e.label})) return false;
    }
  }
  return out_count == num_edges_ && in_count == num_edges_;
}

Graph GraphBuilder::Build() && {
  Graph g;
  g.num_nodes_ = labels_.size();
  g.labels_ = std::move(labels_);
  g.out_slot_.assign(g.num_nodes_, -1);
  g.in_slot_.assign(g.num_nodes_, -1);

  for (const EdgeTriple& e : edges_) {
    OSQ_CHECK(e.from < g.num_nodes_ && e.to < g.num_nodes_);
  }

  // Out direction: sort by (from, to, label), dedupe, emit CSR.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  g.num_edges_ = edges_.size();

  g.out_offsets_.assign(g.num_nodes_ + 1, 0);
  g.out_entries_.reserve(edges_.size());
  for (const EdgeTriple& e : edges_) {
    ++g.out_offsets_[e.from + 1];
    g.out_entries_.push_back({e.to, e.label});
  }
  for (NodeId v = 0; v < g.num_nodes_; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
  }

  // In direction: counting sort by target preserves the (from, label)
  // order within each target bucket because `edges_` is already sorted.
  g.in_offsets_.assign(g.num_nodes_ + 1, 0);
  for (const EdgeTriple& e : edges_) {
    ++g.in_offsets_[e.to + 1];
  }
  for (NodeId v = 0; v < g.num_nodes_; ++v) {
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.in_entries_.resize(edges_.size());
  std::vector<EdgeIndex> cursor(g.in_offsets_.begin(),
                                g.in_offsets_.end() - 1);
  for (const EdgeTriple& e : edges_) {
    g.in_entries_[cursor[e.to]++] = {e.from, e.label};
  }

  g.csr_nodes_ = g.num_nodes_;
  edges_.clear();
  return g;
}

}  // namespace osq
