#include "graph/graph_algorithms.h"

#include <deque>

#include "common/check.h"

namespace osq {

namespace {

// Shared BFS; when `undirected`, both out- and in-edges are followed.
std::vector<uint32_t> Bfs(const Graph& g, NodeId source, bool undirected) {
  OSQ_CHECK(g.IsValidNode(source));
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId v = queue.front();
    queue.pop_front();
    uint32_t d = dist[v];
    auto visit = [&](NodeId w) {
      if (dist[w] == kUnreachable) {
        dist[w] = d + 1;
        queue.push_back(w);
      }
    };
    for (const AdjEntry& e : g.OutEdges(v)) visit(e.node);
    if (undirected) {
      for (const AdjEntry& e : g.InEdges(v)) visit(e.node);
    }
  }
  return dist;
}

}  // namespace

std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source) {
  return Bfs(g, source, /*undirected=*/false);
}

std::vector<uint32_t> UndirectedBfsDistances(const Graph& g, NodeId source) {
  return Bfs(g, source, /*undirected=*/true);
}

bool IsWeaklyConnected(const Graph& g) {
  if (g.empty()) return false;
  std::vector<uint32_t> dist = UndirectedBfsDistances(g, 0);
  for (uint32_t d : dist) {
    if (d == kUnreachable) return false;
  }
  return true;
}

std::vector<uint32_t> WeakComponents(const Graph& g, size_t* num_components) {
  std::vector<uint32_t> comp(g.num_nodes(), kUnreachable);
  uint32_t next = 0;
  std::deque<NodeId> queue;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (comp[s] != kUnreachable) continue;
    comp[s] = next;
    queue.push_back(s);
    while (!queue.empty()) {
      NodeId v = queue.front();
      queue.pop_front();
      auto visit = [&](NodeId w) {
        if (comp[w] == kUnreachable) {
          comp[w] = next;
          queue.push_back(w);
        }
      };
      for (const AdjEntry& e : g.OutEdges(v)) visit(e.node);
      for (const AdjEntry& e : g.InEdges(v)) visit(e.node);
    }
    ++next;
  }
  if (num_components != nullptr) {
    *num_components = next;
  }
  return comp;
}

uint64_t GraphContentHash(const Graph& g) {
  // FNV-1a over the canonical enumeration of the graph's content.  The
  // traversal order is fully determined by the graph itself (ids dense,
  // adjacency sorted), so equal graphs always hash equal.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    mix(g.NodeLabel(v));
  }
  mix(g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.OutEdges(v)) {
      mix(v);
      mix(e.node);
      mix(e.label);
    }
  }
  return h;
}

}  // namespace osq
