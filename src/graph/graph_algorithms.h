// Basic traversal algorithms over Graph used across the library.

#ifndef OSQ_GRAPH_GRAPH_ALGORITHMS_H_
#define OSQ_GRAPH_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace osq {

inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

// BFS hop distances from `source` following out-edges only.
// result[v] == kUnreachable when v cannot be reached.
std::vector<uint32_t> BfsDistances(const Graph& g, NodeId source);

// BFS hop distances ignoring edge direction.
std::vector<uint32_t> UndirectedBfsDistances(const Graph& g, NodeId source);

// True if the graph is weakly connected (empty graphs are not).
bool IsWeaklyConnected(const Graph& g);

// Weakly connected component id per node, ids dense starting at 0.
std::vector<uint32_t> WeakComponents(const Graph& g, size_t* num_components);

// Order-independent-of-nothing content fingerprint: hashes node count,
// node labels in id order, edge count and every (from, to, label) triple
// in adjacency order.  Two graphs hash equal iff they are identical as
// labeled id-graphs (modulo 64-bit collisions).  Used by index_io to pin a
// persisted index to the graph it was built over.
uint64_t GraphContentHash(const Graph& g);

}  // namespace osq

#endif  // OSQ_GRAPH_GRAPH_ALGORITHMS_H_
