// Directed, node- and edge-labeled graph.
//
// This is the shared substrate for data graphs and query graphs (the paper's
// G = (V, E, L) and Q = (V_q, E_q, L_q)).  Nodes are dense ids assigned by
// AddNode; labels are LabelIds from an external LabelDictionary.  Parallel
// edges with distinct edge labels are allowed (a pair of entities may be
// related in more than one way); an exact duplicate (same endpoints, same
// label) is rejected.
//
// The graph is mutable — edge insertions and deletions drive the
// incremental index maintenance of paper §VI — and keeps both out- and
// in-adjacency sorted so membership tests are logarithmic.

#ifndef OSQ_GRAPH_GRAPH_H_
#define OSQ_GRAPH_GRAPH_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "graph/types.h"

namespace osq {

// One directed adjacency entry: an edge to (or from) `node` with `label`.
struct AdjEntry {
  NodeId node;
  LabelId label;

  friend bool operator==(const AdjEntry&, const AdjEntry&) = default;
  friend auto operator<=>(const AdjEntry& a, const AdjEntry& b) {
    if (auto c = a.node <=> b.node; c != 0) return c;
    return a.label <=> b.label;
  }
};

// A fully-specified directed edge, used for update streams and edge lists.
struct EdgeTriple {
  NodeId from;
  NodeId to;
  LabelId label;

  friend bool operator==(const EdgeTriple&, const EdgeTriple&) = default;
  friend auto operator<=>(const EdgeTriple& a, const EdgeTriple& b) {
    if (auto c = a.from <=> b.from; c != 0) return c;
    if (auto c = a.to <=> b.to; c != 0) return c;
    return a.label <=> b.label;
  }
};

class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // Adds a node with the given label; returns its id (dense, increasing).
  NodeId AddNode(LabelId label);

  // Adds `count` nodes all labeled `label`; returns the first new id.
  NodeId AddNodes(size_t count, LabelId label);

  size_t num_nodes() const { return labels_.size(); }
  size_t num_edges() const { return num_edges_; }
  bool empty() const { return labels_.empty(); }

  bool IsValidNode(NodeId v) const { return v < labels_.size(); }

  LabelId NodeLabel(NodeId v) const;
  void SetNodeLabel(NodeId v, LabelId label);

  // Inserts edge (from, to, label).  Returns false (and leaves the graph
  // unchanged) if the identical edge already exists.
  bool AddEdge(NodeId from, NodeId to, LabelId label = kDefaultEdgeLabel);

  // Removes edge (from, to, label).  Returns false if it does not exist.
  bool RemoveEdge(NodeId from, NodeId to, LabelId label = kDefaultEdgeLabel);

  bool HasEdge(NodeId from, NodeId to, LabelId label) const;

  // True if any edge from `from` to `to` exists, regardless of label.
  bool HasEdgeAnyLabel(NodeId from, NodeId to) const;

  // Out-neighbors of v as (node, edge label) pairs sorted by (node, label).
  const std::vector<AdjEntry>& OutEdges(NodeId v) const;
  // In-neighbors of v: entry.node is the source of an edge into v.
  const std::vector<AdjEntry>& InEdges(NodeId v) const;

  size_t OutDegree(NodeId v) const { return OutEdges(v).size(); }
  size_t InDegree(NodeId v) const { return InEdges(v).size(); }
  size_t Degree(NodeId v) const { return OutDegree(v) + InDegree(v); }

  // All edges in (from, to, label) order.  O(|E|).
  std::vector<EdgeTriple> EdgeList() const;

  // Labels of all edges from `from` to `to`, ascending.  O(log + #labels).
  std::vector<LabelId> EdgeLabelsBetween(NodeId from, NodeId to) const;

  // Contiguous run of adjacency entries for the edges from `from` to `to`
  // (their .label fields are the ascending edge labels).  An allocation-free
  // view into the sorted out-adjacency; invalidated by graph mutation.
  // This is the verification hot path — KMatch calls it for every
  // (candidate, assigned-node) pair.
  struct EdgeLabelView {
    const AdjEntry* first;
    const AdjEntry* last;

    size_t size() const { return static_cast<size_t>(last - first); }
    bool empty() const { return first == last; }
    const AdjEntry* begin() const { return first; }
    const AdjEntry* end() const { return last; }
  };
  EdgeLabelView EdgeLabelRange(NodeId from, NodeId to) const {
    const std::vector<AdjEntry>& adj = out_[from];
    const AdjEntry* lo =
        std::lower_bound(adj.data(), adj.data() + adj.size(),
                         AdjEntry{to, 0});
    const AdjEntry* hi = lo;
    while (hi != adj.data() + adj.size() && hi->node == to) ++hi;
    return {lo, hi};
  }

  // Internal consistency check (out/in mirrors agree, sorted, counts
  // match).  Used by tests; O(|V| + |E| log |E|).
  bool CheckConsistency() const;

 private:
  std::vector<LabelId> labels_;            // node id -> node label
  std::vector<std::vector<AdjEntry>> out_;  // sorted adjacency
  std::vector<std::vector<AdjEntry>> in_;   // sorted reverse adjacency
  size_t num_edges_ = 0;
};

}  // namespace osq

#endif  // OSQ_GRAPH_GRAPH_H_
