// Directed, node- and edge-labeled graph on a compact CSR substrate.
//
// This is the shared substrate for data graphs and query graphs (the paper's
// G = (V, E, L) and Q = (V_q, E_q, L_q)).  Nodes are dense ids assigned by
// AddNode; labels are LabelIds from an external LabelDictionary.  Parallel
// edges with distinct edge labels are allowed (a pair of entities may be
// related in more than one way); an exact duplicate (same endpoints, same
// label) is rejected.
//
// Storage model (frozen / thawed split):
//   * The *frozen* representation is CSR: one flat, sorted AdjEntry array
//     per direction plus a (num_nodes + 1)-sized offset array.  Query-time
//     code only ever reads these immutable flat arrays (cache-dense, and
//     zero-copy mappable from a binary snapshot — see core/snapshot.h).
//   * Mutations (the incIdx± maintenance path, paper §VI) go through a
//     per-node *thaw* overlay: the first edit of a node's adjacency copies
//     its CSR range into a private sorted vector and all further reads and
//     edits of that node use the overlay.  Untouched nodes keep reading the
//     flat arrays.
//   * Freeze() re-compacts the overlay into fresh CSR arrays; builders call
//     it once after bulk construction (QueryEngine freezes the data graph
//     before indexing it).
// Both representations keep adjacency sorted by (node, label), so
// membership tests stay logarithmic and EdgeLabelRange stays a contiguous
// view in either mode.
//
// A Graph may borrow its frozen arrays from an external backing store (a
// mapped snapshot); `anchor` keeps the backing alive and the first mutation
// of borrowed state copies it into owned storage (labels) or the overlay
// (adjacency).  Copying a Graph is always safe: owned arrays deep-copy,
// borrowed arrays share the anchored backing.

#ifndef OSQ_GRAPH_GRAPH_H_
#define OSQ_GRAPH_GRAPH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/types.h"

namespace osq {

// One directed adjacency entry: an edge to (or from) `node` with `label`.
struct AdjEntry {
  NodeId node;
  LabelId label;

  friend bool operator==(const AdjEntry&, const AdjEntry&) = default;
  friend auto operator<=>(const AdjEntry& a, const AdjEntry& b) {
    if (auto c = a.node <=> b.node; c != 0) return c;
    return a.label <=> b.label;
  }
};
static_assert(sizeof(AdjEntry) == 8, "AdjEntry must stay a packed 8-byte "
                                     "POD: snapshots map it directly");

// Offset type of the CSR arrays (indexes into the entry arrays).
using EdgeIndex = uint64_t;

// A fully-specified directed edge, used for update streams and edge lists.
struct EdgeTriple {
  NodeId from;
  NodeId to;
  LabelId label;

  friend bool operator==(const EdgeTriple&, const EdgeTriple&) = default;
  friend auto operator<=>(const EdgeTriple& a, const EdgeTriple& b) {
    if (auto c = a.from <=> b.from; c != 0) return c;
    if (auto c = a.to <=> b.to; c != 0) return c;
    return a.label <=> b.label;
  }
};

class Graph {
 public:
  // Contiguous, immutable view of one node's adjacency (sorted by
  // (node, label)).  Invalidated by any mutation of that node's edges and
  // by Freeze().
  struct AdjSpan {
    const AdjEntry* first = nullptr;
    const AdjEntry* last = nullptr;

    size_t size() const { return static_cast<size_t>(last - first); }
    bool empty() const { return first == last; }
    const AdjEntry* begin() const { return first; }
    const AdjEntry* end() const { return last; }
    const AdjEntry* data() const { return first; }
    const AdjEntry& operator[](size_t i) const { return first[i]; }
  };

  // EdgeLabelView is the historical name of the verification hot-path view
  // (labels of all edges from one node to another); structurally it is the
  // same span type.
  using EdgeLabelView = AdjSpan;

  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  // Adds a node with the given label; returns its id (dense, increasing).
  NodeId AddNode(LabelId label);

  // Adds `count` nodes all labeled `label`; returns the first new id.
  NodeId AddNodes(size_t count, LabelId label);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return num_edges_; }
  bool empty() const { return num_nodes_ == 0; }

  bool IsValidNode(NodeId v) const { return v < num_nodes_; }

  LabelId NodeLabel(NodeId v) const;
  void SetNodeLabel(NodeId v, LabelId label);

  // Inserts edge (from, to, label).  Returns false (and leaves the graph
  // unchanged) if the identical edge already exists.
  bool AddEdge(NodeId from, NodeId to, LabelId label = kDefaultEdgeLabel);

  // Removes edge (from, to, label).  Returns false if it does not exist.
  bool RemoveEdge(NodeId from, NodeId to, LabelId label = kDefaultEdgeLabel);

  bool HasEdge(NodeId from, NodeId to, LabelId label) const;

  // True if any edge from `from` to `to` exists, regardless of label.
  bool HasEdgeAnyLabel(NodeId from, NodeId to) const;

  // Out-neighbors of v as (node, edge label) pairs sorted by (node, label).
  AdjSpan OutEdges(NodeId v) const {
    int32_t s = out_slot_[v];
    if (s >= 0) {
      const std::vector<AdjEntry>& d = dyn_out_[static_cast<size_t>(s)];
      return {d.data(), d.data() + d.size()};
    }
    return CsrSpan(v, OutOffsets(), OutEntries());
  }
  // In-neighbors of v: entry.node is the source of an edge into v.
  AdjSpan InEdges(NodeId v) const {
    int32_t s = in_slot_[v];
    if (s >= 0) {
      const std::vector<AdjEntry>& d = dyn_in_[static_cast<size_t>(s)];
      return {d.data(), d.data() + d.size()};
    }
    return CsrSpan(v, InOffsets(), InEntries());
  }

  size_t OutDegree(NodeId v) const { return OutEdges(v).size(); }
  size_t InDegree(NodeId v) const { return InEdges(v).size(); }
  size_t Degree(NodeId v) const { return OutDegree(v) + InDegree(v); }

  // Lightweight iterable view of all edges in (from, to, label) order.
  // No allocation; invalidated by any mutation.  Prefer this over
  // EdgeList() whenever a single pass suffices.
  class EdgeRange {
   public:
    class iterator {
     public:
      iterator(const Graph* g, NodeId v) : g_(g), v_(v) { Settle(); }

      EdgeTriple operator*() const {
        const AdjEntry& e = span_[i_];
        return {v_, e.node, e.label};
      }
      iterator& operator++() {
        ++i_;
        if (i_ >= span_.size()) {
          ++v_;
          i_ = 0;
          Settle();
        }
        return *this;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.v_ == b.v_ && a.i_ == b.i_;
      }

     private:
      // Advances v_ past nodes with no out-edges; caches the span.
      void Settle() {
        while (v_ < g_->num_nodes()) {
          span_ = g_->OutEdges(v_);
          if (!span_.empty()) return;
          ++v_;
        }
        span_ = AdjSpan{};
      }

      const Graph* g_;
      NodeId v_;
      size_t i_ = 0;
      AdjSpan span_{};
    };

    explicit EdgeRange(const Graph* g) : g_(g) {}
    iterator begin() const { return iterator(g_, 0); }
    iterator end() const {
      return iterator(g_, static_cast<NodeId>(g_->num_nodes()));
    }
    size_t size() const { return g_->num_edges(); }
    bool empty() const { return g_->num_edges() == 0; }

   private:
    const Graph* g_;
  };
  EdgeRange Edges() const { return EdgeRange(this); }

  // All edges materialized in (from, to, label) order.  O(|E|) and
  // allocates; kept for callers that genuinely need a mutable vector
  // (shuffling update streams, structural comparison in tests).
  std::vector<EdgeTriple> EdgeList() const;

  // Labels of all edges from `from` to `to`, ascending.  O(log + #labels).
  std::vector<LabelId> EdgeLabelsBetween(NodeId from, NodeId to) const;

  // Contiguous run of adjacency entries for the edges from `from` to `to`
  // (their .label fields are the ascending edge labels).  An allocation-free
  // view into the sorted out-adjacency; invalidated by graph mutation.
  // This is the verification hot path — KMatch calls it for every
  // (candidate, assigned-node) pair.
  EdgeLabelView EdgeLabelRange(NodeId from, NodeId to) const {
    AdjSpan adj = OutEdges(from);
    const AdjEntry* lo =
        std::lower_bound(adj.begin(), adj.end(), AdjEntry{to, 0});
    const AdjEntry* hi = lo;
    while (hi != adj.end() && hi->node == to) ++hi;
    return {lo, hi};
  }

  // --- Freeze / thaw ------------------------------------------------------

  // Compacts every thawed node back into fresh, owned CSR arrays.  After
  // Freeze() all reads hit the flat arrays; the next mutation re-thaws the
  // touched nodes.  O(|V| + |E|); no-op when nothing is thawed and the CSR
  // already covers every node.
  void Freeze();

  // True when every node reads from the frozen CSR arrays (no overlay).
  bool fully_frozen() const {
    return num_thawed_ == 0 && csr_nodes_ == num_nodes_;
  }
  // Number of nodes whose adjacency currently lives in the thaw overlay
  // (out- and in-thaws counted separately); diagnostics / tests.
  size_t num_thawed() const { return num_thawed_; }

  // Adopts a frozen CSR image without copying the arrays (the zero-copy
  // snapshot load path, core/snapshot.h).  The arrays must outlive every
  // copy of the returned graph — `anchor` is held for exactly that — and
  // must already satisfy the Graph invariants: offsets monotone with
  // offsets[n] == num_edges, adjacency sorted by (node, label) with no
  // exact duplicates, out/in mirrored.  The snapshot layer bounds-checks
  // the structure before trusting it; semantic mirroring is covered by the
  // snapshot's content hash.
  static Graph FromFrozenCsr(size_t num_nodes, size_t num_edges,
                             const LabelId* labels,
                             const EdgeIndex* out_offsets,
                             const AdjEntry* out_entries,
                             const EdgeIndex* in_offsets,
                             const AdjEntry* in_entries,
                             std::shared_ptr<const void> anchor);

  // True when the node-label array and CSR arrays are borrowed from an
  // external anchor (snapshot-backed) rather than owned.
  bool is_snapshot_backed() const { return b_out_entries_ != nullptr; }

  // Internal consistency check (out/in mirrors agree, sorted, counts
  // match).  Used by tests; O(|V| + |E| log |E|).
  bool CheckConsistency() const;

 private:
  friend class GraphBuilder;

  const EdgeIndex* OutOffsets() const {
    return b_out_offsets_ != nullptr ? b_out_offsets_ : out_offsets_.data();
  }
  const EdgeIndex* InOffsets() const {
    return b_in_offsets_ != nullptr ? b_in_offsets_ : in_offsets_.data();
  }
  const AdjEntry* OutEntries() const {
    return b_out_entries_ != nullptr ? b_out_entries_ : out_entries_.data();
  }
  const AdjEntry* InEntries() const {
    return b_in_entries_ != nullptr ? b_in_entries_ : in_entries_.data();
  }

  AdjSpan CsrSpan(NodeId v, const EdgeIndex* offsets,
                  const AdjEntry* entries) const {
    if (v >= csr_nodes_) return {};  // node added after the last Freeze
    return {entries + offsets[v], entries + offsets[v + 1]};
  }

  // Moves node v's adjacency (one direction) into the overlay and returns
  // the mutable vector.  Idempotent.
  std::vector<AdjEntry>* ThawOut(NodeId v);
  std::vector<AdjEntry>* ThawIn(NodeId v);

  // Copies borrowed node labels into owned storage (first label mutation
  // of a snapshot-backed graph).
  void EnsureLabelsOwned();

  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;

  // Node labels: owned vector, or borrowed from the anchor.
  std::vector<LabelId> labels_;
  const LabelId* b_labels_ = nullptr;

  // Frozen CSR over nodes [0, csr_nodes_): owned vectors, or borrowed
  // pointers into the anchored backing (never both per array).
  size_t csr_nodes_ = 0;
  std::vector<EdgeIndex> out_offsets_;
  std::vector<EdgeIndex> in_offsets_;
  std::vector<AdjEntry> out_entries_;
  std::vector<AdjEntry> in_entries_;
  const EdgeIndex* b_out_offsets_ = nullptr;
  const EdgeIndex* b_in_offsets_ = nullptr;
  const AdjEntry* b_out_entries_ = nullptr;
  const AdjEntry* b_in_entries_ = nullptr;
  std::shared_ptr<const void> anchor_;  // keeps borrowed arrays alive

  // Thaw overlay: slot >= 0 means the adjacency lives in dyn_*[slot].
  // Nodes >= csr_nodes_ with slot -1 have no edges in that direction yet.
  std::vector<int32_t> out_slot_;
  std::vector<int32_t> in_slot_;
  std::vector<std::vector<AdjEntry>> dyn_out_;
  std::vector<std::vector<AdjEntry>> dyn_in_;
  size_t num_thawed_ = 0;  // out- and in-thaws counted separately
};

// Bulk constructor: collect nodes and edges in any order, then Build()
// sorts once, drops exact duplicates and emits a fully frozen CSR graph.
// O(V + E log E) total — the path loaders and the million-node scenario
// generators use instead of per-edge sorted insertion.
class GraphBuilder {
 public:
  NodeId AddNode(LabelId label) {
    NodeId id = static_cast<NodeId>(labels_.size());
    labels_.push_back(label);
    return id;
  }
  NodeId AddNodes(size_t count, LabelId label) {
    NodeId first = static_cast<NodeId>(labels_.size());
    labels_.resize(labels_.size() + count, label);
    return first;
  }
  void ReserveEdges(size_t n) { edges_.reserve(n); }
  // Endpoints must already be added; exact duplicates are dropped by
  // Build().
  void AddEdge(NodeId from, NodeId to, LabelId label = kDefaultEdgeLabel) {
    edges_.push_back({from, to, label});
  }

  size_t num_nodes() const { return labels_.size(); }
  size_t num_pending_edges() const { return edges_.size(); }

  // Consumes the builder.
  Graph Build() &&;

 private:
  std::vector<LabelId> labels_;
  std::vector<EdgeTriple> edges_;
};

}  // namespace osq

#endif  // OSQ_GRAPH_GRAPH_H_
