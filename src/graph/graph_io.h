// Plain-text persistence for graphs and ontology graphs.
//
// Format (one record per line, '#' starts a comment):
//   v <id> <node-label>
//   e <src-id> <dst-id> <edge-label>
// Node ids must be dense and appear in increasing order.  Labels are
// whitespace-free tokens interned into the caller's LabelDictionary, so a
// data graph and its ontology graph loaded with the same dictionary share
// label ids (as the engine requires).

#ifndef OSQ_GRAPH_GRAPH_IO_H_
#define OSQ_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/label_dictionary.h"

namespace osq {

// Writes `g` in the text format.  Fails if any label contains whitespace.
[[nodiscard]] Status SaveGraph(const Graph& g, const LabelDictionary& dict,
                               std::ostream* out);
[[nodiscard]] Status SaveGraphToFile(const Graph& g,
                                     const LabelDictionary& dict,
                                     const std::string& path);

// Parses a graph in the text format, interning labels into `dict` and
// appending nothing on failure (`g` is only assigned on success).
[[nodiscard]] Status LoadGraph(std::istream* in, LabelDictionary* dict,
                               Graph* g);
[[nodiscard]] Status LoadGraphFromFile(const std::string& path,
                                       LabelDictionary* dict, Graph* g);

}  // namespace osq

#endif  // OSQ_GRAPH_GRAPH_IO_H_
