// Concept-label selection (paper §IV-A, "Concept labels selection").
//
// OntoIdx needs N distinct concept label sets, each with the *cover*
// property: for every ontology label l there is a concept label c with
// sim(l, c) >= beta.  The paper's strategy: (1) partition the ontology
// graph into clusters (it cites generic graph clustering / ontology
// partitioning), then (2) within each cluster greedily pick a label and
// discard every label within similarity beta of it, repeating until the
// cluster is exhausted.
//
// We implement (1) as multi-seed BFS (Voronoi) partitioning and (2) as a
// greedy dominating set at radius Radius(beta).  Distinct seeds/visit
// orders produce the N distinct sets.

#ifndef OSQ_ONTOLOGY_ONTOLOGY_PARTITION_H_
#define OSQ_ONTOLOGY_ONTOLOGY_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/types.h"
#include "ontology/ontology_graph.h"
#include "ontology/similarity.h"

namespace osq {

// Assigns every ontology label to one of (at most) `num_clusters` clusters
// by BFS from randomly chosen seeds; every connected component receives at
// least one seed, so all labels are assigned.  Returns cluster ids indexed
// by LabelId (kInvalidCluster for non-ontology slots).
inline constexpr uint32_t kInvalidCluster =
    std::numeric_limits<uint32_t>::max();
std::vector<uint32_t> PartitionOntology(const OntologyGraph& o,
                                        size_t num_clusters, Rng* rng);

// Produces one concept label set with the cover property for `beta`
// (see file comment).  `num_clusters` controls diversity; the Rng makes
// repeated calls return different (but all valid) sets.
std::vector<LabelId> SelectConceptLabels(const OntologyGraph& o,
                                         const SimilarityFunction& sim,
                                         double beta, size_t num_clusters,
                                         Rng* rng);

// Verifies the cover property; used by tests and OSQ_DCHECK paths.
bool CoversAllLabels(const OntologyGraph& o, const SimilarityFunction& sim,
                     double beta, const std::vector<LabelId>& concepts);

}  // namespace osq

#endif  // OSQ_ONTOLOGY_ONTOLOGY_PARTITION_H_
