// Ontology graph (paper §II-A): an undirected graph whose nodes are labels
// (entities/concepts) and whose edges are semantic relations ("is a",
// "refers to", ...).  Node identity is the LabelId from the shared
// LabelDictionary, so ontology nodes and data-graph node labels coincide.
//
// The engine only ever needs *bounded* distance queries: the similarity
// function sim(l1, l2) = base^dist(l1, l2) is below any useful threshold
// once dist exceeds a small radius, so all lookups take a distance cap.

#ifndef OSQ_ONTOLOGY_ONTOLOGY_GRAPH_H_
#define OSQ_ONTOLOGY_ONTOLOGY_GRAPH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "graph/label_dictionary.h"
#include "graph/types.h"

namespace osq {

inline constexpr uint32_t kInfiniteDistance =
    std::numeric_limits<uint32_t>::max();

// A label together with its hop distance from a BFS source.
struct LabelDistance {
  LabelId label;
  uint32_t distance;

  friend bool operator==(const LabelDistance&, const LabelDistance&) = default;
};

class OntologyGraph {
 public:
  OntologyGraph() = default;

  OntologyGraph(const OntologyGraph&) = default;
  OntologyGraph& operator=(const OntologyGraph&) = default;
  OntologyGraph(OntologyGraph&&) = default;
  OntologyGraph& operator=(OntologyGraph&&) = default;

  // Registers `label` as an ontology node (idempotent).
  void AddLabel(LabelId label);

  // Adds the undirected relation {a, b}, registering missing endpoints.
  // Self-loops are ignored.  Returns false on duplicate or self-loop.
  bool AddRelation(LabelId a, LabelId b);

  bool ContainsLabel(LabelId label) const {
    return label < present_.size() && present_[label];
  }

  // Neighbors of `label` (sorted).  `label` must be an ontology node.
  const std::vector<LabelId>& Neighbors(LabelId label) const;

  size_t num_labels() const { return num_labels_; }
  size_t num_relations() const { return num_relations_; }

  // All registered labels in increasing id order.  O(universe size).
  std::vector<LabelId> Labels() const;

  // Hop distance from `a` to `b`, or kInfiniteDistance if it exceeds
  // `max_distance` (or either endpoint is not an ontology node).
  //
  // Thread-safety note: Distance and BallAround reuse a thread_local
  // epoch-stamped scratch buffer to avoid per-call allocation (they are
  // the engine's hottest primitives).  Because the scratch is per-thread,
  // concurrent const calls — even on the SAME instance — are safe as long
  // as no thread mutates the ontology at the same time.  QueryService
  // relies on this for shared-lock readers.
  uint32_t Distance(LabelId a, LabelId b, uint32_t max_distance) const;

  // All labels within `max_distance` hops of `source` (including source at
  // distance 0), in BFS order.  Empty if source is not an ontology node.
  std::vector<LabelDistance> BallAround(LabelId source,
                                        uint32_t max_distance) const;

 private:
  // Adjacency indexed directly by LabelId; slots for non-ontology labels
  // (e.g. edge labels in the shared dictionary) stay empty.
  std::vector<std::vector<LabelId>> adj_;
  std::vector<bool> present_;
  size_t num_labels_ = 0;
  size_t num_relations_ = 0;
};

// Text persistence in the graph_io format ("v <id> <label>" declares an
// ontology node, "e <a> <b> <ignored>" a relation; direction is dropped).
[[nodiscard]] Status SaveOntology(const OntologyGraph& o,
                                  const LabelDictionary& dict,
                                  const std::string& path);
[[nodiscard]] Status LoadOntologyFromFile(const std::string& path,
                                          LabelDictionary* dict,
                                          OntologyGraph* o);

}  // namespace osq

#endif  // OSQ_ONTOLOGY_ONTOLOGY_GRAPH_H_
