#include "ontology/similarity.h"

#include <cmath>

#include "common/check.h"

namespace osq {

namespace {

// Tolerance absorbing floating-point round-off when comparing sim(d) with a
// threshold, so e.g. Radius(0.81) with base 0.9 is exactly 2.
constexpr double kEps = 1e-9;

}  // namespace

SimilarityFunction::SimilarityFunction(double base)
    : SimilarityFunction(SimilarityModel::kExponential, base, 0) {}

SimilarityFunction SimilarityFunction::Linear(uint32_t cutoff) {
  OSQ_CHECK(cutoff >= 1);
  return SimilarityFunction(SimilarityModel::kLinear, 0.0, cutoff);
}

SimilarityFunction SimilarityFunction::Reciprocal() {
  return SimilarityFunction(SimilarityModel::kReciprocal, 0.0, 0);
}

SimilarityFunction::SimilarityFunction(SimilarityModel model, double base,
                                       uint32_t cutoff)
    : model_(model), base_(base), cutoff_(cutoff) {
  if (model_ == SimilarityModel::kExponential) {
    OSQ_CHECK(base > 0.0 && base < 1.0);
    pow_.resize(kMaxRadius + 1);
    double p = 1.0;
    for (uint32_t d = 0; d <= kMaxRadius; ++d) {
      pow_[d] = p;
      p *= base_;
    }
  }
}

double SimilarityFunction::SimAtDistance(uint32_t distance) const {
  if (distance == kInfiniteDistance) return 0.0;
  switch (model_) {
    case SimilarityModel::kExponential:
      if (distance <= kMaxRadius) return pow_[distance];
      return std::pow(base_, static_cast<double>(distance));
    case SimilarityModel::kLinear: {
      double span = static_cast<double>(cutoff_) + 1.0;
      double s = 1.0 - static_cast<double>(distance) / span;
      return s > 0.0 ? s : 0.0;
    }
    case SimilarityModel::kReciprocal:
      return 1.0 / (1.0 + static_cast<double>(distance));
  }
  return 0.0;
}

uint32_t SimilarityFunction::Radius(double theta) const {
  if (theta > 1.0) return 0;
  switch (model_) {
    case SimilarityModel::kExponential: {
      if (theta <= 0.0) return kMaxRadius;
      // base^d >= theta  <=>  d <= log(theta) / log(base)  (logs < 0).
      double bound = std::log(theta) / std::log(base_);
      uint32_t radius = static_cast<uint32_t>(std::floor(bound + kEps));
      return radius > kMaxRadius ? kMaxRadius : radius;
    }
    case SimilarityModel::kLinear: {
      if (theta <= 0.0) return cutoff_;
      // 1 - d/(c+1) >= theta  <=>  d <= (1 - theta)(c + 1).
      double bound =
          (1.0 - theta) * (static_cast<double>(cutoff_) + 1.0);
      uint32_t radius = static_cast<uint32_t>(std::floor(bound + kEps));
      return radius > cutoff_ ? cutoff_ : radius;
    }
    case SimilarityModel::kReciprocal: {
      if (theta <= 0.0) return kMaxRadius;
      // 1/(1+d) >= theta  <=>  d <= 1/theta - 1.
      double bound = 1.0 / theta - 1.0;
      if (bound < 0.0) return 0;
      uint32_t radius = static_cast<uint32_t>(std::floor(bound + kEps));
      return radius > kMaxRadius ? kMaxRadius : radius;
    }
  }
  return 0;
}

double SimilarityFunction::Similarity(const OntologyGraph& o, LabelId a,
                                      LabelId b, double theta_floor) const {
  if (a == b) return 1.0;
  uint32_t radius = Radius(theta_floor);
  uint32_t d = o.Distance(a, b, radius);
  if (d == kInfiniteDistance) return 0.0;
  return SimAtDistance(d);
}

}  // namespace osq
