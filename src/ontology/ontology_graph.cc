#include "ontology/ontology_graph.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "graph/graph.h"
#include "graph/graph_io.h"

namespace osq {

namespace {

const std::vector<LabelId>& EmptyNeighbors() {
  static const std::vector<LabelId>* const kEmpty = new std::vector<LabelId>();
  return *kEmpty;
}

// Per-thread epoch-stamped visited set shared by all OntologyGraph
// instances.  Bumping the epoch invalidates every stale mark — including
// marks left by a *different* instance — so buffers never need clearing
// (except on the rare epoch wrap) and concurrent const BFS calls from
// different threads cannot interfere.
struct VisitScratch {
  std::vector<uint32_t> mark;
  uint32_t epoch = 0;
};

VisitScratch& BeginVisit(size_t universe_size) {
  static thread_local VisitScratch scratch;
  if (scratch.mark.size() < universe_size) {
    scratch.mark.resize(universe_size, 0);
  }
  if (++scratch.epoch == 0) {  // epoch wrapped: clear once, restart at 1
    std::fill(scratch.mark.begin(), scratch.mark.end(), 0);
    scratch.epoch = 1;
  }
  return scratch;
}

bool MarkVisited(VisitScratch& scratch, LabelId l) {
  if (scratch.mark[l] == scratch.epoch) return false;
  scratch.mark[l] = scratch.epoch;
  return true;
}

}  // namespace

void OntologyGraph::AddLabel(LabelId label) {
  OSQ_CHECK(label != kInvalidLabel);
  if (label >= present_.size()) {
    present_.resize(label + 1, false);
    adj_.resize(label + 1);
  }
  if (!present_[label]) {
    present_[label] = true;
    ++num_labels_;
  }
}

bool OntologyGraph::AddRelation(LabelId a, LabelId b) {
  if (a == b) return false;
  AddLabel(a);
  AddLabel(b);
  auto insert = [](std::vector<LabelId>* adj, LabelId x) {
    auto it = std::lower_bound(adj->begin(), adj->end(), x);
    if (it != adj->end() && *it == x) return false;
    adj->insert(it, x);
    return true;
  };
  if (!insert(&adj_[a], b)) {
    return false;
  }
  bool inserted = insert(&adj_[b], a);
  OSQ_DCHECK(inserted);
  (void)inserted;
  ++num_relations_;
  return true;
}

const std::vector<LabelId>& OntologyGraph::Neighbors(LabelId label) const {
  if (!ContainsLabel(label)) {
    return EmptyNeighbors();
  }
  return adj_[label];
}

std::vector<LabelId> OntologyGraph::Labels() const {
  std::vector<LabelId> labels;
  labels.reserve(num_labels_);
  for (LabelId l = 0; l < present_.size(); ++l) {
    if (present_[l]) labels.push_back(l);
  }
  return labels;
}

uint32_t OntologyGraph::Distance(LabelId a, LabelId b,
                                 uint32_t max_distance) const {
  if (a == b) return 0;
  if (!ContainsLabel(a) || !ContainsLabel(b)) {
    return kInfiniteDistance;
  }
  if (max_distance == 0) return kInfiniteDistance;
  VisitScratch& scratch = BeginVisit(present_.size());
  std::deque<LabelDistance> queue;
  MarkVisited(scratch, a);
  queue.push_back({a, 0});
  while (!queue.empty()) {
    LabelDistance cur = queue.front();
    queue.pop_front();
    if (cur.distance >= max_distance) continue;
    for (LabelId next : adj_[cur.label]) {
      if (!MarkVisited(scratch, next)) continue;
      if (next == b) return cur.distance + 1;
      queue.push_back({next, cur.distance + 1});
    }
  }
  return kInfiniteDistance;
}

std::vector<LabelDistance> OntologyGraph::BallAround(
    LabelId source, uint32_t max_distance) const {
  std::vector<LabelDistance> ball;
  if (!ContainsLabel(source)) {
    return ball;
  }
  VisitScratch& scratch = BeginVisit(present_.size());
  MarkVisited(scratch, source);
  ball.push_back({source, 0});
  size_t head = 0;
  while (head < ball.size()) {
    LabelDistance cur = ball[head++];
    if (cur.distance >= max_distance) continue;
    for (LabelId next : adj_[cur.label]) {
      if (!MarkVisited(scratch, next)) continue;
      ball.push_back({next, cur.distance + 1});
    }
  }
  return ball;
}

Status SaveOntology(const OntologyGraph& o, const LabelDictionary& dict,
                    const std::string& path) {
  // Emit the graph text format directly, in an order derived only from the
  // ontology's *content*: nodes sorted by label name, relations sorted by
  // (name, name) with the lexicographically smaller endpoint first, and a
  // fixed edge-label token (LoadOntologyFromFile ignores it).  Ordering by
  // dictionary id — or naming edges after dictionary id 0 — would make the
  // bytes depend on interning order, so an export -> import -> export
  // round trip through a freshly interned dictionary would not diff clean.
  std::vector<LabelId> labels = o.Labels();
  std::sort(labels.begin(), labels.end(), [&](LabelId a, LabelId b) {
    return dict.Name(a) < dict.Name(b);
  });
  std::vector<NodeId> node_of(dict.size(), kInvalidNode);
  for (size_t i = 0; i < labels.size(); ++i) {
    node_of[labels[i]] = static_cast<NodeId>(i);
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "# osq graph: " << labels.size() << " nodes, " << o.num_relations()
      << " edges\n";
  for (size_t i = 0; i < labels.size(); ++i) {
    const std::string& name = dict.Name(labels[i]);
    if (name.empty() || name.find_first_of(" \t\n\r") != std::string::npos) {
      return Status::InvalidArgument("ontology label unserializable: '" +
                                     name + "'");
    }
    out << "v " << i << ' ' << name << '\n';
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    // Neighbors() is sorted by id; re-sort the kept endpoints by name
    // position so the edge list is canonical too.
    std::vector<NodeId> targets;
    for (LabelId m : o.Neighbors(labels[i])) {
      if (node_of[m] > i) targets.push_back(node_of[m]);
    }
    std::sort(targets.begin(), targets.end());
    for (NodeId j : targets) {
      out << "e " << i << ' ' << j << " rel\n";
    }
  }
  if (!out.good()) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Status LoadOntologyFromFile(const std::string& path, LabelDictionary* dict,
                            OntologyGraph* o) {
  if (dict == nullptr || o == nullptr) {
    return Status::InvalidArgument("null argument to LoadOntologyFromFile");
  }
  Graph g;
  OSQ_RETURN_IF_ERROR(LoadGraphFromFile(path, dict, &g));
  OntologyGraph result;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    result.AddLabel(g.NodeLabel(v));
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const AdjEntry& e : g.OutEdges(v)) {
      result.AddRelation(g.NodeLabel(v), g.NodeLabel(e.node));
    }
  }
  *o = std::move(result);
  return Status::Ok();
}

}  // namespace osq
