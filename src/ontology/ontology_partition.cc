#include "ontology/ontology_partition.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace osq {

std::vector<uint32_t> PartitionOntology(const OntologyGraph& o,
                                        size_t num_clusters, Rng* rng) {
  OSQ_CHECK(rng != nullptr);
  std::vector<LabelId> labels = o.Labels();
  std::vector<uint32_t> cluster;
  if (labels.empty()) {
    return cluster;
  }
  LabelId max_label = labels.back();
  cluster.assign(max_label + 1, kInvalidCluster);
  if (num_clusters == 0) num_clusters = 1;
  if (num_clusters > labels.size()) num_clusters = labels.size();

  // Pick distinct random seeds and grow all of them breadth-first in
  // lockstep; ties go to the seed that reaches a label first.
  std::vector<LabelId> order = labels;
  rng->Shuffle(&order);
  std::deque<LabelId> queue;
  uint32_t next_cluster = 0;
  for (size_t i = 0; i < num_clusters; ++i) {
    cluster[order[i]] = next_cluster++;
    queue.push_back(order[i]);
  }
  while (!queue.empty()) {
    LabelId l = queue.front();
    queue.pop_front();
    for (LabelId m : o.Neighbors(l)) {
      if (cluster[m] == kInvalidCluster) {
        cluster[m] = cluster[l];
        queue.push_back(m);
      }
    }
  }
  // Labels in components that no seed touched become their own clusters so
  // the partition always covers the whole ontology.
  for (LabelId l : labels) {
    if (cluster[l] == kInvalidCluster) {
      cluster[l] = next_cluster++;
      queue.push_back(l);
      while (!queue.empty()) {
        LabelId x = queue.front();
        queue.pop_front();
        for (LabelId m : o.Neighbors(x)) {
          if (cluster[m] == kInvalidCluster) {
            cluster[m] = cluster[l];
            queue.push_back(m);
          }
        }
      }
    }
  }
  return cluster;
}

std::vector<LabelId> SelectConceptLabels(const OntologyGraph& o,
                                         const SimilarityFunction& sim,
                                         double beta, size_t num_clusters,
                                         Rng* rng) {
  OSQ_CHECK(rng != nullptr);
  std::vector<LabelId> labels = o.Labels();
  std::vector<LabelId> concepts;
  if (labels.empty()) {
    return concepts;
  }
  std::vector<uint32_t> cluster = PartitionOntology(o, num_clusters, rng);

  // Visit labels cluster by cluster, random order within a cluster, and
  // greedily keep any label not yet within Radius(beta) of a chosen one.
  std::vector<LabelId> order = labels;
  rng->Shuffle(&order);
  std::stable_sort(order.begin(), order.end(),
                   [&](LabelId a, LabelId b) { return cluster[a] < cluster[b]; });

  uint32_t radius = sim.Radius(beta);
  std::vector<bool> covered(labels.back() + 1, false);
  for (LabelId l : order) {
    if (covered[l]) continue;
    concepts.push_back(l);
    for (const LabelDistance& ld : o.BallAround(l, radius)) {
      covered[ld.label] = true;
    }
  }
  std::sort(concepts.begin(), concepts.end());
  return concepts;
}

bool CoversAllLabels(const OntologyGraph& o, const SimilarityFunction& sim,
                     double beta, const std::vector<LabelId>& concepts) {
  std::vector<LabelId> labels = o.Labels();
  if (labels.empty()) return true;
  uint32_t radius = sim.Radius(beta);
  std::vector<bool> covered(labels.back() + 1, false);
  for (LabelId c : concepts) {
    for (const LabelDistance& ld : o.BallAround(c, radius)) {
      covered[ld.label] = true;
    }
  }
  for (LabelId l : labels) {
    if (!covered[l]) return false;
  }
  return true;
}

}  // namespace osq
