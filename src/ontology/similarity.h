// The ontology similarity function (paper §II-A).
//
// The paper's default is sim(l1, l2) = base^dist_O(l1, l2) with base = 0.9
// (so two hops give 0.81), but it explicitly targets "a class of
// similarity functions": any symmetric, monotonically decreasing function
// of ontology distance works, because every algorithm reduces a similarity
// threshold to a BFS radius.  This header provides three members of the
// class:
//
//   kExponential  sim(d) = base^d                (the paper's default)
//   kLinear       sim(d) = max(0, 1 - d/(c+1))   (hard cutoff at c+1 hops)
//   kReciprocal   sim(d) = 1 / (1 + d)
//
// The key derived quantity is Radius(theta): the largest hop distance
// whose similarity still clears the threshold theta.  It is what makes the
// paper's "lazy" filtering strategy correct (Radius(theta) + Radius(beta)
// bounds the distance through a concept label; see filtering.h).

#ifndef OSQ_ONTOLOGY_SIMILARITY_H_
#define OSQ_ONTOLOGY_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "ontology/ontology_graph.h"

namespace osq {

enum class SimilarityModel {
  kExponential,
  kLinear,
  kReciprocal,
};

class SimilarityFunction {
 public:
  // The paper's exponential model; `base` must lie strictly in (0, 1).
  explicit SimilarityFunction(double base = 0.9);

  static SimilarityFunction Exponential(double base) {
    return SimilarityFunction(base);
  }
  // Linear decay hitting zero at cutoff+1 hops; cutoff >= 1.
  static SimilarityFunction Linear(uint32_t cutoff);
  // sim(d) = 1 / (1 + d).
  static SimilarityFunction Reciprocal();

  SimilarityModel model() const { return model_; }
  // Exponential base (meaningful for kExponential only).
  double base() const { return base_; }
  // Linear cutoff (meaningful for kLinear only).
  uint32_t cutoff() const { return cutoff_; }

  // Similarity at hop distance d; 0 for unreachable labels.
  double SimAtDistance(uint32_t distance) const;

  // Largest d with SimAtDistance(d) >= theta (with a small tolerance for
  // floating-point round-off).  Radius(1.0) == 0; a non-positive theta is
  // capped (kMaxRadius, or the cutoff for the linear model) to keep BFS
  // explorations bounded.
  uint32_t Radius(double theta) const;

  // sim(a, b) via bounded ontology BFS: returns the exact similarity when
  // it is >= theta_floor and 0 otherwise.
  double Similarity(const OntologyGraph& o, LabelId a, LabelId b,
                    double theta_floor) const;

  // True iff sim(a, b) >= theta.
  bool AtLeast(const OntologyGraph& o, LabelId a, LabelId b,
               double theta) const {
    return Similarity(o, a, b, theta) > 0.0;
  }

  // Distance ceiling used when a threshold is non-positive; generous enough
  // for any practical ontology while keeping explorations finite.
  static constexpr uint32_t kMaxRadius = 64;

 private:
  SimilarityFunction(SimilarityModel model, double base, uint32_t cutoff);

  SimilarityModel model_ = SimilarityModel::kExponential;
  double base_ = 0.9;
  uint32_t cutoff_ = 2;
  // pow_[d] = base_^d for d <= kMaxRadius (exponential model only).
  std::vector<double> pow_;
};

}  // namespace osq

#endif  // OSQ_ONTOLOGY_SIMILARITY_H_
