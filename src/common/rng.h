// Seeded random number generator used by generators and property tests.
// A thin wrapper around std::mt19937_64 so that every randomized component
// takes an explicit seed and results are reproducible across runs.

#ifndef OSQ_COMMON_RNG_H_
#define OSQ_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace osq {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi);

  // Uniform integer in [0, n).  Requires n > 0.
  uint64_t Index(uint64_t n);

  // Uniform double in [0, 1).
  double Double();

  // Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Zipf-distributed index in [0, n) with exponent s (s = 0 is uniform).
  // Uses an inverse-CDF table built on first use for a given (n, s).
  uint64_t Zipf(uint64_t n, double s);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Index(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  // Cache for the Zipf table; rebuilt when (n, s) changes.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace osq

#endif  // OSQ_COMMON_RNG_H_
