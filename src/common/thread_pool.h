// Fixed-size thread pool and data-parallel loop helper.
//
// The engine parallelizes three pipelines — index construction across
// concept graphs, Gview filtering across concept graphs / query nodes, and
// KMatch verification across first-order-node candidates.  All of them are
// expressed as ParallelFor over an index range; the pool exists so query
// evaluation never pays thread start-up cost on the hot path.
//
// Concurrency contract:
//   * ParallelFor(num_threads, n, fn) runs fn(0) .. fn(n-1) exactly once
//     each, on the calling thread plus at most num_threads - 1 workers of
//     the shared process-wide pool.  num_threads <= 1 (or n <= 1) runs
//     inline with zero synchronization, so the default QueryOptions /
//     IndexOptions (num_threads = 1) are bit-for-bit the sequential code.
//   * The call returns only after every fn invocation finished.  The first
//     exception thrown by any fn is rethrown on the calling thread (the
//     remaining indices are still drained, so the pool stays consistent).
//   * Calls from inside a pool worker run inline (no nested fan-out); this
//     makes nested parallelism deadlock-free by construction.
//
// Every call site is responsible for determinism: fn(i) may only write
// state owned by index i, and reductions must merge per-index results in
// index order.

#ifndef OSQ_COMMON_THREAD_POOL_H_
#define OSQ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace osq {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (0 is allowed; ParallelFor then runs
  // everything on the caller).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Runs fn(i) for every i in [0, n), using at most `max_workers` threads
  // in total (callers included).  See the file comment for the contract.
  void ParallelFor(size_t max_workers, size_t n,
                   const std::function<void(size_t)>& fn);

  // Process-wide pool with hardware_concurrency() - 1 workers, created on
  // first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task) OSQ_EXCLUDES(mu_);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_ OSQ_GUARDED_BY(mu_);
  bool stopping_ OSQ_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  // immutable after construction
};

// Resolves an options num_threads field: 0 means "all hardware threads",
// any other value is taken literally.
size_t ResolveNumThreads(size_t requested);

// Convenience wrapper over ThreadPool::Shared().ParallelFor.
void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn);

// Spawns `n` dedicated threads running fn(0) .. fn(n-1) concurrently and
// joins them all; the first exception thrown by any fn is rethrown on the
// caller after every thread finished.  Unlike ParallelFor — work-sharing
// of short data-parallel shards on the process-wide pool — this gives
// every fn its own thread for its whole lifetime, which is what
// long-running concurrent actors need: closed-loop load generators and
// the reader/writer threads of the serving stress tests.  n == 0 is a
// no-op; n == 1 still spawns (the actor may block indefinitely).
void RunConcurrently(size_t n, const std::function<void(size_t)>& fn);

}  // namespace osq

#endif  // OSQ_COMMON_THREAD_POOL_H_
