#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace osq {

uint64_t Rng::Uniform(uint64_t lo, uint64_t hi) {
  OSQ_DCHECK(lo <= hi);
  std::uniform_int_distribution<uint64_t> dist(lo, hi);
  return dist(engine_);
}

uint64_t Rng::Index(uint64_t n) {
  OSQ_DCHECK(n > 0);
  return Uniform(0, n - 1);
}

double Rng::Double() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Double() < p;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  OSQ_DCHECK(n > 0);
  if (s <= 0.0) return Index(n);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) {
      zipf_cdf_[i] /= sum;
    }
  }
  double u = Double();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

}  // namespace osq
