// Wall-clock timer for benchmark harnesses and engine statistics.

#ifndef OSQ_COMMON_TIMER_H_
#define OSQ_COMMON_TIMER_H_

#include <chrono>

namespace osq {

// Measures elapsed wall-clock time.  Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  // Elapsed time in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace osq

#endif  // OSQ_COMMON_TIMER_H_
