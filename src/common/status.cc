#include "common/status.h"

namespace osq {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = CodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace osq
