#include "common/deadline.h"

#include <limits>

namespace osq {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "complete";
    case StopReason::kDeadlineExceeded:
      return "deadline_exceeded";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kShardUnavailable:
      return "shard_unavailable";
  }
  return "unknown";
}

double Deadline::RemainingMillis() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(at_ - Clock::now())
      .count();
}

}  // namespace osq
