// Deadline / cancellation primitives for query execution.
//
// KMatch is worst-case exponential, so an adversarial query could pin a
// serving thread forever.  The engine therefore supports *cooperative*
// interruption: a query carries an optional wall-clock Deadline and an
// optional CancelToken, and the two long-running phases (the Gview
// refinement fixpoints and the KMatch backtracking loop) poll them at an
// amortized stride via CancelCheck.  When either fires, the phase stops
// where it is and the engine returns whatever *valid* work was already
// completed — truncated top-K matches, never garbage — tagged with a
// StopReason so callers can distinguish a complete answer from a
// degraded one (see core/query_engine.h:QueryResult::completeness).
//
// All three types are cheap to copy and safe to share across the worker
// threads of one query: Deadline is an immutable time point, CancelToken
// is a shared_ptr to one atomic flag, and each worker owns its own
// CancelCheck (the only mutable state).

#ifndef OSQ_COMMON_DEADLINE_H_
#define OSQ_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace osq {

// Why an evaluation stopped early.  Ordered by precedence: when several
// reasons are observed across the phases (or shards) of one query, the
// higher value wins in merges — an unavailable shard is a stronger
// degradation signal than a deadline, which is stronger than none.
enum class StopReason : uint8_t {
  kNone = 0,              // ran to completion
  kDeadlineExceeded = 1,  // wall-clock deadline expired mid-evaluation
  kCancelled = 2,         // caller cancelled via CancelToken
  kShardUnavailable = 3,  // a shard failed; its portion of the answer is
                          // missing (sharded serving tier, DESIGN.md §13)
};

// Human-readable name ("complete" / "deadline_exceeded" / "cancelled" /
// "shard_unavailable").
const char* StopReasonName(StopReason reason);

// The higher-precedence of two stop reasons.
inline StopReason MergeStopReason(StopReason a, StopReason b) {
  return a >= b ? a : b;
}

// An absolute wall-clock deadline.  Default-constructed = no deadline.
class Deadline {
 public:
  Deadline() = default;

  // Deadline `ms` milliseconds from now; ms <= 0 means no deadline.
  static Deadline AfterMillis(double ms) {
    Deadline d;
    if (ms > 0.0) {
      d.has_deadline_ = true;
      d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::milli>(ms));
    }
    return d;
  }

  bool has_deadline() const { return has_deadline_; }
  bool Expired() const { return has_deadline_ && Clock::now() >= at_; }

  // Milliseconds until expiry; negative once expired, +inf without a
  // deadline.
  double RemainingMillis() const;

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

// Copyable handle to one shared cancellation flag.  A default-constructed
// token is inert (never cancelled, no allocation); Cancellable() makes a
// live one.  RequestCancel/Cancelled are thread-safe and may race freely
// with each other — the flag is a relaxed atomic, cancellation is a hint
// the evaluation acts on at its next poll, not a synchronization point.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken Cancellable() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  // No-op on an inert token.
  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool Cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

  // True when this token can ever be cancelled (made via Cancellable()).
  bool cancellable() const { return flag_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// The per-query execution control block: one Deadline plus one
// CancelToken, built once at query entry and shared (read-only) by every
// phase and worker thread of that query.
struct ExecControl {
  Deadline deadline;
  CancelToken cancel;

  // Immediate (non-amortized) poll.
  StopReason Check() const {
    if (cancel.Cancelled()) return StopReason::kCancelled;
    if (deadline.Expired()) return StopReason::kDeadlineExceeded;
    return StopReason::kNone;
  }

  // True when polling can ever fire — lets hot loops skip the countdown
  // entirely for unconstrained queries.
  bool CanStop() const {
    return deadline.has_deadline() || cancel.cancellable();
  }
};

// Amortized, allocation-free stop poller for hot loops.  Call Stop() once
// per unit of work (e.g. per backtracking step); it consults the clock and
// the token only every `stride` calls, and latches the first non-kNone
// reason it sees (Stop() keeps returning true afterwards, so unwinding
// code can re-query cheaply).  One instance per worker thread.
class CancelCheck {
 public:
  // Default stride: at typical sub-microsecond step costs this bounds the
  // detection lag well under a millisecond while keeping the common case
  // at one decrement + one branch.
  static constexpr uint32_t kDefaultStride = 256;

  // `control` may be null or inert, in which case Stop() is a single
  // branch forever.
  explicit CancelCheck(const ExecControl* control,
                       uint32_t stride = kDefaultStride)
      : control_(control != nullptr && control->CanStop() ? control : nullptr),
        stride_(stride == 0 ? 1 : stride),
        countdown_(stride == 0 ? 1 : stride) {}

  bool Stop() {
    if (reason_ != StopReason::kNone) return true;
    if (control_ == nullptr) return false;
    if (--countdown_ != 0) return false;
    countdown_ = stride_;
    reason_ = control_->Check();
    return reason_ != StopReason::kNone;
  }

  // Immediate poll, bypassing the stride (used between coarse work units,
  // e.g. before starting a new root partition).
  bool StopNow() {
    if (reason_ == StopReason::kNone && control_ != nullptr) {
      reason_ = control_->Check();
    }
    return reason_ != StopReason::kNone;
  }

  StopReason reason() const { return reason_; }

 private:
  const ExecControl* control_;
  uint32_t stride_;
  uint32_t countdown_;
  StopReason reason_ = StopReason::kNone;
};

}  // namespace osq

#endif  // OSQ_COMMON_DEADLINE_H_
