// A minimal Status type for operations that can fail for reasons outside
// the program's control (I/O, malformed input files).  Library invariants
// use OSQ_CHECK instead; Status is reserved for recoverable errors that a
// caller may want to report to a user.

#ifndef OSQ_COMMON_STATUS_H_
#define OSQ_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace osq {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kCorruption = 4,
  // Transient overload: the operation was shed by admission control and
  // may succeed if retried later (serve/query_service.h).
  kUnavailable = 5,
};

// Value-semantic result of a fallible operation.  Default-constructed
// Status is OK.  Copyable and movable.
//
// [[nodiscard]] on the class makes discarding any returned Status a
// compile warning (an error under OSQ_WERROR); a deliberately ignored
// status must be spelled as a (void)-cast with a justification comment
// (enforced by tools/osq_lint).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" rendering, "OK" for success.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Propagates a non-OK status to the caller of the enclosing function.
#define OSQ_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::osq::Status osq_status__ = (expr);     \
    if (!osq_status__.ok()) {                \
      return osq_status__;                   \
    }                                        \
  } while (false)

}  // namespace osq

#endif  // OSQ_COMMON_STATUS_H_
