#include "common/timer.h"

// WallTimer is header-only; this translation unit exists so the build
// system has a stable object for the target.
