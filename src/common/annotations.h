// Lock-discipline annotations (DESIGN.md §15).
//
// These macros document which mutex protects which member, which locks a
// helper expects its caller to hold, and the global acquisition order.
// They are enforced twice:
//
//   1. tools/osq_lint parses them directly (rules osq-guarded-access and
//      osq-lock-order), so the discipline is machine-checked in tier-1 even
//      though that gate runs on GCC.
//   2. Under Clang they expand to the native thread-safety attributes, so a
//      `clang++ -Wthread-safety` build cross-checks the same contracts
//      (scripts/lint.sh runs that stage when clang is installed; note that
//      std::mutex is not a Clang "capability" type, so that stage adds
//      -Wno-thread-safety-attributes — osq_lint remains the authoritative
//      enforcement here).
//
// Vocabulary:
//   OSQ_GUARDED_BY(mu)        member may be read under a shared or exclusive
//                             RAII lock on `mu`, written only under exclusive
//   OSQ_REQUIRES(mu)          function must be called with `mu` held
//                             exclusively (private *Locked() helpers)
//   OSQ_REQUIRES_SHARED(mu)   function must be called with `mu` held shared
//                             (an exclusive hold also satisfies it)
//   OSQ_EXCLUDES(mu)          function must be called with `mu` NOT held
//                             (it acquires `mu` itself)
//   OSQ_ACQUIRED_BEFORE(mu)   the annotated mutex is always acquired before
//                             `mu`; osq-lock-order flags any function whose
//                             acquisition sequence contradicts the resulting
//                             DAG

#ifndef OSQ_COMMON_ANNOTATIONS_H_
#define OSQ_COMMON_ANNOTATIONS_H_

#if defined(__clang__)
#define OSQ_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define OSQ_THREAD_ANNOTATION_ATTRIBUTE_(x)  // GCC: osq_lint enforces instead
#endif

#define OSQ_GUARDED_BY(x) OSQ_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define OSQ_REQUIRES(...) \
  OSQ_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define OSQ_REQUIRES_SHARED(...) \
  OSQ_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define OSQ_EXCLUDES(...) \
  OSQ_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define OSQ_ACQUIRED_BEFORE(...) \
  OSQ_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#endif  // OSQ_COMMON_ANNOTATIONS_H_
