// Lightweight assertion macros used across the library.
//
// OSQ_CHECK is evaluated in all build modes and aborts with a message on
// failure; it guards invariants whose violation would make continuing
// meaningless (index corruption, out-of-range ids coming from user input
// that has already been validated).  OSQ_DCHECK compiles away in NDEBUG
// builds and is used for hot-path internal invariants.

#ifndef OSQ_COMMON_CHECK_H_
#define OSQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define OSQ_CHECK(condition)                                              \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "OSQ_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define OSQ_CHECK_MSG(condition, msg)                                     \
  do {                                                                    \
    if (!(condition)) {                                                   \
      std::fprintf(stderr, "OSQ_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #condition, msg);                  \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define OSQ_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define OSQ_DCHECK(condition) OSQ_CHECK(condition)
#endif

#endif  // OSQ_COMMON_CHECK_H_
