#include "common/thread_pool.h"

#include <atomic>
#include <exception>
#include <memory>
#include <utility>

namespace osq {

namespace {

// True on threads owned by a ThreadPool; ParallelFor from such a thread
// runs inline so a worker never blocks waiting on work that is queued
// behind it.
thread_local bool tls_inside_pool_worker = false;

// State shared between the caller and the helper tasks of one ParallelFor.
// Held by shared_ptr so a helper that is dequeued after the caller already
// drained the range can still run (and find no work) safely.
struct ForState {
  explicit ForState(size_t n) : next(0), total(n) {}

  std::atomic<size_t> next;
  const size_t total;

  std::mutex mu;
  std::condition_variable done;
  size_t pending_helpers OSQ_GUARDED_BY(mu) = 0;
  std::exception_ptr error OSQ_GUARDED_BY(mu);  // first exception wins

  void Drain(const std::function<void(size_t)>& fn) {
    for (size_t i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        // Keep draining the remaining indices: sibling shards may hold
        // references into caller-owned state, so every index must be
        // claimed before ParallelFor returns.
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::WorkerLoop() {
  tls_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::ParallelFor(size_t max_workers, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t workers = max_workers < n ? max_workers : n;
  if (workers <= 1 || threads_.empty() || tls_inside_pool_worker) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto state = std::make_shared<ForState>(n);
  size_t helpers = workers - 1;  // the caller is the first worker
  if (helpers > threads_.size()) helpers = threads_.size();
  state->pending_helpers = helpers;
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, &fn] {
      // Safe by-reference capture: the caller blocks until
      // pending_helpers == 0, so `fn` outlives every helper.
      state->Drain(fn);
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->pending_helpers;
      }
      state->done.notify_one();
    });
  }

  state->Drain(fn);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&] { return state->pending_helpers == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* const pool = [] {
    unsigned hw = std::thread::hardware_concurrency();
    size_t workers = hw > 1 ? static_cast<size_t>(hw) - 1 : 0;
    return new ThreadPool(workers);
  }();
  return *pool;
}

size_t ResolveNumThreads(size_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

void ParallelFor(size_t num_threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  ThreadPool::Shared().ParallelFor(ResolveNumThreads(num_threads), n, fn);
}

void RunConcurrently(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  std::mutex mu;
  std::exception_ptr error;  // first exception wins
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([i, &fn, &mu, &error] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace osq
