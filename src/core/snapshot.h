// Binary engine snapshots — the index_io v2 format.
//
// One mmap-able file holds everything a serving process needs to answer
// queries: the label dictionary, the data graph's frozen CSR arrays, the
// ontology, every concept graph of the ontology index, and the candidate-
// pruning index.  Loading maps the file and adopts the graph's CSR arrays
// *in place* (zero-copy; the Graph keeps the mapping alive through its
// anchor), deserializes the comparatively small index structures, and
// skips every expensive build stage: no text parsing, no concept-label
// BFS, no partition refinement, no candidate-signature recomputation.
// This is the sub-second cold start the text v1 format (core/index_io.h,
// kept as the import/export interchange format) cannot provide.
//
// File layout (all integers little-endian; every section offset 8-aligned):
//
//   SnapshotHeader   { magic "OSQSNP2\0", version, section_count,
//                      file_size, payload_hash }
//   SectionEntry[n]  { type, offset, size }
//   sections...      (see SectionType; each internally self-describing)
//
// `payload_hash` is word-blocked FNV-1a 64 over every byte after the
// header — section table included — taken 8 little-endian bytes per step
// with a byte-wise tail (one multiply per word keeps verification a small
// fraction of load time).  It is recomputed on load, so any bit flip in
// the file fails closed.  Structural validation (bounds, alignment, overlap,
// monotone CSR offsets, sorted adjacency) runs before any pointer into the
// mapping is trusted.  Error taxonomy: a file that is not a v2 snapshot at
// all (bad magic or version) is InvalidArgument; a v2 file that is damaged
// or inconsistent is Corruption.

#ifndef OSQ_CORE_SNAPSHOT_H_
#define OSQ_CORE_SNAPSHOT_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/query_engine.h"
#include "graph/label_dictionary.h"

namespace osq {

// Diagnostics from a snapshot load.
struct SnapshotLoadStats {
  size_t file_bytes = 0;
  // True when the file was mapped (the graph arrays are served straight
  // from the page cache); false on the read(2) fallback.
  bool mapped = false;
  // Stage wall times, so a slow cold start is attributable: payload hash
  // verification, CSR adoption + validation, concept-graph restore, and
  // candidate-index restore.
  double hash_ms = 0.0;
  double graph_ms = 0.0;
  double concept_graphs_ms = 0.0;
  double candidate_index_ms = 0.0;
};

// Writes a v2 snapshot of the engine (graph, ontology, full index) and the
// dictionary the graphs were built through.  The engine's data graph is
// re-compacted into CSR form for the file if it carries thawed overlay
// state; the engine itself is not modified.
[[nodiscard]] Status SaveEngineSnapshot(const QueryEngine& engine,
                                        const LabelDictionary& dict,
                                        const std::string& path);

// Loads a v2 snapshot into a ready-to-serve engine.  `dict` is normally
// empty and is filled with the snapshot's dictionary; a pre-populated
// dictionary must agree with the snapshot (same names, same ids) or the
// load fails with InvalidArgument.  On success `*out` owns the engine and
// the engine's graph keeps the file mapping alive for as long as any copy
// of it exists.
[[nodiscard]] Status LoadEngineSnapshot(const std::string& path,
                                        LabelDictionary* dict,
                                        std::unique_ptr<QueryEngine>* out,
                                        SnapshotLoadStats* stats = nullptr);

}  // namespace osq

#endif  // OSQ_CORE_SNAPSHOT_H_
