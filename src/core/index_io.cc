#include "core/index_io.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace osq {

namespace {

constexpr char kHeader[] = "# osq index v1";

}  // namespace

Status SaveIndex(const OntologyIndex& index, const LabelDictionary& dict,
                 std::ostream* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("null output stream");
  }
  const IndexOptions& opt = index.options();
  *out << kHeader << '\n';
  *out << "options " << static_cast<int>(opt.similarity_model) << ' '
       << opt.similarity_base << ' ' << opt.similarity_cutoff << ' '
       << opt.beta << ' ' << index.num_concept_graphs() << ' '
       << opt.num_clusters << ' ' << opt.seed << ' '
       << (opt.edge_label_aware ? 1 : 0) << '\n';
  for (size_t i = 0; i < index.num_concept_graphs(); ++i) {
    const ConceptGraph& cg = index.concept_graph(i);
    std::vector<BlockId> blocks = cg.AliveBlocks();
    *out << "conceptgraph " << i << ' ' << cg.concept_labels().size() << ' '
         << blocks.size() << '\n';
    *out << "concepts";
    for (LabelId l : cg.concept_labels()) {
      *out << ' ' << dict.Name(l);
    }
    *out << '\n';
    for (BlockId b : blocks) {
      *out << "block " << dict.Name(cg.BlockLabel(b)) << ' '
           << cg.Members(b).size();
      for (NodeId v : cg.Members(b)) {
        *out << ' ' << v;
      }
      *out << '\n';
    }
  }
  if (!out->good()) {
    return Status::IoError("write failed");
  }
  return Status::Ok();
}

Status SaveIndexToFile(const OntologyIndex& index,
                       const LabelDictionary& dict, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return SaveIndex(index, dict, &out);
}

Status LoadIndex(std::istream* in, const Graph& g, const OntologyGraph& o,
                 LabelDictionary* dict, OntologyIndex* out) {
  if (in == nullptr || dict == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument to LoadIndex");
  }
  std::string line;
  if (!std::getline(*in, line) || line != kHeader) {
    return Status::Corruption("missing index header");
  }
  IndexOptions options;
  size_t num_graphs = 0;
  {
    if (!std::getline(*in, line)) {
      return Status::Corruption("missing options record");
    }
    std::istringstream ls(line);
    std::string tag;
    int model = 0;
    int aware = 0;
    if (!(ls >> tag >> model >> options.similarity_base >>
          options.similarity_cutoff >> options.beta >> num_graphs >>
          options.num_clusters >> options.seed >> aware) ||
        tag != "options") {
      return Status::Corruption("bad options record");
    }
    if (model < 0 || model > static_cast<int>(SimilarityModel::kReciprocal)) {
      return Status::Corruption("unknown similarity model");
    }
    options.similarity_model = static_cast<SimilarityModel>(model);
    options.edge_label_aware = aware != 0;
    options.num_concept_graphs = num_graphs;
    if (num_graphs == 0 || options.similarity_base <= 0.0 ||
        options.similarity_base >= 1.0 || options.similarity_cutoff == 0) {
      return Status::Corruption("implausible index options");
    }
  }

  SimilarityFunction sim = MakeSimilarity(options);
  ConceptGraphOptions cg_options;
  cg_options.beta = options.beta;
  cg_options.edge_label_aware = options.edge_label_aware;

  std::vector<ConceptGraph> graphs;
  for (size_t i = 0; i < num_graphs; ++i) {
    size_t idx = 0;
    size_t num_concepts = 0;
    size_t num_blocks = 0;
    if (!std::getline(*in, line)) {
      return Status::Corruption("missing conceptgraph record");
    }
    {
      std::istringstream ls(line);
      std::string tag;
      if (!(ls >> tag >> idx >> num_concepts >> num_blocks) ||
          tag != "conceptgraph" || idx != i) {
        return Status::Corruption("bad conceptgraph record");
      }
    }
    std::vector<LabelId> concepts;
    if (!std::getline(*in, line)) {
      return Status::Corruption("missing concepts record");
    }
    {
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag != "concepts") {
        return Status::Corruption("bad concepts record");
      }
      std::string name;
      while (ls >> name) {
        concepts.push_back(dict->Intern(name));
      }
      if (concepts.size() != num_concepts) {
        return Status::Corruption("concept count mismatch");
      }
    }
    std::vector<std::pair<LabelId, std::vector<NodeId>>> blocks;
    std::vector<bool> seen(g.num_nodes(), false);
    size_t covered = 0;
    for (size_t b = 0; b < num_blocks; ++b) {
      if (!std::getline(*in, line)) {
        return Status::Corruption("missing block record");
      }
      std::istringstream ls(line);
      std::string tag;
      std::string label;
      size_t count = 0;
      if (!(ls >> tag >> label >> count) || tag != "block" || count == 0) {
        return Status::Corruption("bad block record");
      }
      std::vector<NodeId> members;
      members.reserve(count);
      uint64_t v = 0;
      while (ls >> v) {
        if (v >= g.num_nodes()) {
          return Status::Corruption("block references unknown node");
        }
        if (seen[v]) {
          return Status::Corruption("node assigned to two blocks");
        }
        seen[v] = true;
        members.push_back(static_cast<NodeId>(v));
      }
      if (members.size() != count) {
        return Status::Corruption("block member count mismatch");
      }
      covered += members.size();
      blocks.emplace_back(dict->Intern(label), std::move(members));
    }
    if (covered != g.num_nodes()) {
      return Status::Corruption("partition does not cover the graph");
    }
    graphs.push_back(ConceptGraph::FromPartition(g, o, sim, cg_options,
                                                 std::move(concepts),
                                                 blocks));
    if (!graphs.back().Validate()) {
      return Status::Corruption(
          "index file does not match the graph (invariants violated)");
    }
  }
  *out = OntologyIndex::FromParts(g, o, options, std::move(graphs));
  return Status::Ok();
}

Status LoadIndexFromFile(const std::string& path, const Graph& g,
                         const OntologyGraph& o, LabelDictionary* dict,
                         OntologyIndex* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return LoadIndex(&in, g, o, dict, out);
}

}  // namespace osq
