#include "core/index_io.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/graph_algorithms.h"

namespace osq {

namespace {

constexpr char kHeader[] = "# osq index v1";

// Label names are written space-separated inside the concepts / block
// records, so a name containing whitespace would shift every following
// token and corrupt the file silently.  We percent-escape '%' and all
// whitespace bytes on save and reverse it on load; names without those
// bytes round-trip byte-identical to the original v1 format, so old files
// still parse and the header stays v1.
bool NeedsEscape(char c) {
  return c == '%' || c == ' ' || c == '\t' || c == '\n' || c == '\r' ||
         c == '\v' || c == '\f';
}

// Empty names are unescapable (the tokenizer cannot represent them);
// callers reject them with InvalidArgument before writing anything.
std::string EscapeLabelName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (NeedsEscape(c)) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X",
                    static_cast<unsigned char>(c));
      out.append(buf);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

int HexDigit(char h) {
  if (h >= '0' && h <= '9') return h - '0';
  if (h >= 'A' && h <= 'F') return h - 'A' + 10;
  if (h >= 'a' && h <= 'f') return h - 'a' + 10;
  return -1;
}

// False on a malformed escape ('%' without two hex digits) or an empty
// result; both indicate a corrupt file.
bool UnescapeLabelName(const std::string& escaped, std::string* out) {
  out->clear();
  for (size_t i = 0; i < escaped.size(); ++i) {
    char c = escaped[i];
    if (c == '%') {
      if (i + 2 >= escaped.size()) return false;
      int hi = HexDigit(escaped[i + 1]);
      int lo = HexDigit(escaped[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out->push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out->push_back(c);
    }
  }
  return !out->empty();
}

}  // namespace

Status SaveIndex(const OntologyIndex& index, const LabelDictionary& dict,
                 std::ostream* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("null output stream");
  }
  const IndexOptions& opt = index.options();
  *out << kHeader << '\n';
  *out << "options " << static_cast<int>(opt.similarity_model) << ' '
       << opt.similarity_base << ' ' << opt.similarity_cutoff << ' '
       << opt.beta << ' ' << index.num_concept_graphs() << ' '
       << opt.num_clusters << ' ' << opt.seed << ' '
       << (opt.edge_label_aware ? 1 : 0) << '\n';
  // Graph-identity record: pins the file to the data graph it was saved
  // over, so a load against any other graph fails fast (InvalidArgument)
  // instead of blindly trusting the partition records.
  const Graph& g = index.data_graph();
  *out << "candidateindex " << g.num_nodes() << ' ' << g.num_edges() << ' '
       << GraphContentHash(g) << '\n';
  for (size_t i = 0; i < index.num_concept_graphs(); ++i) {
    const ConceptGraph& cg = index.concept_graph(i);
    std::vector<BlockId> blocks = cg.AliveBlocks();
    *out << "conceptgraph " << i << ' ' << cg.concept_labels().size() << ' '
         << blocks.size() << '\n';
    *out << "concepts";
    for (LabelId l : cg.concept_labels()) {
      const std::string& name = dict.Name(l);
      if (name.empty()) {
        return Status::InvalidArgument(
            "cannot save index: empty concept label name");
      }
      *out << ' ' << EscapeLabelName(name);
    }
    *out << '\n';
    for (BlockId b : blocks) {
      const std::string& name = dict.Name(cg.BlockLabel(b));
      if (name.empty()) {
        return Status::InvalidArgument(
            "cannot save index: empty block label name");
      }
      *out << "block " << EscapeLabelName(name) << ' '
           << cg.Members(b).size();
      for (NodeId v : cg.Members(b)) {
        *out << ' ' << v;
      }
      *out << '\n';
    }
  }
  if (!out->good()) {
    return Status::IoError("write failed");
  }
  return Status::Ok();
}

Status SaveIndexToFile(const OntologyIndex& index,
                       const LabelDictionary& dict, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return SaveIndex(index, dict, &out);
}

Status LoadIndex(std::istream* in, const Graph& g, const OntologyGraph& o,
                 LabelDictionary* dict, OntologyIndex* out) {
  if (in == nullptr || dict == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument to LoadIndex");
  }
  std::string line;
  if (!std::getline(*in, line) || line != kHeader) {
    return Status::Corruption("missing index header");
  }
  IndexOptions options;
  size_t num_graphs = 0;
  {
    if (!std::getline(*in, line)) {
      return Status::Corruption("missing options record");
    }
    std::istringstream ls(line);
    std::string tag;
    int model = 0;
    int aware = 0;
    if (!(ls >> tag >> model >> options.similarity_base >>
          options.similarity_cutoff >> options.beta >> num_graphs >>
          options.num_clusters >> options.seed >> aware) ||
        tag != "options") {
      return Status::Corruption("bad options record");
    }
    if (model < 0 || model > static_cast<int>(SimilarityModel::kReciprocal)) {
      return Status::Corruption("unknown similarity model");
    }
    options.similarity_model = static_cast<SimilarityModel>(model);
    options.edge_label_aware = aware != 0;
    options.num_concept_graphs = num_graphs;
    if (num_graphs == 0 || options.similarity_base <= 0.0 ||
        options.similarity_base >= 1.0 || options.similarity_cutoff == 0) {
      return Status::Corruption("implausible index options");
    }
  }

  // Optional graph-identity record (files written before it lack one and
  // keep parsing as plain v1).  Validating here — before the expensive
  // partition load — turns "this file belongs to a different graph" into a
  // clean InvalidArgument instead of blind trust in the block records or a
  // misleading Corruption from a downstream invariant check.
  std::string pending;
  bool has_pending = false;
  if (std::getline(*in, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "candidateindex") {
      uint64_t nodes = 0;
      uint64_t edges = 0;
      uint64_t hash = 0;
      std::string extra;
      if (!(ls >> nodes >> edges >> hash) || (ls >> extra)) {
        return Status::Corruption("bad candidateindex record");
      }
      if (nodes != g.num_nodes() || edges != g.num_edges()) {
        return Status::InvalidArgument(
            "index file was built over a different graph "
            "(node/edge counts differ)");
      }
      if (hash != GraphContentHash(g)) {
        return Status::InvalidArgument(
            "index file was built over a different graph "
            "(content hash mismatch)");
      }
    } else {
      pending = line;
      has_pending = true;
    }
  }

  SimilarityFunction sim = MakeSimilarity(options);
  ConceptGraphOptions cg_options;
  cg_options.beta = options.beta;
  cg_options.edge_label_aware = options.edge_label_aware;

  std::vector<ConceptGraph> graphs;
  for (size_t i = 0; i < num_graphs; ++i) {
    size_t idx = 0;
    size_t num_concepts = 0;
    size_t num_blocks = 0;
    if (has_pending) {
      line = std::move(pending);
      has_pending = false;
    } else if (!std::getline(*in, line)) {
      return Status::Corruption("missing conceptgraph record");
    }
    {
      std::istringstream ls(line);
      std::string tag;
      if (!(ls >> tag >> idx >> num_concepts >> num_blocks) ||
          tag != "conceptgraph" || idx != i) {
        return Status::Corruption("bad conceptgraph record");
      }
    }
    std::vector<LabelId> concepts;
    if (!std::getline(*in, line)) {
      return Status::Corruption("missing concepts record");
    }
    {
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag != "concepts") {
        return Status::Corruption("bad concepts record");
      }
      std::string name;
      std::string unescaped;
      while (ls >> name) {
        if (!UnescapeLabelName(name, &unescaped)) {
          return Status::Corruption("bad label escape in concepts record");
        }
        concepts.push_back(dict->Intern(unescaped));
      }
      if (concepts.size() != num_concepts) {
        return Status::Corruption("concept count mismatch");
      }
    }
    std::vector<std::pair<LabelId, std::vector<NodeId>>> blocks;
    std::vector<bool> seen(g.num_nodes(), false);
    size_t covered = 0;
    for (size_t b = 0; b < num_blocks; ++b) {
      if (!std::getline(*in, line)) {
        return Status::Corruption("missing block record");
      }
      std::istringstream ls(line);
      std::string tag;
      std::string label;
      size_t count = 0;
      if (!(ls >> tag >> label >> count) || tag != "block" || count == 0) {
        return Status::Corruption("bad block record");
      }
      std::string label_name;
      if (!UnescapeLabelName(label, &label_name)) {
        return Status::Corruption("bad label escape in block record");
      }
      std::vector<NodeId> members;
      members.reserve(count);
      uint64_t v = 0;
      while (ls >> v) {
        if (v >= g.num_nodes()) {
          return Status::Corruption("block references unknown node");
        }
        if (seen[v]) {
          return Status::Corruption("node assigned to two blocks");
        }
        seen[v] = true;
        members.push_back(static_cast<NodeId>(v));
      }
      if (members.size() != count) {
        return Status::Corruption("block member count mismatch");
      }
      covered += members.size();
      blocks.emplace_back(dict->Intern(label_name), std::move(members));
    }
    if (covered != g.num_nodes()) {
      return Status::Corruption("partition does not cover the graph");
    }
    graphs.push_back(ConceptGraph::FromPartition(g, o, sim, cg_options,
                                                 std::move(concepts),
                                                 blocks));
    if (!graphs.back().Validate()) {
      return Status::Corruption(
          "index file does not match the graph (invariants violated)");
    }
  }
  // A well-formed file ends exactly after the last conceptgraph's blocks;
  // anything further (besides blank lines from a trailing newline) means
  // the file was truncated mid-write, concatenated, or the counts lied.
  while (std::getline(*in, line)) {
    if (!line.empty()) {
      return Status::Corruption("trailing garbage after index records");
    }
  }
  *out = OntologyIndex::FromParts(g, o, options, std::move(graphs));
  return Status::Ok();
}

Status LoadIndexFromFile(const std::string& path, const Graph& g,
                         const OntologyGraph& o, LabelDictionary* dict,
                         OntologyIndex* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  return LoadIndex(&in, g, o, dict, out);
}

}  // namespace osq
