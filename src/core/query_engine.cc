#include "core/query_engine.h"

#include <utility>

#include "common/timer.h"
#include "graph/query_graph.h"
#include "query/pattern_parser.h"

namespace osq {

QueryEngine::QueryEngine(Graph g, OntologyGraph o,
                         const IndexOptions& options)
    : graph_(std::move(g)), ontology_(std::move(o)) {
  WallTimer timer;
  // Compact the data graph before indexing: every query after this point
  // reads flat CSR arrays.
  graph_.Freeze();
  index_ = std::make_unique<OntologyIndex>(
      OntologyIndex::Build(graph_, ontology_, options, &build_stats_));
  index_build_ms_ = timer.ElapsedMillis();
}

QueryEngine QueryEngine::FromPrebuilt(Graph g, OntologyGraph o,
                                      std::unique_ptr<OntologyIndex> index) {
  QueryEngine engine;
  engine.graph_ = std::move(g);
  engine.ontology_ = std::move(o);
  engine.index_ = std::move(index);
  engine.index_->Rebind(&engine.graph_, &engine.ontology_);
  return engine;
}

QueryEngine::QueryEngine(QueryEngine&& other) noexcept
    : graph_(std::move(other.graph_)),
      ontology_(std::move(other.ontology_)),
      index_(std::move(other.index_)),
      build_stats_(std::move(other.build_stats_)),
      index_build_ms_(other.index_build_ms_),
      version_(other.version_) {
  if (index_ != nullptr) index_->Rebind(&graph_, &ontology_);
}

QueryEngine& QueryEngine::operator=(QueryEngine&& other) noexcept {
  if (this == &other) return *this;
  graph_ = std::move(other.graph_);
  ontology_ = std::move(other.ontology_);
  index_ = std::move(other.index_);
  build_stats_ = std::move(other.build_stats_);
  index_build_ms_ = other.index_build_ms_;
  version_ = other.version_;
  if (index_ != nullptr) index_->Rebind(&graph_, &ontology_);
  return *this;
}

QueryResult QueryEngine::Query(const Graph& query,
                               const QueryOptions& options) const {
  QueryResult result;
  result.status = ValidateQuery(query);
  if (!result.status.ok()) {
    return result;
  }
  // One control block per query: the absolute deadline is fixed here so
  // filtering and verification share the same budget.
  ExecControl exec;
  exec.deadline = Deadline::AfterMillis(options.deadline_ms);
  exec.cancel = options.cancel;
  WallTimer timer;
  FilterResult filter = GviewFilter(*index_, query, options, &exec);
  result.filter_ms = timer.ElapsedMillis();
  result.filter_stats = filter.stats;
  timer.Restart();
  result.matches =
      KMatch(query, filter, options, &result.verify_stats, &exec);
  result.verify_ms = timer.ElapsedMillis();
  result.completeness =
      MergeStopReason(filter.stats.stopped, result.verify_stats.stopped);
  return result;
}

QueryResult QueryEngine::QueryPattern(std::string_view pattern,
                                      LabelDictionary* dict,
                                      const QueryOptions& options) const {
  ParsedPattern parsed;
  Status status = ParsePattern(pattern, dict, &parsed);
  if (!status.ok()) {
    QueryResult result;
    result.status = std::move(status);
    return result;
  }
  return Query(parsed.query, options);
}

bool QueryEngine::ApplyUpdate(const GraphUpdate& update,
                              MaintenanceStats* stats) {
  bool applied = osq::ApplyUpdate(&graph_, index_.get(), update, stats);
  if (applied) ++version_;
  return applied;
}

MaintenanceStats QueryEngine::ApplyUpdates(
    const std::vector<GraphUpdate>& updates) {
  MaintenanceStats stats = osq::ApplyUpdates(&graph_, index_.get(), updates);
  if (stats.applied > 0) ++version_;
  return stats;
}

NodeId QueryEngine::AddNode(LabelId label) {
  ++version_;
  return AddNodeWithIndex(&graph_, index_.get(), label);
}

}  // namespace osq
