// User-facing option structs for index construction and query evaluation.

#ifndef OSQ_CORE_OPTIONS_H_
#define OSQ_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "common/deadline.h"
#include "ontology/similarity.h"

namespace osq {

// How a match's edges must relate to the query's edges (paper §II-B).
enum class MatchSemantics {
  // The paper's definition: (u, u') is a query edge *iff* (h(u), h(u')) is a
  // data edge with the same label — matches are induced subgraphs.
  kInduced,
  // The common relaxation: every query edge must be present in the match,
  // extra data edges among matched nodes are allowed.
  kHomomorphicEdges,
};

// Parameters of ontology index construction (paper §IV-A, algorithm
// OntoIdx).
struct IndexOptions {
  // Which member of the similarity-function class to use (paper default:
  // exponential decay).  See ontology/similarity.h.
  SimilarityModel similarity_model = SimilarityModel::kExponential;
  // Exponent base of sim(l1, l2) = base^dist (exponential model).
  double similarity_base = 0.9;
  // Zero-similarity cutoff in hops (linear model).
  uint32_t similarity_cutoff = 2;
  // Similarity threshold beta used to group nodes under concept labels.
  // The paper's experiments use beta = 0.8/0.81 (two ontology hops).
  double beta = 0.81;
  // N: number of concept graphs in the index (card(I)).
  size_t num_concept_graphs = 2;
  // Number of ontology clusters used during concept label selection.
  size_t num_clusters = 8;
  // Seed for the randomized concept-label selection.
  uint64_t seed = 42;
  // Build edge-label-aware concept graphs (ablation; default is the
  // paper's label-unaware index).
  bool edge_label_aware = false;
  // Worker threads for concept-graph construction.  1 (default) builds
  // sequentially; 0 means "all hardware threads".  The built index is
  // identical for every value — concept-label selection stays sequential
  // so the RNG stream is unchanged, and per-graph results merge in index
  // order.
  size_t num_threads = 1;
};

// Parameters of a single query evaluation.
struct QueryOptions {
  // User similarity threshold theta: a data node v may match query node u
  // only if sim(L(v), L_q(u)) >= theta.  theta = 1 degenerates to
  // traditional subgraph isomorphism.
  double theta = 0.9;
  // Number of best matches to return (top-K problem).  0 means "all".
  size_t k = 10;
  MatchSemantics semantics = MatchSemantics::kInduced;
  // When false, skip the lazy concept-ball candidate initialization and
  // compute per-node exact candidates directly against the ontology
  // (ablation knob; the paper's Gview uses the lazy strategy).
  bool lazy_candidates = true;
  // Consult the precomputed neighborhood-signature index
  // (core/candidate_index.h) to seed the block fixpoint with the exact
  // theta-passing block set and to reject candidates by signature before
  // any adjacency scan.  Returned matches are bit-identical with the flag
  // on or off; candidate sets / G_v can only shrink (ablation knob for the
  // bench).  When on, this supersedes lazy_candidates for the block
  // initialization (the signature seeding is already exact and lazy).
  bool use_candidate_index = true;
  // Safety valve for adversarial inputs: abort enumeration after this many
  // backtracking steps (0 = unlimited).  Benches leave it unlimited.  With
  // parallel verification the budget applies to each root-candidate
  // partition independently (keeping truncation deterministic), so the
  // total step count may reach partitions * max_search_steps.
  size_t max_search_steps = 0;
  // Worker threads for query evaluation (Gview filtering + KMatch
  // verification).  1 (default) runs sequentially; 0 means "all hardware
  // threads".  The match set and scores are identical for every value —
  // see DESIGN.md, "Parallel execution".
  size_t num_threads = 1;
  // Wall-clock budget for the whole evaluation, milliseconds (0 = none).
  // When it expires the filtering fixpoints and the KMatch enumeration
  // stop cooperatively and the query returns the valid matches found so
  // far, tagged QueryResult::completeness == kDeadlineExceeded.  Unlike
  // max_search_steps, a deadline makes the *set* of returned matches
  // timing-dependent (each one is still a verified match).  See DESIGN.md
  // §9.
  double deadline_ms = 0.0;
  // Optional cooperative cancellation handle.  Default-constructed = not
  // cancellable; pass CancelToken::Cancellable() and call RequestCancel()
  // from any thread to abandon the evaluation early (the result comes
  // back with completeness == kCancelled).
  CancelToken cancel;
};

// Parameters of the concurrent serving layer (serve/query_service.h).
struct ServeOptions {
  // Capacity (entries) of the versioned LRU result cache keyed by
  // QuerySignature; 0 disables caching entirely.  Each entry stores one
  // full QueryResult, so memory is bounded by capacity * k matches.
  size_t cache_capacity = 256;
  // Also cache QueryResults whose status is non-OK (rejected queries).
  // They are deterministic too, but a stream of distinct malformed
  // queries would evict useful entries, so default off.  Partial results
  // (deadline_exceeded / cancelled) are NEVER cached regardless of this
  // flag — they are timing-dependent and must not be served as complete.
  bool cache_errors = false;
  // Admission control: maximum queries evaluating concurrently (0 =
  // unlimited).  When the limit is reached, further queries are shed
  // immediately with Status kUnavailable (ServedResult::shed) instead of
  // queueing behind the snapshot lock unboundedly.
  size_t max_inflight = 0;
  // Deadline applied to queries that do not carry their own
  // QueryOptions::deadline_ms (0 = none).  A per-query deadline always
  // wins.
  double default_deadline_ms = 0.0;
};

}  // namespace osq

#endif  // OSQ_CORE_OPTIONS_H_
