#include "core/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/candidate_index.h"
#include "core/concept_graph.h"
#include "core/ontology_index.h"

namespace osq {

namespace {

// The on-disk integer layout is the host layout; the format is only
// defined for little-endian hosts (every deployment target).
static_assert(std::endian::native == std::endian::little,
              "snapshot format requires a little-endian host");

constexpr char kMagic[8] = {'O', 'S', 'Q', 'S', 'N', 'P', '2', '\0'};
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMaxSections = 64;

enum SectionType : uint32_t {
  kSecDict = 1,
  kSecOptions = 2,
  kSecGraph = 3,
  kSecOntology = 4,
  kSecConceptGraphs = 5,
  kSecCandidateIndex = 6,
};
constexpr uint32_t kRequiredSections[] = {
    kSecDict,     kSecOptions,       kSecGraph,
    kSecOntology, kSecConceptGraphs, kSecCandidateIndex};

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t section_count;
  uint64_t file_size;
  uint64_t payload_hash;  // word-blocked FNV-1a 64 over
                          // [sizeof(SnapshotHeader), file_size)
  uint64_t reserved;
};
static_assert(sizeof(SnapshotHeader) == 40, "header layout is part of the "
                                            "format");

struct SectionEntry {
  uint32_t type;
  uint32_t reserved;
  uint64_t offset;  // from file start; 8-aligned
  uint64_t size;    // payload bytes (padding between sections not counted)
};
static_assert(sizeof(SectionEntry) == 24, "section-table layout is part of "
                                          "the format");

// Word-blocked FNV-1a: full 8-byte little-endian words feed the usual
// xor-multiply step, the tail feeds it byte-wise.  One multiply per 8
// payload bytes makes hash verification a small fraction of cold-start
// time instead of dominating it (the byte-serial variant is ~8x slower
// and cannot be vectorized past its loop-carried multiply).  The word
// definition is part of the v2 format.
uint64_t Fnv1a(const char* data, size_t size) {
  uint64_t h = 14695981039346656037ull;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, sizeof(w));
    h ^= w;
    h *= 1099511628211ull;
  }
  for (; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// --- byte-stream encoding helpers ------------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { buf.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Raw(const void* p, size_t n) {
    // An empty vector's data() is null; append(nullptr, 0) is UB.
    if (n != 0) buf.append(static_cast<const char*>(p), n);
  }
  void Align8() {
    while (buf.size() % 8 != 0) buf.push_back('\0');
  }
  // Vectors of any 4-byte id type (NodeId / LabelId / BlockId == uint32_t).
  void VecU32(const std::vector<uint32_t>& v) {
    U64(v.size());
    Raw(v.data(), v.size() * sizeof(uint32_t));
  }
  void Counts(const LabelCounts& c) {
    U32(static_cast<uint32_t>(c.size()));
    for (const auto& [label, count] : c) {
      U32(label);
      U32(count);
    }
  }

  std::string buf;
};

// Bounds-checked cursor over one section's bytes.  Every read reports
// failure instead of walking past the end, and count-prefixed reads bound
// the count against the remaining bytes before allocating.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool Raw(void* dst, size_t n) {
    if (n > size_ - pos_) return false;
    // An empty vector's data() is null; memcpy(nullptr, ..., 0) is UB.
    if (n != 0) std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool U8(uint8_t* v) { return Raw(v, sizeof(*v)); }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool VecU32(std::vector<uint32_t>* v) {
    uint64_t n = 0;
    if (!U64(&n) || n > remaining() / sizeof(uint32_t)) return false;
    v->resize(static_cast<size_t>(n));
    return Raw(v->data(), v->size() * sizeof(uint32_t));
  }
  bool Counts(LabelCounts* c) {
    // The wire layout (label u32, count u32 per entry) is exactly the
    // in-memory pair layout, so the whole vector is one bounded memcpy —
    // the candidate-index section holds two counts per node and two per
    // block, making this the hottest reader on the cold-start path.
    static_assert(sizeof(std::pair<LabelId, uint32_t>) == 8,
                  "bulk read relies on the packed pair layout");
    uint32_t n = 0;
    if (!U32(&n) || n > remaining() / 8) return false;
    c->resize(n);
    return Raw(c->data(), c->size() * sizeof((*c)[0]));
  }
  size_t remaining() const { return size_ - pos_; }
  bool Done() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// --- file mapping -----------------------------------------------------------

// Read-only view of a whole file: mmap when possible (the zero-copy load
// path), with a plain read(2) fallback.  A shared_ptr to this object is
// the Graph anchor that keeps the mapping alive.
class MappedBuffer {
 public:
  [[nodiscard]] static Status Open(const std::string& path,
                                   std::shared_ptr<MappedBuffer>* out) {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IoError("cannot open for reading: " + path);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::IoError("cannot stat: " + path);
    }
    auto buf = std::make_shared<MappedBuffer>();
    size_t size = static_cast<size_t>(st.st_size);
    if (size > 0) {
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        buf->map_ = map;
        buf->map_size_ = size;
      } else {
        buf->heap_.resize(size);
        size_t done = 0;
        while (done < size) {
          ssize_t got = ::read(fd, buf->heap_.data() + done, size - done);
          if (got <= 0) {
            ::close(fd);
            return Status::IoError("short read: " + path);
          }
          done += static_cast<size_t>(got);
        }
      }
    }
    ::close(fd);
    *out = std::move(buf);
    return Status::Ok();
  }

  MappedBuffer() = default;
  MappedBuffer(const MappedBuffer&) = delete;
  MappedBuffer& operator=(const MappedBuffer&) = delete;
  ~MappedBuffer() {
    if (map_ != nullptr) ::munmap(map_, map_size_);
  }

  const char* data() const {
    return map_ != nullptr ? static_cast<const char*>(map_) : heap_.data();
  }
  size_t size() const { return map_ != nullptr ? map_size_ : heap_.size(); }
  bool mapped() const { return map_ != nullptr; }

 private:
  void* map_ = nullptr;
  size_t map_size_ = 0;
  std::string heap_;
};

// --- section encoders -------------------------------------------------------

std::string EncodeDict(const LabelDictionary& dict) {
  ByteWriter w;
  w.U64(dict.size());
  for (LabelId id = 0; id < dict.size(); ++id) {
    const std::string& name = dict.Name(id);
    w.U32(static_cast<uint32_t>(name.size()));
    w.Raw(name.data(), name.size());
  }
  return std::move(w.buf);
}

std::string EncodeOptions(const IndexOptions& o) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(o.similarity_model));
  w.U32(o.similarity_cutoff);
  w.F64(o.similarity_base);
  w.F64(o.beta);
  w.U64(o.num_concept_graphs);
  w.U64(o.num_clusters);
  w.U64(o.seed);
  w.U8(o.edge_label_aware ? 1 : 0);
  return std::move(w.buf);
}

std::string EncodeGraph(const Graph& g) {
  ByteWriter w;
  const size_t n = g.num_nodes();
  w.U64(n);
  w.U64(g.num_edges());
  for (NodeId v = 0; v < n; ++v) {
    w.U32(g.NodeLabel(v));
  }
  w.Align8();
  // CSR per direction: offsets (n+1), then the concatenated sorted spans.
  // Serializing through OutEdges/InEdges works for any freeze state.
  uint64_t off = 0;
  w.U64(0);
  for (NodeId v = 0; v < n; ++v) {
    off += g.OutEdges(v).size();
    w.U64(off);
  }
  for (NodeId v = 0; v < n; ++v) {
    Graph::AdjSpan s = g.OutEdges(v);
    w.Raw(s.data(), s.size() * sizeof(AdjEntry));
  }
  off = 0;
  w.U64(0);
  for (NodeId v = 0; v < n; ++v) {
    off += g.InEdges(v).size();
    w.U64(off);
  }
  for (NodeId v = 0; v < n; ++v) {
    Graph::AdjSpan s = g.InEdges(v);
    w.Raw(s.data(), s.size() * sizeof(AdjEntry));
  }
  return std::move(w.buf);
}

std::string EncodeOntology(const OntologyGraph& o, size_t dict_size) {
  ByteWriter w;
  w.U64(dict_size);  // label universe the present flags are indexed by
  w.U64(o.num_labels());
  w.U64(o.num_relations());
  for (LabelId l = 0; l < dict_size; ++l) {
    w.U8(o.ContainsLabel(l) ? 1 : 0);
  }
  // Relations as (a, b) with a < b, ascending — canonical and duplicate-free
  // because Neighbors() is sorted and each undirected edge is kept once.
  uint64_t pairs = 0;
  ByteWriter body;
  for (LabelId a = 0; a < dict_size; ++a) {
    if (!o.ContainsLabel(a)) continue;
    for (LabelId b : o.Neighbors(a)) {
      if (b <= a) continue;
      body.U32(a);
      body.U32(b);
      ++pairs;
    }
  }
  w.U64(pairs);
  w.Raw(body.buf.data(), body.buf.size());
  return std::move(w.buf);
}

std::string EncodeConceptGraphs(const OntologyIndex& index) {
  ByteWriter w;
  w.U64(index.num_concept_graphs());
  for (size_t i = 0; i < index.num_concept_graphs(); ++i) {
    ConceptGraph::SnapshotParts parts =
        index.concept_graph(i).ExportSnapshotParts();
    w.VecU32(parts.concept_labels);
    const size_t cap = parts.members.size();
    w.U64(cap);
    for (const std::vector<NodeId>& m : parts.members) {
      w.VecU32(m);
    }
    w.VecU32(parts.block_label);
    w.U64(parts.alive.size());
    w.Raw(parts.alive.data(), parts.alive.size());
    w.VecU32(parts.free_blocks);
    w.U64(parts.blocks_by_label.size());
    for (const auto& [label, blocks] : parts.blocks_by_label) {
      w.U32(label);
      w.VecU32(blocks);
    }
    w.U64(parts.concept_of_label.size());
    for (const auto& [label, concept_label] : parts.concept_of_label) {
      w.U32(label);
      w.U32(concept_label);
    }
  }
  return std::move(w.buf);
}

std::string EncodeCandidateIndex(const CandidateIndex& index) {
  CandidateIndex::SnapshotParts parts = index.ExportSnapshotParts();
  ByteWriter w;
  w.U64(parts.node_sigs.size());
  for (const NodeSignature& s : parts.node_sigs) {
    w.U64(s.out_bits);
    w.U64(s.in_bits);
    w.Counts(s.out_counts);
    w.Counts(s.in_counts);
  }
  w.U64(parts.per_graph_blocks.size());
  for (const std::vector<BlockSignature>& blocks : parts.per_graph_blocks) {
    w.U64(blocks.size());
    for (const BlockSignature& b : blocks) {
      w.U64(b.out_bits);
      w.U64(b.in_bits);
      w.VecU32(b.member_labels);
      w.Counts(b.max_out_counts);
      w.Counts(b.max_in_counts);
    }
  }
  return std::move(w.buf);
}

// --- section decoders -------------------------------------------------------

[[nodiscard]] Status DecodeDict(const char* data, size_t size,
                                LabelDictionary* dict) {
  ByteReader r(data, size);
  uint64_t count = 0;
  if (!r.U64(&count)) return Status::Corruption("dict section truncated");
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t len = 0;
    if (!r.U32(&len) || len > r.remaining()) {
      return Status::Corruption("dict section truncated");
    }
    std::string name(static_cast<size_t>(len), '\0');
    if (!r.Raw(name.data(), name.size())) {
      return Status::Corruption("dict section truncated");
    }
    if (dict->Intern(name) != static_cast<LabelId>(i)) {
      return Status::InvalidArgument(
          "snapshot dictionary conflicts with the provided dictionary");
    }
  }
  if (!r.Done()) return Status::Corruption("dict section has trailing bytes");
  return Status::Ok();
}

[[nodiscard]] Status DecodeOptions(const char* data, size_t size,
                                   IndexOptions* options) {
  ByteReader r(data, size);
  uint32_t model = 0;
  uint8_t aware = 0;
  IndexOptions o;
  if (!r.U32(&model) || !r.U32(&o.similarity_cutoff) ||
      !r.F64(&o.similarity_base) || !r.F64(&o.beta) ||
      !r.U64(&o.num_concept_graphs) || !r.U64(&o.num_clusters) ||
      !r.U64(&o.seed) || !r.U8(&aware) || !r.Done()) {
    return Status::Corruption("options section malformed");
  }
  if (model > static_cast<uint32_t>(SimilarityModel::kReciprocal)) {
    return Status::Corruption("options section: unknown similarity model");
  }
  o.similarity_model = static_cast<SimilarityModel>(model);
  o.edge_label_aware = aware != 0;
  o.num_threads = 1;  // runtime knob, never persisted
  *options = o;
  return Status::Ok();
}

// Validates one CSR direction in place: offsets monotone and bounded,
// entries in range and strictly ascending per node.
bool ValidCsr(size_t n, uint64_t m, const EdgeIndex* offsets,
              const AdjEntry* entries, size_t num_labels) {
  if (offsets[0] != 0 || offsets[n] != m) return false;
  for (size_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) return false;
    for (EdgeIndex i = offsets[v]; i < offsets[v + 1]; ++i) {
      if (entries[i].node >= n || entries[i].label >= num_labels) {
        return false;
      }
      if (i > offsets[v] && !(entries[i - 1] < entries[i])) return false;
    }
  }
  return true;
}

[[nodiscard]] Status DecodeGraph(const char* data, size_t size,
                                 size_t num_labels,
                                 std::shared_ptr<MappedBuffer> anchor,
                                 Graph* out) {
  if (size < 16) return Status::Corruption("graph section truncated");
  uint64_t n64 = 0;
  uint64_t m64 = 0;
  std::memcpy(&n64, data, 8);
  std::memcpy(&m64, data + 8, 8);
  if (n64 >= kInvalidNode || m64 > size / sizeof(AdjEntry)) {
    return Status::Corruption("graph section: implausible counts");
  }
  const size_t n = static_cast<size_t>(n64);
  const size_t m = static_cast<size_t>(m64);
  const size_t labels_off = 16;
  const size_t labels_bytes = n * sizeof(LabelId);
  const size_t pad = (8 - (labels_off + labels_bytes) % 8) % 8;
  const size_t offsets_bytes = (n + 1) * sizeof(EdgeIndex);
  const size_t entries_bytes = m * sizeof(AdjEntry);
  const size_t out_off = labels_off + labels_bytes + pad;
  const size_t in_off = out_off + offsets_bytes + entries_bytes;
  if (size != in_off + offsets_bytes + entries_bytes) {
    return Status::Corruption("graph section: size does not match counts");
  }
  const LabelId* labels = reinterpret_cast<const LabelId*>(data + labels_off);
  const EdgeIndex* out_offsets =
      reinterpret_cast<const EdgeIndex*>(data + out_off);
  const AdjEntry* out_entries =
      reinterpret_cast<const AdjEntry*>(data + out_off + offsets_bytes);
  const EdgeIndex* in_offsets =
      reinterpret_cast<const EdgeIndex*>(data + in_off);
  const AdjEntry* in_entries =
      reinterpret_cast<const AdjEntry*>(data + in_off + offsets_bytes);
  for (size_t v = 0; v < n; ++v) {
    if (labels[v] >= num_labels) {
      return Status::Corruption("graph section: node label out of range");
    }
  }
  if (!ValidCsr(n, m64, out_offsets, out_entries, num_labels) ||
      !ValidCsr(n, m64, in_offsets, in_entries, num_labels)) {
    return Status::Corruption("graph section: invalid CSR structure");
  }
  *out = Graph::FromFrozenCsr(n, m, labels, out_offsets, out_entries,
                              in_offsets, in_entries, std::move(anchor));
  return Status::Ok();
}

[[nodiscard]] Status DecodeOntology(const char* data, size_t size,
                                    size_t num_labels, OntologyGraph* out) {
  ByteReader r(data, size);
  uint64_t universe = 0;
  uint64_t stored_labels = 0;
  uint64_t stored_relations = 0;
  if (!r.U64(&universe) || !r.U64(&stored_labels) ||
      !r.U64(&stored_relations) || universe > num_labels ||
      universe > r.remaining()) {
    return Status::Corruption("ontology section malformed");
  }
  OntologyGraph o;
  std::vector<uint8_t> present(static_cast<size_t>(universe), 0);
  if (!r.Raw(present.data(), present.size())) {
    return Status::Corruption("ontology section truncated");
  }
  for (LabelId l = 0; l < present.size(); ++l) {
    if (present[l] != 0) o.AddLabel(l);
  }
  uint64_t pairs = 0;
  if (!r.U64(&pairs) || pairs > r.remaining() / 8) {
    return Status::Corruption("ontology section truncated");
  }
  for (uint64_t i = 0; i < pairs; ++i) {
    uint32_t a = 0;
    uint32_t b = 0;
    if (!r.U32(&a) || !r.U32(&b)) {
      return Status::Corruption("ontology section truncated");
    }
    if (a >= b || b >= universe || present[a] == 0 || present[b] == 0 ||
        !o.AddRelation(a, b)) {
      return Status::Corruption("ontology section: bad relation record");
    }
  }
  if (!r.Done() || o.num_labels() != stored_labels ||
      o.num_relations() != stored_relations) {
    return Status::Corruption("ontology section: counts disagree");
  }
  *out = std::move(o);
  return Status::Ok();
}

[[nodiscard]] Status DecodeConceptGraphs(const char* data, size_t size,
                                         const Graph& g,
                                         const OntologyGraph& o,
                                         const IndexOptions& options,
                                         std::vector<ConceptGraph>* out) {
  SimilarityFunction sim = MakeSimilarity(options);
  ConceptGraphOptions cg_options;
  cg_options.beta = options.beta;
  cg_options.edge_label_aware = options.edge_label_aware;

  ByteReader r(data, size);
  uint64_t count = 0;
  // Each concept graph needs at least its six count fields.
  if (!r.U64(&count) || count == 0 || count > r.remaining() / 48) {
    return Status::Corruption("concept-graph section malformed");
  }
  std::vector<ConceptGraph> graphs;
  for (uint64_t i = 0; i < count; ++i) {
    ConceptGraph::SnapshotParts parts;
    uint64_t cap = 0;
    if (!r.VecU32(&parts.concept_labels) || !r.U64(&cap) ||
        cap > r.remaining() / 8) {
      return Status::Corruption("concept-graph section truncated");
    }
    parts.members.resize(static_cast<size_t>(cap));
    for (std::vector<NodeId>& m : parts.members) {
      if (!r.VecU32(&m)) {
        return Status::Corruption("concept-graph section truncated");
      }
    }
    uint64_t alive_count = 0;
    if (!r.VecU32(&parts.block_label) || !r.U64(&alive_count) ||
        alive_count != cap || alive_count > r.remaining()) {
      return Status::Corruption("concept-graph section truncated");
    }
    parts.alive.resize(static_cast<size_t>(alive_count));
    if (!r.Raw(parts.alive.data(), parts.alive.size()) ||
        !r.VecU32(&parts.free_blocks)) {
      return Status::Corruption("concept-graph section truncated");
    }
    uint64_t label_entries = 0;
    if (!r.U64(&label_entries) || label_entries > r.remaining() / 12) {
      return Status::Corruption("concept-graph section truncated");
    }
    parts.blocks_by_label.resize(static_cast<size_t>(label_entries));
    for (auto& [label, blocks] : parts.blocks_by_label) {
      if (!r.U32(&label) || !r.VecU32(&blocks)) {
        return Status::Corruption("concept-graph section truncated");
      }
    }
    uint64_t col_entries = 0;
    if (!r.U64(&col_entries) || col_entries > r.remaining() / 8) {
      return Status::Corruption("concept-graph section truncated");
    }
    parts.concept_of_label.resize(static_cast<size_t>(col_entries));
    for (auto& [label, concept_label] : parts.concept_of_label) {
      if (!r.U32(&label) || !r.U32(&concept_label)) {
        return Status::Corruption("concept-graph section truncated");
      }
    }
    Status status = ConceptGraph::FromSnapshotParts(g, o, sim, cg_options,
                                                    std::move(parts), &graphs);
    if (!status.ok()) return status;
  }
  if (!r.Done()) {
    return Status::Corruption("concept-graph section has trailing bytes");
  }
  *out = std::move(graphs);
  return Status::Ok();
}

[[nodiscard]] Status DecodeCandidateIndex(const char* data, size_t size,
                                          size_t num_nodes, size_t num_graphs,
                                          CandidateIndex* out) {
  ByteReader r(data, size);
  CandidateIndex::SnapshotParts parts;
  uint64_t n = 0;
  if (!r.U64(&n) || n != num_nodes) {
    return Status::Corruption("candidate-index section: node count "
                              "disagrees with the graph");
  }
  parts.node_sigs.resize(static_cast<size_t>(n));
  for (NodeSignature& s : parts.node_sigs) {
    if (!r.U64(&s.out_bits) || !r.U64(&s.in_bits) || !r.Counts(&s.out_counts) ||
        !r.Counts(&s.in_counts)) {
      return Status::Corruption("candidate-index section truncated");
    }
  }
  uint64_t ng = 0;
  if (!r.U64(&ng) || ng != num_graphs) {
    return Status::Corruption("candidate-index section: graph count "
                              "disagrees with the index");
  }
  parts.per_graph_blocks.resize(static_cast<size_t>(ng));
  for (std::vector<BlockSignature>& blocks : parts.per_graph_blocks) {
    uint64_t cap = 0;
    if (!r.U64(&cap) || cap > r.remaining() / 16) {
      return Status::Corruption("candidate-index section truncated");
    }
    blocks.resize(static_cast<size_t>(cap));
    for (BlockSignature& b : blocks) {
      if (!r.U64(&b.out_bits) || !r.U64(&b.in_bits) ||
          !r.VecU32(&b.member_labels) || !r.Counts(&b.max_out_counts) ||
          !r.Counts(&b.max_in_counts)) {
        return Status::Corruption("candidate-index section truncated");
      }
    }
  }
  if (!r.Done()) {
    return Status::Corruption("candidate-index section has trailing bytes");
  }
  *out = CandidateIndex::FromSnapshotParts(std::move(parts));
  return Status::Ok();
}

}  // namespace

Status SaveEngineSnapshot(const QueryEngine& engine,
                          const LabelDictionary& dict,
                          const std::string& path) {
  const OntologyIndex& index = engine.index();
  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.emplace_back(kSecDict, EncodeDict(dict));
  sections.emplace_back(kSecOptions, EncodeOptions(index.options()));
  sections.emplace_back(kSecGraph, EncodeGraph(engine.graph()));
  sections.emplace_back(kSecOntology,
                        EncodeOntology(engine.ontology(), dict.size()));
  sections.emplace_back(kSecConceptGraphs, EncodeConceptGraphs(index));
  sections.emplace_back(kSecCandidateIndex,
                        EncodeCandidateIndex(index.candidate_index()));

  // Assemble payload = section table + padded sections, then stamp the
  // header with the hash over it.
  std::string payload;
  const size_t table_bytes = sections.size() * sizeof(SectionEntry);
  payload.resize(table_bytes, '\0');
  std::vector<SectionEntry> table;
  for (const auto& [type, body] : sections) {
    while ((sizeof(SnapshotHeader) + payload.size()) % 8 != 0) {
      payload.push_back('\0');
    }
    SectionEntry e{};
    e.type = type;
    e.offset = sizeof(SnapshotHeader) + payload.size();
    e.size = body.size();
    table.push_back(e);
    payload += body;
  }
  std::memcpy(payload.data(), table.data(), table_bytes);

  SnapshotHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.section_count = static_cast<uint32_t>(sections.size());
  header.file_size = sizeof(SnapshotHeader) + payload.size();
  header.payload_hash = Fnv1a(payload.data(), payload.size());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  out.write(payload.data(),
            static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out.good()) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

Status LoadEngineSnapshot(const std::string& path, LabelDictionary* dict,
                          std::unique_ptr<QueryEngine>* out,
                          SnapshotLoadStats* stats) {
  if (dict == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument to LoadEngineSnapshot");
  }
  std::shared_ptr<MappedBuffer> file;
  Status status = MappedBuffer::Open(path, &file);
  if (!status.ok()) return status;
  const char* data = file->data();
  const size_t size = file->size();
  if (stats != nullptr) {
    stats->file_bytes = size;
    stats->mapped = file->mapped();
  }

  // Header: a file that is not a v2 snapshot at all is InvalidArgument;
  // a v2 file that fails any structural check is Corruption.
  if (size < sizeof(SnapshotHeader)) {
    return Status::InvalidArgument("not an osq v2 snapshot (too small): " +
                                   path);
  }
  SnapshotHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an osq v2 snapshot (bad magic): " +
                                   path);
  }
  if (header.version != kVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(header.version));
  }
  if (header.file_size != size) {
    return Status::Corruption("snapshot truncated (header size mismatch)");
  }
  if (header.section_count == 0 || header.section_count > kMaxSections) {
    return Status::Corruption("snapshot has an implausible section count");
  }
  const size_t table_bytes = header.section_count * sizeof(SectionEntry);
  if (size - sizeof(SnapshotHeader) < table_bytes) {
    return Status::Corruption("snapshot truncated (section table)");
  }
  WallTimer stage_timer;
  if (Fnv1a(data + sizeof(SnapshotHeader), size - sizeof(SnapshotHeader)) !=
      header.payload_hash) {
    return Status::Corruption("snapshot content hash mismatch");
  }
  if (stats != nullptr) stats->hash_ms = stage_timer.ElapsedMillis();
  std::vector<SectionEntry> table(header.section_count);
  std::memcpy(table.data(), data + sizeof(SnapshotHeader), table_bytes);
  for (const SectionEntry& e : table) {
    if (e.offset % 8 != 0) {
      return Status::Corruption("snapshot section misaligned");
    }
    if (e.offset < sizeof(SnapshotHeader) + table_bytes || e.size > size ||
        e.offset > size - e.size) {
      return Status::Corruption("snapshot section out of bounds");
    }
  }
  std::vector<SectionEntry> by_offset = table;
  std::sort(by_offset.begin(), by_offset.end(),
            [](const SectionEntry& a, const SectionEntry& b) {
              return a.offset < b.offset;
            });
  for (size_t i = 1; i < by_offset.size(); ++i) {
    if (by_offset[i - 1].offset + by_offset[i - 1].size >
        by_offset[i].offset) {
      return Status::Corruption("snapshot sections overlap");
    }
  }
  const SectionEntry* found[kSecCandidateIndex + 1] = {};
  for (const SectionEntry& e : table) {
    if (e.type < kSecDict || e.type > kSecCandidateIndex) {
      return Status::Corruption("snapshot has an unknown section type");
    }
    if (found[e.type] != nullptr) {
      return Status::Corruption("snapshot has a duplicate section");
    }
    found[e.type] = &e;
  }
  for (uint32_t type : kRequiredSections) {
    if (found[type] == nullptr) {
      return Status::Corruption("snapshot is missing a required section");
    }
  }
  auto section = [&](uint32_t type) {
    return std::pair<const char*, size_t>(data + found[type]->offset,
                                          static_cast<size_t>(
                                              found[type]->size));
  };

  auto [dict_data, dict_size] = section(kSecDict);
  status = DecodeDict(dict_data, dict_size, dict);
  if (!status.ok()) return status;

  IndexOptions options;
  auto [opt_data, opt_size] = section(kSecOptions);
  status = DecodeOptions(opt_data, opt_size, &options);
  if (!status.ok()) return status;

  Graph graph;
  auto [graph_data, graph_size] = section(kSecGraph);
  stage_timer = WallTimer();
  status = DecodeGraph(graph_data, graph_size, dict->size(), file, &graph);
  if (!status.ok()) return status;
  if (stats != nullptr) stats->graph_ms = stage_timer.ElapsedMillis();

  OntologyGraph ontology;
  auto [onto_data, onto_size] = section(kSecOntology);
  status = DecodeOntology(onto_data, onto_size, dict->size(), &ontology);
  if (!status.ok()) return status;

  std::vector<ConceptGraph> graphs;
  auto [cg_data, cg_size] = section(kSecConceptGraphs);
  stage_timer = WallTimer();
  status = DecodeConceptGraphs(cg_data, cg_size, graph, ontology, options,
                               &graphs);
  if (!status.ok()) return status;
  if (stats != nullptr) {
    stats->concept_graphs_ms = stage_timer.ElapsedMillis();
  }

  CandidateIndex candidates;
  auto [ci_data, ci_size] = section(kSecCandidateIndex);
  stage_timer = WallTimer();
  status = DecodeCandidateIndex(ci_data, ci_size, graph.num_nodes(),
                                graphs.size(), &candidates);
  if (!status.ok()) return status;
  if (stats != nullptr) {
    stats->candidate_index_ms = stage_timer.ElapsedMillis();
  }

  auto index = std::make_unique<OntologyIndex>(OntologyIndex::FromLoadedParts(
      graph, ontology, options, std::move(graphs), std::move(candidates)));
  *out = std::make_unique<QueryEngine>(QueryEngine::FromPrebuilt(
      std::move(graph), std::move(ontology), std::move(index)));
  return Status::Ok();
}

}  // namespace osq
