// Precomputed candidate-pruning index over the data graph (ROADMAP item 1).
//
// For every data node the index keeps a compact *neighborhood signature*:
//   * a 64-bit bitset over hashed (edge label, neighbor node label) pairs,
//     one for the out- and one for the in-neighborhood (the label-pair
//     encoding of l2Match);
//   * exact degree-per-edge-label counts, out and in (the CNI spirit).
// Per concept graph it additionally aggregates the member signatures of
// every block (bitsets OR-ed, counts max-ed) and inverts the block
// partition by member label, so the Gview filter can
//   (a) seed the block fixpoint with exactly the blocks holding a
//       theta-passing member — found by inverted-index lookup instead of
//       an ontology ball over concept labels — minus blocks whose
//       aggregated signature cannot satisfy some incident query edge, and
//   (b) reject data-node candidates by signature before the node-level
//       refinement ever scans their adjacency.
//
// Losslessness contract (see DESIGN.md §11 for the full argument): every
// signature test is a *necessary* condition for a node to appear in a
// match, so with the index enabled the returned matches are bit-identical
// to the index-off run while the candidate sets / G_v may only shrink
// (they stay supersets of the match nodes).  The tests are:
//   * pair-bit masks — a match of query node u along edge (u, u', l) has a
//     real out-edge labeled l to a node whose label clears theta for u',
//     so the corresponding pair bit is set in its signature; an empty
//     intersection with the mask of all such pairs is a proof of absence
//     (bloom semantics: one-sided error only);
//   * degree counts — query edges from u with one label lead to distinct
//     query nodes, matches are injective, and the data graph holds at most
//     one edge per (from, to, label), so a match of u needs at least the
//     query's per-label degree in distinct data edges.
// Block-level tests aggregate over members, hence reject a block only when
// *no* member could pass — and the concept-graph invariant propagates that
// soundness through the block fixpoint (a match node's block always keeps
// its supporting block edges).
//
// Maintenance: node signatures depend only on the node's own adjacency and
// are recomputed exactly for the two endpoints of every edge update; block
// signatures are recomputed for the blocks the concept-graph repair
// touched (ConceptGraph::TakeDirtyBlocks) plus the endpoints' blocks.
// OntologyIndex drives both from ApplyUpdate, keeping the index exact
// under incIdx± (proven by tests/filter_maintenance_test.cc).  Node label
// mutation outside the maintenance API is unsupported, as for the concept
// graphs themselves.

#ifndef OSQ_CORE_CANDIDATE_INDEX_H_
#define OSQ_CORE_CANDIDATE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/concept_graph.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace osq {

// Sorted-by-label (edge label, count) pairs; the shared shape of degree
// vectors and degree requirements.
using LabelCounts = std::vector<std::pair<LabelId, uint32_t>>;

// One data node's neighborhood signature.
struct NodeSignature {
  uint64_t out_bits = 0;  // hashed (edge label, out-neighbor label) pairs
  uint64_t in_bits = 0;   // hashed (edge label, in-neighbor label) pairs
  LabelCounts out_counts;  // out-degree per edge label
  LabelCounts in_counts;   // in-degree per edge label

  friend bool operator==(const NodeSignature&, const NodeSignature&) = default;
};

// One concept-graph block's aggregated signature: a node-level test can
// reject the whole block only if it would reject every member.
struct BlockSignature {
  uint64_t out_bits = 0;        // OR over members
  uint64_t in_bits = 0;         // OR over members
  std::vector<LabelId> member_labels;  // sorted unique data labels
  LabelCounts max_out_counts;   // per-label max over members
  LabelCounts max_in_counts;    // per-label max over members

  friend bool operator==(const BlockSignature&,
                         const BlockSignature&) = default;
};

// What one query node demands of any data node matching it, precomputed
// once per (query, theta) from the exact candidate-label tables.
struct SignatureRequirement {
  // One entry per incident query edge: the edge label plus the OR of the
  // pair bits of every theta-passing label of the edge's other endpoint.
  // A candidate whose bitset misses a mask entirely cannot be a match.
  std::vector<std::pair<LabelId, uint64_t>> out_masks;
  std::vector<std::pair<LabelId, uint64_t>> in_masks;
  // Minimum degree per edge label (number of incident query edges).
  LabelCounts out_counts;
  LabelCounts in_counts;
};

// Builds the requirement of query node `u`.  `label_sims[w]` is the exact
// candidate-label table of query node w (labels within Radius(theta),
// restricted to labels occurring in the data graph).
SignatureRequirement BuildSignatureRequirement(
    const Graph& query, NodeId u,
    const std::vector<std::unordered_map<LabelId, double>>& label_sims);

// The two primitive tests, inline because the filter runs them per visited
// block / node — thousands of times per query.
inline bool SignatureMasksPass(
    uint64_t bits, const std::vector<std::pair<LabelId, uint64_t>>& masks) {
  for (const auto& [unused_label, mask] : masks) {
    if ((bits & mask) == 0) return false;
  }
  return true;
}

// True when `have` dominates `need` per label; both sorted by label.
inline bool SignatureCountsDominate(const LabelCounts& have,
                                    const LabelCounts& need) {
  size_t i = 0;
  for (const auto& [label, required] : need) {
    while (i < have.size() && have[i].first < label) ++i;
    if (i == have.size() || have[i].first != label ||
        have[i].second < required) {
      return false;
    }
  }
  return true;
}

inline bool SignaturePasses(const NodeSignature& sig,
                            const SignatureRequirement& req) {
  return SignatureMasksPass(sig.out_bits, req.out_masks) &&
         SignatureMasksPass(sig.in_bits, req.in_masks) &&
         SignatureCountsDominate(sig.out_counts, req.out_counts) &&
         SignatureCountsDominate(sig.in_counts, req.in_counts);
}

inline bool SignaturePasses(const BlockSignature& bs,
                            const SignatureRequirement& req) {
  return SignatureMasksPass(bs.out_bits, req.out_masks) &&
         SignatureMasksPass(bs.in_bits, req.in_masks) &&
         SignatureCountsDominate(bs.max_out_counts, req.out_counts) &&
         SignatureCountsDominate(bs.max_in_counts, req.in_counts);
}

class CandidateIndex {
 public:
  CandidateIndex() = default;

  // Bit position of the hashed (edge label, node label) pair.
  static uint32_t PairBit(LabelId edge_label, LabelId node_label);

  // Builds the full index: node signatures in parallel over nodes, block
  // aggregates in parallel over concept graphs.  Identical result for
  // every thread count (all aggregation is commutative and every output
  // vector is canonically sorted).
  static CandidateIndex Build(const Graph& g,
                              const std::vector<ConceptGraph>& graphs,
                              size_t num_threads);

  size_t num_nodes() const { return node_sigs_.size(); }
  size_t num_graphs() const { return per_graph_.size(); }

  const NodeSignature& node_signature(NodeId v) const {
    return node_sigs_[v];
  }
  const BlockSignature& block_signature(size_t graph_index, BlockId b) const {
    return per_graph_[graph_index].blocks[b];
  }

  // Live blocks of concept graph `graph_index` holding at least one member
  // labeled `label`, ascending.  Empty if none.
  const std::vector<BlockId>& BlocksWithMemberLabel(size_t graph_index,
                                                    LabelId label) const;

  // True when data node v could still match a query node with requirement
  // `req` (necessary condition; never rejects a true match).
  bool NodePasses(NodeId v, const SignatureRequirement& req) const {
    return SignaturePasses(node_sigs_[v], req);
  }
  // True when some member of block b could pass `req`.  The mask test runs
  // against a packed (out_bits, in_bits) mirror — 16 contiguous bytes per
  // block instead of the full signature struct — because the filter's seed
  // stage probes thousands of random blocks and most die on the masks; only
  // mask survivors touch the aggregated count vectors.
  bool BlockPasses(size_t graph_index, BlockId b,
                   const SignatureRequirement& req) const {
    const PerGraph& pg = per_graph_[graph_index];
    const std::pair<uint64_t, uint64_t>& bits = pg.bits[b];
    if (!SignatureMasksPass(bits.first, req.out_masks) ||
        !SignatureMasksPass(bits.second, req.in_masks)) {
      return false;
    }
    const BlockSignature& bs = pg.blocks[b];
    return SignatureCountsDominate(bs.max_out_counts, req.out_counts) &&
           SignatureCountsDominate(bs.max_in_counts, req.in_counts);
  }

  // --- Incremental maintenance (driven by OntologyIndex) -----------------
  // Recomputes both endpoint signatures after an edge insertion/deletion;
  // the data graph must already reflect the change.
  void OnEdgeChanged(const Graph& g, NodeId from, NodeId to);
  // Appends the signature of freshly added node v (must be the next id).
  void OnNodeAdded(const Graph& g, NodeId v);
  // Recomputes the block signatures of `dirty` (sorted unique block ids;
  // dead ids are cleared) against the current partition of `cg`, fixing
  // the member-label inverted index along the way.
  void RepairBlocks(size_t graph_index, const Graph& g, const ConceptGraph& cg,
                    const std::vector<BlockId>& dirty);

  // Exact structural equality — meaningful because every stored vector is
  // canonically sorted, so "maintained incrementally" and "rebuilt from
  // scratch over the same graph and partition" must compare equal.
  friend bool operator==(const CandidateIndex&,
                         const CandidateIndex&) = default;

  // --- Binary snapshot support (core/snapshot.h) --------------------------
  // The signatures are the expensive-to-recompute state; the packed bits
  // mirror and the member-label inverted index are canonical derivations
  // (ascending block ids) and are rebuilt on restore, exactly as Build
  // produces them.
  struct SnapshotParts {
    std::vector<NodeSignature> node_sigs;
    std::vector<std::vector<BlockSignature>> per_graph_blocks;
  };
  SnapshotParts ExportSnapshotParts() const;
  static CandidateIndex FromSnapshotParts(SnapshotParts parts);

 private:
  struct PerGraph {
    // Indexed by block id (dead slots hold a default signature).
    std::vector<BlockSignature> blocks;
    // Packed (out_bits, in_bits) mirror of blocks[b], kept in lockstep;
    // the mask-test fast path of BlockPasses reads only this.
    std::vector<std::pair<uint64_t, uint64_t>> bits;
    // data label -> live blocks with a member carrying it (sorted); labels
    // with no block are absent, never mapped to an empty list.
    std::unordered_map<LabelId, std::vector<BlockId>> blocks_by_member_label;

    friend bool operator==(const PerGraph&, const PerGraph&) = default;
  };

  NodeSignature ComputeNodeSignature(const Graph& g, NodeId v) const;
  BlockSignature ComputeBlockSignature(const Graph& g, const ConceptGraph& cg,
                                       BlockId b) const;

  std::vector<NodeSignature> node_sigs_;
  std::vector<PerGraph> per_graph_;
};

}  // namespace osq

#endif  // OSQ_CORE_CANDIDATE_INDEX_H_
