#include "core/concept_graph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "common/check.h"

namespace osq {

namespace {

// Removes one occurrence of `value` from `v` (order not preserved).
template <typename T>
void SwapRemove(std::vector<T>* v, const T& value) {
  auto it = std::find(v->begin(), v->end(), value);
  OSQ_DCHECK(it != v->end());
  *it = v->back();
  v->pop_back();
}

}  // namespace

uint64_t ConceptGraph::EdgeKey(BlockId block, LabelId edge_label) const {
  uint64_t label_part =
      options_.edge_label_aware ? static_cast<uint64_t>(edge_label) : 0u;
  return (static_cast<uint64_t>(block) << 32) | label_part;
}

BlockId ConceptGraph::NewBlock(LabelId concept_label) {
  BlockId b;
  if (!free_blocks_.empty()) {
    b = free_blocks_.back();
    free_blocks_.pop_back();
    members_[b].clear();
    block_label_[b] = concept_label;
    alive_[b] = true;
  } else {
    b = static_cast<BlockId>(members_.size());
    members_.emplace_back();
    block_label_.push_back(concept_label);
    alive_.push_back(true);
  }
  ++num_alive_;
  blocks_by_label_[concept_label].push_back(b);
  MarkDirty(b);
  return b;
}

void ConceptGraph::ReleaseBlock(BlockId b) {
  OSQ_DCHECK(IsAlive(b));
  OSQ_DCHECK(members_[b].empty());
  alive_[b] = false;
  --num_alive_;
  SwapRemove(&blocks_by_label_[block_label_[b]], b);
  free_blocks_.push_back(b);
  MarkDirty(b);
}

void ConceptGraph::MarkDirty(BlockId b) {
  if (b >= dirty_flag_.size()) {
    dirty_flag_.resize(members_.size(), false);
  }
  if (!dirty_flag_[b]) {
    dirty_flag_[b] = true;
    dirty_blocks_.push_back(b);
  }
}

std::vector<BlockId> ConceptGraph::TakeDirtyBlocks() {
  for (BlockId b : dirty_blocks_) {
    dirty_flag_[b] = false;
  }
  std::vector<BlockId> result = std::move(dirty_blocks_);
  dirty_blocks_.clear();
  std::sort(result.begin(), result.end());
  return result;
}

void ConceptGraph::InitCore(const Graph& g, const OntologyGraph& o,
                            const SimilarityFunction& sim,
                            const ConceptGraphOptions& options,
                            std::vector<LabelId> concept_labels) {
  g_ = &g;
  o_ = &o;
  sim_ = sim;
  options_ = options;
  std::sort(concept_labels.begin(), concept_labels.end());
  concept_labels.erase(
      std::unique(concept_labels.begin(), concept_labels.end()),
      concept_labels.end());
  concept_labels_ = std::move(concept_labels);

  // Assign every ontology label within Radius(beta) of a concept label to
  // its nearest concept via one multi-source BFS (ties: BFS arrival order,
  // which is deterministic given the sorted concept list).
  uint32_t radius = sim.Radius(options.beta);
  std::unordered_map<LabelId, uint32_t> dist;
  std::deque<LabelId> queue;
  for (LabelId c : concept_labels_) {
    concept_of_label_[c] = c;
    dist[c] = 0;
    queue.push_back(c);
  }
  while (!queue.empty()) {
    LabelId l = queue.front();
    queue.pop_front();
    uint32_t d = dist[l];
    if (d >= radius) continue;
    for (LabelId m : o.Neighbors(l)) {
      if (dist.count(m) > 0) continue;
      dist[m] = d + 1;
      concept_of_label_[m] = concept_of_label_[l];
      queue.push_back(m);
    }
  }
}

ConceptGraph ConceptGraph::Build(const Graph& g, const OntologyGraph& o,
                                 const SimilarityFunction& sim,
                                 const ConceptGraphOptions& options,
                                 std::vector<LabelId> concept_labels,
                                 ConceptGraphStats* stats) {
  ConceptGraph cg;
  cg.InitCore(g, o, sim, options, std::move(concept_labels));

  // Initial partition: one block per concept label in use.  Data labels the
  // concept_lbl set does not cover become their own concept label (robustness
  // extension; the paper's selection strategy guarantees full coverage).
  cg.block_of_.assign(g.num_nodes(), kInvalidBlock);
  std::unordered_map<LabelId, BlockId> block_of_concept;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    LabelId label = g.NodeLabel(v);
    auto it = cg.concept_of_label_.find(label);
    LabelId concept_lbl;
    if (it != cg.concept_of_label_.end()) {
      concept_lbl = it->second;
    } else {
      concept_lbl = label;
      cg.concept_of_label_[label] = label;
      cg.concept_labels_.insert(
          std::lower_bound(cg.concept_labels_.begin(),
                           cg.concept_labels_.end(), label),
          label);
    }
    auto bit = block_of_concept.find(concept_lbl);
    BlockId b;
    if (bit == block_of_concept.end()) {
      b = cg.NewBlock(concept_lbl);
      block_of_concept.emplace(concept_lbl, b);
    } else {
      b = bit->second;
    }
    cg.block_of_[v] = b;
    cg.members_[b].push_back(v);
  }

  ConceptGraphStats local_stats;
  local_stats.initial_blocks = cg.num_alive_;

  // Refine to the coarsest stable partition.
  std::vector<BlockId> worklist = cg.AliveBlocks();
  std::vector<BlockId> affected;
  cg.RefineFrom(std::move(worklist), &affected, &local_stats);

  local_stats.final_blocks = cg.num_alive_;
  if (stats != nullptr) {
    *stats = local_stats;
  }
  // Construction dirtied every block; derived indexes start from a fresh
  // build of the finished partition, so the set begins empty.
  cg.TakeDirtyBlocks();
  return cg;
}

ConceptGraph ConceptGraph::FromPartition(
    const Graph& g, const OntologyGraph& o, const SimilarityFunction& sim,
    const ConceptGraphOptions& options, std::vector<LabelId> concept_labels,
    const std::vector<std::pair<LabelId, std::vector<NodeId>>>& blocks) {
  ConceptGraph cg;
  cg.InitCore(g, o, sim, options, std::move(concept_labels));
  cg.block_of_.assign(g.num_nodes(), kInvalidBlock);
  for (const auto& [label, members] : blocks) {
    OSQ_CHECK_MSG(!members.empty(), "partition block has no members");
    BlockId b = cg.NewBlock(label);
    cg.members_[b] = members;
    for (NodeId v : members) {
      OSQ_CHECK(g.IsValidNode(v));
      OSQ_CHECK(cg.block_of_[v] == kInvalidBlock);  // partition: no overlap
      cg.block_of_[v] = b;
    }
    // Labels carried only by restored blocks (the uncovered-own-label
    // robustness path in Build) must be registered as concepts.
    if (cg.concept_of_label_.find(label) == cg.concept_of_label_.end()) {
      cg.concept_of_label_[label] = label;
      cg.concept_labels_.insert(
          std::lower_bound(cg.concept_labels_.begin(),
                           cg.concept_labels_.end(), label),
          label);
    }
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    OSQ_CHECK_MSG(cg.block_of_[v] != kInvalidBlock,
                  "partition does not cover all nodes");
  }
  cg.TakeDirtyBlocks();  // as in Build: restored partitions start clean
  return cg;
}

ConceptGraph::SnapshotParts ConceptGraph::ExportSnapshotParts() const {
  SnapshotParts parts;
  parts.concept_labels = concept_labels_;
  parts.members = members_;
  parts.block_label = block_label_;
  parts.alive.reserve(alive_.size());
  for (bool a : alive_) parts.alive.push_back(a ? 1 : 0);
  parts.free_blocks = free_blocks_;
  parts.blocks_by_label.reserve(blocks_by_label_.size());
  for (const auto& [label, blocks] : blocks_by_label_) {
    parts.blocks_by_label.emplace_back(label, blocks);
  }
  std::sort(parts.blocks_by_label.begin(), parts.blocks_by_label.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  parts.concept_of_label.reserve(concept_of_label_.size());
  for (const auto& [label, concept_label] : concept_of_label_) {
    parts.concept_of_label.emplace_back(label, concept_label);
  }
  std::sort(parts.concept_of_label.begin(), parts.concept_of_label.end());
  return parts;
}

Status ConceptGraph::FromSnapshotParts(const Graph& g, const OntologyGraph& o,
                                       const SimilarityFunction& sim,
                                       const ConceptGraphOptions& options,
                                       SnapshotParts parts,
                                       std::vector<ConceptGraph>* out) {
  const size_t cap = parts.members.size();
  if (parts.block_label.size() != cap || parts.alive.size() != cap) {
    return Status::Corruption("concept graph: block table sizes disagree");
  }
  ConceptGraph cg;
  cg.g_ = &g;
  cg.o_ = &o;
  cg.sim_ = sim;
  cg.options_ = options;
  cg.concept_labels_ = std::move(parts.concept_labels);

  // block_of_ is derived from the member lists; the derivation doubles as
  // the partition check (every node in exactly one live block).
  cg.block_of_.assign(g.num_nodes(), kInvalidBlock);
  size_t member_total = 0;
  for (BlockId b = 0; b < cap; ++b) {
    if (parts.alive[b] == 0) {
      if (!parts.members[b].empty()) {
        return Status::Corruption("concept graph: dead block has members");
      }
      continue;
    }
    if (parts.members[b].empty()) {
      return Status::Corruption("concept graph: live block has no members");
    }
    for (NodeId v : parts.members[b]) {
      if (!g.IsValidNode(v) || cg.block_of_[v] != kInvalidBlock) {
        return Status::Corruption(
            "concept graph: partition is not a partition of V(G)");
      }
      cg.block_of_[v] = b;
    }
    member_total += parts.members[b].size();
    ++cg.num_alive_;
  }
  if (member_total != g.num_nodes()) {
    return Status::Corruption("concept graph: partition does not cover V(G)");
  }
  // The free list must be exactly the dead ids (allocation order matters,
  // so the stored order is adopted verbatim).
  std::vector<uint8_t> freed(cap, 0);
  for (BlockId b : parts.free_blocks) {
    if (b >= cap || parts.alive[b] != 0 || freed[b] != 0) {
      return Status::Corruption("concept graph: bad free list");
    }
    freed[b] = 1;
  }
  if (parts.free_blocks.size() + cg.num_alive_ != cap) {
    return Status::Corruption("concept graph: free list incomplete");
  }
  // Label index: every live block exactly once, under its own label.
  size_t indexed = 0;
  for (const auto& [label, blocks] : parts.blocks_by_label) {
    if (blocks.empty()) {
      return Status::Corruption("concept graph: empty label-index entry");
    }
    for (BlockId b : blocks) {
      if (b >= cap || parts.alive[b] == 0 || parts.block_label[b] != label) {
        return Status::Corruption("concept graph: bad label-index entry");
      }
    }
    indexed += blocks.size();
  }
  if (indexed != cg.num_alive_) {
    return Status::Corruption("concept graph: label index incomplete");
  }

  cg.members_ = std::move(parts.members);
  cg.block_label_ = std::move(parts.block_label);
  cg.alive_.assign(cap, false);
  for (BlockId b = 0; b < cap; ++b) {
    if (parts.alive[b] != 0) cg.alive_[b] = true;
  }
  cg.free_blocks_ = std::move(parts.free_blocks);
  for (auto& [label, blocks] : parts.blocks_by_label) {
    cg.blocks_by_label_[label] = std::move(blocks);
  }
  for (const auto& [label, concept_label] : parts.concept_of_label) {
    cg.concept_of_label_[label] = concept_label;
  }
  cg.dirty_flag_.assign(cap, false);
  out->push_back(std::move(cg));
  return Status::Ok();
}

BlockId ConceptGraph::BlockOf(NodeId v) const {
  OSQ_DCHECK(v < block_of_.size());
  return block_of_[v];
}

const std::vector<NodeId>& ConceptGraph::Members(BlockId b) const {
  OSQ_DCHECK(IsAlive(b));
  return members_[b];
}

LabelId ConceptGraph::BlockLabel(BlockId b) const {
  OSQ_DCHECK(IsAlive(b));
  return block_label_[b];
}

const std::vector<BlockId>& ConceptGraph::BlocksWithLabel(
    LabelId label) const {
  static const std::vector<BlockId>* const kEmpty =
      new std::vector<BlockId>();
  auto it = blocks_by_label_.find(label);
  if (it == blocks_by_label_.end()) {
    return *kEmpty;
  }
  return it->second;
}

std::vector<BlockId> ConceptGraph::AliveBlocks() const {
  std::vector<BlockId> blocks;
  blocks.reserve(num_alive_);
  for (BlockId b = 0; b < alive_.size(); ++b) {
    if (alive_[b]) blocks.push_back(b);
  }
  return blocks;
}

std::vector<BlockId> ConceptGraph::Successors(BlockId b) const {
  OSQ_DCHECK(IsAlive(b));
  OSQ_DCHECK(!members_[b].empty());
  NodeId rep = members_[b][0];
  std::vector<BlockId> succ;
  for (const AdjEntry& e : g_->OutEdges(rep)) {
    succ.push_back(block_of_[e.node]);
  }
  std::sort(succ.begin(), succ.end());
  succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  return succ;
}

std::vector<BlockId> ConceptGraph::Predecessors(BlockId b) const {
  OSQ_DCHECK(IsAlive(b));
  OSQ_DCHECK(!members_[b].empty());
  NodeId rep = members_[b][0];
  std::vector<BlockId> pred;
  for (const AdjEntry& e : g_->InEdges(rep)) {
    pred.push_back(block_of_[e.node]);
  }
  std::sort(pred.begin(), pred.end());
  pred.erase(std::unique(pred.begin(), pred.end()), pred.end());
  return pred;
}

bool ConceptGraph::HasSuccessorBlock(BlockId b, BlockId target,
                                     LabelId edge_label) const {
  OSQ_DCHECK(IsAlive(b));
  NodeId rep = members_[b][0];
  bool check_label = options_.edge_label_aware && edge_label != kInvalidLabel;
  for (const AdjEntry& e : g_->OutEdges(rep)) {
    if (block_of_[e.node] == target &&
        (!check_label || e.label == edge_label)) {
      return true;
    }
  }
  return false;
}

bool ConceptGraph::HasPredecessorBlock(BlockId b, BlockId source,
                                       LabelId edge_label) const {
  OSQ_DCHECK(IsAlive(b));
  NodeId rep = members_[b][0];
  bool check_label = options_.edge_label_aware && edge_label != kInvalidLabel;
  for (const AdjEntry& e : g_->InEdges(rep)) {
    if (block_of_[e.node] == source &&
        (!check_label || e.label == edge_label)) {
      return true;
    }
  }
  return false;
}

bool ConceptGraph::HasSuccessorInSet(BlockId b,
                                     const std::vector<bool>& member_set,
                                     LabelId edge_label) const {
  OSQ_DCHECK(IsAlive(b));
  NodeId rep = members_[b][0];
  bool check_label = options_.edge_label_aware && edge_label != kInvalidLabel;
  for (const AdjEntry& e : g_->OutEdges(rep)) {
    if (member_set[block_of_[e.node]] &&
        (!check_label || e.label == edge_label)) {
      return true;
    }
  }
  return false;
}

bool ConceptGraph::HasPredecessorInSet(BlockId b,
                                       const std::vector<bool>& member_set,
                                       LabelId edge_label) const {
  OSQ_DCHECK(IsAlive(b));
  NodeId rep = members_[b][0];
  bool check_label = options_.edge_label_aware && edge_label != kInvalidLabel;
  for (const AdjEntry& e : g_->InEdges(rep)) {
    if (member_set[block_of_[e.node]] &&
        (!check_label || e.label == edge_label)) {
      return true;
    }
  }
  return false;
}

size_t ConceptGraph::SizeNodesPlusEdges() const {
  size_t total = num_alive_;
  for (BlockId b = 0; b < alive_.size(); ++b) {
    if (alive_[b]) total += Successors(b).size();
  }
  return total;
}

void ConceptGraph::NodeSignature(NodeId v, Signature* out_sig,
                                 Signature* in_sig) const {
  out_sig->clear();
  in_sig->clear();
  for (const AdjEntry& e : g_->OutEdges(v)) {
    out_sig->push_back(EdgeKey(block_of_[e.node], e.label));
  }
  for (const AdjEntry& e : g_->InEdges(v)) {
    in_sig->push_back(EdgeKey(block_of_[e.node], e.label));
  }
  std::sort(out_sig->begin(), out_sig->end());
  out_sig->erase(std::unique(out_sig->begin(), out_sig->end()),
                 out_sig->end());
  std::sort(in_sig->begin(), in_sig->end());
  in_sig->erase(std::unique(in_sig->begin(), in_sig->end()), in_sig->end());
}

bool ConceptGraph::SplitBlock(BlockId b, std::vector<BlockId>* created) {
  if (members_[b].size() <= 1) return false;
  // Group members by their full neighborhood signature.
  std::map<std::pair<Signature, Signature>, std::vector<NodeId>> groups;
  Signature out_sig;
  Signature in_sig;
  for (NodeId v : members_[b]) {
    NodeSignature(v, &out_sig, &in_sig);
    groups[{out_sig, in_sig}].push_back(v);
  }
  if (groups.size() <= 1) return false;

  // The largest group keeps the block id to minimize downstream churn.
  auto largest = groups.begin();
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    if (it->second.size() > largest->second.size()) largest = it;
  }
  members_[b] = std::move(largest->second);
  MarkDirty(b);
  LabelId label = block_label_[b];
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    if (it == largest) continue;
    BlockId nb = NewBlock(label);
    members_[nb] = std::move(it->second);
    for (NodeId v : members_[nb]) {
      block_of_[v] = nb;
    }
    created->push_back(nb);
  }
  return true;
}

std::vector<BlockId> ConceptGraph::AllNeighborBlocks(BlockId b) const {
  std::vector<BlockId> result;
  for (NodeId v : members_[b]) {
    for (const AdjEntry& e : g_->OutEdges(v)) result.push_back(block_of_[e.node]);
    for (const AdjEntry& e : g_->InEdges(v)) result.push_back(block_of_[e.node]);
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

void ConceptGraph::RefineFrom(std::vector<BlockId> worklist,
                              std::vector<BlockId>* affected,
                              ConceptGraphStats* stats) {
  std::deque<BlockId> queue(worklist.begin(), worklist.end());
  std::vector<bool> queued(members_.size(), false);
  for (BlockId b : worklist) {
    if (b < queued.size()) queued[b] = true;
  }
  auto push = [&](BlockId b) {
    if (b >= queued.size()) queued.resize(members_.size(), false);
    if (!queued[b]) {
      queued[b] = true;
      queue.push_back(b);
    }
  };
  std::vector<BlockId> created;
  while (!queue.empty()) {
    BlockId b = queue.front();
    queue.pop_front();
    if (b < queued.size()) queued[b] = false;
    if (!IsAlive(b)) continue;
    created.clear();
    if (!SplitBlock(b, &created)) continue;
    if (stats != nullptr) stats->splits += created.size();
    affected->push_back(b);
    // The split changed the block membership seen by every neighbor of the
    // old block (and, via intra-block edges, by b and the new blocks
    // themselves) — re-examine all of them.
    push(b);
    for (BlockId nb : created) {
      affected->push_back(nb);
      push(nb);
    }
    for (BlockId nb : AllNeighborBlocks(b)) push(nb);
    for (BlockId cb : created) {
      for (BlockId nb : AllNeighborBlocks(cb)) push(nb);
    }
  }
  std::sort(affected->begin(), affected->end());
  affected->erase(std::unique(affected->begin(), affected->end()),
                  affected->end());
}

size_t ConceptGraph::MergePass(const std::vector<BlockId>& candidates,
                               ConceptGraphStats* stats) {
  size_t merges = 0;
  std::deque<BlockId> queue(candidates.begin(), candidates.end());
  while (!queue.empty()) {
    BlockId b = queue.front();
    queue.pop_front();
    if (!IsAlive(b)) continue;
    // mcondition: same concept label, same successor-block set, same
    // predecessor-block set.
    const std::vector<BlockId>& peers = BlocksWithLabel(block_label_[b]);
    if (peers.size() > options_.max_merge_peers) continue;
    std::vector<BlockId> succ_b = Successors(b);
    std::vector<BlockId> pred_b = Predecessors(b);
    BlockId target = kInvalidBlock;
    for (BlockId p : peers) {
      if (p == b || !IsAlive(p)) continue;
      if (Successors(p) == succ_b && Predecessors(p) == pred_b) {
        target = p;
        break;
      }
    }
    if (target == kInvalidBlock) continue;
    // Merge b into target.
    for (NodeId v : members_[b]) {
      block_of_[v] = target;
      members_[target].push_back(v);
    }
    members_[b].clear();
    ReleaseBlock(b);
    MarkDirty(target);
    ++merges;
    if (stats != nullptr) ++stats->merges;
    // The merge may unlock merges among the neighbors of the merged block.
    queue.push_back(target);
    for (BlockId nb : AllNeighborBlocks(target)) queue.push_back(nb);
  }
  return merges;
}

size_t ConceptGraph::RepairAroundEdge(NodeId from, NodeId to,
                                      ConceptGraphStats* stats) {
  OSQ_CHECK(from < block_of_.size() && to < block_of_.size());
  // 1. Local re-coarsening (the paper's merge side of SplitMerge): collapse
  //    all same-label blocks around the touched endpoints into one block
  //    per concept label.  Pairwise mcondition merging alone cannot undo
  //    mutually dependent splits (merging {b1,b1'} requires {b2,b2'} merged
  //    first and vice versa); collapsing then re-splitting reaches the
  //    coarsest local fixpoint directly, and is sound because merging never
  //    breaks *other* blocks' signature uniformity while the refinement
  //    below restores it for the collapsed ones.
  std::vector<BlockId> seeds = {block_of_[from], block_of_[to]};
  std::vector<LabelId> labels;
  for (BlockId b : seeds) {
    labels.push_back(block_label_[b]);
    for (BlockId nb : AllNeighborBlocks(b)) {
      labels.push_back(block_label_[nb]);
    }
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

  std::vector<BlockId> worklist;
  for (LabelId label : labels) {
    std::vector<BlockId> group = BlocksWithLabel(label);
    if (group.empty()) continue;
    if (group.size() > options_.max_coarsen_group) continue;  // too costly
    BlockId keep = group[0];
    for (size_t i = 1; i < group.size(); ++i) {
      BlockId victim = group[i];
      for (NodeId v : members_[victim]) {
        block_of_[v] = keep;
        members_[keep].push_back(v);
      }
      members_[victim].clear();
      ReleaseBlock(victim);
      if (stats != nullptr) ++stats->merges;
    }
    MarkDirty(keep);
    worklist.push_back(keep);
  }
  worklist.push_back(block_of_[from]);
  worklist.push_back(block_of_[to]);

  // 2. Split refinement back to a stable partition.
  std::vector<BlockId> affected;
  RefineFrom(worklist, &affected, stats);

  // 3. Residual pairwise merges among the touched blocks.
  std::vector<BlockId> merge_candidates = affected;
  merge_candidates.insert(merge_candidates.end(), worklist.begin(),
                          worklist.end());
  MergePass(merge_candidates, stats);

  // AFF (paper §VI): distinct blocks touched by the repair.
  affected.insert(affected.end(), worklist.begin(), worklist.end());
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  return affected.size();
}

size_t ConceptGraph::RepairAfterEdgeInsertion(NodeId from, NodeId to,
                                              ConceptGraphStats* stats) {
  return RepairAroundEdge(from, to, stats);
}

size_t ConceptGraph::RepairAfterEdgeDeletion(NodeId from, NodeId to,
                                             ConceptGraphStats* stats) {
  // Symmetric to insertion: both repairs re-establish signature uniformity
  // around the endpoints, whatever the direction of the change.
  return RepairAroundEdge(from, to, stats);
}

void ConceptGraph::RegisterNewNode(NodeId v) {
  OSQ_CHECK(g_->IsValidNode(v));
  OSQ_CHECK(v == block_of_.size());  // nodes must be registered in order
  LabelId label = g_->NodeLabel(v);
  auto it = concept_of_label_.find(label);
  LabelId concept_lbl;
  if (it != concept_of_label_.end()) {
    concept_lbl = it->second;
  } else {
    // Look for a covering concept label within Radius(beta); otherwise the
    // label becomes its own concept (same policy as Build).
    concept_lbl = label;
    uint32_t best = kInfiniteDistance;
    for (const LabelDistance& ld :
         o_->BallAround(label, sim_.Radius(options_.beta))) {
      if (ld.distance < best &&
          std::binary_search(concept_labels_.begin(), concept_labels_.end(),
                             ld.label)) {
        best = ld.distance;
        concept_lbl = ld.label;
      }
    }
    if (concept_lbl == label) {
      concept_labels_.insert(
          std::lower_bound(concept_labels_.begin(), concept_labels_.end(),
                           label),
          label);
    }
    concept_of_label_[label] = concept_lbl;
  }
  BlockId b = NewBlock(concept_lbl);
  block_of_.push_back(b);
  members_[b].push_back(v);
  // A fresh node has no edges; merge it with an existing edge-free block of
  // the same concept label if one exists.
  MergePass({b}, nullptr);
}

bool ConceptGraph::Validate() const {
  // 1. Partition well-formedness.
  if (block_of_.size() != g_->num_nodes()) return false;
  std::vector<size_t> seen(members_.size(), 0);
  for (NodeId v = 0; v < block_of_.size(); ++v) {
    BlockId b = block_of_[v];
    if (!IsAlive(b)) return false;
    ++seen[b];
  }
  size_t alive_count = 0;
  for (BlockId b = 0; b < members_.size(); ++b) {
    if (!alive_[b]) {
      if (!members_[b].empty()) return false;  // dead blocks hold no members
      continue;
    }
    ++alive_count;
    if (members_[b].empty()) return false;
    if (members_[b].size() != seen[b]) return false;
    for (NodeId v : members_[b]) {
      if (block_of_[v] != b) return false;
      // 2. Label coverage: member similar to the concept label within beta.
      if (sim_.Similarity(*o_, g_->NodeLabel(v), block_label_[b],
                          options_.beta) <= 0.0) {
        return false;
      }
    }
    // 3. Signature uniformity across members.
    Signature ref_out;
    Signature ref_in;
    NodeSignature(members_[b][0], &ref_out, &ref_in);
    Signature out_sig;
    Signature in_sig;
    for (size_t i = 1; i < members_[b].size(); ++i) {
      NodeSignature(members_[b][i], &out_sig, &in_sig);
      if (out_sig != ref_out || in_sig != ref_in) return false;
    }
  }
  if (alive_count != num_alive_) return false;
  // 4. blocks_by_label_ consistency.
  size_t by_label_total = 0;
  for (const auto& [label, blocks] : blocks_by_label_) {
    for (BlockId b : blocks) {
      if (!IsAlive(b) || block_label_[b] != label) return false;
      ++by_label_total;
    }
  }
  return by_label_total == num_alive_;
}

}  // namespace osq
