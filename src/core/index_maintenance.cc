#include "core/index_maintenance.h"

#include "common/check.h"

namespace osq {

bool ApplyUpdate(Graph* g, OntologyIndex* index, const GraphUpdate& update,
                 MaintenanceStats* stats) {
  OSQ_CHECK(g != nullptr && index != nullptr);
  OSQ_CHECK(g == &index->data_graph());
  const EdgeTriple& e = update.edge;
  bool changed;
  if (update.kind == GraphUpdate::Kind::kInsertEdge) {
    changed = g->AddEdge(e.from, e.to, e.label);
  } else {
    changed = g->RemoveEdge(e.from, e.to, e.label);
  }
  if (!changed) {
    if (stats != nullptr) ++stats->skipped;
    return false;
  }
  for (size_t i = 0; i < index->num_concept_graphs(); ++i) {
    ConceptGraph* cg = index->mutable_concept_graph(i);
    ConceptGraphStats cg_stats;
    size_t aff;
    if (update.kind == GraphUpdate::Kind::kInsertEdge) {
      aff = cg->RepairAfterEdgeInsertion(e.from, e.to, &cg_stats);
    } else {
      aff = cg->RepairAfterEdgeDeletion(e.from, e.to, &cg_stats);
    }
    if (stats != nullptr) {
      stats->aff_blocks += aff;
      stats->splits += cg_stats.splits;
      stats->merges += cg_stats.merges;
    }
  }
  // With every partition repaired, re-derive the candidate-index state the
  // update invalidated (endpoint signatures + touched block aggregates).
  index->RepairCandidateIndexAfterEdge(e.from, e.to);
  if (stats != nullptr) ++stats->applied;
  return true;
}

MaintenanceStats ApplyUpdates(Graph* g, OntologyIndex* index,
                              const std::vector<GraphUpdate>& updates) {
  MaintenanceStats stats;
  for (const GraphUpdate& u : updates) {
    ApplyUpdate(g, index, u, &stats);
  }
  return stats;
}

NodeId AddNodeWithIndex(Graph* g, OntologyIndex* index, LabelId label) {
  OSQ_CHECK(g != nullptr && index != nullptr);
  OSQ_CHECK(g == &index->data_graph());
  NodeId v = g->AddNode(label);
  index->RegisterDataLabel(label);
  for (size_t i = 0; i < index->num_concept_graphs(); ++i) {
    index->mutable_concept_graph(i)->RegisterNewNode(v);
  }
  index->RegisterNodeInCandidateIndex(v);
  return v;
}

}  // namespace osq
