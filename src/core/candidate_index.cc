#include "core/candidate_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/thread_pool.h"

namespace osq {

namespace {

// Collapses an unsorted (label, 1) run list into sorted per-label counts.
void SortAndCombine(LabelCounts* counts) {
  std::sort(counts->begin(), counts->end());
  size_t out = 0;
  for (size_t i = 0; i < counts->size();) {
    size_t j = i;
    uint32_t total = 0;
    while (j < counts->size() && (*counts)[j].first == (*counts)[i].first) {
      total += (*counts)[j].second;
      ++j;
    }
    (*counts)[out++] = {(*counts)[i].first, total};
    i = j;
  }
  counts->resize(out);
}

// acc := per-label max(acc, add); both sorted by label.
void MaxMerge(LabelCounts* acc, const LabelCounts& add) {
  LabelCounts merged;
  merged.reserve(acc->size() + add.size());
  size_t i = 0;
  size_t j = 0;
  while (i < acc->size() || j < add.size()) {
    if (j == add.size() ||
        (i < acc->size() && (*acc)[i].first < add[j].first)) {
      merged.push_back((*acc)[i++]);
    } else if (i == acc->size() || add[j].first < (*acc)[i].first) {
      merged.push_back(add[j++]);
    } else {
      merged.push_back(
          {(*acc)[i].first, std::max((*acc)[i].second, add[j].second)});
      ++i;
      ++j;
    }
  }
  *acc = std::move(merged);
}

}  // namespace

uint32_t CandidateIndex::PairBit(LabelId edge_label, LabelId node_label) {
  // splitmix64-style finalizer over the packed pair; top-quality avalanche
  // is overkill, but it is cheap and keeps the 64 buckets well spread for
  // the small dense label ids the dictionary hands out.
  uint64_t x =
      (static_cast<uint64_t>(edge_label) << 32) | static_cast<uint64_t>(node_label);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<uint32_t>(x & 63);
}

SignatureRequirement BuildSignatureRequirement(
    const Graph& query, NodeId u,
    const std::vector<std::unordered_map<LabelId, double>>& label_sims) {
  SignatureRequirement req;
  for (const AdjEntry& e : query.OutEdges(u)) {
    uint64_t mask = 0;
    // OR is commutative, so the unordered iteration cannot make the mask
    // nondeterministic.
    for (const auto& [label, unused_sim] : label_sims[e.node]) {
      mask |= uint64_t{1} << CandidateIndex::PairBit(e.label, label);
    }
    req.out_masks.push_back({e.label, mask});
    req.out_counts.push_back({e.label, 1});
  }
  for (const AdjEntry& e : query.InEdges(u)) {
    uint64_t mask = 0;
    for (const auto& [label, unused_sim] : label_sims[e.node]) {
      mask |= uint64_t{1} << CandidateIndex::PairBit(e.label, label);
    }
    req.in_masks.push_back({e.label, mask});
    req.in_counts.push_back({e.label, 1});
  }
  SortAndCombine(&req.out_counts);
  SortAndCombine(&req.in_counts);
  return req;
}

NodeSignature CandidateIndex::ComputeNodeSignature(const Graph& g,
                                                   NodeId v) const {
  NodeSignature sig;
  for (const AdjEntry& e : g.OutEdges(v)) {
    sig.out_bits |= uint64_t{1} << PairBit(e.label, g.NodeLabel(e.node));
    sig.out_counts.push_back({e.label, 1});
  }
  for (const AdjEntry& e : g.InEdges(v)) {
    sig.in_bits |= uint64_t{1} << PairBit(e.label, g.NodeLabel(e.node));
    sig.in_counts.push_back({e.label, 1});
  }
  SortAndCombine(&sig.out_counts);
  SortAndCombine(&sig.in_counts);
  return sig;
}

BlockSignature CandidateIndex::ComputeBlockSignature(const Graph& g,
                                                     const ConceptGraph& cg,
                                                     BlockId b) const {
  BlockSignature bs;
  for (NodeId v : cg.Members(b)) {
    const NodeSignature& ns = node_sigs_[v];
    bs.out_bits |= ns.out_bits;
    bs.in_bits |= ns.in_bits;
    bs.member_labels.push_back(g.NodeLabel(v));
    MaxMerge(&bs.max_out_counts, ns.out_counts);
    MaxMerge(&bs.max_in_counts, ns.in_counts);
  }
  std::sort(bs.member_labels.begin(), bs.member_labels.end());
  bs.member_labels.erase(
      std::unique(bs.member_labels.begin(), bs.member_labels.end()),
      bs.member_labels.end());
  return bs;
}

CandidateIndex CandidateIndex::Build(const Graph& g,
                                     const std::vector<ConceptGraph>& graphs,
                                     size_t num_threads) {
  CandidateIndex index;
  index.node_sigs_.resize(g.num_nodes());
  ParallelFor(num_threads, g.num_nodes(), [&](size_t v) {
    index.node_sigs_[v] =
        index.ComputeNodeSignature(g, static_cast<NodeId>(v));
  });
  index.per_graph_.resize(graphs.size());
  ParallelFor(num_threads, graphs.size(), [&](size_t i) {
    const ConceptGraph& cg = graphs[i];
    PerGraph& pg = index.per_graph_[i];
    pg.blocks.assign(cg.block_capacity(), BlockSignature{});
    pg.bits.assign(cg.block_capacity(), {0, 0});
    // Ascending block ids keep every inverted list sorted by construction.
    for (BlockId b : cg.AliveBlocks()) {
      pg.blocks[b] = index.ComputeBlockSignature(g, cg, b);
      pg.bits[b] = {pg.blocks[b].out_bits, pg.blocks[b].in_bits};
      for (LabelId label : pg.blocks[b].member_labels) {
        pg.blocks_by_member_label[label].push_back(b);
      }
    }
  });
  return index;
}

CandidateIndex::SnapshotParts CandidateIndex::ExportSnapshotParts() const {
  SnapshotParts parts;
  parts.node_sigs = node_sigs_;
  parts.per_graph_blocks.reserve(per_graph_.size());
  for (const PerGraph& pg : per_graph_) {
    parts.per_graph_blocks.push_back(pg.blocks);
  }
  return parts;
}

CandidateIndex CandidateIndex::FromSnapshotParts(SnapshotParts parts) {
  CandidateIndex index;
  index.node_sigs_ = std::move(parts.node_sigs);
  index.per_graph_.resize(parts.per_graph_blocks.size());
  for (size_t i = 0; i < parts.per_graph_blocks.size(); ++i) {
    PerGraph& pg = index.per_graph_[i];
    pg.blocks = std::move(parts.per_graph_blocks[i]);
    pg.bits.reserve(pg.blocks.size());
    // Ascending block ids keep every inverted list sorted, matching Build.
    for (BlockId b = 0; b < pg.blocks.size(); ++b) {
      const BlockSignature& bs = pg.blocks[b];
      pg.bits.emplace_back(bs.out_bits, bs.in_bits);
      for (LabelId label : bs.member_labels) {
        pg.blocks_by_member_label[label].push_back(b);
      }
    }
  }
  return index;
}

const std::vector<BlockId>& CandidateIndex::BlocksWithMemberLabel(
    size_t graph_index, LabelId label) const {
  static const std::vector<BlockId>* const kEmpty =
      new std::vector<BlockId>();
  const PerGraph& pg = per_graph_[graph_index];
  auto it = pg.blocks_by_member_label.find(label);
  if (it == pg.blocks_by_member_label.end()) {
    return *kEmpty;
  }
  return it->second;
}

void CandidateIndex::OnEdgeChanged(const Graph& g, NodeId from, NodeId to) {
  OSQ_CHECK(from < node_sigs_.size() && to < node_sigs_.size());
  node_sigs_[from] = ComputeNodeSignature(g, from);
  node_sigs_[to] = ComputeNodeSignature(g, to);
}

void CandidateIndex::OnNodeAdded(const Graph& g, NodeId v) {
  OSQ_CHECK(v == node_sigs_.size());  // ids are dense and registered in order
  node_sigs_.push_back(ComputeNodeSignature(g, v));
}

void CandidateIndex::RepairBlocks(size_t graph_index, const Graph& g,
                                  const ConceptGraph& cg,
                                  const std::vector<BlockId>& dirty) {
  PerGraph& pg = per_graph_[graph_index];
  if (pg.blocks.size() < cg.block_capacity()) {
    pg.blocks.resize(cg.block_capacity());
    pg.bits.resize(cg.block_capacity(), {0, 0});
  }
  for (BlockId b : dirty) {
    OSQ_CHECK(b < pg.blocks.size());
    // Unhook the stale signature from the inverted index, erasing lists
    // that empty out so the structure stays identical to a fresh build.
    for (LabelId label : pg.blocks[b].member_labels) {
      auto it = pg.blocks_by_member_label.find(label);
      OSQ_CHECK(it != pg.blocks_by_member_label.end());
      auto pos = std::lower_bound(it->second.begin(), it->second.end(), b);
      OSQ_CHECK(pos != it->second.end() && *pos == b);
      it->second.erase(pos);
      if (it->second.empty()) {
        pg.blocks_by_member_label.erase(it);
      }
    }
    if (!cg.IsAlive(b)) {
      pg.blocks[b] = BlockSignature{};
      pg.bits[b] = {0, 0};
      continue;
    }
    pg.blocks[b] = ComputeBlockSignature(g, cg, b);
    pg.bits[b] = {pg.blocks[b].out_bits, pg.blocks[b].in_bits};
    for (LabelId label : pg.blocks[b].member_labels) {
      std::vector<BlockId>& list = pg.blocks_by_member_label[label];
      list.insert(std::lower_bound(list.begin(), list.end(), b), b);
    }
  }
}

}  // namespace osq
