// Persistence for the ontology index.
//
// The index is "computed once for all" (paper §III), so a long-lived
// deployment saves it next to the data graph and reloads it at startup
// instead of rebuilding.  The text format references data nodes by id and
// labels by NAME, so an index file is valid for exactly the graph file it
// was built from, loaded through any dictionary:
//
//   # osq index v1
//   options <model> <base> <cutoff> <beta> <N> <clusters> <seed> <aware01>
//   candidateindex <#nodes> <#edges> <content-hash>
//   conceptgraph <i> <#concepts> <#blocks>
//   concepts <name>...
//   block <label-name> <#members> <node-id>...
//
// The candidateindex record pins the file to the data graph it was saved
// over (GraphContentHash); loading against a different graph fails with
// InvalidArgument before any partition record is trusted.  Files written
// without the record (older v1) still load.  The candidate-pruning index
// itself is derived data and is rebuilt from the restored partitions.
//
// LoadIndexFromFile additionally re-validates the partition invariants
// against the provided graph/ontology and fails with Corruption on any
// mismatch, so a stale index cannot silently serve wrong filters.

#ifndef OSQ_CORE_INDEX_IO_H_
#define OSQ_CORE_INDEX_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "core/ontology_index.h"
#include "graph/label_dictionary.h"

namespace osq {

[[nodiscard]] Status SaveIndex(const OntologyIndex& index,
                               const LabelDictionary& dict, std::ostream* out);
[[nodiscard]] Status SaveIndexToFile(const OntologyIndex& index,
                                     const LabelDictionary& dict,
                                     const std::string& path);

// Loads an index previously saved for (g, o).  `g` and `o` must outlive
// the result.  Fails with Corruption when the file does not describe a
// valid concept-graph partition of `g`.
[[nodiscard]] Status LoadIndex(std::istream* in, const Graph& g,
                               const OntologyGraph& o, LabelDictionary* dict,
                               OntologyIndex* out);
[[nodiscard]] Status LoadIndexFromFile(const std::string& path, const Graph& g,
                                       const OntologyGraph& o,
                                       LabelDictionary* dict,
                                       OntologyIndex* out);

}  // namespace osq

#endif  // OSQ_CORE_INDEX_IO_H_
