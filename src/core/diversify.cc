#include "core/diversify.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"

namespace osq {

std::vector<Match> DiversifyMatches(const std::vector<Match>& ranked,
                                    size_t k, double lambda) {
  std::vector<Match> selected;
  if (ranked.empty() || k == 0) return selected;
  lambda = std::clamp(lambda, 0.0, 1.0);
  if (lambda == 0.0) {
    // Plain top-k prefix.
    size_t take = std::min(k, ranked.size());
    selected.assign(ranked.begin(), ranked.begin() + take);
    return selected;
  }

  double max_score = ranked.front().score;
  for (const Match& m : ranked) {
    max_score = std::max(max_score, m.score);
  }
  if (max_score <= 0.0) max_score = 1.0;
  size_t query_size = ranked.front().mapping.size();
  OSQ_CHECK(query_size > 0);

  std::vector<bool> used(ranked.size(), false);
  std::unordered_set<NodeId> covered;
  while (selected.size() < k) {
    size_t best = ranked.size();
    double best_gain = -1.0;
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (used[i]) continue;
      size_t fresh = 0;
      for (NodeId v : ranked[i].mapping) {
        if (covered.count(v) == 0) ++fresh;
      }
      double gain = (1.0 - lambda) * ranked[i].score / max_score +
                    lambda * static_cast<double>(fresh) /
                        static_cast<double>(query_size);
      if (gain > best_gain + 1e-15) {
        best_gain = gain;
        best = i;
      }
    }
    if (best == ranked.size()) break;
    used[best] = true;
    for (NodeId v : ranked[best].mapping) {
      covered.insert(v);
    }
    selected.push_back(ranked[best]);
  }
  return selected;
}

double MatchDiversity(const std::vector<Match>& matches) {
  if (matches.empty() || matches.front().mapping.empty()) return 0.0;
  std::unordered_set<NodeId> distinct;
  size_t slots = 0;
  for (const Match& m : matches) {
    slots += m.mapping.size();
    for (NodeId v : m.mapping) {
      distinct.insert(v);
    }
  }
  return static_cast<double>(distinct.size()) / static_cast<double>(slots);
}

}  // namespace osq
