// The filtering phase of the framework — algorithm Gview (paper §IV-B).
//
// Instead of matching the query against the whole data graph, Gview uses
// the ontology index to extract a small subgraph G_v that provably contains
// every match (Prop. 4.2): if G_v is empty then Q(G) is empty, otherwise
// Q(G) = Q(G_v).
//
// Per concept graph G_o in the index:
//   1. *Lazy* candidate initialization: a block b is a candidate for query
//      node u when dist_O(L_q(u), label(b)) <= Radius(theta) + Radius(beta)
//      — correct because any data node v matching u satisfies
//      dist(L_q(u), L(v)) <= Radius(theta) and v's block label satisfies
//      dist(L(v), label(b)) <= Radius(beta), so the triangle inequality
//      bounds the concept-label distance.  (An ablation option replaces
//      this with exact per-node candidate computation.)
//   2. Fixpoint refinement: a candidate block of u is dropped when some
//      query edge (u, u') has no corresponding block edge into (resp. from)
//      a candidate of u' — sound because the concept-graph invariant makes
//      one member representative for the whole block.
//   3. mat(u) is intersected across concept graphs.
// Finally the surviving data nodes are checked against the *exact*
// similarity threshold theta and G_v is materialized as the induced
// subgraph of their union, with per-query-node candidate lists annotated
// with similarities (consumed by KMatch).

#ifndef OSQ_CORE_FILTERING_H_
#define OSQ_CORE_FILTERING_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "core/ontology_index.h"
#include "core/options.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/types.h"
#include "ontology/ontology_graph.h"
#include "ontology/similarity.h"

namespace osq {

struct FilterStats {
  // Candidate blocks right after lazy initialization, summed over query
  // nodes and concept graphs.
  size_t initial_blocks = 0;
  // Candidate blocks dropped by the fixpoint refinement.
  size_t pruned_blocks = 0;
  // Data-node candidates dropped by the node-level refinement fixpoint.
  size_t pruned_nodes = 0;
  // Candidate blocks / data nodes rejected up front by the precomputed
  // neighborhood signatures (core/candidate_index.h); zero when
  // QueryOptions::use_candidate_index is off.
  size_t sig_block_rejections = 0;
  size_t sig_node_rejections = 0;
  // Pivot candidate blocks / data nodes dropped by a PivotRestriction
  // (sharded serving); zero for unrestricted runs.
  size_t pivot_restricted_blocks = 0;
  size_t pivot_restricted_nodes = 0;
  // Size of the extracted G_v.
  size_t gv_nodes = 0;
  size_t gv_edges = 0;
  // Non-kNone when a deadline or cancellation interrupted a refinement
  // fixpoint.  The filter result is then an over-approximation: G_v still
  // contains every true match (pruning is lossless at any prefix of the
  // fixpoint), it is just larger than the fully refined extract, so
  // downstream KMatch output stays sound.
  StopReason stopped = StopReason::kNone;
};

// One data-node candidate for a query node, with its exact similarity.
struct Candidate {
  NodeId node;  // id in G_v (see FilterResult::gv)
  double sim;   // sim(L_q(u), L(node)) >= theta
};

struct FilterResult {
  // True when the filter proved Q(G) empty; all other fields are empty.
  bool no_match = false;
  // The extracted subgraph G_v, with mappings to original node ids.
  Subgraph gv;
  // candidates[u] lists the G_v nodes that may match query node u, sorted
  // by descending similarity (ties: ascending node id).
  std::vector<std::vector<Candidate>> candidates;
  FilterStats stats;
};

// Optional pivot-seed restriction for sharded serving (shard/): candidates
// of `query_node` are limited to data nodes v with allowed[v] != 0, applied
// BEFORE both refinement fixpoints — candidate blocks of the pivot with no
// allowed member are dropped at seeding time, and disallowed data nodes are
// dropped at the exact-theta step.  Refinement then propagates the cut to
// the other query nodes, so per-shard filtering cost scales with the
// shard's partition instead of re-deriving the full candidate sets.
//
// Soundness: for any match M with allowed M[query_node], every node of M
// survives (M[query_node] sits in an allowed block and clears theta; the
// fixpoints never prune a block/node all of whose match images remain), so
// the restricted G_v contains every match whose pivot is allowed.  KMatch's
// exact-top-K contract then makes the output the true top-K of that match
// partition — the property the shard merge relies on for bit-identity.
struct PivotRestriction {
  NodeId query_node = 0;
  // Data-node id -> allowed; ids at or beyond size() are disallowed.
  const std::vector<char>* allowed = nullptr;
};

// Precomputed per-query-node label-similarity tables — the ontology-ball
// stage of Gview, which depends only on (ontology, similarity function,
// query, theta), NOT on the data graph.  Engines sharing those inputs can
// share one table set: the sharded coordinator computes it once per
// request and every shard reuses it, so query preprocessing stays O(1) in
// the shard count.  GviewFilter still drops labels absent from ITS data
// graph per call, so the filtered tables are bit-identical to the ones it
// would have computed itself.
struct QuerySimTables {
  double theta = 0.0;  // must equal QueryOptions::theta at use time
  // sims[u]: data label -> sim(L_q(u), label) >= theta, unfiltered by
  // data-graph occurrence.
  std::vector<std::unordered_map<LabelId, double>> sims;
};

// Computes QuerySimTables for `query` (one ontology ball per query node).
[[nodiscard]] QuerySimTables ComputeQuerySimTables(
    const OntologyGraph& ontology, const SimilarityFunction& sim,
    const Graph& query, double theta);

// Runs Gview for `query` over the index.  `query` must be a valid query
// graph (see ValidateQuery); options.theta in (0, 1].
//
// With options.use_candidate_index (default), the precomputed neighborhood
// signatures (core/candidate_index.h) seed the block fixpoint with exactly
// the blocks holding a theta-passing member and pre-reject candidates whose
// signature cannot satisfy some incident query edge.  The returned matches
// downstream are bit-identical either way; the candidate sets and G_v with
// the index on are subsets of the index-off ones (still supersets of every
// match node — Prop. 4.2 is preserved).
//
// With options.num_threads > 1 the per-concept-graph refinement and the
// per-query-node candidate stages run on the shared thread pool; every
// merge happens in index order, so the result (including stats) is
// identical for any thread count.
//
// `exec` (optional) carries the query's deadline / cancellation state.
// The two refinement fixpoints — block-level and node-level, the only
// super-linear stages — poll it cooperatively and, when it fires, stop
// refining and keep the current (over-approximate but sound) candidate
// sets, with stats.stopped recording why.  The linear stages always run
// to completion.  A stopped filter result is timing-dependent; the
// thread-count determinism contract applies only to runs that complete.
//
// `restriction` (optional) applies the pivot-seed restriction documented
// on PivotRestriction above; restriction->query_node must be a node of
// `query`.
//
// `shared_sims` (optional) supplies precomputed label-similarity tables
// (see QuerySimTables); they must have been computed for this `query` on
// this index's ontology/similarity function with options.theta.  Results
// are bit-identical with or without them.
[[nodiscard]] FilterResult GviewFilter(
    const OntologyIndex& index, const Graph& query,
    const QueryOptions& options, const ExecControl* exec = nullptr,
    const PivotRestriction* restriction = nullptr,
    const QuerySimTables* shared_sims = nullptr);

}  // namespace osq

#endif  // OSQ_CORE_FILTERING_H_
