// The filtering phase of the framework — algorithm Gview (paper §IV-B).
//
// Instead of matching the query against the whole data graph, Gview uses
// the ontology index to extract a small subgraph G_v that provably contains
// every match (Prop. 4.2): if G_v is empty then Q(G) is empty, otherwise
// Q(G) = Q(G_v).
//
// Per concept graph G_o in the index:
//   1. *Lazy* candidate initialization: a block b is a candidate for query
//      node u when dist_O(L_q(u), label(b)) <= Radius(theta) + Radius(beta)
//      — correct because any data node v matching u satisfies
//      dist(L_q(u), L(v)) <= Radius(theta) and v's block label satisfies
//      dist(L(v), label(b)) <= Radius(beta), so the triangle inequality
//      bounds the concept-label distance.  (An ablation option replaces
//      this with exact per-node candidate computation.)
//   2. Fixpoint refinement: a candidate block of u is dropped when some
//      query edge (u, u') has no corresponding block edge into (resp. from)
//      a candidate of u' — sound because the concept-graph invariant makes
//      one member representative for the whole block.
//   3. mat(u) is intersected across concept graphs.
// Finally the surviving data nodes are checked against the *exact*
// similarity threshold theta and G_v is materialized as the induced
// subgraph of their union, with per-query-node candidate lists annotated
// with similarities (consumed by KMatch).

#ifndef OSQ_CORE_FILTERING_H_
#define OSQ_CORE_FILTERING_H_

#include <cstddef>
#include <vector>

#include "common/deadline.h"
#include "core/ontology_index.h"
#include "core/options.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/types.h"

namespace osq {

struct FilterStats {
  // Candidate blocks right after lazy initialization, summed over query
  // nodes and concept graphs.
  size_t initial_blocks = 0;
  // Candidate blocks dropped by the fixpoint refinement.
  size_t pruned_blocks = 0;
  // Data-node candidates dropped by the node-level refinement fixpoint.
  size_t pruned_nodes = 0;
  // Candidate blocks / data nodes rejected up front by the precomputed
  // neighborhood signatures (core/candidate_index.h); zero when
  // QueryOptions::use_candidate_index is off.
  size_t sig_block_rejections = 0;
  size_t sig_node_rejections = 0;
  // Size of the extracted G_v.
  size_t gv_nodes = 0;
  size_t gv_edges = 0;
  // Non-kNone when a deadline or cancellation interrupted a refinement
  // fixpoint.  The filter result is then an over-approximation: G_v still
  // contains every true match (pruning is lossless at any prefix of the
  // fixpoint), it is just larger than the fully refined extract, so
  // downstream KMatch output stays sound.
  StopReason stopped = StopReason::kNone;
};

// One data-node candidate for a query node, with its exact similarity.
struct Candidate {
  NodeId node;  // id in G_v (see FilterResult::gv)
  double sim;   // sim(L_q(u), L(node)) >= theta
};

struct FilterResult {
  // True when the filter proved Q(G) empty; all other fields are empty.
  bool no_match = false;
  // The extracted subgraph G_v, with mappings to original node ids.
  Subgraph gv;
  // candidates[u] lists the G_v nodes that may match query node u, sorted
  // by descending similarity (ties: ascending node id).
  std::vector<std::vector<Candidate>> candidates;
  FilterStats stats;
};

// Runs Gview for `query` over the index.  `query` must be a valid query
// graph (see ValidateQuery); options.theta in (0, 1].
//
// With options.use_candidate_index (default), the precomputed neighborhood
// signatures (core/candidate_index.h) seed the block fixpoint with exactly
// the blocks holding a theta-passing member and pre-reject candidates whose
// signature cannot satisfy some incident query edge.  The returned matches
// downstream are bit-identical either way; the candidate sets and G_v with
// the index on are subsets of the index-off ones (still supersets of every
// match node — Prop. 4.2 is preserved).
//
// With options.num_threads > 1 the per-concept-graph refinement and the
// per-query-node candidate stages run on the shared thread pool; every
// merge happens in index order, so the result (including stats) is
// identical for any thread count.
//
// `exec` (optional) carries the query's deadline / cancellation state.
// The two refinement fixpoints — block-level and node-level, the only
// super-linear stages — poll it cooperatively and, when it fires, stop
// refining and keep the current (over-approximate but sound) candidate
// sets, with stats.stopped recording why.  The linear stages always run
// to completion.  A stopped filter result is timing-dependent; the
// thread-count determinism contract applies only to runs that complete.
[[nodiscard]] FilterResult GviewFilter(const OntologyIndex& index,
                                       const Graph& query,
                                       const QueryOptions& options,
                                       const ExecControl* exec = nullptr);

}  // namespace osq

#endif  // OSQ_CORE_FILTERING_H_
