#include "core/filtering.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"
#include "core/candidate_index.h"
#include "ontology/ontology_graph.h"

namespace osq {

namespace {

// Exact candidate-label table for one query node: every data label within
// Radius(theta) of the query label, with its similarity.
std::unordered_map<LabelId, double> ExactLabelSims(
    const OntologyGraph& o, const SimilarityFunction& sim, LabelId query_label,
    double theta) {
  std::unordered_map<LabelId, double> sims;
  for (const LabelDistance& ld : o.BallAround(query_label, sim.Radius(theta))) {
    sims.emplace(ld.label, sim.SimAtDistance(ld.distance));
  }
  // A query label absent from the ontology can still match identical data
  // labels (sim == 1 by definition).
  sims.emplace(query_label, 1.0);
  return sims;
}

// All ontology labels within `radius` of any label in `sources` (labels
// missing from the ontology contribute only themselves).
std::vector<LabelId> MultiSourceBall(const OntologyGraph& o,
                                     const std::unordered_map<LabelId, double>&
                                         sources,
                                     uint32_t radius) {
  std::vector<LabelId> result;
  std::unordered_map<LabelId, uint32_t> dist;
  std::deque<LabelId> queue;
  for (const auto& [label, unused_sim] : sources) {
    if (dist.emplace(label, 0).second) {
      result.push_back(label);
      queue.push_back(label);
    }
  }
  while (!queue.empty()) {
    LabelId l = queue.front();
    queue.pop_front();
    uint32_t d = dist[l];
    if (d >= radius) continue;
    for (LabelId m : o.Neighbors(l)) {
      if (dist.emplace(m, d + 1).second) {
        result.push_back(m);
        queue.push_back(m);
      }
    }
  }
  return result;
}

// Candidate block sets for every query node in one concept graph, or
// empty-optional-style failure (returns false) when some query node has no
// candidate block after refinement.  `cindex` non-null switches the
// initialization to the signature index: seed from the inverted
// member-label lists (exactly the blocks holding a theta-passing member)
// and pre-reject blocks whose aggregate signature cannot satisfy the
// query node's incident edges (`reqs[u]`).
bool BlockCandidates(const ConceptGraph& cg, const OntologyGraph& o,
                     const SimilarityFunction& sim, const Graph& query,
                     const QueryOptions& options,
                     const std::vector<std::unordered_map<LabelId, double>>&
                         exact_label_sims,
                     const CandidateIndex* cindex, size_t graph_index,
                     const std::vector<SignatureRequirement>& reqs,
                     const std::vector<std::vector<LabelId>>& sim_labels,
                     const ExecControl* exec,
                     const PivotRestriction* restriction,
                     std::vector<std::vector<BlockId>>* out,
                     FilterStats* stats) {
  size_t nq = query.num_nodes();
  std::vector<std::vector<BlockId>> can(nq);
  // in_can[u] is a dense membership bitmap over block ids.
  std::vector<std::vector<bool>> in_can(nq);

  for (NodeId u = 0; u < nq; ++u) {
    LabelId ql = query.NodeLabel(u);
    in_can[u].assign(cg.block_capacity(), false);
    auto add_block = [&](BlockId b) {
      if (!in_can[u][b]) {
        in_can[u][b] = true;
        can[u].push_back(b);
      }
    };
    if (cindex != nullptr) {
      // Signature-indexed initialization: the inverted index yields the
      // exact-ablation block set (blocks with a theta-passing member)
      // without scanning members, and the block signature rejects blocks
      // none of whose members can satisfy u's incident query edges.
      // `seen` (not in_can!) dedups across labels — in_can must hold only
      // admitted blocks, since the fixpoint reads it as the membership
      // set of the opposite endpoint.
      std::vector<bool> seen(cg.block_capacity(), false);
      for (LabelId l : sim_labels[u]) {
        for (BlockId b : cindex->BlocksWithMemberLabel(graph_index, l)) {
          if (seen[b]) continue;
          seen[b] = true;
          if (cindex->BlockPasses(graph_index, b, reqs[u])) {
            add_block(b);
          } else {
            ++stats->sig_block_rejections;
          }
        }
      }
    } else if (options.lazy_candidates) {
      // Lazy strategy (paper, Gview line 4): candidate blocks are found by
      // label distance alone, never by scanning members.  The paper admits
      // every block whose concept label is within Radius(theta) +
      // Radius(beta) of the query label; we use the (tighter, still lazy)
      // equivalent test "within Radius(beta) of some exact candidate
      // label", which is a subset by the triangle inequality yet still
      // contains every block holding a true candidate.
      for (LabelId l : MultiSourceBall(o, exact_label_sims[u],
                                       sim.Radius(cg.beta()))) {
        for (BlockId b : cg.BlocksWithLabel(l)) add_block(b);
      }
      // Uncovered labels group under themselves (see ConceptGraph::Build).
      for (BlockId b : cg.BlocksWithLabel(ql)) add_block(b);
    } else {
      // Exact (ablation): only blocks holding at least one node whose label
      // clears theta.  Costs a scan of block members.
      const auto& sims = exact_label_sims[u];
      for (BlockId b : cg.AliveBlocks()) {
        for (NodeId v : cg.Members(b)) {
          if (sims.count(cg.data_graph().NodeLabel(v)) > 0) {
            add_block(b);
            break;
          }
        }
      }
    }
    stats->initial_blocks += can[u].size();
    if (can[u].empty()) return false;
  }

  // Pivot-seed restriction (sharded serving): drop pivot candidate blocks
  // with no allowed member before the fixpoint, so refinement propagates
  // the shard's cut to every other query node instead of re-deriving the
  // full single-engine candidate sets.  One member scan per seeded pivot
  // block; sound because a block without an allowed member can never hold
  // an allowed pivot image (see PivotRestriction in the header).
  if (restriction != nullptr && restriction->allowed != nullptr &&
      restriction->query_node < nq) {
    const std::vector<char>& allowed = *restriction->allowed;
    NodeId u = restriction->query_node;
    std::vector<BlockId>& list = can[u];
    size_t kept = 0;
    for (BlockId b : list) {
      bool any = false;
      for (NodeId v : cg.Members(b)) {
        if (v < allowed.size() && allowed[v] != 0) {
          any = true;
          break;
        }
      }
      if (any) {
        list[kept++] = b;
      } else {
        in_can[u][b] = false;
        ++stats->pivot_restricted_blocks;
      }
    }
    list.resize(kept);
    if (list.empty()) return false;
  }

  // Fixpoint refinement over query edges (paper, Gview lines 5-10): drop a
  // candidate block when a query edge has no corresponding block edge.
  // The fixpoint is the one super-linear stage here, so it polls the
  // deadline/cancel state per examined block; an interrupted fixpoint
  // keeps the current candidate sets — a sound over-approximation, since
  // any prefix of the pruning sequence only removed impossible blocks.
  CancelCheck check(exec);
  // The query's edge list is loop-invariant; materialize it once, not per
  // fixpoint pass.
  std::vector<EdgeTriple> qedges = query.EdgeList();
  bool changed = true;
  while (changed && !check.Stop()) {
    changed = false;
    for (const EdgeTriple& e : qedges) {
      NodeId q1 = e.from;
      NodeId q2 = e.to;
      // Forward: each candidate of q1 needs a successor block in can[q2].
      auto prune = [&](NodeId holder, NodeId other, bool forward) {
        std::vector<BlockId>& list = can[holder];
        size_t kept = 0;
        for (size_t i = 0; i < list.size(); ++i) {
          BlockId b = list[i];
          if (check.Stop()) {
            // Keep this and every not-yet-examined block.
            for (; i < list.size(); ++i) list[kept++] = list[i];
            break;
          }
          // Honor the query edge label when the index is label-aware.
          bool ok = forward
                        ? cg.HasSuccessorInSet(b, in_can[other], e.label)
                        : cg.HasPredecessorInSet(b, in_can[other], e.label);
          if (ok) {
            list[kept++] = b;
          } else {
            in_can[holder][b] = false;
            ++stats->pruned_blocks;
            changed = true;
          }
        }
        list.resize(kept);
      };
      prune(q1, q2, /*forward=*/true);
      if (can[q1].empty()) return false;
      prune(q2, q1, /*forward=*/false);
      if (can[q2].empty()) return false;
      if (check.reason() != StopReason::kNone) break;
    }
  }
  stats->stopped = MergeStopReason(stats->stopped, check.reason());
  *out = std::move(can);
  return true;
}

}  // namespace

QuerySimTables ComputeQuerySimTables(const OntologyGraph& ontology,
                                     const SimilarityFunction& sim,
                                     const Graph& query, double theta) {
  QuerySimTables tables;
  tables.theta = theta;
  size_t nq = query.num_nodes();
  tables.sims.resize(nq);
  for (NodeId u = 0; u < nq; ++u) {
    tables.sims[u] = ExactLabelSims(ontology, sim, query.NodeLabel(u), theta);
  }
  return tables;
}

FilterResult GviewFilter(const OntologyIndex& index, const Graph& query,
                         const QueryOptions& options, const ExecControl* exec,
                         const PivotRestriction* restriction,
                         const QuerySimTables* shared_sims) {
  FilterResult result;
  const Graph& g = index.data_graph();
  const OntologyGraph& o = index.ontology();
  const SimilarityFunction& sim = index.sim();
  size_t nq = query.num_nodes();
  OSQ_CHECK(nq > 0);
  size_t num_threads = ResolveNumThreads(options.num_threads);

  // Every parallel stage below computes strictly per-index state and merges
  // it in index order, so the result (including stats) is identical for any
  // thread count.

  // Exact candidate-label tables are needed for final pruning (and for the
  // non-lazy ablation); one ontology ball per query node.  Labels carried
  // by no data node cannot produce candidates and are dropped immediately,
  // which also tightens the lazy block selection below.
  // A caller-supplied table set skips the ontology balls (the sharded
  // coordinator computes them once per request); the per-index occurrence
  // filter below still runs either way, so the tables end up identical.
  OSQ_CHECK(shared_sims == nullptr ||
            (shared_sims->theta == options.theta &&
             shared_sims->sims.size() == nq));
  std::vector<std::unordered_map<LabelId, double>> exact_label_sims(nq);
  ParallelFor(num_threads, nq, [&](size_t u) {
    std::unordered_map<LabelId, double> sims =
        shared_sims != nullptr
            ? shared_sims->sims[u]
            : ExactLabelSims(o, sim, query.NodeLabel(static_cast<NodeId>(u)),
                             options.theta);
    for (auto it = sims.begin(); it != sims.end();) {
      if (index.LabelOccursInData(it->first)) {
        ++it;
      } else {
        it = sims.erase(it);
      }
    }
    exact_label_sims[u] = std::move(sims);
  });
  for (NodeId u = 0; u < nq; ++u) {
    if (exact_label_sims[u].empty()) {
      result.no_match = true;
      return result;
    }
  }

  // Signature-index plumbing: per query node, the requirement its matches'
  // signatures must satisfy, plus the sorted theta-passing label list used
  // to walk the inverted block index.
  const CandidateIndex* cindex =
      options.use_candidate_index ? &index.candidate_index() : nullptr;
  std::vector<SignatureRequirement> reqs(nq);
  std::vector<std::vector<LabelId>> sim_labels(nq);
  if (cindex != nullptr) {
    ParallelFor(num_threads, nq, [&](size_t u) {
      reqs[u] = BuildSignatureRequirement(query, static_cast<NodeId>(u),
                                          exact_label_sims);
      for (const auto& [label, unused_sim] : exact_label_sims[u]) {
        sim_labels[u].push_back(label);
      }
      std::sort(sim_labels[u].begin(), sim_labels[u].end());
    });
  }

  // Per concept graph: candidate blocks plus their member lists, computed
  // in parallel (the refinement fixpoint of one concept graph is
  // independent of every other graph's).  The intersection across graphs
  // and the stats merge then run sequentially in graph order, preserving
  // the exact sequential semantics — including the partial stats of the
  // first graph that proves emptiness.
  size_t ng = index.num_concept_graphs();
  struct PerGraph {
    bool ok = false;
    std::vector<std::vector<NodeId>> nodes;  // per query node, sorted
    FilterStats stats;
  };
  std::vector<PerGraph> per_graph(ng);
  auto compute_graph = [&](size_t i) {
    const ConceptGraph& cg = index.concept_graph(i);
    PerGraph& pg = per_graph[i];
    std::vector<std::vector<BlockId>> can;
    pg.ok = BlockCandidates(cg, o, sim, query, options, exact_label_sims,
                            cindex, i, reqs, sim_labels, exec, restriction,
                            &can, &pg.stats);
    if (!pg.ok) return;
    pg.nodes.resize(nq);
    for (NodeId u = 0; u < nq; ++u) {
      std::vector<NodeId>& nodes = pg.nodes[u];
      for (BlockId b : can[u]) {
        const std::vector<NodeId>& ms = cg.Members(b);
        nodes.insert(nodes.end(), ms.begin(), ms.end());
      }
      std::sort(nodes.begin(), nodes.end());
    }
  };
  if (num_threads > 1) {
    ParallelFor(num_threads, ng, compute_graph);
  }

  // mat(u): data-node candidate sets, intersected across concept graphs
  // (paper, Gview lines 3-10).  Sequential runs compute each graph lazily
  // so emptiness proofs keep their early exit.
  std::vector<std::vector<NodeId>> mat(nq);
  for (size_t i = 0; i < ng; ++i) {
    if (num_threads <= 1) compute_graph(i);
    PerGraph& pg = per_graph[i];
    result.stats.initial_blocks += pg.stats.initial_blocks;
    result.stats.pruned_blocks += pg.stats.pruned_blocks;
    result.stats.sig_block_rejections += pg.stats.sig_block_rejections;
    result.stats.pivot_restricted_blocks += pg.stats.pivot_restricted_blocks;
    result.stats.stopped =
        MergeStopReason(result.stats.stopped, pg.stats.stopped);
    if (!pg.ok) {
      result.no_match = true;
      return result;
    }
    for (NodeId u = 0; u < nq; ++u) {
      if (i == 0) {
        mat[u] = std::move(pg.nodes[u]);
      } else {
        std::vector<NodeId> inter;
        std::set_intersection(mat[u].begin(), mat[u].end(),
                              pg.nodes[u].begin(), pg.nodes[u].end(),
                              std::back_inserter(inter));
        mat[u] = std::move(inter);
      }
      if (mat[u].empty()) {
        result.no_match = true;
        return result;
      }
    }
  }

  // Exact theta pruning: the lazy strategy over-approximates; keep only
  // data nodes whose label truly clears the threshold, remembering sims.
  // With the signature index on, a node whose signature cannot satisfy
  // some incident query edge is dropped here too — before the node-level
  // fixpoint ever scans its adjacency (lossless: every match's signature
  // passes its requirement).
  std::vector<std::vector<std::pair<NodeId, double>>> exact(nq);
  std::vector<size_t> node_rejects(nq, 0);
  std::vector<size_t> restrict_rejects(nq, 0);
  ParallelFor(num_threads, nq, [&](size_t u) {
    // The block-level restriction keeps any block with one allowed member;
    // this is where the pivot's disallowed co-members drop out, before the
    // node fixpoint ever scans their adjacency.
    const bool restricted = restriction != nullptr &&
                            restriction->allowed != nullptr &&
                            static_cast<NodeId>(u) == restriction->query_node;
    const auto& sims = exact_label_sims[u];
    for (NodeId v : mat[u]) {
      if (restricted && (v >= restriction->allowed->size() ||
                         (*restriction->allowed)[v] == 0)) {
        ++restrict_rejects[u];
        continue;
      }
      auto it = sims.find(g.NodeLabel(v));
      if (it == sims.end()) continue;
      if (cindex != nullptr && !cindex->NodePasses(v, reqs[u])) {
        ++node_rejects[u];
        continue;
      }
      exact[u].push_back({v, it->second});
    }
  });
  for (NodeId u = 0; u < nq; ++u) {
    result.stats.sig_node_rejections += node_rejects[u];
    result.stats.pivot_restricted_nodes += restrict_rejects[u];
  }
  for (NodeId u = 0; u < nq; ++u) {
    if (exact[u].empty()) {
      result.no_match = true;
      return result;
    }
  }

  // Node-level refinement: drop a candidate v of query node u when some
  // query edge (u, u') has no edge-label-matching counterpart from v into
  // the candidates of u' (and symmetrically for incoming edges).  Matches
  // always satisfy this, so pruning is lossless; it is what shrinks G_v to
  // exactly the union of near-matches (cf. Fig. 9's G_v).
  {
    std::vector<std::vector<bool>> is_cand(nq);
    for (NodeId u = 0; u < nq; ++u) {
      is_cand[u].assign(g.num_nodes(), false);
      for (const auto& [v, s] : exact[u]) is_cand[u][v] = true;
    }
    std::vector<EdgeTriple> qedges = query.EdgeList();
    // Second super-linear stage; same cooperative-stop contract as the
    // block fixpoint above (interrupt = keep the sound superset).
    CancelCheck check(exec);
    bool changed = true;
    while (changed && !check.Stop()) {
      changed = false;
      for (const EdgeTriple& e : qedges) {
        auto prune = [&](NodeId holder, NodeId other, bool forward) {
          auto& list = exact[holder];
          size_t kept = 0;
          for (size_t i = 0; i < list.size(); ++i) {
            NodeId v = list[i].first;
            if (check.Stop()) {
              for (; i < list.size(); ++i) list[kept++] = list[i];
              break;
            }
            bool ok = false;
            const auto& adj = forward ? g.OutEdges(v) : g.InEdges(v);
            for (const AdjEntry& a : adj) {
              if (a.label == e.label && is_cand[other][a.node]) {
                ok = true;
                break;
              }
            }
            if (ok) {
              list[kept++] = list[i];
            } else {
              is_cand[holder][v] = false;
              ++result.stats.pruned_nodes;
              changed = true;
            }
          }
          list.resize(kept);
        };
        prune(e.from, e.to, /*forward=*/true);
        if (exact[e.from].empty()) {
          result.no_match = true;
          return result;
        }
        prune(e.to, e.from, /*forward=*/false);
        if (exact[e.to].empty()) {
          result.no_match = true;
          return result;
        }
        if (check.reason() != StopReason::kNone) break;
      }
    }
    result.stats.stopped =
        MergeStopReason(result.stats.stopped, check.reason());
  }

  // Materialize G_v induced by the union of all candidates.
  std::vector<NodeId> all_nodes;
  for (NodeId u = 0; u < nq; ++u) {
    for (const auto& [v, s] : exact[u]) all_nodes.push_back(v);
  }
  result.gv = InducedSubgraph(g, all_nodes);
  result.stats.gv_nodes = result.gv.graph.num_nodes();
  result.stats.gv_edges = result.gv.graph.num_edges();

  result.candidates.resize(nq);
  ParallelFor(num_threads, nq, [&](size_t u) {
    for (const auto& [v, s] : exact[u]) {
      result.candidates[u].push_back({result.gv.from_original[v], s});
    }
    std::sort(result.candidates[u].begin(), result.candidates[u].end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.node < b.node;
              });
  });
  return result;
}

}  // namespace osq
