// Diversified top-k match selection.
//
// Ontology-based queries often return many matches that differ in a single
// node (the paper's Flickr templates match thousands of photo/tag
// combinations).  Result diversification — returning matches that are both
// high-scoring AND cover different parts of the data graph — is the
// natural extension studied in the follow-up literature on top-k graph
// pattern matching.  This header implements the standard greedy
// maximal-marginal-relevance selection over a ranked match list:
//
//   pick argmax_m (1 - lambda) * score(m)/max_score
//                 + lambda * |nodes(m) \ covered| / |V_Q|
//
// lambda = 0 reduces to the plain top-k prefix; lambda = 1 maximizes node
// coverage.  Purely a post-processing step: feed it the (k = 0 or large-k)
// output of KMatch.

#ifndef OSQ_CORE_DIVERSIFY_H_
#define OSQ_CORE_DIVERSIFY_H_

#include <cstddef>
#include <vector>

#include "core/match.h"

namespace osq {

// Selects up to `k` matches from `ranked` (sorted best-first, as returned
// by KMatch).  `lambda` in [0, 1] trades score for node-coverage novelty.
// Deterministic: ties broken by input order.
[[nodiscard]] std::vector<Match> DiversifyMatches(
    const std::vector<Match>& ranked, size_t k, double lambda);

// Fraction of distinct data nodes covered by `matches` relative to the
// total slots (|matches| * |V_Q|); 1.0 means fully disjoint matches.
// Returns 0 for empty input.
double MatchDiversity(const std::vector<Match>& matches);

}  // namespace osq

#endif  // OSQ_CORE_DIVERSIFY_H_
