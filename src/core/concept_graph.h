// Concept graphs — the building block of the ontology index (paper §IV-A).
//
// A concept graph G_o abstracts a data graph G with respect to an ontology
// graph O, a similarity threshold beta, and a set of *concept labels* C:
//   * the node set is a partition of V(G) into blocks; every member of a
//     block is within similarity beta of the block's concept label;
//   * (b1, b2) is a concept edge iff every node of b1 has a child in b2 and
//     every node of b2 has a parent in b1.
// The construction (the paper's CGraph) additionally guarantees that *any*
// data edge between members of two blocks implies the concept edge, i.e.
// whenever some member of b1 points into b2, all members do.  Equivalently:
// all members of a block share the same successor-block set and the same
// predecessor-block set.  This is the invariant that makes Gview filtering
// lossless (Prop. 4.2), and it is what Validate() checks.
//
// We implement CGraph as worklist-driven partition refinement: start from
// the concept-label partition and split any block whose members disagree on
// their (successor blocks, predecessor blocks) signature, re-examining
// neighbors of split blocks until a fixpoint.  The fixpoint is the coarsest
// stable refinement of the initial partition, matching the paper's
// SplitMerge semantics.
//
// Incremental maintenance (paper §VI) reuses the same refinement machinery;
// see index_maintenance.h.

#ifndef OSQ_CORE_CONCEPT_GRAPH_H_
#define OSQ_CORE_CONCEPT_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "ontology/ontology_graph.h"
#include "ontology/similarity.h"

namespace osq {

// Construction / maintenance statistics, reported by benches.
struct ConceptGraphStats {
  size_t initial_blocks = 0;
  size_t final_blocks = 0;
  size_t splits = 0;
  size_t merges = 0;
};

// Options controlling concept-graph construction.
struct ConceptGraphOptions {
  // Similarity threshold beta for grouping nodes under a concept label.
  double beta = 0.81;
  // When true, refinement signatures include edge labels, producing a finer
  // partition whose blocks also agree on the labels of their block-crossing
  // edges.  The paper's index is label-unaware (false); the aware variant is
  // an ablation (bench exp_ablation_strategies).
  bool edge_label_aware = false;
  // Repair locality bounds (§VI): during incremental maintenance, a
  // same-label block group is re-coarsened (merged and re-split to the
  // local optimum) only when it has at most this many blocks; larger groups
  // fall back to pairwise mcondition merging.  Keeps AFF — and repair cost —
  // proportional to the change instead of the label population.
  size_t max_coarsen_group = 8;
  // Pairwise mcondition merging scans a candidate's same-label peers only
  // when the group has at most this many blocks.
  size_t max_merge_peers = 64;
};

class ConceptGraph {
 public:
  // Builds the concept graph of `g` for the given concept label set.
  // Every data label must be within Radius(beta) of some concept label;
  // nodes whose label is not covered are grouped under their own label
  // (a robustness extension — the paper assumes full coverage).
  // `g`, `o` must outlive the concept graph.
  static ConceptGraph Build(const Graph& g, const OntologyGraph& o,
                            const SimilarityFunction& sim,
                            const ConceptGraphOptions& options,
                            std::vector<LabelId> concept_labels,
                            ConceptGraphStats* stats = nullptr);

  // Reconstructs a concept graph from an explicit partition (e.g. one
  // loaded from disk — see core/index_io.h).  Each entry of `blocks` is a
  // (concept label, members) pair; the union of members must be exactly
  // V(g).  No refinement is run: the caller is responsible for the
  // partition satisfying the invariants (check with Validate()).
  static ConceptGraph FromPartition(
      const Graph& g, const OntologyGraph& o, const SimilarityFunction& sim,
      const ConceptGraphOptions& options, std::vector<LabelId> concept_labels,
      const std::vector<std::pair<LabelId, std::vector<NodeId>>>& blocks);

  // Complete internal state of a concept graph, as stored in a binary
  // snapshot (core/snapshot.h).  Unlike FromPartition — which replays the
  // concept-label BFS and re-derives the block table — a snapshot restore
  // adopts every structure verbatim, so a graph maintained after a reload
  // behaves identically to one that was never saved (same free-list order,
  // same block-id allocation, same BlocksWithLabel iteration order).
  struct SnapshotParts {
    std::vector<LabelId> concept_labels;             // sorted unique
    std::vector<std::vector<NodeId>> members;        // block -> member nodes
    std::vector<LabelId> block_label;                // block -> concept label
    std::vector<uint8_t> alive;                      // block -> liveness
    std::vector<BlockId> free_blocks;                // dead ids, stack order
    // concept label -> live blocks, insertion order preserved; entries
    // sorted by label for a canonical encoding.
    std::vector<std::pair<LabelId, std::vector<BlockId>>> blocks_by_label;
    std::vector<std::pair<LabelId, LabelId>> concept_of_label;  // sorted
  };
  SnapshotParts ExportSnapshotParts() const;

  // Rebuilds a concept graph from snapshot parts, skipping both the
  // concept-assignment BFS and partition refinement.  Validates partition
  // well-formedness (every node in exactly one live block, consistent
  // free list / label index) and fails with Corruption on any violation;
  // the deep invariants are covered by the snapshot's content hash.  On
  // success the restored graph is appended to `*out` (appended, not
  // assigned: there is deliberately no way to construct an empty
  // ConceptGraph to assign into).
  [[nodiscard]] static Status FromSnapshotParts(
      const Graph& g, const OntologyGraph& o, const SimilarityFunction& sim,
      const ConceptGraphOptions& options, SnapshotParts parts,
      std::vector<ConceptGraph>* out);

  ConceptGraph(const ConceptGraph&) = default;
  ConceptGraph& operator=(const ConceptGraph&) = default;
  ConceptGraph(ConceptGraph&&) = default;
  ConceptGraph& operator=(ConceptGraph&&) = default;

  double beta() const { return options_.beta; }
  const ConceptGraphOptions& options() const { return options_; }
  const std::vector<LabelId>& concept_labels() const {
    return concept_labels_;
  }
  const Graph& data_graph() const { return *g_; }

  // Number of live blocks.
  size_t num_blocks() const { return num_alive_; }
  // Upper bound on block ids (dead slots included); for dense arrays.
  size_t block_capacity() const { return members_.size(); }
  bool IsAlive(BlockId b) const {
    return b < alive_.size() && alive_[b];
  }

  // Block containing data node v.
  BlockId BlockOf(NodeId v) const;
  // Members of block b (unordered).
  const std::vector<NodeId>& Members(BlockId b) const;
  // Concept label of block b.
  LabelId BlockLabel(BlockId b) const;

  // Live blocks whose concept label is `label` (possibly several after
  // refinement splits).  Empty if none.
  const std::vector<BlockId>& BlocksWithLabel(LabelId label) const;

  // All live block ids, ascending.
  std::vector<BlockId> AliveBlocks() const;

  // Successor / predecessor blocks of b (sorted, unique), derived from one
  // representative member — valid because at the refinement fixpoint every
  // member agrees (see file comment).
  std::vector<BlockId> Successors(BlockId b) const;
  std::vector<BlockId> Predecessors(BlockId b) const;

  // True if the representative of `b` has an out-edge into block `target`
  // (respecting `edge_label` when the graph was built edge-label aware and
  // `edge_label` != kInvalidLabel).
  bool HasSuccessorBlock(BlockId b, BlockId target, LabelId edge_label) const;
  bool HasPredecessorBlock(BlockId b, BlockId source, LabelId edge_label) const;

  // Allocation-free variants used by the filtering hot loop: true if the
  // representative of `b` has an out-edge (resp. in-edge) into any block
  // marked true in `member_set` (indexed by block id, sized >=
  // block_capacity()), honoring `edge_label` as above.
  bool HasSuccessorInSet(BlockId b, const std::vector<bool>& member_set,
                         LabelId edge_label) const;
  bool HasPredecessorInSet(BlockId b, const std::vector<bool>& member_set,
                           LabelId edge_label) const;

  // Index size |I| contribution: number of blocks plus block edges.
  size_t SizeNodesPlusEdges() const;

  // Full invariant check (partition well-formed; per-block label coverage;
  // every member of a block has identical succ/pred block signature).
  // O(|E| log |V|); test / debugging aid.
  bool Validate() const;

  // --- Incremental maintenance hooks (paper §VI) -------------------------
  // The data graph must ALREADY reflect the update when these are called;
  // they repair the partition around the touched endpoints using the same
  // split refinement plus mcondition-based merging, and return the number
  // of blocks in the affected area AFF.
  size_t RepairAfterEdgeInsertion(NodeId from, NodeId to,
                                  ConceptGraphStats* stats = nullptr);
  size_t RepairAfterEdgeDeletion(NodeId from, NodeId to,
                                 ConceptGraphStats* stats = nullptr);
  // Registers data node `v` added to the graph after construction; places
  // it in a (possibly new) block compatible with its label.
  void RegisterNewNode(NodeId v);

  // Re-points the borrowed graph pointers at relocated instances of the
  // same logical graphs (see OntologyIndex::Rebind).
  void Rebind(const Graph* g, const OntologyGraph* o) {
    g_ = g;
    o_ = o;
  }

  // Drains the set of blocks whose membership changed since the last call
  // (created, released, split, merged into, or re-coarsened), sorted
  // ascending; dead ids are included so derived indexes (see
  // core/candidate_index.h) can clear their per-block state.  Build and
  // FromPartition finish with an empty dirty set.
  std::vector<BlockId> TakeDirtyBlocks();

 private:
  ConceptGraph() = default;

  // Shared Build/FromPartition setup: stores the borrowed pointers and
  // options, dedups the concept labels, and fills concept_of_label_ by a
  // deterministic multi-source BFS at Radius(beta).
  void InitCore(const Graph& g, const OntologyGraph& o,
                const SimilarityFunction& sim,
                const ConceptGraphOptions& options,
                std::vector<LabelId> concept_labels);

  // Signature of node v: sorted unique (block, edge label) keys of its out-
  // and in-neighborhood (edge label forced to 0 when label-unaware).
  using Signature = std::vector<uint64_t>;
  void NodeSignature(NodeId v, Signature* out_sig, Signature* in_sig) const;

  // Splits block b if members disagree on signatures.  Newly created block
  // ids are appended to `created`; returns true if a split happened.
  bool SplitBlock(BlockId b, std::vector<BlockId>* created);

  // Runs the split fixpoint starting from `worklist`; collects every block
  // id that was examined-and-changed into `affected`.
  void RefineFrom(std::vector<BlockId> worklist,
                  std::vector<BlockId>* affected, ConceptGraphStats* stats);

  // Attempts mcondition merges among `candidates` and their same-label
  // peers; returns number of merges performed.
  size_t MergePass(const std::vector<BlockId>& candidates,
                   ConceptGraphStats* stats);

  // Shared implementation of the §VI repairs: local coarsen + split
  // refinement + residual merges around the endpoints of a changed edge.
  size_t RepairAroundEdge(NodeId from, NodeId to, ConceptGraphStats* stats);

  BlockId NewBlock(LabelId concept_label);
  void ReleaseBlock(BlockId b);

  // Records b in the dirty set (see TakeDirtyBlocks).  Called by every
  // path that rewrites members_ / block_of_.
  void MarkDirty(BlockId b);

  // Neighbor blocks (union over all members; safe mid-refinement).
  std::vector<BlockId> AllNeighborBlocks(BlockId b) const;

  uint64_t EdgeKey(BlockId block, LabelId edge_label) const;

  const Graph* g_ = nullptr;     // not owned; must outlive the index
  const OntologyGraph* o_ = nullptr;  // not owned; must outlive the index
  SimilarityFunction sim_{0.9};  // by value: cheap, avoids lifetime coupling
  ConceptGraphOptions options_;
  std::vector<LabelId> concept_labels_;

  std::vector<BlockId> block_of_;             // node -> block
  std::vector<std::vector<NodeId>> members_;  // block -> member nodes
  std::vector<LabelId> block_label_;          // block -> concept label
  std::vector<bool> alive_;
  std::vector<BlockId> free_blocks_;
  size_t num_alive_ = 0;

  // concept label -> live blocks with that label
  std::unordered_map<LabelId, std::vector<BlockId>> blocks_by_label_;

  // Blocks with membership changes not yet drained by TakeDirtyBlocks.
  std::vector<BlockId> dirty_blocks_;
  std::vector<bool> dirty_flag_;

  // data label -> assigned concept label (nearest within Radius(beta)).
  std::unordered_map<LabelId, LabelId> concept_of_label_;
};

}  // namespace osq

#endif  // OSQ_CORE_CONCEPT_GRAPH_H_
