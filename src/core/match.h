// Match representation shared by the engine and the baselines.

#ifndef OSQ_CORE_MATCH_H_
#define OSQ_CORE_MATCH_H_

#include <vector>

#include "graph/types.h"

namespace osq {

// One match of a query: mapping[u] is the data-graph node matched to query
// node u, and score = sum over query nodes of sim(L_q(u), L(mapping[u]))
// (paper's C(h)).  For identical-label isomorphism the score equals |V_Q|.
struct Match {
  std::vector<NodeId> mapping;
  double score = 0.0;

  friend bool operator==(const Match&, const Match&) = default;
};

// Canonical result order: best score first; ties broken by lexicographic
// mapping so results are deterministic and comparable across algorithms.
struct MatchBetter {
  bool operator()(const Match& a, const Match& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.mapping < b.mapping;
  }
};

}  // namespace osq

#endif  // OSQ_CORE_MATCH_H_
