// The verification phase — algorithm KMatch (paper §V).
//
// KMatch receives the compact subgraph G_v and the per-query-node candidate
// lists produced by Gview (each sorted by descending similarity) and
// enumerates ontology-based matches by backtracking, maintaining a
// min-heap of the K best matches found so far.  Branches whose optimistic
// score bound (current score + best possible remaining similarity) cannot
// beat the current K-th best are pruned — together with the
// similarity-sorted candidate lists this realizes the paper's "construct
// node lists with maximum overall similarity first" strategy without
// materializing the combination lattice.
//
// Matching semantics follow QueryOptions::semantics; the paper's
// definition (induced / "iff") is the default.
//
// The returned set is the EXACT top-K under the MatchBetter total order
// (score descending, then lexicographic mapping): branch pruning abandons
// only branches whose optimistic bound falls strictly below the current
// K-th score, so equal-score matches are explored and ties resolve by the
// total order, never by discovery order.  Scores are canonical — per-node
// similarities summed in query-node-id order — so the same match carries
// the same bits no matter which partition of the search found it.
//
// With QueryOptions::num_threads > 1 the search is partitioned by the
// candidates of the first order node: partition 0 runs first and seeds a
// shared top-K pool, the remaining partitions run in parallel against that
// fixed seed and commit into the lock-protected pool, and an atomic score
// threshold skips partitions whose optimistic bound falls strictly below
// the current K-th best.  Exact top-K is associative and commutative under
// merge, so the match set and scores are bit-identical for every thread
// count — and for every root partitioning, which is what the sharded
// serving tier's scatter-gather merge relies on (see DESIGN.md,
// "Parallel execution" and §13).

#ifndef OSQ_CORE_KMATCH_H_
#define OSQ_CORE_KMATCH_H_

#include <cstddef>
#include <vector>

#include "common/deadline.h"
#include "core/filtering.h"
#include "core/match.h"
#include "core/options.h"
#include "graph/graph.h"

namespace osq {

struct KMatchStats {
  // Backtracking search-tree nodes visited.
  size_t search_steps = 0;
  // Complete assignments that passed all checks.
  size_t matches_found = 0;
  // True when max_search_steps stopped the enumeration early (any
  // partition, under parallel execution).
  bool truncated = false;
  // Non-kNone when a deadline or cancellation stopped the enumeration
  // early (any partition).  Every match returned is still fully verified;
  // only completeness of the set is lost.
  StopReason stopped = StopReason::kNone;
  // Candidates of the first order node, i.e. independently searchable
  // subtrees.
  size_t root_partitions = 0;
  // Partitions skipped by the cross-worker score threshold without being
  // searched.  Timing-dependent under num_threads > 1 (the skipped work
  // could never affect the output; see kmatch.cc), so search_steps /
  // matches_found may vary run to run even though results do not.
  size_t partitions_skipped = 0;
};

// Enumerates the top-K matches of `query` inside the filter result
// (`filter.gv` + `filter.candidates`).  Returned matches use ORIGINAL data
// graph node ids (translated via filter.gv.to_original) and are sorted by
// MatchBetter.  With options.k == 0 all matches are returned.
//
// `exec` (optional) carries the query's deadline / cancellation state;
// the search polls it cooperatively (amortized over ~256 steps, see
// common/deadline.h) and, when it fires, returns the valid matches found
// so far with stats->stopped set.  A stopped result is a subset of the
// unconstrained one and therefore timing-dependent — the bit-identical
// determinism contract (DESIGN.md §7) applies only to runs that complete.
[[nodiscard]] std::vector<Match> KMatch(const Graph& query,
                                        const FilterResult& filter,
                                        const QueryOptions& options,
                                        KMatchStats* stats = nullptr,
                                        const ExecControl* exec = nullptr);

// Lower-level entry point used by baselines and tests: matches `query`
// against `target` given explicit candidate lists (target-local ids,
// sorted by descending similarity).  Results use target-local ids.
[[nodiscard]] std::vector<Match> KMatchOnGraph(
    const Graph& query, const Graph& target,
    const std::vector<std::vector<Candidate>>& candidates,
    const QueryOptions& options, KMatchStats* stats = nullptr,
    const ExecControl* exec = nullptr);

}  // namespace osq

#endif  // OSQ_CORE_KMATCH_H_
