// Incremental ontology-index maintenance — algorithm incIdx (paper §VI).
//
// Given a batch of edge insertions/deletions ΔG, incIdx repairs every
// concept graph of the index in place instead of rebuilding it: the blocks
// containing the edge endpoints are re-split to restore the signature
// invariant, violations are propagated to neighboring blocks (the paper's
// propUp/propDown), and blocks satisfying the merge condition (same concept
// label, same successor- and predecessor-block sets) are merged back.  The
// cost is measured in AFF — the number of blocks touched — matching the
// paper's O(|AFF|^2 + |I|) bound rather than the size of G.
//
// Protocol: these functions mutate BOTH the data graph and the index; the
// graph passed must be the exact graph instance the index was built over.

#ifndef OSQ_CORE_INDEX_MAINTENANCE_H_
#define OSQ_CORE_INDEX_MAINTENANCE_H_

#include <cstddef>
#include <vector>

#include "core/ontology_index.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace osq {

// One element of ΔG.
struct GraphUpdate {
  enum class Kind { kInsertEdge, kDeleteEdge };
  Kind kind = Kind::kInsertEdge;
  EdgeTriple edge;

  static GraphUpdate Insert(NodeId from, NodeId to,
                            LabelId label = kDefaultEdgeLabel) {
    return {Kind::kInsertEdge, {from, to, label}};
  }
  static GraphUpdate Delete(NodeId from, NodeId to,
                            LabelId label = kDefaultEdgeLabel) {
    return {Kind::kDeleteEdge, {from, to, label}};
  }
};

struct MaintenanceStats {
  // Updates applied to the data graph (duplicates/missing edges skipped).
  size_t applied = 0;
  size_t skipped = 0;
  // Total AFF blocks summed over updates and concept graphs.
  size_t aff_blocks = 0;
  size_t splits = 0;
  size_t merges = 0;
};

// Applies one update; returns false (and leaves everything unchanged) when
// the update is a no-op (duplicate insertion / missing deletion).
bool ApplyUpdate(Graph* g, OntologyIndex* index, const GraphUpdate& update,
                 MaintenanceStats* stats = nullptr);

// Applies a batch of updates in order.
MaintenanceStats ApplyUpdates(Graph* g, OntologyIndex* index,
                              const std::vector<GraphUpdate>& updates);

// Adds a node to the graph and registers it with every concept graph.
NodeId AddNodeWithIndex(Graph* g, OntologyIndex* index, LabelId label);

}  // namespace osq

#endif  // OSQ_CORE_INDEX_MAINTENANCE_H_
