#include "core/kmatch.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

#include "common/check.h"
#include "common/thread_pool.h"

namespace osq {

namespace {

// Slack applied when comparing optimistic score bounds against the current
// K-th best.  A branch is abandoned only when its bound falls below the
// K-th score by MORE than this, so (a) equal-score matches are always
// explored and the pool is the exact top-K under the MatchBetter total
// order, and (b) the last-bit jitter between the running depth-order score
// sum used for bounds and the canonical node-id-order sum recorded on
// matches (floating-point addition is not associative) can never prune a
// match that belongs in the answer.
constexpr double kScoreEps = 1e-12;

// Label-run comparisons over the allocation-free adjacency views.  Labels
// within one (from, to) run are strictly ascending (the graph rejects
// duplicate edges), so both are linear scans.
bool LabelsEqual(Graph::EdgeLabelView a, Graph::EdgeLabelView b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.first[i].label != b.first[i].label) return false;
  }
  return true;
}

bool LabelsInclude(Graph::EdgeLabelView sup, Graph::EdgeLabelView sub) {
  const AdjEntry* s = sup.begin();
  for (const AdjEntry& e : sub) {
    while (s != sup.end() && s->label < e.label) ++s;
    if (s == sup.end() || s->label != e.label) return false;
    ++s;
  }
  return true;
}

// Read-only state shared by every root-partition search of one query:
// the matching order, its optimistic suffix bounds, and the inputs.
// `exec` (possibly null) is the query's shared deadline / cancellation
// block; each worker polls it through its own CancelCheck.
struct SearchContext {
  const Graph& query;
  const Graph& target;
  const std::vector<std::vector<Candidate>>& candidates;
  const QueryOptions& options;
  const ExecControl* exec;
  std::vector<NodeId> order;
  std::vector<double> suffix_best;
};

// Query-node matching order: start at the node with the fewest candidates,
// then greedily extend by (most assigned neighbors, fewest candidates) so
// partial assignments stay connected and constrained.  Assigned-neighbor
// counts are maintained incrementally when a node is placed instead of
// being recounted from the adjacency every iteration.
void BuildOrder(SearchContext* ctx) {
  const Graph& query = ctx->query;
  size_t nq = query.num_nodes();
  std::vector<bool> placed(nq, false);
  // conn[u] = number of edges (counted per label, both directions) between
  // u and already-placed nodes; matches the old recount semantics exactly.
  std::vector<size_t> conn(nq, 0);
  ctx->order.clear();
  ctx->order.reserve(nq);
  auto cand_size = [&](NodeId u) { return ctx->candidates[u].size(); };
  auto place = [&](NodeId u) {
    ctx->order.push_back(u);
    placed[u] = true;
    for (const AdjEntry& e : query.OutEdges(u)) ++conn[e.node];
    for (const AdjEntry& e : query.InEdges(u)) ++conn[e.node];
  };
  NodeId first = 0;
  for (NodeId u = 1; u < nq; ++u) {
    if (cand_size(u) < cand_size(first)) first = u;
  }
  place(first);
  while (ctx->order.size() < nq) {
    NodeId best = kInvalidNode;
    for (NodeId u = 0; u < nq; ++u) {
      if (placed[u]) continue;
      if (best == kInvalidNode || conn[u] > conn[best] ||
          (conn[u] == conn[best] && cand_size(u) < cand_size(best))) {
        best = u;
      }
    }
    place(best);
  }
}

// suffix_best[i] = maximum total similarity attainable by query nodes
// order[i..]; candidates are sorted by descending sim, so entry 0 is each
// node's optimum.
void BuildSuffixBounds(SearchContext* ctx) {
  size_t nq = ctx->order.size();
  ctx->suffix_best.assign(nq + 1, 0.0);
  for (size_t i = nq; i > 0; --i) {
    ctx->suffix_best[i - 1] =
        ctx->suffix_best[i] + ctx->candidates[ctx->order[i - 1]][0].sim;
  }
}

// Backtracking searcher for the subtrees rooted at single candidates of
// the first order node.  One instance per worker thread; the per-depth
// buffers (assign_, used_, pool_) are allocated once and reused across
// every root the worker processes, so the hot path never allocates.
class Searcher {
 public:
  explicit Searcher(const SearchContext& ctx)
      : ctx_(ctx), check_(ctx.exec) {
    assign_.assign(ctx_.query.num_nodes(), kInvalidNode);
    assign_sim_.assign(ctx_.query.num_nodes(), 0.0);
    used_.assign(ctx_.target.num_nodes(), false);
  }

  // Explores the subtree that maps order[0] to root candidate `root`.
  // `seed` primes the pruning pool (matches already found by the first
  // partition); it must not contain matches from this subtree.  Results
  // are left in pool() — seed entries plus this subtree's finds, sorted by
  // MatchBetter and trimmed to K (k == 0 keeps everything unsorted).
  void SearchRoot(size_t root, const std::vector<Match>& seed) {
    pool_ = seed;
    steps_ = 0;
    found_ = 0;
    truncated_ = false;

    const Candidate& c = ctx_.candidates[ctx_.order[0]][root];
    ++steps_;
    double bound = c.sim + ctx_.suffix_best[1];
    if (HaveK() && bound < Threshold() - kScoreEps) return;
    NodeId q = ctx_.order[0];
    if (!Consistent(q, c.node, 0)) return;
    assign_[q] = c.node;
    assign_sim_[q] = c.sim;
    used_[c.node] = true;
    Recurse(1, c.sim);
    used_[c.node] = false;
    assign_[q] = kInvalidNode;
  }

  // Immediate deadline/cancel poll, used between root partitions.  Once a
  // stop latches, SearchRoot degenerates to a no-op, so callers should
  // stop handing out roots.
  bool PollStop() { return check_.StopNow(); }
  StopReason stop_reason() const { return check_.reason(); }

  const std::vector<Match>& pool() const { return pool_; }
  size_t steps() const { return steps_; }
  size_t found() const { return found_; }
  bool truncated() const { return truncated_; }

  // Moves the pool entries this subtree discovered (those mapping order[0]
  // to `root_node`) into `out`, preserving pool order.
  void ExtractOwn(NodeId root_node, std::vector<Match>* out) {
    NodeId first = ctx_.order[0];
    for (Match& m : pool_) {
      if (m.mapping[first] == root_node) out->push_back(std::move(m));
    }
  }

 private:
  // Edge-compatibility of mapping q -> v against every already-assigned
  // query node, under the configured semantics.  Allocation-free: compares
  // label runs directly inside the sorted adjacency vectors.
  bool Consistent(NodeId q, NodeId v, size_t depth) const {
    const Graph& query = ctx_.query;
    const Graph& target = ctx_.target;
    bool induced = ctx_.options.semantics == MatchSemantics::kInduced;
    for (size_t i = 0; i < depth; ++i) {
      NodeId q2 = ctx_.order[i];
      NodeId v2 = assign_[q2];
      Graph::EdgeLabelView q_fwd = query.EdgeLabelRange(q, q2);
      Graph::EdgeLabelView d_fwd = target.EdgeLabelRange(v, v2);
      Graph::EdgeLabelView q_bwd = query.EdgeLabelRange(q2, q);
      Graph::EdgeLabelView d_bwd = target.EdgeLabelRange(v2, v);
      if (induced) {
        if (!LabelsEqual(q_fwd, d_fwd) || !LabelsEqual(q_bwd, d_bwd)) {
          return false;
        }
      } else if (!LabelsInclude(d_fwd, q_fwd) ||
                 !LabelsInclude(d_bwd, q_bwd)) {
        return false;
      }
    }
    // Self-loops must agree as well.
    Graph::EdgeLabelView q_self = query.EdgeLabelRange(q, q);
    Graph::EdgeLabelView d_self = target.EdgeLabelRange(v, v);
    return induced ? LabelsEqual(q_self, d_self)
                   : LabelsInclude(d_self, q_self);
  }

  bool HaveK() const {
    return ctx_.options.k > 0 && pool_.size() == ctx_.options.k;
  }

  double Threshold() const { return pool_.back().score; }

  void Record() {
    ++found_;
    Match m;
    m.mapping.assign(ctx_.query.num_nodes(), kInvalidNode);
    for (size_t i = 0; i < ctx_.order.size(); ++i) {
      m.mapping[ctx_.order[i]] = assign_[ctx_.order[i]];
    }
    // Canonical score: per-node similarities summed in query-node-id order,
    // NOT in matching order.  The matching order depends on candidate-list
    // sizes, which differ between thread/shard partitionings of the same
    // search — summing in a fixed order keeps equal matches bit-identical
    // no matter which partition discovered them, so merged top-K pools
    // agree to the last bit.
    double score = 0.0;
    for (NodeId u = 0; u < ctx_.query.num_nodes(); ++u) {
      score += assign_sim_[u];
    }
    m.score = score;
    if (ctx_.options.k == 0) {
      // Enumerating everything: append now, sort once at the end.
      pool_.push_back(std::move(m));
      return;
    }
    auto pos = std::upper_bound(pool_.begin(), pool_.end(), m, MatchBetter());
    pool_.insert(pos, std::move(m));
    if (pool_.size() > ctx_.options.k) {
      pool_.pop_back();
    }
  }

  void Recurse(size_t depth, double score) {
    if (truncated_) return;
    ++steps_;
    // Cooperative deadline/cancel poll: one decrement + branch per step,
    // the clock/token are consulted only every CancelCheck stride.  On
    // stop the recursion unwinds like truncation — matches already in
    // pool_ were fully verified and stay.
    if (check_.Stop()) return;
    if (ctx_.options.max_search_steps > 0 &&
        steps_ > ctx_.options.max_search_steps) {
      truncated_ = true;
      return;
    }
    if (depth == ctx_.order.size()) {
      Record();
      return;
    }
    NodeId q = ctx_.order[depth];
    for (const Candidate& c : ctx_.candidates[q]) {
      double bound = score + c.sim + ctx_.suffix_best[depth + 1];
      // Candidates are sorted by sim, so all later bounds are worse.  Once
      // K matches are held, a branch is abandoned only when its optimistic
      // bound falls strictly below the current K-th score (minus the eps
      // slack): branches that can merely TIE the K-th are still explored,
      // so the pool is the exact top-K under the MatchBetter total order —
      // ties resolve by lexicographic mapping, never by discovery order.
      // That exactness is what lets per-root results merge associatively
      // across thread and shard partitionings (DESIGN.md §13).
      if (HaveK() && bound < Threshold() - kScoreEps) {
        break;
      }
      if (used_[c.node]) continue;
      if (!Consistent(q, c.node, depth)) continue;
      assign_[q] = c.node;
      assign_sim_[q] = c.sim;
      used_[c.node] = true;
      Recurse(depth + 1, score + c.sim);
      used_[c.node] = false;
      assign_[q] = kInvalidNode;
      if (truncated_ || check_.reason() != StopReason::kNone) return;
    }
  }

  const SearchContext& ctx_;
  CancelCheck check_;
  std::vector<NodeId> assign_;
  // Similarity of each query node's current assignment; read only at full
  // depth (Record), where every entry is live.
  std::vector<double> assign_sim_;
  std::vector<bool> used_;
  std::vector<Match> pool_;  // kept sorted by MatchBetter when k > 0
  size_t steps_ = 0;
  size_t found_ = 0;
  bool truncated_ = false;
};

// Merges `own` (sorted by MatchBetter) into `best` (likewise sorted),
// trimming to K.  Mappings from different root partitions are distinct, so
// no dedup is needed.  TopK-by-total-order is associative and commutative,
// which is what makes the final pool independent of commit order.
void MergeTopK(std::vector<Match>* best, std::vector<Match>&& own, size_t k) {
  size_t mid = best->size();
  best->insert(best->end(), std::make_move_iterator(own.begin()),
               std::make_move_iterator(own.end()));
  std::inplace_merge(best->begin(), best->begin() + mid, best->end(),
                     MatchBetter());
  if (k > 0 && best->size() > k) best->resize(k);
}

}  // namespace

std::vector<Match> KMatchOnGraph(
    const Graph& query, const Graph& target,
    const std::vector<std::vector<Candidate>>& candidates,
    const QueryOptions& options, KMatchStats* stats,
    const ExecControl* exec) {
  if (stats != nullptr) {
    *stats = KMatchStats();
  }
  if (query.empty()) return {};
  size_t nq = query.num_nodes();
  OSQ_CHECK(candidates.size() == nq);
  for (NodeId u = 0; u < nq; ++u) {
    if (candidates[u].empty()) return {};
  }

  SearchContext ctx{query, target, candidates, options, exec, {}, {}};
  BuildOrder(&ctx);
  BuildSuffixBounds(&ctx);
  const std::vector<Candidate>& roots = candidates[ctx.order[0]];
  size_t num_roots = roots.size();

  std::atomic<size_t> total_steps{0};
  std::atomic<size_t> total_found{0};
  std::atomic<bool> any_truncated{false};
  std::atomic<size_t> skipped{0};
  // Highest-precedence stop reason observed by any worker (monotone
  // CAS-max; kCancelled > kDeadlineExceeded > kNone).
  std::atomic<uint8_t> stop_reason{0};
  auto merge_stop = [&stop_reason](StopReason r) {
    uint8_t v = static_cast<uint8_t>(r);
    uint8_t cur = stop_reason.load(std::memory_order_relaxed);
    while (v > cur && !stop_reason.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  };

  // Root partition 0 runs first on the calling thread; its pool seeds the
  // pruning threshold of every other partition.  The seed is the ONLY
  // cross-partition state a subtree search reads, and it is computed
  // deterministically, so each partition's result is a pure function of
  // the query — independent of thread count and scheduling.
  Searcher first_searcher(ctx);
  first_searcher.SearchRoot(0, {});
  total_steps += first_searcher.steps();
  total_found += first_searcher.found();
  if (first_searcher.truncated()) any_truncated = true;
  merge_stop(first_searcher.stop_reason());

  std::vector<Match> best;
  first_searcher.ExtractOwn(roots[0].node, &best);
  std::vector<Match> seed;
  if (options.k > 0) seed = best;  // already sorted, size <= k

  // Shared top-K pool (lock-protected) and an atomic score threshold for
  // cross-worker pruning.  The threshold is applied STRICTLY (bound must
  // fall below it by more than kScoreEps) so a skip can only discard
  // matches that score strictly below the final K-th best — under the
  // MatchBetter total order those never appear in the output, which keeps
  // the result bit-identical for every thread count even though the set
  // of skipped partitions is timing-dependent.
  std::mutex best_mu;
  constexpr double kNoThreshold = -std::numeric_limits<double>::infinity();
  std::atomic<double> threshold{kNoThreshold};
  if (options.k > 0 && best.size() == options.k) {
    threshold.store(best.back().score, std::memory_order_relaxed);
  }

  if (num_roots > 1) {
    size_t threads = ResolveNumThreads(options.num_threads);
    size_t workers = std::min(threads, num_roots - 1);
    std::atomic<size_t> next_root{1};
    ParallelFor(threads, workers, [&](size_t) {
      Searcher searcher(ctx);
      std::vector<Match> own;
      for (size_t i = next_root.fetch_add(1); i < num_roots;
           i = next_root.fetch_add(1)) {
        // A latched stop (this worker's or a sibling's, visible through
        // the shared ExecControl) ends root hand-out: remaining
        // partitions are abandoned, not searched.
        if (searcher.PollStop()) break;
        if (options.k > 0) {
          double bound = roots[i].sim + ctx.suffix_best[1];
          if (bound < threshold.load(std::memory_order_relaxed) - kScoreEps) {
            ++skipped;
            continue;
          }
        }
        searcher.SearchRoot(i, seed);
        total_steps += searcher.steps();
        total_found += searcher.found();
        if (searcher.truncated()) any_truncated = true;
        own.clear();
        searcher.ExtractOwn(roots[i].node, &own);
        if (own.empty()) continue;
        if (options.k == 0) {
          std::lock_guard<std::mutex> lock(best_mu);
          best.insert(best.end(), std::make_move_iterator(own.begin()),
                      std::make_move_iterator(own.end()));
        } else {
          std::lock_guard<std::mutex> lock(best_mu);
          MergeTopK(&best, std::move(own), options.k);
          if (best.size() == options.k) {
            // Monotone under the lock: merges only ever raise the K-th.
            threshold.store(best.back().score, std::memory_order_relaxed);
          }
        }
      }
      merge_stop(searcher.stop_reason());
    });
  }

  if (options.k == 0) {
    std::sort(best.begin(), best.end(), MatchBetter());
  }
  if (stats != nullptr) {
    stats->search_steps = total_steps.load();
    stats->matches_found = total_found.load();
    stats->truncated = any_truncated.load();
    stats->stopped = static_cast<StopReason>(stop_reason.load());
    stats->root_partitions = num_roots;
    stats->partitions_skipped = skipped.load();
  }
  return best;
}

std::vector<Match> KMatch(const Graph& query, const FilterResult& filter,
                          const QueryOptions& options, KMatchStats* stats,
                          const ExecControl* exec) {
  if (stats != nullptr) {
    *stats = KMatchStats();
  }
  if (filter.no_match) return {};
  std::vector<Match> local = KMatchOnGraph(
      query, filter.gv.graph, filter.candidates, options, stats, exec);
  for (Match& m : local) {
    for (NodeId& v : m.mapping) {
      v = filter.gv.to_original[v];
    }
  }
  return local;
}

}  // namespace osq
