#include "core/kmatch.h"

#include <algorithm>

#include "common/check.h"

namespace osq {

namespace {

// Strict-inequality slack when comparing score bounds against the current
// K-th best, so equal-score matches are still explored and ties resolve
// deterministically via MatchBetter.
constexpr double kScoreEps = 1e-12;

class Searcher {
 public:
  Searcher(const Graph& query, const Graph& target,
           const std::vector<std::vector<Candidate>>& candidates,
           const QueryOptions& options, KMatchStats* stats)
      : query_(query),
        target_(target),
        candidates_(candidates),
        options_(options),
        stats_(stats) {}

  std::vector<Match> Run() {
    size_t nq = query_.num_nodes();
    OSQ_CHECK(candidates_.size() == nq);
    for (NodeId u = 0; u < nq; ++u) {
      if (candidates_[u].empty()) return {};
    }
    BuildOrder();
    BuildSuffixBounds();
    assign_.assign(nq, kInvalidNode);
    used_.assign(target_.num_nodes(), false);
    Recurse(0, 0.0);
    if (options_.k == 0) {
      std::sort(results_.begin(), results_.end(), MatchBetter());
    }
    if (stats_ != nullptr) {
      stats_->search_steps = steps_;
      stats_->matches_found = found_;
      stats_->truncated = truncated_;
    }
    return std::move(results_);
  }

 private:
  // Query-node matching order: start at the node with the fewest
  // candidates, then greedily extend by (most assigned neighbors, fewest
  // candidates) so partial assignments stay connected and constrained.
  void BuildOrder() {
    size_t nq = query_.num_nodes();
    std::vector<bool> placed(nq, false);
    order_.clear();
    order_.reserve(nq);
    auto cand_size = [&](NodeId u) { return candidates_[u].size(); };
    NodeId first = 0;
    for (NodeId u = 1; u < nq; ++u) {
      if (cand_size(u) < cand_size(first)) first = u;
    }
    order_.push_back(first);
    placed[first] = true;
    while (order_.size() < nq) {
      NodeId best = kInvalidNode;
      size_t best_conn = 0;
      for (NodeId u = 0; u < nq; ++u) {
        if (placed[u]) continue;
        size_t conn = 0;
        for (const AdjEntry& e : query_.OutEdges(u)) {
          if (placed[e.node]) ++conn;
        }
        for (const AdjEntry& e : query_.InEdges(u)) {
          if (placed[e.node]) ++conn;
        }
        if (best == kInvalidNode || conn > best_conn ||
            (conn == best_conn && cand_size(u) < cand_size(best))) {
          best = u;
          best_conn = conn;
        }
      }
      order_.push_back(best);
      placed[best] = true;
    }
  }

  // suffix_best_[i] = maximum total similarity attainable by query nodes
  // order_[i..]; candidates are sorted by descending sim, so entry 0 is
  // each node's optimum.
  void BuildSuffixBounds() {
    size_t nq = order_.size();
    suffix_best_.assign(nq + 1, 0.0);
    for (size_t i = nq; i > 0; --i) {
      suffix_best_[i - 1] =
          suffix_best_[i] + candidates_[order_[i - 1]][0].sim;
    }
  }

  // Edge-compatibility of mapping q -> v against every already-assigned
  // query node, under the configured semantics.
  bool Consistent(NodeId q, NodeId v, size_t depth) const {
    for (size_t i = 0; i < depth; ++i) {
      NodeId q2 = order_[i];
      NodeId v2 = assign_[q2];
      std::vector<LabelId> q_fwd = query_.EdgeLabelsBetween(q, q2);
      std::vector<LabelId> d_fwd = target_.EdgeLabelsBetween(v, v2);
      std::vector<LabelId> q_bwd = query_.EdgeLabelsBetween(q2, q);
      std::vector<LabelId> d_bwd = target_.EdgeLabelsBetween(v2, v);
      if (options_.semantics == MatchSemantics::kInduced) {
        if (q_fwd != d_fwd || q_bwd != d_bwd) return false;
      } else {
        if (!std::includes(d_fwd.begin(), d_fwd.end(), q_fwd.begin(),
                           q_fwd.end()) ||
            !std::includes(d_bwd.begin(), d_bwd.end(), q_bwd.begin(),
                           q_bwd.end())) {
          return false;
        }
      }
    }
    // Self-loops must agree as well.
    std::vector<LabelId> q_self = query_.EdgeLabelsBetween(q, q);
    std::vector<LabelId> d_self = target_.EdgeLabelsBetween(v, v);
    if (options_.semantics == MatchSemantics::kInduced) {
      return q_self == d_self;
    }
    return std::includes(d_self.begin(), d_self.end(), q_self.begin(),
                         q_self.end());
  }

  bool HaveK() const {
    return options_.k > 0 && results_.size() == options_.k;
  }

  double Threshold() const { return results_.back().score; }

  void Record(double score) {
    ++found_;
    Match m;
    m.mapping.assign(query_.num_nodes(), kInvalidNode);
    for (size_t i = 0; i < order_.size(); ++i) {
      m.mapping[order_[i]] = assign_[order_[i]];
    }
    m.score = score;
    if (options_.k == 0) {
      // Enumerating everything: append now, sort once in Run().
      results_.push_back(std::move(m));
      return;
    }
    auto pos = std::upper_bound(results_.begin(), results_.end(), m,
                                MatchBetter());
    results_.insert(pos, std::move(m));
    if (results_.size() > options_.k) {
      results_.pop_back();
    }
  }

  void Recurse(size_t depth, double score) {
    if (truncated_) return;
    ++steps_;
    if (options_.max_search_steps > 0 && steps_ > options_.max_search_steps) {
      truncated_ = true;
      return;
    }
    if (depth == order_.size()) {
      Record(score);
      return;
    }
    NodeId q = order_[depth];
    for (const Candidate& c : candidates_[q]) {
      double bound = score + c.sim + suffix_best_[depth + 1];
      // Candidates are sorted by sim, so all later bounds are worse.  Once
      // K matches are held, a branch that cannot STRICTLY beat the current
      // K-th score is abandoned: ties beyond the K-th are interchangeable
      // under top-K semantics, and exploring them all is exponential on
      // graphs with many equal-similarity candidates.
      if (HaveK() && bound <= Threshold() + kScoreEps) {
        break;
      }
      if (used_[c.node]) continue;
      if (!Consistent(q, c.node, depth)) continue;
      assign_[q] = c.node;
      used_[c.node] = true;
      Recurse(depth + 1, score + c.sim);
      used_[c.node] = false;
      assign_[q] = kInvalidNode;
      if (truncated_) return;
    }
  }

  const Graph& query_;
  const Graph& target_;
  const std::vector<std::vector<Candidate>>& candidates_;
  QueryOptions options_;
  KMatchStats* stats_;

  std::vector<NodeId> order_;
  std::vector<double> suffix_best_;
  std::vector<NodeId> assign_;
  std::vector<bool> used_;
  std::vector<Match> results_;  // kept sorted by MatchBetter, size <= k
  size_t steps_ = 0;
  size_t found_ = 0;
  bool truncated_ = false;
};

}  // namespace

std::vector<Match> KMatchOnGraph(
    const Graph& query, const Graph& target,
    const std::vector<std::vector<Candidate>>& candidates,
    const QueryOptions& options, KMatchStats* stats) {
  if (stats != nullptr) {
    *stats = KMatchStats();
  }
  if (query.empty()) return {};
  Searcher searcher(query, target, candidates, options, stats);
  return searcher.Run();
}

std::vector<Match> KMatch(const Graph& query, const FilterResult& filter,
                          const QueryOptions& options, KMatchStats* stats) {
  if (stats != nullptr) {
    *stats = KMatchStats();
  }
  if (filter.no_match) return {};
  std::vector<Match> local =
      KMatchOnGraph(query, filter.gv.graph, filter.candidates, options, stats);
  for (Match& m : local) {
    for (NodeId& v : m.mapping) {
      v = filter.gv.to_original[v];
    }
  }
  return local;
}

}  // namespace osq
