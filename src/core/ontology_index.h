// The ontology index I = {G_o1, ..., G_oN} (paper §IV-A, algorithm
// OntoIdx): N concept graphs of the same data graph, each built from a
// distinct concept label set so the index captures N different semantic
// perspectives.  Built once, queried by Gview (filtering.h) and maintained
// incrementally under data-graph updates (index_maintenance.h).

#ifndef OSQ_CORE_ONTOLOGY_INDEX_H_
#define OSQ_CORE_ONTOLOGY_INDEX_H_

#include <cstddef>
#include <vector>

#include "core/candidate_index.h"
#include "core/concept_graph.h"
#include "core/options.h"
#include "graph/graph.h"
#include "ontology/ontology_graph.h"
#include "ontology/similarity.h"

namespace osq {

struct IndexBuildStats {
  // Aggregated over all concept graphs.
  size_t total_blocks = 0;
  size_t total_splits = 0;
  // Per concept graph.
  std::vector<ConceptGraphStats> per_graph;
};

// Builds the similarity function an index with `options` uses.
SimilarityFunction MakeSimilarity(const IndexOptions& options);

class OntologyIndex {
 public:
  // Builds the index.  `g` and `o` are borrowed and must outlive the index;
  // `g` may later be mutated only through the maintenance API.
  // options.num_threads > 1 builds the concept graphs in parallel; the
  // resulting index is identical for every thread count.
  static OntologyIndex Build(const Graph& g, const OntologyGraph& o,
                             const IndexOptions& options,
                             IndexBuildStats* stats = nullptr);

  // Reassembles an index from pre-built concept graphs (deserialization
  // path; see core/index_io.h).  The concept graphs must have been built
  // over the same `g` and `o`.  The candidate-pruning index is rebuilt
  // from scratch over the restored partitions.
  static OntologyIndex FromParts(const Graph& g, const OntologyGraph& o,
                                 const IndexOptions& options,
                                 std::vector<ConceptGraph> graphs);

  // Like FromParts, but adopts an already-restored candidate index instead
  // of rebuilding it — the binary snapshot path (core/snapshot.h), where
  // skipping the rebuild is most of the cold-start win.  `candidate_index`
  // must have been exported from an index over the same `g` and `graphs`.
  static OntologyIndex FromLoadedParts(const Graph& g, const OntologyGraph& o,
                                       const IndexOptions& options,
                                       std::vector<ConceptGraph> graphs,
                                       CandidateIndex candidate_index);

  OntologyIndex(OntologyIndex&&) = default;
  OntologyIndex& operator=(OntologyIndex&&) = default;
  OntologyIndex(const OntologyIndex&) = default;
  OntologyIndex& operator=(const OntologyIndex&) = default;

  const IndexOptions& options() const { return options_; }
  const SimilarityFunction& sim() const { return sim_; }
  const Graph& data_graph() const { return *g_; }
  const OntologyGraph& ontology() const { return *o_; }

  size_t num_concept_graphs() const { return graphs_.size(); }
  const ConceptGraph& concept_graph(size_t i) const { return graphs_[i]; }
  ConceptGraph* mutable_concept_graph(size_t i) { return &graphs_[i]; }
  const std::vector<ConceptGraph>& concept_graphs() const { return graphs_; }

  // The precomputed candidate-pruning index (always built alongside the
  // concept graphs; QueryOptions::use_candidate_index controls whether the
  // filter consults it).
  const CandidateIndex& candidate_index() const { return candidate_index_; }

  // |I|: total blocks plus block edges across all concept graphs.
  size_t TotalSize() const;

  // True if at least one data node currently carries `label`.  Used by the
  // filter to discard candidate labels that cannot produce candidates.
  bool LabelOccursInData(LabelId label) const {
    return label < data_label_count_.size() && data_label_count_[label] > 0;
  }
  // Maintenance hook: records the label of a node added after Build.
  void RegisterDataLabel(LabelId label);

  // Maintenance hooks for the candidate index, called by ApplyUpdate /
  // AddNodeWithIndex AFTER the data graph and every concept graph reflect
  // the change: recompute the endpoint node signatures (resp. append the
  // new node's) and re-derive the block signatures of every block the
  // concept-graph repairs touched.
  void RepairCandidateIndexAfterEdge(NodeId from, NodeId to);
  void RegisterNodeInCandidateIndex(NodeId v);

  // Re-points the borrowed data-graph / ontology pointers (here and in
  // every concept graph) at relocated instances.  `g` and `o` must be the
  // same logical graphs the index was built over — only their addresses
  // may differ.  Called by QueryEngine's move operations after the
  // by-value graphs relocate.
  void Rebind(const Graph* g, const OntologyGraph* o);

  // Validates every concept graph; test / debugging aid.
  bool Validate() const;

 private:
  OntologyIndex() = default;

  const Graph* g_ = nullptr;          // not owned
  const OntologyGraph* o_ = nullptr;  // not owned
  SimilarityFunction sim_{0.9};
  IndexOptions options_;
  std::vector<ConceptGraph> graphs_;
  CandidateIndex candidate_index_;
  // data_label_count_[l] = number of data nodes labeled l at build time
  // plus nodes registered since.
  std::vector<uint32_t> data_label_count_;
};

}  // namespace osq

#endif  // OSQ_CORE_ONTOLOGY_INDEX_H_
