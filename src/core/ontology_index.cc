#include "core/ontology_index.h"

#include "common/check.h"
#include "common/rng.h"
#include "ontology/ontology_partition.h"

namespace osq {

SimilarityFunction MakeSimilarity(const IndexOptions& options) {
  switch (options.similarity_model) {
    case SimilarityModel::kLinear:
      return SimilarityFunction::Linear(options.similarity_cutoff);
    case SimilarityModel::kReciprocal:
      return SimilarityFunction::Reciprocal();
    case SimilarityModel::kExponential:
      break;
  }
  return SimilarityFunction::Exponential(options.similarity_base);
}

OntologyIndex OntologyIndex::Build(const Graph& g, const OntologyGraph& o,
                                   const IndexOptions& options,
                                   IndexBuildStats* stats) {
  OSQ_CHECK(options.num_concept_graphs >= 1);
  OntologyIndex index;
  index.g_ = &g;
  index.o_ = &o;
  index.sim_ = MakeSimilarity(options);
  index.options_ = options;

  Rng rng(options.seed);
  ConceptGraphOptions cg_options;
  cg_options.beta = options.beta;
  cg_options.edge_label_aware = options.edge_label_aware;

  IndexBuildStats local;
  for (size_t i = 0; i < options.num_concept_graphs; ++i) {
    std::vector<LabelId> concepts = SelectConceptLabels(
        o, index.sim_, options.beta, options.num_clusters, &rng);
    ConceptGraphStats cg_stats;
    index.graphs_.push_back(ConceptGraph::Build(
        g, o, index.sim_, cg_options, std::move(concepts), &cg_stats));
    local.total_blocks += cg_stats.final_blocks;
    local.total_splits += cg_stats.splits;
    local.per_graph.push_back(cg_stats);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    index.RegisterDataLabel(g.NodeLabel(v));
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return index;
}

OntologyIndex OntologyIndex::FromParts(const Graph& g, const OntologyGraph& o,
                                       const IndexOptions& options,
                                       std::vector<ConceptGraph> graphs) {
  OSQ_CHECK(!graphs.empty());
  OntologyIndex index;
  index.g_ = &g;
  index.o_ = &o;
  index.sim_ = MakeSimilarity(options);
  index.options_ = options;
  index.graphs_ = std::move(graphs);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    index.RegisterDataLabel(g.NodeLabel(v));
  }
  return index;
}

void OntologyIndex::RegisterDataLabel(LabelId label) {
  if (label >= data_label_count_.size()) {
    data_label_count_.resize(label + 1, 0);
  }
  ++data_label_count_[label];
}

size_t OntologyIndex::TotalSize() const {
  size_t total = 0;
  for (const ConceptGraph& cg : graphs_) {
    total += cg.SizeNodesPlusEdges();
  }
  return total;
}

bool OntologyIndex::Validate() const {
  for (const ConceptGraph& cg : graphs_) {
    if (!cg.Validate()) return false;
  }
  return true;
}

}  // namespace osq
