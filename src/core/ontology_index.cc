#include "core/ontology_index.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "ontology/ontology_partition.h"

namespace osq {

SimilarityFunction MakeSimilarity(const IndexOptions& options) {
  switch (options.similarity_model) {
    case SimilarityModel::kLinear:
      return SimilarityFunction::Linear(options.similarity_cutoff);
    case SimilarityModel::kReciprocal:
      return SimilarityFunction::Reciprocal();
    case SimilarityModel::kExponential:
      break;
  }
  return SimilarityFunction::Exponential(options.similarity_base);
}

OntologyIndex OntologyIndex::Build(const Graph& g, const OntologyGraph& o,
                                   const IndexOptions& options,
                                   IndexBuildStats* stats) {
  OSQ_CHECK(options.num_concept_graphs >= 1);
  OntologyIndex index;
  index.g_ = &g;
  index.o_ = &o;
  index.sim_ = MakeSimilarity(options);
  index.options_ = options;

  Rng rng(options.seed);
  ConceptGraphOptions cg_options;
  cg_options.beta = options.beta;
  cg_options.edge_label_aware = options.edge_label_aware;

  // Concept-label selection stays sequential so the RNG stream (and thus
  // the built index) is identical for every thread count; the expensive
  // per-partition ConceptGraph::Build calls then fan out, and stats merge
  // in graph order.
  size_t ng = options.num_concept_graphs;
  std::vector<std::vector<LabelId>> concepts(ng);
  for (size_t i = 0; i < ng; ++i) {
    concepts[i] = SelectConceptLabels(o, index.sim_, options.beta,
                                      options.num_clusters, &rng);
  }
  std::vector<std::optional<ConceptGraph>> graphs(ng);
  std::vector<ConceptGraphStats> cg_stats(ng);
  ParallelFor(options.num_threads, ng, [&](size_t i) {
    graphs[i] = ConceptGraph::Build(g, o, index.sim_, cg_options,
                                    std::move(concepts[i]), &cg_stats[i]);
  });

  IndexBuildStats local;
  for (size_t i = 0; i < ng; ++i) {
    index.graphs_.push_back(std::move(*graphs[i]));
    local.total_blocks += cg_stats[i].final_blocks;
    local.total_splits += cg_stats[i].splits;
    local.per_graph.push_back(cg_stats[i]);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    index.RegisterDataLabel(g.NodeLabel(v));
  }
  index.candidate_index_ =
      CandidateIndex::Build(g, index.graphs_, options.num_threads);
  if (stats != nullptr) {
    *stats = local;
  }
  return index;
}

OntologyIndex OntologyIndex::FromParts(const Graph& g, const OntologyGraph& o,
                                       const IndexOptions& options,
                                       std::vector<ConceptGraph> graphs) {
  OSQ_CHECK(!graphs.empty());
  OntologyIndex index;
  index.g_ = &g;
  index.o_ = &o;
  index.sim_ = MakeSimilarity(options);
  index.options_ = options;
  index.graphs_ = std::move(graphs);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    index.RegisterDataLabel(g.NodeLabel(v));
  }
  // The candidate index is derived data: rebuild it over the restored
  // partitions (index_io pins the graph identity with a content hash, so a
  // load against the wrong graph fails before reaching this point).
  index.candidate_index_ =
      CandidateIndex::Build(g, index.graphs_, options.num_threads);
  return index;
}

OntologyIndex OntologyIndex::FromLoadedParts(const Graph& g,
                                             const OntologyGraph& o,
                                             const IndexOptions& options,
                                             std::vector<ConceptGraph> graphs,
                                             CandidateIndex candidate_index) {
  OSQ_CHECK(!graphs.empty());
  OntologyIndex index;
  index.g_ = &g;
  index.o_ = &o;
  index.sim_ = MakeSimilarity(options);
  index.options_ = options;
  index.graphs_ = std::move(graphs);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    index.RegisterDataLabel(g.NodeLabel(v));
  }
  index.candidate_index_ = std::move(candidate_index);
  return index;
}

void OntologyIndex::RegisterDataLabel(LabelId label) {
  if (label >= data_label_count_.size()) {
    data_label_count_.resize(label + 1, 0);
  }
  ++data_label_count_[label];
}

void OntologyIndex::RepairCandidateIndexAfterEdge(NodeId from, NodeId to) {
  candidate_index_.OnEdgeChanged(*g_, from, to);
  for (size_t i = 0; i < graphs_.size(); ++i) {
    // Even when the partition did not move, the endpoint signatures just
    // changed, so their blocks' aggregates must be refreshed too.
    std::vector<BlockId> dirty = graphs_[i].TakeDirtyBlocks();
    dirty.push_back(graphs_[i].BlockOf(from));
    dirty.push_back(graphs_[i].BlockOf(to));
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    candidate_index_.RepairBlocks(i, *g_, graphs_[i], dirty);
  }
}

void OntologyIndex::RegisterNodeInCandidateIndex(NodeId v) {
  candidate_index_.OnNodeAdded(*g_, v);
  for (size_t i = 0; i < graphs_.size(); ++i) {
    candidate_index_.RepairBlocks(i, *g_, graphs_[i],
                                  graphs_[i].TakeDirtyBlocks());
  }
}

void OntologyIndex::Rebind(const Graph* g, const OntologyGraph* o) {
  g_ = g;
  o_ = o;
  for (ConceptGraph& cg : graphs_) {
    cg.Rebind(g, o);
  }
}

size_t OntologyIndex::TotalSize() const {
  size_t total = 0;
  for (const ConceptGraph& cg : graphs_) {
    total += cg.SizeNodesPlusEdges();
  }
  return total;
}

bool OntologyIndex::Validate() const {
  for (const ConceptGraph& cg : graphs_) {
    if (!cg.Validate()) return false;
  }
  return true;
}

}  // namespace osq
