#include "core/explain.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/timer.h"
#include "core/filtering.h"
#include "core/kmatch.h"

namespace osq {

std::string ExplainQuery(const OntologyIndex& index, const Graph& query,
                         const QueryOptions& options,
                         const LabelDictionary& dict,
                         const ExplainOptions& eopts) {
  std::ostringstream out;
  const Graph& g = index.data_graph();
  const OntologyGraph& o = index.ontology();
  const SimilarityFunction& sim = index.sim();

  out << "query: " << query.num_nodes() << " nodes, " << query.num_edges()
      << " edges; theta=" << options.theta << " k=" << options.k
      << (options.semantics == MatchSemantics::kInduced ? " (induced)"
                                                        : " (homomorphic)")
      << "\n";
  out << "data:  " << g.num_nodes() << " nodes, " << g.num_edges()
      << " edges; index: " << index.num_concept_graphs()
      << " concept graphs, |I|=" << index.TotalSize() << "\n\n";

  // Candidate labels per query node.
  uint32_t radius = sim.Radius(options.theta);
  for (NodeId u = 0; u < query.num_nodes(); ++u) {
    LabelId ql = query.NodeLabel(u);
    out << "node q" << u << " :" << dict.Name(ql)
        << "  (Radius(theta)=" << radius << ")\n";
    std::vector<LabelDistance> ball = o.BallAround(ql, radius);
    if (ball.empty()) {
      ball.push_back({ql, 0});  // label outside the ontology
    }
    size_t listed = 0;
    size_t in_data = 0;
    for (const LabelDistance& ld : ball) {
      bool present = index.LabelOccursInData(ld.label);
      if (present) ++in_data;
      if (present && listed < eopts.max_listed) {
        out << "    label " << dict.Name(ld.label)
            << "  sim=" << sim.SimAtDistance(ld.distance) << "\n";
        ++listed;
      }
    }
    out << "    " << ball.size() << " candidate label(s), " << in_data
        << " occur in the data graph\n";
  }

  // Filtering.
  WallTimer timer;
  FilterResult filter = GviewFilter(index, query, options);
  double filter_ms = timer.ElapsedMillis();
  out << "\nfiltering (Gview): " << filter_ms << " ms; initial candidate "
      << "blocks=" << filter.stats.initial_blocks
      << ", pruned=" << filter.stats.pruned_blocks << "\n";
  out << "  signature pruning: block rejections="
      << filter.stats.sig_block_rejections
      << ", node rejections=" << filter.stats.sig_node_rejections
      << "; refinement pruned nodes=" << filter.stats.pruned_nodes << "\n";
  if (filter.no_match) {
    out << "  => no match possible: Q(G) is empty (Prop. 4.2)\n";
    return out.str();
  }
  out << "  G_v: " << filter.stats.gv_nodes << " nodes, "
      << filter.stats.gv_edges << " edges ("
      << (g.num_nodes() > 0
              ? 100.0 * static_cast<double>(filter.stats.gv_nodes) /
                    static_cast<double>(g.num_nodes())
              : 0.0)
      << "% of |V|)\n";
  for (NodeId u = 0; u < query.num_nodes(); ++u) {
    out << "  cand(q" << u << "): " << filter.candidates[u].size()
        << " node(s)";
    size_t listed = 0;
    for (const Candidate& c : filter.candidates[u]) {
      if (listed++ >= eopts.max_listed) {
        out << " ...";
        break;
      }
      NodeId orig = filter.gv.to_original[c.node];
      out << (listed == 1 ? ":  " : ", ") << "v" << orig << ":"
          << dict.Name(g.NodeLabel(orig)) << "(" << c.sim << ")";
    }
    out << "\n";
  }

  // Verification.
  timer.Restart();
  KMatchStats stats;
  std::vector<Match> matches = KMatch(query, filter, options, &stats);
  double verify_ms = timer.ElapsedMillis();
  out << "\nverification (KMatch): " << verify_ms << " ms; "
      << stats.search_steps << " search steps, " << stats.matches_found
      << " matches found" << (stats.truncated ? " (truncated)" : "") << "\n";
  size_t listed = std::min(matches.size(), eopts.max_listed);
  for (size_t i = 0; i < listed; ++i) {
    out << "  #" << (i + 1) << " score=" << matches[i].score << " ";
    for (NodeId u = 0; u < query.num_nodes(); ++u) {
      NodeId v = matches[i].mapping[u];
      out << " q" << u << "->v" << v << ":" << dict.Name(g.NodeLabel(v));
    }
    out << "\n";
  }
  if (matches.size() > listed) {
    out << "  ... " << (matches.size() - listed) << " more\n";
  }
  return out.str();
}

}  // namespace osq
