// Human-readable query diagnostics ("EXPLAIN" for the ontology-based
// querying pipeline): per-query-node candidate labels with similarities,
// candidate counts per phase, G_v size, and the resulting top matches.
// Intended for interactive debugging of why a query does or does not
// match (e.g. through the osq_cli tool).

#ifndef OSQ_CORE_EXPLAIN_H_
#define OSQ_CORE_EXPLAIN_H_

#include <string>

#include "core/ontology_index.h"
#include "core/options.h"
#include "graph/graph.h"
#include "graph/label_dictionary.h"

namespace osq {

struct ExplainOptions {
  // Maximum candidate nodes / matches listed per section.
  size_t max_listed = 5;
};

// Runs the full filter + verify pipeline for `query` and renders a report.
// Does not mutate anything; safe on any valid engine state.
std::string ExplainQuery(const OntologyIndex& index, const Graph& query,
                         const QueryOptions& options,
                         const LabelDictionary& dict,
                         const ExplainOptions& eopts = {});

}  // namespace osq

#endif  // OSQ_CORE_EXPLAIN_H_
