// QueryEngine — the library's main entry point.
//
// Owns a data graph and its ontology graph, builds the ontology index once
// (paper Fig. 4, "index construction"), and evaluates ontology-based
// subgraph queries with the filtering-and-verification pipeline
// (Gview + KMatch).  Supports dynamic data graphs through the incremental
// maintenance API (paper §VI).
//
// Typical use:
//   LabelDictionary dict;
//   ... build Graph g and OntologyGraph o sharing `dict` ...
//   QueryEngine engine(std::move(g), std::move(o), IndexOptions{});
//   QueryResult r = engine.Query(query, {.theta = 0.9, .k = 10});
//   for (const Match& m : r.matches) ...

#ifndef OSQ_CORE_QUERY_ENGINE_H_
#define OSQ_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/filtering.h"
#include "core/index_maintenance.h"
#include "core/kmatch.h"
#include "core/match.h"
#include "core/ontology_index.h"
#include "core/options.h"
#include "graph/graph.h"
#include "graph/label_dictionary.h"
#include "ontology/ontology_graph.h"

namespace osq {

struct QueryResult {
  // Non-OK when the query graph was rejected (empty / disconnected).
  Status status;
  // Top-K matches, best first (original data-graph node ids).
  std::vector<Match> matches;
  // The completeness contract (DESIGN.md §9): kNone means `matches` is
  // the exact answer.  kDeadlineExceeded / kCancelled mean the evaluation
  // was interrupted — every returned match is still fully verified and
  // valid, but the set may be a strict subset of the true top-K (and is
  // timing-dependent).  Partial results must never be cached or otherwise
  // treated as the exact answer.
  StopReason completeness = StopReason::kNone;
  FilterStats filter_stats;
  KMatchStats verify_stats;
  // Phase timings, milliseconds.
  double filter_ms = 0.0;
  double verify_ms = 0.0;

  bool complete() const { return completeness == StopReason::kNone; }
};

class QueryEngine {
 public:
  // Takes ownership of the graphs; the index is built immediately.
  QueryEngine(Graph g, OntologyGraph o, const IndexOptions& options);

  // Assembles an engine around an already-built index (the snapshot load
  // path, core/snapshot.h).  `index` must have been built — or restored —
  // over exactly these graphs; it is rebound to their new addresses here.
  static QueryEngine FromPrebuilt(Graph g, OntologyGraph o,
                                  std::unique_ptr<OntologyIndex> index);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;
  // Moves rebind the index: the graphs live by value inside the engine,
  // so moving relocates them, and the index's borrowed Graph* /
  // OntologyGraph* are re-pointed at the new owner's members
  // (OntologyIndex::Rebind).  A moved-from engine must not be queried.
  QueryEngine(QueryEngine&& other) noexcept;
  QueryEngine& operator=(QueryEngine&& other) noexcept;

  const Graph& graph() const { return graph_; }
  const OntologyGraph& ontology() const { return ontology_; }
  const OntologyIndex& index() const { return *index_; }
  const IndexBuildStats& build_stats() const { return build_stats_; }
  double index_build_ms() const { return index_build_ms_; }

  // Evaluates `query` (paper's KMatch over the Gview-extracted G_v).
  // [[nodiscard]]: QueryResult carries the error status; dropping it
  // would silently swallow failures.
  [[nodiscard]] QueryResult Query(const Graph& query,
                                  const QueryOptions& options) const;

  // Convenience: parses `pattern` (see query/pattern_parser.h, e.g.
  // "(t:tourists)-[guide]->(m:museum)") against `dict` and evaluates it.
  // Parse failures surface in QueryResult::status.
  [[nodiscard]] QueryResult QueryPattern(std::string_view pattern,
                                         LabelDictionary* dict,
                                         const QueryOptions& options) const;

  // Dynamic updates: mutate the data graph and incrementally repair the
  // index (never rebuilds from scratch).
  bool ApplyUpdate(const GraphUpdate& update,
                   MaintenanceStats* stats = nullptr);
  MaintenanceStats ApplyUpdates(const std::vector<GraphUpdate>& updates);
  NodeId AddNode(LabelId label);

  // Monotone mutation counter: starts at 0 and advances by one for every
  // mutating call that changed the graph (an ApplyUpdates batch counts
  // once, no matter how many updates it contains; no-op calls do not
  // count).  The serving layer uses it as the snapshot version for cache
  // invalidation (serve/query_service.h).
  uint64_t version() const { return version_; }

 private:
  QueryEngine() = default;  // FromPrebuilt fills the members directly

  // The graphs live by value; the index (heap-allocated so its own
  // address is move-stable) borrows raw pointers into them and is rebound
  // by the move operations above.  Historically the graphs sat behind
  // unique_ptrs purely so moves kept the index's aliases alive by
  // accident; the explicit rebind repairs that dependency.
  Graph graph_;
  OntologyGraph ontology_;
  std::unique_ptr<OntologyIndex> index_;
  IndexBuildStats build_stats_;
  double index_build_ms_ = 0.0;
  uint64_t version_ = 0;
};

}  // namespace osq

#endif  // OSQ_CORE_QUERY_ENGINE_H_
