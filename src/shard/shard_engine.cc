#include "shard/shard_engine.h"

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "core/filtering.h"
#include "core/kmatch.h"
#include "graph/query_graph.h"

namespace osq {

ShardEngine::ShardEngine(const ShardSpec& spec, const OntologyGraph& ontology,
                         const IndexOptions& index_options)
    : engine_(spec.sub.graph, ontology, index_options),
      to_global_(spec.members),
      from_global_(spec.sub.from_original),
      owned_(spec.owned.begin(), spec.owned.end()) {
  for (char o : owned_) num_owned_ += o != 0 ? 1 : 0;
}

QuerySimTables ShardEngine::PrepareQuery(const Graph& query,
                                         const QueryOptions& options) const {
  return ComputeQuerySimTables(engine_.index().ontology(),
                               engine_.index().sim(), query, options.theta);
}

QueryResult ShardEngine::Query(const Graph& query, NodeId pivot,
                               const QueryOptions& options,
                               const Deadline& deadline,
                               const QuerySimTables* shared_sims) const {
  QueryResult result;
  result.status = ValidateQuery(query);
  if (!result.status.ok()) return result;

  // Mirror QueryEngine::Query: one control block carries the absolute
  // deadline (fixed by the coordinator) so filtering and verification on
  // every shard share one budget.
  ExecControl exec;
  exec.deadline = deadline;
  exec.cancel = options.cancel;
  // A shard that starts past the shared deadline (stalled sibling, queue
  // delay) must not burn a fresh budget: report the degradation without
  // doing any work.  The amortized in-loop polls would otherwise let a
  // small shard run to completion before the first stride fires.
  StopReason early = exec.Check();
  if (early != StopReason::kNone) {
    result.completeness = early;
    return result;
  }
  WallTimer timer;
  // The ownership restriction is pushed INTO the filter: seeding the pivot
  // from owned nodes only lets both refinement fixpoints propagate the cut
  // to the other query nodes, so per-shard filter cost tracks the shard's
  // partition instead of re-running the full filter on the halo-inflated
  // subgraph (this is what keeps N-shard scatter overhead structural).
  PivotRestriction restriction;
  restriction.query_node = pivot;
  restriction.allowed = &owned_;
  FilterResult filter = GviewFilter(engine_.index(), query, options, &exec,
                                    &restriction, shared_sims);
  result.filter_ms = timer.ElapsedMillis();
  result.filter_stats = filter.stats;

  // Belt-and-braces dedup: the restriction above already confined pivot
  // candidates to owned nodes; keep the explicit erase so ownership never
  // silently leaks even if the filter path changes.  Candidate node ids
  // are G_v-local; hop through gv.to_original to shard-local ids.
  if (!filter.no_match && pivot < filter.candidates.size()) {
    std::vector<Candidate>& pivots = filter.candidates[pivot];
    pivots.erase(std::remove_if(pivots.begin(), pivots.end(),
                                [&](const Candidate& c) {
                                  NodeId local =
                                      filter.gv.to_original[c.node];
                                  return owned_[local] == 0;
                                }),
                 pivots.end());
  }

  timer.Restart();
  result.matches = KMatch(query, filter, options, &result.verify_stats, &exec);
  result.verify_ms = timer.ElapsedMillis();
  result.completeness =
      MergeStopReason(filter.stats.stopped, result.verify_stats.stopped);

  // KMatch translated G_v-local to shard-local ids; lift to global ids so
  // the coordinator's merge compares matches in one shared namespace.
  // Scores are canonical per-label sums, already shard-invariant.
  for (Match& m : result.matches) {
    for (NodeId& v : m.mapping) {
      if (v != kInvalidNode) v = to_global_[v];
    }
  }
  return result;
}

void ShardEngine::AddNodeGlobal(NodeId global, LabelId label, bool owned) {
  if (LocalOf(global) != kInvalidNode) return;  // already a member
  NodeId local = engine_.AddNode(label);
  if (to_global_.size() <= local) to_global_.resize(local + 1, kInvalidNode);
  to_global_[local] = global;
  if (from_global_.size() <= global) {
    from_global_.resize(global + 1, kInvalidNode);
  }
  from_global_[global] = local;
  if (owned_.size() <= local) owned_.resize(local + 1, 0);
  owned_[local] = owned ? 1 : 0;
  if (owned) ++num_owned_;
}

bool ShardEngine::ApplyUpdateGlobal(const GraphUpdate& update) {
  NodeId from = LocalOf(update.edge.from);
  NodeId to = LocalOf(update.edge.to);
  if (from == kInvalidNode || to == kInvalidNode) return false;
  GraphUpdate local = update;
  local.edge.from = from;
  local.edge.to = to;
  return engine_.ApplyUpdate(local);
}

}  // namespace osq
