#include "shard/partitioner.h"

#include <algorithm>
#include <deque>

#include "graph/graph_algorithms.h"

namespace osq {

namespace {

// splitmix64 finalizer: deterministic, uniform, cheap.  The shard of a
// node must be a pure function of its id so every process partitions
// identically (no RNG state, no placement feedback).
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t OwnerOfId(NodeId global, ShardPolicy policy, size_t num_shards,
                 size_t initial_nodes, size_t range_block) {
  if (num_shards <= 1) return 0;
  if (policy == ShardPolicy::kRange && global < initial_nodes) {
    size_t owner = global / range_block;
    return owner < num_shards ? owner : num_shards - 1;
  }
  return static_cast<size_t>(MixId(global) % num_shards);
}

size_t RangeBlock(size_t initial_nodes, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  size_t block = (initial_nodes + num_shards - 1) / num_shards;
  return block == 0 ? 1 : block;
}

// Undirected BFS relaxation from `sources` (already at their final
// depths), bounded by `radius`.  Improves depth[] in place and reports
// every node whose depth dropped from kUnreachable (a new member) through
// `on_new_member`, in BFS discovery order.
template <typename Fn>
void RelaxDepths(const Graph& g, uint32_t radius,
                 std::vector<uint32_t>* depth, std::deque<NodeId> frontier,
                 Fn&& on_new_member) {
  while (!frontier.empty()) {
    NodeId v = frontier.front();
    frontier.pop_front();
    uint32_t next = (*depth)[v] + 1;
    if (next > radius) continue;
    auto visit = [&](NodeId n) {
      if (next < (*depth)[n]) {
        bool was_member = (*depth)[n] != kUnreachable;
        (*depth)[n] = next;
        if (!was_member) on_new_member(n);
        frontier.push_back(n);
      }
    };
    for (const AdjEntry& e : g.OutEdges(v)) visit(e.node);
    for (const AdjEntry& e : g.InEdges(v)) visit(e.node);
  }
}

}  // namespace

GraphPartitioner::GraphPartitioner(const Graph& g, const ShardOptions& options)
    : graph_(g),
      options_(options),
      initial_nodes_(g.num_nodes()),
      range_block_(RangeBlock(g.num_nodes(), options.num_shards)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
}

size_t GraphPartitioner::OwnerOf(NodeId global) const {
  return OwnerOfId(global, options_.policy, options_.num_shards,
                   initial_nodes_, range_block_);
}

ShardPlan GraphPartitioner::Partition() const {
  ShardPlan plan;
  plan.options = options_;
  plan.initial_nodes = initial_nodes_;
  plan.shards.resize(options_.num_shards);

  for (size_t s = 0; s < options_.num_shards; ++s) {
    ShardSpec& spec = plan.shards[s];
    std::vector<uint32_t> depth(graph_.num_nodes(), kUnreachable);
    std::deque<NodeId> frontier;
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (OwnerOf(v) == s) {
        depth[v] = 0;
        frontier.push_back(v);
      }
    }
    RelaxDepths(graph_, options_.halo_radius, &depth, std::move(frontier),
                [](NodeId) {});
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      if (depth[v] == kUnreachable) continue;
      spec.members.push_back(v);
      spec.owned.push_back(depth[v] == 0 ? 1 : 0);
    }
    // members is ascending by construction, so the induced subgraph's
    // local ids preserve global order (N=1 degenerates to the identity).
    spec.sub = InducedSubgraph(graph_, spec.members);
  }
  return plan;
}

PivotChoice ChoosePivot(const Graph& query) {
  PivotChoice best;
  best.eccentricity = kUnreachable;
  for (NodeId u = 0; u < query.num_nodes(); ++u) {
    std::vector<uint32_t> dist = UndirectedBfsDistances(query, u);
    uint32_t ecc = 0;
    for (uint32_t d : dist) ecc = std::max(ecc, d);
    if (ecc < best.eccentricity) {
      best.pivot = u;
      best.eccentricity = ecc;
    }
  }
  return best;
}

UpdateRouter::UpdateRouter(const Graph& g, const ShardPlan& plan)
    : reference_(g),
      options_(plan.options),
      initial_nodes_(plan.initial_nodes),
      range_block_(RangeBlock(plan.initial_nodes, plan.options.num_shards)) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  depth_.assign(options_.num_shards,
                std::vector<uint32_t>(g.num_nodes(), kUnreachable));
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    const ShardSpec& spec = plan.shards[s];
    // Rebuild depths with one owned-set BFS per shard (the plan only
    // records membership, not distances).
    std::deque<NodeId> frontier;
    for (size_t i = 0; i < spec.members.size(); ++i) {
      if (spec.owned[i] != 0) {
        depth_[s][spec.members[i]] = 0;
        frontier.push_back(spec.members[i]);
      }
    }
    RelaxDepths(reference_, options_.halo_radius, &depth_[s],
                std::move(frontier), [](NodeId) {});
  }
}

bool UpdateRouter::IsMember(size_t shard, NodeId global) const {
  return shard < depth_.size() && global < depth_[shard].size() &&
         depth_[shard][global] != kUnreachable;
}

void UpdateRouter::GrowMembership(size_t shard, NodeId from, NodeId to,
                                  ShardDelta* delta) {
  std::vector<uint32_t>& depth = depth_[shard];
  std::deque<NodeId> frontier;
  // The new edge can only shorten distances through its endpoints; seed
  // the relaxation with whichever endpoint improves.
  auto seed = [&](NodeId a, NodeId b) {
    if (depth[a] == kUnreachable) return;
    uint32_t next = depth[a] + 1;
    if (next <= options_.halo_radius && next < depth[b]) {
      bool was_member = depth[b] != kUnreachable;
      depth[b] = next;
      if (!was_member) delta->node_adds.push_back(ShardDelta::NodeAdd{
          b, reference_.NodeLabel(b), OwnerOfId(b, options_.policy,
                                                options_.num_shards,
                                                initial_nodes_,
                                                range_block_) == shard});
      frontier.push_back(b);
    }
  };
  seed(from, to);
  seed(to, from);
  RelaxDepths(reference_, options_.halo_radius, &depth, std::move(frontier),
              [&](NodeId n) {
                delta->node_adds.push_back(ShardDelta::NodeAdd{
                    n, reference_.NodeLabel(n),
                    OwnerOfId(n, options_.policy, options_.num_shards,
                              initial_nodes_, range_block_) == shard});
              });
  if (delta->node_adds.empty()) return;
  // Every new member must arrive with all of its induced edges so the
  // shard graph stays exactly induced(reference, members).  Membership is
  // already final in depth[], so edges between two new members are
  // emitted once: when the *second* endpoint (in node_adds order) is
  // processed, guarded by the emitted set below.
  std::vector<char> added(reference_.num_nodes(), 0);
  for (const ShardDelta::NodeAdd& add : delta->node_adds) {
    NodeId n = add.global;
    for (const AdjEntry& e : reference_.OutEdges(n)) {
      if (depth[e.node] == kUnreachable) continue;
      if (added[e.node] != 0) continue;  // counterpart already emitted it
      delta->updates.push_back(GraphUpdate::Insert(n, e.node, e.label));
    }
    for (const AdjEntry& e : reference_.InEdges(n)) {
      if (depth[e.node] == kUnreachable) continue;
      if (added[e.node] != 0) continue;
      delta->updates.push_back(GraphUpdate::Insert(e.node, n, e.label));
    }
    added[n] = 1;
  }
}

std::vector<ShardDelta> UpdateRouter::Route(const GraphUpdate& update,
                                            bool* applied) {
  std::vector<ShardDelta> deltas(options_.num_shards);
  NodeId a = update.edge.from;
  NodeId b = update.edge.to;
  bool changed;
  if (update.kind == GraphUpdate::Kind::kInsertEdge) {
    changed = reference_.AddEdge(a, b, update.edge.label);
  } else {
    changed = reference_.RemoveEdge(a, b, update.edge.label);
  }
  if (applied != nullptr) *applied = changed;
  if (!changed) return deltas;  // duplicate insert / missing delete: no-op

  for (size_t s = 0; s < options_.num_shards; ++s) {
    ShardDelta& delta = deltas[s];
    if (update.kind == GraphUpdate::Kind::kInsertEdge) {
      GrowMembership(s, a, b, &delta);
      // The new members arrived with all their induced edges (which
      // include this one when it touches a new member); otherwise route
      // the edge iff both endpoints are members.
      bool covered = false;
      for (const ShardDelta::NodeAdd& add : delta.node_adds) {
        if (add.global == a || add.global == b) covered = true;
      }
      if (!covered && depth_[s][a] != kUnreachable &&
          depth_[s][b] != kUnreachable) {
        delta.updates.push_back(update);
      }
    } else {
      // Deletion: membership never shrinks (stale-superset halos are
      // sound); drop the edge wherever both endpoints live.
      if (depth_[s][a] != kUnreachable && depth_[s][b] != kUnreachable) {
        delta.updates.push_back(update);
      }
    }
  }
  return deltas;
}

std::vector<ShardDelta> UpdateRouter::RouteAddNode(LabelId label,
                                                   NodeId* global) {
  std::vector<ShardDelta> deltas(options_.num_shards);
  NodeId id = reference_.AddNode(label);
  if (global != nullptr) *global = id;
  size_t owner = OwnerOfId(id, options_.policy, options_.num_shards,
                           initial_nodes_, range_block_);
  for (size_t s = 0; s < options_.num_shards; ++s) {
    depth_[s].push_back(s == owner ? 0 : kUnreachable);
  }
  deltas[owner].node_adds.push_back(ShardDelta::NodeAdd{id, label, true});
  return deltas;
}

}  // namespace osq
