// Per-shard engine adapter for the sharded serving tier (DESIGN.md §13).
//
// ShardEngine is the ONLY shard-layer component allowed to touch
// QueryEngine / Graph internals (enforced by the osq-shard-isolation lint
// rule): it owns one QueryEngine built over the shard's induced subgraph
// and translates between the shard's local id space and global ids.
//
// Query(query, pivot, options) runs the standard filter-and-verify
// pipeline on the shard with ONE extra step: the pivot query node's
// candidate list is restricted to nodes this shard *owns* before
// verification.  Every global match maps the pivot to exactly one data
// node, and that node is owned by exactly one shard — so the restriction
// partitions the global match set across shards with no duplicates and no
// gaps (halo replication guarantees the rest of each match is present;
// see shard/partitioner.h).  Returned matches use GLOBAL node ids and
// canonical scores, so the coordinator's merge is bit-identical to a
// single-engine evaluation.

#ifndef OSQ_SHARD_SHARD_ENGINE_H_
#define OSQ_SHARD_SHARD_ENGINE_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "core/options.h"
#include "core/query_engine.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "ontology/ontology_graph.h"
#include "shard/partitioner.h"

namespace osq {

class ShardEngine {
 public:
  // Builds the shard's QueryEngine over spec.sub with the shared ontology
  // (copied — engines own their graphs) and index options.
  ShardEngine(const ShardSpec& spec, const OntologyGraph& ontology,
              const IndexOptions& index_options);

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;
  ShardEngine(ShardEngine&&) = default;
  ShardEngine& operator=(ShardEngine&&) = default;

  // Precomputes the query's label-similarity tables (ontology balls) for
  // reuse across the whole scatter: the tables depend only on the shared
  // ontology / similarity function / theta, so the coordinator calls this
  // ONCE per request on any shard and passes the result to every
  // Query(...) call — query preprocessing cost stays O(1) in the shard
  // count.
  [[nodiscard]] QuerySimTables PrepareQuery(const Graph& query,
                                            const QueryOptions& options) const;

  // Evaluates `query` against this shard, keeping only matches whose
  // `pivot` image is owned here.  Matches come back in global ids.
  // `deadline` is the ABSOLUTE deadline fixed once by the coordinator
  // before the scatter, so a shard that starts late (stalled sibling,
  // queueing) sees the same expiry as the rest of the fan-out instead of
  // a fresh budget.  `shared_sims` (optional) carries PrepareQuery's
  // tables.  NOT synchronized — the coordinator serializes via its
  // snapshot lock.
  [[nodiscard]] QueryResult Query(const Graph& query, NodeId pivot,
                                  const QueryOptions& options,
                                  const Deadline& deadline,
                                  const QuerySimTables* shared_sims =
                                      nullptr) const;

  // Applies one delta op, translating global ids to shard-local ones.
  // Unknown endpoints are a routing bug upstream and are skipped.
  void AddNodeGlobal(NodeId global, LabelId label, bool owned);
  bool ApplyUpdateGlobal(const GraphUpdate& update);

  // Monotone per-shard snapshot version (one component of the service's
  // VersionVector); advances on every mutating call that changed the
  // shard graph.
  uint64_t version() const { return engine_.version(); }

  size_t num_nodes() const { return engine_.graph().num_nodes(); }
  size_t num_owned() const { return num_owned_; }

 private:
  NodeId LocalOf(NodeId global) const {
    return global < from_global_.size() ? from_global_[global]
                                        : kInvalidNode;
  }

  QueryEngine engine_;
  // local -> global id, parallel to the shard graph's nodes.
  std::vector<NodeId> to_global_;
  // global -> local id (kInvalidNode when not a member); grows with the
  // global id space.
  std::vector<NodeId> from_global_;
  // owned_[local] != 0 iff this shard owns the node (pivot restriction).
  std::vector<char> owned_;
  size_t num_owned_ = 0;
};

}  // namespace osq

#endif  // OSQ_SHARD_SHARD_ENGINE_H_
