#include "shard/sharded_query_service.h"

#include <algorithm>
#include <mutex>
#include <string>
#include <utility>

#include "common/deadline.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/match.h"
#include "graph/query_graph.h"

namespace osq {

namespace {

void MergeShardStats(const QueryResult& from, QueryResult* into) {
  into->filter_stats.initial_blocks += from.filter_stats.initial_blocks;
  into->filter_stats.pruned_blocks += from.filter_stats.pruned_blocks;
  into->filter_stats.pruned_nodes += from.filter_stats.pruned_nodes;
  into->filter_stats.sig_block_rejections +=
      from.filter_stats.sig_block_rejections;
  into->filter_stats.sig_node_rejections +=
      from.filter_stats.sig_node_rejections;
  into->filter_stats.gv_nodes += from.filter_stats.gv_nodes;
  into->filter_stats.gv_edges += from.filter_stats.gv_edges;
  into->filter_stats.stopped =
      MergeStopReason(into->filter_stats.stopped, from.filter_stats.stopped);
  into->verify_stats.search_steps += from.verify_stats.search_steps;
  into->verify_stats.matches_found += from.verify_stats.matches_found;
  into->verify_stats.truncated =
      into->verify_stats.truncated || from.verify_stats.truncated;
  into->verify_stats.stopped =
      MergeStopReason(into->verify_stats.stopped, from.verify_stats.stopped);
  into->verify_stats.root_partitions += from.verify_stats.root_partitions;
  into->verify_stats.partitions_skipped +=
      from.verify_stats.partitions_skipped;
  into->filter_ms += from.filter_ms;
  into->verify_ms += from.verify_ms;
}

}  // namespace

ShardedQueryService::ShardedQueryService(const Graph& g,
                                         const OntologyGraph& ontology,
                                         const IndexOptions& index_options,
                                         const ShardOptions& shard_options,
                                         const ServeOptions& serve_options)
    : ShardedQueryService(g, ontology, index_options,
                          GraphPartitioner(g, shard_options).Partition(),
                          serve_options) {}

ShardedQueryService::ShardedQueryService(const Graph& g,
                                         const OntologyGraph& ontology,
                                         const IndexOptions& index_options,
                                         const ShardPlan& plan,
                                         const ServeOptions& serve_options)
    : shard_options_(plan.options),
      options_(serve_options),
      router_(g, plan),
      cache_(serve_options.cache_capacity) {
  shards_.reserve(plan.shards.size());
  for (const ShardSpec& spec : plan.shards) {
    shards_.emplace_back(spec, ontology, index_options);
  }
}

VersionVector ShardedQueryService::CurrentVersionLocked() const {
  VersionVector v;
  v.v.reserve(shards_.size());
  for (const ShardEngine& shard : shards_) {
    v.v.push_back(shard.version());
  }
  return v;
}

QueryResult ShardedQueryService::ScatterGather(const Graph& query,
                                               const QueryOptions& options,
                                               size_t* shards_failed) {
  QueryResult merged;
  merged.status = ValidateQuery(query);
  if (!merged.status.ok()) return merged;
  PivotChoice pivot = ChoosePivot(query);
  if (pivot.eccentricity > shard_options_.halo_radius) {
    merged.status = Status::InvalidArgument(
        "query radius " + std::to_string(pivot.eccentricity) +
        " exceeds shard halo_radius " +
        std::to_string(shard_options_.halo_radius) +
        ": a shard could miss match nodes");
    return merged;
  }

  // Each shard evaluates under a shared cancel token: the caller's when
  // it supplied one, otherwise a private token that lets the first shard
  // to exceed the deadline cancel its siblings.
  QueryOptions child = options;
  const bool own_token = !child.cancel.cancellable();
  if (own_token) child.cancel = CancelToken::Cancellable();
  std::atomic<bool> deadline_tripped{false};
  // Fix the absolute deadline ONCE for the whole fan-out: a shard that
  // starts late (stalled sibling on a small pool) must see the same
  // expiry, not a fresh per-shard budget.
  const Deadline deadline = Deadline::AfterMillis(options.deadline_ms);
  // Query preprocessing (ontology balls) depends only on the shared
  // ontology, so it too is computed once and reused by every shard —
  // per-request setup cost stays O(1) in the shard count.
  const QuerySimTables shared_sims =
      shards_.front().PrepareQuery(query, options);

  const size_t n = shards_.size();
  std::vector<QueryResult> results(n);
  std::vector<char> failed(n, 0);
  ParallelFor(n, n, [&](size_t i) {
    if (fault_hook_ != nullptr) {
      Status s = fault_hook_(i);
      if (!s.ok()) {
        failed[i] = 1;
        return;
      }
    }
    results[i] =
        shards_[i].Query(query, pivot.pivot, child, deadline, &shared_sims);
    if (own_token &&
        results[i].completeness == StopReason::kDeadlineExceeded) {
      deadline_tripped.store(true, std::memory_order_relaxed);
      child.cancel.RequestCancel();
    }
  });

  size_t ok_shards = 0;
  StopReason completeness = StopReason::kNone;
  for (size_t i = 0; i < n; ++i) {
    if (failed[i] != 0) {
      completeness =
          MergeStopReason(completeness, StopReason::kShardUnavailable);
      ++*shards_failed;
      continue;
    }
    StopReason c = results[i].completeness;
    // Sibling-cancel remap: when OUR private token fired because a shard
    // hit the deadline, the siblings' "cancelled" really means
    // "deadline_exceeded" — the caller never asked to cancel.
    if (own_token && c == StopReason::kCancelled &&
        deadline_tripped.load(std::memory_order_relaxed)) {
      c = StopReason::kDeadlineExceeded;
    }
    completeness = MergeStopReason(completeness, c);
    merged.matches.insert(merged.matches.end(), results[i].matches.begin(),
                          results[i].matches.end());
    MergeShardStats(results[i], &merged);
    ++ok_shards;
  }
  if (ok_shards == 0 && n > 0) {
    merged.status = Status::Unavailable("all shards unavailable");
    merged.matches.clear();
    merged.completeness = StopReason::kShardUnavailable;
    return merged;
  }
  merged.completeness = completeness;

  // Per-shard match sets are disjoint (pivot ownership) and each is the
  // shard's exact top-K under MatchBetter with canonical scores, so the
  // global top-K is a sort + trim of the concatenation — bit-identical to
  // the single-engine answer.
  std::sort(merged.matches.begin(), merged.matches.end(), MatchBetter{});
  if (options.k > 0 && merged.matches.size() > options.k) {
    merged.matches.resize(options.k);
  }
  return merged;
}

ShardedServedResult ShardedQueryService::Query(const Graph& query,
                                               const QueryOptions& options) {
  ShardedServedResult served;
  WallTimer total;

  // Admission control, identical to QueryService: shed before the lock.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_inflight > 0 &&
      inflight_.load(std::memory_order_relaxed) > options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    served.shed = true;
    served.result.status = Status::Unavailable(
        "query shed: service at max_inflight capacity");
    served.serve_us = total.ElapsedMicros();
    shed_.fetch_add(1, std::memory_order_relaxed);
    return served;
  }

  QueryOptions effective = options;
  if (effective.deadline_ms <= 0.0 && options_.default_deadline_ms > 0.0) {
    effective.deadline_ms = options_.default_deadline_ms;
  }
  std::string key = QuerySignature(query, effective);

  WallTimer wait;
  // Burst classification + write-intent gate, identical to QueryService.
  bool write_burst =
      writers_pending_.load(std::memory_order_relaxed) > 0;
  {
    std::scoped_lock<std::mutex> gate(writer_gate_);
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  served.wait_us = wait.ElapsedMicros();
  read_wait_tenth_us_.fetch_add(ToTenthUs(served.wait_us),
                                std::memory_order_relaxed);
  write_burst = write_burst ||
                writers_pending_.load(std::memory_order_relaxed) > 0;
  served.version = CurrentVersionLocked();

  if (cache_.Lookup(key, served.version, &served.result)) {
    served.cache_hit = true;
  } else {
    served.result = ScatterGather(query, effective, &served.shards_failed);
    // Only complete results are cacheable; a degraded merge (deadline,
    // cancel, or a failed shard) is missing matches and must never be
    // served as the exact answer.
    if ((served.result.status.ok() || options_.cache_errors) &&
        served.result.complete()) {
      cache_.Insert(key, served.version, served.result);
    }
  }
  lock.unlock();
  inflight_.fetch_sub(1, std::memory_order_relaxed);

  served.serve_us = total.ElapsedMicros();
  queries_.fetch_add(1, std::memory_order_relaxed);
  switch (served.result.completeness) {
    case StopReason::kNone:
      complete_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kDeadlineExceeded:
      deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StopReason::kShardUnavailable:
      shard_unavailable_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (served.cache_hit) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hit_latency_.Record(served.serve_us);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (served.result.complete()) {
      miss_latency_.Record(served.serve_us);
    } else {
      degraded_latency_.Record(served.serve_us);
    }
  }
  if (write_burst) burst_read_latency_.Record(served.serve_us);
  return served;
}

void ShardedQueryService::ApplyDeltasLocked(
    const std::vector<ShardDelta>& deltas) {
  for (size_t s = 0; s < deltas.size() && s < shards_.size(); ++s) {
    for (const ShardDelta::NodeAdd& add : deltas[s].node_adds) {
      shards_[s].AddNodeGlobal(add.global, add.label, add.owned);
    }
    for (const GraphUpdate& update : deltas[s].updates) {
      // The router only emits updates whose endpoints are shard members
      // and whose effect is fresh; a false return here would mean a
      // routing bug, surfaced by the differential suite rather than a
      // crash in production.
      (void)shards_[s].ApplyUpdateGlobal(update);
    }
  }
}

void ShardedQueryService::InvalidateCacheLocked() {
  invalidations_.fetch_add(cache_.Invalidate(CurrentVersionLocked()),
                           std::memory_order_relaxed);
}

void ShardedQueryService::FinishWriteLocked(size_t applied) {
  update_batches_.fetch_add(1, std::memory_order_relaxed);
  if (applied == 0) return;  // no-op batch: snapshot cut unchanged
  updates_applied_.fetch_add(applied, std::memory_order_relaxed);
  InvalidateCacheLocked();
}

void ShardedQueryService::FinishNodeAddLocked() {
  update_batches_.fetch_add(1, std::memory_order_relaxed);
  nodes_added_.fetch_add(1, std::memory_order_relaxed);
  // Node adds advance the owning shard's version component, so the full
  // vector stamp moves and every cached entry is necessarily stale (see
  // QueryService::FinishNodeAddLocked for the single-scalar argument; the
  // vector case is identical per component).
  InvalidateCacheLocked();
}

bool ShardedQueryService::ApplyUpdate(const GraphUpdate& update) {
  WallTimer wait;
  writers_pending_.fetch_add(1, std::memory_order_relaxed);
  GaugeDecrementGuard pending(writers_pending_);
  std::scoped_lock<std::mutex> gate(writer_gate_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(ToTenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  WallTimer apply;
  bool applied = false;
  std::vector<ShardDelta> deltas = router_.Route(update, &applied);
  ApplyDeltasLocked(deltas);
  FinishWriteLocked(applied ? 1 : 0);
  write_apply_tenth_us_.fetch_add(ToTenthUs(apply.ElapsedMicros()),
                                  std::memory_order_relaxed);
  return applied;
}

MaintenanceStats ShardedQueryService::ApplyUpdates(
    const std::vector<GraphUpdate>& updates) {
  WallTimer wait;
  writers_pending_.fetch_add(1, std::memory_order_relaxed);
  GaugeDecrementGuard pending(writers_pending_);
  std::scoped_lock<std::mutex> gate(writer_gate_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(ToTenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  WallTimer apply;
  MaintenanceStats stats;
  for (const GraphUpdate& update : updates) {
    bool applied = false;
    std::vector<ShardDelta> deltas = router_.Route(update, &applied);
    ApplyDeltasLocked(deltas);
    if (applied) {
      ++stats.applied;
    } else {
      ++stats.skipped;
    }
  }
  FinishWriteLocked(stats.applied);
  write_apply_tenth_us_.fetch_add(ToTenthUs(apply.ElapsedMicros()),
                                  std::memory_order_relaxed);
  return stats;
}

NodeId ShardedQueryService::AddNode(LabelId label) {
  WallTimer wait;
  writers_pending_.fetch_add(1, std::memory_order_relaxed);
  GaugeDecrementGuard pending(writers_pending_);
  std::scoped_lock<std::mutex> gate(writer_gate_);
  std::unique_lock<std::shared_mutex> lock(mu_);
  write_wait_tenth_us_.fetch_add(ToTenthUs(wait.ElapsedMicros()),
                                 std::memory_order_relaxed);
  WallTimer apply;
  NodeId global = kInvalidNode;
  std::vector<ShardDelta> deltas = router_.RouteAddNode(label, &global);
  ApplyDeltasLocked(deltas);
  FinishNodeAddLocked();
  write_apply_tenth_us_.fetch_add(ToTenthUs(apply.ElapsedMicros()),
                                  std::memory_order_relaxed);
  return global;
}

VersionVector ShardedQueryService::version() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return CurrentVersionLocked();
}

ServeStats ShardedQueryService::Stats() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.cache_hits = hits_.load(std::memory_order_relaxed);
  s.cache_misses = misses_.load(std::memory_order_relaxed);
  s.complete = complete_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.shard_unavailable = shard_unavailable_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.cache_evictions = cache_.evictions();
  s.cache_invalidations = invalidations_.load(std::memory_order_relaxed) +
                          cache_.stale_drops();
  s.update_batches = update_batches_.load(std::memory_order_relaxed);
  s.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  s.nodes_added = nodes_added_.load(std::memory_order_relaxed);
  // ServeStats carries one scalar version; report the vector's component
  // sum (total applied batches across shards).
  for (uint64_t component : version().v) s.version += component;
  s.read_wait_us =
      static_cast<double>(
          read_wait_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.write_wait_us =
      static_cast<double>(
          write_wait_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.write_apply_us =
      static_cast<double>(
          write_apply_tenth_us_.load(std::memory_order_relaxed)) /
      10.0;
  s.hit_latency = hit_latency_.Summarize();
  s.miss_latency = miss_latency_.Summarize();
  s.degraded_latency = degraded_latency_.Summarize();
  s.burst_read_latency = burst_read_latency_.Summarize();
  return s;
}

}  // namespace osq
