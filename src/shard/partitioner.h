// Graph partitioning for the sharded scatter-gather serving tier
// (DESIGN.md §13).
//
// GraphPartitioner splits the data graph into N shards.  Every node has
// exactly one *owner* shard, chosen by a deterministic policy (hash or
// contiguous id ranges); each shard additionally replicates a *halo* — all
// nodes within `halo_radius` undirected hops of its owned set — and
// materializes the subgraph induced by owned ∪ halo.  Because a match is
// contained in the undirected ball of radius ecc(pivot) around the node
// matched to the query's pivot (every query edge is realized by a data
// edge), a shard can verify every match whose pivot image it owns without
// any cross-shard chatter, provided ecc(pivot) <= halo_radius.  The
// coordinator deduplicates by restricting the pivot's candidate list to
// owned nodes, so each global match is produced by exactly one shard.
//
// UpdateRouter keeps the invariants alive under the incIdx± write path:
// it owns a reference copy of the global graph plus per-shard hop-distance
// tables, and translates each global update into per-shard deltas —
// membership growth (a new edge can pull nodes into a halo; the router
// emits the node plus all of its induced edges) and edge routing to every
// shard containing both endpoints.  Deletions leave distance tables stale
// on the low side, which makes member sets *supersets* of the true
// radius-ball — sound for match containment, merely less minimal.

#ifndef OSQ_SHARD_PARTITIONER_H_
#define OSQ_SHARD_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/index_maintenance.h"
#include "graph/graph.h"
#include "graph/subgraph.h"
#include "graph/types.h"

namespace osq {

// How node ownership is assigned.  Both policies are pure functions of
// (node id, num_shards), so every run — and every process — partitions
// identically.
enum class ShardPolicy {
  // owner = splitmix64(id) % N: uniform, placement-independent.
  kHash,
  // Contiguous id blocks over the initial node range: owner = id / block.
  // Nodes created after partitioning fall outside the ranges and are
  // hash-routed.
  kRange,
};

struct ShardOptions {
  size_t num_shards = 1;
  ShardPolicy policy = ShardPolicy::kHash;
  // Halo depth in undirected hops.  Queries whose pivot eccentricity
  // exceeds this are rejected by the coordinator (the shard could miss
  // match nodes).  2 covers every star/triangle/path-of-5 shape.
  uint32_t halo_radius = 2;
};

// One shard's slice of the global graph.
struct ShardSpec {
  // Global ids of the shard's nodes (owned ∪ halo), ascending.  The
  // induced shard graph numbers its nodes by position in this list, so a
  // single shard over the whole graph is the identity mapping.
  std::vector<NodeId> members;
  // owned[i] != 0 iff members[i] is owned by this shard (not halo).
  std::vector<char> owned;
  // The subgraph of the global graph induced by `members`
  // (sub.to_original[local] == members[local]).
  Subgraph sub;
};

struct ShardPlan {
  ShardOptions options;
  // Node count at partition time; the range policy derives its block size
  // from it, and later-created nodes are hash-routed.
  size_t initial_nodes = 0;
  std::vector<ShardSpec> shards;
};

class GraphPartitioner {
 public:
  // `num_shards` == 0 is treated as 1.
  GraphPartitioner(const Graph& g, const ShardOptions& options);

  // Owner shard of a global node id (also defined for ids created after
  // partitioning — the range policy hash-routes those).
  [[nodiscard]] size_t OwnerOf(NodeId global) const;

  // Builds the full plan: ownership, halo BFS, induced shard subgraphs.
  [[nodiscard]] ShardPlan Partition() const;

  const ShardOptions& options() const { return options_; }

 private:
  const Graph& graph_;
  ShardOptions options_;
  size_t initial_nodes_;
  size_t range_block_;  // kRange block size, ceil(initial / N)
};

// The query node to scatter on: the one minimizing undirected eccentricity
// within the query graph (ties: lowest id).  `eccentricity` is
// kUnreachable for disconnected queries (rejected by ValidateQuery before
// any shard work).
struct PivotChoice {
  NodeId pivot = 0;
  uint32_t eccentricity = 0;
};
PivotChoice ChoosePivot(const Graph& query);

// One shard's portion of a routed global mutation, in GLOBAL node ids.
// Apply order: every `node_adds` entry first (ascending position), then
// `updates` in order — edges may reference nodes added by the same delta.
struct ShardDelta {
  struct NodeAdd {
    NodeId global;
    LabelId label;
    bool owned;
  };
  std::vector<NodeAdd> node_adds;
  std::vector<GraphUpdate> updates;

  bool empty() const { return node_adds.empty() && updates.empty(); }
};

// Translates global mutations into per-shard deltas while maintaining the
// membership invariants (see file comment).  Single-writer: the
// coordinator calls it under its exclusive snapshot lock.
class UpdateRouter {
 public:
  // `g` is copied as the reference graph; `plan` must come from the same
  // partitioner configuration the shards were built with.
  UpdateRouter(const Graph& g, const ShardPlan& plan);

  // Routes one edge update.  Returns one delta per shard (empty deltas
  // for unaffected shards) and sets *applied to whether the update
  // changed the reference graph (duplicates / missing edges are no-ops
  // and route nowhere).
  [[nodiscard]] std::vector<ShardDelta> Route(const GraphUpdate& update,
                                              bool* applied);

  // Creates a new global node and routes it to its owner shard (depth 0).
  // Returns the new global id via *global.
  [[nodiscard]] std::vector<ShardDelta> RouteAddNode(LabelId label,
                                                     NodeId* global);

  // Membership probe (tests / diagnostics).
  [[nodiscard]] bool IsMember(size_t shard, NodeId global) const;

  const Graph& reference() const { return reference_; }

 private:
  void GrowMembership(size_t shard, NodeId from, NodeId to,
                      ShardDelta* delta);

  Graph reference_;
  ShardOptions options_;
  size_t initial_nodes_;
  size_t range_block_;
  // depth_[s][v] = undirected hops from shard s's owned set to v at the
  // time v was (last) relaxed; kUnreachable = not a member.  Never grows
  // on deletion (stale-superset halos are sound).
  std::vector<std::vector<uint32_t>> depth_;
};

}  // namespace osq

#endif  // OSQ_SHARD_PARTITIONER_H_
