// ShardedQueryService — scatter-gather serving across N graph shards
// (DESIGN.md §13).
//
// The coordinator owns one per-shard engine adapter per shard (built from
// a GraphPartitioner plan) and serves queries by scattering the same query
// to every shard on the shared thread pool, then merging the per-shard
// top-K streams.  Merge determinism: every shard returns its exact top-K
// under the MatchBetter total order with canonical scores and global node
// ids, and the per-shard match sets partition the global match set (pivot
// ownership dedup, see shard/shard_engine.h) — so concatenate + sort +
// trim is bit-identical to a single-engine evaluation, for every shard
// count and both partitioning policies.
//
// Snapshot isolation uses a VERSION VECTOR, one component per shard: the
// writer applies each routed update batch under the exclusive snapshot
// lock (all shards mutate inside one critical section = one consistent
// cut), readers capture the vector under the shared lock, and the result
// cache stamps entries with the full vector — one stale shard component
// invalidates the entry (serve/result_cache.h).
//
// Writer fairness mirrors serve/query_service.h: a write-intent gate (a
// plain mutex writers hold across the exclusive acquisition and readers
// briefly pass through) bounds a routed batch's wait to the drain time of
// already-admitted readers, regardless of read arrival rate.
//
// Degradation: the service-level deadline propagates to every shard; the
// first shard to exceed it cancels its siblings (their results come back
// remapped to deadline_exceeded, not cancelled, since the caller never
// asked to cancel) and completeness is max-precedence-merged.  A shard
// failed by the ShardFaultHook test seam contributes
// StopReason::kShardUnavailable; partial results are returned but never
// cached.  Admission control (max_inflight) sheds before the lock,
// exactly like the single-engine QueryService.

#ifndef OSQ_SHARD_SHARDED_QUERY_SERVICE_H_
#define OSQ_SHARD_SHARDED_QUERY_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "core/index_maintenance.h"
#include "core/options.h"
#include "graph/graph.h"
#include "ontology/ontology_graph.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "shard/partitioner.h"
#include "shard/shard_engine.h"

namespace osq {

// A merged QueryResult plus per-request serving metadata (the sharded
// analogue of ServedResult).
struct ShardedServedResult {
  QueryResult result;
  bool cache_hit = false;
  bool shed = false;
  // Per-shard snapshot cut the result reflects.
  VersionVector version;
  // Shards that contributed nothing (fault hook / engine unavailability).
  size_t shards_failed = 0;
  double wait_us = 0.0;
  double serve_us = 0.0;
};

// Test seam: called at the start of each shard's scatter task; a non-OK
// status fails that shard for this request (the coordinator degrades
// instead of hanging).  Install before serving traffic.
using ShardFaultHook = std::function<Status(size_t shard)>;

class ShardedQueryService {
 public:
  // Partitions `g` per `shard_options` and builds one engine per shard.
  // `g` and `ontology` are copied (each shard owns its slice).
  ShardedQueryService(const Graph& g, const OntologyGraph& ontology,
                      const IndexOptions& index_options,
                      const ShardOptions& shard_options,
                      const ServeOptions& serve_options = ServeOptions{});

  ShardedQueryService(const ShardedQueryService&) = delete;
  ShardedQueryService& operator=(const ShardedQueryService&) = delete;

  // Scatter-gather evaluation against the current snapshot cut.  Safe to
  // call concurrently with itself and with the mutating calls below.
  // Queries whose pivot eccentricity exceeds the configured halo_radius
  // are rejected with kInvalidArgument (a shard could miss match nodes).
  [[nodiscard]] ShardedServedResult Query(const Graph& query,
                                          const QueryOptions& options);

  // Mutations: routed to the owning shard(s) and applied atomically with
  // respect to Query — readers see the whole routed batch or none of it.
  bool ApplyUpdate(const GraphUpdate& update);
  // [[nodiscard]]: the stats carry the applied/skipped split — dropping
  // them hides a batch that silently no-opped.
  [[nodiscard]] MaintenanceStats ApplyUpdates(
      const std::vector<GraphUpdate>& updates);
  NodeId AddNode(LabelId label);

  // Current per-shard snapshot cut.
  VersionVector version() const;

  // Point-in-time counters; ServeStats::version reports the sum of the
  // vector's components (total applied batches across shards).
  ServeStats Stats() const;

  size_t num_shards() const {
    // NOLINTNEXTLINE(osq-guarded-access): shard count is fixed at construction; only contents are guarded
    return shards_.size();
  }
  size_t cache_size() const { return cache_.size(); }
  size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  // Install the fault-injection seam.  Not synchronized against in-flight
  // queries — call before serving traffic (tests only).
  void set_fault_hook(ShardFaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  // Delegation target: the public constructor computes the plan once and
  // hands it to both the shard engines and the router.
  ShardedQueryService(const Graph& g, const OntologyGraph& ontology,
                      const IndexOptions& index_options,
                      const ShardPlan& plan,
                      const ServeOptions& serve_options);

  VersionVector CurrentVersionLocked() const OSQ_REQUIRES_SHARED(mu_);
  void ApplyDeltasLocked(const std::vector<ShardDelta>& deltas)
      OSQ_REQUIRES(mu_);
  void FinishWriteLocked(size_t applied) OSQ_REQUIRES(mu_);
  void FinishNodeAddLocked() OSQ_REQUIRES(mu_);
  void InvalidateCacheLocked() OSQ_REQUIRES(mu_);
  QueryResult ScatterGather(const Graph& query, const QueryOptions& options,
                            size_t* shards_failed) OSQ_REQUIRES_SHARED(mu_);

  ShardOptions shard_options_;
  ServeOptions options_;
  // Write-intent gate; ordering is always gate THEN mu_ (see class note).
  std::mutex writer_gate_ OSQ_ACQUIRED_BEFORE(mu_);
  mutable std::shared_mutex mu_;  // guards shards_ + router_ (readers shared)
  std::vector<ShardEngine> shards_ OSQ_GUARDED_BY(mu_);
  UpdateRouter router_ OSQ_GUARDED_BY(mu_);
  // Internally synchronized (own mutex) — deliberately not GUARDED_BY.
  ResultCache cache_;
  // Installed before traffic starts (see set_fault_hook) — unguarded.
  ShardFaultHook fault_hook_;

  std::atomic<size_t> inflight_{0};
  // Writers pending or writing (burst classification; see query_service.h).
  std::atomic<uint64_t> writers_pending_{0};

  // Counters (relaxed; see serve/serve_stats.h for the rationale).
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> complete_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> shard_unavailable_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> update_batches_{0};
  std::atomic<uint64_t> updates_applied_{0};
  std::atomic<uint64_t> nodes_added_{0};
  std::atomic<uint64_t> read_wait_tenth_us_{0};
  std::atomic<uint64_t> write_wait_tenth_us_{0};
  std::atomic<uint64_t> write_apply_tenth_us_{0};
  LatencyHistogram hit_latency_;
  LatencyHistogram miss_latency_;
  LatencyHistogram degraded_latency_;
  LatencyHistogram burst_read_latency_;
};

}  // namespace osq

#endif  // OSQ_SHARD_SHARDED_QUERY_SERVICE_H_
