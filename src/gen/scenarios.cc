#include "gen/scenarios.h"

#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace osq {
namespace gen {

namespace {

// Builds a 3-level taxonomy "<root>" -> "<root>_c<i>" -> "<root>_c<i>_t<j>"
// in the ontology and returns the leaf label ids.
std::vector<LabelId> BuildTaxonomy(const std::string& root, size_t categories,
                                   size_t leaves_per_category,
                                   LabelDictionary* dict, OntologyGraph* o) {
  std::vector<LabelId> leaf_ids;
  LabelId root_id = dict->Intern(root);
  o->AddLabel(root_id);
  for (size_t i = 0; i < categories; ++i) {
    std::string cat = root + "_c" + std::to_string(i);
    LabelId cat_id = dict->Intern(cat);
    o->AddRelation(root_id, cat_id);
    for (size_t j = 0; j < leaves_per_category; ++j) {
      LabelId leaf_id = dict->Intern(cat + "_t" + std::to_string(j));
      o->AddRelation(cat_id, leaf_id);
      leaf_ids.push_back(leaf_id);
    }
  }
  return leaf_ids;
}

// Adds `count` random same-level cross links (synonym-style relations)
// among `labels`.
void AddCrossLinks(const std::vector<LabelId>& labels, size_t count, Rng* rng,
                   OntologyGraph* o) {
  size_t added = 0;
  size_t attempts = 0;
  while (added < count && attempts < count * 20 + 50 && labels.size() >= 2) {
    ++attempts;
    LabelId a = labels[rng->Index(labels.size())];
    LabelId b = labels[rng->Index(labels.size())];
    if (o->AddRelation(a, b)) ++added;
  }
}

// The six-domain RDF-style label space shared by MakeCrossDomainLike and
// MakeCommunityLike: per-domain 3-level taxonomies with cross links, a
// shared "entity" root, and relation labels keyed by domain pair.
struct CrossDomainLabelSpace {
  std::vector<std::vector<LabelId>> domain_leaves;  // per domain, leaf ids
  std::vector<LabelId> relation_ids;
  size_t num_domains() const { return domain_leaves.size(); }
  // Relation for a (source domain, target domain) pair — mirrors RDF
  // predicate locality.
  LabelId RelationFor(size_t du, size_t dv) const {
    return relation_ids[(du * 31 + dv * 7) % relation_ids.size()];
  }
};

CrossDomainLabelSpace BuildCrossDomainLabelSpace(Rng* rng, Dataset* ds) {
  CrossDomainLabelSpace space;
  const std::vector<std::string> domains = {"person", "place",   "org",
                                            "work",   "species", "music"};
  for (const std::string& d : domains) {
    std::vector<LabelId> leaves =
        BuildTaxonomy(d, /*categories=*/5, /*leaves_per_category=*/6,
                      &ds->dict, &ds->ontology);
    AddCrossLinks(leaves, leaves.size() / 5, rng, &ds->ontology);
    space.domain_leaves.push_back(std::move(leaves));
  }
  // Weakly connect the domain roots so the ontology forms one space
  // (cross-domain datasets share upper-level concepts).
  LabelId thing = ds->dict.Intern("entity");
  ds->ontology.AddLabel(thing);
  for (const std::string& d : domains) {
    ds->ontology.AddRelation(thing, ds->dict.Lookup(d));
  }
  const std::vector<std::string> relations = {
      "related_to", "born_in", "located_in", "member_of", "created", "cites"};
  for (const std::string& r : relations) {
    space.relation_ids.push_back(ds->dict.Intern(r));
  }
  return space;
}

}  // namespace

Dataset MakeCrossDomainLike(const ScenarioParams& params) {
  Dataset ds;
  Rng rng(params.seed);
  CrossDomainLabelSpace space = BuildCrossDomainLabelSpace(&rng, &ds);
  const std::vector<std::vector<LabelId>>& domain_leaves = space.domain_leaves;

  // Entities: domain chosen with skew, label a Zipf leaf of the domain.
  std::vector<size_t> node_domain(params.scale);
  for (size_t i = 0; i < params.scale; ++i) {
    size_t d = rng.Zipf(space.num_domains(), 0.7);
    node_domain[i] = d;
    const std::vector<LabelId>& leaves = domain_leaves[d];
    ds.graph.AddNode(leaves[rng.Zipf(leaves.size(), 0.8)]);
  }
  // Relations: edge label keyed by the (source, target) domain pair so
  // label distributions mirror RDF predicate locality.
  size_t target_edges = params.scale * 4;
  size_t attempts = 0;
  while (ds.graph.num_edges() < target_edges &&
         attempts < target_edges * 20 + 100) {
    ++attempts;
    NodeId u = static_cast<NodeId>(rng.Index(params.scale));
    NodeId v = static_cast<NodeId>(rng.Index(params.scale));
    if (u == v) continue;
    ds.graph.AddEdge(u, v, space.RelationFor(node_domain[u], node_domain[v]));
  }
  ds.graph.Freeze();
  return ds;
}

Dataset MakeCommunityLike(const ScenarioParams& params) {
  Dataset ds;
  Rng rng(params.seed);
  CrossDomainLabelSpace space = BuildCrossDomainLabelSpace(&rng, &ds);

  // Id-contiguous communities on a ring; each community draws labels from
  // one domain (round-robin), like one federation member hosting one
  // dataset.  kCommunityNodes divides typical shard counts' range blocks,
  // so kRange shard boundaries land on community boundaries.
  constexpr size_t kCommunityNodes = 100;
  // 1 - kIntraProb of edges go to an ADJACENT community on the ring; no
  // edge ever spans more than one community boundary, which is what keeps
  // range-shard halos thin.
  constexpr double kIntraProb = 0.97;
  size_t num_nodes = params.scale < kCommunityNodes ? kCommunityNodes
                                                    : params.scale;
  size_t num_comm = num_nodes / kCommunityNodes;
  num_nodes = num_comm * kCommunityNodes;

  std::vector<size_t> node_domain(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    size_t d = (i / kCommunityNodes) % space.num_domains();
    node_domain[i] = d;
    const std::vector<LabelId>& leaves = space.domain_leaves[d];
    ds.graph.AddNode(leaves[rng.Zipf(leaves.size(), 0.8)]);
  }

  size_t target_edges = num_nodes * 4;
  size_t attempts = 0;
  while (ds.graph.num_edges() < target_edges &&
         attempts < target_edges * 20 + 100) {
    ++attempts;
    NodeId u = static_cast<NodeId>(rng.Index(num_nodes));
    size_t cu = u / kCommunityNodes;
    size_t cv = cu;
    if (num_comm > 1 && !rng.Bernoulli(kIntraProb)) {
      // Neighbor on the ring, either side.
      cv = rng.Bernoulli(0.5) ? (cu + 1) % num_comm
                              : (cu + num_comm - 1) % num_comm;
    }
    NodeId v = static_cast<NodeId>(cv * kCommunityNodes +
                                   rng.Index(kCommunityNodes));
    if (u == v) continue;
    ds.graph.AddEdge(u, v, space.RelationFor(node_domain[u], node_domain[v]));
  }
  ds.graph.Freeze();
  return ds;
}

Dataset MakeFlickrLike(const ScenarioParams& params) {
  Dataset ds;
  Rng rng(params.seed);

  // Tag taxonomy (DBpedia-style concepts) and location taxonomy.
  std::vector<LabelId> tag_leaves;
  for (const std::string& cat :
       {std::string("animal"), std::string("plant"), std::string("vehicle"),
        std::string("scene"), std::string("food")}) {
    std::vector<LabelId> leaves = BuildTaxonomy(
        cat, /*categories=*/3, /*leaves_per_category=*/8, &ds.dict,
        &ds.ontology);
    AddCrossLinks(leaves, leaves.size() / 5, &rng, &ds.ontology);
    tag_leaves.insert(tag_leaves.end(), leaves.begin(), leaves.end());
  }
  LabelId concept_root = ds.dict.Intern("concept");
  ds.ontology.AddLabel(concept_root);
  for (const char* cat : {"animal", "plant", "vehicle", "scene", "food"}) {
    ds.ontology.AddRelation(concept_root, ds.dict.Lookup(cat));
  }
  std::vector<LabelId> location_leaves = BuildTaxonomy(
      "location", /*categories=*/4, /*leaves_per_category=*/6, &ds.dict,
      &ds.ontology);

  LabelId photo_label = ds.dict.Intern("photo");
  LabelId user_label = ds.dict.Intern("user");
  ds.ontology.AddLabel(photo_label);
  ds.ontology.AddLabel(user_label);

  LabelId tagged = ds.dict.Intern("tagged");
  LabelId taken_at = ds.dict.Intern("taken_at");
  LabelId posted = ds.dict.Intern("posted");
  LabelId follows = ds.dict.Intern("follows");

  // Entity nodes: one node per tag leaf and per location city, then users
  // and photos filling the requested scale.
  std::vector<NodeId> tag_nodes;
  for (LabelId t : tag_leaves) tag_nodes.push_back(ds.graph.AddNode(t));
  std::vector<NodeId> location_nodes;
  for (LabelId l : location_leaves) {
    location_nodes.push_back(ds.graph.AddNode(l));
  }
  size_t remaining =
      params.scale > ds.graph.num_nodes() ? params.scale - ds.graph.num_nodes()
                                          : 2;
  size_t num_users = remaining / 4 + 1;
  size_t num_photos = remaining - num_users + 1;
  std::vector<NodeId> user_nodes;
  for (size_t i = 0; i < num_users; ++i) {
    user_nodes.push_back(ds.graph.AddNode(user_label));
  }
  std::vector<NodeId> photo_nodes;
  for (size_t i = 0; i < num_photos; ++i) {
    photo_nodes.push_back(ds.graph.AddNode(photo_label));
  }

  // Wiring: photos -> tags (1-3, Zipf), photo -> location, user -> photo,
  // user -> user follow edges.
  for (NodeId p : photo_nodes) {
    size_t num_tags = 1 + rng.Index(3);
    for (size_t i = 0; i < num_tags; ++i) {
      ds.graph.AddEdge(p, tag_nodes[rng.Zipf(tag_nodes.size(), 0.9)], tagged);
    }
    ds.graph.AddEdge(p, location_nodes[rng.Zipf(location_nodes.size(), 0.7)],
                     taken_at);
    ds.graph.AddEdge(user_nodes[rng.Index(user_nodes.size())], p, posted);
  }
  for (NodeId u : user_nodes) {
    size_t num_follows = rng.Index(4);
    for (size_t i = 0; i < num_follows; ++i) {
      NodeId v = user_nodes[rng.Index(user_nodes.size())];
      if (v != u) ds.graph.AddEdge(u, v, follows);
    }
  }
  ds.graph.Freeze();
  return ds;
}

Dataset MakeCatalogLike(const ScenarioParams& params) {
  Dataset ds;
  Rng rng(params.seed);

  // Category taxonomy for the hub entities; product items share a single
  // label.  One-label products are what keeps refinement coarse: a product
  // class can only split on the *set* of hub/store blocks it reaches, and
  // with every product reaching the store block plus some hub blocks the
  // fixpoint settles on a handful of large product blocks whose members
  // differ in tagged-degree — set-based refinement cannot see counts.
  std::vector<LabelId> category_leaves =
      BuildTaxonomy("category", /*categories=*/3, /*leaves_per_category=*/5,
                    &ds.dict, &ds.ontology);
  AddCrossLinks(category_leaves, category_leaves.size() / 5, &rng,
                &ds.ontology);
  LabelId product_label = ds.dict.Intern("product");
  LabelId store_label = ds.dict.Intern("store");
  LabelId catalog = ds.dict.Intern("catalog");
  ds.ontology.AddLabel(catalog);
  ds.ontology.AddRelation(catalog, product_label);
  ds.ontology.AddRelation(catalog, store_label);
  ds.ontology.AddRelation(catalog, ds.dict.Lookup("category"));

  LabelId tagged = ds.dict.Intern("tagged");
  LabelId sold_by = ds.dict.Intern("sold_by");

  // One hub node per category leaf, a handful of stores, products filling
  // the requested scale.  Products point only at hubs and stores — no
  // product-to-product wiring — so structurally equivalent products stay
  // together no matter how many there are.
  std::vector<NodeId> hub_nodes;
  for (LabelId c : category_leaves) hub_nodes.push_back(ds.graph.AddNode(c));
  std::vector<NodeId> store_nodes;
  size_t num_stores = 3 + params.scale / 1000;
  for (size_t i = 0; i < num_stores; ++i) {
    store_nodes.push_back(ds.graph.AddNode(store_label));
  }
  size_t num_products = params.scale > ds.graph.num_nodes()
                            ? params.scale - ds.graph.num_nodes()
                            : 2;
  for (size_t i = 0; i < num_products; ++i) {
    NodeId p = ds.graph.AddNode(product_label);
    size_t num_tags = 1 + rng.Index(3);
    for (size_t t = 0; t < num_tags; ++t) {
      // Duplicate (p, hub, tagged) picks are dropped by AddEdge, so the
      // realized tagged-degree varies between 1 and 3.
      ds.graph.AddEdge(p, hub_nodes[rng.Zipf(hub_nodes.size(), 0.9)], tagged);
    }
    ds.graph.AddEdge(p, store_nodes[rng.Index(store_nodes.size())], sold_by);
  }
  ds.graph.Freeze();
  return ds;
}

}  // namespace gen
}  // namespace osq
