// Churn stream generator — the write-side counterpart of scenarios.h.
//
// ChurnStream turns a static scenario graph into a deterministic stream
// of GraphUpdates mimicking how the paper's datasets actually move:
//
//   * GROWTH (Flickr-like): new relationships attach the way existing
//     ones do.  A growth step copies the wiring of a random live edge —
//     source u keeps its relation label l but gains a new target drawn
//     from the targets other l-labeled edges point at (copy-model
//     densification, preserving the label-degree correlations the
//     candidate index keys on).
//   * DRIFT (CrossDomain-like): entity relations get re-typed as
//     federated sources re-export them.  A drift step deletes a live
//     edge and re-adds the same endpoint pair under a different edge
//     label — graph shape constant, label distribution moving.
//   * DECAY: plain deletion of a live edge.
//   * DUPLICATES: with probability duplicate_fraction, the previous
//     update is re-emitted verbatim — modeling at-least-once delivery
//     from an upstream queue.  Duplicates are guaranteed no-ops under the
//     engine's skip semantics and are what the ingest pipeline's
//     coalescing exists to absorb.
//
// The stream tracks the live edge set, so deletes always target existing
// edges and growth inserts are fresh; replaying history() in order
// through plain Graph::AddEdge/RemoveEdge (skipping no-ops) on a copy of
// the seed graph reproduces the final graph exactly — the property the
// ingest differential oracle (tests/ingest_differential_test.cc) checks
// end to end against the serving tiers.

#ifndef OSQ_GEN_CHURN_H_
#define OSQ_GEN_CHURN_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/index_maintenance.h"
#include "graph/graph.h"

namespace osq {
namespace gen {

struct ChurnParams {
  uint64_t seed = 17;
  // Op mix; growth + drift + decay should sum to 1 (decay is implicit:
  // whatever growth and drift leave).  A drift step emits TWO updates
  // (delete + relabeled insert).
  double growth_fraction = 0.5;
  double drift_fraction = 0.3;
  // Probability of re-emitting the previous update verbatim (appended on
  // top of the mix above; does not consume a step).
  double duplicate_fraction = 0.15;
};

class ChurnStream {
 public:
  // Seeds the live-edge state from `g` (borrowed only during
  // construction).  The stream needs >= 1 live edge and >= 1 edge label.
  ChurnStream(const Graph& g, const ChurnParams& params);

  // Generates the next `steps` churn steps (>= steps updates: drift emits
  // two, duplicates ride along).  Deterministic in (graph, params).
  std::vector<GraphUpdate> Next(size_t steps);

  // Every update ever emitted, in order — the offline replay script.
  const std::vector<GraphUpdate>& history() const { return history_; }

  size_t live_edges() const { return live_.size(); }

 private:
  void Emit(const GraphUpdate& update, std::vector<GraphUpdate>* out);
  // At-least-once delivery model: re-emit the previous update verbatim
  // with probability duplicate_fraction (a guaranteed no-op at apply).
  void MaybeDuplicate(std::vector<GraphUpdate>* out);
  void AddLive(const EdgeTriple& e);
  void RemoveLive(size_t index);
  bool IsLive(const EdgeTriple& e) const;

  ChurnParams params_;
  Rng rng_;
  std::vector<EdgeTriple> live_;
  // Triple -> index into live_, maintained with swap-with-back removal.
  std::map<std::tuple<NodeId, NodeId, LabelId>, size_t> live_index_;
  // Distinct edge labels seen in the seed graph (drift targets).
  std::vector<LabelId> edge_labels_;
  std::vector<GraphUpdate> history_;
};

}  // namespace gen
}  // namespace osq

#endif  // OSQ_GEN_CHURN_H_
