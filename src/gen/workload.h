// Benchmark workloads: a scenario dataset bundled with populated query
// templates, mirroring the paper's setup (§VII: five templates QT1-QT5 on
// CrossDomain, four templates QT6-QT9 on Flickr, each populated into a set
// of 10 queries by varying node labels).

#ifndef OSQ_GEN_WORKLOAD_H_
#define OSQ_GEN_WORKLOAD_H_

#include <cstddef>
#include <string>
#include <vector>

#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "graph/graph.h"

namespace osq {
namespace gen {

struct QueryTemplate {
  std::string name;      // e.g. "QT1"
  QueryGenParams params; // size and generalization profile
  std::vector<Graph> queries;
};

struct Workload {
  std::string name;
  Dataset data;
  std::vector<QueryTemplate> templates;
};

// CrossDomain-like workload with templates QT1-QT5: 4-5 node patterns, one
// of them (QT4) aggressively generalized, following the paper's template
// descriptions.
Workload MakeCrossDomainWorkload(const ScenarioParams& params,
                                 size_t queries_per_template = 10);

// Flickr-like workload with templates QT6-QT9 ("photos of animals taken at
// specified locations"-style patterns of 3-5 nodes).
Workload MakeFlickrWorkload(const ScenarioParams& params,
                            size_t queries_per_template = 10);

// Community-like workload (MakeCommunityLike) with the CrossDomain
// template profiles; the federation-locality dataset the sharded serving
// benchmark partitions by id range.
Workload MakeCommunityWorkload(const ScenarioParams& params,
                               size_t queries_per_template = 10);

}  // namespace gen
}  // namespace osq

#endif  // OSQ_GEN_WORKLOAD_H_
