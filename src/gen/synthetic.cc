#include "gen/synthetic.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace osq {
namespace gen {

namespace {

std::vector<LabelId> InternNumbered(LabelDictionary* dict,
                                    const std::string& prefix, size_t count) {
  std::vector<LabelId> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ids.push_back(dict->Intern(prefix + std::to_string(i)));
  }
  return ids;
}

}  // namespace

Graph MakeRandomGraph(const SyntheticGraphParams& params,
                      LabelDictionary* dict) {
  OSQ_CHECK(dict != nullptr);
  OSQ_CHECK(params.num_labels > 0);
  Rng rng(params.seed);
  std::vector<LabelId> labels = InternNumbered(dict, "L", params.num_labels);
  std::vector<LabelId> edge_labels =
      InternNumbered(dict, "r", std::max<size_t>(params.num_edge_labels, 1));

  Graph g;
  for (size_t i = 0; i < params.num_nodes; ++i) {
    g.AddNode(labels[rng.Zipf(params.num_labels, params.label_skew)]);
  }
  if (params.num_nodes < 2) return g;
  size_t attempts = 0;
  size_t max_attempts = params.num_edges * 20 + 100;
  while (g.num_edges() < params.num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId u = static_cast<NodeId>(rng.Index(params.num_nodes));
    NodeId v = static_cast<NodeId>(rng.Index(params.num_nodes));
    if (u == v) continue;
    LabelId el = edge_labels[rng.Index(edge_labels.size())];
    g.AddEdge(u, v, el);
  }
  g.Freeze();
  return g;
}

OntologyGraph MakeTaxonomyOntology(const SyntheticOntologyParams& params,
                                   LabelDictionary* dict) {
  OSQ_CHECK(dict != nullptr);
  OSQ_CHECK(params.num_labels > 0);
  Rng rng(params.seed);
  std::vector<LabelId> labels = InternNumbered(dict, "L", params.num_labels);

  OntologyGraph o;
  o.AddLabel(labels[0]);
  // Random branching tree: node i attaches to a uniformly random earlier
  // node among the last `branching` candidates, giving taxonomy-like depth.
  for (size_t i = 1; i < params.num_labels; ++i) {
    size_t window = std::min(i, params.branching * 2);
    size_t parent = i - 1 - rng.Index(window);
    o.AddRelation(labels[i], labels[parent]);
  }
  // Cross links (synonyms / refers-to).
  size_t extra = static_cast<size_t>(
      params.cross_link_fraction * static_cast<double>(params.num_labels));
  size_t added = 0;
  size_t attempts = 0;
  while (added < extra && attempts < extra * 20 + 100) {
    ++attempts;
    LabelId a = labels[rng.Index(params.num_labels)];
    LabelId b = labels[rng.Index(params.num_labels)];
    if (o.AddRelation(a, b)) ++added;
  }
  return o;
}

}  // namespace gen
}  // namespace osq
