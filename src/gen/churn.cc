#include "gen/churn.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace osq {
namespace gen {

namespace {

std::tuple<NodeId, NodeId, LabelId> KeyOf(const EdgeTriple& e) {
  return {e.from, e.to, e.label};
}

}  // namespace

ChurnStream::ChurnStream(const Graph& g, const ChurnParams& params)
    : params_(params), rng_(params.seed) {
  live_ = g.EdgeList();
  OSQ_CHECK(!live_.empty());
  for (size_t i = 0; i < live_.size(); ++i) {
    live_index_[KeyOf(live_[i])] = i;
    edge_labels_.push_back(live_[i].label);
  }
  std::sort(edge_labels_.begin(), edge_labels_.end());
  edge_labels_.erase(
      std::unique(edge_labels_.begin(), edge_labels_.end()),
      edge_labels_.end());
}

void ChurnStream::AddLive(const EdgeTriple& e) {
  live_index_[KeyOf(e)] = live_.size();
  live_.push_back(e);
}

void ChurnStream::RemoveLive(size_t index) {
  live_index_.erase(KeyOf(live_[index]));
  if (index + 1 != live_.size()) {
    live_[index] = live_.back();
    live_index_[KeyOf(live_[index])] = index;
  }
  live_.pop_back();
}

bool ChurnStream::IsLive(const EdgeTriple& e) const {
  return live_index_.count(KeyOf(e)) > 0;
}

void ChurnStream::Emit(const GraphUpdate& update,
                       std::vector<GraphUpdate>* out) {
  out->push_back(update);
  history_.push_back(update);
}

void ChurnStream::MaybeDuplicate(std::vector<GraphUpdate>* out) {
  if (history_.empty() || !rng_.Bernoulli(params_.duplicate_fraction)) {
    return;
  }
  // Safe re-emission: the duplicate asks for a state the edge is already
  // in, so the engine skips it and the live set is untouched.
  GraphUpdate again = history_.back();
  Emit(again, out);
}

std::vector<GraphUpdate> ChurnStream::Next(size_t steps) {
  std::vector<GraphUpdate> out;
  out.reserve(steps + steps / 2);
  for (size_t step = 0; step < steps; ++step) {
    // The live set can only shrink to empty through decay; reseed churn
    // type as growth when nothing is left to delete or drift.
    double roll = rng_.Double();
    const bool want_growth =
        roll < params_.growth_fraction || live_.empty();
    const bool want_drift =
        !want_growth &&
        roll < params_.growth_fraction + params_.drift_fraction;

    if (want_growth) {
      // Copy-model growth: source and label from one live edge, target
      // from another edge with the same label; a handful of rejection
      // tries keeps the insert fresh without an exhaustive scan.
      bool emitted = false;
      for (int attempt = 0; attempt < 8 && !emitted; ++attempt) {
        const EdgeTriple& donor =
            live_[static_cast<size_t>(rng_.Index(live_.size()))];
        const EdgeTriple& target_donor =
            live_[static_cast<size_t>(rng_.Index(live_.size()))];
        if (target_donor.label != donor.label) continue;
        EdgeTriple fresh{donor.from, target_donor.to, donor.label};
        if (fresh.to == fresh.from || IsLive(fresh)) continue;
        Emit(GraphUpdate::Insert(fresh.from, fresh.to, fresh.label), &out);
        AddLive(fresh);
        emitted = true;
      }
      // All attempts collided (tiny dense graphs): fall through to a
      // decay step below so the stream always makes progress.
      if (emitted) {
        MaybeDuplicate(&out);
        continue;
      }
    }

    if (want_drift && !live_.empty() && edge_labels_.size() > 1) {
      size_t index = static_cast<size_t>(rng_.Index(live_.size()));
      EdgeTriple edge = live_[index];
      // Pick a different label; with >= 2 distinct labels a bounded
      // rescan always terminates.
      LabelId relabeled = edge.label;
      while (relabeled == edge.label) {
        relabeled = edge_labels_[static_cast<size_t>(
            rng_.Index(edge_labels_.size()))];
      }
      EdgeTriple drifted{edge.from, edge.to, relabeled};
      if (!IsLive(drifted)) {
        Emit(GraphUpdate::Delete(edge.from, edge.to, edge.label), &out);
        RemoveLive(index);
        Emit(GraphUpdate::Insert(drifted.from, drifted.to, drifted.label),
             &out);
        AddLive(drifted);
        MaybeDuplicate(&out);
        continue;
      }
      // Drifted triple already live: degrade to plain decay.
    }

    if (!live_.empty()) {
      size_t index = static_cast<size_t>(rng_.Index(live_.size()));
      EdgeTriple edge = live_[index];
      Emit(GraphUpdate::Delete(edge.from, edge.to, edge.label), &out);
      RemoveLive(index);
      MaybeDuplicate(&out);
    }
  }
  return out;
}

}  // namespace gen
}  // namespace osq
