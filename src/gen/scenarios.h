// Scenario generators standing in for the paper's real-life datasets.
//
// The paper evaluates on (a) CrossDomain — a FedBench RDF graph of 1.7M
// nodes / 3.86M edges with a 1.44M-concept ontology — and (b) Flickr — a
// 1.3M-node photo/tag/user/location graph described by a DBpedia-derived
// tag ontology.  Neither download is available offline, so these
// generators synthesize graphs with the same *structural signature*:
// heterogeneous node domains, taxonomy-shaped ontologies with cross
// links, skewed label frequencies, and relation labels correlated with
// domain pairs.  DESIGN.md documents the substitution rationale.

#ifndef OSQ_GEN_SCENARIOS_H_
#define OSQ_GEN_SCENARIOS_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"
#include "graph/label_dictionary.h"
#include "ontology/ontology_graph.h"

namespace osq {
namespace gen {

// A self-contained dataset: the data graph and its ontology share `dict`.
struct Dataset {
  LabelDictionary dict;
  Graph graph;
  OntologyGraph ontology;
};

struct ScenarioParams {
  // Approximate node count of the data graph; edges scale ~4x.
  size_t scale = 2000;
  uint64_t seed = 7;
};

// CrossDomain-like: entities from six domains (person, place, org, work,
// species, music), each domain with a 3-level label taxonomy; relation
// labels determined by the (source domain, target domain) pair.
Dataset MakeCrossDomainLike(const ScenarioParams& params);

// Flickr-like: photo / tag / user / location nodes; photos point at tag
// entities ("tagged"), locations ("taken_at") and are posted by users;
// the ontology covers the tag and location taxonomies.
Dataset MakeFlickrLike(const ScenarioParams& params);

// Catalog-like: product entities tagging a small pool of shared category
// hubs and pointing at a handful of stores.  The random wiring of the two
// scenarios above makes partition refinement collapse to singleton blocks;
// the hub/spoke symmetry here keeps blocks coarse — many products share a
// refinement signature while their per-edge-label degrees differ — which
// is the regime where the candidate index's node-level signature check
// (NodePasses) prunes beyond what block aggregates can.
Dataset MakeCatalogLike(const ScenarioParams& params);

// Community-like: the CrossDomain label space arranged as a ring of
// id-contiguous communities (one federation member per community, domains
// round-robin), with almost all edges inside a community and the rest
// between ADJACENT communities only.  This is the federation-locality
// regime: range partitioning on node ids aligns shard boundaries with
// community boundaries, so halo replication stays thin (a few boundary
// nodes per shard) instead of flooding the whole graph the way a random
// edge distribution forces it to.  The sharded serving benchmark
// (bench/bench_shard.cc) uses it for its structural overhead claim.
Dataset MakeCommunityLike(const ScenarioParams& params);

}  // namespace gen
}  // namespace osq

#endif  // OSQ_GEN_SCENARIOS_H_
