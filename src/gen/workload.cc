#include "gen/workload.h"

#include <utility>

#include "common/rng.h"

namespace osq {
namespace gen {

namespace {

void PopulateTemplates(Workload* w, size_t queries_per_template,
                       uint64_t seed) {
  Rng rng(seed);
  for (QueryTemplate& t : w->templates) {
    size_t attempts = 0;
    while (t.queries.size() < queries_per_template &&
           attempts < queries_per_template * 10 + 20) {
      ++attempts;
      Graph q = ExtractQuery(w->data.graph, w->data.ontology, t.params, &rng);
      if (!q.empty()) {
        t.queries.push_back(std::move(q));
      }
    }
  }
}

}  // namespace

Workload MakeCrossDomainWorkload(const ScenarioParams& params,
                                 size_t queries_per_template) {
  Workload w;
  w.name = "CrossDomain";
  w.data = MakeCrossDomainLike(params);
  w.templates = {
      {"QT1", {.num_nodes = 4, .generalize_prob = 0.5, .generalize_hops = 1}, {}},
      {"QT2", {.num_nodes = 4, .generalize_prob = 0.5, .generalize_hops = 1}, {}},
      {"QT3", {.num_nodes = 4, .generalize_prob = 0.7, .generalize_hops = 1}, {}},
      // QT4: QT3's shape with every label generalized (paper: "obtained by
      // only generalizing the query label of QT3").
      {"QT4", {.num_nodes = 4, .generalize_prob = 1.0, .generalize_hops = 2}, {}},
      {"QT5", {.num_nodes = 5, .generalize_prob = 0.5, .generalize_hops = 1}, {}},
  };
  PopulateTemplates(&w, queries_per_template, params.seed + 1000);
  return w;
}

Workload MakeCommunityWorkload(const ScenarioParams& params,
                               size_t queries_per_template) {
  Workload w;
  w.name = "Community";
  w.data = MakeCommunityLike(params);
  // The CrossDomain template profiles apply unchanged: communities draw
  // from the same label space, queries just extract from local regions.
  w.templates = {
      {"QT1", {.num_nodes = 4, .generalize_prob = 0.5, .generalize_hops = 1}, {}},
      {"QT2", {.num_nodes = 4, .generalize_prob = 0.5, .generalize_hops = 1}, {}},
      {"QT3", {.num_nodes = 4, .generalize_prob = 0.7, .generalize_hops = 1}, {}},
      {"QT5", {.num_nodes = 5, .generalize_prob = 0.5, .generalize_hops = 1}, {}},
  };
  PopulateTemplates(&w, queries_per_template, params.seed + 3000);
  return w;
}

Workload MakeFlickrWorkload(const ScenarioParams& params,
                            size_t queries_per_template) {
  Workload w;
  w.name = "Flickr";
  w.data = MakeFlickrLike(params);
  w.templates = {
      {"QT6", {.num_nodes = 3, .generalize_prob = 0.5, .generalize_hops = 1}, {}},
      {"QT7", {.num_nodes = 4, .generalize_prob = 0.5, .generalize_hops = 1}, {}},
      {"QT8", {.num_nodes = 4, .generalize_prob = 0.8, .generalize_hops = 2}, {}},
      {"QT9", {.num_nodes = 5, .generalize_prob = 0.5, .generalize_hops = 1}, {}},
  };
  PopulateTemplates(&w, queries_per_template, params.seed + 2000);
  return w;
}

}  // namespace gen
}  // namespace osq
