#include "gen/query_gen.h"

#include <vector>

#include "common/check.h"
#include "graph/subgraph.h"

namespace osq {
namespace gen {

namespace {

// Grows a connected node set of the requested size by random expansion
// (either direction), restarting from fresh seeds on dead ends.
std::vector<NodeId> GrowConnectedSet(const Graph& g, size_t target,
                                     Rng* rng) {
  if (g.num_nodes() < target || target == 0) return {};
  const size_t kRestarts = 32;
  for (size_t attempt = 0; attempt < kRestarts; ++attempt) {
    std::vector<NodeId> set;
    std::vector<bool> in_set(g.num_nodes(), false);
    NodeId seed = static_cast<NodeId>(rng->Index(g.num_nodes()));
    set.push_back(seed);
    in_set[seed] = true;
    size_t stuck = 0;
    while (set.size() < target && stuck < 8 * target + 16) {
      NodeId from = set[rng->Index(set.size())];
      const auto& out = g.OutEdges(from);
      const auto& in = g.InEdges(from);
      size_t total = out.size() + in.size();
      if (total == 0) {
        ++stuck;
        continue;
      }
      size_t pick = rng->Index(total);
      NodeId next =
          pick < out.size() ? out[pick].node : in[pick - out.size()].node;
      if (in_set[next]) {
        ++stuck;
        continue;
      }
      set.push_back(next);
      in_set[next] = true;
      stuck = 0;
    }
    if (set.size() == target) return set;
  }
  return {};
}

}  // namespace

Graph ExtractQuery(const Graph& g, const OntologyGraph& o,
                   const QueryGenParams& params, Rng* rng) {
  OSQ_CHECK(rng != nullptr);
  std::vector<NodeId> nodes = GrowConnectedSet(g, params.num_nodes, rng);
  if (nodes.empty()) return Graph();
  Graph query = InducedSubgraph(g, nodes).graph;
  // Generalize labels: random walk of up to generalize_hops steps in the
  // ontology keeps the new label within base^hops similarity.
  for (NodeId u = 0; u < query.num_nodes(); ++u) {
    if (!rng->Bernoulli(params.generalize_prob)) continue;
    LabelId label = query.NodeLabel(u);
    for (uint32_t step = 0; step < params.generalize_hops; ++step) {
      const std::vector<LabelId>& nbrs = o.Neighbors(label);
      if (nbrs.empty()) break;
      label = nbrs[rng->Index(nbrs.size())];
    }
    query.SetNodeLabel(u, label);
  }
  return query;
}

}  // namespace gen
}  // namespace osq
