// Synthetic data-graph and ontology-graph generators (paper §VII,
// "Synthetic data": graphs controlled by |V|, |E| and a label set size
// |L|, plus ontology graphs generated over the same label set).

#ifndef OSQ_GEN_SYNTHETIC_H_
#define OSQ_GEN_SYNTHETIC_H_

#include <cstddef>
#include <cstdint>

#include "graph/graph.h"
#include "graph/label_dictionary.h"
#include "ontology/ontology_graph.h"

namespace osq {
namespace gen {

struct SyntheticGraphParams {
  size_t num_nodes = 1000;
  size_t num_edges = 4000;
  // Node labels are "L0" .. "L<num_labels-1>"; edge labels "r0" .. .
  size_t num_labels = 100;
  size_t num_edge_labels = 3;
  // Zipf exponent for node-label frequencies (0 = uniform).
  double label_skew = 0.8;
  uint64_t seed = 1;
};

// Uniform random directed multigraph with labeled nodes/edges.  Label
// strings are interned into `dict`, so a matching ontology built over the
// same dict shares ids.
Graph MakeRandomGraph(const SyntheticGraphParams& params,
                      LabelDictionary* dict);

struct SyntheticOntologyParams {
  // Must cover the data graph's label universe ("L0" .. "L<n-1>").
  size_t num_labels = 100;
  // Children per internal node of the taxonomy backbone.
  size_t branching = 4;
  // Extra non-tree "refers to"-style relations, as a fraction of labels.
  double cross_link_fraction = 0.15;
  uint64_t seed = 2;
};

// Taxonomy-shaped ontology over "L0" .. "L<n-1>": a random branching tree
// (is-a backbone) plus random cross links (synonym/refers-to relations).
// Connected by construction.
OntologyGraph MakeTaxonomyOntology(const SyntheticOntologyParams& params,
                                   LabelDictionary* dict);

}  // namespace gen
}  // namespace osq

#endif  // OSQ_GEN_SYNTHETIC_H_
