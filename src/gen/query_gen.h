// Query generation (paper §VII, "query templates"): queries are extracted
// from the data graph as small connected induced subgraphs — so a match is
// guaranteed to exist — and then *generalized* by replacing node labels
// with ontologically close labels (the paper's QT4 is QT3 "obtained by
// only generalizing the query label").  Generalized queries typically have
// no identical-label match, which is exactly the effectiveness gap Table I
// measures.

#ifndef OSQ_GEN_QUERY_GEN_H_
#define OSQ_GEN_QUERY_GEN_H_

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "graph/graph.h"
#include "ontology/ontology_graph.h"

namespace osq {
namespace gen {

struct QueryGenParams {
  // Target number of query nodes.
  size_t num_nodes = 4;
  // Probability that a node's label is generalized.
  double generalize_prob = 0.5;
  // Maximum ontology hops a generalized label moves away from the original
  // (similarity drops by base^hops).
  uint32_t generalize_hops = 1;
};

// Extracts a connected induced subgraph of `g` with params.num_nodes nodes
// (random-walk growth), then generalizes labels via `o`.  Returns an empty
// graph when `g` has no connected subgraph of the requested size reachable
// from the sampled seeds.
Graph ExtractQuery(const Graph& g, const OntologyGraph& o,
                   const QueryGenParams& params, Rng* rng);

}  // namespace gen
}  // namespace osq

#endif  // OSQ_GEN_QUERY_GEN_H_
