#include "baseline/subiso.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace osq {

namespace {

class IsoSearcher {
 public:
  IsoSearcher(const Graph& query, const Graph& g, MatchSemantics semantics,
              size_t limit, size_t max_steps, SubIsoStats* stats)
      : query_(query),
        g_(g),
        semantics_(semantics),
        limit_(limit),
        max_steps_(max_steps),
        stats_(stats) {}

  std::vector<Match> Run() {
    BuildCandidates();
    for (const auto& c : candidates_) {
      if (c.empty()) {
        Finish();
        return {};
      }
    }
    BuildOrder();
    assign_.assign(query_.num_nodes(), kInvalidNode);
    used_.assign(g_.num_nodes(), false);
    Recurse(0);
    Finish();
    return std::move(results_);
  }

 private:
  void Finish() {
    if (stats_ != nullptr) {
      stats_->search_steps = steps_;
      stats_->matches_found = results_.size();
      stats_->truncated = truncated_;
    }
  }

  void BuildCandidates() {
    // Label index over the data graph plus a degree filter: a data node
    // matching query node u needs at least u's out- and in-degree (true
    // for both semantics, since every query edge needs a data edge).
    std::unordered_map<LabelId, std::vector<NodeId>> by_label;
    for (NodeId v = 0; v < g_.num_nodes(); ++v) {
      by_label[g_.NodeLabel(v)].push_back(v);
    }
    candidates_.resize(query_.num_nodes());
    for (NodeId u = 0; u < query_.num_nodes(); ++u) {
      auto it = by_label.find(query_.NodeLabel(u));
      if (it == by_label.end()) continue;
      for (NodeId v : it->second) {
        if (g_.OutDegree(v) >= query_.OutDegree(u) &&
            g_.InDegree(v) >= query_.InDegree(u)) {
          candidates_[u].push_back(v);
        }
      }
    }
  }

  void BuildOrder() {
    size_t nq = query_.num_nodes();
    std::vector<bool> placed(nq, false);
    NodeId first = 0;
    for (NodeId u = 1; u < nq; ++u) {
      if (candidates_[u].size() < candidates_[first].size()) first = u;
    }
    order_.push_back(first);
    placed[first] = true;
    while (order_.size() < nq) {
      NodeId best = kInvalidNode;
      size_t best_conn = 0;
      for (NodeId u = 0; u < nq; ++u) {
        if (placed[u]) continue;
        size_t conn = 0;
        for (const AdjEntry& e : query_.OutEdges(u)) {
          if (placed[e.node]) ++conn;
        }
        for (const AdjEntry& e : query_.InEdges(u)) {
          if (placed[e.node]) ++conn;
        }
        if (best == kInvalidNode || conn > best_conn ||
            (conn == best_conn &&
             candidates_[u].size() < candidates_[best].size())) {
          best = u;
          best_conn = conn;
        }
      }
      order_.push_back(best);
      placed[best] = true;
    }
  }

  bool Consistent(NodeId q, NodeId v, size_t depth) const {
    for (size_t i = 0; i < depth; ++i) {
      NodeId q2 = order_[i];
      NodeId v2 = assign_[q2];
      std::vector<LabelId> q_fwd = query_.EdgeLabelsBetween(q, q2);
      std::vector<LabelId> d_fwd = g_.EdgeLabelsBetween(v, v2);
      std::vector<LabelId> q_bwd = query_.EdgeLabelsBetween(q2, q);
      std::vector<LabelId> d_bwd = g_.EdgeLabelsBetween(v2, v);
      if (semantics_ == MatchSemantics::kInduced) {
        if (q_fwd != d_fwd || q_bwd != d_bwd) return false;
      } else {
        if (!std::includes(d_fwd.begin(), d_fwd.end(), q_fwd.begin(),
                           q_fwd.end()) ||
            !std::includes(d_bwd.begin(), d_bwd.end(), q_bwd.begin(),
                           q_bwd.end())) {
          return false;
        }
      }
    }
    std::vector<LabelId> q_self = query_.EdgeLabelsBetween(q, q);
    std::vector<LabelId> d_self = g_.EdgeLabelsBetween(v, v);
    if (semantics_ == MatchSemantics::kInduced) {
      return q_self == d_self;
    }
    return std::includes(d_self.begin(), d_self.end(), q_self.begin(),
                         q_self.end());
  }

  bool Done() const {
    return truncated_ || (limit_ > 0 && results_.size() >= limit_);
  }

  void Recurse(size_t depth) {
    if (Done()) return;
    ++steps_;
    if (max_steps_ > 0 && steps_ > max_steps_) {
      truncated_ = true;
      return;
    }
    if (depth == order_.size()) {
      Match m;
      m.mapping = assign_;
      m.score = static_cast<double>(order_.size());
      results_.push_back(std::move(m));
      return;
    }
    NodeId q = order_[depth];
    for (NodeId v : candidates_[q]) {
      if (Done()) return;
      if (used_[v]) continue;
      if (!Consistent(q, v, depth)) continue;
      assign_[q] = v;
      used_[v] = true;
      Recurse(depth + 1);
      used_[v] = false;
      assign_[q] = kInvalidNode;
    }
  }

  const Graph& query_;
  const Graph& g_;
  MatchSemantics semantics_;
  size_t limit_;
  size_t max_steps_;
  SubIsoStats* stats_;

  std::vector<std::vector<NodeId>> candidates_;
  std::vector<NodeId> order_;
  std::vector<NodeId> assign_;
  std::vector<bool> used_;
  std::vector<Match> results_;
  size_t steps_ = 0;
  bool truncated_ = false;
};

}  // namespace

std::vector<Match> SubIso(const Graph& query, const Graph& g,
                          MatchSemantics semantics, size_t limit,
                          size_t max_steps, SubIsoStats* stats) {
  if (stats != nullptr) {
    *stats = SubIsoStats();
  }
  if (query.empty()) return {};
  IsoSearcher searcher(query, g, semantics, limit, max_steps, stats);
  return searcher.Run();
}

}  // namespace osq
