#include "baseline/simmatrix.h"

#include <algorithm>
#include <unordered_map>

namespace osq {

SimMatrix BuildSimMatrix(const Graph& query, const Graph& g,
                         const OntologyGraph& o, const SimilarityFunction& sim,
                         double theta) {
  SimMatrix matrix;
  matrix.candidates.resize(query.num_nodes());
  for (NodeId u = 0; u < query.num_nodes(); ++u) {
    LabelId ql = query.NodeLabel(u);
    // Label -> similarity table for this query node.
    std::unordered_map<LabelId, double> sims;
    for (const LabelDistance& ld : o.BallAround(ql, sim.Radius(theta))) {
      sims.emplace(ld.label, sim.SimAtDistance(ld.distance));
    }
    sims.emplace(ql, 1.0);
    // Scan every data node — the matrix cost the paper charges to this
    // baseline.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      auto it = sims.find(g.NodeLabel(v));
      if (it != sims.end()) {
        matrix.candidates[u].push_back({v, it->second});
      }
    }
    std::sort(matrix.candidates[u].begin(), matrix.candidates[u].end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.sim != b.sim) return a.sim > b.sim;
                return a.node < b.node;
              });
  }
  return matrix;
}

std::vector<Match> SimMatrixMatch(const Graph& query, const Graph& g,
                                  const SimMatrix& matrix,
                                  const QueryOptions& options,
                                  KMatchStats* stats) {
  return KMatchOnGraph(query, g, matrix.candidates, options, stats);
}

}  // namespace osq
