// SubIso_r — the query-rewriting baseline (paper §III and §VII).
//
// Traditional ontology-based querying rewrites the query by substituting
// each query label with every ontologically close label, producing (in the
// worst case) an exponential number of rewritten queries which are each
// evaluated with plain SubIso; the union of their matches, scored by the
// similarity of the substituted labels, yields the top-K answer.  This is
// exactly the strategy the paper argues against, and the bench figures
// show the blow-up.

#ifndef OSQ_BASELINE_REWRITING_H_
#define OSQ_BASELINE_REWRITING_H_

#include <cstddef>
#include <vector>

#include "core/match.h"
#include "core/options.h"
#include "graph/graph.h"
#include "ontology/ontology_graph.h"
#include "ontology/similarity.h"

namespace osq {

struct RewriteStats {
  // Rewritten queries actually evaluated.
  size_t rewritings = 0;
  // Rewritten label combinations that exist in principle (product of the
  // per-node candidate label counts); equals `rewritings` unless truncated.
  size_t combinations = 0;
  size_t matches_found = 0;
  bool truncated = false;
};

// Evaluates `query` over `g` by label rewriting.  Candidate labels for a
// query node are the labels within Radius(options.theta) in the ontology
// that occur in `g` (plus the original label).  Returns the top-K matches
// under MatchBetter (options.k == 0 returns all matches sorted).
// `max_rewritings` (0 = unlimited) caps the enumeration for safety.
std::vector<Match> SubIsoRewrite(const Graph& query, const Graph& g,
                                 const OntologyGraph& o,
                                 const SimilarityFunction& sim,
                                 const QueryOptions& options,
                                 size_t max_rewritings = 0,
                                 RewriteStats* stats = nullptr);

}  // namespace osq

#endif  // OSQ_BASELINE_REWRITING_H_
