// SubIso — traditional subgraph isomorphism with identical label matching,
// the paper's primary baseline (its reference [32]).
//
// Independent of the KMatch search kernel on purpose: property tests
// cross-check the two implementations against each other, and benches
// compare "match the whole graph" against "filter then match G_v".

#ifndef OSQ_BASELINE_SUBISO_H_
#define OSQ_BASELINE_SUBISO_H_

#include <cstddef>
#include <vector>

#include "core/match.h"
#include "core/options.h"
#include "graph/graph.h"

namespace osq {

struct SubIsoStats {
  size_t search_steps = 0;
  size_t matches_found = 0;
  bool truncated = false;
};

// Enumerates matches of `query` in `g` where every matched node has the
// *identical* node label and every query edge maps to a data edge with the
// identical edge label (semantics: induced per the paper's definition, or
// homomorphic).  Returns at most `limit` matches (0 = all), in discovery
// order; each match's score is |V_Q| (all similarities are 1).
// `max_steps` (0 = unlimited) bounds the backtracking search.
std::vector<Match> SubIso(const Graph& query, const Graph& g,
                          MatchSemantics semantics, size_t limit = 0,
                          size_t max_steps = 0, SubIsoStats* stats = nullptr);

}  // namespace osq

#endif  // OSQ_BASELINE_SUBISO_H_
