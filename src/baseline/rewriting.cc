#include "baseline/rewriting.h"

#include <algorithm>
#include <unordered_set>

#include "baseline/subiso.h"
#include "common/check.h"

namespace osq {

namespace {

// One substitutable label with its similarity to the original query label.
struct LabelChoice {
  LabelId label;
  double sim;
};

}  // namespace

std::vector<Match> SubIsoRewrite(const Graph& query, const Graph& g,
                                 const OntologyGraph& o,
                                 const SimilarityFunction& sim,
                                 const QueryOptions& options,
                                 size_t max_rewritings, RewriteStats* stats) {
  RewriteStats local;
  std::vector<Match> results;
  size_t nq = query.num_nodes();
  if (nq == 0) {
    if (stats != nullptr) *stats = local;
    return results;
  }

  // Labels that occur in the data graph; rewriting to any other label
  // cannot produce a match.
  std::unordered_set<LabelId> data_labels;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    data_labels.insert(g.NodeLabel(v));
  }

  // Candidate label choices per query node, best similarity first so the
  // most promising rewritings are evaluated before any truncation.
  std::vector<std::vector<LabelChoice>> choices(nq);
  for (NodeId u = 0; u < nq; ++u) {
    LabelId ql = query.NodeLabel(u);
    std::unordered_set<LabelId> seen;
    for (const LabelDistance& ld :
         o.BallAround(ql, sim.Radius(options.theta))) {
      if (data_labels.count(ld.label) > 0 && seen.insert(ld.label).second) {
        choices[u].push_back({ld.label, sim.SimAtDistance(ld.distance)});
      }
    }
    if (data_labels.count(ql) > 0 && seen.insert(ql).second) {
      choices[u].push_back({ql, 1.0});
    }
    if (choices[u].empty()) {
      if (stats != nullptr) *stats = local;
      return results;
    }
    std::stable_sort(choices[u].begin(), choices[u].end(),
                     [](const LabelChoice& a, const LabelChoice& b) {
                       return a.sim > b.sim;
                     });
  }

  local.combinations = 1;
  for (NodeId u = 0; u < nq; ++u) {
    // Saturating product; the count is reported, not allocated.
    if (local.combinations > (size_t(1) << 40)) break;
    local.combinations *= choices[u].size();
  }

  // Enumerate the Cartesian product of label choices.
  Graph rewritten = query;
  std::vector<size_t> pick(nq, 0);
  bool exhausted = false;
  while (!exhausted) {
    if (max_rewritings > 0 && local.rewritings >= max_rewritings) {
      local.truncated = true;
      break;
    }
    double label_score = 0.0;
    for (NodeId u = 0; u < nq; ++u) {
      rewritten.SetNodeLabel(u, choices[u][pick[u]].label);
      label_score += choices[u][pick[u]].sim;
    }
    ++local.rewritings;
    SubIsoStats iso_stats;
    std::vector<Match> found = SubIso(rewritten, g, options.semantics,
                                      /*limit=*/0, options.max_search_steps,
                                      &iso_stats);
    if (iso_stats.truncated) local.truncated = true;
    for (Match& m : found) {
      // A match's labels equal the rewriting's labels, so the rewriting
      // score is the match score; distinct rewritings yield distinct
      // matches (their matched labels differ), hence no deduplication.
      m.score = label_score;
      results.push_back(std::move(m));
      ++local.matches_found;
    }
    // Advance the odometer.
    size_t pos = 0;
    while (pos < nq) {
      if (++pick[pos] < choices[pos].size()) break;
      pick[pos] = 0;
      ++pos;
    }
    exhausted = pos == nq;
  }

  std::sort(results.begin(), results.end(), MatchBetter());
  if (options.k > 0 && results.size() > options.k) {
    results.resize(options.k);
  }
  if (stats != nullptr) *stats = local;
  return results;
}

}  // namespace osq
