// VF2-style similarity-matrix baseline (paper §III and §VII).
//
// The alternative the paper contrasts with its index: precompute a
// similarity matrix between the query's labels and every data node (cost
// O(|Q| |G|), re-done per query), then run a backtracking matcher over the
// ENTIRE data graph whose node-compatibility test consults the matrix,
// terminating as soon as the top-K matches are identified.  Following the
// paper's setup, matrix construction time is reported separately from
// match time ("the time cost of computing the similarity matrix is not
// counted for VF2").
//
// The match phase intentionally reuses the KMatch search kernel
// (KMatchOnGraph) so benches isolate exactly the effect of filtering:
// same kernel, candidates over all of G instead of G_v.

#ifndef OSQ_BASELINE_SIMMATRIX_H_
#define OSQ_BASELINE_SIMMATRIX_H_

#include <vector>

#include "core/filtering.h"
#include "core/kmatch.h"
#include "core/match.h"
#include "core/options.h"
#include "graph/graph.h"
#include "ontology/ontology_graph.h"
#include "ontology/similarity.h"

namespace osq {

// Per-query similarity "matrix": for each query node, every compatible
// data node (sim >= theta) with its similarity, sorted best-first.
struct SimMatrix {
  std::vector<std::vector<Candidate>> candidates;
};

// Builds the matrix by scanning all data nodes per query node (the
// baseline's inherent O(|Q| |G|) cost).
SimMatrix BuildSimMatrix(const Graph& query, const Graph& g,
                         const OntologyGraph& o, const SimilarityFunction& sim,
                         double theta);

// Top-K matching over the whole data graph using the matrix.
std::vector<Match> SimMatrixMatch(const Graph& query, const Graph& g,
                                  const SimMatrix& matrix,
                                  const QueryOptions& options,
                                  KMatchStats* stats = nullptr);

}  // namespace osq

#endif  // OSQ_BASELINE_SIMMATRIX_H_
