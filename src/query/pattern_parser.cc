#include "query/pattern_parser.h"

#include <cctype>
#include <fstream>
#include <vector>

namespace osq {

namespace {

// Hand-rolled scanner over the pattern text; keeps a byte offset for
// error messages.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  size_t pos() const { return pos_; }
  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  // Consumes `token` if it is next; returns false otherwise.
  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) != token) {
      return false;
    }
    pos_ += token.size();
    return true;
  }

  // Reads an identifier ([A-Za-z0-9_./-]+); empty result means "none".
  std::string_view Identifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

 private:
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '/' || c == '+';
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '#') {  // line comment
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Status ParseError(const Scanner& scanner, const std::string& what) {
  return Status::InvalidArgument(what + " at offset " +
                                 std::to_string(scanner.pos()));
}

}  // namespace

Status ParsePattern(std::string_view text, LabelDictionary* dict,
                    ParsedPattern* out,
                    std::string_view default_edge_label) {
  if (dict == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument to ParsePattern");
  }
  Scanner scanner(text);
  ParsedPattern result;

  // Parses one '(name[:label])'; returns the node id via `node`.
  auto parse_node = [&](NodeId* node) -> Status {
    if (!scanner.Consume("(")) {
      return ParseError(scanner, "expected '('");
    }
    std::string name(scanner.Identifier());
    if (name.empty()) {
      return ParseError(scanner, "expected node name");
    }
    std::string label;
    if (scanner.Consume(":")) {
      label = std::string(scanner.Identifier());
      if (label.empty()) {
        return ParseError(scanner, "expected node label after ':'");
      }
    }
    if (!scanner.Consume(")")) {
      return ParseError(scanner, "expected ')'");
    }
    auto it = result.node_ids.find(name);
    if (it != result.node_ids.end()) {
      if (!label.empty() &&
          result.query.NodeLabel(it->second) != dict->Intern(label)) {
        return ParseError(scanner,
                          "node '" + name + "' redeclared with a different "
                          "label");
      }
      *node = it->second;
      return Status::Ok();
    }
    if (label.empty()) {
      return ParseError(scanner, "first use of node '" + name +
                                     "' needs a ':label'");
    }
    *node = result.query.AddNode(dict->Intern(label));
    result.node_ids.emplace(std::move(name), *node);
    return Status::Ok();
  };

  while (true) {
    NodeId current;
    OSQ_RETURN_IF_ERROR(parse_node(&current));
    // Chain of edges.
    while (true) {
      bool forward;
      if (scanner.Consume("-[")) {
        forward = true;
      } else if (scanner.Consume("<-[")) {
        forward = false;
      } else {
        break;
      }
      std::string edge_label(scanner.Identifier());
      if (edge_label.empty()) {
        edge_label = std::string(default_edge_label);
      }
      if (forward) {
        if (!scanner.Consume("]->")) {
          return ParseError(scanner, "expected ']->'");
        }
      } else {
        if (!scanner.Consume("]-")) {
          return ParseError(scanner, "expected ']-'");
        }
      }
      NodeId next;
      OSQ_RETURN_IF_ERROR(parse_node(&next));
      NodeId from = forward ? current : next;
      NodeId to = forward ? next : current;
      result.query.AddEdge(from, to, dict->Intern(edge_label));
      current = next;
    }
    if (scanner.Consume(",")) {
      continue;
    }
    if (scanner.AtEnd()) {
      break;
    }
    return ParseError(scanner, "unexpected input");
  }
  if (result.query.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  *out = std::move(result);
  return Status::Ok();
}

Status LoadPatternsFromFile(const std::string& path, LabelDictionary* dict,
                            std::vector<ParsedPattern>* out,
                            std::string_view default_edge_label) {
  if (dict == nullptr || out == nullptr) {
    return Status::InvalidArgument("null argument to LoadPatternsFromFile");
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::vector<ParsedPattern> patterns;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Skip blanks and comment-only lines cheaply before parsing.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    ParsedPattern pattern;
    Status s = ParsePattern(line, dict, &pattern, default_edge_label);
    if (!s.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + s.message());
    }
    patterns.push_back(std::move(pattern));
  }
  *out = std::move(patterns);
  return Status::Ok();
}

std::string FormatPattern(const Graph& query, const LabelDictionary& dict) {
  std::string text;
  auto node_ref = [&](NodeId v, bool with_label) {
    std::string s = "(n" + std::to_string(v);
    if (with_label) {
      s += ":" + dict.Name(query.NodeLabel(v));
    }
    s += ")";
    return s;
  };
  std::vector<bool> declared(query.num_nodes(), false);
  bool first = true;
  for (const EdgeTriple& e : query.Edges()) {
    if (!first) text += ", ";
    first = false;
    text += node_ref(e.from, !declared[e.from]);
    declared[e.from] = true;
    text += "-[" + dict.Name(e.label) + "]->";
    text += node_ref(e.to, !declared[e.to]);
    declared[e.to] = true;
  }
  for (NodeId v = 0; v < query.num_nodes(); ++v) {
    if (!declared[v]) {
      if (!first) text += ", ";
      first = false;
      text += node_ref(v, true);
    }
  }
  return text;
}

}  // namespace osq
