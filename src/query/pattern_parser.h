// A compact text syntax for query graphs, in the spirit of Cypher path
// patterns:
//
//   (t:tourists)-[guide]->(m:museum), (t)-[fav]->(r:moonlight),
//   (r)-[near]->(m)
//
// Grammar (whitespace is insignificant; '#' starts a line comment):
//   pattern  :=  chain (',' chain)*
//   chain    :=  node (edge node)*
//   node     :=  '(' name (':' label)? ')'
//   edge     :=  '-[' label? ']->'   |   '<-[' label? ']-'
//   name, label :=  [A-Za-z0-9_.:/-]+  (':' excluded from names)
//
// A node's label must be given the first time its name appears; later
// occurrences reference the same query node.  An omitted edge label uses
// `default_edge_label`.  Parse errors report the byte offset.

#ifndef OSQ_QUERY_PATTERN_PARSER_H_
#define OSQ_QUERY_PATTERN_PARSER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/label_dictionary.h"

namespace osq {

struct ParsedPattern {
  Graph query;
  // Pattern node name -> query node id.
  std::unordered_map<std::string, NodeId> node_ids;
};

// Parses `text` into a query graph, interning labels into `dict`.
// On error returns InvalidArgument with the offending offset and leaves
// `out` untouched.
[[nodiscard]] Status ParsePattern(std::string_view text, LabelDictionary* dict,
                                  ParsedPattern* out,
                                  std::string_view default_edge_label = "-");

// Renders a query graph back to pattern syntax (one chain per edge,
// single-node patterns as "(n0:label)").  Inverse of ParsePattern up to
// node naming.
std::string FormatPattern(const Graph& query, const LabelDictionary& dict);

// Parses a query-workload file: one pattern per line; blank lines and '#'
// comment lines are skipped.  Fails (leaving `out` untouched) on the first
// malformed pattern, reporting its line number.
[[nodiscard]] Status LoadPatternsFromFile(
    const std::string& path, LabelDictionary* dict,
    std::vector<ParsedPattern>* out,
    std::string_view default_edge_label = "-");

}  // namespace osq

#endif  // OSQ_QUERY_PATTERN_PARSER_H_
