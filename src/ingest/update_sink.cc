#include "ingest/update_sink.h"

#include "ingest/ingest_pipeline.h"

namespace osq {

void AugmentServeStats(const IngestPipeline& pipeline, ServeStats* stats) {
  IngestStats s = pipeline.Stats();
  stats->ingest_backlog = s.backlog;
  stats->ingest_applied_lag_ms = s.applied_lag_ms;
  stats->ingest_coalescing_ratio = s.coalescing_ratio();
}

}  // namespace osq
