// UpdateSink — the ingest pipeline's application boundary.
//
// IngestPipeline (ingest_pipeline.h) batches a stream of GraphUpdates and
// hands each batch to an UpdateSink, which must apply it ATOMICALLY with
// respect to concurrent readers: one ApplyBatch call is one snapshot cut.
// Both serving tiers already provide exactly that contract through their
// ApplyUpdates entry points (exclusive snapshot lock, one version advance
// per batch), so the adapters here are thin non-owning wrappers.  The
// indirection keeps src/ingest/ free of a hard dependency on the sharded
// tier and gives tests a seam for counting/faulting batch applications.

#ifndef OSQ_INGEST_UPDATE_SINK_H_
#define OSQ_INGEST_UPDATE_SINK_H_

#include <vector>

#include "core/index_maintenance.h"
#include "serve/query_service.h"
#include "shard/sharded_query_service.h"

namespace osq {

class UpdateSink {
 public:
  virtual ~UpdateSink() = default;

  // Applies `batch` as one atomic snapshot cut.  Must be safe to call
  // concurrently with the sink's readers (the pipeline serializes its own
  // ApplyBatch calls — at most one is in flight at a time).
  virtual MaintenanceStats ApplyBatch(
      const std::vector<GraphUpdate>& batch) = 0;
};

// Sink over the single-engine serving tier.  Does not own the service.
class QueryServiceSink final : public UpdateSink {
 public:
  explicit QueryServiceSink(QueryService* service) : service_(service) {}

  MaintenanceStats ApplyBatch(
      const std::vector<GraphUpdate>& batch) override {
    return service_->ApplyUpdates(batch);
  }

 private:
  QueryService* service_;
};

class IngestPipeline;

// Copies the pipeline gauges into a serving-layer stats snapshot
// (ServeStats::ingest_*), joining write-path and read-path observability in
// one report.  Lives here — not on IngestPipeline — because update_sink is
// the one sanctioned ingest<->serving bridge (osq-layering); the rest of
// src/ingest stays free of serving-tier includes.
void AugmentServeStats(const IngestPipeline& pipeline, ServeStats* stats);

// Sink over the sharded coordinator: the batch is router-split per shard
// and still applied under one exclusive section = one consistent cut.
class ShardedServiceSink final : public UpdateSink {
 public:
  explicit ShardedServiceSink(ShardedQueryService* service)
      : service_(service) {}

  MaintenanceStats ApplyBatch(
      const std::vector<GraphUpdate>& batch) override {
    return service_->ApplyUpdates(batch);
  }

 private:
  ShardedQueryService* service_;
};

}  // namespace osq

#endif  // OSQ_INGEST_UPDATE_SINK_H_
