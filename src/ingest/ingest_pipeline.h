// IngestPipeline — the live write path (DESIGN.md §14).
//
// Producers Submit() individual GraphUpdates; a single background worker
// drains them into batches under a write-batching policy and applies each
// batch through an UpdateSink as ONE snapshot cut.  Batching is what makes
// incremental maintenance affordable online: every cut pays a fixed cost
// (exclusive lock acquisition, version advance, result-cache sweep), so
// amortizing it over max_batch updates divides the fixed overhead — and
// the reader-visible invalidation rate — by the batch size, at the price
// of bounded staleness (max_linger_ms).
//
// Batching policy: an update waits at most max_linger_ms from the moment
// the OLDEST pending update was accepted; the worker cuts a batch as soon
// as max_batch updates are pending, the linger expires, or a Flush/Stop
// demands immediate drain.  Backpressure: at most max_pending accepted-
// but-unapplied updates; beyond that Submit() rejects (returns false)
// rather than queueing unboundedly — callers see overload explicitly,
// mirroring the read path's admission shed.
//
// Coalescing: with coalesce_duplicates on, a submitted update is dropped
// when the LAST pending update on the same edge triple has the same kind.
// This is exactly the set of safe drops: graph mutations are idempotent
// (AddEdge/RemoveEdge skip duplicates/missing edges), so back-to-back
// same-kind updates on a triple leave the second a guaranteed no-op.  An
// intervening opposite-kind update on the triple makes the later
// duplicate meaningful again (insert–delete–insert must keep the final
// insert), which the last-kind rule preserves; see
// IngestPipelineTest.CoalescingPreservesInsertDeleteInsert.
//
// Threading: all queue state is guarded by one mutex; the sink is invoked
// OUTSIDE it (the serving tiers have their own snapshot locks), so
// producers and Flush waiters are never blocked behind index maintenance.
// At most one ApplyBatch is in flight at any time.

#ifndef OSQ_INGEST_INGEST_PIPELINE_H_
#define OSQ_INGEST_INGEST_PIPELINE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/annotations.h"
#include "core/index_maintenance.h"
#include "ingest/update_sink.h"

namespace osq {

struct IngestOptions {
  // Cut a batch as soon as this many updates are pending.
  size_t max_batch = 64;
  // ... or when the oldest pending update has waited this long.
  double max_linger_ms = 2.0;
  // Backpressure bound on accepted-but-unapplied updates; 0 = unbounded.
  size_t max_pending = 8192;
  // Drop updates that are guaranteed no-ops given the pending queue (see
  // file comment for the exact rule and its safety argument).
  bool coalesce_duplicates = true;
};

// Point-in-time pipeline counters (monotonic unless noted).
struct IngestStats {
  // Producer side.
  uint64_t submitted = 0;   // Submit() calls
  uint64_t accepted = 0;    // enqueued (submitted - rejected - coalesced)
  uint64_t rejected = 0;    // backpressure rejections
  uint64_t coalesced = 0;   // dropped as guaranteed no-ops
  // Consumer side.
  uint64_t batches = 0;     // snapshot cuts taken
  uint64_t applied = 0;     // updates that changed the graph
  uint64_t skipped = 0;     // no-ops that reached the sink anyway
  double apply_ms = 0.0;    // total wall time inside the sink
  // Gauges.
  uint64_t backlog = 0;         // accepted, not yet applied
  double applied_lag_ms = 0.0;  // age of the last applied batch's oldest
                                // update when its cut became visible
  double max_applied_lag_ms = 0.0;

  // Updates absorbed per snapshot cut: how much write-side work each
  // reader-visible invalidation amortizes.  >1 means batching is earning
  // its keep; includes coalesced drops since they also rode this cut.
  double coalescing_ratio() const {
    return batches > 0 ? static_cast<double>(applied + skipped + coalesced) /
                             static_cast<double>(batches)
                       : 0.0;
  }

  std::string ToString() const;
};

class IngestPipeline {
 public:
  // `sink` is borrowed and must outlive the pipeline.  The worker thread
  // starts immediately.
  explicit IngestPipeline(UpdateSink* sink,
                          const IngestOptions& options = IngestOptions{});
  ~IngestPipeline();  // Stop()s if the caller has not

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  // Enqueues one update.  Returns false when the pipeline is stopped or
  // the backpressure bound is hit (the update is NOT queued); returns
  // true when the update was accepted or safely coalesced away.
  // [[nodiscard]]: a dropped return value hides backpressure.
  [[nodiscard]] bool Submit(const GraphUpdate& update);

  // Convenience fan-in; returns how many of `updates` were accepted or
  // coalesced (a partial count < size() means backpressure kicked in).
  [[nodiscard]] size_t SubmitAll(const std::vector<GraphUpdate>& updates);

  // Blocks until every update accepted before this call has been applied
  // (linger is bypassed for the flushed prefix).  Safe from any thread
  // except the worker itself.
  void Flush();

  // Flush, then join the worker.  Idempotent; Submit() after Stop()
  // returns false.
  void Stop();

  IngestStats Stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    GraphUpdate update;
    Clock::time_point accepted_at;
  };
  // Coalescing key: edge triple + update kind of the LAST pending update
  // on that triple, with a pending count so entries die when the queue
  // drains past them.
  struct TripleState {
    GraphUpdate::Kind last_kind;
    size_t pending = 0;
  };
  using TripleKey = std::tuple<NodeId, NodeId, LabelId>;

  void WorkerLoop();

  UpdateSink* sink_;
  const IngestOptions options_;

  mutable std::mutex mu_;
  std::condition_variable worker_cv_;   // wakes the worker
  std::condition_variable retired_cv_;  // wakes Flush waiters
  std::deque<Pending> pending_ OSQ_GUARDED_BY(mu_);
  std::map<TripleKey, TripleState> triple_states_ OSQ_GUARDED_BY(mu_);
  // Accepted (enqueued) vs retired (applied through a cut) sequence
  // numbers; Flush(target) waits for retired_seq_ >= target.
  uint64_t accepted_seq_ OSQ_GUARDED_BY(mu_) = 0;
  uint64_t retired_seq_ OSQ_GUARDED_BY(mu_) = 0;
  // Worker bypasses linger while retired_seq_ < flush_target_.
  uint64_t flush_target_ OSQ_GUARDED_BY(mu_) = 0;
  bool stop_ OSQ_GUARDED_BY(mu_) = false;

  // Counters (Stats() snapshots under the lock).
  IngestStats stats_ OSQ_GUARDED_BY(mu_);

  // The handle is claimed (moved out) under mu_ by Stop(); the thread
  // itself runs WorkerLoop.
  std::thread worker_ OSQ_GUARDED_BY(mu_);
};

}  // namespace osq

#endif  // OSQ_INGEST_INGEST_PIPELINE_H_
