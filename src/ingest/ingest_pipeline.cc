#include "ingest/ingest_pipeline.h"

#include <algorithm>
#include <cstdio>

#include "common/timer.h"

namespace osq {

namespace {

std::chrono::steady_clock::duration LingerDuration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

IngestPipeline::IngestPipeline(UpdateSink* sink,
                               const IngestOptions& options)
    : sink_(sink), options_(options) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

IngestPipeline::~IngestPipeline() { Stop(); }

bool IngestPipeline::Submit(const GraphUpdate& update) {
  bool accepted = false;
  {
    std::scoped_lock<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stop_) {
      ++stats_.rejected;
      return false;
    }
    if (options_.max_pending > 0 &&
        pending_.size() >= options_.max_pending) {
      ++stats_.rejected;
      return false;
    }
    TripleKey key{update.edge.from, update.edge.to, update.edge.label};
    if (options_.coalesce_duplicates) {
      auto it = triple_states_.find(key);
      if (it != triple_states_.end() && it->second.pending > 0 &&
          it->second.last_kind == update.kind) {
        // The last pending update on this triple already puts the edge in
        // the state this one asks for — applying it would be a no-op.
        ++stats_.coalesced;
        return true;
      }
    }
    TripleState& state = triple_states_[key];
    state.last_kind = update.kind;
    ++state.pending;
    pending_.push_back(Pending{update, Clock::now()});
    ++accepted_seq_;
    ++stats_.accepted;
    stats_.backlog = pending_.size();
    accepted = true;
  }
  if (accepted) worker_cv_.notify_one();
  return accepted;
}

size_t IngestPipeline::SubmitAll(const std::vector<GraphUpdate>& updates) {
  size_t taken = 0;
  for (const GraphUpdate& update : updates) {
    if (!Submit(update)) break;
    ++taken;
  }
  return taken;
}

void IngestPipeline::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t target = accepted_seq_;
  flush_target_ = std::max(flush_target_, target);
  worker_cv_.notify_one();
  retired_cv_.wait(lock, [&] { return retired_seq_ >= target; });
}

void IngestPipeline::Stop() {
  // The worker drains the whole queue before exiting on stop_, so Stop()
  // implies Flush().  Claiming the thread handle under the lock makes
  // Stop() idempotent and safe against concurrent callers.
  std::thread claimed;
  {
    std::scoped_lock<std::mutex> lock(mu_);
    stop_ = true;
    if (worker_.joinable()) claimed = std::move(worker_);
  }
  worker_cv_.notify_one();
  if (claimed.joinable()) claimed.join();
}

void IngestPipeline::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<GraphUpdate> batch;
  for (;;) {
    worker_cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    // Linger: give the batch a chance to fill, but never hold an update
    // past max_linger_ms from the oldest pending accept — and skip the
    // wait entirely when a Flush/Stop wants the queue drained now.
    const Clock::time_point cut_by =
        pending_.front().accepted_at + LingerDuration(options_.max_linger_ms);
    while (!stop_ && retired_seq_ >= flush_target_ &&
           pending_.size() < options_.max_batch) {
      if (worker_cv_.wait_until(lock, cut_by) == std::cv_status::timeout) {
        break;
      }
      if (pending_.empty()) break;  // spurious wake after a drain
    }
    if (pending_.empty()) continue;

    batch.clear();
    const Clock::time_point oldest = pending_.front().accepted_at;
    while (!pending_.empty() && batch.size() < options_.max_batch) {
      const Pending& front = pending_.front();
      batch.push_back(front.update);
      TripleKey key{front.update.edge.from, front.update.edge.to,
                    front.update.edge.label};
      auto it = triple_states_.find(key);
      if (it != triple_states_.end() && --it->second.pending == 0) {
        triple_states_.erase(it);
      }
      pending_.pop_front();
    }
    stats_.backlog = pending_.size();

    // Apply outside the queue lock: the sink's own snapshot lock is the
    // expensive wait, and producers must be able to keep queueing (and
    // hitting backpressure honestly) while maintenance runs.
    lock.unlock();
    WallTimer apply_timer;
    MaintenanceStats applied = sink_->ApplyBatch(batch);
    const double apply_ms = apply_timer.ElapsedMillis();
    const double lag_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - oldest)
            .count();
    lock.lock();

    ++stats_.batches;
    stats_.applied += applied.applied;
    stats_.skipped += applied.skipped;
    stats_.apply_ms += apply_ms;
    stats_.applied_lag_ms = lag_ms;
    stats_.max_applied_lag_ms = std::max(stats_.max_applied_lag_ms, lag_ms);
    retired_seq_ += batch.size();
    retired_cv_.notify_all();
  }
}

IngestStats IngestPipeline::Stats() const {
  std::scoped_lock<std::mutex> lock(mu_);
  return stats_;
}

std::string IngestStats::ToString() const {
  std::string out;
  char line[220];
  std::snprintf(line, sizeof(line),
                "ingest: %llu submitted (%llu accepted, %llu coalesced, "
                "%llu rejected), backlog %llu\n",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(coalesced),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(backlog));
  out.append(line);
  std::snprintf(line, sizeof(line),
                "apply: %llu batches (%llu applied, %llu skipped), "
                "%.2fms in sink, %.2f updates/cut\n",
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(applied),
                static_cast<unsigned long long>(skipped), apply_ms,
                coalescing_ratio());
  out.append(line);
  std::snprintf(line, sizeof(line),
                "staleness: applied lag %.2fms (max %.2fms)\n",
                applied_lag_ms, max_applied_lag_ms);
  out.append(line);
  return out;
}

}  // namespace osq
