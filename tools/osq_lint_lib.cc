#include "osq_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "osq_lint_internal.h"

namespace osq {
namespace lint {
namespace internal {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True when the code accumulated so far ends in a genuine raw-string prefix
// (R, u8R, uR, UR, LR) — i.e. the next '"' opens a raw string.  An
// identifier that merely ends in R (STR_R"...") is an ordinary string
// following an identifier (macro-paste style), not a raw string.
bool EndsInRawPrefix(const std::string& code) {
  size_t len = code.size();
  if (len == 0 || code[len - 1] != 'R') {
    return false;
  }
  size_t before_r = len - 1;  // chars preceding the 'R'
  // Optional encoding prefix directly before the R.
  if (before_r >= 2 && code[before_r - 2] == 'u' && code[before_r - 1] == '8') {
    before_r -= 2;
  } else if (before_r >= 1 &&
             (code[before_r - 1] == 'u' || code[before_r - 1] == 'U' ||
              code[before_r - 1] == 'L')) {
    before_r -= 1;
  }
  // Whatever precedes the (possibly prefixed) R must not extend an
  // identifier, otherwise R is just the last letter of a longer name.
  return before_r == 0 || !IsIdentChar(code[before_r - 1]);
}

}  // namespace

// Splits `content` into lines and blanks comments and literals with a small
// state machine; the blanked columns keep positions stable so reported
// columns/lines match the file.
std::vector<Line> Preprocess(const std::string& content) {
  enum class State { kCode, kString, kChar, kBlockComment, kRawString };
  std::vector<Line> lines;
  Line cur;
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the ")delim" terminator
  size_t i = 0;
  const size_t n = content.size();
  auto flush_line = [&]() {
    lines.push_back(cur);
    cur = Line();
  };
  while (i < n) {
    char c = content[i];
    if (c == '\n') {
      if (state == State::kString || state == State::kChar) {
        state = State::kCode;  // unterminated literal: recover at newline
      }
      flush_line();
      ++i;
      continue;
    }
    switch (state) {
      case State::kCode: {
        if (c == '/' && i + 1 < n && content[i + 1] == '/') {
          // Line comment: consume to end of line into the comment view.
          i += 2;
          while (i < n && content[i] != '\n') {
            cur.comment.push_back(content[i]);
            ++i;
          }
          continue;
        }
        if (c == '/' && i + 1 < n && content[i + 1] == '*') {
          state = State::kBlockComment;
          cur.code += "  ";
          i += 2;
          continue;
        }
        if (c == '"') {
          // Raw string?  A genuine raw-string prefix must directly precede
          // the quote (R / u8R / uR / UR / LR, not an identifier that
          // happens to end in R).  The delimiter may be up to 16 chars (the
          // standard's cap); a longer one is ill-formed and falls back to
          // plain-string handling.
          if (EndsInRawPrefix(cur.code)) {
            size_t j = i + 1;
            std::string delim;
            while (j < n && content[j] != '(' && content[j] != '\n' &&
                   delim.size() < 16) {
              delim.push_back(content[j]);
              ++j;
            }
            if (j < n && content[j] == '(') {
              raw_delim = ")" + delim + "\"";
              state = State::kRawString;
              // Blank the quote, delimiter and opening paren one-for-one so
              // columns after the raw string stay aligned with the file.
              for (size_t k = i; k <= j; ++k) {
                cur.code.push_back(' ');
              }
              i = j + 1;
              continue;
            }
          }
          state = State::kString;
          cur.code.push_back(' ');
          ++i;
          continue;
        }
        if (c == '\'') {
          state = State::kChar;
          cur.code.push_back(' ');
          ++i;
          continue;
        }
        cur.code.push_back(c);
        ++i;
        break;
      }
      case State::kString:
      case State::kChar: {
        if (c == '\\' && i + 1 < n) {
          cur.code += "  ";
          i += 2;
          continue;
        }
        if ((state == State::kString && c == '"') ||
            (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        cur.code.push_back(' ');
        ++i;
        break;
      }
      case State::kBlockComment: {
        if (c == '*' && i + 1 < n && content[i + 1] == '/') {
          state = State::kCode;
          cur.code += "  ";
          i += 2;
          continue;
        }
        cur.comment.push_back(c);
        cur.code.push_back(' ');
        ++i;
        break;
      }
      case State::kRawString: {
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
          for (size_t k = 0; k < raw_delim.size(); ++k) {
            cur.code.push_back(' ');
          }
          i += raw_delim.size();
          continue;
        }
        cur.code.push_back(' ');
        ++i;
        break;
      }
    }
  }
  if (!cur.code.empty() || !cur.comment.empty()) {
    flush_line();
  }
  return lines;
}

// Parses `comment` for "NOLINT(rules)" or (when `next_line`) a
// "NOLINTNEXTLINE(rules)" directive covering `rule`.  A justification is any
// non-blank text after a ':' that follows the closing parenthesis.
Suppression ParseNolint(const std::string& comment, const std::string& rule,
                        bool next_line) {
  const std::string tag = next_line ? "NOLINTNEXTLINE(" : "NOLINT(";
  size_t pos = comment.find(tag);
  // Plain NOLINT( also appears inside NOLINTNEXTLINE(; reject that overlap.
  while (!next_line && pos != std::string::npos && pos >= 8 &&
         comment.compare(pos - 8, 8, "NEXTLINE") == 0) {
    pos = comment.find(tag, pos + 1);
  }
  if (pos == std::string::npos) {
    return Suppression::kNone;
  }
  size_t close = comment.find(')', pos);
  if (close == std::string::npos) {
    return Suppression::kNone;
  }
  std::string rules = comment.substr(pos + tag.size(), close - pos - tag.size());
  bool covers = false;
  std::stringstream ss(rules);
  std::string item;
  while (std::getline(ss, item, ',')) {
    size_t b = item.find_first_not_of(" \t");
    size_t e = item.find_last_not_of(" \t");
    if (b != std::string::npos && item.substr(b, e - b + 1) == rule) {
      covers = true;
    }
  }
  if (!covers) {
    return Suppression::kNone;
  }
  size_t colon = comment.find(':', close);
  if (colon == std::string::npos) {
    return Suppression::kUnjustified;
  }
  size_t text = comment.find_first_not_of(" \t", colon + 1);
  return text == std::string::npos ? Suppression::kUnjustified
                                   : Suppression::kJustified;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace internal

namespace {

using internal::HasSuffix;
using internal::Line;
using internal::ParseNolint;
using internal::Preprocess;
using internal::Suppression;

class Linter {
 public:
  Linter(std::string path, const std::vector<Line>& lines,
         const FileClass& cls, std::vector<Violation>* out)
      : path_(std::move(path)), lines_(lines), cls_(cls), out_(out) {}

  void Run() {
    CollectGuards();
    CollectUnorderedVars();
    for (size_t i = 0; i < lines_.size(); ++i) {
      const std::string& code = lines_[i].code;
      CheckStatusNodiscard(i, code);
      CheckRawLock(i, code);
      CheckStdout(i, code);
      CheckUnorderedIter(i, code);
      CheckDeterminism(i, code);
      CheckGraphAdjacency(i, code);
      CheckShardIsolation(i, code);
    }
  }

 private:
  void Report(size_t idx, const std::string& rule, std::string message) {
    // A NOLINT on the offending line (or NOLINTNEXTLINE on the previous)
    // suppresses the finding — but only with a written justification.
    Suppression s = ParseNolint(lines_[idx].comment, rule, false);
    if (s == Suppression::kNone && idx > 0) {
      s = ParseNolint(lines_[idx - 1].comment, rule, true);
    }
    if (s == Suppression::kJustified) {
      return;
    }
    if (s == Suppression::kUnjustified) {
      message = "suppression requires a justification: NOLINT(" + rule +
                "): <why this is safe>";
    }
    out_->push_back(Violation{path_, idx + 1, rule, std::move(message)});
  }

  // --- osq-status-nodiscard ----------------------------------------------

  void CheckStatusNodiscard(size_t idx, const std::string& code) {
    if (!cls_.header) {
      return;
    }
    static const std::regex kClassDef(
        R"(\bclass\s+(Status|StatusOr)\b(?!\s*;))");
    static const std::regex kFreeDecl(
        R"(^(?:static\s+)?(?:osq::)?Status\s+\w+\s*\()");
    if (std::regex_search(code, kClassDef) &&
        code.find("nodiscard") == std::string::npos) {
      Report(idx, "osq-status-nodiscard",
             "Status/StatusOr class definition must be [[nodiscard]]");
      return;
    }
    if (std::regex_search(code, kFreeDecl) &&
        code.find("nodiscard") == std::string::npos &&
        !(idx > 0 &&
          lines_[idx - 1].code.find("[[nodiscard]]") != std::string::npos)) {
      Report(idx, "osq-status-nodiscard",
             "Status-returning declaration must be [[nodiscard]]");
    }
  }

  // --- osq-raw-lock -------------------------------------------------------

  void CollectGuards() {
    // Named RAII guards (and weak_ptr, whose .lock() is unrelated) declared
    // anywhere in the file; collected up front so declaration order does not
    // matter.
    static const std::regex kGuardDecl(
        R"(\b(?:unique_lock|shared_lock|scoped_lock|lock_guard|weak_ptr))"
        R"((?:\s*<[^;{}>]*(?:<[^;{}>]*>)?[^;{}>]*>)?\s+(\w+))");
    for (const Line& line : lines_) {
      auto begin = std::sregex_iterator(line.code.begin(), line.code.end(),
                                        kGuardDecl);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        guards_.insert((*it)[1].str());
      }
    }
  }

  void CheckRawLock(size_t idx, const std::string& code) {
    static const std::regex kLockCall(
        R"((\w+)\s*(\.|->)\s*)"
        R"(((?:try_)?lock(?:_shared|_for|_until)?|unlock(?:_shared)?)\s*\()");
    auto begin = std::sregex_iterator(code.begin(), code.end(), kLockCall);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string receiver = (*it)[1].str();
      const bool through_pointer = (*it)[2].str() == "->";
      if (!through_pointer && guards_.count(receiver) > 0) {
        continue;  // early release / re-acquire through a named RAII guard
      }
      Report(idx, "osq-raw-lock",
             "raw " + (*it)[3].str() + "() on '" + receiver +
                 "' outside an RAII guard (use std::unique_lock / "
                 "std::scoped_lock)");
    }
  }

  // --- osq-no-stdout ------------------------------------------------------

  void CheckStdout(size_t idx, const std::string& code) {
    static const std::regex kStdout(
        R"((?:^|[^\w])(std\s*::\s*cout|printf\s*\(|puts\s*\())");
    std::smatch m;
    if (std::regex_search(code, m, kStdout)) {
      Report(idx, "osq-no-stdout",
             "library code must not print (" + m[1].str() +
                 "); return data and let the caller render it");
    }
  }

  // --- osq-unordered-iter -------------------------------------------------

  void CollectUnorderedVars() {
    if (!cls_.emission) {
      return;
    }
    static const std::regex kUnordered(
        R"(\bunordered_(?:map|set|multimap|multiset)\b)");
    for (const Line& line : lines_) {
      const std::string& code = line.code;
      auto begin = std::sregex_iterator(code.begin(), code.end(), kUnordered);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        // Skip the template argument list (bracket counting handles nested
        // templates), then take the following identifier as the variable.
        size_t p = static_cast<size_t>(it->position()) + it->length();
        while (p < code.size() && std::isspace(
                                      static_cast<unsigned char>(code[p]))) {
          ++p;
        }
        if (p < code.size() && code[p] == '<') {
          int depth = 0;
          while (p < code.size()) {
            if (code[p] == '<') ++depth;
            if (code[p] == '>' && --depth == 0) {
              ++p;
              break;
            }
            ++p;
          }
        }
        while (p < code.size() &&
               (std::isspace(static_cast<unsigned char>(code[p])) ||
                code[p] == '&' || code[p] == '*')) {
          ++p;
        }
        size_t b = p;
        while (p < code.size() &&
               (std::isalnum(static_cast<unsigned char>(code[p])) ||
                code[p] == '_')) {
          ++p;
        }
        if (p > b) {
          unordered_vars_.insert(code.substr(b, p - b));
        }
      }
    }
  }

  // Joins a `for (` header that spans physical lines (paren-counted, capped
  // so a parse hiccup cannot run away).
  std::string ForHeader(size_t idx, size_t open_pos) const {
    std::string header;
    int depth = 0;
    for (size_t i = idx; i < lines_.size() && i < idx + 6; ++i) {
      const std::string& code = lines_[i].code;
      size_t start = (i == idx) ? open_pos : 0;
      for (size_t p = start; p < code.size(); ++p) {
        if (code[p] == '(') ++depth;
        if (code[p] == ')' && --depth == 0) {
          return header;
        }
        header.push_back(code[p]);
      }
      header.push_back(' ');
    }
    return header;
  }

  void CheckUnorderedIter(size_t idx, const std::string& code) {
    if (!cls_.emission) {
      return;
    }
    static const std::regex kFor(R"(\bfor\s*\()");
    static const std::regex kIdent(R"(\w+)");
    std::smatch m;
    std::string::const_iterator search_start = code.begin();
    while (std::regex_search(search_start, code.cend(), m, kFor)) {
      size_t open = static_cast<size_t>(m.position() +
                                        (search_start - code.begin()) +
                                        m.length() - 1);
      std::string header = ForHeader(idx, open);
      size_t colon = header.find(':');
      // Only range-for: an init;cond;step header has no lone ':'.
      if (colon != std::string::npos &&
          header.find(';') == std::string::npos) {
        std::string range = header.substr(colon + 1);
        bool bad = range.find("unordered") != std::string::npos;
        auto begin = std::sregex_iterator(range.begin(), range.end(), kIdent);
        for (auto it = begin; !bad && it != std::sregex_iterator(); ++it) {
          bad = unordered_vars_.count(it->str()) > 0;
        }
        if (bad) {
          Report(idx, "osq-unordered-iter",
                 "match-emission code iterates an unordered container; hash "
                 "order would leak into result order (copy into a sorted "
                 "vector first)");
        }
      }
      search_start = code.begin() + static_cast<std::string::difference_type>(
                                        open + 1);
    }
    // Explicit iterator loops over unordered members are just as
    // order-dependent as range-for.
    static const std::regex kBegin(R"((\w+)\s*\.\s*c?begin\s*\()");
    auto begin = std::sregex_iterator(code.begin(), code.end(), kBegin);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      if (unordered_vars_.count((*it)[1].str()) > 0) {
        Report(idx, "osq-unordered-iter",
               "match-emission code iterates unordered container '" +
                   (*it)[1].str() + "' via begin()");
      }
    }
  }

  // --- osq-core-determinism ----------------------------------------------

  void CheckDeterminism(size_t idx, const std::string& code) {
    // Engines are allowed only inside the seeded Rng wrapper.
    if (!cls_.rng_exempt) {
      static const std::regex kEngine(
          R"((?:^|[^\w])(random_device|mt19937(?:_64)?|)"
          R"(default_random_engine|minstd_rand0?)\b)");
      std::smatch m;
      if (std::regex_search(code, m, kEngine)) {
        Report(idx, "osq-core-determinism",
               "raw random engine '" + m[1].str() +
                   "' in library code; use the seeded osq::Rng "
                   "(common/rng.h) so runs replay");
      }
    }
    static const std::regex kCall(R"((?:^|[^\w])(rand|srand|time)\s*\()");
    std::smatch m;
    if (std::regex_search(code, m, kCall)) {
      Report(idx, "osq-core-determinism",
             "call to " + m[1].str() +
                 "() in library code; randomness must flow through "
                 "osq::Rng and clocks through timer.h/deadline.h");
    }
    static const std::regex kWallClock(R"(\bsystem_clock\b)");
    if (std::regex_search(code, kWallClock)) {
      Report(idx, "osq-core-determinism",
             "system_clock (wall time) in library code; use the steady "
             "clocks in timer.h/deadline.h");
    }
  }

  // --- osq-graph-adjacency -------------------------------------------------

  void CheckGraphAdjacency(size_t idx, const std::string& code) {
    if (cls_.graph_core) {
      return;  // the Graph implementation owns the arrays
    }
    // The CSR member names may not appear at all outside graph core — a
    // mirrored copy of the arrays is as layout-coupled as a subscript.
    static const std::regex kCsrMember(
        R"(\b(out_offsets_|in_offsets_|out_entries_|in_entries_|)"
        R"(out_slot_|in_slot_|dyn_out_|dyn_in_)\b)");
    auto begin = std::sregex_iterator(code.begin(), code.end(), kCsrMember);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      Report(idx, "osq-graph-adjacency",
             "direct use of Graph adjacency storage '" + (*it)[1].str() +
                 "' outside graph/graph.{h,cc}; go through "
                 "OutEdges()/InEdges()/OutDegree()");
    }
    // Pre-CSR style `out_[v]` / `in_[v]` adjacency subscripts.
    static const std::regex kLegacy(R"(\b(out_|in_)\s*\[)");
    begin = std::sregex_iterator(code.begin(), code.end(), kLegacy);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      Report(idx, "osq-graph-adjacency",
             "legacy '" + (*it)[1].str() +
                 "[v]'-style adjacency access bypasses the Graph API; use "
                 "OutEdges()/InEdges()");
    }
  }

  // --- osq-shard-isolation -------------------------------------------------

  void CheckShardIsolation(size_t idx, const std::string& code) {
    if (!cls_.shard_coordinator) {
      return;
    }
    // Engine-layer types and free functions the coordinator must not name:
    // it talks to shards through the ShardEngine adapter only.
    static const std::regex kEngineType(
        R"(\b(QueryEngine|OntologyIndex|GviewFilter|KMatchOnGraph)\b)");
    std::smatch m;
    if (std::regex_search(code, m, kEngineType)) {
      Report(idx, "osq-shard-isolation",
             "shard coordinator names engine internal '" + m[1].str() +
                 "'; route the work through the ShardEngine adapter");
    }
    static const std::regex kEngineCall(
        R"(\b(KMatch|InducedSubgraph)\s*\()");
    if (std::regex_search(code, m, kEngineCall)) {
      Report(idx, "osq-shard-isolation",
             "shard coordinator calls '" + m[1].str() +
                 "()' directly; per-shard evaluation belongs in "
                 "ShardEngine");
    }
    // Graph traversal / mutation members: the coordinator never walks or
    // edits a shard's graph itself.
    static const std::regex kGraphMember(
        R"((\.|->)\s*(OutEdges|InEdges|EdgeLabelRange|AddEdge|RemoveEdge))"
        R"(\s*\()");
    auto begin = std::sregex_iterator(code.begin(), code.end(), kGraphMember);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      Report(idx, "osq-shard-isolation",
             "shard coordinator uses Graph member '" + (*it)[2].str() +
                 "()'; graph access belongs behind the ShardEngine "
                 "adapter");
    }
  }

  const std::string path_;
  const std::vector<Line>& lines_;
  const FileClass cls_;
  std::vector<Violation>* out_;
  std::set<std::string> guards_;
  std::set<std::string> unordered_vars_;
};

// The src/ modules osq-layering knows about; anything else (system headers,
// gtest, tools/) is outside the layering DAG.
const char* const kModules[] = {"baseline", "common",   "core",  "gen",
                                "graph",    "ingest",   "ontology",
                                "query",    "serve",    "shard"};

std::string ModuleOf(const std::string& path, const std::string& stem) {
  for (const char* mod : kModules) {
    if (path.find("src/" + std::string(mod) + "/") != std::string::npos) {
      return mod;
    }
  }
  // Fixtures opt in by naming: {bad,clean}_layering_<module>_*.cc.
  size_t tag = stem.find("layering_");
  if (tag != std::string::npos) {
    std::string rest = stem.substr(tag + 9);
    for (const char* mod : kModules) {
      if (rest.rfind(mod, 0) == 0) {
        return mod;
      }
    }
  }
  return "";
}

}  // namespace

std::string Violation::ToString() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

FileClass ClassifyPath(const std::string& path) {
  FileClass cls;
  cls.header = HasSuffix(path, ".h");
  std::string stem = std::filesystem::path(path).filename().string();
  cls.module = ModuleOf(path, stem);
  for (const char* layer :
       {"kmatch", "diversify", "explain", "query_engine"}) {
    if (stem.find(layer) != std::string::npos) {
      cls.emission = true;
    }
  }
  if (path.find("serve") != std::string::npos) {
    cls.emission = true;
  }
  if (path.find("common/rng") != std::string::npos ||
      stem.find("rng") == 0) {
    cls.rng_exempt = true;
  }
  // Only the Graph implementation itself (graph/graph.h + graph/graph.cc,
  // not graph_io or graph_algorithms) may touch the adjacency arrays.
  if (path.find("graph/graph.") != std::string::npos) {
    cls.graph_core = true;
  }
  // The shard layer emits merged matches (same determinism stakes as
  // serve/), and its coordinator files — everything except the ShardEngine
  // adapter and the partitioner, which exist to own the engine/graph
  // internals — must stay isolated from those internals.
  if (path.find("shard") != std::string::npos) {
    cls.emission = true;
    if (stem.find("shard_engine") == std::string::npos &&
        stem.find("partitioner") == std::string::npos) {
      cls.shard_coordinator = true;
    }
  }
  return cls;
}

void LintContent(const std::string& path, const std::string& content,
                 const FileClass& cls, const AnnotationIndex& index,
                 std::vector<Violation>* out) {
  std::vector<Line> lines = Preprocess(content);
  Linter(path, lines, cls, out).Run();
  internal::LintFlow(path, lines, index, out);
  internal::LintLayering(path, content, lines, cls, out);
}

void LintContent(const std::string& path, const std::string& content,
                 const FileClass& cls, std::vector<Violation>* out) {
  // Self-contained mode: the flow rules see only the annotations declared
  // in this content (fixtures, snippets).
  AnnotationIndex index;
  CollectAnnotations(content, &index);
  LintContent(path, content, cls, index, out);
}

namespace {

bool ReadWholeFile(const std::string& path, std::string* content) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *content = buf.str();
  return true;
}

}  // namespace

bool LintFile(const std::string& path, std::vector<Violation>* out) {
  std::string content;
  if (!ReadWholeFile(path, &content)) {
    return false;
  }
  AnnotationIndex index;
  CollectAnnotations(content, &index);
  // A .cc file's methods are checked against the annotations its class
  // declared in the sibling header (and vice versa for inline bodies whose
  // class grew annotations in a split header/impl fixture).
  std::string sibling;
  if (HasSuffix(path, ".cc")) {
    sibling = path.substr(0, path.size() - 3) + ".h";
  } else if (HasSuffix(path, ".h")) {
    sibling = path.substr(0, path.size() - 2) + ".cc";
  }
  std::string sibling_content;
  if (!sibling.empty() && ReadWholeFile(sibling, &sibling_content)) {
    CollectAnnotations(sibling_content, &index);
  }
  LintContent(path, content, ClassifyPath(path), index, out);
  return true;
}

bool LintTree(const std::string& root, std::vector<Violation>* out) {
  namespace fs = std::filesystem;
  fs::path src = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) {
    return false;
  }
  std::vector<std::string> files;
  for (fs::recursive_directory_iterator it(src, ec), end; it != end;
       it.increment(ec)) {
    if (ec) {
      return false;
    }
    if (!it->is_regular_file()) {
      continue;
    }
    std::string p = it->path().string();
    if (HasSuffix(p, ".h") || HasSuffix(p, ".cc")) {
      files.push_back(std::move(p));
    }
  }
  std::sort(files.begin(), files.end());

  // Two passes: first collect every OSQ_* annotation in the tree (so a .cc
  // body is checked against its header's contracts regardless of scan
  // order), then lint each file against the full index.
  AnnotationIndex index;
  std::vector<std::string> contents(files.size());
  std::vector<char> readable(files.size(), 0);
  bool ok = true;
  for (size_t i = 0; i < files.size(); ++i) {
    if (ReadWholeFile(files[i], &contents[i])) {
      readable[i] = 1;
      CollectAnnotations(contents[i], &index);
    } else {
      ok = false;
    }
  }
  for (size_t i = 0; i < files.size(); ++i) {
    if (readable[i]) {
      LintContent(files[i], contents[i], ClassifyPath(files[i]), index, out);
    }
  }
  return ok;
}

}  // namespace lint
}  // namespace osq
