// Shared plumbing between the token-level rules (osq_lint_lib.cc) and the
// flow-aware analyzer (osq_lint_flow.cc): the comment/string-stripping
// lexer, NOLINT parsing, and small string helpers.  Not part of the public
// osq_lint.h surface.

#ifndef OSQ_TOOLS_OSQ_LINT_INTERNAL_H_
#define OSQ_TOOLS_OSQ_LINT_INTERNAL_H_

#include <string>
#include <vector>

#include "osq_lint.h"

namespace osq {
namespace lint {
namespace internal {

// One physical source line, split into the code text (comments and
// string/char literals blanked out, columns preserved) and the comment text
// (for NOLINT directives).
struct Line {
  std::string code;
  std::string comment;
};

// Splits `content` into lines and blanks comments and literals with a small
// state machine.  Raw strings — including encoding prefixes (u8R"…", LR"…")
// and custom delimiters up to the standard's 16 chars — are blanked with
// columns preserved, and an identifier that merely ends in R (STR_R"…") is
// correctly treated as an ordinary string literal following an identifier.
std::vector<Line> Preprocess(const std::string& content);

// How a NOLINT directive on a line relates to a rule.
enum class Suppression { kNone, kJustified, kUnjustified };

// Parses `comment` for "NOLINT(rules)" or (when `next_line`) a
// "NOLINTNEXTLINE(rules)" directive covering `rule`.  A justification is any
// non-blank text after a ':' that follows the closing parenthesis.
Suppression ParseNolint(const std::string& comment, const std::string& rule,
                        bool next_line);

bool HasSuffix(const std::string& s, const std::string& suffix);

// Flow-aware intra-procedural rules (osq-guarded-access, osq-lock-order)
// over the preprocessed `lines`, checked against `index`.  Implemented in
// osq_lint_flow.cc.
void LintFlow(const std::string& path, const std::vector<Line>& lines,
              const AnnotationIndex& index, std::vector<Violation>* out);

// Module-layering rule (osq-layering) over the raw `content`'s #include
// lines; `lines` supplies the comment view for NOLINT suppression.
void LintLayering(const std::string& path, const std::string& content,
                  const std::vector<Line>& lines, const FileClass& cls,
                  std::vector<Violation>* out);

}  // namespace internal
}  // namespace lint
}  // namespace osq

#endif  // OSQ_TOOLS_OSQ_LINT_INTERNAL_H_
