// osq_cli — command-line front end for the OSQ library.
//
//   osq_cli generate --type crossdomain --scale 5000 --seed 7
//           --graph g.txt --ontology o.txt
//   osq_cli index    --graph g.txt --ontology o.txt --out idx.txt
//           [--beta 0.81] [--n 2] [--seed 42] [--threads N]
//   osq_cli snapshot --graph g.txt --ontology o.txt --out engine.snp
//           [index flags]          (build engine, save binary v2 snapshot)
//   osq_cli query    --graph g.txt --ontology o.txt
//           --pattern '(t:tourists)-[guide]->(m:museum)'
//           [--index idx.txt] [--theta 0.9] [--k 10] [--explain]
//           [--semantics induced|homomorphic] [--threads N]
//           [--deadline-ms 0]
//   osq_cli query    --snapshot engine.snp --pattern ...
//           (cold start from the binary snapshot; no text parsing,
//            no index build)
//   osq_cli bench    --graph g.txt --ontology o.txt --queries q.txt
//           [--theta 0.9] [--k 10] [--reps 3] [--threads N]
//   osq_cli serve-bench --graph g.txt --ontology o.txt --queries q.txt
//           [--snapshot engine.snp]   (start from the binary snapshot
//            instead of building the index)
//           [--theta 0.9] [--k 10] [--threads 4] [--requests 200]
//           [--cache 256] [--update-interval-ms 0] [--deadline-ms 0]
//           [--max-inflight 0]
//           [--shards N] [--shard-policy hash|range] [--halo 2]
//           (--shards > 0 serves through the scatter-gather
//            ShardedQueryService: N partitioned engines, merged top-K
//            bit-identical to a single engine, vector-stamped cache;
//            requires --graph/--ontology, not --snapshot)
//   osq_cli ingest-bench --graph g.txt --ontology o.txt --queries q.txt
//           [--steps 400] [--batch 64] [--linger-ms 2] [--max-pending 8192]
//           [--churn-seed 1448] [--threads 2] [--deadline-ms 100]
//           [--theta 0.9] [--k 10] [--cache 256]
//           [--shards N] [--shard-policy hash|range] [--halo 2]
//           (stream a churn workload through the live-ingest pipeline —
//            batched, coalesced, one snapshot cut per batch — while
//            --threads reader threads serve the patterns closed-loop;
//            prints pipeline + service stats: backlog, applied lag,
//            coalescing ratio, in-lock apply cost, burst-read p99)
//   osq_cli stats    --graph g.txt --ontology o.txt
//
// --threads N parallelizes index build and query evaluation over N threads
// (0 = all hardware threads); results are identical for every N.
// serve-bench instead uses --threads as the number of concurrent client
// threads driving a QueryService closed-loop (snapshot-isolated reads,
// LRU result cache); --update-interval-ms > 0 adds a writer thread
// toggling an edge update at that period.
// --deadline-ms > 0 bounds each query's evaluation time; an interrupted
// query returns the (valid) matches found so far, flagged as
// deadline_exceeded.  serve-bench's --max-inflight > 0 bounds admitted
// concurrent queries — excess requests are shed with UNAVAILABLE.
//
// Exit status: 0 on success, 1 on usage errors, 2 on runtime errors.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/explain.h"
#include "core/index_io.h"
#include "core/query_engine.h"
#include "core/snapshot.h"
#include "gen/churn.h"
#include "gen/scenarios.h"
#include "gen/synthetic.h"
#include "graph/graph_algorithms.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/update_sink.h"
#include "shard/sharded_query_service.h"
#include "graph/graph_io.h"
#include "query/pattern_parser.h"
#include "serve/query_service.h"

namespace {

using namespace osq;

using FlagMap = std::map<std::string, std::string>;

// Parses "--flag value" pairs; returns false on malformed input.
bool ParseFlags(int argc, char** argv, int start, FlagMap* flags) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return false;
    }
    std::string name = arg.substr(2);
    // Boolean flags may omit the value.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      (*flags)[name] = argv[++i];
    } else {
      (*flags)[name] = "1";
    }
  }
  return true;
}

std::string GetFlag(const FlagMap& flags, const std::string& name,
                    const std::string& def) {
  auto it = flags.find(name);
  return it == flags.end() ? def : it->second;
}

double GetDouble(const FlagMap& flags, const std::string& name, double def) {
  auto it = flags.find(name);
  return it == flags.end() ? def : std::atof(it->second.c_str());
}

size_t GetSize(const FlagMap& flags, const std::string& name, size_t def) {
  auto it = flags.find(name);
  return it == flags.end() ? def
                           : static_cast<size_t>(
                                 std::strtoull(it->second.c_str(), nullptr,
                                               10));
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

int Usage() {
  std::fprintf(stderr,
               "usage: osq_cli "
               "<generate|index|snapshot|query|bench|serve-bench|"
               "ingest-bench|stats> [--flags]\n"
               "see the header of tools/osq_cli.cc for details\n");
  return 1;
}

int CmdGenerate(const FlagMap& flags) {
  std::string type = GetFlag(flags, "type", "crossdomain");
  std::string graph_path = GetFlag(flags, "graph", "");
  std::string ontology_path = GetFlag(flags, "ontology", "");
  if (graph_path.empty() || ontology_path.empty()) {
    std::fprintf(stderr, "generate needs --graph and --ontology paths\n");
    return 1;
  }
  gen::ScenarioParams params;
  params.scale = GetSize(flags, "scale", 2000);
  params.seed = GetSize(flags, "seed", 7);

  gen::Dataset ds;
  if (type == "crossdomain") {
    ds = gen::MakeCrossDomainLike(params);
  } else if (type == "flickr") {
    ds = gen::MakeFlickrLike(params);
  } else if (type == "random") {
    gen::SyntheticGraphParams gp;
    gp.num_nodes = params.scale;
    gp.num_edges = params.scale * 4;
    gp.num_labels = GetSize(flags, "labels", 100);
    gp.seed = params.seed;
    ds.graph = gen::MakeRandomGraph(gp, &ds.dict);
    gen::SyntheticOntologyParams op;
    op.num_labels = gp.num_labels;
    op.seed = params.seed + 1;
    ds.ontology = gen::MakeTaxonomyOntology(op, &ds.dict);
  } else {
    std::fprintf(stderr, "unknown --type '%s'\n", type.c_str());
    return 1;
  }
  Status s = SaveGraphToFile(ds.graph, ds.dict, graph_path);
  if (!s.ok()) return Fail(s);
  s = SaveOntology(ds.ontology, ds.dict, ontology_path);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s (%zu nodes, %zu edges) and %s (%zu concepts, %zu "
              "relations)\n",
              graph_path.c_str(), ds.graph.num_nodes(), ds.graph.num_edges(),
              ontology_path.c_str(), ds.ontology.num_labels(),
              ds.ontology.num_relations());
  return 0;
}

// Loads the graph + ontology named by --graph/--ontology into one dataset.
int LoadDataset(const FlagMap& flags, gen::Dataset* ds) {
  std::string graph_path = GetFlag(flags, "graph", "");
  std::string ontology_path = GetFlag(flags, "ontology", "");
  if (graph_path.empty() || ontology_path.empty()) {
    std::fprintf(stderr, "need --graph and --ontology paths\n");
    return 1;
  }
  Status s = LoadGraphFromFile(graph_path, &ds->dict, &ds->graph);
  if (!s.ok()) return Fail(s);
  s = LoadOntologyFromFile(ontology_path, &ds->dict, &ds->ontology);
  if (!s.ok()) return Fail(s);
  return 0;
}

IndexOptions IndexOptionsFromFlags(const FlagMap& flags) {
  IndexOptions idx;
  idx.beta = GetDouble(flags, "beta", idx.beta);
  idx.num_concept_graphs = GetSize(flags, "n", idx.num_concept_graphs);
  idx.seed = GetSize(flags, "seed", idx.seed);
  idx.similarity_base = GetDouble(flags, "base", idx.similarity_base);
  idx.edge_label_aware = GetFlag(flags, "edge-label-aware", "0") == "1";
  idx.num_threads = GetSize(flags, "threads", idx.num_threads);
  return idx;
}

int CmdIndex(const FlagMap& flags) {
  gen::Dataset ds;
  if (int rc = LoadDataset(flags, &ds); rc != 0) return rc;
  std::string out_path = GetFlag(flags, "out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "index needs --out path\n");
    return 1;
  }
  IndexOptions idx = IndexOptionsFromFlags(flags);
  WallTimer timer;
  IndexBuildStats stats;
  OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, idx,
                                             &stats);
  std::printf("built index in %.1f ms: %zu concept graphs, %zu blocks, "
              "|I|=%zu\n",
              timer.ElapsedMillis(), index.num_concept_graphs(),
              stats.total_blocks, index.TotalSize());
  Status s = SaveIndexToFile(index, ds.dict, out_path);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

int CmdSnapshot(const FlagMap& flags) {
  gen::Dataset ds;
  if (int rc = LoadDataset(flags, &ds); rc != 0) return rc;
  std::string out_path = GetFlag(flags, "out", "");
  if (out_path.empty()) {
    std::fprintf(stderr, "snapshot needs --out path\n");
    return 1;
  }
  IndexOptions idx = IndexOptionsFromFlags(flags);
  WallTimer timer;
  QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);
  double build_ms = timer.ElapsedMillis();
  Status s = SaveEngineSnapshot(engine, ds.dict, out_path);
  if (!s.ok()) return Fail(s);
  std::printf("built engine in %.1f ms (%zu concept graphs, |I|=%zu); "
              "wrote %s\n",
              build_ms, engine.index().num_concept_graphs(),
              engine.index().TotalSize(), out_path.c_str());
  return 0;
}

int CmdQuery(const FlagMap& flags) {
  std::string pattern = GetFlag(flags, "pattern", "");
  if (pattern.empty()) {
    std::fprintf(stderr, "query needs --pattern '(a:label)-[rel]->(b:label)'\n");
    return 1;
  }

  // Data + index come either from a binary snapshot (the cold-start path:
  // mmap, validate, serve — no text parsing, no index build) or from text
  // files with the index built here (optionally overlaid from a v1 file).
  gen::Dataset ds;
  std::unique_ptr<QueryEngine> snapshot_engine;
  std::optional<OntologyIndex> built;
  LabelDictionary* dict = nullptr;
  const Graph* graph = nullptr;
  const OntologyIndex* index = nullptr;
  std::string snapshot_path = GetFlag(flags, "snapshot", "");
  if (!snapshot_path.empty()) {
    SnapshotLoadStats load_stats;
    WallTimer load_timer;
    Status s = LoadEngineSnapshot(snapshot_path, &ds.dict, &snapshot_engine,
                                  &load_stats);
    if (!s.ok()) return Fail(s);
    std::printf("loaded snapshot in %.1f ms (%zu bytes, %s)\n",
                load_timer.ElapsedMillis(), load_stats.file_bytes,
                load_stats.mapped ? "mmap" : "read");
    dict = &ds.dict;
    graph = &snapshot_engine->graph();
    index = &snapshot_engine->index();
  } else {
    if (int rc = LoadDataset(flags, &ds); rc != 0) return rc;
    IndexOptions idx = IndexOptionsFromFlags(flags);
    built.emplace(OntologyIndex::Build(ds.graph, ds.ontology, idx));
    std::string index_path = GetFlag(flags, "index", "");
    if (!index_path.empty()) {
      Status s = LoadIndexFromFile(index_path, ds.graph, ds.ontology,
                                   &ds.dict, &*built);
      if (!s.ok()) return Fail(s);
    }
    dict = &ds.dict;
    graph = &ds.graph;
    index = &*built;
  }

  ParsedPattern parsed;
  Status s = ParsePattern(pattern, dict, &parsed);
  if (!s.ok()) return Fail(s);

  QueryOptions options;
  options.theta = GetDouble(flags, "theta", options.theta);
  options.k = GetSize(flags, "k", options.k);
  options.num_threads = GetSize(flags, "threads", options.num_threads);
  options.deadline_ms = GetDouble(flags, "deadline-ms", 0.0);
  std::string semantics = GetFlag(flags, "semantics", "induced");
  if (semantics == "homomorphic") {
    options.semantics = MatchSemantics::kHomomorphicEdges;
  } else if (semantics != "induced") {
    std::fprintf(stderr, "unknown --semantics '%s'\n", semantics.c_str());
    return 1;
  }

  if (GetFlag(flags, "explain", "0") == "1") {
    std::fputs(
        ExplainQuery(*index, parsed.query, options, *dict).c_str(),
        stdout);
    return 0;
  }

  WallTimer timer;
  ExecControl exec;
  exec.deadline = Deadline::AfterMillis(options.deadline_ms);
  KMatchStats kstats;
  FilterResult filter = GviewFilter(*index, parsed.query, options, &exec);
  std::vector<Match> matches = KMatch(parsed.query, filter, options, &kstats,
                                      &exec);
  double ms = timer.ElapsedMillis();
  StopReason stopped =
      MergeStopReason(filter.stats.stopped, kstats.stopped);

  // Invert the pattern's name map for printing.
  std::vector<std::string> names(parsed.query.num_nodes());
  for (const auto& [name, id] : parsed.node_ids) {
    names[id] = name;
  }
  std::printf("%zu match(es) in %.2f ms (G_v: %zu nodes)", matches.size(),
              ms, filter.stats.gv_nodes);
  if (stopped != StopReason::kNone) {
    std::printf(" [%s: partial result]", StopReasonName(stopped));
  }
  std::printf("\n");
  for (const Match& m : matches) {
    std::printf("  score %.4f: ", m.score);
    for (NodeId u = 0; u < parsed.query.num_nodes(); ++u) {
      std::printf(" %s=%s(v%u)", names[u].c_str(),
                  dict->Name(graph->NodeLabel(m.mapping[u])).c_str(),
                  m.mapping[u]);
    }
    std::printf("\n");
  }
  return 0;
}

int CmdBench(const FlagMap& flags) {
  gen::Dataset ds;
  if (int rc = LoadDataset(flags, &ds); rc != 0) return rc;
  std::string queries_path = GetFlag(flags, "queries", "");
  if (queries_path.empty()) {
    std::fprintf(stderr, "bench needs --queries <patterns file>\n");
    return 1;
  }
  std::vector<ParsedPattern> patterns;
  Status s = LoadPatternsFromFile(queries_path, &ds.dict, &patterns);
  if (!s.ok()) return Fail(s);
  if (patterns.empty()) {
    std::fprintf(stderr, "no patterns in %s\n", queries_path.c_str());
    return 1;
  }

  IndexOptions idx = IndexOptionsFromFlags(flags);
  WallTimer build_timer;
  OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, idx);
  std::printf("index built in %.1f ms; %zu queries from %s\n",
              build_timer.ElapsedMillis(), patterns.size(),
              queries_path.c_str());

  QueryOptions options;
  options.theta = GetDouble(flags, "theta", options.theta);
  options.k = GetSize(flags, "k", options.k);
  options.num_threads = GetSize(flags, "threads", options.num_threads);
  size_t reps = GetSize(flags, "reps", 3);

  std::printf("%-6s %10s %10s %10s %10s\n", "query", "ms", "|Gv|",
              "matches", "best");
  double total_ms = 0.0;
  for (size_t i = 0; i < patterns.size(); ++i) {
    const Graph& q = patterns[i].query;
    size_t gv = 0;
    size_t found = 0;
    double best = 0.0;
    WallTimer timer;
    for (size_t r = 0; r < reps; ++r) {
      FilterResult filter = GviewFilter(index, q, options);
      std::vector<Match> matches = KMatch(q, filter, options);
      gv = filter.stats.gv_nodes;
      found = matches.size();
      best = matches.empty() ? 0.0 : matches[0].score;
    }
    double ms = timer.ElapsedMillis() / static_cast<double>(reps);
    total_ms += ms;
    std::printf("%-6zu %10.3f %10zu %10zu %10.3f\n", i + 1, ms, gv, found,
                best);
  }
  std::printf("total %.3f ms, avg %.3f ms/query\n", total_ms,
              total_ms / static_cast<double>(patterns.size()));
  return 0;
}

// serve-bench with --shards N: the same closed loop driven through the
// scatter-gather ShardedQueryService instead of a single QueryService.
int CmdServeBenchSharded(const FlagMap& flags, size_t num_shards) {
  if (!GetFlag(flags, "snapshot", "").empty()) {
    std::fprintf(stderr,
                 "--shards builds per-shard engines from --graph/--ontology;"
                 " --snapshot is not supported\n");
    return 1;
  }
  gen::Dataset ds;
  if (int rc = LoadDataset(flags, &ds); rc != 0) return rc;

  std::string queries_path = GetFlag(flags, "queries", "");
  if (queries_path.empty()) {
    std::fprintf(stderr, "serve-bench needs --queries <patterns file>\n");
    return 1;
  }
  std::vector<ParsedPattern> patterns;
  Status s = LoadPatternsFromFile(queries_path, &ds.dict, &patterns);
  if (!s.ok()) return Fail(s);
  if (patterns.empty()) {
    std::fprintf(stderr, "no patterns in %s\n", queries_path.c_str());
    return 1;
  }

  QueryOptions options;
  options.theta = GetDouble(flags, "theta", options.theta);
  options.k = GetSize(flags, "k", options.k);
  size_t threads = GetSize(flags, "threads", 4);
  if (threads == 0) threads = 1;
  size_t requests = GetSize(flags, "requests", 200);
  size_t update_interval_ms = GetSize(flags, "update-interval-ms", 0);

  ServeOptions serve;
  serve.cache_capacity = GetSize(flags, "cache", serve.cache_capacity);
  serve.default_deadline_ms = GetDouble(flags, "deadline-ms", 0.0);
  serve.max_inflight = GetSize(flags, "max-inflight", 0);

  ShardOptions shard_options;
  shard_options.num_shards = num_shards;
  std::string policy = GetFlag(flags, "shard-policy", "hash");
  if (policy == "range") {
    shard_options.policy = ShardPolicy::kRange;
  } else if (policy != "hash") {
    std::fprintf(stderr, "--shard-policy must be hash or range\n");
    return 1;
  }
  shard_options.halo_radius = static_cast<uint32_t>(
      GetSize(flags, "halo", shard_options.halo_radius));

  std::vector<EdgeTriple> edges = ds.graph.EdgeList();
  WallTimer startup_timer;
  ShardedQueryService service(ds.graph, ds.ontology,
                              IndexOptionsFromFlags(flags), shard_options,
                              serve);
  std::printf("%zu shard engines (%s, halo %u) built in %.1f ms; serving "
              "%zu patterns on %zu client threads (%zu requests each, "
              "cache %zu)\n",
              service.num_shards(), policy.c_str(),
              shard_options.halo_radius, startup_timer.ElapsedMillis(),
              patterns.size(), threads, requests, serve.cache_capacity);

  std::atomic<bool> stop{false};
  std::thread writer;
  uint64_t toggles = 0;
  if (update_interval_ms > 0 && !edges.empty()) {
    EdgeTriple e = edges.front();
    writer = std::thread([&service, &stop, &toggles, e,
                          update_interval_ms] {
      while (!stop.load(std::memory_order_acquire)) {
        GraphUpdate update =
            toggles % 2 == 0 ? GraphUpdate::Delete(e.from, e.to, e.label)
                             : GraphUpdate::Insert(e.from, e.to, e.label);
        (void)service.ApplyUpdate(update);
        ++toggles;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(update_interval_ms));
      }
      if (toggles % 2 == 1) {  // leave the graph as we found it
        (void)service.ApplyUpdate(GraphUpdate::Insert(e.from, e.to,
                                                      e.label));
        ++toggles;
      }
    });
  }

  WallTimer run_timer;
  RunConcurrently(threads, [&](size_t tid) {
    for (size_t it = 0; it < requests; ++it) {
      const Graph& q = patterns[(it + tid * 7) % patterns.size()].query;
      (void)service.Query(q, options);
    }
  });
  double run_ms = run_timer.ElapsedMillis();
  stop.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();

  ServeStats stats = service.Stats();
  std::printf("served %llu queries in %.1f ms (%.0f qps)",
              static_cast<unsigned long long>(stats.queries), run_ms,
              run_ms > 0.0 ? 1000.0 * static_cast<double>(stats.queries) /
                                 run_ms
                           : 0.0);
  if (toggles > 0) {
    std::printf(", %llu routed update batches",
                static_cast<unsigned long long>(toggles));
  }
  std::printf("\n");
  std::fputs(stats.ToString().c_str(), stdout);
  return 0;
}

int CmdServeBench(const FlagMap& flags) {
  if (size_t shards = GetSize(flags, "shards", 0); shards > 0) {
    return CmdServeBenchSharded(flags, shards);
  }
  // The service starts either from a binary snapshot (sub-second cold
  // start) or by loading text files and building the index here.
  gen::Dataset ds;
  std::optional<QueryEngine> engine;
  WallTimer startup_timer;
  std::string snapshot_path = GetFlag(flags, "snapshot", "");
  if (!snapshot_path.empty()) {
    std::unique_ptr<QueryEngine> loaded;
    Status s = LoadEngineSnapshot(snapshot_path, &ds.dict, &loaded);
    if (!s.ok()) return Fail(s);
    engine.emplace(std::move(*loaded));
  } else {
    if (int rc = LoadDataset(flags, &ds); rc != 0) return rc;
    engine.emplace(std::move(ds.graph), std::move(ds.ontology),
                   IndexOptionsFromFlags(flags));
  }
  double startup_ms = startup_timer.ElapsedMillis();

  std::string queries_path = GetFlag(flags, "queries", "");
  if (queries_path.empty()) {
    std::fprintf(stderr, "serve-bench needs --queries <patterns file>\n");
    return 1;
  }
  std::vector<ParsedPattern> patterns;
  Status s = LoadPatternsFromFile(queries_path, &ds.dict, &patterns);
  if (!s.ok()) return Fail(s);
  if (patterns.empty()) {
    std::fprintf(stderr, "no patterns in %s\n", queries_path.c_str());
    return 1;
  }

  QueryOptions options;
  options.theta = GetDouble(flags, "theta", options.theta);
  options.k = GetSize(flags, "k", options.k);
  size_t threads = GetSize(flags, "threads", 4);
  if (threads == 0) threads = 1;
  size_t requests = GetSize(flags, "requests", 200);
  size_t update_interval_ms = GetSize(flags, "update-interval-ms", 0);

  ServeOptions serve;
  serve.cache_capacity = GetSize(flags, "cache", serve.cache_capacity);
  serve.default_deadline_ms = GetDouble(flags, "deadline-ms", 0.0);
  serve.max_inflight = GetSize(flags, "max-inflight", 0);

  // The engine owns its graph; keep an edge to toggle before handing it
  // to the service.
  std::vector<EdgeTriple> edges = engine->graph().EdgeList();
  QueryService service(std::move(*engine), serve);
  std::printf("engine %s in %.1f ms; serving %zu patterns on %zu "
              "client threads (%zu requests each, cache %zu)\n",
              snapshot_path.empty() ? "built" : "loaded from snapshot",
              startup_ms, patterns.size(), threads, requests,
              serve.cache_capacity);

  std::atomic<bool> stop{false};
  std::thread writer;
  uint64_t toggles = 0;
  if (update_interval_ms > 0 && !edges.empty()) {
    EdgeTriple e = edges.front();
    writer = std::thread([&service, &stop, &toggles, e,
                          update_interval_ms] {
      while (!stop.load(std::memory_order_acquire)) {
        GraphUpdate update =
            toggles % 2 == 0 ? GraphUpdate::Delete(e.from, e.to, e.label)
                             : GraphUpdate::Insert(e.from, e.to, e.label);
        service.ApplyUpdate(update);
        ++toggles;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(update_interval_ms));
      }
      if (toggles % 2 == 1) {  // leave the graph as we found it
        service.ApplyUpdate(GraphUpdate::Insert(e.from, e.to, e.label));
        ++toggles;
      }
    });
  }

  WallTimer run_timer;
  RunConcurrently(threads, [&](size_t tid) {
    for (size_t it = 0; it < requests; ++it) {
      const Graph& q = patterns[(it + tid * 7) % patterns.size()].query;
      (void)service.Query(q, options);
    }
  });
  double run_ms = run_timer.ElapsedMillis();
  stop.store(true, std::memory_order_release);
  if (writer.joinable()) writer.join();

  ServeStats stats = service.Stats();
  std::printf("served %llu queries in %.1f ms (%.0f qps)",
              static_cast<unsigned long long>(stats.queries), run_ms,
              run_ms > 0.0 ? 1000.0 * static_cast<double>(stats.queries) /
                                 run_ms
                           : 0.0);
  if (toggles > 0) {
    std::printf(", %llu update batches",
                static_cast<unsigned long long>(toggles));
  }
  std::printf("\n");
  std::fputs(stats.ToString().c_str(), stdout);
  return 0;
}

// Shared driver for ingest-bench: a producer thread streams churn updates
// through an IngestPipeline into `service` (single-engine or sharded, via
// the matching sink) while reader threads run closed-loop over the
// patterns.  Prints the pipeline and service stats when the stream drains.
template <typename Service, typename Sink>
int RunIngestBench(Service* service, const Graph& seed_graph,
                   const std::vector<ParsedPattern>& patterns,
                   const QueryOptions& options, const FlagMap& flags) {
  size_t threads = GetSize(flags, "threads", 2);
  if (threads == 0) threads = 1;
  size_t steps = GetSize(flags, "steps", 400);

  Sink sink(service);
  IngestOptions io;
  io.max_batch = GetSize(flags, "batch", io.max_batch);
  io.max_linger_ms = GetDouble(flags, "linger-ms", io.max_linger_ms);
  io.max_pending = GetSize(flags, "max-pending", io.max_pending);
  IngestPipeline pipeline(&sink, io);

  gen::ChurnParams cp;
  cp.seed = GetSize(flags, "churn-seed", 1448);
  gen::ChurnStream churn(seed_graph, cp);

  std::atomic<bool> done{false};
  WallTimer run_timer;
  RunConcurrently(threads + 1, [&](size_t tid) {
    if (tid == 0) {
      const size_t chunk = 25;
      for (size_t offset = 0; offset < steps; offset += chunk) {
        size_t n = steps - offset < chunk ? steps - offset : chunk;
        for (const GraphUpdate& update : churn.Next(n)) {
          while (!pipeline.Submit(update)) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        }
      }
      pipeline.Flush();
      done.store(true, std::memory_order_release);
      return;
    }
    size_t it = 0;
    while (!done.load(std::memory_order_acquire)) {
      const Graph& q = patterns[(it + tid * 7) % patterns.size()].query;
      (void)service->Query(q, options);
      ++it;
    }
  });
  double run_ms = run_timer.ElapsedMillis();
  pipeline.Stop();

  IngestStats ingest = pipeline.Stats();
  ServeStats stats = service->Stats();
  AugmentServeStats(pipeline, &stats);
  std::printf("drained %llu updates in %llu batches over %.1f ms wall "
              "(%.4f ms/batch in-lock apply)\n",
              static_cast<unsigned long long>(ingest.applied +
                                              ingest.skipped),
              static_cast<unsigned long long>(ingest.batches), run_ms,
              stats.update_batches > 0
                  ? stats.write_apply_us / 1000.0 /
                        static_cast<double>(stats.update_batches)
                  : 0.0);
  std::fputs(ingest.ToString().c_str(), stdout);
  std::fputs(stats.ToString().c_str(), stdout);
  return 0;
}

int CmdIngestBench(const FlagMap& flags) {
  gen::Dataset ds;
  if (int rc = LoadDataset(flags, &ds); rc != 0) return rc;
  if (ds.graph.num_edges() == 0) {
    std::fprintf(stderr, "ingest-bench needs a graph with edges\n");
    return 1;
  }

  std::string queries_path = GetFlag(flags, "queries", "");
  if (queries_path.empty()) {
    std::fprintf(stderr, "ingest-bench needs --queries <patterns file>\n");
    return 1;
  }
  std::vector<ParsedPattern> patterns;
  Status s = LoadPatternsFromFile(queries_path, &ds.dict, &patterns);
  if (!s.ok()) return Fail(s);
  if (patterns.empty()) {
    std::fprintf(stderr, "no patterns in %s\n", queries_path.c_str());
    return 1;
  }

  QueryOptions options;
  options.theta = GetDouble(flags, "theta", options.theta);
  options.k = GetSize(flags, "k", options.k);

  ServeOptions serve;
  serve.cache_capacity = GetSize(flags, "cache", serve.cache_capacity);
  serve.default_deadline_ms = GetDouble(flags, "deadline-ms", 100.0);
  serve.max_inflight = GetSize(flags, "max-inflight", 0);

  // The churn stream needs the seed graph after the service takes it.
  Graph seed_graph = ds.graph;

  if (size_t shards = GetSize(flags, "shards", 0); shards > 0) {
    ShardOptions shard_options;
    shard_options.num_shards = shards;
    std::string policy = GetFlag(flags, "shard-policy", "hash");
    if (policy == "range") {
      shard_options.policy = ShardPolicy::kRange;
    } else if (policy != "hash") {
      std::fprintf(stderr, "--shard-policy must be hash or range\n");
      return 1;
    }
    shard_options.halo_radius = static_cast<uint32_t>(
        GetSize(flags, "halo", shard_options.halo_radius));
    WallTimer startup_timer;
    ShardedQueryService service(ds.graph, ds.ontology,
                                IndexOptionsFromFlags(flags),
                                shard_options, serve);
    std::printf("%zu shard engines built in %.1f ms; churning under "
                "%zu reader threads\n",
                service.num_shards(), startup_timer.ElapsedMillis(),
                GetSize(flags, "threads", 2));
    return RunIngestBench<ShardedQueryService, ShardedServiceSink>(
        &service, seed_graph, patterns, options, flags);
  }

  WallTimer startup_timer;
  QueryService service(
      QueryEngine(std::move(ds.graph), std::move(ds.ontology),
                  IndexOptionsFromFlags(flags)),
      serve);
  std::printf("engine built in %.1f ms; churning under %zu reader "
              "threads\n",
              startup_timer.ElapsedMillis(), GetSize(flags, "threads", 2));
  return RunIngestBench<QueryService, QueryServiceSink>(
      &service, seed_graph, patterns, options, flags);
}

int CmdStats(const FlagMap& flags) {
  gen::Dataset ds;
  if (int rc = LoadDataset(flags, &ds); rc != 0) return rc;
  size_t components = 0;
  WeakComponents(ds.graph, &components);
  std::printf("graph:    %zu nodes, %zu edges, %zu weak components\n",
              ds.graph.num_nodes(), ds.graph.num_edges(), components);
  std::printf("ontology: %zu concepts, %zu relations\n",
              ds.ontology.num_labels(), ds.ontology.num_relations());
  std::printf("labels:   %zu distinct strings interned\n", ds.dict.size());
  IndexOptions idx = IndexOptionsFromFlags(flags);
  WallTimer timer;
  IndexBuildStats stats;
  OntologyIndex index =
      OntologyIndex::Build(ds.graph, ds.ontology, idx, &stats);
  std::printf("index:    %zu concept graphs, %zu blocks, |I|=%zu "
              "(built in %.1f ms)\n",
              index.num_concept_graphs(), stats.total_blocks,
              index.TotalSize(), timer.ElapsedMillis());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  FlagMap flags;
  if (!ParseFlags(argc, argv, 2, &flags)) return 1;
  if (command == "generate") return CmdGenerate(flags);
  if (command == "index") return CmdIndex(flags);
  if (command == "snapshot") return CmdSnapshot(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "bench") return CmdBench(flags);
  if (command == "serve-bench") return CmdServeBench(flags);
  if (command == "ingest-bench") return CmdIngestBench(flags);
  if (command == "stats") return CmdStats(flags);
  return Usage();
}
