// osq_lint — OSQ-specific invariant checker run as part of the lint gate
// (scripts/lint.sh, tier-1).  It enforces project contracts that generic
// tooling cannot see:
//
//   osq-status-nodiscard   `class Status` / `class StatusOr` definitions and
//                          free Status-returning declarations in headers must
//                          carry [[nodiscard]], so an ignored error is a
//                          compile failure, not a silent drop.
//   osq-raw-lock           No `.lock()` / `.unlock()` (or try_/_shared
//                          variants) on mutexes outside RAII guards; early
//                          release through a named unique_lock/shared_lock is
//                          fine, a bare mutex call is not exception-safe.
//   osq-no-stdout          No `std::cout` / `printf` / `puts` in library
//                          code: the library returns data, callers decide
//                          how to render it.
//   osq-unordered-iter     Match-emission layers (kmatch, diversify, explain,
//                          query_engine, serve/) must not iterate unordered
//                          containers: hash order would leak into
//                          user-visible result order and break the
//                          bit-identical determinism contract.
//   osq-core-determinism   No `rand()` / `srand()` / `std::random_device` /
//                          `std::mt19937` outside common/rng, no `time()` or
//                          `system_clock` in library code: all randomness
//                          flows through the seeded Rng, all clocks through
//                          timer.h/deadline.h (steady), so runs replay.
//   osq-shard-isolation    Shard-coordinator code (src/shard/ minus the
//                          per-shard ShardEngine adapter and the
//                          partitioner) must not reach into QueryEngine /
//                          Graph internals — no engine construction, no
//                          direct filtering/verification calls, no
//                          adjacency walks or edge mutation.  Everything
//                          crosses the shard boundary through the
//                          ShardEngine adapter, so the coordinator stays
//                          correct when the per-shard engine evolves.
//   osq-graph-adjacency    The CSR adjacency arrays (out_offsets_,
//                          out_entries_, in_offsets_, in_entries_, the slot
//                          maps and thaw overlays) are private to Graph, and
//                          legacy `out_[v]` / `in_[v]` subscripts are gone;
//                          everything outside graph/graph.{h,cc} must go
//                          through OutEdges()/InEdges()/OutDegree() so the
//                          storage layout can evolve without touching
//                          callers.
//
// Flow-aware rules (DESIGN.md §15), driven by the OSQ_* lock annotations in
// src/common/annotations.h:
//
//   osq-guarded-access     A member annotated OSQ_GUARDED_BY(mu) may only be
//                          read while a shared or exclusive RAII lock on mu
//                          is live, and only written under an exclusive one.
//                          The analyzer tracks lock_guard / unique_lock /
//                          shared_lock / scoped_lock object lifetimes per
//                          function body (scopes, early returns, .unlock()/
//                          .lock(), std::defer_lock / std::adopt_lock), and
//                          honors OSQ_REQUIRES / OSQ_REQUIRES_SHARED /
//                          OSQ_EXCLUDES contracts at call sites of annotated
//                          helpers.  Constructor and destructor bodies are
//                          exempt (single-threaded by contract).
//   osq-lock-order         OSQ_ACQUIRED_BEFORE(...) annotations form a
//                          global acquired-before DAG over mutex member
//                          names; acquiring a mutex while already holding
//                          one that the DAG (transitively) orders after it
//                          is flagged.  First edges: the write-intent gate
//                          precedes the snapshot lock in both serving tiers.
//   osq-layering           Module-dependency DAG over src/ includes:
//                          common/graph/ontology/core/query/gen/baseline
//                          (tier 0) <- serve <- shard; ingest may depend on
//                          the serving tiers only through the update_sink
//                          bridge (update_sink.{h,cc}), and nothing outside
//                          src/ingest may include ingest headers.  Fails on
//                          back-edges so the PR 9 decoupling cannot erode.
//
// Suppression: a finding on a line is suppressed by a comment on the same
// line `NOLINT(osq-<rule>): <justification>` or the previous line
// `NOLINTNEXTLINE(osq-<rule>): <justification>`.  The justification text is
// mandatory; a suppression without one is itself a violation.

#ifndef OSQ_TOOLS_OSQ_LINT_H_
#define OSQ_TOOLS_OSQ_LINT_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace osq {
namespace lint {

struct Violation {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  // "file:line: [rule] message" — clickable in editors and CI logs.
  std::string ToString() const;
};

// Which rule groups apply to a file, derived from its path.
struct FileClass {
  bool header = false;      // .h: declaration-side nodiscard rule
  bool emission = false;    // match-emission layer: unordered-iter rule
  bool rng_exempt = false;  // common/rng*: may hold the raw engine
  bool graph_core = false;  // graph/graph.{h,cc}: owns the adjacency arrays
  // Shard-layer coordinator code (not the ShardEngine adapter or the
  // partitioner): engine/graph internals are off-limits.
  bool shard_coordinator = false;
  // src/ module the file belongs to ("serve", "core", ...; empty when the
  // path maps to no module) — drives osq-layering.  Fixtures opt in by
  // naming: bad_layering_<module>_*.cc.
  std::string module;
};

// --- lock-discipline annotations (src/common/annotations.h) ---------------

// Lock contract of one annotated function.
struct FunctionLockAnnotation {
  std::vector<std::string> requires_exclusive;  // OSQ_REQUIRES
  std::vector<std::string> requires_shared;     // OSQ_REQUIRES_SHARED
  std::vector<std::string> excludes;            // OSQ_EXCLUDES
};

// Annotations of one class (or struct), keyed by member / function name.
struct ClassLockAnnotations {
  std::map<std::string, std::string> guarded_members;       // member -> mutex
  std::map<std::string, FunctionLockAnnotation> functions;  // fn -> contract
  // (earlier, later) pairs from OSQ_ACQUIRED_BEFORE on mutex members.
  std::vector<std::pair<std::string, std::string>> acquired_before;
};

// Tree-wide annotation index.  Classes are keyed by unqualified name; a .cc
// file's method bodies are checked against the annotations its class
// declared in the header (LintTree collects from every file first, LintFile
// additionally pulls in the sibling .h/.cc).
struct AnnotationIndex {
  std::map<std::string, ClassLockAnnotations> classes;
};

// Scans `content` for OSQ_* annotations, merging findings into `index`.
void CollectAnnotations(const std::string& content, AnnotationIndex* index);

// Path-substring classification; works both for tree files (src/core/...)
// and for test fixtures named after the layer they imitate.
FileClass ClassifyPath(const std::string& path);

// Lints one file's contents; appends findings to `out`.  The three-argument
// form runs the flow rules against the annotations found in `content`
// itself (self-contained fixtures and snippets); the four-argument form
// checks against a caller-supplied tree-wide index.
void LintContent(const std::string& path, const std::string& content,
                 const FileClass& cls, std::vector<Violation>* out);
void LintContent(const std::string& path, const std::string& content,
                 const FileClass& cls, const AnnotationIndex& index,
                 std::vector<Violation>* out);

// Reads and lints `path` (classified from the path).  Returns false when the
// file cannot be read.
bool LintFile(const std::string& path, std::vector<Violation>* out);

// Recursively lints every .h/.cc under `root`/src.  Returns false when the
// directory cannot be walked.
bool LintTree(const std::string& root, std::vector<Violation>* out);

}  // namespace lint
}  // namespace osq

#endif  // OSQ_TOOLS_OSQ_LINT_H_
