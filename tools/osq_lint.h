// osq_lint — OSQ-specific invariant checker run as part of the lint gate
// (scripts/lint.sh, tier-1).  It enforces project contracts that generic
// tooling cannot see:
//
//   osq-status-nodiscard   `class Status` / `class StatusOr` definitions and
//                          free Status-returning declarations in headers must
//                          carry [[nodiscard]], so an ignored error is a
//                          compile failure, not a silent drop.
//   osq-raw-lock           No `.lock()` / `.unlock()` (or try_/_shared
//                          variants) on mutexes outside RAII guards; early
//                          release through a named unique_lock/shared_lock is
//                          fine, a bare mutex call is not exception-safe.
//   osq-no-stdout          No `std::cout` / `printf` / `puts` in library
//                          code: the library returns data, callers decide
//                          how to render it.
//   osq-unordered-iter     Match-emission layers (kmatch, diversify, explain,
//                          query_engine, serve/) must not iterate unordered
//                          containers: hash order would leak into
//                          user-visible result order and break the
//                          bit-identical determinism contract.
//   osq-core-determinism   No `rand()` / `srand()` / `std::random_device` /
//                          `std::mt19937` outside common/rng, no `time()` or
//                          `system_clock` in library code: all randomness
//                          flows through the seeded Rng, all clocks through
//                          timer.h/deadline.h (steady), so runs replay.
//   osq-shard-isolation    Shard-coordinator code (src/shard/ minus the
//                          per-shard ShardEngine adapter and the
//                          partitioner) must not reach into QueryEngine /
//                          Graph internals — no engine construction, no
//                          direct filtering/verification calls, no
//                          adjacency walks or edge mutation.  Everything
//                          crosses the shard boundary through the
//                          ShardEngine adapter, so the coordinator stays
//                          correct when the per-shard engine evolves.
//   osq-graph-adjacency    The CSR adjacency arrays (out_offsets_,
//                          out_entries_, in_offsets_, in_entries_, the slot
//                          maps and thaw overlays) are private to Graph, and
//                          legacy `out_[v]` / `in_[v]` subscripts are gone;
//                          everything outside graph/graph.{h,cc} must go
//                          through OutEdges()/InEdges()/OutDegree() so the
//                          storage layout can evolve without touching
//                          callers.
//
// Suppression: a finding on a line is suppressed by a comment on the same
// line `NOLINT(osq-<rule>): <justification>` or the previous line
// `NOLINTNEXTLINE(osq-<rule>): <justification>`.  The justification text is
// mandatory; a suppression without one is itself a violation.

#ifndef OSQ_TOOLS_OSQ_LINT_H_
#define OSQ_TOOLS_OSQ_LINT_H_

#include <string>
#include <vector>

namespace osq {
namespace lint {

struct Violation {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  // "file:line: [rule] message" — clickable in editors and CI logs.
  std::string ToString() const;
};

// Which rule groups apply to a file, derived from its path.
struct FileClass {
  bool header = false;      // .h: declaration-side nodiscard rule
  bool emission = false;    // match-emission layer: unordered-iter rule
  bool rng_exempt = false;  // common/rng*: may hold the raw engine
  bool graph_core = false;  // graph/graph.{h,cc}: owns the adjacency arrays
  // Shard-layer coordinator code (not the ShardEngine adapter or the
  // partitioner): engine/graph internals are off-limits.
  bool shard_coordinator = false;
};

// Path-substring classification; works both for tree files (src/core/...)
// and for test fixtures named after the layer they imitate.
FileClass ClassifyPath(const std::string& path);

// Lints one file's contents; appends findings to `out`.
void LintContent(const std::string& path, const std::string& content,
                 const FileClass& cls, std::vector<Violation>* out);

// Reads and lints `path` (classified from the path).  Returns false when the
// file cannot be read.
bool LintFile(const std::string& path, std::vector<Violation>* out);

// Recursively lints every .h/.cc under `root`/src.  Returns false when the
// directory cannot be walked.
bool LintTree(const std::string& root, std::vector<Violation>* out);

}  // namespace lint
}  // namespace osq

#endif  // OSQ_TOOLS_OSQ_LINT_H_
