// Flow-aware intra-procedural analysis for osq_lint (DESIGN.md §15).
//
// Three rule families live here, all driven by the OSQ_* lock annotations
// from src/common/annotations.h (parsed textually — enforcement works on the
// GCC-only tier-1 even though the macros also expand to Clang thread-safety
// attributes):
//
//   osq-guarded-access  members annotated OSQ_GUARDED_BY(mu) are read only
//                       under a live shared/exclusive RAII lock on mu and
//                       written only under an exclusive one; OSQ_REQUIRES /
//                       OSQ_REQUIRES_SHARED / OSQ_EXCLUDES contracts are
//                       checked at call sites of annotated helpers.
//   osq-lock-order      OSQ_ACQUIRED_BEFORE edges form a global DAG over
//                       mutex member names; an acquisition that contradicts
//                       the (transitive) order is flagged.
//   osq-layering        module-dependency DAG over src/ #includes.
//
// Analysis model (deliberately simple, tuned for this codebase's idioms):
//   * Lock state is tracked linearly through each function body with a
//     scope stack: a guard dies when its scope closes, .unlock()/.lock()
//     toggle it, std::defer_lock constructs it inactive, std::adopt_lock
//     active (without an acquisition-order event — the acquisition happened
//     elsewhere, e.g. via std::lock's deadlock avoidance).
//   * Mutexes are identified by normalized expression text ("mu_",
//     "state->mu"), so OSQ_GUARDED_BY(mu_) is discharged by any live guard
//     constructed from `mu_` in the same body.
//   * A lambda body is analyzed under the lock state at its definition
//     point.  That matches how lambdas are used here (ParallelFor fan-outs
//     that run while the caller blocks holding the lock, cv.wait
//     predicates); a lambda stashed and invoked later would need its own
//     OSQ_REQUIRES-annotated function instead.
//   * Member accesses spelled through another object (x.member_,
//     ptr->member_) are not checked — the discipline is per-instance and
//     only `member_` / `this->member_` inside the owning class's methods is
//     attributable.  Constructor/destructor bodies are exempt
//     (single-threaded by contract).
//   * Writes are recognized as assignment / compound assignment / ++ / --
//     on the member (or a sub-object chain), or a call whose method name is
//     mutating (push_back, erase, Apply*, Add*, ...).  Anything else is a
//     read.  std::map::operator[] without an assignment is classified by
//     the following operator — under-approximation accepted.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "osq_lint.h"
#include "osq_lint_internal.h"

namespace osq {
namespace lint {
namespace internal {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsSpace(char c) { return std::isspace(static_cast<unsigned char>(c)); }

size_t SkipWs(const std::string& t, size_t pos) {
  while (pos < t.size() && IsSpace(t[pos])) ++pos;
  return pos;
}

std::string ReadIdent(const std::string& t, size_t* pos) {
  size_t b = *pos;
  while (*pos < t.size() && IsIdentChar(t[*pos])) ++*pos;
  return t.substr(b, *pos - b);
}

// t[pos] is `open`; returns the offset just past the matching close (or
// t.size() when unbalanced).
size_t SkipBalanced(const std::string& t, size_t pos, char open, char close) {
  int depth = 0;
  for (; pos < t.size(); ++pos) {
    if (t[pos] == open) ++depth;
    if (t[pos] == close && --depth == 0) return pos + 1;
  }
  return t.size();
}

// Mutex expressions compare by whitespace-stripped text with an optional
// this-> prefix removed, so `mu_`, `this->mu_` and ` mu_ ` all name the
// same lock.
std::string NormalizeExpr(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (!IsSpace(c)) out.push_back(c);
  }
  if (out.rfind("this->", 0) == 0) out = out.substr(6);
  return out;
}

// Splits `s` on commas at paren/angle/brace depth 0.
std::vector<std::string> SplitArgs(const std::string& s) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  for (char c : s) {
    if (c == '(' || c == '<' || c == '{' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == '}' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      args.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) args.push_back(cur);
  return args;
}

// --- code text with offset -> line mapping --------------------------------

struct CodeText {
  std::string text;               // code views joined with '\n'
  std::vector<size_t> line_start; // offset of each line's first char
};

CodeText JoinCode(const std::vector<Line>& lines) {
  CodeText ct;
  ct.line_start.reserve(lines.size());
  for (const Line& l : lines) {
    ct.line_start.push_back(ct.text.size());
    ct.text += l.code;
    ct.text.push_back('\n');
  }
  return ct;
}

size_t LineIndexOf(const CodeText& ct, size_t offset) {
  auto it = std::upper_bound(ct.line_start.begin(), ct.line_start.end(),
                             offset);
  return it == ct.line_start.begin()
             ? 0
             : static_cast<size_t>(it - ct.line_start.begin()) - 1;
}

// --- scope walking --------------------------------------------------------

struct Statement {
  std::string class_name;  // enclosing class ("" at namespace scope)
  std::string text;
};

struct FunctionBody {
  std::string class_name;  // "" for free functions / unattributed lambdas
  std::string func_name;
  bool ctor_dtor = false;
  size_t begin = 0;  // offset just past the opening '{'
  size_t end = 0;    // offset of the matching '}'
};

struct ParsedScopes {
  std::vector<Statement> statements;  // class/namespace-scope + fn headers
  std::vector<FunctionBody> functions;
};

bool ContainsToken(const std::string& s, const std::string& token) {
  size_t pos = 0;
  while ((pos = s.find(token, pos)) != std::string::npos) {
    bool left_ok = pos == 0 || !IsIdentChar(s[pos - 1]);
    size_t after = pos + token.size();
    bool right_ok = after >= s.size() || !IsIdentChar(s[after]);
    if (left_ok && right_ok) return true;
    pos = after;
  }
  return false;
}

bool IsControlKeyword(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignof", "decltype", "assert", "static_assert"};
  return kKeywords.count(name) > 0;
}

// Extracts the (possibly qualified) name owning the first depth-0 '(' in a
// candidate function-header statement; "" when there is none or it looks
// like a control-flow header.
std::string HeaderFunctionName(const std::string& stmt) {
  int angle = 0;
  size_t open = std::string::npos;
  for (size_t i = 0; i < stmt.size(); ++i) {
    char c = stmt[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '(' && angle == 0) {
      open = i;
      break;
    }
  }
  if (open == std::string::npos) return "";
  size_t e = open;
  while (e > 0 && IsSpace(stmt[e - 1])) --e;
  if (e == 0) return "";
  if (stmt[e - 1] == ']') return "<lambda>";
  size_t b = e;
  while (b > 0 && (IsIdentChar(stmt[b - 1]) || stmt[b - 1] == ':' ||
                   stmt[b - 1] == '~')) {
    --b;
  }
  std::string name = stmt.substr(b, e - b);
  if (name.empty()) {
    // operator==, operator+=, ...: symbols back to the `operator` keyword.
    size_t s = e;
    while (s > 0 && std::string("=!<>+-*/%^&|~[]").find(stmt[s - 1]) !=
                        std::string::npos) {
      --s;
    }
    size_t ib = s;
    while (ib > 0 && IsIdentChar(stmt[ib - 1])) --ib;
    if (stmt.substr(ib, s - ib) == "operator") {
      name = stmt.substr(ib, e - ib);
    }
  }
  return name;
}

// Splits "A::B::f" into class ("B", overriding `scope_class` when
// qualified) and function name; flags ctors/dtors.
void AttributeFunction(const std::string& raw_name,
                       const std::string& scope_class, FunctionBody* fb) {
  std::vector<std::string> parts;
  size_t b = 0;
  while (b <= raw_name.size()) {
    size_t e = raw_name.find("::", b);
    if (e == std::string::npos) {
      parts.push_back(raw_name.substr(b));
      break;
    }
    parts.push_back(raw_name.substr(b, e - b));
    b = e + 2;
  }
  std::string last = parts.empty() ? "" : parts.back();
  fb->func_name = last;
  fb->class_name = scope_class;
  if (parts.size() >= 2 && !parts[parts.size() - 2].empty()) {
    fb->class_name = parts[parts.size() - 2];
  }
  if (!last.empty() && last[0] == '~') {
    fb->ctor_dtor = true;
    fb->func_name = last.substr(1);
  } else if (parts.size() >= 2 && last == parts[parts.size() - 2]) {
    fb->ctor_dtor = true;
  } else if (!scope_class.empty() && last == scope_class) {
    fb->ctor_dtor = true;
  }
}

ParsedScopes WalkScopes(const std::string& text) {
  struct Scope {
    enum Kind { kNamespace, kClass, kOther } kind;
    std::string name;
  };
  ParsedScopes out;
  std::vector<Scope> scopes;
  auto current_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  };

  size_t stmt_start = 0;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (c == ';') {
      out.statements.push_back(
          Statement{current_class(), text.substr(stmt_start, i - stmt_start)});
      stmt_start = ++i;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      stmt_start = ++i;
      continue;
    }
    if (c != '{') {
      ++i;
      continue;
    }

    std::string stmt = text.substr(stmt_start, i - stmt_start);
    // Function headers and class heads carry annotations too.
    out.statements.push_back(Statement{current_class(), stmt});

    if (ContainsToken(stmt, "namespace")) {
      scopes.push_back(Scope{Scope::kNamespace, ""});
      stmt_start = ++i;
      continue;
    }
    if (!ContainsToken(stmt, "enum")) {
      // class/struct head: the last depth-0 keyword wins (skips `template
      // <class T>` parameters); a '(' anywhere at depth 0 means this is a
      // function or initializer instead.
      int angle = 0, paren = 0;
      bool has_paren = false;
      std::string cls_name;
      for (size_t p = 0; p < stmt.size(); ++p) {
        char sc = stmt[p];
        if (sc == '<') ++angle;
        if (sc == '>' && angle > 0) --angle;
        if (sc == '(') {
          ++paren;
          has_paren = true;
        }
        if (sc == ')' && paren > 0) --paren;
        if (angle == 0 && paren == 0 && IsIdentStart(sc) &&
            (p == 0 || !IsIdentChar(stmt[p - 1]))) {
          size_t q = p;
          std::string tok = ReadIdent(stmt, &q);
          if (tok == "class" || tok == "struct") {
            size_t r = SkipWs(stmt, q);
            if (r < stmt.size() && IsIdentStart(stmt[r])) {
              cls_name = ReadIdent(stmt, &r);
            }
          }
          p = q - 1;
        }
      }
      if (!cls_name.empty() && !has_paren) {
        scopes.push_back(Scope{Scope::kClass, cls_name});
        stmt_start = ++i;
        continue;
      }
    }

    std::string fn = HeaderFunctionName(stmt);
    if (!fn.empty() && !IsControlKeyword(fn) && !ContainsToken(stmt, "enum")) {
      FunctionBody fb;
      AttributeFunction(fn, current_class(), &fb);
      fb.begin = i + 1;
      fb.end = SkipBalanced(text, i, '{', '}');
      if (fb.end > 0) --fb.end;  // offset of the closing '}'
      out.functions.push_back(fb);
      i = fb.end + 1;
      stmt_start = i;
      continue;
    }

    scopes.push_back(Scope{Scope::kOther, ""});
    stmt_start = ++i;
  }
  return out;
}

// --- annotation collection ------------------------------------------------

std::string LastIdentBefore(const std::string& s, size_t pos) {
  while (pos > 0 && IsSpace(s[pos - 1])) --pos;
  size_t e = pos;
  while (pos > 0 && IsIdentChar(s[pos - 1])) --pos;
  return s.substr(pos, e - pos);
}

void CollectFromStatement(const std::string& cls, const std::string& stmt,
                          AnnotationIndex* index) {
  size_t pos = 0;
  while ((pos = stmt.find("OSQ_", pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(stmt[pos - 1])) {
      pos += 4;
      continue;
    }
    size_t e = pos;
    std::string macro = ReadIdent(stmt, &e);
    size_t open = SkipWs(stmt, e);
    if (open >= stmt.size() || stmt[open] != '(') {
      pos = e;
      continue;
    }
    size_t close = SkipBalanced(stmt, open, '(', ')');
    std::vector<std::string> raw_args =
        SplitArgs(stmt.substr(open + 1, close - open - 2));
    std::vector<std::string> args;
    for (const std::string& a : raw_args) {
      std::string norm = NormalizeExpr(a);
      if (!norm.empty()) args.push_back(norm);
    }
    if (cls.empty()) {  // annotations attach to class members only
      pos = close;
      continue;
    }
    if (macro == "OSQ_GUARDED_BY" || macro == "OSQ_ACQUIRED_BEFORE") {
      std::string member = LastIdentBefore(stmt, pos);
      if (!member.empty()) {
        ClassLockAnnotations& ca = index->classes[cls];
        if (macro == "OSQ_GUARDED_BY" && !args.empty()) {
          ca.guarded_members[member] = args[0];
        } else if (macro == "OSQ_ACQUIRED_BEFORE") {
          for (const std::string& later : args) {
            ca.acquired_before.emplace_back(member, later);
          }
        }
      }
    } else if (macro == "OSQ_REQUIRES" || macro == "OSQ_REQUIRES_SHARED" ||
               macro == "OSQ_EXCLUDES") {
      std::string raw = HeaderFunctionName(stmt);
      FunctionBody fb;
      AttributeFunction(raw, cls, &fb);
      if (!fb.func_name.empty() && !fb.class_name.empty()) {
        FunctionLockAnnotation& fa =
            index->classes[fb.class_name].functions[fb.func_name];
        std::vector<std::string>* dst =
            macro == "OSQ_REQUIRES"
                ? &fa.requires_exclusive
                : macro == "OSQ_REQUIRES_SHARED" ? &fa.requires_shared
                                                 : &fa.excludes;
        for (const std::string& m : args) {
          if (std::find(dst->begin(), dst->end(), m) == dst->end()) {
            dst->push_back(m);
          }
        }
      }
    }
    pos = close;
  }
}

// --- reporting (NOLINT-aware) ---------------------------------------------

class Reporter {
 public:
  Reporter(const std::string& path, const std::vector<Line>& lines,
           const CodeText& ct, std::vector<Violation>* out)
      : path_(path), lines_(lines), ct_(ct), out_(out) {}

  void Report(size_t offset, const std::string& rule, std::string message) {
    ReportLine(LineIndexOf(ct_, offset), rule, std::move(message));
  }

  void ReportLine(size_t idx, const std::string& rule, std::string message) {
    Suppression s = idx < lines_.size()
                        ? ParseNolint(lines_[idx].comment, rule, false)
                        : Suppression::kNone;
    if (s == Suppression::kNone && idx > 0 && idx - 1 < lines_.size()) {
      s = ParseNolint(lines_[idx - 1].comment, rule, true);
    }
    if (s == Suppression::kJustified) return;
    if (s == Suppression::kUnjustified) {
      message = "suppression requires a justification: NOLINT(" + rule +
                "): <why this is safe>";
    }
    out_->push_back(Violation{path_, idx + 1, rule, std::move(message)});
  }

 private:
  const std::string& path_;
  const std::vector<Line>& lines_;
  const CodeText& ct_;
  std::vector<Violation>* out_;
};

// --- lock-state tracking --------------------------------------------------

using OrderClosure = std::map<std::string, std::set<std::string>>;

bool IsMutatingMethod(const std::string& m) {
  static const std::set<std::string> kExact = {
      "push_back",    "pop_back", "push_front", "pop_front", "insert",
      "erase",        "clear",    "resize",     "reserve",   "assign",
      "swap",         "splice",   "merge",      "emplace",   "emplace_back",
      "emplace_front", "store",   "exchange",   "fetch_add", "fetch_sub"};
  static const char* const kPrefixes[] = {"Apply", "Add",    "Remove",
                                          "Set",   "Reset",  "Invalidate",
                                          "Finish", "Insert", "Clear"};
  if (kExact.count(m) > 0) return true;
  for (const char* p : kPrefixes) {
    if (m.rfind(p, 0) == 0) return true;
  }
  return false;
}

// True when the token at `start` is a plain (or this->) member use, not a
// qualified name or another object's member.
bool IsOwnMemberContext(const std::string& t, size_t start) {
  size_t b = start;
  while (b > 0 && IsSpace(t[b - 1])) --b;
  if (b == 0) return true;
  char p = t[b - 1];
  if (p == '.' || p == ':') return false;
  if (p == '>' && b >= 2 && t[b - 2] == '-') {
    size_t q = b - 2;
    while (q > 0 && IsSpace(t[q - 1])) --q;
    return q >= 4 && t.compare(q - 4, 4, "this") == 0 &&
           (q == 4 || !IsIdentChar(t[q - 5]));
  }
  return true;
}

// Classifies the member use starting at [start, after) as a write (see file
// comment for the recognized forms).
bool IsWriteUse(const std::string& t, size_t start, size_t after,
                size_t limit) {
  size_t b = start;
  while (b > 0 && IsSpace(t[b - 1])) --b;
  if (b >= 2 && ((t[b - 1] == '+' && t[b - 2] == '+') ||
                 (t[b - 1] == '-' && t[b - 2] == '-'))) {
    return true;
  }
  size_t p = after;
  bool mutated = false;
  std::string last_method;
  while (p < limit) {
    p = SkipWs(t, p);
    if (p >= limit) break;
    if (t[p] == '.') {
      size_t q = SkipWs(t, p + 1);
      last_method = ReadIdent(t, &q);
      if (last_method.empty()) break;
      p = q;
      continue;
    }
    if (t[p] == '-' && p + 1 < limit && t[p + 1] == '>') {
      size_t q = SkipWs(t, p + 2);
      last_method = ReadIdent(t, &q);
      if (last_method.empty()) break;
      p = q;
      continue;
    }
    if (t[p] == '[') {
      p = SkipBalanced(t, p, '[', ']');
      last_method.clear();
      continue;
    }
    if (t[p] == '(') {
      p = SkipBalanced(t, p, '(', ')');
      if (IsMutatingMethod(last_method)) mutated = true;
      last_method.clear();
      continue;
    }
    break;
  }
  if (mutated) return true;
  p = SkipWs(t, p);
  if (p + 1 < limit &&
      ((t[p] == '+' && t[p + 1] == '+') || (t[p] == '-' && t[p + 1] == '-'))) {
    return true;
  }
  if (p < limit && t[p] == '=' && (p + 1 >= limit || t[p + 1] != '=')) {
    return true;
  }
  if (p + 1 < limit && t[p + 1] == '=' &&
      std::string("+-*/%&|^").find(t[p]) != std::string::npos) {
    return true;
  }
  if (p + 2 < limit && t[p + 2] == '=' &&
      ((t[p] == '<' && t[p + 1] == '<') || (t[p] == '>' && t[p + 1] == '>'))) {
    return true;
  }
  return false;
}

struct Hold {
  std::string mutex;   // normalized expression
  bool shared = false;
  bool active = false;
  int depth = 0;       // scope depth at declaration; 0 = function entry
  std::string guard;   // RAII object name; "" for OSQ_REQUIRES entry locks
};

const Hold* FindActive(const std::vector<Hold>& holds, const std::string& m,
                       bool need_exclusive) {
  const Hold* found = nullptr;
  for (const Hold& h : holds) {
    if (!h.active || h.mutex != m) continue;
    if (!need_exclusive || !h.shared) return &h;
    found = &h;  // shared hold: remember, keep looking for an exclusive one
  }
  return need_exclusive ? nullptr : found;
}

bool AnyActive(const std::vector<Hold>& holds, const std::string& m) {
  return FindActive(holds, m, false) != nullptr;
}

bool AnyActiveExclusive(const std::vector<Hold>& holds, const std::string& m) {
  for (const Hold& h : holds) {
    if (h.active && !h.shared && h.mutex == m) return true;
  }
  return false;
}

bool OnlySharedActive(const std::vector<Hold>& holds, const std::string& m) {
  return AnyActive(holds, m) && !AnyActiveExclusive(holds, m);
}

void CheckAcquisitionOrder(size_t offset, const std::string& acquiring,
                           const std::vector<Hold>& holds,
                           const OrderClosure& order, Reporter* rep) {
  auto it = order.find(acquiring);
  if (it == order.end()) return;
  std::set<std::string> reported;
  for (const Hold& h : holds) {
    if (!h.active || h.mutex == acquiring) continue;
    if (it->second.count(h.mutex) > 0 && reported.insert(h.mutex).second) {
      rep->Report(offset, "osq-lock-order",
                  "acquires '" + acquiring + "' while holding '" + h.mutex +
                      "', but '" + acquiring + "' is acquired-before '" +
                      h.mutex + "' (OSQ_ACQUIRED_BEFORE)");
    }
  }
}

void AnalyzeFunction(const CodeText& ct, const FunctionBody& fb,
                     const AnnotationIndex& index, const OrderClosure& order,
                     Reporter* rep) {
  const ClassLockAnnotations* ca = nullptr;
  auto cit = index.classes.find(fb.class_name);
  if (cit != index.classes.end()) ca = &cit->second;
  if (ca == nullptr && order.empty()) return;

  std::vector<Hold> holds;
  if (ca != nullptr) {
    auto fit = ca->functions.find(fb.func_name);
    if (fit != ca->functions.end()) {
      for (const std::string& m : fit->second.requires_exclusive) {
        holds.push_back(Hold{m, false, true, 0, ""});
      }
      for (const std::string& m : fit->second.requires_shared) {
        holds.push_back(Hold{m, true, true, 0, ""});
      }
    }
  }

  const std::string& t = ct.text;
  int depth = 1;
  size_t pos = fb.begin;
  while (pos < fb.end) {
    char c = t[pos];
    if (c == '{') {
      ++depth;
      ++pos;
      continue;
    }
    if (c == '}') {
      holds.erase(std::remove_if(holds.begin(), holds.end(),
                                 [&](const Hold& h) {
                                   return h.depth == depth;
                                 }),
                  holds.end());
      --depth;
      ++pos;
      continue;
    }
    if (!IsIdentStart(c) || (pos > 0 && IsIdentChar(t[pos - 1]))) {
      ++pos;
      continue;
    }
    size_t start = pos;
    std::string token = ReadIdent(t, &pos);

    // Guard declaration: lock_guard<...> name(mutexes...);
    if (token == "lock_guard" || token == "unique_lock" ||
        token == "shared_lock" || token == "scoped_lock") {
      size_t p = SkipWs(t, pos);
      if (p < t.size() && t[p] == '<') p = SkipBalanced(t, p, '<', '>');
      p = SkipWs(t, p);
      if (p >= fb.end || !IsIdentStart(t[p])) continue;
      size_t name_pos = p;
      std::string gname = ReadIdent(t, &name_pos);
      size_t open = SkipWs(t, name_pos);
      if (open >= fb.end || (t[open] != '(' && t[open] != '{')) continue;
      char close_ch = t[open] == '(' ? ')' : '}';
      size_t close = SkipBalanced(t, open, t[open], close_ch);
      bool defer = false, adopt = false;
      std::vector<std::string> mutexes;
      for (const std::string& raw :
           SplitArgs(t.substr(open + 1, close - open - 2))) {
        std::string a = NormalizeExpr(raw);
        if (a.empty()) continue;
        if (a.find("defer_lock") != std::string::npos) {
          defer = true;
        } else if (a.find("adopt_lock") != std::string::npos) {
          adopt = true;
        } else if (a.find("try_to_lock") != std::string::npos) {
          // optimistic: treat as acquired
        } else {
          mutexes.push_back(a);
        }
      }
      bool active = !defer;
      for (const std::string& m : mutexes) {
        if (active && !adopt) {
          CheckAcquisitionOrder(start, m, holds, order, rep);
        }
        holds.push_back(
            Hold{m, token == "shared_lock", active, depth, gname});
      }
      // Note: close may lie past a '{' if the args used brace-init; the
      // main scan resumes at the close so depth stays balanced either way.
      pos = close;
      continue;
    }

    // Guard method calls: g.unlock() / g.lock() toggle its holds.
    bool is_guard = false;
    for (const Hold& h : holds) {
      if (!h.guard.empty() && h.guard == token) {
        is_guard = true;
        break;
      }
    }
    if (is_guard) {
      size_t p = SkipWs(t, pos);
      if (p < fb.end && t[p] == '.') {
        size_t q = SkipWs(t, p + 1);
        std::string method = ReadIdent(t, &q);
        if (method == "unlock" || method == "unlock_shared") {
          for (Hold& h : holds) {
            if (h.guard == token) h.active = false;
          }
        } else if (method == "lock" || method == "lock_shared" ||
                   method == "try_lock" || method == "try_lock_shared") {
          for (Hold& h : holds) {
            if (h.guard == token && !h.active) {
              CheckAcquisitionOrder(start, h.mutex, holds, order, rep);
              h.active = true;
            }
          }
        }
      }
      continue;
    }

    if (ca == nullptr) continue;

    // Guarded member access.
    auto git = ca->guarded_members.find(token);
    if (git != ca->guarded_members.end() && !fb.ctor_dtor &&
        IsOwnMemberContext(t, start)) {
      const std::string& m = git->second;
      bool write = IsWriteUse(t, start, pos, fb.end);
      if (write && !AnyActiveExclusive(holds, m)) {
        rep->Report(start, "osq-guarded-access",
                    OnlySharedActive(holds, m)
                        ? "writes '" + token + "' (guarded by '" + m +
                              "') under a shared lock; writes require an "
                              "exclusive lock on '" + m + "'"
                        : "writes '" + token + "' (guarded by '" + m +
                              "') without an exclusive lock on '" + m + "'");
      } else if (!write && !AnyActive(holds, m)) {
        rep->Report(start, "osq-guarded-access",
                    "reads '" + token + "' (guarded by '" + m +
                        "') without holding '" + m +
                        "' (shared or exclusive RAII lock required)");
      }
      continue;
    }

    // Annotated helper call: check its lock contract at the call site.
    auto fit = ca->functions.find(token);
    if (fit != ca->functions.end() && IsOwnMemberContext(t, start)) {
      size_t p = SkipWs(t, pos);
      if (p < fb.end && t[p] == '(') {
        const FunctionLockAnnotation& fa = fit->second;
        for (const std::string& m : fa.requires_exclusive) {
          if (!AnyActiveExclusive(holds, m)) {
            rep->Report(start, "osq-guarded-access",
                        OnlySharedActive(holds, m)
                            ? "call to '" + token + "' requires '" + m +
                                  "' held exclusively (OSQ_REQUIRES) but "
                                  "only a shared lock is live"
                            : "call to '" + token + "' requires '" + m +
                                  "' held exclusively (OSQ_REQUIRES)");
          }
        }
        for (const std::string& m : fa.requires_shared) {
          if (!AnyActive(holds, m)) {
            rep->Report(start, "osq-guarded-access",
                        "call to '" + token + "' requires '" + m +
                            "' held shared or exclusive "
                            "(OSQ_REQUIRES_SHARED)");
          }
        }
        for (const std::string& m : fa.excludes) {
          if (AnyActive(holds, m)) {
            rep->Report(start, "osq-guarded-access",
                        "call to '" + token + "' requires '" + m +
                            "' NOT held (OSQ_EXCLUDES)");
          }
        }
      }
      continue;
    }
  }
}

OrderClosure BuildOrderClosure(const AnnotationIndex& index) {
  OrderClosure order;
  for (const auto& entry : index.classes) {
    for (const auto& edge : entry.second.acquired_before) {
      order[edge.first].insert(edge.second);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& node : order) {
      std::set<std::string> add;
      for (const std::string& mid : node.second) {
        auto it = order.find(mid);
        if (it == order.end()) continue;
        for (const std::string& far : it->second) {
          if (node.second.count(far) == 0) add.insert(far);
        }
      }
      if (!add.empty()) {
        node.second.insert(add.begin(), add.end());
        changed = true;
      }
    }
  }
  return order;
}

}  // namespace

void LintFlow(const std::string& path, const std::vector<Line>& lines,
              const AnnotationIndex& index, std::vector<Violation>* out) {
  if (index.classes.empty()) return;
  CodeText ct = JoinCode(lines);
  ParsedScopes scopes = WalkScopes(ct.text);
  OrderClosure order = BuildOrderClosure(index);
  Reporter rep(path, lines, ct, out);
  for (const FunctionBody& fb : scopes.functions) {
    AnalyzeFunction(ct, fb, index, order, &rep);
  }
}

void LintLayering(const std::string& path, const std::string& content,
                  const std::vector<Line>& lines, const FileClass& cls,
                  std::vector<Violation>* out) {
  if (cls.module.empty()) return;
  static const std::set<std::string> kTier0 = {
      "baseline", "common", "core", "gen", "graph", "ontology", "query"};
  static const std::set<std::string> kAll = {
      "baseline", "common", "core",  "gen",   "graph",
      "ingest",   "ontology", "query", "serve", "shard"};
  std::string stem = path;
  size_t slash = stem.find_last_of('/');
  if (slash != std::string::npos) stem = stem.substr(slash + 1);
  const bool is_bridge =
      stem == "update_sink.h" || stem == "update_sink.cc";

  auto allowed = [&](const std::string& target) {
    if (target == cls.module || kTier0.count(target) > 0) return true;
    if (cls.module == "shard" && target == "serve") return true;
    if (cls.module == "ingest" && (target == "serve" || target == "shard")) {
      return is_bridge;
    }
    return false;
  };

  CodeText dummy;  // unused; layering reports by line index directly
  Reporter rep(path, lines, dummy, out);

  size_t line_idx = 0;
  size_t b = 0;
  while (b <= content.size()) {
    size_t e = content.find('\n', b);
    std::string raw = content.substr(
        b, e == std::string::npos ? std::string::npos : e - b);
    size_t p = SkipWs(raw, 0);
    if (p < raw.size() && raw[p] == '#') {
      p = SkipWs(raw, p + 1);
      if (raw.compare(p, 7, "include") == 0) {
        p = SkipWs(raw, p + 7);
        if (p < raw.size() && raw[p] == '"') {
          size_t close = raw.find('"', p + 1);
          size_t sep = raw.find('/', p + 1);
          if (close != std::string::npos && sep != std::string::npos &&
              sep < close) {
            std::string target = raw.substr(p + 1, sep - p - 1);
            if (kAll.count(target) > 0 && !allowed(target)) {
              std::string inc = raw.substr(p + 1, close - p - 1);
              rep.ReportLine(
                  line_idx, "osq-layering",
                  "module '" + cls.module + "' must not include '" + inc +
                      "' (tier order: common/graph/ontology/core/query <- "
                      "serve <- shard; ingest bridges to the serving tiers "
                      "only via update_sink.{h,cc})");
            }
          }
        }
      }
    }
    if (e == std::string::npos) break;
    b = e + 1;
    ++line_idx;
  }
}

}  // namespace internal

void CollectAnnotations(const std::string& content, AnnotationIndex* index) {
  std::vector<internal::Line> lines = internal::Preprocess(content);
  internal::CodeText ct = internal::JoinCode(lines);
  internal::ParsedScopes scopes = internal::WalkScopes(ct.text);
  for (const internal::Statement& stmt : scopes.statements) {
    if (stmt.text.find("OSQ_") != std::string::npos) {
      internal::CollectFromStatement(stmt.class_name, stmt.text, index);
    }
  }
}

}  // namespace lint
}  // namespace osq
