// osq_lint command-line driver.
//
//   osq_lint --root <repo-root>      lint every .h/.cc under <root>/src
//   osq_lint <file> [<file>...]      lint the given files (fixtures, hooks)
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
// Findings go to stdout as "file:line: [rule] message".

#include <cstdio>
#include <string>
#include <vector>

#include "osq_lint.h"

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "osq_lint: --root requires a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: osq_lint --root <dir> | osq_lint <file>...\n");
      return 2;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (root.empty() && files.empty()) {
    root = ".";
  }

  std::vector<osq::lint::Violation> violations;
  bool io_ok = true;
  if (!root.empty()) {
    io_ok = osq::lint::LintTree(root, &violations) && io_ok;
  }
  for (const std::string& f : files) {
    io_ok = osq::lint::LintFile(f, &violations) && io_ok;
  }
  for (const osq::lint::Violation& v : violations) {
    std::printf("%s\n", v.ToString().c_str());
  }
  if (!io_ok) {
    std::fprintf(stderr, "osq_lint: some inputs could not be read\n");
    return 2;
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "osq_lint: %zu violation(s)\n", violations.size());
    return 1;
  }
  return 0;
}
