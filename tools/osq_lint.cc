// osq_lint command-line driver.
//
//   osq_lint --root <repo-root>      lint every .h/.cc under <root>/src
//   osq_lint <file> [<file>...]      lint the given files (fixtures, hooks)
//   osq_lint --json ...              machine-readable findings on stdout
//
// Exit status: 0 clean, 1 violations found, 2 usage or I/O error.
// Text mode: findings go to stdout as "file:line: [rule] message", and a
// per-rule count summary goes to stderr.  JSON mode: one object with
// "violations" (array of {file, line, rule, message}) and "counts"
// (rule -> finding count), consumed by scripts/lint.sh --json and CI.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "osq_lint.h"

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::map<std::string, size_t> CountByRule(
    const std::vector<osq::lint::Violation>& violations) {
  std::map<std::string, size_t> counts;
  for (const osq::lint::Violation& v : violations) {
    ++counts[v.rule];
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> files;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "osq_lint: --root requires a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(
          stderr,
          "usage: osq_lint [--json] (--root <dir> | <file>...)\n");
      return 2;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (root.empty() && files.empty()) {
    root = ".";
  }

  std::vector<osq::lint::Violation> violations;
  bool io_ok = true;
  if (!root.empty()) {
    io_ok = osq::lint::LintTree(root, &violations) && io_ok;
  }
  for (const std::string& f : files) {
    io_ok = osq::lint::LintFile(f, &violations) && io_ok;
  }

  const std::map<std::string, size_t> counts = CountByRule(violations);
  if (json) {
    std::printf("{\n  \"violations\": [");
    for (size_t i = 0; i < violations.size(); ++i) {
      const osq::lint::Violation& v = violations[i];
      std::printf(
          "%s\n    {\"file\": \"%s\", \"line\": %zu, \"rule\": \"%s\", "
          "\"message\": \"%s\"}",
          i == 0 ? "" : ",", JsonEscape(v.file).c_str(), v.line,
          JsonEscape(v.rule).c_str(), JsonEscape(v.message).c_str());
    }
    std::printf("%s],\n  \"counts\": {", violations.empty() ? "" : "\n  ");
    size_t i = 0;
    for (const auto& entry : counts) {
      std::printf("%s\"%s\": %zu", i++ == 0 ? "" : ", ",
                  JsonEscape(entry.first).c_str(), entry.second);
    }
    std::printf("},\n  \"clean\": %s\n}\n",
                violations.empty() && io_ok ? "true" : "false");
  } else {
    for (const osq::lint::Violation& v : violations) {
      std::printf("%s\n", v.ToString().c_str());
    }
  }
  if (!io_ok) {
    std::fprintf(stderr, "osq_lint: some inputs could not be read\n");
    return 2;
  }
  if (!violations.empty()) {
    if (!json) {
      std::fprintf(stderr, "osq_lint: %zu violation(s)\n", violations.size());
      for (const auto& entry : counts) {
        std::fprintf(stderr, "  %-22s %zu\n", entry.first.c_str(),
                     entry.second);
      }
    }
    return 1;
  }
  return 0;
}
