# Empty dependencies file for osq_cli.
# This may be replaced when dependencies are built.
