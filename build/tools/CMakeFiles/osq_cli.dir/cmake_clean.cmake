file(REMOVE_RECURSE
  "CMakeFiles/osq_cli.dir/osq_cli.cc.o"
  "CMakeFiles/osq_cli.dir/osq_cli.cc.o.d"
  "osq_cli"
  "osq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
