file(REMOVE_RECURSE
  "CMakeFiles/knowledge_search.dir/knowledge_search.cpp.o"
  "CMakeFiles/knowledge_search.dir/knowledge_search.cpp.o.d"
  "knowledge_search"
  "knowledge_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
