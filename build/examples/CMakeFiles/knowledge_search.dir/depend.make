# Empty dependencies file for knowledge_search.
# This may be replaced when dependencies are built.
