file(REMOVE_RECURSE
  "CMakeFiles/travel_social.dir/travel_social.cpp.o"
  "CMakeFiles/travel_social.dir/travel_social.cpp.o.d"
  "travel_social"
  "travel_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/travel_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
