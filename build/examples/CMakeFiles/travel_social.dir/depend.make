# Empty dependencies file for travel_social.
# This may be replaced when dependencies are built.
