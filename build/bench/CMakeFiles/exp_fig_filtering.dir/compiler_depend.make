# Empty compiler generated dependencies file for exp_fig_filtering.
# This may be replaced when dependencies are built.
