file(REMOVE_RECURSE
  "CMakeFiles/exp_fig_filtering.dir/exp_fig_filtering.cc.o"
  "CMakeFiles/exp_fig_filtering.dir/exp_fig_filtering.cc.o.d"
  "exp_fig_filtering"
  "exp_fig_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
