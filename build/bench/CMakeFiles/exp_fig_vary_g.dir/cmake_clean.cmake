file(REMOVE_RECURSE
  "CMakeFiles/exp_fig_vary_g.dir/exp_fig_vary_g.cc.o"
  "CMakeFiles/exp_fig_vary_g.dir/exp_fig_vary_g.cc.o.d"
  "exp_fig_vary_g"
  "exp_fig_vary_g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig_vary_g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
