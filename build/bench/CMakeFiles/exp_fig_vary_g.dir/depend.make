# Empty dependencies file for exp_fig_vary_g.
# This may be replaced when dependencies are built.
