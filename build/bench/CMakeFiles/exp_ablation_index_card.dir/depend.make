# Empty dependencies file for exp_ablation_index_card.
# This may be replaced when dependencies are built.
