file(REMOVE_RECURSE
  "CMakeFiles/exp_ablation_index_card.dir/exp_ablation_index_card.cc.o"
  "CMakeFiles/exp_ablation_index_card.dir/exp_ablation_index_card.cc.o.d"
  "exp_ablation_index_card"
  "exp_ablation_index_card.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_index_card.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
