# Empty dependencies file for exp_fig_index_build.
# This may be replaced when dependencies are built.
