file(REMOVE_RECURSE
  "CMakeFiles/exp_fig_index_build.dir/exp_fig_index_build.cc.o"
  "CMakeFiles/exp_fig_index_build.dir/exp_fig_index_build.cc.o.d"
  "exp_fig_index_build"
  "exp_fig_index_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig_index_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
