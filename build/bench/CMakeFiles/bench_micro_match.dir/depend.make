# Empty dependencies file for bench_micro_match.
# This may be replaced when dependencies are built.
