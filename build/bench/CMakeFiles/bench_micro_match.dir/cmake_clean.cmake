file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_match.dir/bench_micro_match.cc.o"
  "CMakeFiles/bench_micro_match.dir/bench_micro_match.cc.o.d"
  "bench_micro_match"
  "bench_micro_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
