# Empty compiler generated dependencies file for exp_table1_effectiveness.
# This may be replaced when dependencies are built.
