file(REMOVE_RECURSE
  "CMakeFiles/exp_table1_effectiveness.dir/exp_table1_effectiveness.cc.o"
  "CMakeFiles/exp_table1_effectiveness.dir/exp_table1_effectiveness.cc.o.d"
  "exp_table1_effectiveness"
  "exp_table1_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table1_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
