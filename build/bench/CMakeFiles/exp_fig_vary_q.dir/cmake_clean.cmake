file(REMOVE_RECURSE
  "CMakeFiles/exp_fig_vary_q.dir/exp_fig_vary_q.cc.o"
  "CMakeFiles/exp_fig_vary_q.dir/exp_fig_vary_q.cc.o.d"
  "exp_fig_vary_q"
  "exp_fig_vary_q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig_vary_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
