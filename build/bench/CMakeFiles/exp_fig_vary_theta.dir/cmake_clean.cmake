file(REMOVE_RECURSE
  "CMakeFiles/exp_fig_vary_theta.dir/exp_fig_vary_theta.cc.o"
  "CMakeFiles/exp_fig_vary_theta.dir/exp_fig_vary_theta.cc.o.d"
  "exp_fig_vary_theta"
  "exp_fig_vary_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig_vary_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
