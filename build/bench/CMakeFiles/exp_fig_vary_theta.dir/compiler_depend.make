# Empty compiler generated dependencies file for exp_fig_vary_theta.
# This may be replaced when dependencies are built.
