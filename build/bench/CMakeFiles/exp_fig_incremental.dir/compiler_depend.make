# Empty compiler generated dependencies file for exp_fig_incremental.
# This may be replaced when dependencies are built.
