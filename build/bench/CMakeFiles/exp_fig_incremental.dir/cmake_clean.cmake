file(REMOVE_RECURSE
  "CMakeFiles/exp_fig_incremental.dir/exp_fig_incremental.cc.o"
  "CMakeFiles/exp_fig_incremental.dir/exp_fig_incremental.cc.o.d"
  "exp_fig_incremental"
  "exp_fig_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
