file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ontology.dir/bench_micro_ontology.cc.o"
  "CMakeFiles/bench_micro_ontology.dir/bench_micro_ontology.cc.o.d"
  "bench_micro_ontology"
  "bench_micro_ontology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ontology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
