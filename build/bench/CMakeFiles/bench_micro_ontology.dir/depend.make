# Empty dependencies file for bench_micro_ontology.
# This may be replaced when dependencies are built.
