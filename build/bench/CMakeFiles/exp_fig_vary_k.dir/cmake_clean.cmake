file(REMOVE_RECURSE
  "CMakeFiles/exp_fig_vary_k.dir/exp_fig_vary_k.cc.o"
  "CMakeFiles/exp_fig_vary_k.dir/exp_fig_vary_k.cc.o.d"
  "exp_fig_vary_k"
  "exp_fig_vary_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig_vary_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
