file(REMOVE_RECURSE
  "CMakeFiles/exp_ablation_strategies.dir/exp_ablation_strategies.cc.o"
  "CMakeFiles/exp_ablation_strategies.dir/exp_ablation_strategies.cc.o.d"
  "exp_ablation_strategies"
  "exp_ablation_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
