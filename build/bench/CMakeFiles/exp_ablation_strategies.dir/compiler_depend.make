# Empty compiler generated dependencies file for exp_ablation_strategies.
# This may be replaced when dependencies are built.
