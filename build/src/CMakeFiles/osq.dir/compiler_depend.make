# Empty compiler generated dependencies file for osq.
# This may be replaced when dependencies are built.
