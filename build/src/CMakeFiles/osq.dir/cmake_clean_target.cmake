file(REMOVE_RECURSE
  "libosq.a"
)
