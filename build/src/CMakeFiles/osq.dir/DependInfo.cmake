
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/rewriting.cc" "src/CMakeFiles/osq.dir/baseline/rewriting.cc.o" "gcc" "src/CMakeFiles/osq.dir/baseline/rewriting.cc.o.d"
  "/root/repo/src/baseline/simmatrix.cc" "src/CMakeFiles/osq.dir/baseline/simmatrix.cc.o" "gcc" "src/CMakeFiles/osq.dir/baseline/simmatrix.cc.o.d"
  "/root/repo/src/baseline/subiso.cc" "src/CMakeFiles/osq.dir/baseline/subiso.cc.o" "gcc" "src/CMakeFiles/osq.dir/baseline/subiso.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/osq.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/osq.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/osq.dir/common/status.cc.o" "gcc" "src/CMakeFiles/osq.dir/common/status.cc.o.d"
  "/root/repo/src/common/timer.cc" "src/CMakeFiles/osq.dir/common/timer.cc.o" "gcc" "src/CMakeFiles/osq.dir/common/timer.cc.o.d"
  "/root/repo/src/core/concept_graph.cc" "src/CMakeFiles/osq.dir/core/concept_graph.cc.o" "gcc" "src/CMakeFiles/osq.dir/core/concept_graph.cc.o.d"
  "/root/repo/src/core/diversify.cc" "src/CMakeFiles/osq.dir/core/diversify.cc.o" "gcc" "src/CMakeFiles/osq.dir/core/diversify.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/CMakeFiles/osq.dir/core/explain.cc.o" "gcc" "src/CMakeFiles/osq.dir/core/explain.cc.o.d"
  "/root/repo/src/core/filtering.cc" "src/CMakeFiles/osq.dir/core/filtering.cc.o" "gcc" "src/CMakeFiles/osq.dir/core/filtering.cc.o.d"
  "/root/repo/src/core/index_io.cc" "src/CMakeFiles/osq.dir/core/index_io.cc.o" "gcc" "src/CMakeFiles/osq.dir/core/index_io.cc.o.d"
  "/root/repo/src/core/index_maintenance.cc" "src/CMakeFiles/osq.dir/core/index_maintenance.cc.o" "gcc" "src/CMakeFiles/osq.dir/core/index_maintenance.cc.o.d"
  "/root/repo/src/core/kmatch.cc" "src/CMakeFiles/osq.dir/core/kmatch.cc.o" "gcc" "src/CMakeFiles/osq.dir/core/kmatch.cc.o.d"
  "/root/repo/src/core/ontology_index.cc" "src/CMakeFiles/osq.dir/core/ontology_index.cc.o" "gcc" "src/CMakeFiles/osq.dir/core/ontology_index.cc.o.d"
  "/root/repo/src/core/query_engine.cc" "src/CMakeFiles/osq.dir/core/query_engine.cc.o" "gcc" "src/CMakeFiles/osq.dir/core/query_engine.cc.o.d"
  "/root/repo/src/gen/query_gen.cc" "src/CMakeFiles/osq.dir/gen/query_gen.cc.o" "gcc" "src/CMakeFiles/osq.dir/gen/query_gen.cc.o.d"
  "/root/repo/src/gen/scenarios.cc" "src/CMakeFiles/osq.dir/gen/scenarios.cc.o" "gcc" "src/CMakeFiles/osq.dir/gen/scenarios.cc.o.d"
  "/root/repo/src/gen/synthetic.cc" "src/CMakeFiles/osq.dir/gen/synthetic.cc.o" "gcc" "src/CMakeFiles/osq.dir/gen/synthetic.cc.o.d"
  "/root/repo/src/gen/workload.cc" "src/CMakeFiles/osq.dir/gen/workload.cc.o" "gcc" "src/CMakeFiles/osq.dir/gen/workload.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/osq.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/osq.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_algorithms.cc" "src/CMakeFiles/osq.dir/graph/graph_algorithms.cc.o" "gcc" "src/CMakeFiles/osq.dir/graph/graph_algorithms.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/osq.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/osq.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/label_dictionary.cc" "src/CMakeFiles/osq.dir/graph/label_dictionary.cc.o" "gcc" "src/CMakeFiles/osq.dir/graph/label_dictionary.cc.o.d"
  "/root/repo/src/graph/query_graph.cc" "src/CMakeFiles/osq.dir/graph/query_graph.cc.o" "gcc" "src/CMakeFiles/osq.dir/graph/query_graph.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/CMakeFiles/osq.dir/graph/subgraph.cc.o" "gcc" "src/CMakeFiles/osq.dir/graph/subgraph.cc.o.d"
  "/root/repo/src/ontology/ontology_graph.cc" "src/CMakeFiles/osq.dir/ontology/ontology_graph.cc.o" "gcc" "src/CMakeFiles/osq.dir/ontology/ontology_graph.cc.o.d"
  "/root/repo/src/ontology/ontology_partition.cc" "src/CMakeFiles/osq.dir/ontology/ontology_partition.cc.o" "gcc" "src/CMakeFiles/osq.dir/ontology/ontology_partition.cc.o.d"
  "/root/repo/src/ontology/similarity.cc" "src/CMakeFiles/osq.dir/ontology/similarity.cc.o" "gcc" "src/CMakeFiles/osq.dir/ontology/similarity.cc.o.d"
  "/root/repo/src/query/pattern_parser.cc" "src/CMakeFiles/osq.dir/query/pattern_parser.cc.o" "gcc" "src/CMakeFiles/osq.dir/query/pattern_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
