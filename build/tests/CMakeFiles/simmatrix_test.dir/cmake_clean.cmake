file(REMOVE_RECURSE
  "CMakeFiles/simmatrix_test.dir/simmatrix_test.cc.o"
  "CMakeFiles/simmatrix_test.dir/simmatrix_test.cc.o.d"
  "simmatrix_test"
  "simmatrix_test.pdb"
  "simmatrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmatrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
