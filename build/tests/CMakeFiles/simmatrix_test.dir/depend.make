# Empty dependencies file for simmatrix_test.
# This may be replaced when dependencies are built.
