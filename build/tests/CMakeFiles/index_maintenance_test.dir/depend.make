# Empty dependencies file for index_maintenance_test.
# This may be replaced when dependencies are built.
