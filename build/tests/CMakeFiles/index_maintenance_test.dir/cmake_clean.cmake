file(REMOVE_RECURSE
  "CMakeFiles/index_maintenance_test.dir/index_maintenance_test.cc.o"
  "CMakeFiles/index_maintenance_test.dir/index_maintenance_test.cc.o.d"
  "index_maintenance_test"
  "index_maintenance_test.pdb"
  "index_maintenance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_maintenance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
