file(REMOVE_RECURSE
  "CMakeFiles/subiso_test.dir/subiso_test.cc.o"
  "CMakeFiles/subiso_test.dir/subiso_test.cc.o.d"
  "subiso_test"
  "subiso_test.pdb"
  "subiso_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subiso_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
