# Empty compiler generated dependencies file for subiso_test.
# This may be replaced when dependencies are built.
