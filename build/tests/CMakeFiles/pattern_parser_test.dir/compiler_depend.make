# Empty compiler generated dependencies file for pattern_parser_test.
# This may be replaced when dependencies are built.
