file(REMOVE_RECURSE
  "CMakeFiles/filtering_property_test.dir/filtering_property_test.cc.o"
  "CMakeFiles/filtering_property_test.dir/filtering_property_test.cc.o.d"
  "filtering_property_test"
  "filtering_property_test.pdb"
  "filtering_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filtering_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
