# Empty compiler generated dependencies file for filtering_property_test.
# This may be replaced when dependencies are built.
