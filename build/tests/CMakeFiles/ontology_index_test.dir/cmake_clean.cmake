file(REMOVE_RECURSE
  "CMakeFiles/ontology_index_test.dir/ontology_index_test.cc.o"
  "CMakeFiles/ontology_index_test.dir/ontology_index_test.cc.o.d"
  "ontology_index_test"
  "ontology_index_test.pdb"
  "ontology_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
