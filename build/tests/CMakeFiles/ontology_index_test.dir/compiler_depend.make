# Empty compiler generated dependencies file for ontology_index_test.
# This may be replaced when dependencies are built.
