file(REMOVE_RECURSE
  "CMakeFiles/ontology_graph_test.dir/ontology_graph_test.cc.o"
  "CMakeFiles/ontology_graph_test.dir/ontology_graph_test.cc.o.d"
  "ontology_graph_test"
  "ontology_graph_test.pdb"
  "ontology_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
