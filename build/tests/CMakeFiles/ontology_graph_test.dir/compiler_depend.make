# Empty compiler generated dependencies file for ontology_graph_test.
# This may be replaced when dependencies are built.
