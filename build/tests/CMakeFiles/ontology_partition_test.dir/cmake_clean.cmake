file(REMOVE_RECURSE
  "CMakeFiles/ontology_partition_test.dir/ontology_partition_test.cc.o"
  "CMakeFiles/ontology_partition_test.dir/ontology_partition_test.cc.o.d"
  "ontology_partition_test"
  "ontology_partition_test.pdb"
  "ontology_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ontology_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
