# Empty dependencies file for ontology_partition_test.
# This may be replaced when dependencies are built.
