# Empty dependencies file for concept_graph_test.
# This may be replaced when dependencies are built.
