file(REMOVE_RECURSE
  "CMakeFiles/concept_graph_property_test.dir/concept_graph_property_test.cc.o"
  "CMakeFiles/concept_graph_property_test.dir/concept_graph_property_test.cc.o.d"
  "concept_graph_property_test"
  "concept_graph_property_test.pdb"
  "concept_graph_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concept_graph_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
