# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for concept_graph_property_test.
