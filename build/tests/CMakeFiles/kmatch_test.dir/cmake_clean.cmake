file(REMOVE_RECURSE
  "CMakeFiles/kmatch_test.dir/kmatch_test.cc.o"
  "CMakeFiles/kmatch_test.dir/kmatch_test.cc.o.d"
  "kmatch_test"
  "kmatch_test.pdb"
  "kmatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
