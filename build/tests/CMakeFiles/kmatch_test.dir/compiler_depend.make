# Empty compiler generated dependencies file for kmatch_test.
# This may be replaced when dependencies are built.
