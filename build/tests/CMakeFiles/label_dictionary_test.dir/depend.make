# Empty dependencies file for label_dictionary_test.
# This may be replaced when dependencies are built.
