file(REMOVE_RECURSE
  "CMakeFiles/label_dictionary_test.dir/label_dictionary_test.cc.o"
  "CMakeFiles/label_dictionary_test.dir/label_dictionary_test.cc.o.d"
  "label_dictionary_test"
  "label_dictionary_test.pdb"
  "label_dictionary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
