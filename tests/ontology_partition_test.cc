#include "ontology/ontology_partition.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>
#include "test_util.h"

namespace osq {
namespace {

OntologyGraph ChainOntology(size_t n) {
  OntologyGraph o;
  for (LabelId l = 0; l + 1 < n; ++l) {
    o.AddRelation(l, l + 1);
  }
  return o;
}

TEST(PartitionTest, EveryLabelAssigned) {
  OntologyGraph o = ChainOntology(20);
  Rng rng(1);
  std::vector<uint32_t> cluster = PartitionOntology(o, 4, &rng);
  for (LabelId l : o.Labels()) {
    EXPECT_NE(cluster[l], kInvalidCluster);
  }
}

TEST(PartitionTest, ClusterCountBounded) {
  OntologyGraph o = ChainOntology(20);
  Rng rng(2);
  std::vector<uint32_t> cluster = PartitionOntology(o, 4, &rng);
  std::set<uint32_t> distinct;
  for (LabelId l : o.Labels()) distinct.insert(cluster[l]);
  EXPECT_LE(distinct.size(), 4u);
  EXPECT_GE(distinct.size(), 1u);
}

TEST(PartitionTest, MoreClustersThanLabelsClamped) {
  OntologyGraph o = ChainOntology(3);
  Rng rng(3);
  std::vector<uint32_t> cluster = PartitionOntology(o, 100, &rng);
  for (LabelId l : o.Labels()) {
    EXPECT_NE(cluster[l], kInvalidCluster);
  }
}

TEST(PartitionTest, DisconnectedComponentsAllCovered) {
  OntologyGraph o;
  o.AddRelation(0, 1);
  o.AddRelation(10, 11);
  o.AddLabel(20);  // isolated
  Rng rng(4);
  std::vector<uint32_t> cluster = PartitionOntology(o, 2, &rng);
  for (LabelId l : o.Labels()) {
    EXPECT_NE(cluster[l], kInvalidCluster);
  }
}

TEST(PartitionTest, EmptyOntology) {
  OntologyGraph o;
  Rng rng(5);
  EXPECT_TRUE(PartitionOntology(o, 3, &rng).empty());
}

TEST(SelectConceptLabelsTest, CoverPropertyHolds) {
  OntologyGraph o = ChainOntology(30);
  SimilarityFunction sim(0.9);
  Rng rng(6);
  for (double beta : {0.9, 0.81, 0.729}) {
    std::vector<LabelId> concepts =
        SelectConceptLabels(o, sim, beta, 4, &rng);
    EXPECT_TRUE(CoversAllLabels(o, sim, beta, concepts)) << beta;
  }
}

TEST(SelectConceptLabelsTest, HigherBetaNeedsMoreConcepts) {
  OntologyGraph o = ChainOntology(60);
  SimilarityFunction sim(0.9);
  Rng rng(7);
  std::vector<LabelId> tight = SelectConceptLabels(o, sim, 0.95, 1, &rng);
  std::vector<LabelId> loose = SelectConceptLabels(o, sim, 0.6, 1, &rng);
  // Radius 0 forces one concept per label; radius 5 covers 11 per concept.
  EXPECT_EQ(tight.size(), 60u);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(SelectConceptLabelsTest, DistinctSeedsGiveDistinctSets) {
  OntologyGraph o = ChainOntology(60);
  SimilarityFunction sim(0.9);
  Rng rng(8);
  std::vector<LabelId> a = SelectConceptLabels(o, sim, 0.81, 4, &rng);
  std::vector<LabelId> b = SelectConceptLabels(o, sim, 0.81, 4, &rng);
  // Not guaranteed in general, but with 60 labels and radius 2 the greedy
  // order virtually always differs; both must still cover.
  EXPECT_TRUE(CoversAllLabels(o, sim, 0.81, a));
  EXPECT_TRUE(CoversAllLabels(o, sim, 0.81, b));
  EXPECT_NE(a, b);
}

TEST(SelectConceptLabelsTest, ConceptsAreSortedUnique) {
  OntologyGraph o = ChainOntology(25);
  SimilarityFunction sim(0.9);
  Rng rng(9);
  std::vector<LabelId> c = SelectConceptLabels(o, sim, 0.81, 3, &rng);
  EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
  EXPECT_EQ(std::adjacent_find(c.begin(), c.end()), c.end());
}

TEST(SelectConceptLabelsTest, CoversTravelOntology) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  Rng rng(10);
  std::vector<LabelId> c = SelectConceptLabels(f.o, sim, 0.81, 3, &rng);
  EXPECT_TRUE(CoversAllLabels(f.o, sim, 0.81, c));
}

TEST(SelectConceptLabelsTest, CoversAllLabelsDetectsGaps) {
  OntologyGraph o = ChainOntology(10);
  SimilarityFunction sim(0.9);
  // A single concept at one end cannot cover a 10-chain at radius 2.
  EXPECT_FALSE(CoversAllLabels(o, sim, 0.81, {0}));
  EXPECT_TRUE(CoversAllLabels(o, sim, 0.81, {2, 7}));
}

}  // namespace
}  // namespace osq
