#include "graph/label_dictionary.h"

#include <gtest/gtest.h>

namespace osq {
namespace {

TEST(LabelDictionaryTest, StartsEmpty) {
  LabelDictionary dict;
  EXPECT_TRUE(dict.empty());
  EXPECT_EQ(dict.size(), 0u);
}

TEST(LabelDictionaryTest, InternAssignsDenseIds) {
  LabelDictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("c"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  LabelId a = dict.Intern("museum");
  EXPECT_EQ(dict.Intern("museum"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(LabelDictionaryTest, LookupFindsInterned) {
  LabelDictionary dict;
  LabelId a = dict.Intern("x");
  EXPECT_EQ(dict.Lookup("x"), a);
}

TEST(LabelDictionaryTest, LookupMissingReturnsInvalid) {
  LabelDictionary dict;
  dict.Intern("x");
  EXPECT_EQ(dict.Lookup("y"), kInvalidLabel);
}

TEST(LabelDictionaryTest, ContainsMatchesLookup) {
  LabelDictionary dict;
  dict.Intern("x");
  EXPECT_TRUE(dict.Contains("x"));
  EXPECT_FALSE(dict.Contains("y"));
}

TEST(LabelDictionaryTest, NameRoundTrips) {
  LabelDictionary dict;
  LabelId a = dict.Intern("alpha");
  LabelId b = dict.Intern("beta");
  EXPECT_EQ(dict.Name(a), "alpha");
  EXPECT_EQ(dict.Name(b), "beta");
}

TEST(LabelDictionaryTest, CopyIsIndependent) {
  LabelDictionary dict;
  dict.Intern("a");
  LabelDictionary copy = dict;
  copy.Intern("b");
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.Lookup("a"), 0u);
}

TEST(LabelDictionaryTest, ManyLabels) {
  LabelDictionary dict;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.Intern("L" + std::to_string(i)),
              static_cast<LabelId>(i));
  }
  EXPECT_EQ(dict.Lookup("L777"), 777u);
  EXPECT_EQ(dict.Name(999), "L999");
}

}  // namespace
}  // namespace osq
