#include "common/status.h"

#include <gtest/gtest.h>

namespace osq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusTest, InvalidArgument) {
  Status s = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad theta");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad theta");
}

TEST(StatusTest, NotFound) {
  Status s = Status::NotFound("missing");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing");
}

TEST(StatusTest, IoError) {
  Status s = Status::IoError("disk");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk");
}

TEST(StatusTest, Corruption) {
  Status s = Status::Corruption("bad record");
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.ToString(), "CORRUPTION: bad record");
}

Status FailsThrough() {
  OSQ_RETURN_IF_ERROR(Status::NotFound("inner"));
  return Status::Ok();
}

Status Succeeds() {
  OSQ_RETURN_IF_ERROR(Status::Ok());
  return Status::InvalidArgument("reached end");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kNotFound);
  EXPECT_EQ(Succeeds().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::IoError("x");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kIoError);
  EXPECT_EQ(b.message(), "x");
}

}  // namespace
}  // namespace osq
