#include "core/explain.h"

#include <gtest/gtest.h>
#include "graph/query_graph.h"
#include "test_util.h"

namespace osq {
namespace {

TEST(ExplainTest, ReportsMatchesForTravelExample) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  QueryOptions qopts;
  qopts.theta = 0.9;
  qopts.k = 5;
  std::string report = ExplainQuery(index, f.query, qopts, f.dict);
  // Candidate labels section.
  EXPECT_NE(report.find(":museum"), std::string::npos);
  EXPECT_NE(report.find("royal_gallery"), std::string::npos);
  // Filtering section with a non-empty G_v.
  EXPECT_NE(report.find("G_v: 3 nodes"), std::string::npos);
  // The top match with the paper's score.
  EXPECT_NE(report.find("score=2.7"), std::string::npos);
  EXPECT_NE(report.find("culture_tours"), std::string::npos);
}

TEST(ExplainTest, ReportsEmptinessProof) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, IndexOptions{});
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("a", "museum");
  qb.AddNode("b", "museum");
  qb.AddEdge("a", "b", "guide");
  QueryOptions qopts;
  qopts.theta = 0.9;
  std::string report = ExplainQuery(index, qb.graph(), qopts, f.dict);
  EXPECT_NE(report.find("no match possible"), std::string::npos);
}

TEST(ExplainTest, ListsAreCappedByMaxListed) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, IndexOptions{});
  QueryOptions qopts;
  qopts.theta = 0.81;
  qopts.k = 0;
  ExplainOptions eopts;
  eopts.max_listed = 1;
  std::string report = ExplainQuery(index, f.query, qopts, f.dict, eopts);
  // Two matches exist; with max_listed = 1 the tail is elided.
  EXPECT_NE(report.find("... 1 more"), std::string::npos);
}

TEST(ExplainTest, HandlesUnknownQueryLabel) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, IndexOptions{});
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("a", "flying_saucer");
  QueryOptions qopts;
  qopts.theta = 0.9;
  std::string report = ExplainQuery(index, qb.graph(), qopts, f.dict);
  EXPECT_NE(report.find("flying_saucer"), std::string::npos);
  EXPECT_NE(report.find("no match possible"), std::string::npos);
}

TEST(ExplainTest, MentionsSemantics) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, IndexOptions{});
  QueryOptions qopts;
  qopts.semantics = MatchSemantics::kHomomorphicEdges;
  std::string report = ExplainQuery(index, f.query, qopts, f.dict);
  EXPECT_NE(report.find("homomorphic"), std::string::npos);
}

}  // namespace
}  // namespace osq
