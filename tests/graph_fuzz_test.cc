// Fuzz-style differential test for the Graph container: a long random
// sequence of AddEdge / RemoveEdge / HasEdge operations is mirrored against
// a trivially correct std::set<EdgeTriple> reference, with full structural
// consistency checks along the way.

#include <set>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "graph/graph.h"

namespace osq {
namespace {

class GraphFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphFuzzTest, MatchesSetMirror) {
  Rng rng(GetParam());
  constexpr size_t kNodes = 24;
  constexpr size_t kLabels = 3;
  Graph g;
  g.AddNodes(kNodes, 0);
  std::set<EdgeTriple> mirror;

  for (int step = 0; step < 3000; ++step) {
    NodeId u = static_cast<NodeId>(rng.Index(kNodes));
    NodeId v = static_cast<NodeId>(rng.Index(kNodes));
    LabelId l = static_cast<LabelId>(rng.Index(kLabels));
    EdgeTriple e{u, v, l};
    switch (rng.Index(3)) {
      case 0: {
        bool inserted_g = g.AddEdge(u, v, l);
        bool inserted_m = mirror.insert(e).second;
        ASSERT_EQ(inserted_g, inserted_m) << "step " << step;
        break;
      }
      case 1: {
        bool removed_g = g.RemoveEdge(u, v, l);
        bool removed_m = mirror.erase(e) > 0;
        ASSERT_EQ(removed_g, removed_m) << "step " << step;
        break;
      }
      default: {
        ASSERT_EQ(g.HasEdge(u, v, l), mirror.count(e) > 0) << "step " << step;
        bool any = false;
        for (LabelId x = 0; x < kLabels && !any; ++x) {
          any = mirror.count({u, v, x}) > 0;
        }
        ASSERT_EQ(g.HasEdgeAnyLabel(u, v), any) << "step " << step;
        break;
      }
    }
    ASSERT_EQ(g.num_edges(), mirror.size()) << "step " << step;
    if (step % 500 == 0) {
      ASSERT_TRUE(g.CheckConsistency()) << "step " << step;
      std::vector<EdgeTriple> listed = g.EdgeList();
      ASSERT_EQ(listed.size(), mirror.size());
      for (const EdgeTriple& t : listed) {
        ASSERT_TRUE(mirror.count(t) > 0);
      }
    }
  }
  EXPECT_TRUE(g.CheckConsistency());

  // Degree bookkeeping cross-check at the end.
  for (NodeId v = 0; v < kNodes; ++v) {
    size_t out = 0;
    size_t in = 0;
    for (const EdgeTriple& e : mirror) {
      if (e.from == v) ++out;
      if (e.to == v) ++in;
    }
    EXPECT_EQ(g.OutDegree(v), out);
    EXPECT_EQ(g.InDegree(v), in);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace osq
