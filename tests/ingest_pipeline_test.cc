// Unit tests for the ingest pipeline's batching policy: max-batch cuts,
// linger expiry, flush bypass, backpressure rejection, and the last-kind
// duplicate-coalescing rule (including the insert-delete-insert case that
// makes naive duplicate dropping unsound).  A recording sink stands in
// for the serving tiers; the end-to-end path through a real QueryService
// is covered here too (one batch = one snapshot cut) and under load by
// tests/ingest_differential_test.cc.

#include "ingest/ingest_pipeline.h"

#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/index_maintenance.h"
#include "ingest/update_sink.h"
#include "serve/query_service.h"
#include "test_util.h"

namespace osq {
namespace {

// Applies batches to a set-of-triples model of the graph, with the same
// skip semantics as Graph::AddEdge/RemoveEdge.  Only the pipeline worker
// touches it while the pipeline runs; tests read it after Flush()/Stop(),
// which synchronize via the pipeline's queue mutex.
class RecordingSink final : public UpdateSink {
 public:
  MaintenanceStats ApplyBatch(
      const std::vector<GraphUpdate>& batch) override {
    batches.push_back(batch);
    MaintenanceStats stats;
    for (const GraphUpdate& u : batch) {
      auto key = std::make_tuple(u.edge.from, u.edge.to, u.edge.label);
      bool changed = u.kind == GraphUpdate::Kind::kInsertEdge
                         ? live.insert(key).second
                         : live.erase(key) > 0;
      if (changed) {
        ++stats.applied;
      } else {
        ++stats.skipped;
      }
    }
    return stats;
  }

  std::vector<std::vector<GraphUpdate>> batches;
  std::set<std::tuple<NodeId, NodeId, LabelId>> live;
};

GraphUpdate InsertN(uint32_t i) { return GraphUpdate::Insert(i, i + 1, 0); }

TEST(IngestPipelineTest, BatchesRespectMaxBatchAndDrainOnFlush) {
  RecordingSink sink;
  IngestOptions opts;
  opts.max_batch = 4;
  opts.max_linger_ms = 200.0;  // only max-batch and flush cut batches here
  IngestPipeline pipeline(&sink, opts);

  for (uint32_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(pipeline.Submit(InsertN(10 * i)));
  }
  pipeline.Flush();

  size_t total = 0;
  for (const auto& batch : sink.batches) {
    EXPECT_LE(batch.size(), opts.max_batch);
    total += batch.size();
  }
  EXPECT_EQ(total, 12u);
  EXPECT_EQ(sink.live.size(), 12u);

  IngestStats stats = pipeline.Stats();
  EXPECT_EQ(stats.submitted, 12u);
  EXPECT_EQ(stats.accepted, 12u);
  EXPECT_EQ(stats.applied, 12u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.backlog, 0u);
  EXPECT_GE(stats.batches, 3u);  // 12 updates can't fit in 2 cuts of 4
  EXPECT_GT(stats.coalescing_ratio(), 1.0);
}

TEST(IngestPipelineTest, LingerExpiryCutsWithoutFlush) {
  RecordingSink sink;
  IngestOptions opts;
  opts.max_batch = 1024;  // never fills
  opts.max_linger_ms = 5.0;
  IngestPipeline pipeline(&sink, opts);

  EXPECT_TRUE(pipeline.Submit(InsertN(0)));
  EXPECT_TRUE(pipeline.Submit(InsertN(10)));

  // No Flush: only the linger timer can cut the batch.
  for (int spin = 0; spin < 2000 && pipeline.Stats().batches == 0; ++spin) {
    std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  IngestStats stats = pipeline.Stats();
  // One cut normally; two only if the scheduler stalls between submits
  // past the linger.  Either way everything applied without a Flush.
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(stats.backlog, 0u);
  EXPECT_GT(stats.applied_lag_ms, 0.0);
  EXPECT_GE(stats.max_applied_lag_ms, stats.applied_lag_ms);
}

TEST(IngestPipelineTest, SameKindDuplicatesCoalesce) {
  RecordingSink sink;
  IngestOptions opts;
  opts.max_batch = 1024;
  opts.max_linger_ms = 500.0;  // hold the queue open while we submit
  IngestPipeline pipeline(&sink, opts);

  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(pipeline.Submit(InsertN(0)));  // accepted or coalesced
  }
  EXPECT_TRUE(pipeline.Submit(InsertN(10)));
  pipeline.Flush();

  IngestStats stats = pipeline.Stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.coalesced, 4u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(sink.live.size(), 2u);
}

TEST(IngestPipelineTest, CoalescingPreservesInsertDeleteInsert) {
  RecordingSink sink;
  IngestOptions opts;
  opts.max_batch = 1024;
  opts.max_linger_ms = 500.0;
  IngestPipeline pipeline(&sink, opts);

  // The last pending update on the triple alternates kind each time, so
  // nothing may coalesce: dropping the final insert would flip the final
  // state from present to absent.
  EXPECT_TRUE(pipeline.Submit(InsertN(0)));
  EXPECT_TRUE(pipeline.Submit(GraphUpdate::Delete(0, 1, 0)));
  EXPECT_TRUE(pipeline.Submit(InsertN(0)));
  pipeline.Flush();

  IngestStats stats = pipeline.Stats();
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.applied, 3u);
  EXPECT_EQ(sink.live.count(std::make_tuple(0u, 1u, 0u)), 1u);

  // After the drain the triple-state map restarts empty: a delete
  // followed by a duplicate delete coalesces the second only.
  EXPECT_TRUE(pipeline.Submit(GraphUpdate::Delete(0, 1, 0)));
  EXPECT_TRUE(pipeline.Submit(GraphUpdate::Delete(0, 1, 0)));
  pipeline.Flush();
  stats = pipeline.Stats();
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(sink.live.count(std::make_tuple(0u, 1u, 0u)), 0u);
}

TEST(IngestPipelineTest, BackpressureRejectsBeyondMaxPending) {
  RecordingSink sink;
  IngestOptions opts;
  opts.max_batch = 8;
  opts.max_pending = 1;
  opts.max_linger_ms = 500.0;  // first update lingers, keeping the slot full
  IngestPipeline pipeline(&sink, opts);

  EXPECT_TRUE(pipeline.Submit(InsertN(0)));
  EXPECT_FALSE(pipeline.Submit(InsertN(10)));  // queue full -> rejected
  pipeline.Flush();

  IngestStats stats = pipeline.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(sink.live.size(), 1u);
}

TEST(IngestPipelineTest, StopDrainsAndRejectsLaterSubmits) {
  RecordingSink sink;
  IngestOptions opts;
  opts.max_linger_ms = 500.0;
  IngestPipeline pipeline(&sink, opts);

  EXPECT_TRUE(pipeline.Submit(InsertN(0)));
  EXPECT_TRUE(pipeline.Submit(InsertN(10)));
  pipeline.Stop();

  EXPECT_EQ(pipeline.Stats().applied, 2u);
  EXPECT_EQ(pipeline.Stats().backlog, 0u);
  EXPECT_FALSE(pipeline.Submit(InsertN(20)));
  EXPECT_EQ(pipeline.Stats().rejected, 1u);
  pipeline.Stop();  // idempotent
}

// End-to-end through a real QueryService: one pipeline batch must land as
// ONE snapshot cut (a single version advance), and the pipeline gauges
// must surface through ServeStats.
TEST(IngestPipelineTest, QueryServiceSinkTakesOneSnapshotCutPerBatch) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  QueryOptions qo;
  qo.theta = 0.9;
  qo.k = 10;
  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}),
      ServeOptions{});
  const uint64_t version_before = service.version();

  QueryServiceSink sink(&service);
  IngestOptions opts;
  opts.max_batch = 8;
  opts.max_linger_ms = 500.0;
  IngestPipeline pipeline(&sink, opts);

  // Two applied edge updates + one duplicate (coalesced away), one batch.
  EXPECT_TRUE(pipeline.Submit(GraphUpdate::Insert(f.ct, f.hp, f.fav)));
  EXPECT_TRUE(pipeline.Submit(GraphUpdate::Insert(f.ct, f.hp, f.fav)));
  EXPECT_TRUE(pipeline.Submit(GraphUpdate::Insert(f.hp, f.rg, f.near)));
  pipeline.Flush();

  EXPECT_EQ(service.version(), version_before + 1);
  ServedResult served = service.Query(query, qo);
  ASSERT_TRUE(served.result.status.ok());
  EXPECT_EQ(served.result.matches.size(), 2u);  // post-batch state

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.update_batches, 1u);
  EXPECT_EQ(stats.updates_applied, 2u);
  EXPECT_EQ(stats.nodes_added, 0u);

  AugmentServeStats(pipeline, &stats);
  EXPECT_EQ(stats.ingest_backlog, 0u);
  EXPECT_GT(stats.ingest_coalescing_ratio, 1.0);  // 3 submitted / 1 cut
  pipeline.Stop();
}

}  // namespace
}  // namespace osq
