#include "baseline/subiso.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace osq {
namespace {

TEST(SubIsoTest, NoIdenticalLabelMatchForOntologyQuery) {
  // Paper Example I.1: traditional subgraph isomorphism finds nothing for
  // the travel query — no node in G carries the query's labels.
  test::TravelFixture f = test::MakeTravelFixture();
  EXPECT_TRUE(SubIso(f.query, f.g, MatchSemantics::kInduced).empty());
}

TEST(SubIsoTest, FindsExactTriangle) {
  test::TravelFixture f = test::MakeTravelFixture();
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("t", "culture_tours");
  qb.AddNode("m", "royal_gallery");
  qb.AddNode("s", "starlight");
  qb.AddEdge("t", "m", "guide");
  qb.AddEdge("t", "s", "fav");
  qb.AddEdge("s", "m", "near");
  SubIsoStats stats;
  std::vector<Match> matches =
      SubIso(qb.graph(), f.g, MatchSemantics::kInduced, 0, 0, &stats);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].mapping[qb.NodeIdOf("t")], f.ct);
  EXPECT_EQ(matches[0].mapping[qb.NodeIdOf("m")], f.rg);
  EXPECT_EQ(matches[0].mapping[qb.NodeIdOf("s")], f.starlight);
  EXPECT_DOUBLE_EQ(matches[0].score, 3.0);
  EXPECT_EQ(stats.matches_found, 1u);
}

TEST(SubIsoTest, EdgeLabelMismatchRejected) {
  test::TravelFixture f = test::MakeTravelFixture();
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("t", "culture_tours");
  qb.AddNode("m", "royal_gallery");
  qb.AddEdge("t", "m", "near");  // the real edge is labeled "guide"
  EXPECT_TRUE(SubIso(qb.graph(), f.g, MatchSemantics::kInduced).empty());
}

TEST(SubIsoTest, CountsAllMatchesOfRepeatedPattern) {
  // Two disjoint copies of a -> b.
  LabelDictionary dict;
  Graph g;
  LabelId a = dict.Intern("a");
  LabelId b = dict.Intern("b");
  g.AddNode(a);
  g.AddNode(b);
  g.AddNode(a);
  g.AddNode(b);
  g.AddEdge(0, 1, 0);
  g.AddEdge(2, 3, 0);
  Graph q;
  q.AddNode(a);
  q.AddNode(b);
  q.AddEdge(0, 1, 0);
  EXPECT_EQ(SubIso(q, g, MatchSemantics::kInduced).size(), 2u);
}

TEST(SubIsoTest, LimitStopsEarly) {
  LabelDictionary dict;
  Graph g;
  LabelId a = dict.Intern("a");
  // Star: many identical matches.
  g.AddNode(a);
  for (int i = 0; i < 10; ++i) {
    g.AddNode(a);
    g.AddEdge(0, static_cast<NodeId>(i + 1), 0);
  }
  Graph q;
  q.AddNode(a);
  q.AddNode(a);
  q.AddEdge(0, 1, 0);
  EXPECT_EQ(SubIso(q, g, MatchSemantics::kHomomorphicEdges, 3).size(), 3u);
}

TEST(SubIsoTest, MaxStepsTruncates) {
  LabelDictionary dict;
  Graph g;
  LabelId a = dict.Intern("a");
  g.AddNode(a);
  for (int i = 0; i < 10; ++i) {
    g.AddNode(a);
    g.AddEdge(0, static_cast<NodeId>(i + 1), 0);
  }
  Graph q;
  q.AddNode(a);
  q.AddNode(a);
  q.AddEdge(0, 1, 0);
  SubIsoStats stats;
  SubIso(q, g, MatchSemantics::kHomomorphicEdges, 0, 2, &stats);
  EXPECT_TRUE(stats.truncated);
}

TEST(SubIsoTest, InducedVsHomomorphicSemantics) {
  LabelDictionary dict;
  LabelId a = dict.Intern("a");
  Graph g;
  g.AddNode(a);
  g.AddNode(a);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 0, 0);  // back edge
  Graph q;
  q.AddNode(a);
  q.AddNode(a);
  q.AddEdge(0, 1, 0);
  EXPECT_TRUE(SubIso(q, g, MatchSemantics::kInduced).empty());
  EXPECT_EQ(SubIso(q, g, MatchSemantics::kHomomorphicEdges).size(), 2u);
}

TEST(SubIsoTest, AutomorphismsCountedAsDistinctMappings) {
  // Symmetric query on a symmetric target: both assignments reported.
  LabelDictionary dict;
  LabelId a = dict.Intern("a");
  Graph g;
  g.AddNode(a);
  g.AddNode(a);
  g.AddEdge(0, 1, 0);
  g.AddEdge(1, 0, 0);
  Graph q;
  q.AddNode(a);
  q.AddNode(a);
  q.AddEdge(0, 1, 0);
  q.AddEdge(1, 0, 0);
  EXPECT_EQ(SubIso(q, g, MatchSemantics::kInduced).size(), 2u);
}

TEST(SubIsoTest, SingleNodeQueryMatchesEveryLabelOccurrence) {
  LabelDictionary dict;
  LabelId a = dict.Intern("a");
  LabelId b = dict.Intern("b");
  Graph g;
  g.AddNode(a);
  g.AddNode(b);
  g.AddNode(a);
  Graph q;
  q.AddNode(a);
  EXPECT_EQ(SubIso(q, g, MatchSemantics::kInduced).size(), 2u);
}

TEST(SubIsoTest, EmptyQueryYieldsNothing) {
  Graph g;
  g.AddNode(0);
  EXPECT_TRUE(SubIso(Graph(), g, MatchSemantics::kInduced).empty());
}

TEST(SubIsoTest, DegreeFilterDoesNotDropValidMatches) {
  // Data node with HIGHER degree than the query node still matches.
  LabelDictionary dict;
  LabelId a = dict.Intern("a");
  LabelId b = dict.Intern("b");
  Graph g;
  g.AddNode(a);
  g.AddNode(b);
  g.AddNode(b);
  g.AddEdge(0, 1, 0);
  g.AddEdge(0, 2, 0);  // extra edge out of the 'a' node
  Graph q;
  q.AddNode(a);
  q.AddNode(b);
  q.AddEdge(0, 1, 0);
  EXPECT_EQ(SubIso(q, g, MatchSemantics::kInduced).size(), 2u);
}

}  // namespace
}  // namespace osq
