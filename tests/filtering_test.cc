#include "core/filtering.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>
#include "baseline/subiso.h"
#include "test_util.h"

namespace osq {
namespace {

OntologyIndex BuildTravelIndex(const test::TravelFixture& f,
                               size_t num_graphs = 2) {
  IndexOptions options;
  options.beta = 0.81;
  options.num_concept_graphs = num_graphs;
  return OntologyIndex::Build(f.g, f.o, options);
}

std::set<NodeId> CandidateOriginals(const FilterResult& r, NodeId q) {
  std::set<NodeId> out;
  for (const Candidate& c : r.candidates[q]) {
    out.insert(r.gv.to_original[c.node]);
  }
  return out;
}

TEST(FilteringTest, TravelExampleCandidates) {
  // Example IV.3: after filtering, mat(moonlight) = {starlight},
  // mat(tourists) = {CT}, mat(museum) = {RG} at theta = 0.9.
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions options;
  options.theta = 0.9;
  FilterResult r = GviewFilter(index, f.query, options);
  ASSERT_FALSE(r.no_match);
  EXPECT_EQ(CandidateOriginals(r, f.q_museum), std::set<NodeId>{f.rg});
  EXPECT_EQ(CandidateOriginals(r, f.q_tourists), std::set<NodeId>{f.ct});
  EXPECT_EQ(CandidateOriginals(r, f.q_moonlight),
            std::set<NodeId>{f.starlight});
  // G_v is the induced subgraph over {RG, CT, starlight} (Fig. 9).
  EXPECT_EQ(r.stats.gv_nodes, 3u);
  EXPECT_EQ(r.stats.gv_edges, 3u);
}

TEST(FilteringTest, LowerThetaKeepsMoreCandidates) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions options;
  options.theta = 0.81;
  FilterResult r = GviewFilter(index, f.query, options);
  ASSERT_FALSE(r.no_match);
  // Disneyland (sim 0.81) now qualifies for museum; HT for tourists; HC
  // for moonlight.
  std::set<NodeId> museum = CandidateOriginals(r, f.q_museum);
  EXPECT_TRUE(museum.count(f.rg));
  EXPECT_TRUE(museum.count(f.disneyland));
  EXPECT_TRUE(CandidateOriginals(r, f.q_tourists).count(f.ht));
  EXPECT_TRUE(CandidateOriginals(r, f.q_moonlight).count(f.hc));
}

TEST(FilteringTest, CandidateSimilaritiesExact) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions options;
  options.theta = 0.81;
  FilterResult r = GviewFilter(index, f.query, options);
  ASSERT_FALSE(r.no_match);
  for (const Candidate& c : r.candidates[f.q_museum]) {
    NodeId orig = r.gv.to_original[c.node];
    if (orig == f.rg) {
      EXPECT_DOUBLE_EQ(c.sim, 0.9);
    }
    if (orig == f.disneyland) {
      EXPECT_DOUBLE_EQ(c.sim, 0.81);
    }
  }
  // Sorted descending.
  for (size_t i = 1; i < r.candidates[f.q_museum].size(); ++i) {
    EXPECT_GE(r.candidates[f.q_museum][i - 1].sim,
              r.candidates[f.q_museum][i].sim);
  }
}

TEST(FilteringTest, NoMatchDetectedForImpossibleQuery) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  // A query whose label has no similar data node: an isolated term.
  LabelDictionary* d = &f.dict;
  StringGraphBuilder qb(d);
  qb.AddNode("a", "museum");
  qb.AddNode("b", "museum");
  qb.AddEdge("a", "b", "guide");  // no museum guides a museum anywhere
  QueryOptions options;
  options.theta = 0.9;
  FilterResult r = GviewFilter(index, qb.graph(), options);
  EXPECT_TRUE(r.no_match);
}

TEST(FilteringTest, UnknownQueryLabelNoMatch) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("a", "submarine");
  QueryOptions options;
  options.theta = 0.9;
  FilterResult r = GviewFilter(index, qb.graph(), options);
  EXPECT_TRUE(r.no_match);
}

TEST(FilteringTest, SingleNodeQuery) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("a", "museum");
  QueryOptions options;
  options.theta = 0.9;
  FilterResult r = GviewFilter(index, qb.graph(), options);
  ASSERT_FALSE(r.no_match);
  EXPECT_EQ(CandidateOriginals(r, 0), std::set<NodeId>{f.rg});
}

// Prop. 4.2 soundness: every identical-label match of a random query
// survives filtering (candidate sets contain the matched nodes).
TEST(FilteringTest, FilteringNeverLosesIdenticalMatches) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  // Query: culture_tours -guide-> royal_gallery (exists verbatim in G).
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("t", "culture_tours");
  qb.AddNode("m", "royal_gallery");
  qb.AddEdge("t", "m", "guide");
  QueryOptions options;
  options.theta = 1.0;
  FilterResult r = GviewFilter(index, qb.graph(), options);
  ASSERT_FALSE(r.no_match);
  EXPECT_TRUE(CandidateOriginals(r, 0).count(f.ct));
  EXPECT_TRUE(CandidateOriginals(r, 1).count(f.rg));
}

TEST(FilteringTest, LazyAndExactCandidatesAgreeOnGv) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions lazy;
  lazy.theta = 0.81;
  lazy.lazy_candidates = true;
  QueryOptions exact = lazy;
  exact.lazy_candidates = false;
  FilterResult rl = GviewFilter(index, f.query, lazy);
  FilterResult re = GviewFilter(index, f.query, exact);
  ASSERT_FALSE(rl.no_match);
  ASSERT_FALSE(re.no_match);
  for (NodeId q = 0; q < f.query.num_nodes(); ++q) {
    EXPECT_EQ(CandidateOriginals(rl, q), CandidateOriginals(re, q)) << q;
  }
}

TEST(FilteringTest, MoreConceptGraphsNeverEnlargeCandidates) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex one = BuildTravelIndex(f, 1);
  OntologyIndex four = BuildTravelIndex(f, 4);
  QueryOptions options;
  options.theta = 0.81;
  FilterResult r1 = GviewFilter(one, f.query, options);
  FilterResult r4 = GviewFilter(four, f.query, options);
  ASSERT_FALSE(r1.no_match);
  ASSERT_FALSE(r4.no_match);
  for (NodeId q = 0; q < f.query.num_nodes(); ++q) {
    std::set<NodeId> c1 = CandidateOriginals(r1, q);
    std::set<NodeId> c4 = CandidateOriginals(r4, q);
    EXPECT_TRUE(std::includes(c1.begin(), c1.end(), c4.begin(), c4.end()));
  }
}

TEST(FilteringTest, GvMappingsConsistent) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  QueryOptions options;
  options.theta = 0.81;
  FilterResult r = GviewFilter(index, f.query, options);
  ASSERT_FALSE(r.no_match);
  for (NodeId v = 0; v < r.gv.graph.num_nodes(); ++v) {
    NodeId orig = r.gv.to_original[v];
    EXPECT_EQ(r.gv.from_original[orig], v);
    EXPECT_EQ(r.gv.graph.NodeLabel(v), f.g.NodeLabel(orig));
  }
}

}  // namespace
}  // namespace osq
