// Deadline / cancellation stress suite (ctest label `slow`; also run
// under ThreadSanitizer by scripts/tier1.sh).
//
// The explosive instance is a complete digraph over one label queried
// with a same-labeled triangle at k = 0 ("all matches"): the enumeration
// visits every injective node triple, so evaluation cost grows cubically
// while every emitted match stays trivially verifiable.  On it we check
// the ISSUE-4 acceptance bars:
//   * every deadline-bounded query returns within deadline + small slack;
//   * every match in a deadline_exceeded result also appears in the
//     unconstrained evaluation (truncation, never corruption);
//   * partial results are never served from the cache as complete;
//   * an overloaded service sheds with a distinct status, and the
//     completion-split counters stay consistent under concurrency.

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/timer.h"
#include "core/query_engine.h"
#include "graph/label_dictionary.h"
#include "serve/query_service.h"

namespace osq {
namespace {

struct CliqueFixture {
  LabelDictionary dict;
  Graph g;
  OntologyGraph o;
  Graph query;
};

CliqueFixture MakeCliqueFixture(size_t n) {
  CliqueFixture f;
  LabelId x = f.dict.Intern("x");
  LabelId e = f.dict.Intern("e");
  f.o.AddLabel(x);
  for (size_t v = 0; v < n; ++v) f.g.AddNode(x);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a != b) f.g.AddEdge(static_cast<NodeId>(a),
                              static_cast<NodeId>(b), e);
    }
  }
  f.query.AddNode(x);
  f.query.AddNode(x);
  f.query.AddNode(x);
  f.query.AddEdge(0, 1, e);
  f.query.AddEdge(1, 2, e);
  f.query.AddEdge(2, 0, e);
  return f;
}

QueryOptions CliqueOptions() {
  QueryOptions options;
  options.theta = 0.5;
  options.k = 0;  // no top-K pruning: the search walks the whole space
  options.semantics = MatchSemantics::kHomomorphicEdges;
  return options;
}

size_t AllTriples(size_t n) { return n * (n - 1) * (n - 2); }

// Acceptance bar: an explosive query with a deadline must come back within
// deadline + slack, and at least one size must actually get interrupted
// (i.e. the bound is doing work, not vacuous).  50 ms slack is generous
// against the stride-256 poll lag plus scheduler noise.
TEST(DeadlineStressTest, ExplosiveQueryReturnsWithinDeadlinePlusSlack) {
  constexpr double kDeadlineMs = 10.0;
  constexpr double kSlackMs = 50.0;
  bool saw_interruption = false;
  for (size_t n : {40u, 60u, 80u}) {
    CliqueFixture f = MakeCliqueFixture(n);
    QueryEngine engine(std::move(f.g), std::move(f.o), IndexOptions{});
    for (size_t threads : {1u, 4u}) {
      QueryOptions options = CliqueOptions();
      options.deadline_ms = kDeadlineMs;
      options.num_threads = threads;
      WallTimer timer;
      QueryResult r = engine.Query(f.query, options);
      double elapsed_ms = timer.ElapsedMillis();
      ASSERT_TRUE(r.status.ok());
      EXPECT_LE(elapsed_ms, kDeadlineMs + kSlackMs)
          << "n=" << n << " threads=" << threads;
      if (!r.complete()) {
        saw_interruption = true;
        EXPECT_EQ(r.completeness, StopReason::kDeadlineExceeded);
        EXPECT_LT(r.matches.size(), AllTriples(n));
      } else {
        EXPECT_EQ(r.matches.size(), AllTriples(n));
      }
    }
  }
  // If even the 80-node clique (492k matches, each heap-allocated) fits in
  // 10 ms, the machine is implausibly fast; treat it as a test bug.
  EXPECT_TRUE(saw_interruption);
}

// Acceptance bar: every match in an interrupted result appears in the
// unconstrained evaluation of the same query — on an instance small
// enough to enumerate exactly.
TEST(DeadlineStressTest, InterruptedMatchesAreSubsetOfUnconstrained) {
  constexpr size_t kN = 14;
  CliqueFixture f = MakeCliqueFixture(kN);
  QueryEngine engine(std::move(f.g), std::move(f.o), IndexOptions{});

  QueryResult full = engine.Query(f.query, CliqueOptions());
  ASSERT_TRUE(full.status.ok());
  ASSERT_EQ(full.matches.size(), AllTriples(kN));
  std::set<std::vector<NodeId>> exact;
  for (const Match& m : full.matches) exact.insert(m.mapping);

  // Sweep deadlines from "expired on arrival" to "plenty": at every point
  // on the spectrum the result is a subset of the exact answer.
  for (double deadline_ms : {1e-6, 0.05, 0.2, 1.0, 5.0, 1000.0}) {
    for (size_t threads : {1u, 4u}) {
      QueryOptions options = CliqueOptions();
      options.deadline_ms = deadline_ms;
      options.num_threads = threads;
      QueryResult r = engine.Query(f.query, options);
      ASSERT_TRUE(r.status.ok());
      std::set<std::vector<NodeId>> got;
      for (const Match& m : r.matches) {
        EXPECT_TRUE(exact.count(m.mapping))
            << "invalid match under deadline " << deadline_ms;
        got.insert(m.mapping);
      }
      EXPECT_EQ(got.size(), r.matches.size()) << "duplicate matches";
      if (r.complete()) {
        EXPECT_EQ(r.matches.size(), exact.size());
      }
    }
  }
}

// Mid-flight cancellation from another thread: the query unwinds promptly
// and whatever it returns is valid.
TEST(DeadlineStressTest, MidFlightCancellationUnwindsWithValidMatches) {
  constexpr size_t kN = 30;
  CliqueFixture f = MakeCliqueFixture(kN);
  QueryEngine engine(std::move(f.g), std::move(f.o), IndexOptions{});

  QueryOptions options = CliqueOptions();
  options.num_threads = 2;
  options.cancel = CancelToken::Cancellable();

  QueryResult r;
  std::thread canceller([&options] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    options.cancel.RequestCancel();
  });
  WallTimer timer;
  r = engine.Query(f.query, options);
  double elapsed_ms = timer.ElapsedMillis();
  canceller.join();

  ASSERT_TRUE(r.status.ok());
  // Either the query beat the canceller (complete) or it was interrupted;
  // both must be flagged truthfully and return only verifiable matches.
  if (r.complete()) {
    EXPECT_EQ(r.matches.size(), AllTriples(kN));
  } else {
    EXPECT_EQ(r.completeness, StopReason::kCancelled);
    EXPECT_LE(elapsed_ms, 2.0 + 50.0);
  }
  for (const Match& m : r.matches) {
    ASSERT_EQ(m.mapping.size(), 3u);
    EXPECT_NE(m.mapping[0], m.mapping[1]);
    EXPECT_NE(m.mapping[1], m.mapping[2]);
    EXPECT_NE(m.mapping[0], m.mapping[2]);
  }
}

// Acceptance bar: a degraded result must never be served from the cache
// as a complete one — even when the same signature is queried repeatedly
// and later completes.
TEST(DeadlineStressTest, PartialResultsNeverServedFromCache) {
  constexpr size_t kN = 40;
  CliqueFixture f = MakeCliqueFixture(kN);
  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}),
      ServeOptions{});

  // Degraded runs: never cached, never hits.
  QueryOptions bounded = CliqueOptions();
  bounded.deadline_ms = 1e-6;
  for (int i = 0; i < 3; ++i) {
    ServedResult served = service.Query(f.query, bounded);
    EXPECT_FALSE(served.cache_hit);
    EXPECT_FALSE(served.result.complete());
  }
  EXPECT_EQ(service.cache_size(), 0u);

  // The same signature evaluated without a deadline completes and caches;
  // the subsequent hit must carry the complete result.
  ServedResult cold = service.Query(f.query, CliqueOptions());
  ASSERT_TRUE(cold.result.complete());
  EXPECT_FALSE(cold.cache_hit);
  ServedResult hot = service.Query(f.query, CliqueOptions());
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_TRUE(hot.result.complete());
  EXPECT_EQ(hot.result.matches.size(), AllTriples(kN));

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.deadline_exceeded, 3u);
  EXPECT_EQ(stats.complete, 2u);
  EXPECT_EQ(stats.degraded_latency.count, 3u);
}

// Acceptance bar: an overloaded service sheds with a distinct status.
// Two "blocker" threads loop un-deadlined explosive queries through a
// service capped at max_inflight = 2 and an empty cache; the main thread
// waits until both slots are visibly occupied and then probes until it
// observes a shed.
TEST(DeadlineStressTest, OverloadedServiceShedsWithDistinctStatus) {
  constexpr size_t kN = 50;
  CliqueFixture f = MakeCliqueFixture(kN);
  ServeOptions serve;
  serve.max_inflight = 2;
  serve.cache_capacity = 0;  // keep blockers slow: no instant cache hits
  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}), serve);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> blocker_queries{0};
  std::atomic<uint64_t> blocker_shed{0};
  std::vector<std::thread> blockers;
  for (int b = 0; b < 2; ++b) {
    blockers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ServedResult served = service.Query(f.query, CliqueOptions());
        if (served.shed) {
          blocker_shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          blocker_queries.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Wait until both blocker queries are visibly admitted at once.  (Check
  // a captured flag, not inflight() again — the gauge can drop between the
  // loop exit and an assertion.)
  bool saturated = false;
  WallTimer setup;
  while (setup.ElapsedMillis() < 5000.0) {
    if (service.inflight() >= 2) {
      saturated = true;
      break;
    }
    std::this_thread::yield();
  }
  ASSERT_TRUE(saturated) << "blockers never saturated the service";

  // Probe with a tiny deadline so any race-admitted probe finishes fast.
  QueryOptions probe = CliqueOptions();
  probe.deadline_ms = 0.1;
  uint64_t probes_admitted = 0;
  bool saw_shed = false;
  for (int attempt = 0; attempt < 500 && !saw_shed; ++attempt) {
    ServedResult served = service.Query(f.query, probe);
    if (served.shed) {
      saw_shed = true;
      EXPECT_EQ(served.result.status.code(), StatusCode::kUnavailable);
      EXPECT_TRUE(served.result.matches.empty());
    } else {
      ++probes_admitted;
    }
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : blockers) t.join();
  EXPECT_TRUE(saw_shed);

  ServeStats stats = service.Stats();
  EXPECT_GE(stats.shed, 1u);
  // Shed requests are not "queries": the served counter covers exactly the
  // admitted ones.
  EXPECT_EQ(stats.queries,
            blocker_queries.load() + probes_admitted);
  EXPECT_EQ(stats.complete + stats.deadline_exceeded + stats.cancelled,
            stats.queries);
  EXPECT_EQ(service.inflight(), 0u);
}

// TSan workhorse: concurrent readers with mixed deadlines / cancellations,
// a writer mutating the graph, and the stats counters staying consistent.
TEST(DeadlineStressTest, ConcurrentDegradedTrafficIsRaceFreeAndConsistent) {
  constexpr size_t kN = 24;
  constexpr size_t kReaders = 4;
  constexpr size_t kIters = 30;
  CliqueFixture f = MakeCliqueFixture(kN);
  ServeOptions serve;
  serve.default_deadline_ms = 0.5;
  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}), serve);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    LabelId e = f.dict.Lookup("e");
    uint64_t toggles = 0;
    while (!stop.load(std::memory_order_acquire)) {
      GraphUpdate update = toggles % 2 == 0 ? GraphUpdate::Delete(0, 1, e)
                                            : GraphUpdate::Insert(0, 1, e);
      service.ApplyUpdate(update);
      ++toggles;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (toggles % 2 == 1) service.ApplyUpdate(GraphUpdate::Insert(0, 1, e));
  });

  std::atomic<uint64_t> issued{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      for (size_t it = 0; it < kIters; ++it) {
        QueryOptions options = CliqueOptions();
        // Mix the control modes deterministically per iteration.
        switch ((it + t) % 3) {
          case 0:  // inherit the service default deadline
            break;
          case 1:  // own, slightly longer deadline
            options.deadline_ms = 2.0;
            break;
          case 2:  // cancel mid-flight from this thread's own token
            options.cancel = CancelToken::Cancellable();
            options.cancel.RequestCancel();
            break;
        }
        ServedResult served = service.Query(f.query, options);
        ASSERT_TRUE(served.result.status.ok());
        issued.fetch_add(1, std::memory_order_relaxed);
        for (const Match& m : served.result.matches) {
          ASSERT_EQ(m.mapping.size(), 3u);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  writer.join();

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.queries, issued.load());
  EXPECT_EQ(stats.complete + stats.deadline_exceeded + stats.cancelled,
            stats.queries);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(service.inflight(), 0u);
}

}  // namespace
}  // namespace osq
