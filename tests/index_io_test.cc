#include "core/index_io.h"

#include <sstream>

#include <gtest/gtest.h>
#include "core/filtering.h"
#include "core/kmatch.h"
#include "gen/scenarios.h"
#include "gen/query_gen.h"
#include "test_util.h"

namespace osq {
namespace {

TEST(IndexIoTest, RoundTripPreservesStructure) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);

  std::stringstream ss;
  ASSERT_TRUE(SaveIndex(index, f.dict, &ss).ok());

  OntologyIndex loaded = OntologyIndex::Build(f.g, f.o, options);
  ASSERT_TRUE(LoadIndex(&ss, f.g, f.o, &f.dict, &loaded).ok());
  EXPECT_TRUE(loaded.Validate());
  EXPECT_EQ(loaded.num_concept_graphs(), index.num_concept_graphs());
  EXPECT_EQ(loaded.TotalSize(), index.TotalSize());
  for (size_t i = 0; i < index.num_concept_graphs(); ++i) {
    const ConceptGraph& a = index.concept_graph(i);
    const ConceptGraph& b = loaded.concept_graph(i);
    EXPECT_EQ(a.num_blocks(), b.num_blocks());
    for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
      // Same partition: nodes grouped together iff grouped together.
      for (NodeId w = 0; w < f.g.num_nodes(); ++w) {
        EXPECT_EQ(a.BlockOf(v) == a.BlockOf(w), b.BlockOf(v) == b.BlockOf(w));
      }
      EXPECT_EQ(a.BlockLabel(a.BlockOf(v)), b.BlockLabel(b.BlockOf(v)));
    }
  }
}

TEST(IndexIoTest, LoadedIndexAnswersQueriesIdentically) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  std::stringstream ss;
  ASSERT_TRUE(SaveIndex(index, f.dict, &ss).ok());
  OntologyIndex loaded = OntologyIndex::Build(f.g, f.o, options);
  ASSERT_TRUE(LoadIndex(&ss, f.g, f.o, &f.dict, &loaded).ok());

  QueryOptions qopts;
  qopts.theta = 0.81;
  qopts.k = 0;
  FilterResult fa = GviewFilter(index, f.query, qopts);
  FilterResult fb = GviewFilter(loaded, f.query, qopts);
  std::vector<Match> ma = KMatch(f.query, fa, qopts);
  std::vector<Match> mb = KMatch(f.query, fb, qopts);
  EXPECT_EQ(ma, mb);
}

TEST(IndexIoTest, FileRoundTripOnGeneratedDataset) {
  gen::ScenarioParams p;
  p.scale = 400;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  IndexOptions options;
  options.num_concept_graphs = 2;
  options.edge_label_aware = true;
  OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, options);

  std::string path = testing::TempDir() + "/osq_index_io_test.idx";
  ASSERT_TRUE(SaveIndexToFile(index, ds.dict, path).ok());
  OntologyIndex loaded = OntologyIndex::Build(ds.graph, ds.ontology, options);
  ASSERT_TRUE(
      LoadIndexFromFile(path, ds.graph, ds.ontology, &ds.dict, &loaded).ok());
  EXPECT_TRUE(loaded.Validate());
  EXPECT_TRUE(loaded.options().edge_label_aware);
  EXPECT_EQ(loaded.TotalSize(), index.TotalSize());
}

TEST(IndexIoTest, RoundTripPreservesSimilarityModel) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.similarity_model = SimilarityModel::kLinear;
  options.similarity_cutoff = 3;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  std::stringstream ss;
  ASSERT_TRUE(SaveIndex(index, f.dict, &ss).ok());
  OntologyIndex loaded = OntologyIndex::Build(f.g, f.o, options);
  ASSERT_TRUE(LoadIndex(&ss, f.g, f.o, &f.dict, &loaded).ok());
  EXPECT_EQ(loaded.options().similarity_model, SimilarityModel::kLinear);
  EXPECT_EQ(loaded.sim().model(), SimilarityModel::kLinear);
  EXPECT_EQ(loaded.sim().cutoff(), 3u);
}

TEST(IndexIoTest, RejectsMissingHeader) {
  test::TravelFixture f = test::MakeTravelFixture();
  std::stringstream ss("garbage\n");
  OntologyIndex out = OntologyIndex::Build(f.g, f.o, IndexOptions{});
  EXPECT_EQ(LoadIndex(&ss, f.g, f.o, &f.dict, &out).code(),
            StatusCode::kCorruption);
}

TEST(IndexIoTest, RejectsIndexForDifferentGraph) {
  // Save an index for the travel graph, then try to load it against a
  // graph whose labels changed: the identity record catches the content
  // drift up front as a caller error (InvalidArgument), before the
  // partition records are trusted at all.
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  std::stringstream ss;
  ASSERT_TRUE(SaveIndex(index, f.dict, &ss).ok());

  test::TravelFixture f2 = test::MakeTravelFixture();
  f2.g.SetNodeLabel(f2.ct, f2.dict.Intern("zzz_unrelated"));
  OntologyIndex out = OntologyIndex::Build(f2.g, f2.o, options);
  Status s = LoadIndex(&ss, f2.g, f2.o, &f2.dict, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(IndexIoTest, RejectsNodeCountMismatch) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, IndexOptions{});
  std::stringstream ss;
  ASSERT_TRUE(SaveIndex(index, f.dict, &ss).ok());

  test::TravelFixture f2 = test::MakeTravelFixture();
  f2.g.AddNode(f2.dict.Lookup("starlight"));  // one extra node
  OntologyIndex out = OntologyIndex::Build(f2.g, f2.o, IndexOptions{});
  EXPECT_EQ(LoadIndex(&ss, f2.g, f2.o, &f2.dict, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(IndexIoTest, RejectsDoubleAssignment) {
  std::stringstream ss;
  ss << "# osq index v1\n"
     << "options 0 0.9 2 0.81 1 8 42 0\n"
     << "conceptgraph 0 1 1\n"
     << "concepts a\n"
     << "block a 2 0 0\n";  // node 0 listed twice
  LabelDictionary dict;
  Graph g;
  g.AddNode(dict.Intern("a"));
  g.AddNode(dict.Intern("a"));
  OntologyGraph o;
  o.AddLabel(dict.Lookup("a"));
  OntologyIndex out = OntologyIndex::Build(g, o, IndexOptions{});
  EXPECT_EQ(LoadIndex(&ss, g, o, &dict, &out).code(),
            StatusCode::kCorruption);
}

TEST(IndexIoTest, RoundTripsLabelsContainingWhitespace) {
  // Label names are tokenized space-separated on disk; names with spaces
  // (or tabs, or '%') must survive via escaping instead of silently
  // shifting every following token.
  LabelDictionary dict;
  LabelId royal = dict.Intern("royal gallery");
  LabelId tours = dict.Intern("culture\ttours");
  LabelId pct = dict.Intern("100% museum");
  Graph g;
  g.AddNode(royal);
  g.AddNode(tours);
  g.AddNode(pct);
  ASSERT_TRUE(g.AddEdge(0, 1, dict.Intern("rel")));
  OntologyGraph o;
  o.AddRelation(royal, tours);
  o.AddRelation(tours, pct);

  IndexOptions options;
  options.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(g, o, options);
  std::stringstream ss;
  ASSERT_TRUE(SaveIndex(index, dict, &ss).ok());

  OntologyIndex loaded = OntologyIndex::Build(g, o, options);
  ASSERT_TRUE(LoadIndex(&ss, g, o, &dict, &loaded).ok());
  EXPECT_TRUE(loaded.Validate());
  EXPECT_EQ(loaded.TotalSize(), index.TotalSize());
  for (size_t i = 0; i < index.num_concept_graphs(); ++i) {
    const ConceptGraph& a = index.concept_graph(i);
    const ConceptGraph& b = loaded.concept_graph(i);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      // Escaping must not remap labels: block labels round-trip exactly.
      EXPECT_EQ(a.BlockLabel(a.BlockOf(v)), b.BlockLabel(b.BlockOf(v)));
    }
  }
  // The dictionary did not grow: every name resolved to its original id.
  EXPECT_EQ(dict.Lookup("royal gallery"), royal);
  EXPECT_EQ(dict.Lookup("culture\ttours"), tours);
  EXPECT_EQ(dict.Lookup("100% museum"), pct);
}

TEST(IndexIoTest, EmptyLabelNameIsUnescapableOnSave) {
  LabelDictionary dict;
  LabelId empty = dict.Intern("");
  Graph g;
  g.AddNode(empty);
  OntologyGraph o;
  o.AddLabel(empty);
  OntologyIndex index = OntologyIndex::Build(g, o, IndexOptions{});
  std::stringstream ss;
  Status s = SaveIndex(index, dict, &ss);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(IndexIoTest, MissingFileIsIoError) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex out = OntologyIndex::Build(f.g, f.o, IndexOptions{});
  EXPECT_EQ(LoadIndexFromFile("/nonexistent/idx", f.g, f.o, &f.dict, &out)
                .code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace osq
