#include "core/query_engine.h"

#include <memory>
#include <utility>

#include <gtest/gtest.h>
#include "test_util.h"

namespace osq {
namespace {

QueryEngine MakeTravelEngine(test::TravelFixture* f,
                             IndexOptions options = IndexOptions{}) {
  return QueryEngine(std::move(f->g), std::move(f->o), options);
}

TEST(QueryEngineTest, EndToEndTravelExample) {
  test::TravelFixture f = test::MakeTravelFixture();
  QueryEngine engine = MakeTravelEngine(&f);
  QueryOptions options;
  options.theta = 0.9;
  options.k = 5;
  QueryResult r = engine.Query(f.query, options);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_DOUBLE_EQ(r.matches[0].score, 2.7);
  EXPECT_EQ(r.matches[0].mapping[f.q_museum], f.rg);
  EXPECT_GE(r.filter_ms, 0.0);
  EXPECT_GE(r.verify_ms, 0.0);
  EXPECT_GT(r.filter_stats.gv_nodes, 0u);
}

TEST(QueryEngineTest, RejectsEmptyQuery) {
  test::TravelFixture f = test::MakeTravelFixture();
  QueryEngine engine = MakeTravelEngine(&f);
  QueryResult r = engine.Query(Graph(), QueryOptions{});
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.matches.empty());
}

TEST(QueryEngineTest, RejectsDisconnectedQuery) {
  test::TravelFixture f = test::MakeTravelFixture();
  QueryEngine engine = MakeTravelEngine(&f);
  Graph q;
  q.AddNodes(2, f.dict.Lookup("museum"));
  QueryResult r = engine.Query(q, QueryOptions{});
  EXPECT_FALSE(r.status.ok());
}

TEST(QueryEngineTest, BuildStatsPopulated) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  QueryEngine engine = MakeTravelEngine(&f, options);
  EXPECT_EQ(engine.build_stats().per_graph.size(), 2u);
  EXPECT_GE(engine.index_build_ms(), 0.0);
  EXPECT_EQ(engine.index().num_concept_graphs(), 2u);
}

TEST(QueryEngineTest, EngineIsMovable) {
  test::TravelFixture f = test::MakeTravelFixture();
  // Heap-allocate the source and destroy it *before* the moved-to engine is
  // used: if move construction failed to rebind the index's raw
  // Graph*/OntologyGraph* borrows, they would dangle into freed memory here
  // rather than merely pointing at a still-alive moved-from shell.
  auto engine = std::make_unique<QueryEngine>(MakeTravelEngine(&f));
  QueryEngine moved = std::move(*engine);
  engine.reset();

  // The index borrows raw Graph*/OntologyGraph*; after the move they must
  // point at the graphs the moved-to engine now owns.
  EXPECT_EQ(&moved.index().data_graph(), &moved.graph());
  EXPECT_EQ(&moved.index().ontology(), &moved.ontology());

  QueryOptions options;
  options.theta = 0.9;
  QueryResult r = moved.Query(f.query, options);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.matches.size(), 1u);
}

// Regression: move-*assignment* destroys the target's old graphs and
// adopts the source's.  The index's raw pointers must stay glued to the
// graphs that moved in — and the maintenance path (which mutates graph
// and index together) must keep working afterwards.
TEST(QueryEngineTest, MoveAssignedEngineQueriesAndUpdates) {
  test::TravelFixture f1 = test::MakeTravelFixture();
  Graph query = f1.query;
  NodeId ct = f1.ct, hp = f1.hp, rg = f1.rg;
  LabelId fav = f1.fav, near = f1.near;
  QueryEngine source = MakeTravelEngine(&f1);

  // The target starts as a different engine whose graphs die on assign.
  test::ColorFixture f2 = test::MakeColorFixture();
  IndexOptions color_options;
  color_options.num_concept_graphs = 1;
  QueryEngine target(std::move(f2.g), std::move(f2.o), color_options);

  target = std::move(source);
  EXPECT_EQ(&target.index().data_graph(), &target.graph());
  EXPECT_EQ(&target.index().ontology(), &target.ontology());

  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;
  QueryResult r = target.Query(query, options);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_DOUBLE_EQ(r.matches[0].score, 2.7);

  // Mutations go through graph AND index; a dangling pointer on either
  // side would corrupt or crash here.
  ASSERT_TRUE(target.ApplyUpdate(GraphUpdate::Insert(ct, hp, fav)));
  ASSERT_TRUE(target.ApplyUpdate(GraphUpdate::Insert(hp, rg, near)));
  EXPECT_EQ(target.Query(query, options).matches.size(), 2u);
  EXPECT_TRUE(target.index().Validate());
  EXPECT_EQ(target.version(), 2u);
}

TEST(QueryEngineTest, VersionCountsMutatingBatches) {
  test::TravelFixture f = test::MakeTravelFixture();
  NodeId ct = f.ct, rg = f.rg, hp = f.hp;
  LabelId guide = f.guide, near = f.near;
  QueryEngine engine = MakeTravelEngine(&f);
  EXPECT_EQ(engine.version(), 0u);

  // No-op: duplicate edge, version unchanged.
  EXPECT_FALSE(engine.ApplyUpdate(GraphUpdate::Insert(ct, rg, guide)));
  EXPECT_EQ(engine.version(), 0u);

  ASSERT_TRUE(engine.ApplyUpdate(GraphUpdate::Insert(hp, rg, near)));
  EXPECT_EQ(engine.version(), 1u);

  // A batch counts once regardless of its size.
  MaintenanceStats stats = engine.ApplyUpdates(
      {GraphUpdate::Delete(hp, rg, near),
       GraphUpdate::Insert(ct, hp, near)});
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(engine.version(), 2u);

  // An all-skipped batch does not count.
  engine.ApplyUpdates({GraphUpdate::Insert(ct, hp, near)});
  EXPECT_EQ(engine.version(), 2u);

  engine.AddNode(guide);
  EXPECT_EQ(engine.version(), 3u);
}

TEST(QueryEngineTest, DynamicUpdateChangesResults) {
  test::TravelFixture f = test::MakeTravelFixture();
  NodeId hp = f.hp;
  NodeId rg = f.rg;
  NodeId ct = f.ct;
  LabelId fav = f.fav;
  LabelId near = f.near;
  Graph query = f.query;  // keep a copy before moving the fixture graphs
  QueryEngine engine = MakeTravelEngine(&f);

  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;
  ASSERT_EQ(engine.Query(query, options).matches.size(), 1u);

  // New intelligence: CT also favors Holiday Plaza, which is near RG.
  ASSERT_TRUE(engine.ApplyUpdate(GraphUpdate::Insert(ct, hp, fav)));
  ASSERT_TRUE(engine.ApplyUpdate(GraphUpdate::Insert(hp, rg, near)));
  QueryResult r = engine.Query(query, options);
  ASSERT_EQ(r.matches.size(), 2u);
  EXPECT_TRUE(engine.index().Validate());

  // Retract one edge: back to a single match.
  ASSERT_TRUE(engine.ApplyUpdate(GraphUpdate::Delete(hp, rg, near)));
  EXPECT_EQ(engine.Query(query, options).matches.size(), 1u);
  EXPECT_TRUE(engine.index().Validate());
}

TEST(QueryEngineTest, AddNodeThenConnect) {
  test::TravelFixture f = test::MakeTravelFixture();
  NodeId ct = f.ct;
  NodeId rg = f.rg;
  LabelId fav = f.fav;
  LabelId near = f.near;
  LabelId starlight_label = f.dict.Lookup("starlight");
  Graph query = f.query;
  QueryEngine engine = MakeTravelEngine(&f);

  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;

  // A second starlight-branded restaurant opens near RG and CT favors it.
  NodeId v = engine.AddNode(starlight_label);
  ASSERT_TRUE(engine.ApplyUpdate(GraphUpdate::Insert(ct, v, fav)));
  ASSERT_TRUE(engine.ApplyUpdate(GraphUpdate::Insert(v, rg, near)));
  QueryResult r = engine.Query(query, options);
  EXPECT_EQ(r.matches.size(), 2u);
  EXPECT_TRUE(engine.index().Validate());
}

TEST(QueryEngineTest, ThetaSweepMonotoneMatchCounts) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  QueryEngine engine = MakeTravelEngine(&f);
  size_t prev = 0;
  for (double theta : {1.0, 0.9, 0.81, 0.7}) {
    QueryOptions options;
    options.theta = theta;
    options.k = 0;
    size_t n = engine.Query(query, options).matches.size();
    EXPECT_GE(n, prev) << theta;
    prev = n;
  }
}


TEST(QueryEngineTest, QueryPatternConvenience) {
  test::TravelFixture f = test::MakeTravelFixture();
  LabelDictionary dict = f.dict;  // engine does not own the dictionary
  QueryEngine engine = MakeTravelEngine(&f);
  QueryOptions options;
  options.theta = 0.9;
  QueryResult r = engine.QueryPattern(
      "(t:tourists)-[guide]->(m:museum), (t)-[fav]->(r:moonlight), "
      "(r)-[near]->(m)",
      &dict, options);
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_DOUBLE_EQ(r.matches[0].score, 2.7);
}

TEST(QueryEngineTest, QueryPatternParseErrorSurfaces) {
  test::TravelFixture f = test::MakeTravelFixture();
  LabelDictionary dict = f.dict;
  QueryEngine engine = MakeTravelEngine(&f);
  QueryResult r = engine.QueryPattern("(((broken", &dict, QueryOptions{});
  EXPECT_FALSE(r.status.ok());
  EXPECT_TRUE(r.matches.empty());
}

TEST(QueryEngineTest, QueryPatternDisconnectedRejected) {
  test::TravelFixture f = test::MakeTravelFixture();
  LabelDictionary dict = f.dict;
  QueryEngine engine = MakeTravelEngine(&f);
  QueryResult r = engine.QueryPattern("(a:museum), (b:tourists)", &dict,
                                      QueryOptions{});
  EXPECT_FALSE(r.status.ok());
}

}  // namespace
}  // namespace osq
