#include "common/rng.h"

#include <algorithm>
#include <gtest/gtest.h>

namespace osq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 32 && !any_diff; ++i) {
    any_diff = a.Uniform(0, 1u << 30) != b.Uniform(0, 1u << 30);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = rng.Uniform(5, 9);
    EXPECT_GE(x, 5u);
    EXPECT_LE(x, 9u);
  }
}

TEST(RngTest, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(42, 42), 42u);
}

TEST(RngTest, IndexRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Index(13), 13u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.Double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ZipfUniformWhenSkewZero) {
  Rng rng(19);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.Zipf(4, 0.0)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 1500);
  }
}

TEST(RngTest, ZipfSkewsTowardsLowIndices) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.Zipf(10, 1.2)];
  }
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(RngTest, ZipfHandlesCacheInvalidation) {
  Rng rng(29);
  // Alternate (n, s) so the cached CDF is rebuilt; all results in range.
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.Zipf(5, 1.0), 5u);
    EXPECT_LT(rng.Zipf(17, 0.5), 17u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace osq
