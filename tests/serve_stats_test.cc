// Pins the ServeStats accounting invariant (serve_stats.h):
//
//   queries == cache_hits + cache_misses
//   total_requests() == queries + shed
//   queries == hit_latency.count + miss_latency.count
//              + degraded_latency.count   (shed requests record NO latency)
//
// plus the ToTenthUs rounding fix: tick conversion must round to nearest,
// not truncate — truncation made every sub-0.1 us lock wait vanish, so
// read_wait_us/write_wait_us undercounted systematically under high QPS.

#include "serve/serve_stats.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/index_maintenance.h"
#include "serve/query_service.h"
#include "test_util.h"

namespace osq {
namespace {

TEST(ToTenthUsTest, RoundsToNearestTick) {
  EXPECT_EQ(ToTenthUs(0.0), 0u);
  EXPECT_EQ(ToTenthUs(-1.0), 0u);
  // Regression: truncation turned both of these into 0 ticks.
  EXPECT_EQ(ToTenthUs(0.06), 1u);
  EXPECT_EQ(ToTenthUs(0.05), 1u);  // half rounds up
  EXPECT_EQ(ToTenthUs(0.04), 0u);
  EXPECT_EQ(ToTenthUs(0.96), 10u);
  EXPECT_EQ(ToTenthUs(1.0), 10u);
  EXPECT_EQ(ToTenthUs(12.34), 123u);
}

TEST(ToTenthUsTest, SubTickLatenciesSurviveHistogramAccumulation) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) h.Record(0.06);
  LatencySummary s = h.Summarize();
  EXPECT_EQ(s.count, 10u);
  // 10 x 0.06us rounds to 10 ticks = 1.0us total -> mean 0.1us; the old
  // truncating conversion reported mean 0.
  EXPECT_NEAR(s.mean_us, 0.1, 1e-9);
  EXPECT_NEAR(s.max_us, 0.1, 1e-9);
}

TEST(ServeStatsTest, TotalRequestsAndInvalidationRateAccessors) {
  ServeStats s;
  s.queries = 90;
  s.cache_hits = 60;
  s.cache_misses = 30;
  s.shed = 10;
  EXPECT_EQ(s.queries, s.cache_hits + s.cache_misses);
  EXPECT_EQ(s.total_requests(), 100u);

  EXPECT_EQ(s.cache_invalidation_rate(), 0.0);  // no batches yet
  s.update_batches = 4;
  s.cache_invalidations = 6;
  EXPECT_DOUBLE_EQ(s.cache_invalidation_rate(), 1.5);
}

TEST(ServeStatsTest, ToStringRendersNewFields) {
  ServeStats s;
  s.queries = 2;
  s.shed = 1;
  std::string out = s.ToString();
  EXPECT_NE(out.find("3 total requests"), std::string::npos);
  EXPECT_NE(out.find("nodes added"), std::string::npos);
  EXPECT_NE(out.find("burst"), std::string::npos);
  // Ingest block only appears once a pipeline reported gauges.
  EXPECT_EQ(out.find("ingest:"), std::string::npos);
  s.ingest_backlog = 5;
  s.ingest_applied_lag_ms = 2.5;
  s.ingest_coalescing_ratio = 3.0;
  out = s.ToString();
  EXPECT_NE(out.find("ingest:"), std::string::npos);
}

// The invariant on a live service: admitted queries split exactly into
// hits and misses, every admitted query records exactly one latency
// sample, and mutations keep edge vs node counters separate.
TEST(ServeStatsTest, LiveServiceCountersReconcile) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  QueryOptions qo;
  qo.theta = 0.9;
  qo.k = 10;
  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}),
      ServeOptions{});

  ASSERT_TRUE(service.Query(query, qo).result.status.ok());  // miss
  ASSERT_TRUE(service.Query(query, qo).result.status.ok());  // hit
  (void)service.AddNode(f.guide);
  MaintenanceStats ms;
  ASSERT_TRUE(
      service.ApplyUpdate(GraphUpdate::Insert(f.ct, f.hp, f.fav), &ms));
  ASSERT_TRUE(service.Query(query, qo).result.status.ok());  // miss again

  ServeStats s = service.Stats();
  EXPECT_EQ(s.queries, 3u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 2u);
  EXPECT_EQ(s.queries, s.cache_hits + s.cache_misses);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.total_requests(), s.queries);
  EXPECT_EQ(s.queries, s.hit_latency.count + s.miss_latency.count +
                           s.degraded_latency.count);
  // Counter split: one node add, one edge update, two batches.
  EXPECT_EQ(s.nodes_added, 1u);
  EXPECT_EQ(s.updates_applied, 1u);
  EXPECT_EQ(s.update_batches, 2u);
  EXPECT_EQ(s.version, 2u);
}

}  // namespace
}  // namespace osq
