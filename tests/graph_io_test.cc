#include "graph/graph_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>
#include "gen/scenarios.h"
#include "ontology/ontology_graph.h"

namespace osq {
namespace {

Graph SampleGraph(LabelDictionary* dict) {
  Graph g;
  g.AddNode(dict->Intern("museum"));
  g.AddNode(dict->Intern("tourists"));
  g.AddNode(dict->Intern("cafe"));
  g.AddEdge(1, 0, dict->Intern("guide"));
  g.AddEdge(1, 2, dict->Intern("fav"));
  g.AddEdge(2, 0, dict->Intern("near"));
  return g;
}

TEST(GraphIoTest, RoundTripThroughStream) {
  LabelDictionary dict;
  Graph g = SampleGraph(&dict);
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(g, dict, &ss).ok());

  LabelDictionary dict2;
  Graph g2;
  ASSERT_TRUE(LoadGraph(&ss, &dict2, &g2).ok());
  EXPECT_EQ(g2.num_nodes(), 3u);
  EXPECT_EQ(g2.num_edges(), 3u);
  EXPECT_EQ(dict2.Name(g2.NodeLabel(0)), "museum");
  EXPECT_TRUE(g2.HasEdge(1, 0, dict2.Lookup("guide")));
  EXPECT_TRUE(g2.HasEdge(2, 0, dict2.Lookup("near")));
}

TEST(GraphIoTest, RoundTripPreservesParallelEdges) {
  LabelDictionary dict;
  Graph g;
  g.AddNodes(2, dict.Intern("x"));
  g.AddEdge(0, 1, dict.Intern("a"));
  g.AddEdge(0, 1, dict.Intern("b"));
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(g, dict, &ss).ok());
  LabelDictionary dict2;
  Graph g2;
  ASSERT_TRUE(LoadGraph(&ss, &dict2, &g2).ok());
  EXPECT_EQ(g2.num_edges(), 2u);
}

TEST(GraphIoTest, RoundTripEmptyGraph) {
  LabelDictionary dict;
  Graph g;
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(g, dict, &ss).ok());
  LabelDictionary dict2;
  Graph g2;
  ASSERT_TRUE(LoadGraph(&ss, &dict2, &g2).ok());
  EXPECT_TRUE(g2.empty());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header\n\nv 0 a\n# mid\nv 1 b\ne 0 1 rel\n");
  LabelDictionary dict;
  Graph g;
  ASSERT_TRUE(LoadGraph(&ss, &dict, &g).ok());
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphIoTest, RejectsWhitespaceLabelOnSave) {
  LabelDictionary dict;
  Graph g;
  g.AddNode(dict.Intern("two words"));
  std::stringstream ss;
  Status s = SaveGraph(g, dict, &ss);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, RejectsNonDenseNodeIds) {
  std::stringstream ss("v 0 a\nv 2 b\n");
  LabelDictionary dict;
  Graph g;
  EXPECT_EQ(LoadGraph(&ss, &dict, &g).code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsEdgeToUnknownNode) {
  std::stringstream ss("v 0 a\ne 0 5 rel\n");
  LabelDictionary dict;
  Graph g;
  EXPECT_EQ(LoadGraph(&ss, &dict, &g).code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsUnknownRecordTag) {
  std::stringstream ss("x 0 a\n");
  LabelDictionary dict;
  Graph g;
  EXPECT_EQ(LoadGraph(&ss, &dict, &g).code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsTruncatedRecord) {
  std::stringstream ss("v 0\n");
  LabelDictionary dict;
  Graph g;
  EXPECT_EQ(LoadGraph(&ss, &dict, &g).code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, TargetGraphUntouchedOnFailure) {
  std::stringstream ss("v 0 a\nbogus\n");
  LabelDictionary dict;
  Graph g;
  g.AddNode(dict.Intern("keep"));
  EXPECT_FALSE(LoadGraph(&ss, &dict, &g).ok());
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(dict.Name(g.NodeLabel(0)), "keep");
}

TEST(GraphIoTest, FileRoundTrip) {
  LabelDictionary dict;
  Graph g = SampleGraph(&dict);
  std::string path = testing::TempDir() + "/osq_graph_io_test.graph";
  ASSERT_TRUE(SaveGraphToFile(g, dict, path).ok());
  LabelDictionary dict2;
  Graph g2;
  ASSERT_TRUE(LoadGraphFromFile(path, &dict2, &g2).ok());
  EXPECT_EQ(g2.num_nodes(), g.num_nodes());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
}

TEST(GraphIoTest, MissingFileIsIoError) {
  LabelDictionary dict;
  Graph g;
  EXPECT_EQ(LoadGraphFromFile("/nonexistent/path.graph", &dict, &g).code(),
            StatusCode::kIoError);
}

TEST(GraphIoTest, SharedDictionaryAlignsLabelIds) {
  LabelDictionary dict;
  Graph g = SampleGraph(&dict);
  std::stringstream ss;
  ASSERT_TRUE(SaveGraph(g, dict, &ss).ok());
  // Reload into the SAME dictionary: ids must be identical.
  Graph g2;
  ASSERT_TRUE(LoadGraph(&ss, &dict, &g2).ok());
  EXPECT_EQ(g2.NodeLabel(0), g.NodeLabel(0));
  EXPECT_EQ(g2.NodeLabel(1), g.NodeLabel(1));
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(GraphIoTest, ExportImportExportIsByteIdentical) {
  // The dictionary built by generation interns labels in a different order
  // than the dictionary built by importing the files (graph labels first,
  // then ontology labels).  The exported bytes must not depend on that
  // interning order: save -> load -> save has to diff clean.
  gen::ScenarioParams p;
  p.scale = 300;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);

  const std::string g1 = testing::TempDir() + "/osq_rt1.graph";
  const std::string o1 = testing::TempDir() + "/osq_rt1.ontology";
  ASSERT_TRUE(SaveGraphToFile(ds.graph, ds.dict, g1).ok());
  ASSERT_TRUE(SaveOntology(ds.ontology, ds.dict, o1).ok());

  gen::Dataset imported;
  ASSERT_TRUE(LoadGraphFromFile(g1, &imported.dict, &imported.graph).ok());
  ASSERT_TRUE(
      LoadOntologyFromFile(o1, &imported.dict, &imported.ontology).ok());

  const std::string g2 = testing::TempDir() + "/osq_rt2.graph";
  const std::string o2 = testing::TempDir() + "/osq_rt2.ontology";
  ASSERT_TRUE(SaveGraphToFile(imported.graph, imported.dict, g2).ok());
  ASSERT_TRUE(SaveOntology(imported.ontology, imported.dict, o2).ok());

  EXPECT_EQ(ReadWholeFile(g1), ReadWholeFile(g2));
  EXPECT_EQ(ReadWholeFile(o1), ReadWholeFile(o2));
}

TEST(GraphIoTest, OntologyExportIsDictionaryOrderIndependent) {
  // Same ontology content reached through two interning orders must
  // serialize to the same bytes.
  LabelDictionary d1;
  OntologyGraph oa;
  oa.AddRelation(d1.Intern("museum"), d1.Intern("gallery"));
  oa.AddRelation(d1.Intern("gallery"), d1.Intern("park"));

  LabelDictionary d2;
  d2.Intern("zzz");  // shift every id
  OntologyGraph ob;
  ob.AddRelation(d2.Intern("park"), d2.Intern("gallery"));
  ob.AddRelation(d2.Intern("gallery"), d2.Intern("museum"));

  const std::string pa = testing::TempDir() + "/osq_onto_a.ontology";
  const std::string pb = testing::TempDir() + "/osq_onto_b.ontology";
  ASSERT_TRUE(SaveOntology(oa, d1, pa).ok());
  ASSERT_TRUE(SaveOntology(ob, d2, pb).ok());
  EXPECT_EQ(ReadWholeFile(pa), ReadWholeFile(pb));
}

}  // namespace
}  // namespace osq
