#include "core/ontology_index.h"

#include <gtest/gtest.h>
#include "gen/synthetic.h"
#include "test_util.h"

namespace osq {
namespace {

TEST(OntologyIndexTest, BuildsRequestedNumberOfConceptGraphs) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 3;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  EXPECT_EQ(index.num_concept_graphs(), 3u);
  EXPECT_TRUE(index.Validate());
}

TEST(OntologyIndexTest, StatsReported) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  IndexBuildStats stats;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options, &stats);
  EXPECT_EQ(stats.per_graph.size(), 2u);
  EXPECT_GT(stats.total_blocks, 0u);
  size_t sum = 0;
  for (const auto& s : stats.per_graph) sum += s.final_blocks;
  EXPECT_EQ(sum, stats.total_blocks);
  EXPECT_EQ(index.TotalSize() >= stats.total_blocks, true);
}

TEST(OntologyIndexTest, SimilarityBaseRespected) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.similarity_base = 0.8;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  EXPECT_DOUBLE_EQ(index.sim().base(), 0.8);
}

TEST(OntologyIndexTest, EachBlockCoversItsMembers) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.beta = 0.81;
  options.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  for (size_t i = 0; i < index.num_concept_graphs(); ++i) {
    const ConceptGraph& cg = index.concept_graph(i);
    for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
      EXPECT_TRUE(index.sim().AtLeast(f.o, f.g.NodeLabel(v),
                                      cg.BlockLabel(cg.BlockOf(v)), 0.81));
    }
  }
}

TEST(OntologyIndexTest, DistinctSeedsProduceDistinctIndexes) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions a;
  a.seed = 1;
  IndexOptions b;
  b.seed = 99;
  OntologyIndex ia = OntologyIndex::Build(f.g, f.o, a);
  OntologyIndex ib = OntologyIndex::Build(f.g, f.o, b);
  // Both valid regardless of the concept label sets drawn.
  EXPECT_TRUE(ia.Validate());
  EXPECT_TRUE(ib.Validate());
}

TEST(OntologyIndexTest, MoveKeepsPointersValid) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, IndexOptions{});
  OntologyIndex moved = std::move(index);
  EXPECT_TRUE(moved.Validate());
  EXPECT_EQ(&moved.data_graph(), &f.g);
}

TEST(OntologyIndexTest, SyntheticGraphIndexValidates) {
  LabelDictionary dict;
  gen::SyntheticGraphParams gp;
  gp.num_nodes = 300;
  gp.num_edges = 900;
  gp.num_labels = 40;
  Graph g = gen::MakeRandomGraph(gp, &dict);
  gen::SyntheticOntologyParams op;
  op.num_labels = 40;
  OntologyGraph o = gen::MakeTaxonomyOntology(op, &dict);
  IndexOptions options;
  options.num_concept_graphs = 2;
  IndexBuildStats stats;
  OntologyIndex index = OntologyIndex::Build(g, o, options, &stats);
  EXPECT_TRUE(index.Validate());
  // Refinement can only refine: block count between #concepts and #nodes.
  for (const auto& s : stats.per_graph) {
    EXPECT_GE(s.final_blocks, s.initial_blocks);
    EXPECT_LE(s.final_blocks, g.num_nodes());
  }
}

}  // namespace
}  // namespace osq
