// Direct property tests of Prop. 4.2 and the G_v contract on random
// workloads: the extracted subgraph must contain every match that a
// whole-graph ground-truth matcher finds, an empty filter result must
// imply an empty ground truth, and G_v must be exactly the induced
// subgraph over the surviving candidates.

#include <set>

#include <gtest/gtest.h>
#include "baseline/simmatrix.h"
#include "common/rng.h"
#include "core/filtering.h"
#include "core/ontology_index.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/query_graph.h"

namespace osq {
namespace {

struct World {
  LabelDictionary dict;
  Graph g;
  OntologyGraph o;
};

World MakeWorld(uint64_t seed) {
  World w;
  gen::SyntheticGraphParams gp;
  gp.num_nodes = 140;
  gp.num_edges = 420;
  gp.num_labels = 22;
  gp.num_edge_labels = 2;
  gp.seed = seed;
  w.g = gen::MakeRandomGraph(gp, &w.dict);
  gen::SyntheticOntologyParams op;
  op.num_labels = 22;
  op.seed = seed + 1;
  w.o = gen::MakeTaxonomyOntology(op, &w.dict);
  return w;
}

class Prop42Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Prop42Test, GvContainsEveryGroundTruthMatch) {
  uint64_t seed = GetParam();
  World w = MakeWorld(seed);
  SimilarityFunction sim(0.9);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  idx.seed = seed;
  OntologyIndex index = OntologyIndex::Build(w.g, w.o, idx);

  Rng rng(seed + 3);
  gen::QueryGenParams qp;
  qp.num_nodes = 3;
  qp.generalize_prob = 0.5;
  for (int qi = 0; qi < 6; ++qi) {
    Graph q = gen::ExtractQuery(w.g, w.o, qp, &rng);
    if (q.empty() || !ValidateQuery(q).ok()) continue;
    QueryOptions options;
    options.theta = 0.81;
    options.k = 0;

    // Ground truth: exhaustive matching over the whole graph.
    SimMatrix m = BuildSimMatrix(q, w.g, w.o, sim, options.theta);
    std::vector<Match> truth = SimMatrixMatch(q, w.g, m, options);

    FilterResult filter = GviewFilter(index, q, options);
    if (filter.no_match) {
      // Emptiness proof must be correct.
      EXPECT_TRUE(truth.empty());
      continue;
    }
    // Candidate membership per query node (in original ids).
    std::vector<std::set<NodeId>> cand(q.num_nodes());
    for (NodeId u = 0; u < q.num_nodes(); ++u) {
      for (const Candidate& c : filter.candidates[u]) {
        cand[u].insert(filter.gv.to_original[c.node]);
      }
    }
    for (const Match& match : truth) {
      for (NodeId u = 0; u < q.num_nodes(); ++u) {
        EXPECT_TRUE(cand[u].count(match.mapping[u]) > 0)
            << "match node " << match.mapping[u]
            << " lost by the filter for query node " << u;
      }
    }
  }
}

TEST_P(Prop42Test, GvIsInducedSubgraphOverCandidates) {
  uint64_t seed = GetParam();
  World w = MakeWorld(seed);
  IndexOptions idx;
  idx.seed = seed;
  OntologyIndex index = OntologyIndex::Build(w.g, w.o, idx);
  Rng rng(seed + 4);
  gen::QueryGenParams qp;
  qp.num_nodes = 3;
  qp.generalize_prob = 0.5;
  Graph q;
  while (q.empty()) q = gen::ExtractQuery(w.g, w.o, qp, &rng);

  QueryOptions options;
  options.theta = 0.81;
  FilterResult filter = GviewFilter(index, q, options);
  if (filter.no_match) return;
  const Graph& gv = filter.gv.graph;
  // Every G_v edge exists in G with identical endpoints/labels; and every
  // G edge between G_v nodes exists in G_v (induced).
  for (NodeId v = 0; v < gv.num_nodes(); ++v) {
    NodeId orig = filter.gv.to_original[v];
    for (const AdjEntry& e : gv.OutEdges(v)) {
      EXPECT_TRUE(
          w.g.HasEdge(orig, filter.gv.to_original[e.node], e.label));
    }
    for (const AdjEntry& e : w.g.OutEdges(orig)) {
      NodeId local = filter.gv.from_original[e.node];
      if (local != kInvalidNode) {
        EXPECT_TRUE(gv.HasEdge(v, local, e.label));
      }
    }
  }
}

TEST_P(Prop42Test, CandidateSimilaritiesRespectTheta) {
  uint64_t seed = GetParam();
  World w = MakeWorld(seed);
  SimilarityFunction sim(0.9);
  IndexOptions idx;
  idx.seed = seed;
  OntologyIndex index = OntologyIndex::Build(w.g, w.o, idx);
  Rng rng(seed + 5);
  gen::QueryGenParams qp;
  qp.num_nodes = 3;
  qp.generalize_prob = 0.7;
  Graph q;
  while (q.empty()) q = gen::ExtractQuery(w.g, w.o, qp, &rng);

  for (double theta : {0.9, 0.81, 0.729}) {
    QueryOptions options;
    options.theta = theta;
    FilterResult filter = GviewFilter(index, q, options);
    if (filter.no_match) continue;
    for (NodeId u = 0; u < q.num_nodes(); ++u) {
      for (const Candidate& c : filter.candidates[u]) {
        NodeId orig = filter.gv.to_original[c.node];
        double expected = sim.Similarity(
            w.o, q.NodeLabel(u), w.g.NodeLabel(orig), /*theta_floor=*/0.5);
        EXPECT_NEAR(c.sim, expected, 1e-12);
        EXPECT_GE(c.sim, theta - 1e-12);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Prop42Test,
                         ::testing::Values(41u, 42u, 43u, 44u, 45u));

}  // namespace
}  // namespace osq
