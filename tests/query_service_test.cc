// Functional tests for the serving layer: cache hit/miss behavior,
// bit-identical cached results, version-based invalidation after updates
// (checked against a fresh engine built over an identically mutated
// graph), LRU eviction, and the stats counters.  Concurrency is covered
// separately by query_service_stress_test.cc.

#include "serve/query_service.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/index_maintenance.h"
#include "serve/result_cache.h"
#include "test_util.h"

namespace osq {
namespace {

QueryService MakeTravelService(test::TravelFixture* f,
                               ServeOptions serve = ServeOptions{}) {
  return QueryService(
      QueryEngine(std::move(f->g), std::move(f->o), IndexOptions{}), serve);
}

QueryOptions TravelOptions() {
  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;
  return options;
}

// Field-by-field equality of QueryResult, including the phase timings the
// cold run recorded — "bit-identical" is the cache contract.
void ExpectIdenticalResult(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(a.status.message(), b.status.message());
  EXPECT_EQ(a.matches, b.matches);
  EXPECT_EQ(a.filter_stats.initial_blocks, b.filter_stats.initial_blocks);
  EXPECT_EQ(a.filter_stats.pruned_blocks, b.filter_stats.pruned_blocks);
  EXPECT_EQ(a.filter_stats.gv_nodes, b.filter_stats.gv_nodes);
  EXPECT_EQ(a.filter_stats.gv_edges, b.filter_stats.gv_edges);
  EXPECT_EQ(a.verify_stats.search_steps, b.verify_stats.search_steps);
  EXPECT_EQ(a.verify_stats.matches_found, b.verify_stats.matches_found);
  EXPECT_EQ(a.verify_stats.truncated, b.verify_stats.truncated);
  EXPECT_EQ(a.verify_stats.root_partitions, b.verify_stats.root_partitions);
  EXPECT_EQ(a.filter_ms, b.filter_ms);
  EXPECT_EQ(a.verify_ms, b.verify_ms);
}

TEST(QueryServiceTest, CacheHitReturnsBitIdenticalResult) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  QueryService service = MakeTravelService(&f);

  ServedResult cold = service.Query(query, TravelOptions());
  ASSERT_TRUE(cold.result.status.ok());
  EXPECT_FALSE(cold.cache_hit);
  ASSERT_EQ(cold.result.matches.size(), 1u);

  ServedResult hot = service.Query(query, TravelOptions());
  EXPECT_TRUE(hot.cache_hit);
  EXPECT_EQ(hot.version, cold.version);
  ExpectIdenticalResult(hot.result, cold.result);

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.hit_latency.count, 1u);
  EXPECT_EQ(stats.miss_latency.count, 1u);
}

TEST(QueryServiceTest, UpdateInvalidatesAndMatchesFreshEngine) {
  test::TravelFixture f = test::MakeTravelFixture();
  // Keep copies so a reference engine can replay the same mutation.
  Graph g_copy = f.g;
  OntologyGraph o_copy = f.o;
  Graph query = f.query;
  NodeId ct = f.ct, hp = f.hp, rg = f.rg;
  LabelId fav = f.fav, near = f.near;

  QueryService service = MakeTravelService(&f);
  ASSERT_FALSE(service.Query(query, TravelOptions()).cache_hit);
  ASSERT_TRUE(service.Query(query, TravelOptions()).cache_hit);

  std::vector<GraphUpdate> batch = {GraphUpdate::Insert(ct, hp, fav),
                                    GraphUpdate::Insert(hp, rg, near)};
  MaintenanceStats mstats = service.ApplyUpdates(batch);
  EXPECT_EQ(mstats.applied, 2u);
  EXPECT_EQ(service.version(), 1u);  // one batch = one version step

  // The cached pre-update entry must not be served.
  ServedResult after = service.Query(query, TravelOptions());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.version, 1u);
  EXPECT_EQ(after.result.matches.size(), 2u);

  // Ground truth: a fresh engine over the same post-update graph.
  ASSERT_TRUE(g_copy.AddEdge(ct, hp, fav));
  ASSERT_TRUE(g_copy.AddEdge(hp, rg, near));
  QueryEngine fresh(std::move(g_copy), std::move(o_copy), IndexOptions{});
  QueryResult expected = fresh.Query(query, TravelOptions());
  EXPECT_EQ(after.result.matches, expected.matches);

  ServeStats stats = service.Stats();
  EXPECT_GE(stats.cache_invalidations, 1u);
}

TEST(QueryServiceTest, NoOpUpdateKeepsSnapshotAndCache) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  NodeId ct = f.ct, rg = f.rg;
  LabelId guide = f.guide;
  QueryService service = MakeTravelService(&f);
  (void)service.Query(query, TravelOptions());  // warm the cache

  // Duplicate insertion: rejected, so the snapshot must not advance.
  EXPECT_FALSE(service.ApplyUpdate(GraphUpdate::Insert(ct, rg, guide)));
  EXPECT_EQ(service.version(), 0u);
  EXPECT_TRUE(service.Query(query, TravelOptions()).cache_hit);
}

TEST(QueryServiceTest, AddNodeInvalidates) {
  test::TravelFixture f = test::MakeTravelFixture();
  LabelId starlight = f.dict.Lookup("starlight");
  Graph single;
  single.AddNode(starlight);  // valid single-node query
  QueryService service = MakeTravelService(&f);

  QueryOptions options = TravelOptions();
  options.k = 0;
  ServedResult before = service.Query(single, options);
  ASSERT_TRUE(before.result.status.ok());
  size_t matches_before = before.result.matches.size();
  ASSERT_GE(matches_before, 1u);

  service.AddNode(starlight);
  EXPECT_EQ(service.version(), 1u);
  ServedResult after = service.Query(single, options);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.result.matches.size(), matches_before + 1);
}

// Vector-stamp audit of AddNode (result_cache.h): the cache stamp is one
// scalar covering the whole snapshot and Lookup demands exact equality,
// so a node add MUST advance the version and thereby sweep every entry —
// any cached single-node query could have gained a match.  What it must
// NOT do is masquerade as an edge update in the metrics: node-adds and
// edge-churn are separate counters sharing the batch count.
TEST(QueryServiceTest, AddNodeSweepsCacheButCountsSeparately) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  NodeId ct = f.ct, hp = f.hp;
  LabelId fav = f.fav;
  LabelId starlight = f.dict.Lookup("starlight");
  QueryService service = MakeTravelService(&f);

  ServedResult cold = service.Query(query, TravelOptions());
  ASSERT_TRUE(cold.result.status.ok());
  ASSERT_EQ(service.cache_size(), 1u);

  (void)service.AddNode(starlight);
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.nodes_added, 1u);
  EXPECT_EQ(stats.updates_applied, 0u);  // no edge changed
  EXPECT_EQ(stats.update_batches, 1u);
  EXPECT_EQ(stats.version, 1u);
  EXPECT_EQ(service.cache_size(), 0u);  // full sweep, by design
  EXPECT_EQ(stats.cache_invalidations, 1u);

  // The swept entry re-materializes identically: the add cannot have
  // perturbed the original query's answer.
  ServedResult warm = service.Query(query, TravelOptions());
  EXPECT_FALSE(warm.cache_hit);
  EXPECT_EQ(warm.result.matches, cold.result.matches);

  // An edge update moves the edge counter, not the node counter.
  ASSERT_TRUE(service.ApplyUpdate(GraphUpdate::Insert(ct, hp, fav)));
  stats = service.Stats();
  EXPECT_EQ(stats.nodes_added, 1u);
  EXPECT_EQ(stats.updates_applied, 1u);
  EXPECT_EQ(stats.update_batches, 2u);
  EXPECT_EQ(stats.version, 2u);
}

TEST(QueryServiceTest, LruEvictionAtCapacity) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  ServeOptions serve;
  serve.cache_capacity = 2;
  QueryService service = MakeTravelService(&f, serve);

  // Three distinct signatures via k; the k=1 entry is the LRU victim.
  QueryOptions options = TravelOptions();
  for (size_t k : {1u, 2u, 3u}) {
    options.k = k;
    EXPECT_FALSE(service.Query(query, options).cache_hit);
  }
  EXPECT_EQ(service.cache_size(), 2u);
  EXPECT_EQ(service.Stats().cache_evictions, 1u);

  options.k = 1;
  EXPECT_FALSE(service.Query(query, options).cache_hit);  // was evicted
  options.k = 3;
  EXPECT_TRUE(service.Query(query, options).cache_hit);  // still resident
}

TEST(QueryServiceTest, ZeroCapacityDisablesCache) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  ServeOptions serve;
  serve.cache_capacity = 0;
  QueryService service = MakeTravelService(&f, serve);
  EXPECT_FALSE(service.Query(query, TravelOptions()).cache_hit);
  EXPECT_FALSE(service.Query(query, TravelOptions()).cache_hit);
  EXPECT_EQ(service.cache_size(), 0u);
}

TEST(QueryServiceTest, SignatureSeparatesSemanticOptionsOnly) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  QueryService service = MakeTravelService(&f);

  QueryOptions options = TravelOptions();
  (void)service.Query(query, options);  // warm the cache
  options.theta = 0.81;  // different signature: cold again
  EXPECT_FALSE(service.Query(query, options).cache_hit);

  // num_threads is execution detail, not semantics: same signature.
  options.num_threads = 4;
  EXPECT_TRUE(service.Query(query, options).cache_hit);
}

TEST(QueryServiceTest, ErrorResultsNotCachedByDefault) {
  test::TravelFixture f = test::MakeTravelFixture();
  QueryService service = MakeTravelService(&f);
  Graph empty;
  EXPECT_FALSE(service.Query(empty, TravelOptions()).result.status.ok());
  EXPECT_FALSE(service.Query(empty, TravelOptions()).cache_hit);
  EXPECT_EQ(service.cache_size(), 0u);
}

TEST(QueryServiceTest, ErrorResultsCachedWhenOptedIn) {
  test::TravelFixture f = test::MakeTravelFixture();
  ServeOptions serve;
  serve.cache_errors = true;
  QueryService service = MakeTravelService(&f, serve);
  Graph empty;
  ASSERT_FALSE(service.Query(empty, TravelOptions()).result.status.ok());
  ServedResult second = service.Query(empty, TravelOptions());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_FALSE(second.result.status.ok());
}

TEST(ResultCacheTest, LookupTimeStaleDropsAreCounted) {
  // A stale entry found at Lookup is dropped on the spot; the drop must be
  // recorded (it was previously invisible, under-reporting invalidations).
  ResultCache cache(4);
  QueryResult result;
  cache.Insert("q1", VersionVector::Scalar(0), result);
  cache.Insert("q2", VersionVector::Scalar(0), result);
  EXPECT_EQ(cache.stale_drops(), 0u);

  QueryResult out;
  EXPECT_FALSE(cache.Lookup("q1", VersionVector::Scalar(1), &out));
  EXPECT_EQ(cache.stale_drops(), 1u);
  EXPECT_EQ(cache.size(), 1u);  // dropped, not just skipped

  // Same-version lookups and plain misses do not count.
  EXPECT_FALSE(cache.Lookup("q1", VersionVector::Scalar(1), &out));  // miss
  EXPECT_TRUE(cache.Lookup("q2", VersionVector::Scalar(0), &out));
  EXPECT_EQ(cache.stale_drops(), 1u);

  EXPECT_FALSE(cache.Lookup("q2", VersionVector::Scalar(3), &out));
  EXPECT_EQ(cache.stale_drops(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, SingleStaleShardComponentInvalidatesEntry) {
  // Regression for the scalar-stamp latent bug: with per-shard versions a
  // cache entry is valid only if EVERY component matches — one shard
  // advancing must invalidate it even when the others (and any scalar
  // aggregate of the vector) are unchanged.
  ResultCache cache(4);
  QueryResult result;
  VersionVector at{{3, 5, 7}};
  cache.Insert("q", at, result);

  QueryResult out;
  ASSERT_TRUE(cache.Lookup("q", VersionVector{{3, 5, 7}}, &out));

  // Shard 1 applied a batch; shards 0 and 2 did not.
  VersionVector after{{3, 6, 7}};
  EXPECT_FALSE(cache.Lookup("q", after, &out));
  EXPECT_EQ(cache.stale_drops(), 1u);
  EXPECT_EQ(cache.size(), 0u);

  // The eager sweep uses the same component-wise rule.
  cache.Insert("a", VersionVector{{3, 6, 7}}, result);
  cache.Insert("b", VersionVector{{3, 6, 8}}, result);
  EXPECT_EQ(cache.Invalidate(VersionVector{{3, 6, 8}}), 1u);
  EXPECT_TRUE(cache.Lookup("b", VersionVector{{3, 6, 8}}, &out));
}

TEST(QueryServiceTest, StatsFoldStaleDropsIntoInvalidations) {
  // The eager writer sweep accounts for stale entries it removes; Stats()
  // additionally folds in lazy lookup-time drops so the two paths report
  // uniformly.  Exercise the eager path end-to-end and check the counter
  // still reconciles with the cache's own view.
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  NodeId hp = f.hp, rg = f.rg;
  LabelId near = f.near;
  QueryService service = MakeTravelService(&f);

  (void)service.Query(query, TravelOptions());  // warm the cache
  ASSERT_EQ(service.cache_size(), 1u);
  ASSERT_TRUE(service.ApplyUpdate(GraphUpdate::Insert(hp, rg, near)));
  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.cache_invalidations, 1u);  // eager sweep got the entry
  EXPECT_EQ(service.cache_size(), 0u);
}

TEST(QueryServiceTest, QuerySignatureIsInsertionOrderInvariant) {
  // Two structurally identical graphs built in different edge orders.
  Graph a;
  a.AddNode(1);
  a.AddNode(2);
  a.AddNode(3);
  ASSERT_TRUE(a.AddEdge(0, 1, 5));
  ASSERT_TRUE(a.AddEdge(1, 2, 6));
  Graph b;
  b.AddNode(1);
  b.AddNode(2);
  b.AddNode(3);
  ASSERT_TRUE(b.AddEdge(1, 2, 6));
  ASSERT_TRUE(b.AddEdge(0, 1, 5));
  QueryOptions options;
  EXPECT_EQ(QuerySignature(a, options), QuerySignature(b, options));

  options.theta = 0.8;
  EXPECT_NE(QuerySignature(a, options), QuerySignature(b, QueryOptions{}));
}

}  // namespace
}  // namespace osq
