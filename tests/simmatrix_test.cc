#include "baseline/simmatrix.h"

#include <gtest/gtest.h>
#include "test_util.h"

namespace osq {
namespace {

TEST(SimMatrixTest, MatrixContainsExpectedCandidates) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  SimMatrix m = BuildSimMatrix(f.query, f.g, f.o, sim, 0.81);
  ASSERT_EQ(m.candidates.size(), 3u);
  // museum: RG (0.9) then Disneyland (0.81), sorted best-first.
  const auto& museum = m.candidates[f.q_museum];
  ASSERT_EQ(museum.size(), 2u);
  EXPECT_EQ(museum[0].node, f.rg);
  EXPECT_DOUBLE_EQ(museum[0].sim, 0.9);
  EXPECT_EQ(museum[1].node, f.disneyland);
  EXPECT_DOUBLE_EQ(museum[1].sim, 0.81);
}

TEST(SimMatrixTest, HigherThetaShrinksMatrix) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  SimMatrix loose = BuildSimMatrix(f.query, f.g, f.o, sim, 0.81);
  SimMatrix tight = BuildSimMatrix(f.query, f.g, f.o, sim, 0.9);
  for (NodeId u = 0; u < f.query.num_nodes(); ++u) {
    EXPECT_LE(tight.candidates[u].size(), loose.candidates[u].size());
  }
  EXPECT_EQ(tight.candidates[f.q_museum].size(), 1u);
}

TEST(SimMatrixTest, MatchAgreesWithPaperExample) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  SimMatrix m = BuildSimMatrix(f.query, f.g, f.o, sim, 0.81);
  QueryOptions options;
  options.theta = 0.81;
  options.k = 10;
  KMatchStats stats;
  std::vector<Match> matches =
      SimMatrixMatch(f.query, f.g, m, options, &stats);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_DOUBLE_EQ(matches[0].score, 2.7);
  EXPECT_NEAR(matches[1].score, 2.61, 1e-12);
  EXPECT_GT(stats.search_steps, 0u);
}

TEST(SimMatrixTest, IdenticalLabelFallbackForUnknownLabels) {
  // A query label absent from the ontology still matches identical data
  // labels through the sim == 1 fallback.
  LabelDictionary dict;
  OntologyGraph o;
  o.AddRelation(dict.Intern("a"), dict.Intern("b"));
  LabelId mystery = dict.Intern("mystery");
  Graph g;
  g.AddNode(mystery);
  Graph q;
  q.AddNode(mystery);
  SimilarityFunction sim(0.9);
  SimMatrix m = BuildSimMatrix(q, g, o, sim, 0.9);
  ASSERT_EQ(m.candidates[0].size(), 1u);
  EXPECT_DOUBLE_EQ(m.candidates[0][0].sim, 1.0);
}

TEST(SimMatrixTest, EmptyMatrixMeansNoMatches) {
  test::TravelFixture f = test::MakeTravelFixture();
  SimilarityFunction sim(0.9);
  StringGraphBuilder qb(&f.dict);
  qb.AddNode("x", "leisure_center");
  qb.AddNode("y", "leisure_center");
  qb.AddEdge("x", "y", "near");
  SimMatrix m = BuildSimMatrix(qb.graph(), f.g, f.o, sim, 0.95);
  // leisure_center itself is not a data label; radius 0 leaves nothing...
  // except radius(0.95)=0 -> no candidates at all.
  EXPECT_TRUE(m.candidates[0].empty());
  EXPECT_TRUE(
      SimMatrixMatch(qb.graph(), f.g, m, QueryOptions{}).empty());
}

}  // namespace
}  // namespace osq
