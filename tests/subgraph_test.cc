#include "graph/subgraph.h"

#include <gtest/gtest.h>

namespace osq {
namespace {

Graph Triangle() {
  Graph g;
  g.AddNode(10);
  g.AddNode(20);
  g.AddNode(30);
  g.AddNode(40);  // extra node
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 2);
  g.AddEdge(2, 0, 3);
  g.AddEdge(0, 3, 4);  // edge leaving the selection
  return g;
}

TEST(SubgraphTest, InducedKeepsInternalEdgesOnly) {
  Graph g = Triangle();
  Subgraph sub = InducedSubgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.graph.num_nodes(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 3u);  // 0->3 dropped
}

TEST(SubgraphTest, MappingsAreInverse) {
  Graph g = Triangle();
  Subgraph sub = InducedSubgraph(g, {2, 0});
  ASSERT_EQ(sub.to_original.size(), 2u);
  for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
    EXPECT_EQ(sub.from_original[sub.to_original[v]], v);
  }
  EXPECT_EQ(sub.from_original[1], kInvalidNode);
  EXPECT_EQ(sub.from_original[3], kInvalidNode);
}

TEST(SubgraphTest, LabelsPreserved) {
  Graph g = Triangle();
  Subgraph sub = InducedSubgraph(g, {1, 2});
  for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
    EXPECT_EQ(sub.graph.NodeLabel(v), g.NodeLabel(sub.to_original[v]));
  }
}

TEST(SubgraphTest, EdgeLabelsPreserved) {
  Graph g = Triangle();
  Subgraph sub = InducedSubgraph(g, {0, 1});
  NodeId a = sub.from_original[0];
  NodeId b = sub.from_original[1];
  EXPECT_TRUE(sub.graph.HasEdge(a, b, 1));
}

TEST(SubgraphTest, DuplicateSelectionIgnored) {
  Graph g = Triangle();
  Subgraph sub = InducedSubgraph(g, {0, 0, 1, 1});
  EXPECT_EQ(sub.graph.num_nodes(), 2u);
}

TEST(SubgraphTest, EmptySelection) {
  Graph g = Triangle();
  Subgraph sub = InducedSubgraph(g, {});
  EXPECT_TRUE(sub.graph.empty());
  EXPECT_EQ(sub.from_original.size(), g.num_nodes());
}

TEST(SubgraphTest, FullSelectionIsIsomorphicCopy) {
  Graph g = Triangle();
  Subgraph sub = InducedSubgraph(g, {0, 1, 2, 3});
  EXPECT_EQ(sub.graph.num_nodes(), g.num_nodes());
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
}

TEST(SubgraphTest, SelfLoopKept) {
  Graph g;
  g.AddNode(1);
  g.AddEdge(0, 0, 9);
  Subgraph sub = InducedSubgraph(g, {0});
  EXPECT_TRUE(sub.graph.HasEdge(0, 0, 9));
}

TEST(SubgraphTest, ParallelEdgesKept) {
  Graph g;
  g.AddNodes(2, 0);
  g.AddEdge(0, 1, 1);
  g.AddEdge(0, 1, 2);
  Subgraph sub = InducedSubgraph(g, {0, 1});
  EXPECT_EQ(sub.graph.num_edges(), 2u);
}

}  // namespace
}  // namespace osq
