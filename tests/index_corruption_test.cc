// Corrupted-index-file suite for LoadIndex (core/index_io.cc): every way a
// file can lie — truncated records, duplicated or out-of-range node ids,
// member counts that do not match the list, implausible options, broken
// label escapes, trailing garbage — must come back as a *distinct*
// Corruption status, and must never crash or return a half-built index.

#include "core/index_io.h"

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_algorithms.h"
#include "graph/label_dictionary.h"
#include "ontology/ontology_graph.h"

namespace osq {
namespace {

// A two-node graph over one label, small enough that every corruption case
// can be spelled out as a literal file.
struct TinyFixture {
  LabelDictionary dict;
  Graph g;
  OntologyGraph o;
  OntologyIndex scratch;

  TinyFixture() : scratch(MakeScratch()) {}

 private:
  OntologyIndex MakeScratch() {
    LabelId a = dict.Intern("a");
    g.AddNode(a);
    g.AddNode(a);
    o.AddLabel(a);
    return OntologyIndex::Build(g, o, IndexOptions{});
  }
};

// The well-formed baseline the corruptions are derived from.
constexpr char kValidFile[] =
    "# osq index v1\n"
    "options 0 0.9 2 0.81 1 8 42 0\n"
    "conceptgraph 0 1 1\n"
    "concepts a\n"
    "block a 2 0 1\n";

// Loads `contents` and returns the status message, asserting the code is
// kCorruption.
std::string LoadExpectingCorruption(TinyFixture* f,
                                    const std::string& contents) {
  std::stringstream ss(contents);
  Status s = LoadIndex(&ss, f->g, f->o, &f->dict, &f->scratch);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.message();
  return s.message();
}

TEST(IndexCorruptionTest, BaselineFileLoadsCleanly) {
  TinyFixture f;
  std::stringstream ss(kValidFile);
  ASSERT_TRUE(LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch).ok());
  EXPECT_TRUE(f.scratch.Validate());
}

TEST(IndexCorruptionTest, EveryCorruptionIsDistinctAndNeverCrashes) {
  // (case name, file contents) — the suite body below also checks each
  // individually; this test asserts the *messages* are pairwise distinct
  // so an operator can tell the failure modes apart.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"empty file", ""},
      {"wrong header", "# osq index v9\n"},
      {"missing options", "# osq index v1\n"},
      {"bad options record", "# osq index v1\noptions 0 0.9\n"},
      {"unknown similarity model",
       "# osq index v1\noptions 7 0.9 2 0.81 1 8 42 0\n"},
      {"implausible options",
       "# osq index v1\noptions 0 1.5 2 0.81 1 8 42 0\n"},
      {"missing conceptgraph",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"},
      {"bad conceptgraph index",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 3 1 1\nconcepts a\nblock a 2 0 1\n"},
      {"missing concepts",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\nconceptgraph 0 1 1\n"},
      {"concept count mismatch",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 2 1\nconcepts a\nblock a 2 0 1\n"},
      {"missing block",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\n"},
      {"bad block record",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 0\n"},
      {"member count mismatch",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 3 0 1\n"},
      {"out-of-range node id",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 2 0 9\n"},
      {"duplicate node assignment",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 2 0 0\n"},
      {"partition not covering",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 1 0\n"},
      {"bad escape in concepts",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a%ZZ\nblock a 2 0 1\n"},
      {"bad escape in block",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a%2 2 0 1\n"},
      {"trailing garbage", std::string(kValidFile) + "block a 1 0\n"},
  };

  std::set<std::string> messages;
  for (const auto& [name, contents] : cases) {
    TinyFixture f;
    std::string message = LoadExpectingCorruption(&f, contents);
    EXPECT_FALSE(message.empty()) << name;
    messages.insert(message);
  }
  // "distinct Corruption status" — no two failure modes share a message.
  // (The two count-zero cases collapse to "bad options record" vs the
  // truncations, so the exact set size is the case count minus the modes
  // that genuinely are the same parse failure.)
  EXPECT_GE(messages.size(), 14u);
}

TEST(IndexCorruptionTest, TruncationMidRecordIsCorruption) {
  TinyFixture f;
  // Cut the valid file at every prefix length that ends inside a record;
  // none of them may crash, and all must fail to load (a prefix that ends
  // exactly after the header line fails with "missing options", etc.).
  std::string valid = kValidFile;
  for (size_t cut = 1; cut + 1 < valid.size(); cut += 7) {
    TinyFixture fresh;
    std::stringstream ss(valid.substr(0, cut));
    Status s = LoadIndex(&ss, fresh.g, fresh.o, &fresh.dict, &fresh.scratch);
    EXPECT_FALSE(s.ok()) << "prefix of length " << cut << " loaded";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.message();
  }
}

TEST(IndexCorruptionTest, TrailingBlankLinesAreAccepted) {
  // A final newline (or several) is not garbage — editors add them.
  TinyFixture f;
  std::stringstream ss(std::string(kValidFile) + "\n\n");
  EXPECT_TRUE(LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch).ok());
}

TEST(IndexCorruptionTest, TrailingSecondGraphIsRejected) {
  // Two concatenated index files: the options record said one concept
  // graph, so the second copy is trailing garbage, not silently ignored.
  TinyFixture f;
  std::stringstream ss(std::string(kValidFile) + kValidFile);
  Status s = LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

// --- Graph-identity record (candidateindex) --------------------------------

std::string WithIdentityRecord(const TinyFixture& f) {
  std::ostringstream rec;
  rec << "candidateindex " << f.g.num_nodes() << ' ' << f.g.num_edges()
      << ' ' << GraphContentHash(f.g) << '\n';
  std::string valid = kValidFile;
  size_t pos = valid.find("conceptgraph");
  return valid.substr(0, pos) + rec.str() + valid.substr(pos);
}

TEST(IndexCorruptionTest, CorrectIdentityRecordLoads) {
  TinyFixture f;
  std::stringstream ss(WithIdentityRecord(f));
  ASSERT_TRUE(LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch).ok());
  EXPECT_TRUE(f.scratch.Validate());
}

TEST(IndexCorruptionTest, MismatchedGraphIsInvalidArgumentNotCorruption) {
  // A file claiming different node/edge counts or a different content hash
  // was saved over ANOTHER graph: the loader must refuse with
  // InvalidArgument (caller error — wrong graph) instead of trusting the
  // partition records or reporting a misleading Corruption.
  TinyFixture f;
  const std::string header = "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n";
  const std::string rest = "conceptgraph 0 1 1\nconcepts a\nblock a 2 0 1\n";
  const std::vector<std::string> wrong = {
      "candidateindex 3 0 12345\n",  // wrong node count
      "candidateindex 2 9 12345\n",  // wrong edge count
      "candidateindex 2 0 12345\n",  // right counts, wrong hash
  };
  std::set<std::string> messages;
  for (const std::string& rec : wrong) {
    TinyFixture fresh;
    std::stringstream ss(header + rec + rest);
    Status s = LoadIndex(&ss, fresh.g, fresh.o, &fresh.dict, &fresh.scratch);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << rec << s.message();
    messages.insert(std::string(s.message()));
  }
  // Count mismatch and hash mismatch report differently.
  EXPECT_EQ(messages.size(), 2u);
}

TEST(IndexCorruptionTest, MalformedIdentityRecordIsCorruption) {
  TinyFixture f;
  const std::string header = "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n";
  const std::string rest = "conceptgraph 0 1 1\nconcepts a\nblock a 2 0 1\n";
  for (const std::string& rec :
       {std::string("candidateindex\n"), std::string("candidateindex 2\n"),
        std::string("candidateindex 2 0\n"),
        std::string("candidateindex 2 0 nothex\n"),
        std::string("candidateindex 2 0 1 extra\n")}) {
    TinyFixture fresh;
    std::stringstream ss(header + rec + rest);
    Status s = LoadIndex(&ss, fresh.g, fresh.o, &fresh.dict, &fresh.scratch);
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << rec << s.message();
  }
}

TEST(IndexCorruptionTest, IdentityRecordAfterBlocksIsTrailingGarbage) {
  // The record is only valid straight after options; one appearing after
  // the partition records means a concatenated or hand-edited file.
  TinyFixture f;
  std::stringstream ss(std::string(kValidFile) + "candidateindex 2 0 1\n");
  Status s = LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(IndexCorruptionTest, SaveLoadAgainstDifferentGraphIsRejected) {
  // End-to-end: save over the tiny graph, then load against a graph with
  // one extra node (counts differ) and against a same-shape graph with a
  // different edge set (hash differs).
  TinyFixture f;
  std::ostringstream saved;
  ASSERT_TRUE(SaveIndex(f.scratch, f.dict, &saved).ok());

  {
    LabelDictionary dict2;
    Graph g2;
    OntologyGraph o2;
    LabelId a = dict2.Intern("a");
    g2.AddNode(a);
    g2.AddNode(a);
    g2.AddNode(a);  // extra node
    o2.AddLabel(a);
    OntologyIndex scratch2 = OntologyIndex::Build(g2, o2, IndexOptions{});
    std::stringstream ss(saved.str());
    Status s = LoadIndex(&ss, g2, o2, &dict2, &scratch2);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.message();
  }
  {
    LabelDictionary dict2;
    Graph g2;
    OntologyGraph o2;
    LabelId a = dict2.Intern("a");
    LabelId b = dict2.Intern("b");
    g2.AddNode(a);
    g2.AddNode(b);  // same node/edge counts, different labels => hash differs
    o2.AddLabel(a);
    o2.AddLabel(b);
    OntologyIndex scratch2 = OntologyIndex::Build(g2, o2, IndexOptions{});
    std::stringstream ss(saved.str());
    Status s = LoadIndex(&ss, g2, o2, &dict2, &scratch2);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.message();
  }
}

}  // namespace
}  // namespace osq
