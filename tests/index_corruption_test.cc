// Corrupted-index-file suite for LoadIndex (core/index_io.cc): every way a
// file can lie — truncated records, duplicated or out-of-range node ids,
// member counts that do not match the list, implausible options, broken
// label escapes, trailing garbage — must come back as a *distinct*
// Corruption status, and must never crash or return a half-built index.

#include "core/index_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/query_engine.h"
#include "core/snapshot.h"
#include "graph/graph_algorithms.h"
#include "graph/label_dictionary.h"
#include "ontology/ontology_graph.h"
#include "test_util.h"

namespace osq {
namespace {

// A two-node graph over one label, small enough that every corruption case
// can be spelled out as a literal file.
struct TinyFixture {
  LabelDictionary dict;
  Graph g;
  OntologyGraph o;
  OntologyIndex scratch;

  TinyFixture() : scratch(MakeScratch()) {}

 private:
  OntologyIndex MakeScratch() {
    LabelId a = dict.Intern("a");
    g.AddNode(a);
    g.AddNode(a);
    o.AddLabel(a);
    return OntologyIndex::Build(g, o, IndexOptions{});
  }
};

// The well-formed baseline the corruptions are derived from.
constexpr char kValidFile[] =
    "# osq index v1\n"
    "options 0 0.9 2 0.81 1 8 42 0\n"
    "conceptgraph 0 1 1\n"
    "concepts a\n"
    "block a 2 0 1\n";

// Loads `contents` and returns the status message, asserting the code is
// kCorruption.
std::string LoadExpectingCorruption(TinyFixture* f,
                                    const std::string& contents) {
  std::stringstream ss(contents);
  Status s = LoadIndex(&ss, f->g, f->o, &f->dict, &f->scratch);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.message();
  return s.message();
}

TEST(IndexCorruptionTest, BaselineFileLoadsCleanly) {
  TinyFixture f;
  std::stringstream ss(kValidFile);
  ASSERT_TRUE(LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch).ok());
  EXPECT_TRUE(f.scratch.Validate());
}

TEST(IndexCorruptionTest, EveryCorruptionIsDistinctAndNeverCrashes) {
  // (case name, file contents) — the suite body below also checks each
  // individually; this test asserts the *messages* are pairwise distinct
  // so an operator can tell the failure modes apart.
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"empty file", ""},
      {"wrong header", "# osq index v9\n"},
      {"missing options", "# osq index v1\n"},
      {"bad options record", "# osq index v1\noptions 0 0.9\n"},
      {"unknown similarity model",
       "# osq index v1\noptions 7 0.9 2 0.81 1 8 42 0\n"},
      {"implausible options",
       "# osq index v1\noptions 0 1.5 2 0.81 1 8 42 0\n"},
      {"missing conceptgraph",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"},
      {"bad conceptgraph index",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 3 1 1\nconcepts a\nblock a 2 0 1\n"},
      {"missing concepts",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\nconceptgraph 0 1 1\n"},
      {"concept count mismatch",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 2 1\nconcepts a\nblock a 2 0 1\n"},
      {"missing block",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\n"},
      {"bad block record",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 0\n"},
      {"member count mismatch",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 3 0 1\n"},
      {"out-of-range node id",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 2 0 9\n"},
      {"duplicate node assignment",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 2 0 0\n"},
      {"partition not covering",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a 1 0\n"},
      {"bad escape in concepts",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a%ZZ\nblock a 2 0 1\n"},
      {"bad escape in block",
       "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n"
       "conceptgraph 0 1 1\nconcepts a\nblock a%2 2 0 1\n"},
      {"trailing garbage", std::string(kValidFile) + "block a 1 0\n"},
  };

  std::set<std::string> messages;
  for (const auto& [name, contents] : cases) {
    TinyFixture f;
    std::string message = LoadExpectingCorruption(&f, contents);
    EXPECT_FALSE(message.empty()) << name;
    messages.insert(message);
  }
  // "distinct Corruption status" — no two failure modes share a message.
  // (The two count-zero cases collapse to "bad options record" vs the
  // truncations, so the exact set size is the case count minus the modes
  // that genuinely are the same parse failure.)
  EXPECT_GE(messages.size(), 14u);
}

TEST(IndexCorruptionTest, TruncationMidRecordIsCorruption) {
  TinyFixture f;
  // Cut the valid file at every prefix length that ends inside a record;
  // none of them may crash, and all must fail to load (a prefix that ends
  // exactly after the header line fails with "missing options", etc.).
  std::string valid = kValidFile;
  for (size_t cut = 1; cut + 1 < valid.size(); cut += 7) {
    TinyFixture fresh;
    std::stringstream ss(valid.substr(0, cut));
    Status s = LoadIndex(&ss, fresh.g, fresh.o, &fresh.dict, &fresh.scratch);
    EXPECT_FALSE(s.ok()) << "prefix of length " << cut << " loaded";
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.message();
  }
}

TEST(IndexCorruptionTest, TrailingBlankLinesAreAccepted) {
  // A final newline (or several) is not garbage — editors add them.
  TinyFixture f;
  std::stringstream ss(std::string(kValidFile) + "\n\n");
  EXPECT_TRUE(LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch).ok());
}

TEST(IndexCorruptionTest, TrailingSecondGraphIsRejected) {
  // Two concatenated index files: the options record said one concept
  // graph, so the second copy is trailing garbage, not silently ignored.
  TinyFixture f;
  std::stringstream ss(std::string(kValidFile) + kValidFile);
  Status s = LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

// --- Graph-identity record (candidateindex) --------------------------------

std::string WithIdentityRecord(const TinyFixture& f) {
  std::ostringstream rec;
  rec << "candidateindex " << f.g.num_nodes() << ' ' << f.g.num_edges()
      << ' ' << GraphContentHash(f.g) << '\n';
  std::string valid = kValidFile;
  size_t pos = valid.find("conceptgraph");
  return valid.substr(0, pos) + rec.str() + valid.substr(pos);
}

TEST(IndexCorruptionTest, CorrectIdentityRecordLoads) {
  TinyFixture f;
  std::stringstream ss(WithIdentityRecord(f));
  ASSERT_TRUE(LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch).ok());
  EXPECT_TRUE(f.scratch.Validate());
}

TEST(IndexCorruptionTest, MismatchedGraphIsInvalidArgumentNotCorruption) {
  // A file claiming different node/edge counts or a different content hash
  // was saved over ANOTHER graph: the loader must refuse with
  // InvalidArgument (caller error — wrong graph) instead of trusting the
  // partition records or reporting a misleading Corruption.
  TinyFixture f;
  const std::string header = "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n";
  const std::string rest = "conceptgraph 0 1 1\nconcepts a\nblock a 2 0 1\n";
  const std::vector<std::string> wrong = {
      "candidateindex 3 0 12345\n",  // wrong node count
      "candidateindex 2 9 12345\n",  // wrong edge count
      "candidateindex 2 0 12345\n",  // right counts, wrong hash
  };
  std::set<std::string> messages;
  for (const std::string& rec : wrong) {
    TinyFixture fresh;
    std::stringstream ss(header + rec + rest);
    Status s = LoadIndex(&ss, fresh.g, fresh.o, &fresh.dict, &fresh.scratch);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << rec << s.message();
    messages.insert(std::string(s.message()));
  }
  // Count mismatch and hash mismatch report differently.
  EXPECT_EQ(messages.size(), 2u);
}

TEST(IndexCorruptionTest, MalformedIdentityRecordIsCorruption) {
  TinyFixture f;
  const std::string header = "# osq index v1\noptions 0 0.9 2 0.81 1 8 42 0\n";
  const std::string rest = "conceptgraph 0 1 1\nconcepts a\nblock a 2 0 1\n";
  for (const std::string& rec :
       {std::string("candidateindex\n"), std::string("candidateindex 2\n"),
        std::string("candidateindex 2 0\n"),
        std::string("candidateindex 2 0 nothex\n"),
        std::string("candidateindex 2 0 1 extra\n")}) {
    TinyFixture fresh;
    std::stringstream ss(header + rec + rest);
    Status s = LoadIndex(&ss, fresh.g, fresh.o, &fresh.dict, &fresh.scratch);
    EXPECT_EQ(s.code(), StatusCode::kCorruption) << rec << s.message();
  }
}

TEST(IndexCorruptionTest, IdentityRecordAfterBlocksIsTrailingGarbage) {
  // The record is only valid straight after options; one appearing after
  // the partition records means a concatenated or hand-edited file.
  TinyFixture f;
  std::stringstream ss(std::string(kValidFile) + "candidateindex 2 0 1\n");
  Status s = LoadIndex(&ss, f.g, f.o, &f.dict, &f.scratch);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(IndexCorruptionTest, SaveLoadAgainstDifferentGraphIsRejected) {
  // End-to-end: save over the tiny graph, then load against a graph with
  // one extra node (counts differ) and against a same-shape graph with a
  // different edge set (hash differs).
  TinyFixture f;
  std::ostringstream saved;
  ASSERT_TRUE(SaveIndex(f.scratch, f.dict, &saved).ok());

  {
    LabelDictionary dict2;
    Graph g2;
    OntologyGraph o2;
    LabelId a = dict2.Intern("a");
    g2.AddNode(a);
    g2.AddNode(a);
    g2.AddNode(a);  // extra node
    o2.AddLabel(a);
    OntologyIndex scratch2 = OntologyIndex::Build(g2, o2, IndexOptions{});
    std::stringstream ss(saved.str());
    Status s = LoadIndex(&ss, g2, o2, &dict2, &scratch2);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.message();
  }
  {
    LabelDictionary dict2;
    Graph g2;
    OntologyGraph o2;
    LabelId a = dict2.Intern("a");
    LabelId b = dict2.Intern("b");
    g2.AddNode(a);
    g2.AddNode(b);  // same node/edge counts, different labels => hash differs
    o2.AddLabel(a);
    o2.AddLabel(b);
    OntologyIndex scratch2 = OntologyIndex::Build(g2, o2, IndexOptions{});
    std::stringstream ss(saved.str());
    Status s = LoadIndex(&ss, g2, o2, &dict2, &scratch2);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.message();
  }
}

// --- Binary snapshot (v2, core/snapshot.h) corruption suite -----------------
//
// The cases below mutate raw snapshot bytes, so they hard-code the spec'd
// header layout: magic[8], version u32 @8, section_count u32 @12,
// file_size u64 @16, payload_hash u64 @24 (FNV-1a 64 over everything after
// the 40-byte header), then section entries of 24 bytes each
// (type u32 @+0, offset u64 @+8, size u64 @+16).

constexpr size_t kV2HeaderBytes = 40;
constexpr size_t kV2EntryBytes = 24;

std::string BuildValidSnapshotBytes() {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  QueryEngine engine(f.g, f.o, options);
  const std::string path = testing::TempDir() + "/osq_v2_corruption_base.snp";
  EXPECT_TRUE(SaveEngineSnapshot(engine, f.dict, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Independent reimplementation of the format's payload hash: word-blocked
// FNV-1a 64 — 8 little-endian bytes per xor-multiply step, byte-wise tail.
uint64_t TestFnv1a(const char* data, size_t size) {
  uint64_t h = 14695981039346656037ull;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    uint64_t w;
    std::memcpy(&w, data + i, sizeof(w));
    h ^= w;
    h *= 1099511628211ull;
  }
  for (; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// Recomputes the payload hash after a deliberate structural mutation, so
// the case under test is the *structural* check, not the hash check.
void FixPayloadHash(std::string* bytes) {
  uint64_t h =
      TestFnv1a(bytes->data() + kV2HeaderBytes, bytes->size() - kV2HeaderBytes);
  std::memcpy(bytes->data() + 24, &h, sizeof(h));
}

Status LoadSnapshotBytes(const std::string& bytes) {
  const std::string path = testing::TempDir() + "/osq_v2_corruption_case.snp";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  LabelDictionary dict;
  std::unique_ptr<QueryEngine> engine;
  return LoadEngineSnapshot(path, &dict, &engine);
}

struct RawSection {
  uint32_t type = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  size_t entry_pos = 0;  // byte position of this entry in the file
};

std::vector<RawSection> ReadSectionTable(const std::string& bytes) {
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 12, sizeof(count));
  std::vector<RawSection> table(count);
  for (uint32_t i = 0; i < count; ++i) {
    RawSection& e = table[i];
    e.entry_pos = kV2HeaderBytes + i * kV2EntryBytes;
    std::memcpy(&e.type, bytes.data() + e.entry_pos, 4);
    std::memcpy(&e.offset, bytes.data() + e.entry_pos + 8, 8);
    std::memcpy(&e.size, bytes.data() + e.entry_pos + 16, 8);
  }
  return table;
}

TEST(SnapshotCorruptionTest, BaselineBytesLoadCleanly) {
  EXPECT_TRUE(LoadSnapshotBytes(BuildValidSnapshotBytes()).ok());
}

TEST(SnapshotCorruptionTest, BadMagicIsInvalidArgument) {
  std::string bytes = BuildValidSnapshotBytes();
  bytes[0] = 'X';
  EXPECT_EQ(LoadSnapshotBytes(bytes).code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotCorruptionTest, UnsupportedVersionIsInvalidArgument) {
  std::string bytes = BuildValidSnapshotBytes();
  uint32_t version = 9;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  EXPECT_EQ(LoadSnapshotBytes(bytes).code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotCorruptionTest, TruncationAtEveryStrideNeverCrashes) {
  const std::string bytes = BuildValidSnapshotBytes();
  for (size_t cut = 0; cut < bytes.size(); cut += 997) {
    Status s = LoadSnapshotBytes(bytes.substr(0, cut));
    ASSERT_FALSE(s.ok()) << "prefix of length " << cut << " loaded";
    // Shorter than a header it is not recognizably a v2 snapshot at all;
    // beyond that the header's file_size exposes the truncation.
    EXPECT_EQ(s.code(), cut < kV2HeaderBytes ? StatusCode::kInvalidArgument
                                             : StatusCode::kCorruption)
        << "cut=" << cut << ": " << s.message();
  }
}

TEST(SnapshotCorruptionTest, PayloadBitFlipIsHashMismatch) {
  std::string bytes = BuildValidSnapshotBytes();
  // Flip one bit in the middle of the payload, hash left stale.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  Status s = LoadSnapshotBytes(bytes);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("hash"), std::string::npos) << s.message();
}

TEST(SnapshotCorruptionTest, WrongStoredHashIsCorruption) {
  std::string bytes = BuildValidSnapshotBytes();
  uint64_t bogus = 0xDEADBEEFCAFEF00Dull;
  std::memcpy(bytes.data() + 24, &bogus, sizeof(bogus));
  EXPECT_EQ(LoadSnapshotBytes(bytes).code(), StatusCode::kCorruption);
}

TEST(SnapshotCorruptionTest, HeaderFileSizeMismatchIsCorruption) {
  std::string bytes = BuildValidSnapshotBytes();
  uint64_t wrong_size = bytes.size() + 8;
  std::memcpy(bytes.data() + 16, &wrong_size, sizeof(wrong_size));
  EXPECT_EQ(LoadSnapshotBytes(bytes).code(), StatusCode::kCorruption);
}

TEST(SnapshotCorruptionTest, ImplausibleSectionCountIsCorruption) {
  for (uint32_t count : {0u, 1000u}) {
    std::string bytes = BuildValidSnapshotBytes();
    std::memcpy(bytes.data() + 12, &count, sizeof(count));
    EXPECT_EQ(LoadSnapshotBytes(bytes).code(), StatusCode::kCorruption)
        << "section_count=" << count;
  }
}

TEST(SnapshotCorruptionTest, MisalignedSectionOffsetIsCorruption) {
  std::string bytes = BuildValidSnapshotBytes();
  std::vector<RawSection> table = ReadSectionTable(bytes);
  ASSERT_FALSE(table.empty());
  uint64_t off = table[0].offset + 4;  // break 8-alignment
  std::memcpy(bytes.data() + table[0].entry_pos + 8, &off, sizeof(off));
  FixPayloadHash(&bytes);
  Status s = LoadSnapshotBytes(bytes);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("misaligned"), std::string::npos) << s.message();
}

TEST(SnapshotCorruptionTest, SectionBeyondFileEndIsCorruption) {
  std::string bytes = BuildValidSnapshotBytes();
  std::vector<RawSection> table = ReadSectionTable(bytes);
  ASSERT_FALSE(table.empty());
  uint64_t size = bytes.size();  // offset + file_size always overruns
  std::memcpy(bytes.data() + table[0].entry_pos + 16, &size, sizeof(size));
  FixPayloadHash(&bytes);
  Status s = LoadSnapshotBytes(bytes);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("bounds"), std::string::npos) << s.message();
}

TEST(SnapshotCorruptionTest, OverlappingSectionsAreCorruption) {
  std::string bytes = BuildValidSnapshotBytes();
  std::vector<RawSection> table = ReadSectionTable(bytes);
  ASSERT_GE(table.size(), 2u);
  // Point section 1 at section 0's bytes (same offset, both non-empty).
  std::memcpy(bytes.data() + table[1].entry_pos + 8, &table[0].offset, 8);
  FixPayloadHash(&bytes);
  Status s = LoadSnapshotBytes(bytes);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("overlap"), std::string::npos) << s.message();
}

TEST(SnapshotCorruptionTest, UnknownSectionTypeIsCorruption) {
  std::string bytes = BuildValidSnapshotBytes();
  std::vector<RawSection> table = ReadSectionTable(bytes);
  ASSERT_FALSE(table.empty());
  uint32_t type = 99;
  std::memcpy(bytes.data() + table[0].entry_pos, &type, sizeof(type));
  FixPayloadHash(&bytes);
  EXPECT_EQ(LoadSnapshotBytes(bytes).code(), StatusCode::kCorruption);
}

TEST(SnapshotCorruptionTest, DuplicateSectionTypeIsCorruption) {
  std::string bytes = BuildValidSnapshotBytes();
  std::vector<RawSection> table = ReadSectionTable(bytes);
  ASSERT_GE(table.size(), 2u);
  std::memcpy(bytes.data() + table[1].entry_pos, &table[0].type, 4);
  FixPayloadHash(&bytes);
  EXPECT_EQ(LoadSnapshotBytes(bytes).code(), StatusCode::kCorruption);
}

TEST(SnapshotCorruptionTest, GraphSectionImplausibleCountsAreCorruption) {
  std::string bytes = BuildValidSnapshotBytes();
  std::vector<RawSection> table = ReadSectionTable(bytes);
  const RawSection* graph_sec = nullptr;
  for (const RawSection& e : table) {
    if (e.type == 3) graph_sec = &e;  // kSecGraph
  }
  ASSERT_NE(graph_sec, nullptr);
  // Claim far more nodes than the section could hold; the hash is fixed so
  // the structural validation inside the graph decoder must catch it.
  uint64_t bogus_nodes = 0x0000FFFFFFFFFFFFull;
  std::memcpy(bytes.data() + graph_sec->offset, &bogus_nodes,
              sizeof(bogus_nodes));
  FixPayloadHash(&bytes);
  EXPECT_EQ(LoadSnapshotBytes(bytes).code(), StatusCode::kCorruption);
}

TEST(SnapshotCorruptionTest, GraphAdjacencyOutOfRangeIsCorruption) {
  std::string bytes = BuildValidSnapshotBytes();
  std::vector<RawSection> table = ReadSectionTable(bytes);
  const RawSection* graph_sec = nullptr;
  for (const RawSection& e : table) {
    if (e.type == 3) graph_sec = &e;
  }
  ASSERT_NE(graph_sec, nullptr);
  // Graph section layout: u64 n, u64 m, labels u32*n, pad, offsets, entries.
  uint64_t n = 0;
  std::memcpy(&n, bytes.data() + graph_sec->offset, 8);
  ASSERT_GT(n, 0u);
  // Overwrite the first node label with an id the dictionary cannot hold.
  uint32_t bogus_label = 0x7FFFFFFF;
  std::memcpy(bytes.data() + graph_sec->offset + 16, &bogus_label,
              sizeof(bogus_label));
  FixPayloadHash(&bytes);
  EXPECT_EQ(LoadSnapshotBytes(bytes).code(), StatusCode::kCorruption);
}

TEST(SnapshotCorruptionTest, StructuralMessagesAreDistinct) {
  // An operator debugging a bad snapshot must be able to tell the failure
  // modes apart, as with the text-format suite above.
  const std::string base = BuildValidSnapshotBytes();
  std::set<std::string> messages;
  auto collect = [&](std::string bytes, bool fix_hash) {
    if (fix_hash) FixPayloadHash(&bytes);
    Status s = LoadSnapshotBytes(bytes);
    EXPECT_FALSE(s.ok());
    messages.insert(std::string(s.message()));
  };
  {
    std::string b = base;
    b[0] = 'X';
    collect(b, false);
  }
  {
    std::string b = base;
    uint32_t v = 9;
    std::memcpy(b.data() + 8, &v, 4);
    collect(b, false);
  }
  collect(base.substr(0, base.size() / 2), false);
  {
    std::string b = base;
    b[b.size() / 2] = static_cast<char>(b[b.size() / 2] ^ 0x01);
    collect(b, false);
  }
  {
    std::string b = base;
    std::vector<RawSection> t = ReadSectionTable(b);
    uint64_t off = t[0].offset + 4;
    std::memcpy(b.data() + t[0].entry_pos + 8, &off, 8);
    collect(b, true);
  }
  {
    std::string b = base;
    std::vector<RawSection> t = ReadSectionTable(b);
    uint64_t sz = b.size();
    std::memcpy(b.data() + t[0].entry_pos + 16, &sz, 8);
    collect(b, true);
  }
  {
    std::string b = base;
    std::vector<RawSection> t = ReadSectionTable(b);
    std::memcpy(b.data() + t[1].entry_pos + 8, &t[0].offset, 8);
    collect(b, true);
  }
  EXPECT_GE(messages.size(), 7u);
}

}  // namespace
}  // namespace osq
