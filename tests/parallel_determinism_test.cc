// Determinism of the parallel pipelines: the spec for QueryOptions /
// IndexOptions::num_threads is that results are identical for every thread
// count (see DESIGN.md "Parallel execution").  These tests pin that down on
// a seeded end-to-end workload, a tie-heavy KMatchOnGraph workload (the
// hard case for the shared top-K pool), and parallel index builds.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/filtering.h"
#include "core/kmatch.h"
#include "core/ontology_index.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "graph/graph.h"

namespace osq {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4};

std::vector<Graph> MakeQueries(const gen::Dataset& ds, size_t count,
                               uint64_t seed) {
  Rng rng(seed);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  while (queries.size() < count) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }
  return queries;
}

TEST(ParallelDeterminismTest, EndToEndQueryMatchesAcrossThreadCounts) {
  gen::ScenarioParams p;
  p.scale = 1200;
  p.seed = 42;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  std::vector<Graph> queries = MakeQueries(ds, 5, 23);

  IndexOptions idx;
  idx.num_concept_graphs = 2;
  QueryEngine engine(std::move(ds.graph), std::move(ds.ontology), idx);

  // Reference: the sequential path.
  QueryOptions options;
  options.theta = 0.85;
  options.k = 8;
  std::vector<std::vector<Match>> reference;
  for (const Graph& q : queries) {
    QueryResult r = engine.Query(q, options);
    ASSERT_TRUE(r.status.ok());
    reference.push_back(std::move(r.matches));
  }

  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    // Two repeats per thread count: run-to-run determinism, not just
    // agreement with the sequential reference.
    for (int repeat = 0; repeat < 2; ++repeat) {
      for (size_t i = 0; i < queries.size(); ++i) {
        QueryResult r = engine.Query(queries[i], options);
        ASSERT_TRUE(r.status.ok());
        EXPECT_EQ(r.matches, reference[i])
            << "threads=" << threads << " repeat=" << repeat
            << " query=" << i;
      }
    }
  }
}

// Tie-heavy workload: many disjoint same-label edges, every candidate with
// the same similarity, K smaller than the number of full-score matches.
// Which boundary ties are kept is exploration-order dependent in general,
// so this is exactly where a timing-dependent implementation would diverge.
TEST(ParallelDeterminismTest, TieHeavyTopKIsThreadCountInvariant) {
  constexpr size_t kPairs = 12;
  Graph target;
  for (size_t i = 0; i < kPairs; ++i) {
    NodeId a = target.AddNode(/*label=*/1);
    NodeId b = target.AddNode(/*label=*/2);
    ASSERT_TRUE(target.AddEdge(a, b, /*label=*/7));
  }
  Graph query;
  NodeId u = query.AddNode(1);
  NodeId v = query.AddNode(2);
  ASSERT_TRUE(query.AddEdge(u, v, 7));

  std::vector<std::vector<Candidate>> candidates(2);
  for (size_t i = 0; i < kPairs; ++i) {
    candidates[0].push_back({static_cast<NodeId>(2 * i), 0.9});
    candidates[1].push_back({static_cast<NodeId>(2 * i + 1), 0.9});
  }

  QueryOptions options;
  options.theta = 0.5;
  options.k = 4;
  std::vector<Match> reference =
      KMatchOnGraph(query, target, candidates, options);
  ASSERT_EQ(reference.size(), 4u);

  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    for (int repeat = 0; repeat < 3; ++repeat) {
      std::vector<Match> got =
          KMatchOnGraph(query, target, candidates, options);
      EXPECT_EQ(got, reference)
          << "threads=" << threads << " repeat=" << repeat;
    }
  }
}

// k == 0 ("all matches") exercises the append-only commit path.
TEST(ParallelDeterminismTest, AllMatchesModeIsThreadCountInvariant) {
  gen::ScenarioParams p;
  p.scale = 600;
  p.seed = 5;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  std::vector<Graph> queries = MakeQueries(ds, 3, 77);

  IndexOptions idx;
  idx.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(ds.graph, ds.ontology, idx);

  QueryOptions options;
  options.theta = 0.9;
  options.k = 0;
  for (const Graph& q : queries) {
    FilterResult filter = GviewFilter(index, q, options);
    std::vector<Match> reference = KMatch(q, filter, options);
    for (size_t threads : kThreadCounts) {
      options.num_threads = threads;
      EXPECT_EQ(KMatch(q, filter, options), reference)
          << "threads=" << threads;
    }
    options.num_threads = 1;
  }
}

TEST(ParallelDeterminismTest, IndexBuildIsThreadCountInvariant) {
  gen::ScenarioParams p;
  p.scale = 800;
  p.seed = 9;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  std::vector<Graph> queries = MakeQueries(ds, 3, 31);

  IndexOptions idx;
  idx.num_concept_graphs = 3;
  IndexBuildStats ref_stats;
  OntologyIndex reference =
      OntologyIndex::Build(ds.graph, ds.ontology, idx, &ref_stats);
  ASSERT_TRUE(reference.Validate());

  QueryOptions options;
  options.theta = 0.85;
  options.k = 6;
  std::vector<std::vector<Match>> ref_matches;
  for (const Graph& q : queries) {
    FilterResult filter = GviewFilter(reference, q, options);
    ref_matches.push_back(KMatch(q, filter, options));
  }

  for (size_t threads : kThreadCounts) {
    idx.num_threads = threads;
    IndexBuildStats stats;
    OntologyIndex index =
        OntologyIndex::Build(ds.graph, ds.ontology, idx, &stats);
    ASSERT_TRUE(index.Validate());
    EXPECT_EQ(index.TotalSize(), reference.TotalSize())
        << "threads=" << threads;
    EXPECT_EQ(stats.total_blocks, ref_stats.total_blocks);
    EXPECT_EQ(stats.total_splits, ref_stats.total_splits);
    // The index is defined by what it answers: filter + verify must agree
    // with the sequentially built index on every query.
    for (size_t i = 0; i < queries.size(); ++i) {
      FilterResult filter = GviewFilter(index, queries[i], options);
      EXPECT_EQ(KMatch(queries[i], filter, options), ref_matches[i])
          << "threads=" << threads << " query=" << i;
    }
  }
}

}  // namespace
}  // namespace osq
