#include "graph/graph.h"

#include <gtest/gtest.h>

namespace osq {
namespace {

TEST(GraphTest, StartsEmpty) {
  Graph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, AddNodeAssignsDenseIds) {
  Graph g;
  EXPECT_EQ(g.AddNode(10), 0u);
  EXPECT_EQ(g.AddNode(20), 1u);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.NodeLabel(0), 10u);
  EXPECT_EQ(g.NodeLabel(1), 20u);
}

TEST(GraphTest, AddNodesBulk) {
  Graph g;
  NodeId first = g.AddNodes(5, 7);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(g.num_nodes(), 5u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.NodeLabel(v), 7u);
  }
  EXPECT_EQ(g.AddNodes(3, 9), 5u);
  EXPECT_EQ(g.num_nodes(), 8u);
}

TEST(GraphTest, SetNodeLabel) {
  Graph g;
  g.AddNode(1);
  g.SetNodeLabel(0, 99);
  EXPECT_EQ(g.NodeLabel(0), 99u);
}

TEST(GraphTest, AddEdgeBasics) {
  Graph g;
  g.AddNodes(3, 0);
  EXPECT_TRUE(g.AddEdge(0, 1, 5));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1, 5));
  EXPECT_FALSE(g.HasEdge(1, 0, 5));  // directed
  EXPECT_FALSE(g.HasEdge(0, 1, 6));  // label matters
}

TEST(GraphTest, DuplicateEdgeRejected) {
  Graph g;
  g.AddNodes(2, 0);
  EXPECT_TRUE(g.AddEdge(0, 1, 5));
  EXPECT_FALSE(g.AddEdge(0, 1, 5));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, ParallelEdgesWithDistinctLabels) {
  Graph g;
  g.AddNodes(2, 0);
  EXPECT_TRUE(g.AddEdge(0, 1, 5));
  EXPECT_TRUE(g.AddEdge(0, 1, 6));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdgeAnyLabel(0, 1));
  EXPECT_EQ(g.EdgeLabelsBetween(0, 1), (std::vector<LabelId>{5, 6}));
}

TEST(GraphTest, SelfLoopAllowed) {
  Graph g;
  g.AddNode(0);
  EXPECT_TRUE(g.AddEdge(0, 0, 1));
  EXPECT_TRUE(g.HasEdge(0, 0, 1));
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
}

TEST(GraphTest, RemoveEdge) {
  Graph g;
  g.AddNodes(2, 0);
  g.AddEdge(0, 1, 5);
  EXPECT_TRUE(g.RemoveEdge(0, 1, 5));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.HasEdge(0, 1, 5));
  EXPECT_FALSE(g.RemoveEdge(0, 1, 5));  // already gone
}

TEST(GraphTest, RemoveOneOfParallelEdges) {
  Graph g;
  g.AddNodes(2, 0);
  g.AddEdge(0, 1, 5);
  g.AddEdge(0, 1, 6);
  EXPECT_TRUE(g.RemoveEdge(0, 1, 5));
  EXPECT_FALSE(g.HasEdge(0, 1, 5));
  EXPECT_TRUE(g.HasEdge(0, 1, 6));
  EXPECT_TRUE(g.HasEdgeAnyLabel(0, 1));
}

TEST(GraphTest, AdjacencySortedAndMirrored) {
  Graph g;
  g.AddNodes(4, 0);
  g.AddEdge(0, 3, 1);
  g.AddEdge(0, 1, 2);
  g.AddEdge(0, 2, 1);
  const auto& out = g.OutEdges(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].node, 1u);
  EXPECT_EQ(out[1].node, 2u);
  EXPECT_EQ(out[2].node, 3u);
  EXPECT_EQ(g.InEdges(3).size(), 1u);
  EXPECT_EQ(g.InEdges(3)[0].node, 0u);
  EXPECT_TRUE(g.CheckConsistency());
}

TEST(GraphTest, DegreeAccounting) {
  Graph g;
  g.AddNodes(3, 0);
  g.AddEdge(0, 1, 0);
  g.AddEdge(0, 2, 0);
  g.AddEdge(2, 0, 0);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
  EXPECT_EQ(g.Degree(0), 3u);
}

TEST(GraphTest, EdgeListComplete) {
  Graph g;
  g.AddNodes(3, 0);
  g.AddEdge(1, 2, 7);
  g.AddEdge(0, 1, 3);
  std::vector<EdgeTriple> edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (EdgeTriple{0, 1, 3}));
  EXPECT_EQ(edges[1], (EdgeTriple{1, 2, 7}));
}

TEST(GraphTest, EdgeLabelsBetweenMissingPair) {
  Graph g;
  g.AddNodes(2, 0);
  EXPECT_TRUE(g.EdgeLabelsBetween(0, 1).empty());
}

TEST(GraphTest, CopyIsDeep) {
  Graph g;
  g.AddNodes(2, 0);
  g.AddEdge(0, 1, 1);
  Graph copy = g;
  copy.AddEdge(1, 0, 1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(copy.num_edges(), 2u);
}

TEST(GraphTest, ConsistencyAfterManyMutations) {
  Graph g;
  g.AddNodes(10, 0);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      if (u != v) g.AddEdge(u, v, (u + v) % 3);
    }
  }
  EXPECT_TRUE(g.CheckConsistency());
  for (NodeId u = 0; u < 10; u += 2) {
    for (NodeId v = 1; v < 10; v += 2) {
      g.RemoveEdge(u, v, (u + v) % 3);
    }
  }
  EXPECT_TRUE(g.CheckConsistency());
}

}  // namespace
}  // namespace osq
