// Differential shard-oracle suite (DESIGN.md §13): the sharded serving
// tier must be BIT-IDENTICAL to a single QueryEngine over the whole
// graph, for every shard count and both partitioning policies.  Drive
// generated queries against shardings N in {1,2,3,7} x {hash,range} and
// assert exact vector<Match> equality (mappings AND scores) versus a
// fresh oracle; then push a randomized insert/delete/add-node stream
// through every service in lockstep with a twin graph and re-assert
// against an oracle rebuilt from the twin.  A deadline-degraded pass
// checks partial results are subsets and never cached; a cache pass
// checks hits reproduce the miss result.  Labeled `slow`.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "graph/graph.h"
#include "shard/sharded_query_service.h"

namespace osq {
namespace {

std::vector<Graph> MakeWorkload(const gen::Dataset& ds, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  size_t attempts = 0;
  while (queries.size() < count && ++attempts < count * 20) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<LabelId> EdgeLabelUniverse(const Graph& g) {
  std::set<LabelId> labels;
  for (const EdgeTriple& e : g.EdgeList()) labels.insert(e.label);
  return {labels.begin(), labels.end()};
}

enum class Scenario { kCrossDomain, kCommunity };

void RunDifferential(uint64_t seed,
                     Scenario scenario = Scenario::kCrossDomain) {
  gen::ScenarioParams p;
  p.scale = 300;
  p.seed = seed;
  gen::Dataset ds = scenario == Scenario::kCrossDomain
                        ? gen::MakeCrossDomainLike(p)
                        : gen::MakeCommunityLike(p);
  std::vector<Graph> queries = MakeWorkload(ds, 4, seed * 31 + 1);
  ASSERT_FALSE(queries.empty());

  IndexOptions idx;
  QueryOptions qo;
  qo.theta = 0.85;
  qo.k = 8;

  // Every shard count / policy combination under test, all sharing the
  // same halo radius (>= the max pivot eccentricity of 4-node queries).
  std::vector<std::unique_ptr<ShardedQueryService>> services;
  std::vector<std::string> names;
  for (ShardPolicy policy : {ShardPolicy::kHash, ShardPolicy::kRange}) {
    for (size_t n : {1u, 2u, 3u, 7u}) {
      ShardOptions so;
      so.num_shards = n;
      so.policy = policy;
      so.halo_radius = 3;
      services.push_back(std::make_unique<ShardedQueryService>(
          ds.graph, ds.ontology, idx, so));
      names.push_back(
          (policy == ShardPolicy::kHash ? "hash/" : "range/") +
          std::to_string(n));
    }
  }

  Graph twin = ds.graph;
  auto check_all = [&](const char* phase) {
    QueryEngine oracle(twin, ds.ontology, idx);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      QueryResult expected = oracle.Query(queries[qi], qo);
      for (size_t si = 0; si < services.size(); ++si) {
        ShardedServedResult served = services[si]->Query(queries[qi], qo);
        ASSERT_EQ(served.result.status.code(), expected.status.code())
            << phase << " seed " << seed << " query " << qi << " "
            << names[si];
        if (!expected.status.ok()) continue;
        ASSERT_TRUE(served.result.complete())
            << phase << " seed " << seed << " query " << qi << " "
            << names[si];
        // Match has defaulted equality: mappings and bitwise scores.
        ASSERT_EQ(served.result.matches, expected.matches)
            << phase << " seed " << seed << " query " << qi << " "
            << names[si];
      }
    }
  };

  check_all("initial");

  // Cache pass: the same query again must hit and reproduce the result.
  {
    ShardedServedResult miss = services[1]->Query(queries[0], qo);
    ShardedServedResult hit = services[1]->Query(queries[0], qo);
    if (miss.result.status.ok()) {
      EXPECT_TRUE(hit.cache_hit);
      EXPECT_EQ(hit.result.matches, miss.result.matches);
    }
  }

  // Deadline-degraded pass: with an (effectively expired) deadline every
  // returned match is still valid — a subset of the full answer — and
  // the partial result is never cached.
  {
    QueryOptions full = qo;
    full.k = 0;
    QueryEngine oracle(twin, ds.ontology, idx);
    QueryResult all = oracle.Query(queries[0], full);
    QueryOptions tight = qo;
    tight.deadline_ms = 1e-4;
    for (size_t si = 0; si < services.size(); ++si) {
      size_t cached_before = services[si]->cache_size();
      ShardedServedResult served = services[si]->Query(queries[0], tight);
      if (!served.result.status.ok()) continue;
      for (const Match& m : served.result.matches) {
        EXPECT_NE(std::find(all.matches.begin(), all.matches.end(), m),
                  all.matches.end())
            << "degraded result invented a match, " << names[si];
      }
      if (!served.result.complete()) {
        EXPECT_EQ(services[si]->cache_size(), cached_before)
            << "partial result cached, " << names[si];
      }
    }
  }

  // Update stream: identical mutations to the twin and every service.
  constexpr size_t kSteps = 30;
  Rng rng(seed * 977 + 5);
  std::vector<LabelId> labels = EdgeLabelUniverse(twin);
  ASSERT_FALSE(labels.empty());
  size_t applied_total = 0;
  for (size_t step = 1; step <= kSteps; ++step) {
    if (step % 11 == 0) {
      LabelId label = twin.NodeLabel(
          static_cast<NodeId>(rng.Index(twin.num_nodes())));
      NodeId twin_id = twin.AddNode(label);
      for (size_t si = 0; si < services.size(); ++si) {
        ASSERT_EQ(services[si]->AddNode(label), twin_id)
            << "step " << step << " " << names[si];
      }
      continue;
    }
    GraphUpdate update;
    if (rng.Bernoulli(0.5) && twin.num_edges() > 0) {
      std::vector<EdgeTriple> edges = twin.EdgeList();
      EdgeTriple e = edges[rng.Index(edges.size())];
      update = GraphUpdate::Delete(e.from, e.to, e.label);
    } else {
      NodeId u = static_cast<NodeId>(rng.Index(twin.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.Index(twin.num_nodes()));
      if (u == v) continue;
      update = GraphUpdate::Insert(u, v, labels[rng.Index(labels.size())]);
    }
    bool twin_applied =
        update.kind == GraphUpdate::Kind::kInsertEdge
            ? twin.AddEdge(update.edge.from, update.edge.to,
                           update.edge.label)
            : twin.RemoveEdge(update.edge.from, update.edge.to,
                              update.edge.label);
    for (size_t si = 0; si < services.size(); ++si) {
      ASSERT_EQ(services[si]->ApplyUpdate(update), twin_applied)
          << "step " << step << " " << names[si];
    }
    if (twin_applied) ++applied_total;
  }
  ASSERT_GT(applied_total, kSteps / 4);

  check_all("post-stream");
}

TEST(ShardDifferentialTest, OracleEquivalenceSeedA) { RunDifferential(11); }

TEST(ShardDifferentialTest, OracleEquivalenceSeedB) { RunDifferential(29); }

TEST(ShardDifferentialTest, OracleEquivalenceSeedC) { RunDifferential(83); }

// The locality-structured dataset the sharded benchmark partitions by
// range (thin halos, community-aligned shard boundaries) must satisfy the
// same bit-identity contract — including after the update stream breaks
// the pristine community structure.
TEST(ShardDifferentialTest, OracleEquivalenceCommunity) {
  RunDifferential(47, Scenario::kCommunity);
}

}  // namespace
}  // namespace osq
