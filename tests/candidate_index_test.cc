#include "core/candidate_index.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "core/filtering.h"
#include "core/index_maintenance.h"
#include "core/kmatch.h"
#include "core/ontology_index.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "graph/graph.h"
#include "test_util.h"

namespace osq {
namespace {

OntologyIndex BuildTravelIndex(const test::TravelFixture& f) {
  IndexOptions options;
  options.beta = 0.81;
  options.num_concept_graphs = 2;
  return OntologyIndex::Build(f.g, f.o, options);
}

// Independent oracle for one node's signature, straight from the graph.
NodeSignature OracleSignature(const Graph& g, NodeId v) {
  NodeSignature sig;
  std::map<LabelId, uint32_t> out_deg;
  std::map<LabelId, uint32_t> in_deg;
  for (const AdjEntry& e : g.OutEdges(v)) {
    sig.out_bits |= uint64_t{1}
                    << CandidateIndex::PairBit(e.label, g.NodeLabel(e.node));
    ++out_deg[e.label];
  }
  for (const AdjEntry& e : g.InEdges(v)) {
    sig.in_bits |= uint64_t{1}
                   << CandidateIndex::PairBit(e.label, g.NodeLabel(e.node));
    ++in_deg[e.label];
  }
  sig.out_counts.assign(out_deg.begin(), out_deg.end());
  sig.in_counts.assign(in_deg.begin(), in_deg.end());
  return sig;
}

TEST(CandidateIndexTest, NodeSignaturesMatchAdjacency) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  const CandidateIndex& ci = index.candidate_index();
  ASSERT_EQ(ci.num_nodes(), f.g.num_nodes());
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    EXPECT_EQ(ci.node_signature(v), OracleSignature(f.g, v)) << "node " << v;
  }
}

TEST(CandidateIndexTest, BlockSignaturesAggregateMembers) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  const CandidateIndex& ci = index.candidate_index();
  ASSERT_EQ(ci.num_graphs(), index.num_concept_graphs());
  for (size_t i = 0; i < index.num_concept_graphs(); ++i) {
    const ConceptGraph& cg = index.concept_graph(i);
    std::map<LabelId, std::vector<BlockId>> inverted;
    for (BlockId b : cg.AliveBlocks()) {
      const BlockSignature& bs = ci.block_signature(i, b);
      uint64_t out_bits = 0;
      uint64_t in_bits = 0;
      std::set<LabelId> labels;
      for (NodeId v : cg.Members(b)) {
        const NodeSignature& ns = ci.node_signature(v);
        out_bits |= ns.out_bits;
        in_bits |= ns.in_bits;
        labels.insert(f.g.NodeLabel(v));
        // Per-label max must dominate every member's per-label count.
        EXPECT_TRUE(SignatureCountsDominate(bs.max_out_counts, ns.out_counts));
        EXPECT_TRUE(SignatureCountsDominate(bs.max_in_counts, ns.in_counts));
      }
      EXPECT_EQ(bs.out_bits, out_bits);
      EXPECT_EQ(bs.in_bits, in_bits);
      EXPECT_EQ(bs.member_labels,
                std::vector<LabelId>(labels.begin(), labels.end()));
      for (LabelId l : bs.member_labels) inverted[l].push_back(b);
    }
    for (const auto& [label, blocks] : inverted) {
      EXPECT_EQ(ci.BlocksWithMemberLabel(i, label), blocks);
    }
    EXPECT_TRUE(ci.BlocksWithMemberLabel(i, 999999).empty());
  }
}

TEST(CandidateIndexTest, RequirementAcceptsMatchesRejectsImpossible) {
  test::TravelFixture f = test::MakeTravelFixture();
  OntologyIndex index = BuildTravelIndex(f);
  const CandidateIndex& ci = index.candidate_index();

  // Exact label-sims tables at theta = 0.9 for the travel query.
  std::vector<std::unordered_map<LabelId, double>> sims(f.query.num_nodes());
  const SimilarityFunction& sim = index.sim();
  for (NodeId u = 0; u < f.query.num_nodes(); ++u) {
    for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
      double s =
          sim.Similarity(f.o, f.query.NodeLabel(u), f.g.NodeLabel(v), 0.9);
      if (s > 0.0) sims[u].emplace(f.g.NodeLabel(v), s);
    }
  }
  // The known match nodes (Example IV.3) must pass their query node's
  // requirement — signature tests are necessary conditions.
  EXPECT_TRUE(ci.NodePasses(
      f.rg, BuildSignatureRequirement(f.query, f.q_museum, sims)));
  EXPECT_TRUE(ci.NodePasses(
      f.ct, BuildSignatureRequirement(f.query, f.q_tourists, sims)));
  EXPECT_TRUE(ci.NodePasses(
      f.starlight, BuildSignatureRequirement(f.query, f.q_moonlight, sims)));

  // An impossible degree demand rejects everyone.
  SignatureRequirement impossible;
  impossible.out_counts.push_back({0, 1000});
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    EXPECT_FALSE(ci.NodePasses(v, impossible));
  }
}

// Heap-allocated so the index's borrowed graph/ontology pointers stay
// valid (moving the Dataset would relocate the graphs under the index).
struct SmallWorld {
  gen::Dataset ds;
  std::unique_ptr<OntologyIndex> index;
  std::vector<Graph> queries;
};

std::unique_ptr<SmallWorld> MakeSmallWorld(uint64_t seed) {
  auto w = std::make_unique<SmallWorld>();
  gen::ScenarioParams p;
  p.scale = 500;
  p.seed = seed;
  w->ds = gen::MakeCrossDomainLike(p);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  w->index = std::make_unique<OntologyIndex>(
      OntologyIndex::Build(w->ds.graph, w->ds.ontology, idx));
  Rng rng(seed + 7);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  size_t attempts = 0;
  while (w->queries.size() < 6 && ++attempts < 200) {
    Graph q = gen::ExtractQuery(w->ds.graph, w->ds.ontology, qp, &rng);
    if (!q.empty()) w->queries.push_back(std::move(q));
  }
  return w;
}

std::set<NodeId> CandidateOriginals(const FilterResult& r, NodeId q) {
  std::set<NodeId> out;
  for (const Candidate& c : r.candidates[q]) {
    out.insert(r.gv.to_original[c.node]);
  }
  return out;
}

TEST(CandidateIndexTest, FilterWithIndexIsLossless) {
  std::unique_ptr<SmallWorld> w = MakeSmallWorld(19);
  ASSERT_FALSE(w->queries.empty());
  for (const Graph& q : w->queries) {
    QueryOptions on;
    on.theta = 0.85;
    on.k = 0;  // all matches — strongest equality check
    QueryOptions off = on;
    off.use_candidate_index = false;

    FilterResult r_on = GviewFilter(*w->index, q, on);
    FilterResult r_off = GviewFilter(*w->index, q, off);
    // Index-off must never run the signature tests.
    EXPECT_EQ(r_off.stats.sig_block_rejections, 0u);
    EXPECT_EQ(r_off.stats.sig_node_rejections, 0u);

    // Candidate sets with the index on are subsets of the index-off ones.
    if (!r_on.no_match && !r_off.no_match) {
      for (NodeId u = 0; u < q.num_nodes(); ++u) {
        std::set<NodeId> s_on = CandidateOriginals(r_on, u);
        std::set<NodeId> s_off = CandidateOriginals(r_off, u);
        EXPECT_TRUE(std::includes(s_off.begin(), s_off.end(), s_on.begin(),
                                  s_on.end()));
      }
    }

    // Returned matches are bit-identical.  KMatch already reports
    // mappings in original node ids, so Match compares directly.
    std::vector<Match> m_on =
        r_on.no_match ? std::vector<Match>{} : KMatch(q, r_on, on);
    std::vector<Match> m_off =
        r_off.no_match ? std::vector<Match>{} : KMatch(q, r_off, off);
    ASSERT_EQ(m_on.size(), m_off.size());
    for (size_t m = 0; m < m_on.size(); ++m) {
      EXPECT_EQ(m_on[m].mapping, m_off[m].mapping) << "match " << m;
      EXPECT_DOUBLE_EQ(m_on[m].score, m_off[m].score) << "match " << m;
    }
  }
}

TEST(CandidateIndexTest, NodeLevelRejectionFiresOnDegreeDemand) {
  // Refinement signatures are *set*-based (which blocks a node reaches per
  // edge label), but NodePasses also checks per-edge-label *counts*.  Two
  // nodes with identical refinement signatures and different out-degrees
  // therefore share a block — and a query demanding the higher degree must
  // reject the lower-degree member at the node level, not the block level.
  LabelDictionary dict;
  const LabelId person = dict.Intern("person");
  const LabelId museum = dict.Intern("museum");
  const LabelId cafe = dict.Intern("cafe");
  const LabelId likes = dict.Intern("likes");

  Graph g;
  g.AddNode(person);  // 0: two likes-edges — satisfies the query demand
  g.AddNode(person);  // 1: one likes-edge — node-level rejection target
  g.AddNode(museum);  // 2
  g.AddNode(museum);  // 3
  g.AddNode(cafe);    // 4
  g.AddEdge(0, 2, likes);
  g.AddEdge(0, 3, likes);
  g.AddEdge(1, 4, likes);

  // museum—cafe related: with one cluster they collapse into one concept,
  // so nodes 2/3/4 share a block and nodes 0/1 get identical refinement
  // signatures {(venue-block, likes)}.
  OntologyGraph o;
  o.AddRelation(museum, cafe);

  IndexOptions idx;
  idx.num_concept_graphs = 1;
  idx.num_clusters = 1;
  OntologyIndex index = OntologyIndex::Build(g, o, idx);
  const ConceptGraph& cg = index.concept_graph(0);
  ASSERT_EQ(cg.BlockOf(0), cg.BlockOf(1))
      << "fixture invariant: equal refinement signatures share a block";

  // theta = 0.95 keeps cafe (sim 0.9) out of the museum candidate sets.
  Graph q;
  q.AddNode(person);
  q.AddNode(museum);
  q.AddNode(museum);
  q.AddEdge(0, 1, likes);
  q.AddEdge(0, 2, likes);

  QueryOptions on;
  on.theta = 0.95;
  on.k = 0;
  FilterResult r_on = GviewFilter(index, q, on);
  ASSERT_FALSE(r_on.no_match);
  EXPECT_GT(r_on.stats.sig_node_rejections, 0u);

  // The rejection is a pure short-circuit: results match the index-off run.
  QueryOptions off = on;
  off.use_candidate_index = false;
  FilterResult r_off = GviewFilter(index, q, off);
  ASSERT_FALSE(r_off.no_match);
  for (NodeId u = 0; u < q.num_nodes(); ++u) {
    EXPECT_EQ(CandidateOriginals(r_on, u), CandidateOriginals(r_off, u));
  }
  std::vector<Match> m_on = KMatch(q, r_on, on);
  std::vector<Match> m_off = KMatch(q, r_off, off);
  ASSERT_EQ(m_on.size(), m_off.size());
  ASSERT_FALSE(m_on.empty());
  for (size_t m = 0; m < m_on.size(); ++m) {
    EXPECT_EQ(m_on[m].mapping, m_off[m].mapping);
  }
}

TEST(CandidateIndexTest, MaintainedIndexEqualsRebuild) {
  std::unique_ptr<SmallWorld> w = MakeSmallWorld(29);
  Graph& g = w->ds.graph;
  Rng rng(31);
  std::set<LabelId> edge_labels;
  for (const EdgeTriple& e : g.EdgeList()) edge_labels.insert(e.label);
  std::vector<LabelId> labels(edge_labels.begin(), edge_labels.end());
  ASSERT_FALSE(labels.empty());

  size_t applied = 0;
  for (size_t step = 0; step < 30; ++step) {
    if (step % 11 == 10) {
      LabelId label =
          g.NodeLabel(static_cast<NodeId>(rng.Index(g.num_nodes())));
      AddNodeWithIndex(&g, w->index.get(), label);
      ++applied;
      continue;
    }
    GraphUpdate update;
    if (rng.Bernoulli(0.5) && g.num_edges() > 0) {
      std::vector<EdgeTriple> edges = g.EdgeList();
      EdgeTriple e = edges[rng.Index(edges.size())];
      update = GraphUpdate::Delete(e.from, e.to, e.label);
    } else {
      NodeId u = static_cast<NodeId>(rng.Index(g.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.Index(g.num_nodes()));
      if (u == v) continue;
      update = GraphUpdate::Insert(u, v, labels[rng.Index(labels.size())]);
    }
    if (ApplyUpdate(&g, w->index.get(), update)) ++applied;
  }
  ASSERT_GT(applied, 5u);

  // The incrementally maintained candidate index must be structurally
  // identical to one rebuilt from scratch over the same (mutated) graph
  // and the same (repaired) partitions — every vector is canonically
  // sorted, so equality is exact, not modulo ordering.
  CandidateIndex fresh =
      CandidateIndex::Build(g, w->index->concept_graphs(), /*num_threads=*/1);
  EXPECT_TRUE(w->index->candidate_index() == fresh);
}

}  // namespace
}  // namespace osq
