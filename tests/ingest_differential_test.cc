// Ingest differential oracle (DESIGN.md §14): the ONLINE write path —
// churn stream -> IngestPipeline -> serving tier, applied in batches
// while reader threads serve traffic — must land the exact same graph
// state as an OFFLINE batch rebuild, for both the single-engine service
// and the sharded coordinator.  After the stream drains, every workload
// query answered by the live service is compared for exact vector<Match>
// equality against a fresh oracle engine built over an offline replay of
// the full update history.  Three seeds; scripts/tier1.sh repeats this
// binary under ThreadSanitizer, making it the ingest stress stage (gate +
// snapshot lock + pipeline queue under real contention).  Labeled `slow`.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/query_engine.h"
#include "gen/churn.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "graph/graph.h"
#include "ingest/ingest_pipeline.h"
#include "ingest/update_sink.h"
#include "serve/query_service.h"
#include "shard/sharded_query_service.h"

namespace osq {
namespace {

constexpr size_t kChunks = 20;
constexpr size_t kStepsPerChunk = 10;
constexpr size_t kReaders = 2;
constexpr size_t kReaderFloor = 20;

std::vector<Graph> MakeQueries(const gen::Dataset& ds, size_t count,
                               uint64_t seed) {
  Rng rng(seed);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  size_t attempts = 0;
  while (queries.size() < count && ++attempts < count * 20) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }
  return queries;
}

// Drives the churn stream through `pipeline` from one thread while
// `query` closures run closed-loop from kReaders others; returns after
// the pipeline drained.  `query` must be safe to call concurrently.
template <typename QueryFn>
void RunUnderLoad(gen::ChurnStream* churn, IngestPipeline* pipeline,
                  QueryFn&& query) {
  std::atomic<bool> done{false};
  RunConcurrently(kReaders + 1, [&](size_t tid) {
    if (tid == 0) {
      for (size_t chunk = 0; chunk < kChunks; ++chunk) {
        for (const GraphUpdate& update : churn->Next(kStepsPerChunk)) {
          // Backpressure shows up as a rejected Submit; the producer's
          // contract is to retry, not to drop the update.
          while (!pipeline->Submit(update)) {
            std::this_thread::yield();
          }
        }
        std::this_thread::yield();
      }
      pipeline->Flush();
      done.store(true, std::memory_order_release);
      return;
    }
    size_t iterations = 0;
    while (!done.load(std::memory_order_acquire) ||
           iterations < kReaderFloor) {
      query(iterations);
      ++iterations;
    }
  });
  pipeline->Stop();
}

// Offline batch replay: the same history through plain graph mutations
// with identical skip semantics.
Graph ReplayHistory(const Graph& seed,
                    const std::vector<GraphUpdate>& history) {
  Graph replay = seed;
  for (const GraphUpdate& u : history) {
    if (u.kind == GraphUpdate::Kind::kInsertEdge) {
      (void)replay.AddEdge(u.edge.from, u.edge.to, u.edge.label);
    } else {
      (void)replay.RemoveEdge(u.edge.from, u.edge.to, u.edge.label);
    }
  }
  return replay;
}

void CheckServeInvariants(const ServeStats& stats) {
  EXPECT_EQ(stats.queries, stats.cache_hits + stats.cache_misses);
  EXPECT_EQ(stats.total_requests(), stats.queries + stats.shed);
  EXPECT_EQ(stats.queries, stats.hit_latency.count +
                               stats.miss_latency.count +
                               stats.degraded_latency.count);
}

void CheckIngestDrained(const IngestStats& stats) {
  EXPECT_EQ(stats.backlog, 0u);
  // Submissions partition exactly: accepted into the queue, coalesced
  // into an earlier pending update, or rejected by backpressure (the
  // producer retried each rejection until the submit landed, so
  // rejections cost retries but never lose updates).
  EXPECT_EQ(stats.submitted,
            stats.accepted + stats.coalesced + stats.rejected);
  // Every accepted update reached the sink exactly once.
  EXPECT_EQ(stats.accepted, stats.applied + stats.skipped);
  EXPECT_GE(stats.coalescing_ratio(), 1.0);
}

void RunSingleEngineDifferential(uint64_t seed) {
  gen::ScenarioParams p;
  p.scale = 300;
  p.seed = seed;
  gen::Dataset ds = gen::MakeFlickrLike(p);
  std::vector<Graph> queries = MakeQueries(ds, 4, seed * 31 + 1);
  ASSERT_FALSE(queries.empty());

  IndexOptions idx;
  QueryOptions qo;
  qo.theta = 0.85;
  qo.k = 8;

  QueryService service(QueryEngine(ds.graph, ds.ontology, idx),
                       ServeOptions{});
  QueryServiceSink sink(&service);
  IngestOptions io;
  io.max_batch = 16;
  io.max_linger_ms = 1.0;
  io.max_pending = 64;  // small bound so backpressure actually exercises
  IngestPipeline pipeline(&sink, io);

  gen::ChurnParams cp;
  cp.seed = seed * 131 + 7;
  gen::ChurnStream churn(ds.graph, cp);

  RunUnderLoad(&churn, &pipeline, [&](size_t it) {
    ServedResult served = service.Query(queries[it % queries.size()], qo);
    ASSERT_TRUE(served.result.status.ok());
  });

  // Oracle: offline batch rebuild over the full history.
  Graph replay = ReplayHistory(ds.graph, churn.history());
  QueryEngine oracle(replay, ds.ontology, idx);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    QueryResult expected = oracle.Query(queries[qi], qo);
    ServedResult served = service.Query(queries[qi], qo);
    ASSERT_EQ(served.result.status.code(), expected.status.code())
        << "seed " << seed << " query " << qi;
    if (!expected.status.ok()) continue;
    ASSERT_TRUE(served.result.complete()) << "seed " << seed;
    ASSERT_EQ(served.result.matches, expected.matches)
        << "seed " << seed << " query " << qi;
  }

  EXPECT_TRUE(service.engine_unsynchronized().index().Validate());
  CheckServeInvariants(service.Stats());
  CheckIngestDrained(pipeline.Stats());
}

void RunShardedDifferential(uint64_t seed) {
  gen::ScenarioParams p;
  p.scale = 300;
  p.seed = seed;
  gen::Dataset ds = gen::MakeFlickrLike(p);
  std::vector<Graph> queries = MakeQueries(ds, 4, seed * 31 + 1);
  ASSERT_FALSE(queries.empty());

  IndexOptions idx;
  QueryOptions qo;
  qo.theta = 0.85;
  qo.k = 8;

  ShardOptions so;
  so.num_shards = 3;
  so.halo_radius = 3;
  ShardedQueryService service(ds.graph, ds.ontology, idx, so);
  ShardedServiceSink sink(&service);
  IngestOptions io;
  io.max_batch = 16;
  io.max_linger_ms = 1.0;
  io.max_pending = 64;
  IngestPipeline pipeline(&sink, io);

  gen::ChurnParams cp;
  cp.seed = seed * 131 + 7;
  gen::ChurnStream churn(ds.graph, cp);

  RunUnderLoad(&churn, &pipeline, [&](size_t it) {
    ShardedServedResult served =
        service.Query(queries[it % queries.size()], qo);
    ASSERT_TRUE(served.result.status.ok());
  });

  Graph replay = ReplayHistory(ds.graph, churn.history());
  QueryEngine oracle(replay, ds.ontology, idx);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    QueryResult expected = oracle.Query(queries[qi], qo);
    ShardedServedResult served = service.Query(queries[qi], qo);
    ASSERT_EQ(served.result.status.code(), expected.status.code())
        << "seed " << seed << " query " << qi;
    if (!expected.status.ok()) continue;
    ASSERT_TRUE(served.result.complete()) << "seed " << seed;
    ASSERT_EQ(served.result.matches, expected.matches)
        << "seed " << seed << " query " << qi;
  }

  CheckServeInvariants(service.Stats());
  CheckIngestDrained(pipeline.Stats());
}

TEST(IngestDifferentialTest, SingleEngineSeedA) {
  RunSingleEngineDifferential(3);
}

TEST(IngestDifferentialTest, SingleEngineSeedB) {
  RunSingleEngineDifferential(19);
}

TEST(IngestDifferentialTest, SingleEngineSeedC) {
  RunSingleEngineDifferential(59);
}

TEST(IngestDifferentialTest, ShardedSeedA) { RunShardedDifferential(3); }

TEST(IngestDifferentialTest, ShardedSeedB) { RunShardedDifferential(19); }

TEST(IngestDifferentialTest, ShardedSeedC) { RunShardedDifferential(59); }

}  // namespace
}  // namespace osq
