#include "core/diversify.h"

#include <gtest/gtest.h>
#include "core/ontology_index.h"
#include "core/filtering.h"
#include "core/kmatch.h"
#include "test_util.h"

namespace osq {
namespace {

Match MakeMatch(std::vector<NodeId> mapping, double score) {
  Match m;
  m.mapping = std::move(mapping);
  m.score = score;
  return m;
}

TEST(DiversifyTest, LambdaZeroIsTopKPrefix) {
  std::vector<Match> ranked = {
      MakeMatch({0, 1}, 2.0),
      MakeMatch({0, 2}, 1.9),
      MakeMatch({3, 4}, 1.8),
  };
  std::vector<Match> picked = DiversifyMatches(ranked, 2, 0.0);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], ranked[0]);
  EXPECT_EQ(picked[1], ranked[1]);
}

TEST(DiversifyTest, HighLambdaPrefersCoverage) {
  // Second-ranked match overlaps the first entirely; the third is
  // disjoint.  With strong diversification the disjoint one wins slot 2.
  std::vector<Match> ranked = {
      MakeMatch({0, 1}, 2.0),
      MakeMatch({0, 1}, 1.99),
      MakeMatch({3, 4}, 1.5),
  };
  std::vector<Match> picked = DiversifyMatches(ranked, 2, 0.9);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], ranked[0]);
  EXPECT_EQ(picked[1], ranked[2]);
}

TEST(DiversifyTest, FirstPickIsAlwaysTheBest) {
  std::vector<Match> ranked = {
      MakeMatch({0, 1}, 2.0),
      MakeMatch({2, 3}, 1.0),
  };
  for (double lambda : {0.0, 0.3, 0.7, 1.0}) {
    std::vector<Match> picked = DiversifyMatches(ranked, 1, lambda);
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0], ranked[0]) << lambda;
  }
}

TEST(DiversifyTest, KLargerThanInput) {
  std::vector<Match> ranked = {MakeMatch({0}, 1.0)};
  EXPECT_EQ(DiversifyMatches(ranked, 10, 0.5).size(), 1u);
}

TEST(DiversifyTest, EmptyInput) {
  EXPECT_TRUE(DiversifyMatches({}, 3, 0.5).empty());
  EXPECT_TRUE(DiversifyMatches({MakeMatch({0}, 1.0)}, 0, 0.5).empty());
}

TEST(DiversifyTest, LambdaClamped) {
  std::vector<Match> ranked = {
      MakeMatch({0, 1}, 2.0),
      MakeMatch({0, 1}, 1.99),
      MakeMatch({3, 4}, 1.5),
  };
  // lambda > 1 behaves like 1 (pure coverage).
  std::vector<Match> picked = DiversifyMatches(ranked, 2, 5.0);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[1], ranked[2]);
}

TEST(DiversifyTest, DiversityMetric) {
  EXPECT_DOUBLE_EQ(MatchDiversity({}), 0.0);
  std::vector<Match> disjoint = {MakeMatch({0, 1}, 1), MakeMatch({2, 3}, 1)};
  EXPECT_DOUBLE_EQ(MatchDiversity(disjoint), 1.0);
  std::vector<Match> overlapping = {MakeMatch({0, 1}, 1),
                                    MakeMatch({0, 1}, 1)};
  EXPECT_DOUBLE_EQ(MatchDiversity(overlapping), 0.5);
}

TEST(DiversifyTest, ImprovesDiversityOnTravelFixture) {
  test::TravelFixture f = test::MakeTravelFixture();
  IndexOptions options;
  options.num_concept_graphs = 2;
  OntologyIndex index = OntologyIndex::Build(f.g, f.o, options);
  QueryOptions qopts;
  qopts.theta = 0.81;
  qopts.k = 0;
  FilterResult filter = GviewFilter(index, f.query, qopts);
  std::vector<Match> all = KMatch(f.query, filter, qopts);
  ASSERT_EQ(all.size(), 2u);  // already disjoint here
  std::vector<Match> picked = DiversifyMatches(all, 2, 0.5);
  EXPECT_GE(MatchDiversity(picked), MatchDiversity(all) - 1e-12);
}

}  // namespace
}  // namespace osq
