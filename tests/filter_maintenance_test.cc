// Differential check of the candidate-pruning index under maintenance
// (DESIGN.md §11): drive a randomized mixed insert/delete/add-node stream
// through incIdx while mirroring every mutation onto a twin graph, and
// periodically assert
//   (a) the incrementally repaired CandidateIndex is structurally EQUAL to
//       one rebuilt from scratch over the same graph and the same
//       (maintained) partitions — exact equality, every stored vector is
//       canonically sorted;
//   (b) the Gview candidate sets (in original node ids) of the maintained
//       index equal those of a batch-rebuilt index.  The partitions may
//       legally differ (incIdx can settle on a finer-but-stable
//       partition), but the final candidate sets are partition-independent:
//       they equal the greatest fixpoint of the exact node-level
//       refinement for ANY stable partition;
//   (c) the returned matches are identical.
// Runs with num_threads = 2 so the TSan tier-1 stage exercises the
// parallel build/filter paths.  Labeled `slow`.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/candidate_index.h"
#include "core/filtering.h"
#include "core/index_maintenance.h"
#include "core/kmatch.h"
#include "core/ontology_index.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "graph/graph.h"

namespace osq {
namespace {

std::vector<Graph> MakeWorkload(const gen::Dataset& ds, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  gen::QueryGenParams qp;
  qp.num_nodes = 4;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  size_t attempts = 0;
  while (queries.size() < count && ++attempts < count * 20) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<LabelId> EdgeLabelUniverse(const Graph& g) {
  std::set<LabelId> labels;
  for (const EdgeTriple& e : g.EdgeList()) labels.insert(e.label);
  return {labels.begin(), labels.end()};
}

// Per-query-node candidate sets in ORIGINAL node ids — the
// partition-independent output the maintained and batch indexes must agree
// on even when their block partitions differ.
std::vector<std::set<NodeId>> CandidateSets(const Graph& query,
                                            const FilterResult& r) {
  std::vector<std::set<NodeId>> sets(query.num_nodes());
  if (r.no_match) return sets;
  for (NodeId u = 0; u < query.num_nodes(); ++u) {
    for (const Candidate& c : r.candidates[u]) {
      sets[u].insert(r.gv.to_original[c.node]);
    }
  }
  return sets;
}

void RunStream(uint64_t scenario_seed, uint64_t stream_seed) {
  gen::ScenarioParams p;
  p.scale = 400;
  p.seed = scenario_seed;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  Graph twin = ds.graph;

  IndexOptions idx;
  idx.num_concept_graphs = 2;
  idx.num_threads = 2;  // exercise the parallel build under TSan
  OntologyIndex inc = OntologyIndex::Build(ds.graph, ds.ontology, idx);
  ASSERT_TRUE(inc.Validate());

  std::vector<Graph> queries = MakeWorkload(ds, 4, stream_seed + 1);
  ASSERT_FALSE(queries.empty());

  QueryOptions options;
  options.theta = 0.85;
  options.k = 8;
  options.num_threads = 2;

  constexpr size_t kSteps = 60;
  constexpr size_t kCheckEvery = 20;
  Rng rng(stream_seed);
  std::vector<LabelId> labels = EdgeLabelUniverse(ds.graph);
  ASSERT_FALSE(labels.empty());

  size_t applied = 0;
  for (size_t step = 1; step <= kSteps; ++step) {
    if (step % 17 == 0) {
      LabelId label = ds.graph.NodeLabel(
          static_cast<NodeId>(rng.Index(ds.graph.num_nodes())));
      NodeId inc_id = AddNodeWithIndex(&ds.graph, &inc, label);
      NodeId twin_id = twin.AddNode(label);
      ASSERT_EQ(inc_id, twin_id);
      continue;
    }
    GraphUpdate update;
    if (rng.Bernoulli(0.5) && ds.graph.num_edges() > 0) {
      std::vector<EdgeTriple> edges = ds.graph.EdgeList();
      EdgeTriple e = edges[rng.Index(edges.size())];
      update = GraphUpdate::Delete(e.from, e.to, e.label);
    } else {
      NodeId u = static_cast<NodeId>(rng.Index(ds.graph.num_nodes()));
      NodeId v = static_cast<NodeId>(rng.Index(ds.graph.num_nodes()));
      if (u == v) continue;
      update = GraphUpdate::Insert(u, v, labels[rng.Index(labels.size())]);
    }
    bool inc_applied = ApplyUpdate(&ds.graph, &inc, update);
    bool twin_applied =
        update.kind == GraphUpdate::Kind::kInsertEdge
            ? twin.AddEdge(update.edge.from, update.edge.to,
                           update.edge.label)
            : twin.RemoveEdge(update.edge.from, update.edge.to,
                              update.edge.label);
    ASSERT_EQ(inc_applied, twin_applied) << "step " << step;
    if (inc_applied) ++applied;

    if (step % kCheckEvery != 0 && step != kSteps) continue;

    // (a) Repaired signatures == fresh build over the same partitions.
    CandidateIndex fresh =
        CandidateIndex::Build(ds.graph, inc.concept_graphs(),
                              /*num_threads=*/2);
    ASSERT_TRUE(inc.candidate_index() == fresh)
        << "seed " << scenario_seed << "/" << stream_seed << " step "
        << step;

    // (b) + (c) against a batch rebuild over the twin.
    OntologyIndex batch = OntologyIndex::Build(twin, ds.ontology, idx);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      FilterResult inc_filter = GviewFilter(inc, queries[qi], options);
      FilterResult batch_filter = GviewFilter(batch, queries[qi], options);
      ASSERT_EQ(inc_filter.no_match, batch_filter.no_match)
          << "seed " << scenario_seed << "/" << stream_seed << " step "
          << step << " query " << qi;
      ASSERT_EQ(CandidateSets(queries[qi], inc_filter),
                CandidateSets(queries[qi], batch_filter))
          << "seed " << scenario_seed << "/" << stream_seed << " step "
          << step << " query " << qi;
      if (inc_filter.no_match) continue;
      std::vector<Match> inc_matches =
          KMatch(queries[qi], inc_filter, options);
      std::vector<Match> batch_matches =
          KMatch(queries[qi], batch_filter, options);
      ASSERT_EQ(inc_matches.size(), batch_matches.size());
      for (size_t m = 0; m < inc_matches.size(); ++m) {
        // KMatch reports mappings in original node ids, so the two
        // indexes' matches compare directly even though their G_v node
        // numbering may differ.
        ASSERT_EQ(inc_matches[m].mapping, batch_matches[m].mapping)
            << "seed " << scenario_seed << "/" << stream_seed << " step "
            << step << " query " << qi;
        ASSERT_DOUBLE_EQ(inc_matches[m].score, batch_matches[m].score);
      }
    }
  }
  ASSERT_GT(applied, kSteps / 4);
}

TEST(FilterMaintenanceTest, RandomStreamSeedA) { RunStream(41, 401); }

TEST(FilterMaintenanceTest, RandomStreamSeedB) { RunStream(53, 502); }

TEST(FilterMaintenanceTest, RandomStreamSeedC) { RunStream(67, 603); }

}  // namespace
}  // namespace osq
