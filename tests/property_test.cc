// Randomized property tests cross-checking the engine against independent
// baselines on generated workloads (fixed seeds; parameterized over
// configurations).  These are the strongest correctness guarantees in the
// suite:
//   P1  KMatch == SubIsoRewrite == SimMatrixMatch (score multiset + match
//       sets) — the filtering-and-verification framework loses nothing
//       (Prop. 4.2) and ranks identically.
//   P2  theta == 1  =>  engine results == plain SubIso.
//   P3  Incrementally maintained index == batch-rebuilt index (query
//       equivalence) under random update streams, with Validate() green.
//   P4  Monotonicity: lowering theta never loses a match.

#include <algorithm>
#include <set>
#include <utility>

#include <gtest/gtest.h>
#include "baseline/rewriting.h"
#include "baseline/simmatrix.h"
#include "baseline/subiso.h"
#include "common/rng.h"
#include "core/filtering.h"
#include "core/index_maintenance.h"
#include "core/kmatch.h"
#include "core/ontology_index.h"
#include "gen/query_gen.h"
#include "gen/synthetic.h"
#include "graph/query_graph.h"

namespace osq {
namespace {

struct RandomWorld {
  LabelDictionary dict;
  Graph g;
  OntologyGraph o;
};

RandomWorld MakeWorld(uint64_t seed, size_t nodes = 150, size_t edges = 450,
                      size_t labels = 25) {
  RandomWorld w;
  gen::SyntheticGraphParams gp;
  gp.num_nodes = nodes;
  gp.num_edges = edges;
  gp.num_labels = labels;
  gp.num_edge_labels = 2;
  gp.seed = seed;
  w.g = gen::MakeRandomGraph(gp, &w.dict);
  gen::SyntheticOntologyParams op;
  op.num_labels = labels;
  op.seed = seed + 1;
  w.o = gen::MakeTaxonomyOntology(op, &w.dict);
  return w;
}

std::vector<Graph> MakeQueries(const RandomWorld& w, uint64_t seed,
                               size_t count, size_t size) {
  Rng rng(seed);
  gen::QueryGenParams qp;
  qp.num_nodes = size;
  qp.generalize_prob = 0.5;
  qp.generalize_hops = 1;
  std::vector<Graph> queries;
  size_t attempts = 0;
  while (queries.size() < count && attempts < count * 20) {
    ++attempts;
    Graph q = gen::ExtractQuery(w.g, w.o, qp, &rng);
    if (!q.empty() && ValidateQuery(q).ok()) queries.push_back(std::move(q));
  }
  return queries;
}

// Canonical form for comparing result sets across algorithms.
std::set<std::pair<std::vector<NodeId>, int64_t>> Canon(
    const std::vector<Match>& matches) {
  std::set<std::pair<std::vector<NodeId>, int64_t>> out;
  for (const Match& m : matches) {
    out.insert({m.mapping, static_cast<int64_t>(m.score * 1e9 + 0.5)});
  }
  return out;
}

class CrossCheckTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, int>> {};

TEST_P(CrossCheckTest, EngineAgreesWithBothBaselines) {
  auto [seed, theta, semantics_int] = GetParam();
  MatchSemantics semantics = semantics_int == 0
                                 ? MatchSemantics::kInduced
                                 : MatchSemantics::kHomomorphicEdges;
  RandomWorld w = MakeWorld(seed);
  SimilarityFunction sim(0.9);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  idx.seed = seed;
  OntologyIndex index = OntologyIndex::Build(w.g, w.o, idx);
  ASSERT_TRUE(index.Validate());

  for (const Graph& q : MakeQueries(w, seed + 100, 5, 3)) {
    QueryOptions options;
    options.theta = theta;
    options.k = 0;  // compare COMPLETE result sets
    options.semantics = semantics;

    FilterResult filter = GviewFilter(index, q, options);
    std::vector<Match> engine = KMatch(q, filter, options);
    std::vector<Match> rewrite = SubIsoRewrite(q, w.g, w.o, sim, options);
    SimMatrix m = BuildSimMatrix(q, w.g, w.o, sim, theta);
    std::vector<Match> vf2 = SimMatrixMatch(q, w.g, m, options);

    EXPECT_EQ(Canon(engine), Canon(rewrite));
    EXPECT_EQ(Canon(engine), Canon(vf2));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossCheckTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(1.0, 0.9, 0.81),
                       ::testing::Values(0, 1)));

class ThetaOneTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ThetaOneTest, EngineEqualsSubIsoAtThetaOne) {
  uint64_t seed = GetParam();
  RandomWorld w = MakeWorld(seed);
  IndexOptions idx;
  idx.seed = seed;
  OntologyIndex index = OntologyIndex::Build(w.g, w.o, idx);
  Rng rng(seed + 7);
  gen::QueryGenParams qp;
  qp.num_nodes = 3;
  qp.generalize_prob = 0.0;  // identical labels => matches exist
  for (int i = 0; i < 5; ++i) {
    Graph q = gen::ExtractQuery(w.g, w.o, qp, &rng);
    if (q.empty()) continue;
    QueryOptions options;
    options.theta = 1.0;
    options.k = 0;
    FilterResult filter = GviewFilter(index, q, options);
    std::vector<Match> engine = KMatch(q, filter, options);
    std::vector<Match> iso = SubIso(q, w.g, options.semantics);
    EXPECT_EQ(Canon(engine), Canon(iso));
    EXPECT_FALSE(engine.empty());  // extracted from the graph itself
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThetaOneTest,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

class MaintenanceEquivalenceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaintenanceEquivalenceTest, IncrementalEqualsBatch) {
  uint64_t seed = GetParam();
  RandomWorld w = MakeWorld(seed, 80, 200, 15);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  idx.seed = seed;
  OntologyIndex index = OntologyIndex::Build(w.g, w.o, idx);
  std::vector<Graph> queries = MakeQueries(w, seed + 50, 3, 3);

  Rng rng(seed + 9);
  for (int step = 0; step < 60; ++step) {
    NodeId u = static_cast<NodeId>(rng.Index(w.g.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.Index(w.g.num_nodes()));
    if (u == v) continue;
    LabelId el = static_cast<LabelId>(rng.Index(2));
    GraphUpdate upd = rng.Bernoulli(0.6) ? GraphUpdate::Insert(u, v, el)
                                         : GraphUpdate::Delete(u, v, el);
    ApplyUpdate(&w.g, &index, upd);
    ASSERT_TRUE(index.Validate()) << "step " << step;
  }

  // Query-equivalence against a batch rebuild on the updated graph.
  OntologyIndex batch = OntologyIndex::Build(w.g, w.o, idx);
  for (const Graph& q : queries) {
    QueryOptions options;
    options.theta = 0.81;
    options.k = 0;
    FilterResult fi = GviewFilter(index, q, options);
    FilterResult fb = GviewFilter(batch, q, options);
    std::vector<Match> mi = KMatch(q, fi, options);
    std::vector<Match> mb = KMatch(q, fb, options);
    EXPECT_EQ(Canon(mi), Canon(mb));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MaintenanceEquivalenceTest,
                         ::testing::Values(21u, 22u, 23u));

class MonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MonotonicityTest, LoweringThetaNeverLosesMatches) {
  uint64_t seed = GetParam();
  RandomWorld w = MakeWorld(seed);
  IndexOptions idx;
  idx.seed = seed;
  OntologyIndex index = OntologyIndex::Build(w.g, w.o, idx);
  for (const Graph& q : MakeQueries(w, seed + 31, 4, 3)) {
    std::set<std::pair<std::vector<NodeId>, int64_t>> prev;
    for (double theta : {1.0, 0.9, 0.81, 0.729}) {
      QueryOptions options;
      options.theta = theta;
      options.k = 0;
      FilterResult filter = GviewFilter(index, q, options);
      auto cur = Canon(KMatch(q, filter, options));
      EXPECT_TRUE(std::includes(cur.begin(), cur.end(), prev.begin(),
                                prev.end()))
          << "theta " << theta;
      prev = std::move(cur);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MonotonicityTest,
                         ::testing::Values(31u, 32u, 33u));


// P5: the whole pipeline works for every member of the similarity class
// (exponential / linear / reciprocal), agreeing with the rewriting and
// matrix baselines when those use the same function.
class ModelCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelCrossCheckTest, AllModelsAgreeAcrossAlgorithms) {
  int model = GetParam();
  RandomWorld w = MakeWorld(500 + model);
  IndexOptions idx;
  idx.num_concept_graphs = 2;
  idx.similarity_model = static_cast<SimilarityModel>(model);
  idx.similarity_cutoff = 3;
  idx.beta = 0.5;  // meaningful radius under all three models
  OntologyIndex index = OntologyIndex::Build(w.g, w.o, idx);
  ASSERT_TRUE(index.Validate());
  SimilarityFunction sim = MakeSimilarity(idx);

  for (const Graph& q : MakeQueries(w, 600 + model, 4, 3)) {
    QueryOptions options;
    options.theta = 0.5;
    options.k = 0;
    FilterResult filter = GviewFilter(index, q, options);
    std::vector<Match> engine = KMatch(q, filter, options);
    std::vector<Match> rewrite = SubIsoRewrite(q, w.g, w.o, sim, options);
    SimMatrix m = BuildSimMatrix(q, w.g, w.o, sim, options.theta);
    std::vector<Match> vf2 = SimMatrixMatch(q, w.g, m, options);
    EXPECT_EQ(Canon(engine), Canon(rewrite)) << "model " << model;
    EXPECT_EQ(Canon(engine), Canon(vf2)) << "model " << model;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelCrossCheckTest,
                         ::testing::Values(0, 1, 2));

// Scores reported by the engine always equal the sum of the candidates'
// exact ontology similarities, and every reported score clears theta|V_Q|.
TEST(ScoreSanityTest, ScoresMatchSimilaritySums) {
  RandomWorld w = MakeWorld(77);
  SimilarityFunction sim(0.9);
  IndexOptions idx;
  OntologyIndex index = OntologyIndex::Build(w.g, w.o, idx);
  for (const Graph& q : MakeQueries(w, 78, 5, 3)) {
    QueryOptions options;
    options.theta = 0.81;
    options.k = 0;
    FilterResult filter = GviewFilter(index, q, options);
    for (const Match& m : KMatch(q, filter, options)) {
      double expected = 0.0;
      for (NodeId u = 0; u < q.num_nodes(); ++u) {
        expected += sim.Similarity(w.o, q.NodeLabel(u),
                                   w.g.NodeLabel(m.mapping[u]), 0.5);
      }
      EXPECT_NEAR(m.score, expected, 1e-9);
      EXPECT_GE(m.score,
                options.theta * static_cast<double>(q.num_nodes()) - 1e-9);
    }
  }
}

}  // namespace
}  // namespace osq
