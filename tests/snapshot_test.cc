#include "core/snapshot.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "common/rng.h"
#include "core/index_maintenance.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "test_util.h"

namespace osq {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Builds the travel engine and its dictionary (copies of the fixture's
// graphs so the fixture stays usable for queries).
QueryEngine MakeTravelEngine(test::TravelFixture* f) {
  IndexOptions options;
  options.num_concept_graphs = 2;
  return QueryEngine(f->g, f->o, options);
}

// Two graphs describe the same data graph: same nodes, labels, and exact
// adjacency (CSR spans compare element-wise).
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.NodeLabel(v), b.NodeLabel(v));
    Graph::AdjSpan oa = a.OutEdges(v);
    Graph::AdjSpan ob = b.OutEdges(v);
    ASSERT_EQ(oa.size(), ob.size());
    for (size_t i = 0; i < oa.size(); ++i) EXPECT_EQ(oa[i], ob[i]);
    Graph::AdjSpan ia = a.InEdges(v);
    Graph::AdjSpan ib = b.InEdges(v);
    ASSERT_EQ(ia.size(), ib.size());
    for (size_t i = 0; i < ia.size(); ++i) EXPECT_EQ(ia[i], ib[i]);
  }
}

// The loaded index must be *verbatim* the saved one — not merely the same
// partition up to block renaming, but identical block ids, labels, and
// candidate signatures (the snapshot adopts state, it does not rebuild).
void ExpectSameIndex(const OntologyIndex& a, const OntologyIndex& b,
                     const Graph& g) {
  ASSERT_EQ(a.num_concept_graphs(), b.num_concept_graphs());
  EXPECT_EQ(a.TotalSize(), b.TotalSize());
  for (size_t i = 0; i < a.num_concept_graphs(); ++i) {
    const ConceptGraph& ca = a.concept_graph(i);
    const ConceptGraph& cb = b.concept_graph(i);
    EXPECT_EQ(ca.concept_labels(), cb.concept_labels());
    ASSERT_EQ(ca.block_capacity(), cb.block_capacity());
    EXPECT_EQ(ca.num_blocks(), cb.num_blocks());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(ca.BlockOf(v), cb.BlockOf(v));
    }
    for (BlockId blk = 0; blk < ca.block_capacity(); ++blk) {
      ASSERT_EQ(ca.IsAlive(blk), cb.IsAlive(blk));
      if (!ca.IsAlive(blk)) continue;
      EXPECT_EQ(ca.BlockLabel(blk), cb.BlockLabel(blk));
      EXPECT_EQ(ca.Members(blk), cb.Members(blk));
    }
  }
  EXPECT_TRUE(a.candidate_index() == b.candidate_index());
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  test::TravelFixture f = test::MakeTravelFixture();
  QueryEngine engine = MakeTravelEngine(&f);

  const std::string path = TempPath("osq_snapshot_roundtrip.snp");
  ASSERT_TRUE(SaveEngineSnapshot(engine, f.dict, path).ok());

  LabelDictionary dict;
  std::unique_ptr<QueryEngine> loaded;
  SnapshotLoadStats stats;
  Status s = LoadEngineSnapshot(path, &dict, &loaded, &stats);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_GT(stats.file_bytes, 0u);

  // Dictionary restored name-for-name, id-for-id.
  ASSERT_EQ(dict.size(), f.dict.size());
  for (LabelId id = 0; id < dict.size(); ++id) {
    EXPECT_EQ(dict.Name(id), f.dict.Name(id));
  }

  ExpectSameGraph(engine.graph(), loaded->graph());
  EXPECT_TRUE(loaded->graph().is_snapshot_backed());
  EXPECT_TRUE(loaded->graph().CheckConsistency());
  ASSERT_TRUE(loaded->index().Validate());
  ExpectSameIndex(engine.index(), loaded->index(), engine.graph());
  EXPECT_EQ(loaded->index().options().num_concept_graphs,
            engine.index().options().num_concept_graphs);
}

TEST(SnapshotTest, LoadedEngineAnswersQueriesIdentically) {
  test::TravelFixture f = test::MakeTravelFixture();
  QueryEngine engine = MakeTravelEngine(&f);
  const std::string path = TempPath("osq_snapshot_queries.snp");
  ASSERT_TRUE(SaveEngineSnapshot(engine, f.dict, path).ok());

  LabelDictionary dict;
  std::unique_ptr<QueryEngine> loaded;
  ASSERT_TRUE(LoadEngineSnapshot(path, &dict, &loaded).ok());

  QueryOptions qopts;
  qopts.theta = 0.81;
  qopts.k = 0;
  QueryResult ra = engine.Query(f.query, qopts);
  QueryResult rb = loaded->Query(f.query, qopts);
  ASSERT_TRUE(ra.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_EQ(ra.matches, rb.matches);
  EXPECT_FALSE(ra.matches.empty());
}

TEST(SnapshotTest, MaintenanceAfterLoadMatchesNeverSaved) {
  // The differential that justifies storing ConceptGraph state verbatim:
  // the same update stream applied to a reloaded engine and to one that
  // was never saved must produce identical indexes and identical answers.
  test::TravelFixture f = test::MakeTravelFixture();
  QueryEngine engine = MakeTravelEngine(&f);
  const std::string path = TempPath("osq_snapshot_maintenance.snp");
  ASSERT_TRUE(SaveEngineSnapshot(engine, f.dict, path).ok());

  LabelDictionary dict;
  std::unique_ptr<QueryEngine> loaded;
  ASSERT_TRUE(LoadEngineSnapshot(path, &dict, &loaded).ok());

  std::vector<GraphUpdate> updates = {
      GraphUpdate::Insert(f.rp, f.starlight, f.near),
      GraphUpdate::Delete(f.ct, f.starlight, f.fav),
      GraphUpdate::Insert(f.ht, f.rg, f.guide),
      GraphUpdate::Insert(f.ct, f.starlight, f.fav),
  };
  MaintenanceStats sa = engine.ApplyUpdates(updates);
  MaintenanceStats sb = loaded->ApplyUpdates(updates);
  EXPECT_EQ(sa.applied, sb.applied);
  EXPECT_EQ(sa.skipped, sb.skipped);

  ASSERT_TRUE(loaded->index().Validate());
  ExpectSameGraph(engine.graph(), loaded->graph());
  ExpectSameIndex(engine.index(), loaded->index(), engine.graph());

  QueryOptions qopts;
  qopts.theta = 0.81;
  qopts.k = 0;
  QueryResult ra = engine.Query(f.query, qopts);
  QueryResult rb = loaded->Query(f.query, qopts);
  EXPECT_EQ(ra.matches, rb.matches);
}

TEST(SnapshotTest, RoundTripOnGeneratedDataset) {
  gen::ScenarioParams p;
  p.scale = 400;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);
  IndexOptions options;
  options.num_concept_graphs = 2;
  options.edge_label_aware = true;
  options.similarity_model = SimilarityModel::kLinear;
  options.similarity_cutoff = 3;
  QueryEngine engine(ds.graph, ds.ontology, options);

  const std::string path = TempPath("osq_snapshot_generated.snp");
  ASSERT_TRUE(SaveEngineSnapshot(engine, ds.dict, path).ok());

  LabelDictionary dict;
  std::unique_ptr<QueryEngine> loaded;
  SnapshotLoadStats stats;
  ASSERT_TRUE(LoadEngineSnapshot(path, &dict, &loaded, &stats).ok());
  ASSERT_TRUE(loaded->index().Validate());
  EXPECT_TRUE(loaded->index().options().edge_label_aware);
  EXPECT_EQ(loaded->index().options().similarity_model,
            SimilarityModel::kLinear);
  ExpectSameGraph(engine.graph(), loaded->graph());
  ExpectSameIndex(engine.index(), loaded->index(), engine.graph());

  gen::QueryGenParams qp;
  Rng rng(7);
  QueryOptions qopts;
  qopts.theta = 0.8;
  for (int i = 0; i < 4; ++i) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (q.num_nodes() == 0) continue;
    QueryResult ra = engine.Query(q, qopts);
    QueryResult rb = loaded->Query(q, qopts);
    EXPECT_EQ(ra.status.ok(), rb.status.ok());
    EXPECT_EQ(ra.matches, rb.matches);
  }
}

TEST(SnapshotTest, EngineMoveAfterLoadKeepsAnswering) {
  // The loaded graph borrows the mapped file; moving the engine must move
  // the anchor along and rebind the index (regression guard for the
  // zero-copy pointer fixup).
  test::TravelFixture f = test::MakeTravelFixture();
  QueryEngine engine = MakeTravelEngine(&f);
  const std::string path = TempPath("osq_snapshot_move.snp");
  ASSERT_TRUE(SaveEngineSnapshot(engine, f.dict, path).ok());

  LabelDictionary dict;
  std::unique_ptr<QueryEngine> loaded;
  ASSERT_TRUE(LoadEngineSnapshot(path, &dict, &loaded).ok());
  QueryEngine moved = std::move(*loaded);
  loaded.reset();  // destroy the shell the engine was loaded into

  QueryOptions qopts;
  qopts.theta = 0.81;
  QueryResult ra = engine.Query(f.query, qopts);
  QueryResult rb = moved.Query(f.query, qopts);
  EXPECT_EQ(ra.matches, rb.matches);
}

TEST(SnapshotTest, PrePopulatedDictionaryMustAgree) {
  test::TravelFixture f = test::MakeTravelFixture();
  QueryEngine engine = MakeTravelEngine(&f);
  const std::string path = TempPath("osq_snapshot_dict.snp");
  ASSERT_TRUE(SaveEngineSnapshot(engine, f.dict, path).ok());

  // A dictionary whose id 0 is already taken by a different name cannot
  // adopt the snapshot's dictionary.
  LabelDictionary conflicting;
  conflicting.Intern("zzz_not_in_snapshot");
  std::unique_ptr<QueryEngine> loaded;
  EXPECT_EQ(LoadEngineSnapshot(path, &conflicting, &loaded).code(),
            StatusCode::kInvalidArgument);

  // An exact prefix copy agrees and loads fine.
  LabelDictionary agreeing;
  for (LabelId id = 0; id < f.dict.size(); ++id) {
    agreeing.Intern(f.dict.Name(id));
  }
  EXPECT_TRUE(LoadEngineSnapshot(path, &agreeing, &loaded).ok());
}

TEST(SnapshotTest, MissingFileIsIoError) {
  LabelDictionary dict;
  std::unique_ptr<QueryEngine> loaded;
  EXPECT_EQ(LoadEngineSnapshot("/nonexistent/engine.snp", &dict, &loaded)
                .code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace osq
