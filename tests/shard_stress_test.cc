// Concurrency stress for the sharded serving tier, meant to run under
// TSan (tier-1 race stage): concurrent readers scatter-gather while a
// writer toggles the graph between two known states with routed update
// batches.  Asserts vector-version snapshot isolation — every complete
// result equals one of the two precomputed oracle answers, never a blend
// of shards from different cuts — and cache non-pollution (a cache hit is
// always a complete result).  Labeled `slow`.

#include <atomic>
#include <cstddef>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/query_engine.h"
#include "gen/query_gen.h"
#include "gen/scenarios.h"
#include "graph/graph.h"
#include "shard/sharded_query_service.h"

namespace osq {
namespace {

TEST(ShardStressTest, ConcurrentReadersSeeConsistentVersionedSnapshots) {
  gen::ScenarioParams p;
  p.scale = 120;
  p.seed = 19;
  gen::Dataset ds = gen::MakeCrossDomainLike(p);

  Rng rng(1234);
  gen::QueryGenParams qp;
  qp.num_nodes = 3;
  qp.generalize_prob = 0.5;
  std::vector<Graph> queries;
  size_t attempts = 0;
  while (queries.size() < 3 && ++attempts < 100) {
    Graph q = gen::ExtractQuery(ds.graph, ds.ontology, qp, &rng);
    if (!q.empty()) queries.push_back(std::move(q));
  }
  ASSERT_FALSE(queries.empty());

  // The toggle batch: a handful of fresh edges between existing nodes.
  // State A = the base graph, state B = base + batch.
  std::set<LabelId> label_set;
  for (const EdgeTriple& e : ds.graph.EdgeList()) label_set.insert(e.label);
  std::vector<LabelId> labels(label_set.begin(), label_set.end());
  ASSERT_FALSE(labels.empty());
  std::vector<GraphUpdate> inserts;
  while (inserts.size() < 5) {
    NodeId u = static_cast<NodeId>(rng.Index(ds.graph.num_nodes()));
    NodeId v = static_cast<NodeId>(rng.Index(ds.graph.num_nodes()));
    if (u == v || ds.graph.HasEdgeAnyLabel(u, v)) continue;
    inserts.push_back(
        GraphUpdate::Insert(u, v, labels[rng.Index(labels.size())]));
  }
  std::vector<GraphUpdate> deletes;
  for (const GraphUpdate& u : inserts) {
    deletes.push_back(GraphUpdate::Delete(u.edge.from, u.edge.to,
                                          u.edge.label));
  }

  IndexOptions idx;
  QueryOptions qo;
  qo.theta = 0.85;
  qo.k = 8;

  // Oracle answers for both states.
  Graph graph_b = ds.graph;
  for (const GraphUpdate& u : inserts) {
    ASSERT_TRUE(graph_b.AddEdge(u.edge.from, u.edge.to, u.edge.label));
  }
  std::vector<std::vector<Match>> oracle_a, oracle_b;
  {
    QueryEngine ea(ds.graph, ds.ontology, idx);
    QueryEngine eb(graph_b, ds.ontology, idx);
    for (const Graph& q : queries) {
      oracle_a.push_back(ea.Query(q, qo).matches);
      oracle_b.push_back(eb.Query(q, qo).matches);
    }
  }

  ShardOptions so;
  so.num_shards = 3;
  so.halo_radius = 2;
  ShardedQueryService service(ds.graph, ds.ontology, idx, so);

  constexpr size_t kReaders = 3;
  constexpr size_t kToggles = 8;
  constexpr size_t kQueriesPerReader = 40;
  std::atomic<bool> done{false};
  std::atomic<size_t> complete_results{0};
  std::atomic<size_t> mismatches{0};

  RunConcurrently(kReaders + 1, [&](size_t tid) {
    if (tid == 0) {
      // Writer: toggle A -> B -> A; each batch is one atomic cut.
      for (size_t i = 0; i < kToggles; ++i) {
        MaintenanceStats ms = service.ApplyUpdates(i % 2 == 0 ? inserts
                                                              : deletes);
        EXPECT_EQ(ms.applied, inserts.size());
        std::this_thread::yield();
      }
      done.store(true);
      return;
    }
    size_t qi = tid - 1;
    for (size_t iter = 0; iter < kQueriesPerReader || !done.load();
         ++iter) {
      const Graph& q = queries[qi % queries.size()];
      QueryOptions opts = qo;
      if (iter % 7 == 3) opts.deadline_ms = 1e-4;  // degraded mix-in
      ShardedServedResult served = service.Query(q, opts);
      ASSERT_TRUE(served.result.status.ok());
      // Cache non-pollution: hits only ever serve complete results.
      if (served.cache_hit) {
        EXPECT_TRUE(served.result.complete());
      }
      if (served.result.complete()) {
        complete_results.fetch_add(1);
        // Snapshot isolation: the merged answer matches ONE state's
        // oracle exactly — a mixed cut would blend match sets.
        const std::vector<Match>& got = served.result.matches;
        if (got != oracle_a[qi % queries.size()] &&
            got != oracle_b[qi % queries.size()]) {
          mismatches.fetch_add(1);
        }
      }
      ++qi;
      if (iter > kQueriesPerReader * 50) break;  // safety valve
    }
  });

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(complete_results.load(), 0u);
  // The final state after an even number of toggles is A.
  ShardedServedResult final_served = service.Query(queries[0], qo);
  ASSERT_TRUE(final_served.result.status.ok());
  EXPECT_EQ(final_served.result.matches, oracle_a[0]);
}

}  // namespace
}  // namespace osq
