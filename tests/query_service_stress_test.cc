// Concurrency stress test for QueryService: 4 reader threads running
// queries against 1 writer thread toggling an update batch.  The snapshot
// protocol promises that every returned result reflects exactly one
// version — all of a batch or none of it — so each result must equal the
// pre-update reference (even versions) or the post-update reference (odd
// versions), never a blend.  The readers are CLOSED-LOOP with no pacing:
// the write-intent gate in QueryService must let the writer through a
// saturated shared lock (glibc's rwlock alone prefers readers and would
// starve it — this test hung before the gate existed).  scripts/tier1.sh
// repeats this binary under ThreadSanitizer (-DOSQ_SANITIZE=thread), where
// any engine/cache data race fails the gate.  Labeled `slow` in ctest.

#include "serve/query_service.h"

#include <atomic>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/index_maintenance.h"
#include "test_util.h"

namespace osq {
namespace {

constexpr size_t kReaders = 4;
constexpr size_t kToggles = 60;
constexpr size_t kReaderIterations = 250;

TEST(QueryServiceStressTest, ReadersSeePreOrPostSnapshotOnly) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph pre_graph = f.g;
  OntologyGraph pre_onto = f.o;
  Graph query = f.query;
  NodeId ct = f.ct, hp = f.hp, rg = f.rg;
  LabelId fav = f.fav, near = f.near;

  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;

  // References from independent engines: state A (fixture as built) and
  // state B (with the two extra edges of the toggled batch).
  Graph post_graph = pre_graph;
  OntologyGraph post_onto = pre_onto;
  ASSERT_TRUE(post_graph.AddEdge(ct, hp, fav));
  ASSERT_TRUE(post_graph.AddEdge(hp, rg, near));
  QueryEngine pre_engine(std::move(pre_graph), std::move(pre_onto),
                         IndexOptions{});
  QueryEngine post_engine(std::move(post_graph), std::move(post_onto),
                          IndexOptions{});
  const std::vector<Match> ref_pre = pre_engine.Query(query, options).matches;
  const std::vector<Match> ref_post =
      post_engine.Query(query, options).matches;
  ASSERT_EQ(ref_pre.size(), 1u);
  ASSERT_EQ(ref_post.size(), 2u);

  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}),
      ServeOptions{});

  const std::vector<GraphUpdate> insert_batch = {
      GraphUpdate::Insert(ct, hp, fav), GraphUpdate::Insert(hp, rg, near)};
  const std::vector<GraphUpdate> delete_batch = {
      GraphUpdate::Delete(ct, hp, fav), GraphUpdate::Delete(hp, rg, near)};

  std::atomic<bool> writer_done{false};
  // Thread 0 is the writer; threads 1..kReaders are closed-loop readers.
  RunConcurrently(kReaders + 1, [&](size_t tid) {
    if (tid == 0) {
      for (size_t t = 0; t < kToggles; ++t) {
        MaintenanceStats stats = service.ApplyUpdates(
            t % 2 == 0 ? insert_batch : delete_batch);
        ASSERT_EQ(stats.applied, 2u) << "toggle " << t;
        std::this_thread::yield();
      }
      writer_done.store(true, std::memory_order_release);
      return;
    }
    size_t iterations = 0;
    // Keep reading until the writer finished AND a floor of iterations
    // ran, so reads genuinely overlap the toggles.
    while (!writer_done.load(std::memory_order_acquire) ||
           iterations < kReaderIterations) {
      ServedResult served = service.Query(query, options);
      ASSERT_TRUE(served.result.status.ok());
      // The snapshot invariant: version parity identifies the state, and
      // the result must match that state exactly.  A torn read (batch
      // half-applied) would produce 1 match at an odd version, 2 at an
      // even one, or a match set equal to neither reference.
      const std::vector<Match>& expected =
          served.version % 2 == 0 ? ref_pre : ref_post;
      ASSERT_EQ(served.result.matches, expected)
          << "reader " << tid << " iteration " << iterations << " version "
          << served.version;
      ++iterations;
    }
  });

  EXPECT_EQ(service.version(), kToggles);
  EXPECT_TRUE(service.engine_unsynchronized().index().Validate());

  ServeStats stats = service.Stats();
  EXPECT_EQ(stats.queries, stats.cache_hits + stats.cache_misses);
  EXPECT_EQ(stats.queries, stats.total_requests());  // nothing shed here
  EXPECT_EQ(stats.update_batches, kToggles);
  EXPECT_EQ(stats.updates_applied, 2 * kToggles);
  EXPECT_EQ(stats.nodes_added, 0u);
  EXPECT_GE(stats.queries, kReaders * kReaderIterations);
  // With only one signature in play, repeat reads at a stable version hit.
  EXPECT_GT(stats.cache_hits, 0u);
  // 60 toggles against 4 unpaced readers: some reads must have overlapped
  // a pending/active writer and landed in the burst latency split.
  EXPECT_GT(stats.burst_read_latency.count, 0u);
  EXPECT_LE(stats.burst_read_latency.count, stats.queries);
}

// Same protocol with the cache disabled: every read goes to the engine,
// maximizing reader/writer interleavings on the engine itself.
TEST(QueryServiceStressTest, UncachedReadsAreTornFree) {
  test::TravelFixture f = test::MakeTravelFixture();
  Graph query = f.query;
  NodeId ct = f.ct, hp = f.hp, rg = f.rg;
  LabelId fav = f.fav, near = f.near;

  QueryOptions options;
  options.theta = 0.9;
  options.k = 10;

  ServeOptions serve;
  serve.cache_capacity = 0;
  QueryService service(
      QueryEngine(std::move(f.g), std::move(f.o), IndexOptions{}), serve);

  const std::vector<GraphUpdate> insert_batch = {
      GraphUpdate::Insert(ct, hp, fav), GraphUpdate::Insert(hp, rg, near)};
  const std::vector<GraphUpdate> delete_batch = {
      GraphUpdate::Delete(ct, hp, fav), GraphUpdate::Delete(hp, rg, near)};

  std::atomic<bool> writer_done{false};
  RunConcurrently(kReaders + 1, [&](size_t tid) {
    if (tid == 0) {
      for (size_t t = 0; t < kToggles; ++t) {
        // Discard the stats: this writer only generates version churn; the
        // readers assert snapshot consistency, not maintenance counts.
        (void)service.ApplyUpdates(t % 2 == 0 ? insert_batch : delete_batch);
        std::this_thread::yield();
      }
      writer_done.store(true, std::memory_order_release);
      return;
    }
    size_t iterations = 0;
    while (!writer_done.load(std::memory_order_acquire) ||
           iterations < kReaderIterations / 2) {
      ServedResult served = service.Query(query, options);
      ASSERT_TRUE(served.result.status.ok());
      size_t expected = served.version % 2 == 0 ? 1u : 2u;
      ASSERT_EQ(served.result.matches.size(), expected)
          << "version " << served.version;
      ++iterations;
    }
  });

  EXPECT_EQ(service.Stats().cache_hits, 0u);
  EXPECT_TRUE(service.engine_unsynchronized().index().Validate());
}

}  // namespace
}  // namespace osq
