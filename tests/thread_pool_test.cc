#include "common/thread_pool.h"

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace osq {
namespace {

TEST(ThreadPoolTest, ZeroTasksIsANoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(4, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(4, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> ids;
  std::mutex mu;
  pool.ParallelFor(8, 16, [&](size_t) {
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(ids, std::set<std::thread::id>{caller});
}

TEST(ThreadPoolTest, SingleThreadRequestRunsInline) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  pool.ParallelFor(1, 64, [&](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAndAllIndicesDrain) {
  ThreadPool pool(2);
  constexpr size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  EXPECT_THROW(
      pool.ParallelFor(3, kN,
                       [&](size_t i) {
                         hits[i].fetch_add(1);
                         if (i == 17) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // Even after the exception every index was claimed exactly once, so no
  // task is left dangling in the pool.
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(3, 8,
                                [](size_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  std::atomic<size_t> count{0};
  pool.ParallelFor(3, 100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  // Inner calls from pool workers run inline (see thread_pool.h), so this
  // must not deadlock even though outer tasks occupy every worker.
  pool.ParallelFor(3, 4, [&](size_t) {
    pool.ParallelFor(3, 10, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 40u);
}

TEST(ThreadPoolTest, SharedPoolWorks) {
  std::atomic<size_t> count{0};
  ParallelFor(4, 50, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50u);
}

TEST(ResolveNumThreadsTest, LiteralAndAuto) {
  EXPECT_EQ(ResolveNumThreads(3), 3u);
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_GE(ResolveNumThreads(0), 1u);  // 0 = all hardware threads
}

}  // namespace
}  // namespace osq
