// Unit tests for the shard partitioning layer (shard/partitioner.h):
// deterministic ownership, halo construction, pivot selection, and the
// UpdateRouter's membership-maintenance invariants.

#include <algorithm>
#include <cstddef>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/graph_algorithms.h"
#include "shard/partitioner.h"

namespace osq {
namespace {

// A directed path 0 -> 1 -> 2 -> 3 -> 4, all labels 0.
Graph MakePath(size_t n) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddNode(0);
  for (NodeId v = 0; v + 1 < n; ++v) {
    EXPECT_TRUE(g.AddEdge(v, v + 1, 0));
  }
  return g;
}

TEST(GraphPartitionerTest, EveryNodeOwnedByExactlyOneShard) {
  Graph g = MakePath(20);
  for (ShardPolicy policy : {ShardPolicy::kHash, ShardPolicy::kRange}) {
    ShardOptions so;
    so.num_shards = 3;
    so.policy = policy;
    GraphPartitioner p(g, so);
    ShardPlan plan = p.Partition();
    ASSERT_EQ(plan.shards.size(), 3u);
    std::vector<size_t> owners(g.num_nodes(), 0);
    for (size_t s = 0; s < plan.shards.size(); ++s) {
      const ShardSpec& spec = plan.shards[s];
      ASSERT_EQ(spec.members.size(), spec.owned.size());
      for (size_t i = 0; i < spec.members.size(); ++i) {
        if (spec.owned[i] != 0) {
          ++owners[spec.members[i]];
          EXPECT_EQ(p.OwnerOf(spec.members[i]), s);
        }
      }
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(owners[v], 1u) << "node " << v;
    }
  }
}

TEST(GraphPartitionerTest, RangePolicyAssignsContiguousBlocks) {
  Graph g = MakePath(10);
  ShardOptions so;
  so.num_shards = 3;
  so.policy = ShardPolicy::kRange;
  GraphPartitioner p(g, so);
  // ceil(10/3) = 4: [0,3] -> 0, [4,7] -> 1, [8,9] -> 2.
  EXPECT_EQ(p.OwnerOf(0), 0u);
  EXPECT_EQ(p.OwnerOf(3), 0u);
  EXPECT_EQ(p.OwnerOf(4), 1u);
  EXPECT_EQ(p.OwnerOf(7), 1u);
  EXPECT_EQ(p.OwnerOf(8), 2u);
  EXPECT_EQ(p.OwnerOf(9), 2u);
}

TEST(GraphPartitionerTest, SingleShardIsIdentity) {
  Graph g = MakePath(6);
  ShardOptions so;
  so.num_shards = 1;
  ShardPlan plan = GraphPartitioner(g, so).Partition();
  ASSERT_EQ(plan.shards.size(), 1u);
  const ShardSpec& spec = plan.shards[0];
  ASSERT_EQ(spec.members.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(spec.members[v], v);
    EXPECT_NE(spec.owned[v], 0);
    EXPECT_EQ(spec.sub.to_original[v], v);
    EXPECT_EQ(spec.sub.from_original[v], v);
  }
  EXPECT_EQ(spec.sub.graph.num_edges(), g.num_edges());
}

TEST(GraphPartitionerTest, HaloCoversRadiusBallAndSubgraphIsInduced) {
  Graph g = MakePath(8);
  ShardOptions so;
  so.num_shards = 4;
  so.policy = ShardPolicy::kRange;  // blocks of 2: {0,1} {2,3} {4,5} {6,7}
  so.halo_radius = 2;
  GraphPartitioner p(g, so);
  ShardPlan plan = p.Partition();

  for (size_t s = 0; s < plan.shards.size(); ++s) {
    const ShardSpec& spec = plan.shards[s];
    std::set<NodeId> members(spec.members.begin(), spec.members.end());
    // Membership must cover every node within halo_radius undirected hops
    // of an owned node.
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (p.OwnerOf(v) != s) continue;
      std::vector<uint32_t> dist = UndirectedBfsDistances(g, v);
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (dist[u] <= so.halo_radius) {
          EXPECT_TRUE(members.count(u))
              << "shard " << s << " missing " << u << " (dist " << dist[u]
              << " from owned " << v << ")";
        }
      }
    }
    // The shard graph is exactly induced: every global edge between two
    // members appears, with the same label.
    for (const EdgeTriple& e : g.Edges()) {
      if (!members.count(e.from) || !members.count(e.to)) continue;
      NodeId lf = spec.sub.from_original[e.from];
      NodeId lt = spec.sub.from_original[e.to];
      EXPECT_TRUE(spec.sub.graph.HasEdge(lf, lt, e.label));
    }
  }
  // Shard 1 owns {2,3}; radius 2 on the path reaches 0..5.
  EXPECT_EQ(plan.shards[1].members,
            (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));
}

TEST(ChoosePivotTest, PicksMinimumEccentricityLowestId) {
  // Path of 5: center node 2 has eccentricity 2.
  Graph path = MakePath(5);
  PivotChoice c = ChoosePivot(path);
  EXPECT_EQ(c.pivot, 2u);
  EXPECT_EQ(c.eccentricity, 2u);

  // Star: hub 0 with 3 leaves — hub eccentricity 1, leaves 2.
  Graph star;
  star.AddNode(0);
  for (int i = 0; i < 3; ++i) star.AddNode(1);
  for (NodeId v = 1; v <= 3; ++v) ASSERT_TRUE(star.AddEdge(0, v, 0));
  c = ChoosePivot(star);
  EXPECT_EQ(c.pivot, 0u);
  EXPECT_EQ(c.eccentricity, 1u);

  // Tie (2-node path: both ecc 1): lowest id wins.
  c = ChoosePivot(MakePath(2));
  EXPECT_EQ(c.pivot, 0u);
  EXPECT_EQ(c.eccentricity, 1u);
}

TEST(UpdateRouterTest, InsertRoutesToShardsHoldingBothEndpoints) {
  Graph g = MakePath(8);
  ShardOptions so;
  so.num_shards = 4;
  so.policy = ShardPolicy::kRange;
  so.halo_radius = 1;
  ShardPlan plan = GraphPartitioner(g, so).Partition();
  UpdateRouter router(g, plan);

  // Edge 2 -> 3 is internal to shard 1 (owns {2,3}); shards 0 and 2 hold
  // both endpoints as halo.  A duplicate insert routes nowhere.
  bool applied = true;
  std::vector<ShardDelta> deltas =
      router.Route(GraphUpdate::Insert(2, 3, 0), &applied);
  EXPECT_FALSE(applied);
  for (const ShardDelta& d : deltas) EXPECT_TRUE(d.empty());

  // A fresh edge 0 -> 7 connects the path ends.  Both endpoints become
  // mutually reachable at distance 1, pulling new halo members into the
  // end shards.
  deltas = router.Route(GraphUpdate::Insert(0, 7, 0), &applied);
  EXPECT_TRUE(applied);
  ASSERT_EQ(deltas.size(), 4u);
  // Shard 0 (owns {0,1}): node 7 enters the halo with its induced edges.
  bool found7 = false;
  for (const ShardDelta::NodeAdd& add : deltas[0].node_adds) {
    if (add.global == 7) {
      found7 = true;
      EXPECT_FALSE(add.owned);
    }
  }
  EXPECT_TRUE(found7);
  EXPECT_TRUE(router.IsMember(0, 7));
  // The new member arrived with the triggering edge (0 -> 7) among its
  // induced edges — not as a duplicate top-level update.
  size_t count_0_7 = 0;
  for (const GraphUpdate& u : deltas[0].updates) {
    if (u.edge.from == 0 && u.edge.to == 7) ++count_0_7;
    EXPECT_EQ(u.kind, GraphUpdate::Kind::kInsertEdge);
  }
  EXPECT_EQ(count_0_7, 1u);
}

TEST(UpdateRouterTest, NewMemberArrivesWithAllInducedEdgesExactlyOnce) {
  // Triangle 5-6-7 far from shard 0, connected to it by a new edge.
  Graph g;
  for (int i = 0; i < 8; ++i) g.AddNode(0);
  ASSERT_TRUE(g.AddEdge(5, 6, 0));
  ASSERT_TRUE(g.AddEdge(6, 7, 0));
  ASSERT_TRUE(g.AddEdge(7, 5, 0));
  ShardOptions so;
  so.num_shards = 4;
  so.policy = ShardPolicy::kRange;  // shard 0 owns {0,1}
  so.halo_radius = 2;
  ShardPlan plan = GraphPartitioner(g, so).Partition();
  UpdateRouter router(g, plan);
  ASSERT_FALSE(router.IsMember(0, 5));

  // 0 -> 5 pulls 5 (dist 1) and 6, 7 (dist 2) into shard 0's halo.
  bool applied = false;
  std::vector<ShardDelta> deltas =
      router.Route(GraphUpdate::Insert(0, 5, 0), &applied);
  ASSERT_TRUE(applied);
  std::set<NodeId> added;
  for (const ShardDelta::NodeAdd& add : deltas[0].node_adds) {
    added.insert(add.global);
  }
  EXPECT_EQ(added, (std::set<NodeId>{5, 6, 7}));
  // Each triangle edge plus the trigger must be emitted exactly once.
  std::multiset<std::pair<NodeId, NodeId>> edges;
  for (const GraphUpdate& u : deltas[0].updates) {
    edges.insert({u.edge.from, u.edge.to});
  }
  std::multiset<std::pair<NodeId, NodeId>> expected = {
      {0, 5}, {5, 6}, {6, 7}, {7, 5}};
  EXPECT_EQ(edges, expected);
}

TEST(UpdateRouterTest, DeleteKeepsMembershipAndRoutesToHolders) {
  Graph g = MakePath(6);
  ShardOptions so;
  so.num_shards = 3;
  so.policy = ShardPolicy::kRange;
  so.halo_radius = 1;
  ShardPlan plan = GraphPartitioner(g, so).Partition();
  UpdateRouter router(g, plan);
  ASSERT_TRUE(router.IsMember(0, 2));  // halo of shard 0 (owns {0,1})

  bool applied = false;
  std::vector<ShardDelta> deltas =
      router.Route(GraphUpdate::Delete(1, 2, 0), &applied);
  EXPECT_TRUE(applied);
  // Both endpoints are members of shards 0 and 1 -> routed there.
  ASSERT_EQ(deltas[0].updates.size(), 1u);
  EXPECT_EQ(deltas[0].updates[0].kind, GraphUpdate::Kind::kDeleteEdge);
  ASSERT_EQ(deltas[1].updates.size(), 1u);
  EXPECT_TRUE(deltas[2].updates.empty());
  // Membership is a stale superset: 2 stays in shard 0's member set.
  EXPECT_TRUE(router.IsMember(0, 2));
}

TEST(UpdateRouterTest, AddNodeRoutesToOwnerOnly) {
  Graph g = MakePath(4);
  ShardOptions so;
  so.num_shards = 2;
  so.policy = ShardPolicy::kRange;
  ShardPlan plan = GraphPartitioner(g, so).Partition();
  UpdateRouter router(g, plan);

  NodeId global = kInvalidNode;
  std::vector<ShardDelta> deltas = router.RouteAddNode(7, &global);
  EXPECT_EQ(global, 4u);
  // Beyond the initial range the kRange policy hash-routes; exactly one
  // shard receives the node, owned.
  size_t receiving = 0;
  for (size_t s = 0; s < deltas.size(); ++s) {
    if (deltas[s].empty()) continue;
    ++receiving;
    ASSERT_EQ(deltas[s].node_adds.size(), 1u);
    EXPECT_EQ(deltas[s].node_adds[0].global, global);
    EXPECT_EQ(deltas[s].node_adds[0].label, 7u);
    EXPECT_TRUE(deltas[s].node_adds[0].owned);
    EXPECT_TRUE(router.IsMember(s, global));
  }
  EXPECT_EQ(receiving, 1u);
  EXPECT_EQ(router.reference().num_nodes(), 5u);
}

}  // namespace
}  // namespace osq
